package ir

import (
	"errors"
	"fmt"
)

// Validate checks the structural invariants of the ICFG, including
// call-site normal form. It returns an error describing every violation
// found (joined), or nil.
func Validate(p *Program) error {
	var errs []error
	bad := func(format string, args ...interface{}) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	// Arena consistency and edge symmetry.
	for i, n := range p.Nodes {
		if n == nil {
			continue
		}
		if int(n.ID) != i {
			bad("node at index %d has ID %d", i, n.ID)
		}
		if n.Proc < 0 || n.Proc >= len(p.Procs) {
			bad("node %d has invalid proc %d", n.ID, n.Proc)
			continue
		}
		for _, s := range n.Succs {
			sn := p.Node(s)
			if sn == nil {
				bad("node %d has dangling successor %d", n.ID, s)
				continue
			}
			if count(sn.Preds, n.ID) != count(n.Succs, s) {
				bad("edge %d->%d asymmetric (succs %d, preds %d)",
					n.ID, s, count(n.Succs, s), count(sn.Preds, n.ID))
			}
		}
		for _, m := range n.Preds {
			if p.Node(m) == nil {
				bad("node %d has dangling predecessor %d", n.ID, m)
			}
		}
	}

	// Variable arena consistency.
	for i, v := range p.Vars {
		if v == nil {
			continue
		}
		if int(v.ID) != i {
			bad("var at index %d has ID %d", i, v.ID)
		}
		if !v.IsGlobal() && (v.Proc < 0 || v.Proc >= len(p.Procs)) {
			bad("var %d (%q) has invalid proc %d", v.ID, v.Name, v.Proc)
		}
	}

	// checkVar verifies one node's variable reference: in range, live, and
	// owned by the referencing node's procedure (or global). Cross-procedure
	// references cannot arise from lowering or restructuring — splits copy
	// nodes within one procedure — so one here means a corrupted rewrite.
	checkVar := func(n *Node, v VarID, role string) {
		if v < 0 || int(v) >= len(p.Vars) || p.Vars[v] == nil {
			bad("node %d (%s) %s references invalid var %d", n.ID, n.Kind, role, v)
			return
		}
		if vr := p.Vars[v]; !vr.IsGlobal() && vr.Proc != n.Proc {
			bad("node %d (%s) %s references var %q of another proc", n.ID, n.Kind, role, vr.Name)
		}
	}
	checkOperand := func(n *Node, o Operand, role string) {
		if !o.IsConst {
			checkVar(n, o.Var, role)
		}
	}

	// Per-kind shape. Nodes with an invalid proc were reported above and
	// cannot be checked further without faulting.
	p.LiveNodes(func(n *Node) {
		if n.Proc < 0 || n.Proc >= len(p.Procs) || p.Procs[n.Proc] == nil {
			return
		}
		switch n.Kind {
		case NAssign:
			if n.Dst != NoVar {
				checkVar(n, n.Dst, "dst")
			}
			switch n.RHS.Kind {
			case RCopy, RNeg, RByte:
				checkVar(n, n.RHS.Src, "src")
			case RBinop:
				checkOperand(n, n.RHS.A, "operand")
				checkOperand(n, n.RHS.B, "operand")
			case RLoad:
				checkVar(n, n.RHS.Src, "base")
				checkOperand(n, n.RHS.A, "index")
			case RAlloc:
				checkOperand(n, n.RHS.A, "size")
			}
		case NAssert:
			checkVar(n, n.AVar, "assert var")
		case NStore:
			checkVar(n, n.Ptr, "base")
			checkOperand(n, n.Idx, "index")
			checkOperand(n, n.Val, "value")
		case NPrint:
			checkOperand(n, n.Val, "value")
		}
		switch n.Kind {
		case NBranch:
			if len(n.Succs) != 2 {
				bad("branch %d has %d successors, want 2", n.ID, len(n.Succs))
			}
			checkVar(n, n.CondVar, "condition")
			checkOperand(n, n.CondRHS, "condition rhs")
		case NExit:
			for _, s := range n.Succs {
				if sn := p.Node(s); sn != nil && sn.Kind != NCallExit {
					bad("exit %d has non-callexit successor %d (%s)", n.ID, s, sn.Kind)
				}
			}
			if !containsID(p.Procs[n.Proc].Exits, n.ID) {
				bad("exit %d not listed in proc %q exits", n.ID, p.Procs[n.Proc].Name)
			}
		case NEntry:
			for _, m := range n.Preds {
				mn := p.Node(m)
				if mn == nil {
					continue
				}
				if mn.Kind != NCall {
					bad("entry %d has non-call predecessor %d (%s)", n.ID, m, mn.Kind)
				} else if mn.Callee != n.Proc {
					bad("entry %d of proc %q reached by call %d targeting callee %d",
						n.ID, p.Procs[n.Proc].Name, m, mn.Callee)
				}
			}
			if !containsID(p.Procs[n.Proc].Entries, n.ID) {
				bad("entry %d not listed in proc %q entries", n.ID, p.Procs[n.Proc].Name)
			}
		case NCall:
			callee := n.Callee
			if callee < 0 || callee >= len(p.Procs) || p.Procs[callee] == nil {
				bad("call %d has invalid callee %d", n.ID, callee)
				return
			}
			if len(n.Args) != len(p.Procs[callee].Formals) {
				bad("call %d passes %d args to %q which has %d formals",
					n.ID, len(n.Args), p.Procs[callee].Name, len(p.Procs[callee].Formals))
			}
			for _, a := range n.Args {
				checkVar(n, a, "argument")
			}
			entries, callExits := 0, 0
			for _, s := range n.Succs {
				sn := p.Node(s)
				if sn == nil {
					continue
				}
				switch sn.Kind {
				case NEntry:
					entries++
					if sn.Proc != callee {
						bad("call %d to %q enters proc %q", n.ID, p.Procs[callee].Name, procName(p, sn.Proc))
					}
				case NCallExit:
					callExits++
					if sn.Proc != n.Proc {
						bad("call %d has callexit %d in a different proc", n.ID, s)
					}
				default:
					bad("call %d has invalid successor kind %s", n.ID, sn.Kind)
				}
			}
			// Normal form (a): exactly one procedure-entry successor.
			if entries != 1 {
				bad("call %d has %d entry successors, want 1 (normal form)", n.ID, entries)
			}
			if callExits < 1 {
				bad("call %d has no call-site-exit successor", n.ID)
			}
		case NCallExit:
			if n.Callee < 0 || n.Callee >= len(p.Procs) || p.Procs[n.Callee] == nil {
				bad("callexit %d has invalid callee %d", n.ID, n.Callee)
				return
			}
			if n.Dst != NoVar {
				checkVar(n, n.Dst, "dst")
			}
			calls, exits := 0, 0
			for _, m := range n.Preds {
				mn := p.Node(m)
				if mn == nil {
					continue
				}
				switch mn.Kind {
				case NCall:
					calls++
					if mn.Callee != n.Callee {
						bad("callexit %d callee mismatch with call %d", n.ID, m)
					}
				case NExit:
					exits++
					if mn.Proc != n.Callee {
						bad("callexit %d returns from proc %q, want %q",
							n.ID, procName(p, mn.Proc), p.Procs[n.Callee].Name)
					}
				default:
					bad("callexit %d has invalid predecessor kind %s", n.ID, mn.Kind)
				}
			}
			// Normal form (b): one call-site predecessor, one exit
			// predecessor.
			if calls != 1 || exits != 1 {
				bad("callexit %d has %d call preds and %d exit preds, want 1/1 (normal form)",
					n.ID, calls, exits)
			}
		}
		// Every node except exits must flow somewhere.
		if n.Kind != NExit && len(n.Succs) == 0 {
			bad("node %d (%s) has no successors", n.ID, n.Kind)
		}
		if n.Kind != NBranch && n.Kind != NCall && n.Kind != NExit && len(n.Succs) > 1 {
			bad("node %d (%s) has %d successors, want at most 1", n.ID, n.Kind, len(n.Succs))
		}
	})

	// Procedure entry/exit lists refer to live nodes of the right kind. A
	// procedure whose every call site was optimized away may be fully
	// pruned (no entries and no nodes) — that is valid dead-code removal.
	for _, pr := range p.Procs {
		if pr == nil {
			continue
		}
		if len(pr.Entries) == 0 && len(p.ProcNodes(pr.Index)) > 0 {
			bad("proc %q has nodes but no entries", pr.Name)
		}
		seenEntry := make(map[NodeID]bool)
		for _, e := range pr.Entries {
			n := p.Node(e)
			if n == nil || n.Kind != NEntry || n.Proc != pr.Index {
				bad("proc %q entry %d invalid", pr.Name, e)
			}
			if seenEntry[e] {
				bad("proc %q lists entry %d twice", pr.Name, e)
			}
			seenEntry[e] = true
		}
		seenExit := make(map[NodeID]bool)
		for _, e := range pr.Exits {
			n := p.Node(e)
			if n == nil || n.Kind != NExit || n.Proc != pr.Index {
				bad("proc %q exit %d invalid", pr.Name, e)
			}
			if seenExit[e] {
				bad("proc %q lists exit %d twice", pr.Name, e)
			}
			seenExit[e] = true
		}
		// The procedure's declared interface variables: formals are
		// parameters of this procedure, the return slot is its VarRet.
		for _, f := range pr.Formals {
			v := varOf(p, f)
			if v == nil {
				bad("proc %q formal %d invalid", pr.Name, f)
			} else if v.Kind != VarParam || v.Proc != pr.Index {
				bad("proc %q formal %q is %s of proc %d, want its own parameter",
					pr.Name, v.Name, v.Kind, v.Proc)
			}
		}
		if v := varOf(p, pr.RetVar); v == nil {
			bad("proc %q return var %d invalid", pr.Name, pr.RetVar)
		} else if v.Kind != VarRet || v.Proc != pr.Index {
			bad("proc %q return var %q is %s of proc %d, want its own return slot",
				pr.Name, v.Name, v.Kind, v.Proc)
		}
	}

	if p.MainProc < 0 || p.MainProc >= len(p.Procs) || p.Procs[p.MainProc] == nil {
		bad("main proc index %d invalid", p.MainProc)
	}

	return errors.Join(errs...)
}

func procName(p *Program, i int) string {
	if i >= 0 && i < len(p.Procs) && p.Procs[i] != nil {
		return p.Procs[i].Name
	}
	return fmt.Sprintf("?%d", i)
}

func varOf(p *Program, v VarID) *Var {
	if v < 0 || int(v) >= len(p.Vars) {
		return nil
	}
	return p.Vars[v]
}

func count(ids []NodeID, x NodeID) int {
	c := 0
	for _, id := range ids {
		if id == x {
			c++
		}
	}
	return c
}

func containsID(ids []NodeID, x NodeID) bool {
	for _, id := range ids {
		if id == x {
			return true
		}
	}
	return false
}
