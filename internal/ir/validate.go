package ir

import (
	"errors"
	"fmt"
)

// Validate checks the structural invariants of the ICFG, including
// call-site normal form. It returns an error describing every violation
// found (joined), or nil.
func Validate(p *Program) error {
	var errs []error
	bad := func(format string, args ...interface{}) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	// Arena consistency and edge symmetry.
	for i, n := range p.Nodes {
		if n == nil {
			continue
		}
		if int(n.ID) != i {
			bad("node at index %d has ID %d", i, n.ID)
		}
		if n.Proc < 0 || n.Proc >= len(p.Procs) {
			bad("node %d has invalid proc %d", n.ID, n.Proc)
			continue
		}
		for _, s := range n.Succs {
			sn := p.Node(s)
			if sn == nil {
				bad("node %d has dangling successor %d", n.ID, s)
				continue
			}
			if count(sn.Preds, n.ID) != count(n.Succs, s) {
				bad("edge %d->%d asymmetric (succs %d, preds %d)",
					n.ID, s, count(n.Succs, s), count(sn.Preds, n.ID))
			}
		}
		for _, m := range n.Preds {
			if p.Node(m) == nil {
				bad("node %d has dangling predecessor %d", n.ID, m)
			}
		}
	}

	// Per-kind shape.
	p.LiveNodes(func(n *Node) {
		switch n.Kind {
		case NBranch:
			if len(n.Succs) != 2 {
				bad("branch %d has %d successors, want 2", n.ID, len(n.Succs))
			}
		case NExit:
			for _, s := range n.Succs {
				if sn := p.Node(s); sn != nil && sn.Kind != NCallExit {
					bad("exit %d has non-callexit successor %d (%s)", n.ID, s, sn.Kind)
				}
			}
			if !containsID(p.Procs[n.Proc].Exits, n.ID) {
				bad("exit %d not listed in proc %q exits", n.ID, p.Procs[n.Proc].Name)
			}
		case NEntry:
			for _, m := range n.Preds {
				if mn := p.Node(m); mn != nil && mn.Kind != NCall {
					bad("entry %d has non-call predecessor %d (%s)", n.ID, m, mn.Kind)
				}
			}
			if !containsID(p.Procs[n.Proc].Entries, n.ID) {
				bad("entry %d not listed in proc %q entries", n.ID, p.Procs[n.Proc].Name)
			}
		case NCall:
			callee := n.Callee
			if callee < 0 || callee >= len(p.Procs) {
				bad("call %d has invalid callee %d", n.ID, callee)
				return
			}
			if len(n.Args) != len(p.Procs[callee].Formals) {
				bad("call %d passes %d args to %q which has %d formals",
					n.ID, len(n.Args), p.Procs[callee].Name, len(p.Procs[callee].Formals))
			}
			entries, callExits := 0, 0
			for _, s := range n.Succs {
				sn := p.Node(s)
				if sn == nil {
					continue
				}
				switch sn.Kind {
				case NEntry:
					entries++
					if sn.Proc != callee {
						bad("call %d to %q enters proc %q", n.ID, p.Procs[callee].Name, p.Procs[sn.Proc].Name)
					}
				case NCallExit:
					callExits++
					if sn.Proc != n.Proc {
						bad("call %d has callexit %d in a different proc", n.ID, s)
					}
				default:
					bad("call %d has invalid successor kind %s", n.ID, sn.Kind)
				}
			}
			// Normal form (a): exactly one procedure-entry successor.
			if entries != 1 {
				bad("call %d has %d entry successors, want 1 (normal form)", n.ID, entries)
			}
			if callExits < 1 {
				bad("call %d has no call-site-exit successor", n.ID)
			}
		case NCallExit:
			calls, exits := 0, 0
			for _, m := range n.Preds {
				mn := p.Node(m)
				if mn == nil {
					continue
				}
				switch mn.Kind {
				case NCall:
					calls++
					if mn.Callee != n.Callee {
						bad("callexit %d callee mismatch with call %d", n.ID, m)
					}
				case NExit:
					exits++
					if mn.Proc != n.Callee {
						bad("callexit %d returns from proc %q, want %q",
							n.ID, p.Procs[mn.Proc].Name, p.Procs[n.Callee].Name)
					}
				default:
					bad("callexit %d has invalid predecessor kind %s", n.ID, mn.Kind)
				}
			}
			// Normal form (b): one call-site predecessor, one exit
			// predecessor.
			if calls != 1 || exits != 1 {
				bad("callexit %d has %d call preds and %d exit preds, want 1/1 (normal form)",
					n.ID, calls, exits)
			}
		}
		// Every node except exits must flow somewhere.
		if n.Kind != NExit && len(n.Succs) == 0 {
			bad("node %d (%s) has no successors", n.ID, n.Kind)
		}
		if n.Kind != NBranch && n.Kind != NCall && n.Kind != NExit && len(n.Succs) > 1 {
			bad("node %d (%s) has %d successors, want at most 1", n.ID, n.Kind, len(n.Succs))
		}
	})

	// Procedure entry/exit lists refer to live nodes of the right kind. A
	// procedure whose every call site was optimized away may be fully
	// pruned (no entries and no nodes) — that is valid dead-code removal.
	for _, pr := range p.Procs {
		if len(pr.Entries) == 0 && len(p.ProcNodes(pr.Index)) > 0 {
			bad("proc %q has nodes but no entries", pr.Name)
		}
		for _, e := range pr.Entries {
			n := p.Node(e)
			if n == nil || n.Kind != NEntry || n.Proc != pr.Index {
				bad("proc %q entry %d invalid", pr.Name, e)
			}
		}
		for _, e := range pr.Exits {
			n := p.Node(e)
			if n == nil || n.Kind != NExit || n.Proc != pr.Index {
				bad("proc %q exit %d invalid", pr.Name, e)
			}
		}
	}

	return errors.Join(errs...)
}

func count(ids []NodeID, x NodeID) int {
	c := 0
	for _, id := range ids {
		if id == x {
			c++
		}
	}
	return c
}

func containsID(ids []NodeID, x NodeID) bool {
	for _, id := range ids {
		if id == x {
			return true
		}
	}
	return false
}
