package ir

import (
	"strings"
	"testing"
)

// corrupt builds the canonical two-procedure program, applies the corruption,
// and asserts Validate reports an error containing want (without panicking).
func corrupt(t *testing.T, want string, mutate func(p *Program)) {
	t.Helper()
	p := build(t, `
		func add(a, b) { return a + b; }
		func main() {
			var x = input();
			if (x > 0) { print(add(x, 1)); } else { print(0); }
		}
	`)
	mutate(p)
	err := Validate(p)
	if err == nil {
		t.Fatalf("Validate accepted the corrupted program\n%s", p.Dump())
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("Validate error %q does not mention %q", err, want)
	}
}

func firstOf(t *testing.T, p *Program, kind NodeKind) *Node {
	t.Helper()
	ns := findNodes(p, kind)
	if len(ns) == 0 {
		t.Fatalf("no %s node\n%s", kind, p.Dump())
	}
	return ns[0]
}

func TestValidateEntryPredCalleeMismatch(t *testing.T) {
	corrupt(t, "targeting callee", func(p *Program) {
		// Retarget the call at a different procedure without rewiring its
		// entry successor: the entry's call pred now disagrees.
		call := firstOf(t, p, NCall)
		call.Callee = p.MainProc
		// Keep arg count matching main's zero formals out of the picture by
		// clearing args; the entry-side check is what this test pins.
		call.Args = nil
	})
}

func TestValidateDanglingSuccessor(t *testing.T) {
	corrupt(t, "dangling successor", func(p *Program) {
		n := firstOf(t, p, NPrint)
		n.Succs = append(n.Succs, NodeID(len(p.Nodes)+5))
	})
}

func TestValidateAsymmetricEdge(t *testing.T) {
	corrupt(t, "asymmetric", func(p *Program) {
		n := firstOf(t, p, NPrint)
		n.Succs = append(n.Succs, n.Succs[0]) // succ twice, pred once
	})
}

func TestValidateBranchArity(t *testing.T) {
	corrupt(t, "successors, want 2", func(p *Program) {
		b := firstOf(t, p, NBranch)
		p.RemoveEdge(b.ID, b.Succs[0])
	})
}

func TestValidateCallExitMissingExitPred(t *testing.T) {
	corrupt(t, "want 1/1", func(p *Program) {
		ce := firstOf(t, p, NCallExit)
		ex := p.ExitPred(ce)
		p.RemoveEdge(ex.ID, ce.ID)
	})
}

func TestValidateCallWithoutEntry(t *testing.T) {
	corrupt(t, "entry successors, want 1", func(p *Program) {
		call := firstOf(t, p, NCall)
		for _, s := range append([]NodeID(nil), call.Succs...) {
			if p.Node(s).Kind == NEntry {
				p.RemoveEdge(call.ID, s)
			}
		}
	})
}

func TestValidateInvalidCallee(t *testing.T) {
	corrupt(t, "invalid callee", func(p *Program) {
		firstOf(t, p, NCall).Callee = 99
	})
}

func TestValidateInvalidCallExitCallee(t *testing.T) {
	corrupt(t, "invalid callee", func(p *Program) {
		firstOf(t, p, NCallExit).Callee = -3
	})
}

func TestValidateBranchVarOutOfRange(t *testing.T) {
	corrupt(t, "references invalid var", func(p *Program) {
		firstOf(t, p, NBranch).CondVar = VarID(len(p.Vars) + 7)
	})
}

func TestValidateCrossProcVarRef(t *testing.T) {
	corrupt(t, "of another proc", func(p *Program) {
		// Point an assignment's destination at a variable of the other
		// procedure.
		add := p.ProcByName("add")
		var foreign VarID = NoVar
		for _, v := range p.Vars {
			if v != nil && !v.IsGlobal() && v.Proc == add.Index {
				foreign = v.ID
				break
			}
		}
		if foreign == NoVar {
			t.Fatalf("no variable owned by add")
		}
		for _, n := range p.Nodes {
			if n != nil && n.Kind == NAssign && n.Proc == p.MainProc {
				n.Dst = foreign
				return
			}
		}
		t.Fatalf("no assignment in main")
	})
}

func TestValidateArgVarInvalid(t *testing.T) {
	corrupt(t, "argument references invalid var", func(p *Program) {
		call := firstOf(t, p, NCall)
		call.Args[0] = VarID(len(p.Vars) + 1)
	})
}

func TestValidateFormalWrongKind(t *testing.T) {
	corrupt(t, "want its own parameter", func(p *Program) {
		add := p.ProcByName("add")
		// Swap a formal for main's return slot: wrong kind and wrong owner.
		add.Formals[0] = p.Procs[p.MainProc].RetVar
	})
}

func TestValidateRetVarInvalid(t *testing.T) {
	corrupt(t, "return var", func(p *Program) {
		p.ProcByName("add").RetVar = VarID(len(p.Vars) + 2)
	})
}

func TestValidateDuplicateEntry(t *testing.T) {
	corrupt(t, "twice", func(p *Program) {
		pr := p.ProcByName("add")
		pr.Entries = append(pr.Entries, pr.Entries[0])
	})
}

func TestValidateDuplicateExit(t *testing.T) {
	corrupt(t, "twice", func(p *Program) {
		pr := p.ProcByName("add")
		pr.Exits = append(pr.Exits, pr.Exits[0])
	})
}

func TestValidateMainProcOutOfRange(t *testing.T) {
	corrupt(t, "main proc index", func(p *Program) {
		p.MainProc = len(p.Procs)
	})
}

func TestValidateInvalidNodeProcDoesNotPanic(t *testing.T) {
	// A node with an out-of-range procedure is reported once and skipped by
	// the per-kind checks rather than faulting on p.Procs[n.Proc].
	corrupt(t, "invalid proc", func(p *Program) {
		firstOf(t, p, NExit).Proc = -1
	})
	corrupt(t, "invalid proc", func(p *Program) {
		firstOf(t, p, NEntry).Proc = len(p.Procs) + 1
	})
}

func TestValidateVarArenaMismatch(t *testing.T) {
	corrupt(t, "has ID", func(p *Program) {
		for _, v := range p.Vars {
			if v != nil {
				v.ID++
				return
			}
		}
	})
}
