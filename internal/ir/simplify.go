package ir

// Simplify contracts synthetic no-op nodes out of the graph: joins, loop
// anchors, and the empty nodes left behind by eliminated conditionals.
// Every predecessor of a removable nop is redirected to the nop's unique
// successor. Branch arms are preserved (each arm must remain a dedicated
// node so the true/false successors stay unambiguous), as are assert
// nodes (they carry the facts the interpreter re-verifies) and all
// procedure-structure nodes. It returns the number of nodes removed.
//
// Simplification changes neither the output nor the operation count of
// any execution; it only shortens the synthetic hops between operations.
func Simplify(p *Program) int {
	removed := 0
	for {
		changed := false
		var candidates []*Node
		p.LiveNodes(func(n *Node) {
			if n.Kind == NNop && n.Synthetic {
				candidates = append(candidates, n)
			}
		})
		for _, n := range candidates {
			if p.Node(n.ID) == nil {
				continue
			}
			if !contractible(p, n) {
				continue
			}
			succ := n.Succs[0]
			for _, m := range append([]NodeID(nil), n.Preds...) {
				p.RedirectSucc(m, n.ID, succ)
			}
			p.DeleteNode(n.ID)
			removed++
			changed = true
		}
		if !changed {
			return removed
		}
	}
}

// contractible reports whether the nop can be removed by redirecting its
// predecessors to its unique successor.
func contractible(p *Program, n *Node) bool {
	if len(n.Succs) != 1 || len(n.Preds) == 0 || n.Succs[0] == n.ID {
		return false
	}
	for _, m := range n.Preds {
		mn := p.Node(m)
		if mn == nil || mn.Kind == NBranch {
			// The nop is a branch arm: it must stay a dedicated node.
			return false
		}
	}
	return true
}
