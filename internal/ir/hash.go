package ir

import (
	"crypto/sha256"
	"encoding/hex"
	"hash"
	"sort"
)

// Sum is a 32-byte SHA-256 content hash.
type Sum [32]byte

// Hex returns the lowercase hex encoding of the sum.
func (s Sum) Hex() string { return hex.EncodeToString(s[:]) }

// ProcHash carries the content identity of one procedure: a Local hash over
// its own nodes, edges, and operands (independent of names, source lines,
// arena IDs, and callee identity) and a Closure hash that additionally folds
// in the closure hashes of every callee, so two procedures share a Closure
// only when their whole call trees are structurally identical. The canonical
// node and variable orders used to compute the hash are retained so callers
// can translate node/var references between any two procedures that share a
// Closure (the summary store persists records in canonical coordinates).
type ProcHash struct {
	Index   int
	Local   Sum
	Closure Sum

	nodes   []NodeID // canonical order
	nodeIdx map[NodeID]int32
	vars    []VarID // canonical order, proc-owned only
	varIdx  map[VarID]int32
	callees []int // callee proc indices in first-appearance (slot) order
}

// NodeCount returns the number of live nodes in the procedure.
func (ph *ProcHash) NodeCount() int { return len(ph.nodes) }

// NodeAt returns the NodeID at the given canonical index.
func (ph *ProcHash) NodeAt(i int32) (NodeID, bool) {
	if i < 0 || int(i) >= len(ph.nodes) {
		return NoNode, false
	}
	return ph.nodes[i], true
}

// NodeIndex returns the canonical index of a node of this procedure.
func (ph *ProcHash) NodeIndex(id NodeID) (int32, bool) {
	i, ok := ph.nodeIdx[id]
	return i, ok
}

// VarCount returns the number of procedure-owned variables.
func (ph *ProcHash) VarCount() int { return len(ph.vars) }

// VarAt returns the VarID at the given canonical index.
func (ph *ProcHash) VarAt(i int32) (VarID, bool) {
	if i < 0 || int(i) >= len(ph.vars) {
		return NoVar, false
	}
	return ph.vars[i], true
}

// VarIndex returns the canonical index of a procedure-owned variable.
func (ph *ProcHash) VarIndex(id VarID) (int32, bool) {
	i, ok := ph.varIdx[id]
	return i, ok
}

// ProgramHash is the canonical, order-independent content hash of a whole
// program plus the per-procedure tables needed to remap references.
type ProgramHash struct {
	// Sum identifies the program content: main procedure closure, the
	// multiset of all procedure closures, and the global variable
	// signatures. It is independent of procedure/local names, source lines,
	// arena numbering, and declaration order.
	Sum Sum

	procs     []*ProcHash
	globals   []VarID // sorted by name
	globalIdx map[VarID]int32
	byClosure map[Sum]*ProcHash
}

// NumProcs returns the number of procedures.
func (h *ProgramHash) NumProcs() int { return len(h.procs) }

// Proc returns the hash tables for the procedure with the given index.
func (h *ProgramHash) Proc(i int) *ProcHash {
	if i < 0 || i >= len(h.procs) {
		return nil
	}
	return h.procs[i]
}

// ByClosure returns the first procedure (lowest index) whose Closure matches.
func (h *ProgramHash) ByClosure(sum Sum) *ProcHash { return h.byClosure[sum] }

// GlobalCount returns the number of global variables.
func (h *ProgramHash) GlobalCount() int { return len(h.globals) }

// GlobalAt returns the VarID of the global at the given canonical index
// (globals are ordered by name).
func (h *ProgramHash) GlobalAt(i int32) (VarID, bool) {
	if i < 0 || int(i) >= len(h.globals) {
		return NoVar, false
	}
	return h.globals[i], true
}

// GlobalIndex returns the canonical index of a global variable.
func (h *ProgramHash) GlobalIndex(id VarID) (int32, bool) {
	i, ok := h.globalIdx[id]
	return i, ok
}

// hasher wraps a SHA-256 stream with primitive writers. Every write is
// length- or tag-delimited so distinct field sequences cannot collide by
// concatenation.
type hasher struct {
	h   hash.Hash
	buf [9]byte
}

func newHasher() *hasher { return &hasher{h: sha256.New()} }

func (w *hasher) u8(b byte) {
	w.buf[0] = b
	w.h.Write(w.buf[:1])
}

func (w *hasher) i32(v int32) {
	u := uint32(v)
	w.buf[0], w.buf[1], w.buf[2], w.buf[3] = byte(u), byte(u>>8), byte(u>>16), byte(u>>24)
	w.h.Write(w.buf[:4])
}

func (w *hasher) i64(v int64) {
	u := uint64(v)
	for i := 0; i < 8; i++ {
		w.buf[i] = byte(u >> (8 * i))
	}
	w.h.Write(w.buf[:8])
}

func (w *hasher) str(s string) {
	w.i32(int32(len(s)))
	w.h.Write([]byte(s))
}

func (w *hasher) sum() Sum {
	var s Sum
	w.h.Sum(s[:0])
	return s
}

// HashProgram computes the canonical content hash of a program. The program
// must be structurally sound (ir.Validate-clean); deleted nodes are skipped.
//
// The hash is computed in canonical coordinates: nodes are numbered by a
// deterministic depth-first traversal from each procedure's entries
// (successor order preserved — branch arms are significant), variables by
// formals, return variable, then first reference in canonical node order.
// Local hashes refer to callees by call-appearance slot, not by name, so
// renaming a procedure or reordering declarations does not change any hash;
// Closure hashes are the fixpoint of folding callee closures into the local
// hash, which distinguishes procedures by their entire call tree while
// remaining well-defined for recursion.
func HashProgram(p *Program) *ProgramHash {
	h := &ProgramHash{
		globalIdx: make(map[VarID]int32),
		byClosure: make(map[Sum]*ProcHash),
	}

	// Global table: sorted by name (ties broken by ID for determinism in the
	// face of duplicate names, which sema rejects anyway).
	for _, v := range p.Vars {
		if v != nil && v.IsGlobal() {
			h.globals = append(h.globals, v.ID)
		}
	}
	sort.Slice(h.globals, func(i, j int) bool {
		a, b := p.Var(h.globals[i]), p.Var(h.globals[j])
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.ID < b.ID
	})
	for i, id := range h.globals {
		h.globalIdx[id] = int32(i)
	}

	// Bucket live nodes by owning procedure once (ProcNodes per proc is
	// quadratic in arena size).
	procNodes := make([][]*Node, len(p.Procs))
	for _, n := range p.Nodes {
		if n != nil && n.Proc >= 0 && n.Proc < len(procNodes) {
			procNodes[n.Proc] = append(procNodes[n.Proc], n)
		}
	}

	h.procs = make([]*ProcHash, len(p.Procs))
	for i, pr := range p.Procs {
		h.procs[i] = hashProc(p, pr, procNodes[i], h)
	}

	// Closure fixpoint: iterate until the equality partition over closure
	// sums stabilizes (color refinement converges in ≤ numProcs rounds; the
	// cap is a safety net).
	n := len(h.procs)
	cl := make([]Sum, n)
	for i, ph := range h.procs {
		cl[i] = ph.Local
	}
	maxIter := n + 2
	if maxIter > 64 {
		maxIter = 64
	}
	for it := 0; it < maxIter; it++ {
		next := make([]Sum, n)
		for i, ph := range h.procs {
			w := newHasher()
			w.str("icbe-closure-v1")
			w.h.Write(ph.Local[:])
			for _, callee := range ph.callees {
				if callee >= 0 && callee < n {
					w.h.Write(cl[callee][:])
				} else {
					w.u8('?')
					w.i32(int32(callee))
				}
			}
			next[i] = w.sum()
		}
		if samePartition(cl, next) {
			cl = next
			break
		}
		cl = next
	}
	for i, ph := range h.procs {
		ph.Closure = cl[i]
		if _, dup := h.byClosure[ph.Closure]; !dup {
			h.byClosure[ph.Closure] = ph
		}
	}

	// Program sum: main closure, sorted closure multiset, global signatures.
	w := newHasher()
	w.str("icbe-program-v1")
	w.i32(int32(len(h.procs)))
	if p.MainProc >= 0 && p.MainProc < len(h.procs) {
		w.h.Write(h.procs[p.MainProc].Closure[:])
	}
	sorted := make([]Sum, len(cl))
	copy(sorted, cl)
	sort.Slice(sorted, func(i, j int) bool {
		for k := range sorted[i] {
			if sorted[i][k] != sorted[j][k] {
				return sorted[i][k] < sorted[j][k]
			}
		}
		return false
	})
	for _, s := range sorted {
		w.h.Write(s[:])
	}
	w.i32(int32(len(h.globals)))
	for _, id := range h.globals {
		v := p.Var(id)
		w.str(v.Name)
		w.i64(v.Init)
	}
	h.Sum = w.sum()
	return h
}

// samePartition reports whether two sum slices induce the same equality
// partition over indices (i ~ j iff a[i]==a[j] iff b[i]==b[j]).
func samePartition(a, b []Sum) bool {
	rep := make(map[Sum]Sum, len(a))
	seen := make(map[Sum]bool, len(b))
	for i := range a {
		if r, ok := rep[a[i]]; ok {
			if r != b[i] {
				return false
			}
		} else {
			if seen[b[i]] {
				return false
			}
			rep[a[i]] = b[i]
			seen[b[i]] = true
		}
	}
	return true
}

func hashProc(p *Program, pr *Proc, nodes []*Node, prog *ProgramHash) *ProcHash {
	ph := &ProcHash{
		Index:   pr.Index,
		nodeIdx: make(map[NodeID]int32, len(nodes)),
		varIdx:  make(map[VarID]int32),
	}

	// Canonical node order: DFS from entries in declared order, successor
	// order preserved, then any remaining proc nodes in ID order so every
	// live node gets a coordinate.
	seen := make(map[NodeID]bool, len(nodes))
	var stack []NodeID
	for i := len(pr.Entries) - 1; i >= 0; i-- {
		stack = append(stack, pr.Entries[i])
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] {
			continue
		}
		n := p.Node(id)
		if n == nil || n.Proc != pr.Index {
			continue
		}
		seen[id] = true
		ph.nodeIdx[id] = int32(len(ph.nodes))
		ph.nodes = append(ph.nodes, id)
		for i := len(n.Succs) - 1; i >= 0; i-- {
			s := n.Succs[i]
			if sn := p.Node(s); sn != nil && sn.Proc == pr.Index && !seen[s] {
				stack = append(stack, s)
			}
		}
	}
	rest := make([]NodeID, 0)
	for _, n := range nodes {
		if !seen[n.ID] {
			rest = append(rest, n.ID)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
	for _, id := range rest {
		ph.nodeIdx[id] = int32(len(ph.nodes))
		ph.nodes = append(ph.nodes, id)
	}

	// Canonical var order: formals, return variable, then first reference in
	// canonical node order, then any remaining proc-owned vars by ID.
	addVar := func(id VarID) {
		if id == NoVar {
			return
		}
		v := p.Var(id)
		if v.IsGlobal() || v.Proc != pr.Index {
			return
		}
		if _, ok := ph.varIdx[id]; ok {
			return
		}
		ph.varIdx[id] = int32(len(ph.vars))
		ph.vars = append(ph.vars, id)
	}
	for _, f := range pr.Formals {
		addVar(f)
	}
	addVar(pr.RetVar)
	var refs []VarID
	for _, id := range ph.nodes {
		refs = appendNodeVarRefs(p.Node(id), refs[:0])
		for _, v := range refs {
			addVar(v)
		}
	}
	var ownedRest []VarID
	for _, v := range p.Vars {
		if v != nil && !v.IsGlobal() && v.Proc == pr.Index {
			if _, ok := ph.varIdx[v.ID]; !ok {
				ownedRest = append(ownedRest, v.ID)
			}
		}
	}
	sort.Slice(ownedRest, func(i, j int) bool { return ownedRest[i] < ownedRest[j] })
	for _, id := range ownedRest {
		ph.varIdx[id] = int32(len(ph.vars))
		ph.vars = append(ph.vars, id)
	}

	// Callee slots: first call appearance in canonical node order.
	slot := make(map[int]int)
	calleeSlot := func(c int) int {
		if s, ok := slot[c]; ok {
			return s
		}
		s := len(ph.callees)
		slot[c] = s
		ph.callees = append(ph.callees, c)
		return s
	}
	for _, id := range ph.nodes {
		n := p.Node(id)
		if n.Kind == NCall || n.Kind == NCallExit {
			calleeSlot(n.Callee)
		}
	}

	// Local hash.
	w := newHasher()
	w.str("icbe-proc-v1")
	w.i32(int32(len(pr.Formals)))
	writeVarRef(w, p, ph, prog, pr.RetVar)
	w.i32(int32(len(pr.Entries)))
	for _, e := range pr.Entries {
		w.i32(ph.nodeIdx[e])
	}
	w.i32(int32(len(pr.Exits)))
	for _, e := range pr.Exits {
		w.i32(ph.nodeIdx[e])
	}
	w.i32(int32(len(ph.nodes)))
	for _, id := range ph.nodes {
		hashNode(w, p, ph, prog, pr, slot, p.Node(id))
	}
	ph.Local = w.sum()
	return ph
}

// appendNodeVarRefs appends the variables a node references, in a fixed
// per-kind field order, including NoVar placeholders' absence (NoVar and
// constant operands contribute nothing).
func appendNodeVarRefs(n *Node, dst []VarID) []VarID {
	add := func(v VarID) {
		if v != NoVar {
			dst = append(dst, v)
		}
	}
	addOp := func(o Operand) {
		if !o.IsConst {
			add(o.Var)
		}
	}
	switch n.Kind {
	case NAssign:
		add(n.Dst)
		switch n.RHS.Kind {
		case RCopy, RNeg, RByte:
			add(n.RHS.Src)
		case RBinop:
			addOp(n.RHS.A)
			addOp(n.RHS.B)
		case RLoad:
			add(n.RHS.Src)
			addOp(n.RHS.A)
		case RAlloc:
			addOp(n.RHS.A)
		}
	case NCallExit:
		add(n.Dst)
	case NCall:
		for _, a := range n.Args {
			add(a)
		}
	case NBranch:
		add(n.CondVar)
		addOp(n.CondRHS)
	case NAssert:
		add(n.AVar)
	case NStore:
		add(n.Ptr)
		addOp(n.Idx)
		addOp(n.Val)
	case NPrint:
		addOp(n.Val)
	}
	return dst
}

// writeVarRef hashes a variable reference in canonical coordinates: locals
// by canonical index, globals by (name, init) signature — global identity is
// part of program meaning, local names are not.
func writeVarRef(w *hasher, p *Program, ph *ProcHash, prog *ProgramHash, id VarID) {
	if id == NoVar {
		w.u8(0xFF)
		return
	}
	v := p.Var(id)
	if v.IsGlobal() {
		w.u8('g')
		w.str(v.Name)
		w.i64(v.Init)
		return
	}
	if i, ok := ph.varIdx[id]; ok {
		w.u8('l')
		w.i32(i)
		return
	}
	// Foreign-proc reference: structurally invalid, but hash it
	// deterministically rather than panicking on a corrupted graph.
	w.u8('?')
	w.i32(int32(id))
}

func writeOperand(w *hasher, p *Program, ph *ProcHash, prog *ProgramHash, o Operand) {
	if o.IsConst {
		w.u8('c')
		w.i64(o.Const)
		return
	}
	writeVarRef(w, p, ph, prog, o.Var)
}

func hashNode(w *hasher, p *Program, ph *ProcHash, prog *ProgramHash, pr *Proc, slot map[int]int, n *Node) {
	w.u8(uint8(n.Kind))
	if n.Synthetic {
		w.u8(1)
	} else {
		w.u8(0)
	}
	switch n.Kind {
	case NAssign:
		writeVarRef(w, p, ph, prog, n.Dst)
		w.u8(uint8(n.RHS.Kind))
		switch n.RHS.Kind {
		case RConst:
			w.i64(n.RHS.Const)
		case RCopy, RNeg, RByte:
			writeVarRef(w, p, ph, prog, n.RHS.Src)
		case RBinop:
			w.u8(uint8(n.RHS.Op))
			writeOperand(w, p, ph, prog, n.RHS.A)
			writeOperand(w, p, ph, prog, n.RHS.B)
		case RLoad:
			writeVarRef(w, p, ph, prog, n.RHS.Src)
			writeOperand(w, p, ph, prog, n.RHS.A)
		case RAlloc:
			writeOperand(w, p, ph, prog, n.RHS.A)
		}
	case NCallExit:
		writeVarRef(w, p, ph, prog, n.Dst)
		w.i32(int32(slot[n.Callee]))
		// Which exits of the callee feed this call-site exit (significant
		// after exit splitting). Positions are sorted: pred order is not.
		var exits []int32
		for _, m := range n.Preds {
			mn := p.Node(m)
			if mn == nil || mn.Kind != NExit || mn.Proc == pr.Index {
				continue
			}
			if mn.Proc >= 0 && mn.Proc < len(p.Procs) {
				for i, e := range p.Procs[mn.Proc].Exits {
					if e == m {
						exits = append(exits, int32(i))
					}
				}
			}
		}
		sort.Slice(exits, func(i, j int) bool { return exits[i] < exits[j] })
		w.i32(int32(len(exits)))
		for _, e := range exits {
			w.i32(e)
		}
	case NCall:
		w.i32(int32(slot[n.Callee]))
		w.i32(int32(len(n.Args)))
		for _, a := range n.Args {
			writeVarRef(w, p, ph, prog, a)
		}
	case NBranch:
		writeVarRef(w, p, ph, prog, n.CondVar)
		w.u8(uint8(n.CondOp))
		writeOperand(w, p, ph, prog, n.CondRHS)
	case NAssert:
		writeVarRef(w, p, ph, prog, n.AVar)
		w.u8(uint8(n.APred.Op))
		w.i64(n.APred.C)
	case NStore:
		writeVarRef(w, p, ph, prog, n.Ptr)
		writeOperand(w, p, ph, prog, n.Idx)
		writeOperand(w, p, ph, prog, n.Val)
	case NPrint:
		writeOperand(w, p, ph, prog, n.Val)
	}
	// Successors: same-proc edges by canonical index in order (branch arm
	// order is significant); the edge into a callee entry by callee slot and
	// entry position. Cross-proc exit→call-site-exit successors are the
	// caller's structure, not this procedure's, and are excluded so a
	// procedure's hash does not depend on who calls it.
	w.u8('S')
	for _, s := range n.Succs {
		sn := p.Node(s)
		if sn == nil {
			continue
		}
		if sn.Proc == pr.Index {
			w.u8('s')
			w.i32(ph.nodeIdx[s])
		} else if sn.Kind == NEntry && sn.Proc >= 0 && sn.Proc < len(p.Procs) {
			w.u8('e')
			w.i32(int32(slot[sn.Proc]))
			pos := int32(-1)
			for i, e := range p.Procs[sn.Proc].Entries {
				if e == s {
					pos = int32(i)
					break
				}
			}
			w.i32(pos)
		}
	}
	w.u8('E')
}
