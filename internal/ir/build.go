package ir

import (
	"fmt"
	"strconv"
	"strings"

	"icbe/internal/minic"
	"icbe/internal/pred"
)

// Build parses, checks, and lowers MiniC source text into an ICFG.
func Build(src string) (*Program, error) {
	ast, err := minic.Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := minic.Check(ast)
	if err != nil {
		return nil, err
	}
	prog, err := BuildAST(ast, info)
	if err != nil {
		return nil, err
	}
	prog.SourceLines = strings.Count(src, "\n") + 1
	return prog, nil
}

// BuildAST lowers a checked AST onto the ICFG.
func BuildAST(ast *minic.Program, info *minic.Info) (*Program, error) {
	b := &builder{
		ast:  ast,
		info: info,
		prog: &Program{},
		vars: make(map[*minic.Symbol]VarID),
	}
	b.lowerProgram()
	if b.err != nil {
		return nil, b.err
	}
	return b.prog, nil
}

type loopCtx struct {
	head  NodeID // continue target
	after NodeID // break target
}

type builder struct {
	ast  *minic.Program
	info *minic.Info
	prog *Program
	vars map[*minic.Symbol]VarID

	proc  int
	cur   *Node // nil while lowering unreachable code
	exit  *Node
	loops []loopCtx
	ntemp int
	err   error
}

func (b *builder) errorf(pos minic.Pos, format string, args ...interface{}) {
	if b.err == nil {
		b.err = fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...))
	}
}

func (b *builder) lowerProgram() {
	p := b.prog
	// Globals first so their IDs are dense at the front of the arena.
	for i, sym := range b.info.GlobalSyms {
		id := p.NewVar(sym.Name, VarGlobal, -1)
		b.vars[sym] = id
		g := b.ast.Globals[i]
		if g.HasInit {
			p.Vars[id].Init = g.Init
		}
	}
	// Procedure shells: formals and return variables.
	for i, fn := range b.ast.Procs {
		pr := &Proc{Name: fn.Name, Index: i}
		nparams := len(fn.Params)
		for j := 0; j < nparams; j++ {
			sym := b.info.ProcSyms[i][j]
			id := p.NewVar(fn.Name+"."+sym.Name, VarParam, i)
			b.vars[sym] = id
			pr.Formals = append(pr.Formals, id)
		}
		pr.RetVar = p.NewVar(fn.Name+".$ret", VarRet, i)
		p.Procs = append(p.Procs, pr)
	}
	p.MainProc = b.info.ProcIdx["main"]

	// Lower each procedure body.
	for i, fn := range b.ast.Procs {
		b.lowerProc(i, fn)
		if b.err != nil {
			return
		}
	}

	// Link interprocedural edges: call → callee entry, callee exit →
	// call-site exit.
	p.LiveNodes(func(n *Node) {
		if n.Kind != NCall {
			return
		}
		callee := p.Procs[n.Callee]
		p.AddEdge(n.ID, callee.Entries[0])
		for _, ce := range p.CallExitSuccs(n) {
			p.AddEdge(callee.Exits[0], ce.ID)
		}
	})

	// Prune intraprocedurally unreachable nodes.
	for i := range p.Procs {
		b.pruneProc(i)
	}
}

func (b *builder) lowerProc(idx int, fn *minic.Proc) {
	p := b.prog
	pr := p.Procs[idx]
	b.proc = idx
	b.ntemp = 0
	b.loops = nil

	entry := p.NewNode(NEntry, idx)
	entry.Line = int(fn.Pos.Line)
	pr.Entries = []NodeID{entry.ID}
	b.exit = p.NewNode(NExit, idx)
	pr.Exits = []NodeID{b.exit.ID}

	b.cur = entry
	b.lowerBlock(fn.Body)
	if b.cur != nil {
		// Implicit `return 0` when control falls off the end.
		n := b.newAssign(pr.RetVar, RHS{Kind: RConst, Const: 0}, int(fn.Pos.Line))
		b.emit(n)
		p.AddEdge(b.cur.ID, b.exit.ID)
		b.cur = nil
	}
}

// pruneProc removes nodes of the procedure not reachable from any of its
// entries (via intraprocedural edges, treating call → call-site-exit as the
// local fallthrough).
func (b *builder) pruneProc(idx int) {
	p := b.prog
	pr := p.Procs[idx]
	seen := make([]bool, len(p.Nodes))
	stack := make([]NodeID, 0, len(pr.Entries))
	for _, e := range pr.Entries {
		seen[e] = true
		stack = append(stack, e)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range p.Nodes[id].Succs {
			sn := p.Nodes[s]
			if sn == nil || sn.Proc != idx || seen[s] {
				continue
			}
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for _, n := range p.Nodes {
		if n != nil && n.Proc == idx && !seen[n.ID] {
			p.DeleteNode(n.ID)
		}
	}
	var exits []NodeID
	for _, e := range pr.Exits {
		if seen[e] {
			exits = append(exits, e)
		}
	}
	pr.Exits = exits
}

// emit appends node n to the current flow position.
func (b *builder) emit(n *Node) {
	if b.cur != nil {
		b.prog.AddEdge(b.cur.ID, n.ID)
	}
	b.cur = n
}

func (b *builder) newTemp() VarID {
	b.ntemp++
	name := b.prog.Procs[b.proc].Name + ".%t" + strconv.Itoa(b.ntemp)
	return b.prog.NewVar(name, VarTemp, b.proc)
}

func (b *builder) newAssign(dst VarID, rhs RHS, line int) *Node {
	n := b.prog.NewNode(NAssign, b.proc)
	n.Dst = dst
	n.RHS = rhs
	n.Line = line
	return n
}

func (b *builder) newAssert(v VarID, pr pred.Pred, line int) *Node {
	n := b.prog.NewNode(NAssert, b.proc)
	n.AVar = v
	n.APred = pr
	n.Line = line
	return n
}

func (b *builder) lowerBlock(blk *minic.Block) {
	for _, s := range blk.Stmts {
		if b.err != nil {
			return
		}
		if b.cur == nil {
			// Unreachable code after return/break/continue: skip.
			return
		}
		b.lowerStmt(s)
	}
}

func (b *builder) lowerStmt(s minic.Stmt) {
	switch s := s.(type) {
	case *minic.VarDecl:
		sym := b.info.DeclSyms[s]
		id := b.prog.NewVar(b.prog.Procs[b.proc].Name+"."+s.Name, VarLocal, b.proc)
		if s.Init != nil {
			// Initializer evaluated before the variable exists (it may
			// reference an outer binding of the same name).
			b.lowerExprInto(id, s.Init, int(s.Pos.Line))
			b.vars[sym] = id
		} else {
			b.vars[sym] = id
			b.emit(b.newAssign(id, RHS{Kind: RConst, Const: 0}, int(s.Pos.Line)))
		}

	case *minic.AssignStmt:
		dst := b.vars[b.info.AssignSyms[s]]
		b.lowerExprInto(dst, s.Value, int(s.Pos.Line))

	case *minic.StoreStmt:
		ptr := b.vars[b.info.StoreSyms[s]]
		idx := b.lowerOperand(s.Index)
		val := b.lowerOperand(s.Value)
		n := b.prog.NewNode(NStore, b.proc)
		n.Ptr = ptr
		n.Idx = idx
		n.Val = val
		n.Line = int(s.Pos.Line)
		b.emit(n)
		// The store dereferenced ptr, so ptr != 0 past this point.
		b.emit(b.newAssert(ptr, pred.Pred{Op: pred.Ne, C: 0}, int(s.Pos.Line)))

	case *minic.CallStmt:
		b.lowerCall(s.Call, NoVar, int(s.Pos.Line))

	case *minic.PrintStmt:
		val := b.lowerOperand(s.Value)
		n := b.prog.NewNode(NPrint, b.proc)
		n.Val = val
		n.Line = int(s.Pos.Line)
		b.emit(n)

	case *minic.ReturnStmt:
		retVar := b.prog.Procs[b.proc].RetVar
		if s.Value != nil {
			b.lowerExprInto(retVar, s.Value, int(s.Pos.Line))
		} else {
			b.emit(b.newAssign(retVar, RHS{Kind: RConst, Const: 0}, int(s.Pos.Line)))
		}
		b.prog.AddEdge(b.cur.ID, b.exit.ID)
		b.cur = nil

	case *minic.BreakStmt:
		lc := b.loops[len(b.loops)-1]
		b.prog.AddEdge(b.cur.ID, lc.after)
		b.cur = nil

	case *minic.ContinueStmt:
		lc := b.loops[len(b.loops)-1]
		b.prog.AddEdge(b.cur.ID, lc.head)
		b.cur = nil

	case *minic.IfStmt:
		b.lowerIf(s)

	case *minic.WhileStmt:
		b.lowerWhile(s)

	default:
		panic(fmt.Sprintf("ir: unknown statement %T", s))
	}
}

// loweredCond is the result of lowering a condition: either a folded
// constant outcome or a branch node with its assertion predicates.
type loweredCond struct {
	folded  bool
	outcome bool
	branch  *Node
}

// mirror returns the operator m such that (c op v) == (v m c).
func mirror(op pred.Op) pred.Op {
	switch op {
	case pred.Lt:
		return pred.Gt
	case pred.Le:
		return pred.Ge
	case pred.Gt:
		return pred.Lt
	case pred.Ge:
		return pred.Le
	}
	return op // Eq, Ne are symmetric
}

func (b *builder) lowerCond(c *minic.Cond) loweredCond {
	lhs := b.lowerOperand(c.Lhs)
	rhs := b.lowerOperand(c.Rhs)
	if lhs.IsConst && rhs.IsConst {
		return loweredCond{folded: true, outcome: c.Op.Eval(lhs.Const, rhs.Const)}
	}
	op := c.Op
	if lhs.IsConst {
		lhs, rhs = rhs, lhs
		op = mirror(op)
	}
	n := b.prog.NewNode(NBranch, b.proc)
	n.CondVar = lhs.Var
	n.CondOp = op
	n.CondRHS = rhs
	n.Line = int(c.Pos.Line)
	return loweredCond{branch: n}
}

// branchArm prepares the true or false arm of a branch: it connects the
// branch to the arm's first node (an assert node for analyzable branches, a
// nop otherwise to keep Succs order stable) and makes it current.
func (b *builder) branchArm(br *Node, takeTrue bool) {
	var arm *Node
	if br.Analyzable() {
		pr := br.CondPred()
		if !takeTrue {
			pr = pr.Negate()
		}
		arm = b.newAssert(br.CondVar, pr, br.Line)
	} else {
		arm = b.prog.NewNode(NNop, b.proc)
		arm.Line = br.Line
	}
	// Direct append keeps true before false in Succs.
	br.Succs = append(br.Succs, arm.ID)
	arm.Preds = append(arm.Preds, br.ID)
	b.cur = arm
}

func (b *builder) lowerIf(s *minic.IfStmt) {
	lc := b.lowerCond(s.Cond)
	if lc.folded {
		if lc.outcome {
			b.lowerBlock(s.Then)
		} else if s.Else != nil {
			b.lowerElse(s.Else)
		}
		return
	}
	b.emit(lc.branch)

	b.branchArm(lc.branch, true)
	b.lowerBlock(s.Then)
	thenEnd := b.cur

	b.branchArm(lc.branch, false)
	if s.Else != nil {
		b.lowerElse(s.Else)
	}
	elseEnd := b.cur

	if thenEnd == nil && elseEnd == nil {
		b.cur = nil
		return
	}
	join := b.prog.NewNode(NNop, b.proc)
	join.Line = int(s.Pos.Line)
	if thenEnd != nil {
		b.prog.AddEdge(thenEnd.ID, join.ID)
	}
	if elseEnd != nil {
		b.prog.AddEdge(elseEnd.ID, join.ID)
	}
	b.cur = join
}

func (b *builder) lowerElse(s minic.Stmt) {
	if blk, ok := minic.ElseBlock(s); ok {
		b.lowerBlock(blk)
		return
	}
	b.lowerStmt(s)
}

func (b *builder) lowerWhile(s *minic.WhileStmt) {
	head := b.prog.NewNode(NNop, b.proc)
	head.Line = int(s.Pos.Line)
	b.emit(head)

	lc := b.lowerCond(s.Cond)
	if lc.folded && !lc.outcome {
		// while (false): no body, no loop.
		return
	}

	after := b.prog.NewNode(NNop, b.proc)
	after.Line = int(s.Pos.Line)
	b.loops = append(b.loops, loopCtx{head: head.ID, after: after.ID})

	if lc.folded { // while (true)
		b.lowerBlock(s.Body)
		if b.cur != nil {
			b.prog.AddEdge(b.cur.ID, head.ID)
		}
	} else {
		b.emit(lc.branch)
		b.branchArm(lc.branch, true)
		b.lowerBlock(s.Body)
		if b.cur != nil {
			b.prog.AddEdge(b.cur.ID, head.ID)
		}
		b.branchArm(lc.branch, false)
		b.prog.AddEdge(b.cur.ID, after.ID)
	}

	b.loops = b.loops[:len(b.loops)-1]
	if len(after.Preds) == 0 {
		// while(true) without break: everything after is unreachable.
		b.prog.DeleteNode(after.ID)
		b.cur = nil
		return
	}
	b.cur = after
}

// lowerOperand lowers an expression to an operand, emitting nodes for any
// subcomputations.
func (b *builder) lowerOperand(e minic.Expr) Operand {
	switch e := e.(type) {
	case *minic.NumLit:
		return ConstOp(e.Val)
	case *minic.VarRef:
		return VarOp(b.vars[b.info.Uses[e]])
	default:
		t := b.newTemp()
		b.lowerExprInto(t, e, int(e.Position().Line))
		return VarOp(t)
	}
}

// lowerExprInto lowers an expression, assigning its value to dst.
func (b *builder) lowerExprInto(dst VarID, e minic.Expr, line int) {
	switch e := e.(type) {
	case *minic.NumLit:
		b.emit(b.newAssign(dst, RHS{Kind: RConst, Const: e.Val}, line))

	case *minic.VarRef:
		src := b.vars[b.info.Uses[e]]
		b.emit(b.newAssign(dst, RHS{Kind: RCopy, Src: src}, line))

	case *minic.NegExpr:
		op := b.lowerOperand(e.X)
		if op.IsConst {
			b.emit(b.newAssign(dst, RHS{Kind: RConst, Const: -op.Const}, line))
			return
		}
		b.emit(b.newAssign(dst, RHS{Kind: RNeg, Src: op.Var}, line))

	case *minic.BinExpr:
		a := b.lowerOperand(e.L)
		c := b.lowerOperand(e.R)
		if a.IsConst && c.IsConst {
			if v, ok := foldBinop(binOpOf(e.Op), a.Const, c.Const); ok {
				b.emit(b.newAssign(dst, RHS{Kind: RConst, Const: v}, line))
				return
			}
		}
		b.emit(b.newAssign(dst, RHS{Kind: RBinop, Op: binOpOf(e.Op), A: a, B: c}, line))

	case *minic.IndexExpr:
		ptr := b.vars[b.info.LoadSyms[e]]
		idx := b.lowerOperand(e.Index)
		b.emit(b.newAssign(dst, RHS{Kind: RLoad, Src: ptr, A: idx}, line))
		// The load dereferenced ptr, so ptr != 0 afterwards — unless the
		// load just overwrote ptr itself (e.g. list = list[1]), in which
		// case the fact applies to the old value and must not be asserted.
		if dst != ptr {
			b.emit(b.newAssert(ptr, pred.Pred{Op: pred.Ne, C: 0}, line))
		}

	case *minic.CallExpr:
		switch e.Name {
		case minic.BuiltinAlloc:
			size := b.lowerOperand(e.Args[0])
			b.emit(b.newAssign(dst, RHS{Kind: RAlloc, A: size}, line))
		case minic.BuiltinByte:
			src := b.lowerOperand(e.Args[0])
			if src.IsConst {
				b.emit(b.newAssign(dst, RHS{Kind: RConst, Const: src.Const & 0xFF}, line))
				return
			}
			b.emit(b.newAssign(dst, RHS{Kind: RByte, Src: src.Var}, line))
		case minic.BuiltinInput:
			b.emit(b.newAssign(dst, RHS{Kind: RInput}, line))
		default:
			b.lowerCall(e, dst, line)
		}

	default:
		panic(fmt.Sprintf("ir: unknown expression %T", e))
	}
}

// lowerCall lowers a procedure call, leaving the result in dst (or
// discarding it when dst == NoVar). The interprocedural edges are wired in
// the link phase.
func (b *builder) lowerCall(call *minic.CallExpr, dst VarID, line int) {
	callee := b.info.ProcIdx[call.Name]
	args := make([]VarID, len(call.Args))
	for i, a := range call.Args {
		op := b.lowerOperand(a)
		if op.IsConst {
			t := b.newTemp()
			b.emit(b.newAssign(t, RHS{Kind: RConst, Const: op.Const}, line))
			args[i] = t
		} else {
			args[i] = op.Var
		}
	}
	cn := b.prog.NewNode(NCall, b.proc)
	cn.Callee = callee
	cn.Args = args
	cn.Line = line
	b.emit(cn)

	ce := b.prog.NewNode(NCallExit, b.proc)
	ce.Callee = callee
	ce.Dst = dst
	ce.Line = line
	if dst == NoVar {
		ce.Synthetic = true
	}
	b.prog.AddEdge(cn.ID, ce.ID)
	b.cur = ce
}

func binOpOf(op minic.BinOp) BinOp {
	switch op {
	case minic.OpAdd:
		return OpAdd
	case minic.OpSub:
		return OpSub
	case minic.OpMul:
		return OpMul
	case minic.OpDiv:
		return OpDiv
	case minic.OpMod:
		return OpMod
	}
	panic("ir: unknown binop")
}

// foldBinop constant-folds a binary operation; division and modulo by zero
// are left to runtime.
func foldBinop(op BinOp, a, c int64) (int64, bool) {
	switch op {
	case OpAdd:
		return a + c, true
	case OpSub:
		return a - c, true
	case OpMul:
		return a * c, true
	case OpDiv:
		if c == 0 {
			return 0, false
		}
		return a / c, true
	case OpMod:
		if c == 0 {
			return 0, false
		}
		return a % c, true
	}
	return 0, false
}
