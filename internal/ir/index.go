package ir

import "fmt"

// Index is a dense, read-only acceleration structure for one Program
// revision: the call-site↔entry↔exit links that CallPred, ExitPred and
// EntrySucc otherwise re-derive by scanning predecessor/successor lists are
// resolved once into slices indexed directly by NodeID. The analysis builds
// one Index per Analyzer and hits it on every call-site-exit pair, turning
// the per-pair linear scans of the hot path into O(1) loads.
//
// An Index is a snapshot: it reflects the program at BuildIndex time and
// must be rebuilt after any mutation (the optimization driver re-creates
// its per-round Analyzer — and with it the Index — from each snapshot).
type Index struct {
	// callPred[ce] is the unique NCall predecessor of a call-site-exit
	// node, or NoNode when there is not exactly one (CallPred semantics).
	callPred []NodeID
	// exitPred[ce] is the unique NExit predecessor of a call-site-exit
	// node, or NoNode when there is not exactly one (ExitPred semantics).
	exitPred []NodeID
	// entrySucc[call] is the unique NEntry successor of a call node;
	// noEntry / multiEntry mark the malformed cases so EntrySucc can
	// reproduce the Program method's lazy panics exactly.
	entrySucc []NodeID
}

const (
	noEntry    NodeID = -1
	multiEntry NodeID = -2
)

// BuildIndex precomputes the call-site link slices for the program as it
// currently stands. Malformed regions (a call-site exit with zero or
// several call predecessors, a call with no entry successor) are recorded
// as absent, never reported eagerly: like the Program methods, the Index
// only complains when the broken link is actually consulted.
func BuildIndex(p *Program) *Index {
	n := len(p.Nodes)
	ix := &Index{
		callPred:  make([]NodeID, n),
		exitPred:  make([]NodeID, n),
		entrySucc: make([]NodeID, n),
	}
	for i, nd := range p.Nodes {
		ix.callPred[i], ix.exitPred[i], ix.entrySucc[i] = NoNode, NoNode, noEntry
		if nd == nil {
			continue
		}
		switch nd.Kind {
		case NCallExit:
			if c := p.CallPred(nd); c != nil {
				ix.callPred[i] = c.ID
			}
			if e := p.ExitPred(nd); e != nil {
				ix.exitPred[i] = e.ID
			}
		case NCall:
			for _, s := range nd.Succs {
				if sn := p.Node(s); sn != nil && sn.Kind == NEntry {
					if ix.entrySucc[i] != noEntry {
						ix.entrySucc[i] = multiEntry
						break
					}
					ix.entrySucc[i] = s
				}
			}
		}
	}
	return ix
}

// CallPred returns the unique call-site predecessor of a call-site-exit
// node, or NoNode when there is not exactly one.
func (ix *Index) CallPred(ce NodeID) NodeID { return ix.callPred[ce] }

// ExitPred returns the unique procedure-exit predecessor of a
// call-site-exit node, or NoNode when there is not exactly one.
func (ix *Index) ExitPred(ce NodeID) NodeID { return ix.exitPred[ce] }

// EntrySucc returns the entry successor of a call node. Like
// Program.EntrySucc it panics on malformed graphs, with the same messages,
// so indexed and unindexed analysis fail identically.
func (ix *Index) EntrySucc(call NodeID) NodeID {
	switch e := ix.entrySucc[call]; e {
	case noEntry:
		panic(fmt.Sprintf("ir: call node %d has no entry successor", call))
	case multiEntry:
		panic(fmt.Sprintf("ir: call node %d has multiple entry successors", call))
	default:
		return e
	}
}

// NumNodes returns the node-arena size the index was built for.
func (ix *Index) NumNodes() int { return len(ix.callPred) }
