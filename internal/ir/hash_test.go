package ir_test

import (
	"testing"

	"icbe"
	"icbe/internal/ir"
	"icbe/internal/progs"
)

func compileT(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := icbe.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p.Graph()
}

func TestHashStableAcrossRecompiles(t *testing.T) {
	for _, w := range progs.All() {
		a := ir.HashProgram(compileT(t, w.Source))
		b := ir.HashProgram(compileT(t, w.Source))
		if a.Sum != b.Sum {
			t.Errorf("%s: recompiling the same source changed the program hash", w.Name)
		}
		if a.NumProcs() != b.NumProcs() {
			t.Fatalf("%s: proc count changed", w.Name)
		}
		for i := 0; i < a.NumProcs(); i++ {
			if a.Proc(i).Closure != b.Proc(i).Closure {
				t.Errorf("%s: proc %d closure changed across recompiles", w.Name, i)
			}
		}
	}
}

func TestHashIgnoresNamesAndLayout(t *testing.T) {
	base := `
var g;
func f(x) {
	if (x < 10) { return 1; }
	return 0;
}
func main() {
	var a = input();
	var r = f(a);
	print(r);
	return 0;
}
`
	// Same program with the procedure and locals renamed and extra blank
	// lines shifting every source line.
	renamed := `
var g;

func check(value) {

	if (value < 10) { return 1; }
	return 0;
}

func main() {
	var tmp = input();

	var res = check(tmp);
	print(res);
	return 0;
}
`
	a := ir.HashProgram(compileT(t, base))
	b := ir.HashProgram(compileT(t, renamed))
	if a.Sum != b.Sum {
		t.Errorf("renaming procedures/locals and shifting lines changed the canonical hash")
	}
}

func TestHashDistinguishesContent(t *testing.T) {
	base := `
func main() {
	var a = input();
	if (a < 10) { print(1); }
	return 0;
}
`
	changedConst := `
func main() {
	var a = input();
	if (a < 11) { print(1); }
	return 0;
}
`
	flippedArms := `
func main() {
	var a = input();
	if (a < 10) { } else { print(1); }
	return 0;
}
`
	h := func(src string) ir.Sum { return ir.HashProgram(compileT(t, src)).Sum }
	if h(base) == h(changedConst) {
		t.Errorf("changing a branch constant did not change the hash")
	}
	if h(base) == h(flippedArms) {
		t.Errorf("swapping branch arms did not change the hash")
	}
}

func TestHashGlobalRenameChangesSum(t *testing.T) {
	a := compileT(t, `
var g;
func main() { g = input(); print(g); return 0; }
`)
	b := compileT(t, `
var h;
func main() { h = input(); print(h); return 0; }
`)
	if ir.HashProgram(a).Sum == ir.HashProgram(b).Sum {
		t.Errorf("renaming a global did not change the hash (globals are program identity)")
	}
}

func TestHashCanonicalTablesCoverProgram(t *testing.T) {
	for _, w := range progs.All() {
		g := compileT(t, w.Source)
		h := ir.HashProgram(g)
		live := 0
		g.LiveNodes(func(n *ir.Node) {
			live++
			ph := h.Proc(n.Proc)
			if ph == nil {
				t.Fatalf("%s: node %d owned by unknown proc %d", w.Name, n.ID, n.Proc)
			}
			i, ok := ph.NodeIndex(n.ID)
			if !ok {
				t.Fatalf("%s: node %d has no canonical index", w.Name, n.ID)
			}
			back, ok := ph.NodeAt(i)
			if !ok || back != n.ID {
				t.Fatalf("%s: canonical index %d of proc %d does not round-trip node %d", w.Name, i, n.Proc, n.ID)
			}
		})
		total := 0
		for i := 0; i < h.NumProcs(); i++ {
			total += h.Proc(i).NodeCount()
		}
		if total != live {
			t.Errorf("%s: canonical node tables cover %d nodes, program has %d live", w.Name, total, live)
		}
		for _, v := range g.Vars {
			if v.IsGlobal() {
				if _, ok := h.GlobalIndex(v.ID); !ok {
					t.Errorf("%s: global %q missing from global table", w.Name, v.Name)
				}
				continue
			}
			ph := h.Proc(v.Proc)
			if ph == nil {
				continue
			}
			i, ok := ph.VarIndex(v.ID)
			if !ok {
				t.Errorf("%s: var %d (%s) has no canonical index", w.Name, v.ID, v.Name)
				continue
			}
			if back, ok := ph.VarAt(i); !ok || back != v.ID {
				t.Errorf("%s: canonical var index %d does not round-trip var %d", w.Name, i, v.ID)
			}
		}
		// Procedures must be findable by closure for summary sharing.
		for i := 0; i < h.NumProcs(); i++ {
			if h.ByClosure(h.Proc(i).Closure) == nil {
				t.Errorf("%s: proc %d not reachable via ByClosure", w.Name, i)
			}
		}
	}
}

func TestHashRecursionTerminates(t *testing.T) {
	src := `
func odd(n) {
	if (n == 0) { return 0; }
	var r = even(n - 1);
	return r;
}
func even(n) {
	if (n == 0) { return 1; }
	var r = odd(n - 1);
	return r;
}
func main() {
	var x = input();
	var r = even(x);
	print(r);
	return 0;
}
`
	g := compileT(t, src)
	h := ir.HashProgram(g)
	h2 := ir.HashProgram(g)
	if h.Sum != h2.Sum {
		t.Errorf("recursive program hash not deterministic")
	}
	// odd and even have distinct bodies (return 0 vs 1) so their closures
	// must differ even though their call structure is symmetric.
	var odd, even ir.Sum
	for i := 0; i < h.NumProcs(); i++ {
		switch g.Procs[i].Name {
		case "odd":
			odd = h.Proc(i).Closure
		case "even":
			even = h.Proc(i).Closure
		}
	}
	if odd == even {
		t.Errorf("mutually recursive procs with distinct bodies share a closure hash")
	}
}
