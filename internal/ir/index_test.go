package ir

import "testing"

const indexTestSrc = `
var g;

func callee(x) {
	if (x < 0) {
		return 0 - x;
	}
	return x;
}

func main() {
	g = input();
	g = callee(g);
	if (g > 10) {
		print(1);
	} else {
		print(callee(g));
	}
}
`

// TestIndexMatchesLinearScans checks every indexed link against the
// Program's scanning helpers on a program exercising calls from several
// contexts.
func TestIndexMatchesLinearScans(t *testing.T) {
	p, err := Build(indexTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	ix := BuildIndex(p)
	if ix.NumNodes() != len(p.Nodes) {
		t.Fatalf("NumNodes = %d, want %d", ix.NumNodes(), len(p.Nodes))
	}
	calls, exits := 0, 0
	for _, n := range p.Nodes {
		if n == nil {
			continue
		}
		switch n.Kind {
		case NCallExit:
			exits++
			want := NoNode
			if c := p.CallPred(n); c != nil {
				want = c.ID
			}
			if got := ix.CallPred(n.ID); got != want {
				t.Errorf("CallPred(%d) = %d, want %d", n.ID, got, want)
			}
			want = NoNode
			if e := p.ExitPred(n); e != nil {
				want = e.ID
			}
			if got := ix.ExitPred(n.ID); got != want {
				t.Errorf("ExitPred(%d) = %d, want %d", n.ID, got, want)
			}
		case NCall:
			calls++
			if got, want := ix.EntrySucc(n.ID), p.EntrySucc(n).ID; got != want {
				t.Errorf("EntrySucc(%d) = %d, want %d", n.ID, got, want)
			}
		}
	}
	if calls == 0 || exits == 0 {
		t.Fatalf("test program has %d calls and %d call exits; want both > 0", calls, exits)
	}
}

// TestIndexMalformedEntryPanics checks that a call without an entry
// successor panics lazily with the Program method's message, and only when
// the link is consulted.
func TestIndexMalformedEntryPanics(t *testing.T) {
	p, err := Build(indexTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	var call *Node
	for _, n := range p.Nodes {
		if n != nil && n.Kind == NCall {
			call = n
			break
		}
	}
	entry := p.EntrySucc(call)
	p.RemoveEdge(call.ID, entry.ID)
	ix := BuildIndex(p) // must not panic while building
	defer func() {
		if recover() == nil {
			t.Fatal("EntrySucc on a call without entry successor did not panic")
		}
	}()
	ix.EntrySucc(call.ID)
}
