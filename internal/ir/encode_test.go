package ir_test

import (
	"bytes"
	"testing"

	"icbe"
	"icbe/internal/interp"
	"icbe/internal/ir"
	"icbe/internal/progs"
)

func TestEncodeRoundtrip(t *testing.T) {
	for _, w := range progs.All() {
		g := compileT(t, w.Source)
		enc := ir.EncodeProgram(g)
		dec, err := ir.DecodeProgram(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", w.Name, err)
		}
		if err := ir.Validate(dec); err != nil {
			t.Fatalf("%s: decoded program invalid: %v", w.Name, err)
		}
		if got := ir.EncodeProgram(dec); !bytes.Equal(got, enc) {
			t.Errorf("%s: re-encoding a decoded program is not byte-identical", w.Name)
		}
		if dec.Dump() != g.Dump() {
			t.Errorf("%s: decoded program dump differs from original", w.Name)
		}
		if ir.HashProgram(dec).Sum != ir.HashProgram(g).Sum {
			t.Errorf("%s: decoded program hash differs from original", w.Name)
		}
	}
}

func TestEncodeRoundtripOptimized(t *testing.T) {
	// Optimized programs have deleted nodes (nil arena slots), split
	// entries/exits, and synthetic asserts; the codec must preserve the
	// arena shape exactly.
	w := progs.ByName("stdio")
	p, err := icbe.Compile(w.Source)
	if err != nil {
		t.Fatal(err)
	}
	opt, _, err := p.Optimize(icbe.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	g := opt.Graph()
	enc := ir.EncodeProgram(g)
	dec, err := ir.DecodeProgram(enc)
	if err != nil {
		t.Fatalf("decode optimized: %v", err)
	}
	if err := ir.Validate(dec); err != nil {
		t.Fatalf("decoded optimized program invalid: %v", err)
	}
	if !bytes.Equal(ir.EncodeProgram(dec), enc) {
		t.Errorf("optimized program does not round-trip byte-identically")
	}
	if dec.Dump() != g.Dump() {
		t.Errorf("optimized program dump differs after round-trip")
	}
	before, err := opt.Run(w.Train)
	if err != nil {
		t.Fatal(err)
	}
	after, err := interp.Run(dec, interp.Options{Input: w.Train})
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Output) != len(after.Output) {
		t.Fatalf("decoded program output length differs: %d vs %d", len(before.Output), len(after.Output))
	}
	for i := range after.Output {
		if before.Output[i] != after.Output[i] {
			t.Fatalf("decoded program output differs at %d", i)
		}
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	g := compileT(t, `func main() { var a = input(); print(a); return 0; }`)
	enc := ir.EncodeProgram(g)

	cases := map[string][]byte{
		"truncated":   enc[:len(enc)/2],
		"empty":       nil,
		"not-json":    []byte("icbestore garbage"),
		"bad-version": bytes.Replace(enc, []byte(`"version":1`), []byte(`"version":99`), 1),
	}
	for name, data := range cases {
		if _, err := ir.DecodeProgram(data); err == nil {
			t.Errorf("%s: decode accepted damaged input", name)
		}
	}
}

func TestDecodeNoPanicOnBitFlips(t *testing.T) {
	g := compileT(t, `
func f(x) { if (x > 3) { return x; } return 0; }
func main() { var a = input(); var r = f(a); print(r); return 0; }
`)
	enc := ir.EncodeProgram(g)
	// Deterministic walk: flip one byte at a stride of positions; decode
	// must never panic, and any successful decode must survive Validate
	// being called on it (Validate may reject it — that is the
	// verify-on-read path working).
	for pos := 0; pos < len(enc); pos += 7 {
		mut := append([]byte(nil), enc...)
		mut[pos] ^= 0x20
		dec, err := ir.DecodeProgram(mut)
		if err != nil {
			continue
		}
		_ = ir.Validate(dec)
	}
}
