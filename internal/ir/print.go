package ir

import (
	"fmt"
	"sort"
	"strings"
)

// VarName returns a readable name for a variable id.
func (p *Program) VarName(id VarID) string {
	if id == NoVar {
		return "_"
	}
	return p.Vars[id].Name
}

func (p *Program) opString(o Operand) string {
	if o.IsConst {
		return fmt.Sprintf("%d", o.Const)
	}
	return p.VarName(o.Var)
}

// NodeString renders a node's statement in a compact readable form.
func (p *Program) NodeString(n *Node) string {
	switch n.Kind {
	case NEntry:
		return fmt.Sprintf("entry %s", p.Procs[n.Proc].Name)
	case NExit:
		return fmt.Sprintf("exit %s", p.Procs[n.Proc].Name)
	case NCall:
		args := make([]string, len(n.Args))
		for i, a := range n.Args {
			args[i] = p.VarName(a)
		}
		return fmt.Sprintf("call %s(%s)", p.Procs[n.Callee].Name, strings.Join(args, ", "))
	case NCallExit:
		if n.Dst == NoVar {
			return fmt.Sprintf("ret-from %s", p.Procs[n.Callee].Name)
		}
		return fmt.Sprintf("%s := ret-from %s", p.VarName(n.Dst), p.Procs[n.Callee].Name)
	case NAssign:
		return fmt.Sprintf("%s := %s", p.VarName(n.Dst), p.rhsString(n.RHS))
	case NBranch:
		return fmt.Sprintf("if %s %s %s", p.VarName(n.CondVar), n.CondOp, p.opString(n.CondRHS))
	case NAssert:
		return fmt.Sprintf("assert %s %s", p.VarName(n.AVar), n.APred)
	case NStore:
		return fmt.Sprintf("%s[%s] := %s", p.VarName(n.Ptr), p.opString(n.Idx), p.opString(n.Val))
	case NPrint:
		return fmt.Sprintf("print %s", p.opString(n.Val))
	case NNop:
		return "nop"
	}
	return n.Kind.String()
}

func (p *Program) rhsString(r RHS) string {
	switch r.Kind {
	case RConst:
		return fmt.Sprintf("%d", r.Const)
	case RCopy:
		return p.VarName(r.Src)
	case RNeg:
		return "-" + p.VarName(r.Src)
	case RByte:
		return fmt.Sprintf("byte(%s)", p.VarName(r.Src))
	case RBinop:
		return fmt.Sprintf("%s %s %s", p.opString(r.A), r.Op, p.opString(r.B))
	case RLoad:
		return fmt.Sprintf("%s[%s]", p.VarName(r.Src), p.opString(r.A))
	case RAlloc:
		return fmt.Sprintf("alloc(%s)", p.opString(r.A))
	case RInput:
		return "input()"
	}
	return r.Kind.String()
}

// Dump renders the whole ICFG as text, one procedure at a time, nodes in ID
// order with their successor lists.
func (p *Program) Dump() string {
	var sb strings.Builder
	for _, pr := range p.Procs {
		fmt.Fprintf(&sb, "proc %s (entries %v, exits %v)\n", pr.Name, pr.Entries, pr.Exits)
		nodes := p.ProcNodes(pr.Index)
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
		for _, n := range nodes {
			succs := make([]string, len(n.Succs))
			for i, s := range n.Succs {
				succs[i] = fmt.Sprintf("%d", s)
			}
			fmt.Fprintf(&sb, "  n%-4d %-40s -> [%s]\n", n.ID, p.NodeString(n), strings.Join(succs, " "))
		}
	}
	return sb.String()
}

// Dot renders the ICFG in Graphviz dot format (for debugging).
func (p *Program) Dot() string {
	var sb strings.Builder
	sb.WriteString("digraph icfg {\n  node [shape=box fontname=monospace];\n")
	for _, pr := range p.Procs {
		fmt.Fprintf(&sb, "  subgraph cluster_%d { label=%q;\n", pr.Index, pr.Name)
		for _, n := range p.ProcNodes(pr.Index) {
			shape := ""
			if n.Kind == NBranch {
				shape = " shape=diamond"
			}
			fmt.Fprintf(&sb, "    n%d [label=\"%d: %s\"%s];\n", n.ID, n.ID, escapeDot(p.NodeString(n)), shape)
		}
		sb.WriteString("  }\n")
	}
	p.LiveNodes(func(n *Node) {
		for i, s := range n.Succs {
			label := ""
			if n.Kind == NBranch {
				if i == 0 {
					label = " [label=T]"
				} else {
					label = " [label=F]"
				}
			}
			fmt.Fprintf(&sb, "  n%d -> n%d%s;\n", n.ID, s, label)
		}
	})
	sb.WriteString("}\n")
	return sb.String()
}

func escapeDot(s string) string {
	return strings.ReplaceAll(s, `"`, `\"`)
}
