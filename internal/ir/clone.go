package ir

// Clone returns a deep copy of the program. The copy shares nothing mutable
// with the original, so it can be restructured independently (the
// optimization drivers clone before transforming, keeping the original for
// comparison runs).
func Clone(p *Program) *Program {
	q := &Program{
		MainProc:    p.MainProc,
		SourceLines: p.SourceLines,
	}
	q.Vars = make([]*Var, len(p.Vars))
	for i, v := range p.Vars {
		cv := *v
		q.Vars[i] = &cv
	}
	q.Procs = make([]*Proc, len(p.Procs))
	for i, pr := range p.Procs {
		cp := &Proc{
			Name:    pr.Name,
			Index:   pr.Index,
			RetVar:  pr.RetVar,
			Formals: append([]VarID(nil), pr.Formals...),
			Entries: append([]NodeID(nil), pr.Entries...),
			Exits:   append([]NodeID(nil), pr.Exits...),
		}
		q.Procs[i] = cp
	}
	q.Nodes = make([]*Node, len(p.Nodes))
	for i, n := range p.Nodes {
		if n == nil {
			continue
		}
		cn := *n
		cn.Args = append([]VarID(nil), n.Args...)
		cn.Succs = append([]NodeID(nil), n.Succs...)
		cn.Preds = append([]NodeID(nil), n.Preds...)
		q.Nodes[i] = &cn
	}
	return q
}
