package ir

// Clone returns a deep copy of the program. The copy shares nothing mutable
// with the original, so it can be restructured independently (the
// optimization drivers clone before transforming, keeping the original for
// comparison runs).
func Clone(p *Program) *Program {
	q := &Program{
		MainProc:    p.MainProc,
		SourceLines: p.SourceLines,
	}
	q.Vars = make([]*Var, len(p.Vars))
	vblock := make([]Var, len(p.Vars))
	for i, v := range p.Vars {
		vblock[i] = *v
		q.Vars[i] = &vblock[i]
	}
	q.Procs = make([]*Proc, len(p.Procs))
	for i, pr := range p.Procs {
		cp := &Proc{
			Name:    pr.Name,
			Index:   pr.Index,
			RetVar:  pr.RetVar,
			Formals: append([]VarID(nil), pr.Formals...),
			Entries: append([]NodeID(nil), pr.Entries...),
			Exits:   append([]NodeID(nil), pr.Exits...),
		}
		q.Procs[i] = cp
	}
	q.Nodes = make([]*Node, len(p.Nodes))
	// One block for the node structs and one for their edge lists: cloning
	// is the driver's hottest allocation site, and per-node allocations
	// dominate it otherwise.
	nblock := make([]Node, len(p.Nodes))
	edges := 0
	for _, n := range p.Nodes {
		if n != nil {
			edges += len(n.Succs) + len(n.Preds)
		}
	}
	eblock := make([]NodeID, 0, edges)
	for i, n := range p.Nodes {
		if n == nil {
			continue
		}
		cn := &nblock[i]
		*cn = *n
		cn.Args = append([]VarID(nil), n.Args...)
		eblock = append(eblock, n.Succs...)
		cn.Succs = eblock[len(eblock)-len(n.Succs) : len(eblock) : len(eblock)]
		eblock = append(eblock, n.Preds...)
		cn.Preds = eblock[len(eblock)-len(n.Preds) : len(eblock) : len(eblock)]
		q.Nodes[i] = cn
	}
	return q
}
