package ir

import (
	"strings"
	"testing"

	"icbe/internal/pred"
)

func build(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Build(src)
	if err != nil {
		t.Fatalf("Build failed: %v", err)
	}
	if err := Validate(p); err != nil {
		t.Fatalf("Validate failed: %v\n%s", err, p.Dump())
	}
	return p
}

func findNodes(p *Program, kind NodeKind) []*Node {
	var out []*Node
	p.LiveNodes(func(n *Node) {
		if n.Kind == kind {
			out = append(out, n)
		}
	})
	return out
}

func TestBuildStraightLine(t *testing.T) {
	p := build(t, `
		var g = 5;
		func main() {
			var x = g;
			x = x + 1;
			print(x);
		}
	`)
	if len(p.Procs) != 1 {
		t.Fatalf("procs = %d", len(p.Procs))
	}
	if p.Vars[0].Name != "g" || p.Vars[0].Init != 5 {
		t.Errorf("global g = %+v", p.Vars[0])
	}
	if n := len(findNodes(p, NBranch)); n != 0 {
		t.Errorf("branches = %d, want 0", n)
	}
	if n := len(findNodes(p, NPrint)); n != 1 {
		t.Errorf("prints = %d, want 1", n)
	}
}

func TestBuildIfProducesAssertArms(t *testing.T) {
	p := build(t, `
		func main() {
			var x = input();
			if (x == 0) { print(1); } else { print(2); }
		}
	`)
	brs := findNodes(p, NBranch)
	if len(brs) != 1 {
		t.Fatalf("branches = %d, want 1", len(brs))
	}
	br := brs[0]
	if !br.Analyzable() {
		t.Fatal("branch should be analyzable")
	}
	if got := br.CondPred(); got.Op != pred.Eq || got.C != 0 {
		t.Errorf("cond pred = %v", got)
	}
	tArm := p.Node(br.TrueSucc())
	fArm := p.Node(br.FalseSucc())
	if tArm.Kind != NAssert || fArm.Kind != NAssert {
		t.Fatalf("arms = %s/%s, want assert/assert", tArm.Kind, fArm.Kind)
	}
	if tArm.APred != (pred.Pred{Op: pred.Eq, C: 0}) {
		t.Errorf("true assert = %v", tArm.APred)
	}
	if fArm.APred != (pred.Pred{Op: pred.Ne, C: 0}) {
		t.Errorf("false assert = %v", fArm.APred)
	}
}

func TestBuildVarVarBranchNotAnalyzable(t *testing.T) {
	p := build(t, `
		func main() {
			var x = input();
			var y = input();
			if (x < y) { print(1); }
		}
	`)
	br := findNodes(p, NBranch)[0]
	if br.Analyzable() {
		t.Error("var-var branch should not be analyzable")
	}
	if p.Node(br.TrueSucc()).Kind != NNop || p.Node(br.FalseSucc()).Kind != NNop {
		t.Error("non-analyzable arms should be nops")
	}
}

func TestBuildConstCondFolds(t *testing.T) {
	p := build(t, `
		func main() {
			if (1 < 2) { print(1); } else { print(2); }
			while (0) { print(3); }
		}
	`)
	if n := len(findNodes(p, NBranch)); n != 0 {
		t.Errorf("constant conditions not folded: %d branches", n)
	}
	prints := findNodes(p, NPrint)
	if len(prints) != 1 {
		t.Fatalf("prints = %d, want only the taken arm", len(prints))
	}
	if !prints[0].Val.IsConst || prints[0].Val.Const != 1 {
		t.Errorf("kept print = %v", prints[0].Val)
	}
}

func TestBuildFlippedConstLhs(t *testing.T) {
	p := build(t, `
		func main() {
			var x = input();
			if (0 < x) { print(1); }
		}
	`)
	br := findNodes(p, NBranch)[0]
	if !br.Analyzable() {
		t.Fatal("flipped branch should be analyzable")
	}
	if br.CondOp != pred.Gt || br.CondRHS.Const != 0 {
		t.Errorf("flipped cond = %s %v", br.CondOp, br.CondRHS)
	}
}

func TestBuildCallWiring(t *testing.T) {
	p := build(t, `
		func f(a, b) { return a + b; }
		func main() {
			var r = f(1, 2);
			print(r);
		}
	`)
	calls := findNodes(p, NCall)
	if len(calls) != 1 {
		t.Fatalf("calls = %d", len(calls))
	}
	call := calls[0]
	f := p.ProcByName("f")
	entry := p.EntrySucc(call)
	if entry.ID != f.Entries[0] {
		t.Errorf("call enters node %d, want %d", entry.ID, f.Entries[0])
	}
	ces := p.CallExitSuccs(call)
	if len(ces) != 1 {
		t.Fatalf("call exits = %d", len(ces))
	}
	ce := ces[0]
	if got := p.CallPred(ce); got != call {
		t.Error("CallPred mismatch")
	}
	ep := p.ExitPred(ce)
	if ep == nil || ep.ID != f.Exits[0] {
		t.Error("ExitPred mismatch")
	}
	if len(call.Args) != 2 {
		t.Errorf("args = %d", len(call.Args))
	}
	// Constant arguments are materialized into temps.
	for _, a := range call.Args {
		if p.Vars[a].Kind != VarTemp {
			t.Errorf("arg var kind = %v, want temp", p.Vars[a].Kind)
		}
	}
	if ce.Dst == NoVar {
		t.Error("call exit should carry the result")
	}
}

func TestBuildDiscardedCallResult(t *testing.T) {
	p := build(t, `
		func f() { return 1; }
		func main() { f(); }
	`)
	ce := findNodes(p, NCallExit)[0]
	if ce.Dst != NoVar {
		t.Error("discarded result should have Dst == NoVar")
	}
	if !ce.Synthetic {
		t.Error("value-less call exit should be synthetic")
	}
}

func TestBuildWhileLoopShape(t *testing.T) {
	p := build(t, `
		func main() {
			var i = 0;
			while (i < 10) {
				i = i + 1;
			}
			print(i);
		}
	`)
	br := findNodes(p, NBranch)[0]
	// The loop must cycle: from the true arm we can get back to the branch.
	seen := map[NodeID]bool{}
	stack := []NodeID{br.TrueSucc()}
	found := false
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if id == br.ID {
			found = true
			break
		}
		if seen[id] {
			continue
		}
		seen[id] = true
		stack = append(stack, p.Node(id).Succs...)
	}
	if !found {
		t.Errorf("no back edge to loop branch\n%s", p.Dump())
	}
}

func TestBuildBreakContinue(t *testing.T) {
	p := build(t, `
		func main() {
			var i = 0;
			while (1) {
				i = i + 1;
				if (i > 5) { break; }
				if (i == 2) { continue; }
				print(i);
			}
			print(i);
		}
	`)
	// while(1) folds, so the only branches are the two ifs.
	if n := len(findNodes(p, NBranch)); n != 2 {
		t.Errorf("branches = %d, want 2", n)
	}
	if n := len(findNodes(p, NPrint)); n != 2 {
		t.Errorf("prints = %d, want 2", n)
	}
}

func TestBuildInfiniteLoopPrunesTail(t *testing.T) {
	p := build(t, `
		func main() {
			while (1) { var x = input(); print(x); }
			print(99);
		}
	`)
	for _, n := range findNodes(p, NPrint) {
		if n.Val.IsConst && n.Val.Const == 99 {
			t.Error("unreachable print after infinite loop survived")
		}
	}
}

func TestBuildDeadCodeAfterReturn(t *testing.T) {
	p := build(t, `
		func main() {
			print(1);
			return;
			print(2);
		}
	`)
	if n := len(findNodes(p, NPrint)); n != 1 {
		t.Errorf("prints = %d, want 1 (dead code dropped)", n)
	}
}

func TestBuildLoadEmitsDerefAssert(t *testing.T) {
	p := build(t, `
		func main() {
			var p = alloc(2);
			p[0] = 7;
			var x = p[0];
			print(x);
		}
	`)
	asserts := findNodes(p, NAssert)
	// One assert after the store, one after the load.
	derefs := 0
	for _, a := range asserts {
		if a.APred == (pred.Pred{Op: pred.Ne, C: 0}) {
			derefs++
		}
	}
	if derefs != 2 {
		t.Errorf("deref asserts = %d, want 2", derefs)
	}
}

func TestBuildImplicitReturnZero(t *testing.T) {
	p := build(t, `
		func f() { print(1); }
		func main() { var x = f(); print(x); }
	`)
	f := p.ProcByName("f")
	// The node before f's exit must assign 0 to f.$ret.
	exit := p.Node(f.Exits[0])
	if len(exit.Preds) != 1 {
		t.Fatalf("exit preds = %d", len(exit.Preds))
	}
	last := p.Node(exit.Preds[0])
	if last.Kind != NAssign || last.Dst != f.RetVar || last.RHS.Kind != RConst || last.RHS.Const != 0 {
		t.Errorf("implicit return node = %s", p.NodeString(last))
	}
}

func TestBuildNestedCallInExpression(t *testing.T) {
	p := build(t, `
		func g(x) { return x * 2; }
		func main() {
			var y = g(g(3)) + 1;
			print(y);
		}
	`)
	if n := len(findNodes(p, NCall)); n != 2 {
		t.Errorf("calls = %d, want 2", n)
	}
}

func TestBuildStatsAndDump(t *testing.T) {
	p := build(t, `
		var g;
		func f(a) { if (a == 0) { return 1; } return 0; }
		func main() {
			var i = 0;
			while (i < 3) {
				g = f(i);
				i = i + 1;
			}
			print(g);
		}
	`)
	st := Collect(p)
	if st.Procs != 2 {
		t.Errorf("procs = %d", st.Procs)
	}
	if st.Conditionals != 2 {
		t.Errorf("conditionals = %d, want 2", st.Conditionals)
	}
	if st.AnalyzableConds != 2 {
		t.Errorf("analyzable = %d, want 2", st.AnalyzableConds)
	}
	if st.Operations == 0 || st.AllNodes <= st.Operations {
		t.Errorf("operations = %d, all = %d", st.Operations, st.AllNodes)
	}
	d := p.Dump()
	for _, want := range []string{"proc f", "proc main", "call f", "if "} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q", want)
		}
	}
	dot := p.Dot()
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "label=T") {
		t.Error("dot output malformed")
	}
}

func TestCloneIsDeepAndEqual(t *testing.T) {
	p := build(t, `
		func f(a) { return a + 1; }
		func main() { var r = f(41); print(r); }
	`)
	q := Clone(p)
	if err := Validate(q); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	if p.Dump() != q.Dump() {
		t.Error("clone dump differs from original")
	}
	// Mutating the clone must not affect the original.
	var someNode *Node
	q.LiveNodes(func(n *Node) {
		if n.Kind == NAssign && someNode == nil {
			someNode = n
		}
	})
	before := p.Dump()
	someNode.Dst = NoVar
	q.Procs[0].Entries[0] = 999
	q.Vars[0].Name = "mutated"
	if p.Dump() != before {
		t.Error("mutating clone changed original")
	}
}

func TestRedirectSuccPreservesBranchOrder(t *testing.T) {
	p := build(t, `
		func main() {
			var x = input();
			if (x == 0) { print(1); } else { print(2); }
		}
	`)
	br := findNodes(p, NBranch)[0]
	oldTrue := br.TrueSucc()
	nop := p.NewNode(NNop, br.Proc)
	p.AddEdge(nop.ID, oldTrue)
	p.RedirectSucc(br.ID, oldTrue, nop.ID)
	if br.TrueSucc() != nop.ID {
		t.Error("true successor not redirected in place")
	}
	if br.FalseSucc() == nop.ID {
		t.Error("false successor clobbered")
	}
}

func TestValidateCatchesBrokenGraphs(t *testing.T) {
	p := build(t, `
		func f() { return 1; }
		func main() { var x = f(); print(x); }
	`)
	// Break normal form: remove the exit→callexit edge.
	ce := findNodes(p, NCallExit)[0]
	exitPred := p.ExitPred(ce)
	p.RemoveEdge(exitPred.ID, ce.ID)
	err := Validate(p)
	if err == nil {
		t.Fatal("Validate accepted broken normal form")
	}
	if !strings.Contains(err.Error(), "normal form") {
		t.Errorf("error = %v", err)
	}
}

func TestValidateCatchesAsymmetricEdge(t *testing.T) {
	p := build(t, `func main() { print(1); }`)
	var pr *Node
	p.LiveNodes(func(n *Node) {
		if n.Kind == NPrint {
			pr = n
		}
	})
	// Corrupt: successor without matching pred.
	pr.Succs = append(pr.Succs, pr.Succs[0])
	if err := Validate(p); err == nil {
		t.Fatal("Validate accepted asymmetric edge")
	}
}

func TestBuildErrorsPropagate(t *testing.T) {
	if _, err := Build("func main() { x = 1; }"); err == nil {
		t.Error("sema error not propagated")
	}
	if _, err := Build("func main() {"); err == nil {
		t.Error("parse error not propagated")
	}
}

func TestBuildElseIfChain(t *testing.T) {
	p := build(t, `
		func main() {
			var x = input();
			if (x == 1) { print(1); }
			else if (x == 2) { print(2); }
			else { print(3); }
		}
	`)
	if n := len(findNodes(p, NBranch)); n != 2 {
		t.Errorf("branches = %d, want 2", n)
	}
	if n := len(findNodes(p, NPrint)); n != 3 {
		t.Errorf("prints = %d, want 3", n)
	}
}

func TestSourceLinesRecorded(t *testing.T) {
	p := build(t, "func main() {\n  print(1);\n}\n")
	if p.SourceLines < 3 {
		t.Errorf("source lines = %d", p.SourceLines)
	}
}

func TestOperandAndKindStrings(t *testing.T) {
	if ConstOp(5).String() != "5" {
		t.Error("const operand string")
	}
	if VarOp(3).String() != "v3" {
		t.Error("var operand string")
	}
	for k := NEntry; k <= NNop; k++ {
		if strings.Contains(k.String(), "NodeKind") {
			t.Errorf("missing name for kind %d", int(k))
		}
	}
	for k := RConst; k <= RInput; k++ {
		if strings.Contains(k.String(), "RHSKind") {
			t.Errorf("missing name for rhs kind %d", int(k))
		}
	}
	for k := VarGlobal; k <= VarRet; k++ {
		if strings.Contains(k.String(), "VarKind") {
			t.Errorf("missing name for var kind %d", int(k))
		}
	}
}

func TestSimplifyContractsNops(t *testing.T) {
	p := build(t, `
		func main() {
			var x = input();
			if (x == 0) { print(1); } else { print(2); }
			if (x == 1) { print(3); }
			while (x > 0) { x = x - 1; }
			print(x);
		}
	`)
	before := Collect(p)
	removed := Simplify(p)
	if removed == 0 {
		t.Fatal("nothing simplified (joins and loop anchors should contract)")
	}
	if err := Validate(p); err != nil {
		t.Fatalf("invalid after simplify: %v\n%s", err, p.Dump())
	}
	after := Collect(p)
	if after.Operations != before.Operations || after.Conditionals != before.Conditionals {
		t.Errorf("operations changed: %+v -> %+v", before, after)
	}
	if after.AllNodes != before.AllNodes-removed {
		t.Errorf("node accounting wrong: %d -> %d, removed %d", before.AllNodes, after.AllNodes, removed)
	}
	// Branch arms must survive.
	p.LiveNodes(func(n *Node) {
		if n.Kind == NBranch {
			for _, s := range n.Succs {
				k := p.Node(s).Kind
				if k != NAssert && k != NNop {
					t.Errorf("branch %d arm is %s", n.ID, k)
				}
			}
		}
	})
}

func TestSimplifyIdempotent(t *testing.T) {
	p := build(t, `
		func f(a) { if (a > 0) { return 1; } return 0; }
		func main() { print(f(input())); }
	`)
	Simplify(p)
	if again := Simplify(p); again != 0 {
		t.Errorf("second Simplify removed %d more nodes", again)
	}
	if err := Validate(p); err != nil {
		t.Fatal(err)
	}
}
