package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestEdgeOpsSymmetry checks AddEdge/RemoveEdge keep Succs/Preds mirrored
// under random operation sequences.
func TestEdgeOpsSymmetry(t *testing.T) {
	f := func(ops []uint16) bool {
		p := &Program{Procs: []*Proc{{Name: "t"}}}
		const n = 8
		var ids [n]NodeID
		for i := 0; i < n; i++ {
			ids[i] = p.NewNode(NNop, 0).ID
		}
		for _, op := range ops {
			from := ids[int(op)%n]
			to := ids[int(op>>4)%n]
			if op%3 == 0 {
				p.RemoveEdge(from, to)
			} else {
				p.AddEdge(from, to)
			}
		}
		// Verify symmetry.
		ok := true
		p.LiveNodes(func(nd *Node) {
			for _, s := range nd.Succs {
				if count(p.Nodes[s].Preds, nd.ID) != count(nd.Succs, s) {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAddEdgeDedupesNonBranch(t *testing.T) {
	p := &Program{Procs: []*Proc{{Name: "t"}}}
	a := p.NewNode(NNop, 0)
	b := p.NewNode(NNop, 0)
	p.AddEdge(a.ID, b.ID)
	p.AddEdge(a.ID, b.ID)
	if len(a.Succs) != 1 || len(b.Preds) != 1 {
		t.Errorf("duplicate edge not deduped: %v %v", a.Succs, b.Preds)
	}
}

func TestAddEdgeAllowsParallelBranchArms(t *testing.T) {
	p := &Program{Procs: []*Proc{{Name: "t"}}}
	br := p.NewNode(NBranch, 0)
	target := p.NewNode(NNop, 0)
	p.AddEdge(br.ID, target.ID)
	p.AddEdge(br.ID, target.ID)
	if len(br.Succs) != 2 {
		t.Errorf("branch parallel arms = %d, want 2", len(br.Succs))
	}
	// Removing one instance keeps the other.
	p.RemoveEdge(br.ID, target.ID)
	if len(br.Succs) != 1 || len(target.Preds) != 1 {
		t.Errorf("after removal: succs %v preds %v", br.Succs, target.Preds)
	}
}

func TestDeleteNodeCleansBothSides(t *testing.T) {
	p := &Program{Procs: []*Proc{{Name: "t"}}}
	a := p.NewNode(NNop, 0)
	b := p.NewNode(NNop, 0)
	c := p.NewNode(NNop, 0)
	p.AddEdge(a.ID, b.ID)
	p.AddEdge(b.ID, c.ID)
	p.DeleteNode(b.ID)
	if p.Node(b.ID) != nil {
		t.Fatal("node not deleted")
	}
	if len(a.Succs) != 0 || len(c.Preds) != 0 {
		t.Errorf("dangling references: %v %v", a.Succs, c.Preds)
	}
	// Deleting again is a no-op.
	p.DeleteNode(b.ID)
}

func TestRedirectSuccPanicsOnMissingEdge(t *testing.T) {
	p := &Program{Procs: []*Proc{{Name: "t"}}}
	a := p.NewNode(NNop, 0)
	b := p.NewNode(NNop, 0)
	c := p.NewNode(NNop, 0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	p.RedirectSucc(a.ID, b.ID, c.ID)
}

func TestEntrySuccPanicsWithoutEntry(t *testing.T) {
	p := &Program{Procs: []*Proc{{Name: "t"}}}
	call := p.NewNode(NCall, 0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	p.EntrySucc(call)
}

func TestCondPredPanicsOnVarVarBranch(t *testing.T) {
	p := build(t, `
		func main() {
			var a = input();
			var b = input();
			if (a == b) { print(1); }
		}
	`)
	br := findNodes(p, NBranch)[0]
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	br.CondPred()
}

func TestNodeOutOfRangeLookups(t *testing.T) {
	p := build(t, `func main() { print(1); }`)
	if p.Node(-1) != nil || p.Node(NodeID(len(p.Nodes))) != nil {
		t.Error("out-of-range Node lookup returned non-nil")
	}
}

func TestVarNameHelpers(t *testing.T) {
	p := build(t, `var g; func main() { var x = g; print(x); }`)
	if p.VarName(NoVar) != "_" {
		t.Error("NoVar name")
	}
	if p.VarName(0) != "g" {
		t.Errorf("global name = %q", p.VarName(0))
	}
	if !strings.Contains(p.VarName(1), "main") && !strings.Contains(p.VarName(2), "main") {
		t.Error("local names should carry the procedure prefix")
	}
}

func TestProcByName(t *testing.T) {
	p := build(t, `func a() {} func main() { a(); }`)
	if p.ProcByName("a") == nil || p.ProcByName("main") == nil || p.ProcByName("zzz") != nil {
		t.Error("ProcByName lookup wrong")
	}
}

func TestCollectOnEmptyishProgram(t *testing.T) {
	p := build(t, `func main() {}`)
	st := Collect(p)
	if st.Conditionals != 0 || st.Procs != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Operations == 0 {
		t.Error("implicit return should count as an operation")
	}
}
