package ir

import (
	"bytes"
	"encoding/json"
	"fmt"

	"icbe/internal/pred"
)

// The codec's wire format version. Bump whenever the wire structs change
// incompatibly; DecodeProgram rejects other versions so a store can never
// misinterpret entries written by a different build.
const codecVersion = 1

// Decode bounds: a corrupted or hostile payload must not be able to make the
// decoder allocate unbounded arenas before validation gets a chance to run.
const (
	maxDecodeNodes = 1 << 22
	maxDecodeVars  = 1 << 22
	maxDecodeProcs = 1 << 16
	maxDecodeEdges = 1 << 24
)

type wireOperand struct {
	Const   int64 `json:"c,omitempty"`
	Var     VarID `json:"v,omitempty"`
	IsConst bool  `json:"k,omitempty"`
}

type wireRHS struct {
	Kind  RHSKind     `json:"kind"`
	Const int64       `json:"const,omitempty"`
	A     wireOperand `json:"a,omitempty"`
	B     wireOperand `json:"b,omitempty"`
	Src   VarID       `json:"src,omitempty"`
	Op    BinOp       `json:"op,omitempty"`
}

type wireNode struct {
	ID        NodeID      `json:"id"`
	Kind      NodeKind    `json:"kind"`
	Proc      int         `json:"proc"`
	Line      int         `json:"line,omitempty"`
	Synthetic bool        `json:"syn,omitempty"`
	Dst       VarID       `json:"dst,omitempty"`
	RHS       *wireRHS    `json:"rhs,omitempty"`
	CondVar   VarID       `json:"cvar,omitempty"`
	CondOp    pred.Op     `json:"cop,omitempty"`
	CondRHS   wireOperand `json:"crhs,omitempty"`
	AVar      VarID       `json:"avar,omitempty"`
	APredOp   pred.Op     `json:"apop,omitempty"`
	APredC    int64       `json:"apc,omitempty"`
	Ptr       VarID       `json:"ptr,omitempty"`
	Idx       wireOperand `json:"idx,omitempty"`
	Val       wireOperand `json:"val,omitempty"`
	Callee    int         `json:"callee,omitempty"`
	Args      []VarID     `json:"args,omitempty"`
	Succs     []NodeID    `json:"succs,omitempty"`
	Preds     []NodeID    `json:"preds,omitempty"`
}

type wireVar struct {
	ID   VarID   `json:"id"`
	Name string  `json:"name"`
	Kind VarKind `json:"kind"`
	Proc int     `json:"proc"`
	Init int64   `json:"init,omitempty"`
}

type wireProc struct {
	Name    string   `json:"name"`
	Index   int      `json:"index"`
	Formals []VarID  `json:"formals,omitempty"`
	RetVar  VarID    `json:"retvar"`
	Entries []NodeID `json:"entries,omitempty"`
	Exits   []NodeID `json:"exits,omitempty"`
}

type wireProgram struct {
	Version     int         `json:"version"`
	Procs       []*wireProc `json:"procs"`
	Vars        []*wireVar  `json:"vars"`
	NumNodes    int         `json:"num_nodes"`
	Nodes       []*wireNode `json:"nodes"` // live nodes only, ascending ID
	MainProc    int         `json:"main_proc"`
	SourceLines int         `json:"source_lines,omitempty"`
}

// EncodeProgram serializes a program to a deterministic, versioned byte
// stream: identical programs (including arena numbering, names, and source
// lines) encode to identical bytes, so the encoding doubles as an exact
// identity fingerprint for the result cache.
func EncodeProgram(p *Program) []byte {
	wp := &wireProgram{
		Version:     codecVersion,
		MainProc:    p.MainProc,
		SourceLines: p.SourceLines,
		NumNodes:    len(p.Nodes),
	}
	for _, pr := range p.Procs {
		wp.Procs = append(wp.Procs, &wireProc{
			Name:    pr.Name,
			Index:   pr.Index,
			Formals: pr.Formals,
			RetVar:  pr.RetVar,
			Entries: pr.Entries,
			Exits:   pr.Exits,
		})
	}
	for _, v := range p.Vars {
		wp.Vars = append(wp.Vars, &wireVar{
			ID:   v.ID,
			Name: v.Name,
			Kind: v.Kind,
			Proc: v.Proc,
			Init: v.Init,
		})
	}
	for _, n := range p.Nodes {
		if n == nil {
			continue
		}
		wn := &wireNode{
			ID:        n.ID,
			Kind:      n.Kind,
			Proc:      n.Proc,
			Line:      n.Line,
			Synthetic: n.Synthetic,
			Dst:       n.Dst,
			CondVar:   n.CondVar,
			CondOp:    n.CondOp,
			CondRHS:   wireOp(n.CondRHS),
			AVar:      n.AVar,
			APredOp:   n.APred.Op,
			APredC:    n.APred.C,
			Ptr:       n.Ptr,
			Idx:       wireOp(n.Idx),
			Val:       wireOp(n.Val),
			Callee:    n.Callee,
			Args:      n.Args,
			Succs:     n.Succs,
			Preds:     n.Preds,
		}
		if n.Kind == NAssign || n.Kind == NCallExit {
			r := wireRHS{
				Kind:  n.RHS.Kind,
				Const: n.RHS.Const,
				A:     wireOp(n.RHS.A),
				B:     wireOp(n.RHS.B),
				Src:   n.RHS.Src,
				Op:    n.RHS.Op,
			}
			wn.RHS = &r
		}
		wp.Nodes = append(wp.Nodes, wn)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(wp); err != nil {
		// All wire types are plain data; Marshal cannot fail on them.
		panic("ir: encode: " + err.Error())
	}
	return buf.Bytes()
}

func wireOp(o Operand) wireOperand {
	return wireOperand{Const: o.Const, Var: o.Var, IsConst: o.IsConst}
}

func irOp(o wireOperand) Operand {
	return Operand{Const: o.Const, Var: o.Var, IsConst: o.IsConst}
}

// DecodeProgram parses a program previously written by EncodeProgram. It
// never panics on malformed input: structural damage surfaces as an error
// here or, for semantic damage the codec cannot see, in the Validate /
// invariant pass the store runs on the decoded result (verify-on-read).
func DecodeProgram(data []byte) (*Program, error) {
	var wp wireProgram
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&wp); err != nil {
		return nil, fmt.Errorf("ir: decode: %w", err)
	}
	if wp.Version != codecVersion {
		return nil, fmt.Errorf("ir: decode: wire version %d, want %d", wp.Version, codecVersion)
	}
	if wp.NumNodes < 0 || wp.NumNodes > maxDecodeNodes ||
		len(wp.Nodes) > wp.NumNodes ||
		len(wp.Vars) > maxDecodeVars ||
		len(wp.Procs) > maxDecodeProcs {
		return nil, fmt.Errorf("ir: decode: arena bounds out of range")
	}
	edges := 0
	for _, wn := range wp.Nodes {
		if wn == nil {
			return nil, fmt.Errorf("ir: decode: null node record")
		}
		edges += len(wn.Succs) + len(wn.Preds)
		if edges > maxDecodeEdges {
			return nil, fmt.Errorf("ir: decode: edge count out of range")
		}
	}

	p := &Program{
		MainProc:    wp.MainProc,
		SourceLines: wp.SourceLines,
	}
	p.Vars = make([]*Var, len(wp.Vars))
	vblock := make([]Var, len(wp.Vars))
	for i, wv := range wp.Vars {
		if wv == nil {
			return nil, fmt.Errorf("ir: decode: null var record")
		}
		if wv.ID != VarID(i) {
			return nil, fmt.Errorf("ir: decode: var %d has id %d", i, wv.ID)
		}
		vblock[i] = Var{ID: wv.ID, Name: wv.Name, Kind: wv.Kind, Proc: wv.Proc, Init: wv.Init}
		p.Vars[i] = &vblock[i]
	}
	p.Procs = make([]*Proc, len(wp.Procs))
	for i, wpr := range wp.Procs {
		if wpr == nil {
			return nil, fmt.Errorf("ir: decode: null proc record")
		}
		p.Procs[i] = &Proc{
			Name:    wpr.Name,
			Index:   wpr.Index,
			Formals: wpr.Formals,
			RetVar:  wpr.RetVar,
			Entries: wpr.Entries,
			Exits:   wpr.Exits,
		}
	}
	p.Nodes = make([]*Node, wp.NumNodes)
	nblock := make([]Node, len(wp.Nodes))
	prev := NodeID(-1)
	for i, wn := range wp.Nodes {
		if wn.ID <= prev || int(wn.ID) >= wp.NumNodes {
			return nil, fmt.Errorf("ir: decode: node id %d out of order or range", wn.ID)
		}
		prev = wn.ID
		n := &nblock[i]
		*n = Node{
			ID:        wn.ID,
			Kind:      wn.Kind,
			Proc:      wn.Proc,
			Line:      wn.Line,
			Synthetic: wn.Synthetic,
			Dst:       wn.Dst,
			CondVar:   wn.CondVar,
			CondOp:    wn.CondOp,
			CondRHS:   irOp(wn.CondRHS),
			AVar:      wn.AVar,
			APred:     pred.Pred{Op: wn.APredOp, C: wn.APredC},
			Ptr:       wn.Ptr,
			Idx:       irOp(wn.Idx),
			Val:       irOp(wn.Val),
			Callee:    wn.Callee,
			Args:      wn.Args,
			Succs:     wn.Succs,
			Preds:     wn.Preds,
		}
		if wn.RHS != nil {
			n.RHS = RHS{
				Kind:  wn.RHS.Kind,
				Const: wn.RHS.Const,
				A:     irOp(wn.RHS.A),
				B:     irOp(wn.RHS.B),
				Src:   wn.RHS.Src,
				Op:    wn.RHS.Op,
			}
		}
		p.Nodes[wn.ID] = n
	}
	return p, nil
}
