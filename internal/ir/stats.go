package ir

// Stats summarizes the size of an ICFG in the units the paper reports:
// high-level nodes (operations) and conditional nodes.
type Stats struct {
	Procs int
	// AllNodes counts every live node including synthetic ones (entries,
	// exits, call sites, asserts, nops) — the paper's "all nodes" column
	// includes unexecutable label nodes similarly.
	AllNodes int
	// Operations counts nodes that perform a program operation (assign,
	// branch, store, print, call, and value-carrying call exits).
	Operations int
	// Conditionals counts branch nodes.
	Conditionals int
	// AnalyzableConds counts branch nodes of the (var relop const) form the
	// analysis handles.
	AnalyzableConds int
}

// Collect computes the program's size statistics.
func Collect(p *Program) Stats {
	st := Stats{Procs: len(p.Procs)}
	p.LiveNodes(func(n *Node) {
		st.AllNodes++
		if n.IsOperation() {
			st.Operations++
		}
		if n.IsBranch() {
			st.Conditionals++
			if n.Analyzable() {
				st.AnalyzableConds++
			}
		}
	})
	return st
}
