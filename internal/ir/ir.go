// Package ir defines the interprocedural control flow graph (ICFG) that the
// ICBE analysis and restructuring operate on, and the lowering from MiniC
// ASTs onto it.
//
// The ICFG follows the paper's representation (Bodík/Gupta/Soffa, PLDI'97,
// Figure 3): the control flow graphs of all procedures are combined by
// connecting procedure entry and exit nodes with their call sites. Each
// procedure may have multiple entry nodes and multiple exit nodes (created
// by entry/exit splitting). The graph is kept in *call-site normal form*:
//
//	(a) each call site node has exactly one procedure-entry successor, and
//	(b) each call-site-exit node has exactly one call-site predecessor and
//	    one procedure-exit predecessor.
//
// Nodes hold at most one statement. Branch out-edges materialize their
// assertions as synthetic Assert nodes so that the correlation analysis is
// purely node-based.
package ir

import (
	"fmt"

	"icbe/internal/pred"
)

// VarID identifies a variable in the program's variable arena.
type VarID int32

// NoVar marks an absent variable (e.g. a discarded call result).
const NoVar VarID = -1

// NodeID identifies a node in the program's node arena.
type NodeID int32

// NoNode marks an absent node reference.
const NoNode NodeID = -1

// VarKind classifies variables.
type VarKind uint8

// Variable kinds. Temps are compiler-generated; Ret holds a procedure's
// return value.
const (
	VarGlobal VarKind = iota
	VarParam
	VarLocal
	VarTemp
	VarRet
)

func (k VarKind) String() string {
	switch k {
	case VarGlobal:
		return "global"
	case VarParam:
		return "param"
	case VarLocal:
		return "local"
	case VarTemp:
		return "temp"
	case VarRet:
		return "ret"
	}
	return fmt.Sprintf("VarKind(%d)", int(k))
}

// Var is a program variable. Globals have Proc == -1. Field order is
// size-descending to minimize padding.
type Var struct {
	Name string
	Init int64 // initial value (globals only)
	Proc int   // owning procedure index, -1 for globals
	ID   VarID
	Kind VarKind
}

// IsGlobal reports whether the variable is a global.
func (v *Var) IsGlobal() bool { return v.Kind == VarGlobal }

// NodeKind enumerates ICFG node kinds.
type NodeKind uint8

// Node kinds.
const (
	NEntry    NodeKind = iota // procedure entry (dummy)
	NExit                     // procedure exit (dummy)
	NCall                     // call site node (dummy, carries arg bindings)
	NCallExit                 // call-site exit: dst := returned value
	NAssign                   // dst := rhs
	NBranch                   // conditional branch on (var relop operand)
	NAssert                   // synthetic assertion (var relop const) holds here
	NStore                    // heap[ptr+idx] := val
	NPrint                    // append val to program output
	NNop                      // synthetic empty node (joins, loop headers)
)

func (k NodeKind) String() string {
	switch k {
	case NEntry:
		return "entry"
	case NExit:
		return "exit"
	case NCall:
		return "call"
	case NCallExit:
		return "callexit"
	case NAssign:
		return "assign"
	case NBranch:
		return "branch"
	case NAssert:
		return "assert"
	case NStore:
		return "store"
	case NPrint:
		return "print"
	case NNop:
		return "nop"
	}
	return fmt.Sprintf("NodeKind(%d)", int(k))
}

// RHSKind enumerates right-hand sides of assignments.
type RHSKind uint8

// Assignment right-hand-side kinds.
const (
	RConst RHSKind = iota // constant
	RCopy                 // copy of another variable
	RNeg                  // arithmetic negation of a variable
	RByte                 // low 8 bits of a variable; result in [0,255]
	RBinop                // binary arithmetic on two operands
	RLoad                 // heap load ptr[idx]
	RAlloc                // heap allocation of size cells
	RInput                // next input value, or -1 when exhausted
)

func (k RHSKind) String() string {
	switch k {
	case RConst:
		return "const"
	case RCopy:
		return "copy"
	case RNeg:
		return "neg"
	case RByte:
		return "byte"
	case RBinop:
		return "binop"
	case RLoad:
		return "load"
	case RAlloc:
		return "alloc"
	case RInput:
		return "input"
	}
	return fmt.Sprintf("RHSKind(%d)", int(k))
}

// BinOp enumerates arithmetic operators on the IR level.
type BinOp uint8

// IR arithmetic operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
)

func (o BinOp) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	}
	return "?"
}

// Operand is a variable or an immediate constant. Field order is
// size-descending to minimize padding (operands are embedded in every
// Node).
type Operand struct {
	Const   int64
	Var     VarID
	IsConst bool
}

// ConstOp returns a constant operand.
func ConstOp(c int64) Operand { return Operand{IsConst: true, Const: c} }

// VarOp returns a variable operand.
func VarOp(v VarID) Operand { return Operand{Var: v} }

func (o Operand) String() string {
	if o.IsConst {
		return fmt.Sprintf("%d", o.Const)
	}
	return fmt.Sprintf("v%d", int(o.Var))
}

// RHS is the right-hand side of an assignment node. Field order is
// size-descending to minimize padding.
type RHS struct {
	Const int64   // RConst
	A, B  Operand // RBinop operands; RLoad index in A; RAlloc size in A
	Src   VarID   // RCopy, RNeg, RByte; pointer for RLoad
	Kind  RHSKind
	Op    BinOp // RBinop
}

// Node is a single ICFG node. The payload fields used depend on Kind.
// Nodes dominate the optimizer's allocation profile (every scratch clone
// copies the whole arena), so fields are laid out size-descending to
// minimize padding rather than grouped by kind; the comments keep the
// per-kind grouping.
type Node struct {
	// NAssign / NCallExit: RHS is the assigned value; Dst (below) the
	// destination variable, NoVar when the call result is discarded.
	RHS RHS

	// NBranch: condition (CondVar CondOp CondRHS). Analyzable when CondRHS
	// is a constant. Succs[0] is the true successor, Succs[1] the false
	// successor.
	CondRHS Operand

	// NStore: heap[Ptr+Idx] := Val.
	Idx Operand
	Val Operand // also NPrint value

	// NAssert: the fact (AVar APred) holds on entry to this node's
	// successor. Assert nodes are synthetic.
	APred pred.Pred

	// NCall: argument variables (1:1 with the callee's formals).
	Args []VarID

	Succs []NodeID
	Preds []NodeID

	// NCall: callee procedure index. NCallExit: the procedure returned
	// from.
	Callee int

	Proc int // owning procedure index
	Line int // source line, for diagnostics

	ID      NodeID
	Dst     VarID // NAssign / NCallExit destination
	CondVar VarID // NBranch condition variable
	AVar    VarID // NAssert variable
	Ptr     VarID // NStore pointer

	Kind   NodeKind
	CondOp pred.Op // NBranch relational operator

	// Synthetic nodes (entry, exit, call, asserts, nops) carry no program
	// operation; they are excluded from operation counts and may be
	// duplicated freely.
	Synthetic bool
}

// IsOperation reports whether the node represents a real program operation
// (counted in code-size and path-length metrics).
func (n *Node) IsOperation() bool {
	switch n.Kind {
	case NAssign, NBranch, NStore, NPrint:
		return true
	case NCall:
		return true
	case NCallExit:
		return n.Dst != NoVar
	}
	return false
}

// IsBranch reports whether the node is a conditional branch.
func (n *Node) IsBranch() bool { return n.Kind == NBranch }

// Analyzable reports whether a branch node matches the (var relop const)
// pattern handled by the correlation analysis.
func (n *Node) Analyzable() bool { return n.Kind == NBranch && n.CondRHS.IsConst }

// CondPred returns the predicate of an analyzable branch.
func (n *Node) CondPred() pred.Pred {
	if !n.Analyzable() {
		panic(fmt.Sprintf("ir: CondPred on non-analyzable node %d (%s)", n.ID, n.Kind))
	}
	return pred.Pred{Op: n.CondOp, C: n.CondRHS.Const}
}

// TrueSucc returns the true-edge successor of a branch.
func (n *Node) TrueSucc() NodeID { return n.Succs[0] }

// FalseSucc returns the false-edge successor of a branch.
func (n *Node) FalseSucc() NodeID { return n.Succs[1] }

// Proc is a procedure of the program. After restructuring a procedure may
// have several entries and exits.
type Proc struct {
	Name    string
	Index   int
	Formals []VarID
	RetVar  VarID
	Entries []NodeID
	Exits   []NodeID
}

// Program is a complete ICFG with its variable arena.
type Program struct {
	Procs []*Proc
	Vars  []*Var
	// Nodes is the node arena; deleted nodes are nil.
	Nodes    []*Node
	MainProc int
	// SourceLines is the number of source lines the program was built from
	// (for Table 1 reporting).
	SourceLines int
	// nodePool is the spare capacity NewNode hands nodes out of, so building
	// and restructuring do not pay one heap allocation per node. edgePool
	// seeds fresh Succs/Preds lists the same way: almost every node has one
	// or two edges each way, and growing them from nil is otherwise the
	// hottest allocation in a build.
	nodePool []Node
	edgePool []NodeID
	varPool  []Var
}

// newEdgeList returns an empty edge list with room for two entries carved
// from the pool; appending past two falls back to the normal grow path.
func (p *Program) newEdgeList() []NodeID {
	if len(p.edgePool) < 2 {
		p.edgePool = make([]NodeID, 256)
	}
	s := p.edgePool[:0:2]
	p.edgePool = p.edgePool[2:]
	return s
}

// Node returns the node with the given id, or nil if deleted/out of range.
func (p *Program) Node(id NodeID) *Node {
	if id < 0 || int(id) >= len(p.Nodes) {
		return nil
	}
	return p.Nodes[id]
}

// Var returns the variable with the given id.
func (p *Program) Var(id VarID) *Var { return p.Vars[id] }

// NewVar appends a variable to the arena.
func (p *Program) NewVar(name string, kind VarKind, proc int) VarID {
	if len(p.varPool) == 0 {
		p.varPool = make([]Var, 64)
	}
	v := &p.varPool[0]
	p.varPool = p.varPool[1:]
	id := VarID(len(p.Vars))
	*v = Var{ID: id, Name: name, Kind: kind, Proc: proc}
	p.Vars = append(p.Vars, v)
	return id
}

// NewNode appends a node of the given kind to the arena.
func (p *Program) NewNode(kind NodeKind, proc int) *Node {
	if len(p.nodePool) == 0 {
		size := len(p.Nodes)
		if size < 64 {
			size = 64
		} else if size > 1024 {
			size = 1024
		}
		p.nodePool = make([]Node, size)
	}
	n := &p.nodePool[0]
	p.nodePool = p.nodePool[1:]
	*n = Node{ID: NodeID(len(p.Nodes)), Kind: kind, Proc: proc, Dst: NoVar}
	switch kind {
	case NEntry, NExit, NCall, NAssert, NNop:
		n.Synthetic = true
	}
	p.Nodes = append(p.Nodes, n)
	return n
}

// AddEdge inserts the edge from → to, keeping Succs/Preds consistent.
// Parallel edges are permitted only for branches whose two arms reach the
// same node; elsewhere a duplicate edge is ignored.
func (p *Program) AddEdge(from, to NodeID) {
	f, t := p.Nodes[from], p.Nodes[to]
	if f.Kind != NBranch {
		for _, s := range f.Succs {
			if s == to {
				return
			}
		}
	}
	if f.Succs == nil {
		f.Succs = p.newEdgeList()
	}
	if t.Preds == nil {
		t.Preds = p.newEdgeList()
	}
	f.Succs = append(f.Succs, to)
	t.Preds = append(t.Preds, from)
}

// RemoveEdge deletes one instance of the edge from → to.
func (p *Program) RemoveEdge(from, to NodeID) {
	f, t := p.Nodes[from], p.Nodes[to]
	f.Succs = removeOne(f.Succs, to)
	t.Preds = removeOne(t.Preds, from)
}

func removeOne(ids []NodeID, x NodeID) []NodeID {
	for i, id := range ids {
		if id == x {
			return append(ids[:i:i], ids[i+1:]...)
		}
	}
	return ids
}

// RedirectSucc replaces the successor old of node from with new, preserving
// edge order (important for branch true/false arms).
func (p *Program) RedirectSucc(from, old, new NodeID) {
	f := p.Nodes[from]
	replaced := false
	for i, s := range f.Succs {
		if s == old {
			f.Succs[i] = new
			replaced = true
			break
		}
	}
	if !replaced {
		panic(fmt.Sprintf("ir: RedirectSucc: %d is not a successor of %d", old, from))
	}
	p.Nodes[old].Preds = removeOne(p.Nodes[old].Preds, from)
	p.Nodes[new].Preds = append(p.Nodes[new].Preds, from)
}

// DeleteNode removes a node and all its incident edges from the graph.
func (p *Program) DeleteNode(id NodeID) {
	n := p.Nodes[id]
	if n == nil {
		return
	}
	for _, s := range append([]NodeID(nil), n.Succs...) {
		p.RemoveEdge(id, s)
	}
	for _, m := range append([]NodeID(nil), n.Preds...) {
		p.RemoveEdge(m, id)
	}
	p.Nodes[id] = nil
}

// EntrySucc returns the unique procedure-entry successor of a call node.
func (p *Program) EntrySucc(call *Node) *Node {
	var entry *Node
	for _, s := range call.Succs {
		if sn := p.Nodes[s]; sn != nil && sn.Kind == NEntry {
			if entry != nil {
				panic(fmt.Sprintf("ir: call node %d has multiple entry successors", call.ID))
			}
			entry = sn
		}
	}
	if entry == nil {
		panic(fmt.Sprintf("ir: call node %d has no entry successor", call.ID))
	}
	return entry
}

// CallExitSuccs returns the call-site-exit successors of a call node.
func (p *Program) CallExitSuccs(call *Node) []*Node {
	var out []*Node
	for _, s := range call.Succs {
		if sn := p.Nodes[s]; sn != nil && sn.Kind == NCallExit {
			out = append(out, sn)
		}
	}
	return out
}

// CallPred returns the call-site predecessor of a call-site-exit node, or
// nil if there is not exactly one.
func (p *Program) CallPred(ce *Node) *Node {
	var call *Node
	for _, m := range ce.Preds {
		if mn := p.Nodes[m]; mn != nil && mn.Kind == NCall {
			if call != nil {
				return nil
			}
			call = mn
		}
	}
	return call
}

// ExitPred returns the procedure-exit predecessor of a call-site-exit node,
// or nil if there is not exactly one.
func (p *Program) ExitPred(ce *Node) *Node {
	var exit *Node
	for _, m := range ce.Preds {
		if mn := p.Nodes[m]; mn != nil && mn.Kind == NExit {
			if exit != nil {
				return nil
			}
			exit = mn
		}
	}
	return exit
}

// LiveNodes iterates over all non-deleted nodes.
func (p *Program) LiveNodes(f func(*Node)) {
	for _, n := range p.Nodes {
		if n != nil {
			f(n)
		}
	}
}

// ProcNodes returns all live nodes belonging to the given procedure.
func (p *Program) ProcNodes(proc int) []*Node {
	var out []*Node
	p.LiveNodes(func(n *Node) {
		if n.Proc == proc {
			out = append(out, n)
		}
	})
	return out
}

// ProcByName returns the procedure with the given name, or nil.
func (p *Program) ProcByName(name string) *Proc {
	for _, pr := range p.Procs {
		if pr.Name == name {
			return pr
		}
	}
	return nil
}
