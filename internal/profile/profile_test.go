package profile

import (
	"testing"

	"icbe/internal/ir"
)

const src = `
	func main() {
		var i = 0;
		while (i < 5) {
			print(i);
			i = i + 1;
		}
	}
`

func TestCollectAndQueries(t *testing.T) {
	p, err := ir.Build(src)
	if err != nil {
		t.Fatal(err)
	}
	prof, res, err := Collect(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 5 {
		t.Fatalf("output = %v", res.Output)
	}
	if got := prof.CondExecutions(p); got != 6 { // 5 true + 1 false
		t.Errorf("CondExecutions = %d, want 6", got)
	}
	if prof.OperationExecutions(p) <= prof.CondExecutions(p) {
		t.Error("operations should exceed conditionals")
	}
	var br *ir.Node
	p.LiveNodes(func(n *ir.Node) {
		if n.Kind == ir.NBranch {
			br = n
		}
	})
	if prof.Of(br.ID) != 6 {
		t.Errorf("Of(branch) = %d, want 6", prof.Of(br.ID))
	}
}

func TestMerge(t *testing.T) {
	p, _ := ir.Build(src)
	prof1, _, err := Collect(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	prof2, _, _ := Collect(p, nil)
	prof1.Merge(prof2)
	if got := prof1.CondExecutions(p); got != 12 {
		t.Errorf("merged CondExecutions = %d, want 12", got)
	}
}

func TestCollectPropagatesErrors(t *testing.T) {
	p, _ := ir.Build(`func main() { var x = input(); print(1 / x); }`)
	if _, _, err := Collect(p, []int64{0}); err == nil {
		t.Error("expected runtime error")
	}
}

func TestFromResult(t *testing.T) {
	p, _ := ir.Build(src)
	_, res, err := Collect(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	prof := FromResult(res)
	if len(prof) == 0 {
		t.Error("empty profile")
	}
}
