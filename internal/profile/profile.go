// Package profile holds dynamic execution profiles of ICFG programs — the
// per-node execution counts the paper collects from the ref input set and
// uses to weight its dynamic measurements (Figure 9 right column, Figure 10
// y-axis, Figure 11 y-axis).
package profile

import (
	"icbe/internal/interp"
	"icbe/internal/ir"
)

// Profile maps node IDs to execution counts.
type Profile map[ir.NodeID]int64

// FromResult extracts the profile of an instrumented run.
func FromResult(res *interp.Result) Profile {
	p := make(Profile, len(res.ExecCount))
	for id, c := range res.ExecCount {
		p[id] = c
	}
	return p
}

// Collect runs the program on the input with profiling enabled and returns
// its profile together with the run result.
func Collect(prog *ir.Program, input []int64) (Profile, *interp.Result, error) {
	res, err := interp.Run(prog, interp.Options{Input: input, Profile: true})
	if err != nil {
		return nil, res, err
	}
	return FromResult(res), res, nil
}

// Merge adds the counts of other into p.
func (p Profile) Merge(other Profile) {
	for id, c := range other {
		p[id] += c
	}
}

// Of returns the execution count of a node.
func (p Profile) Of(id ir.NodeID) int64 { return p[id] }

// CondExecutions sums the execution counts of all conditional branch nodes.
func (p Profile) CondExecutions(prog *ir.Program) int64 {
	var total int64
	prog.LiveNodes(func(n *ir.Node) {
		if n.IsBranch() {
			total += p[n.ID]
		}
	})
	return total
}

// OperationExecutions sums the execution counts of all operation nodes.
func (p Profile) OperationExecutions(prog *ir.Program) int64 {
	var total int64
	prog.LiveNodes(func(n *ir.Node) {
		if n.IsOperation() {
			total += p[n.ID]
		}
	})
	return total
}
