package analysis

import (
	"sort"

	"icbe/internal/ir"
)

// This file implements two applications the paper describes in §5 beyond
// the core optimization:
//
//   - assisting hardware branch prediction: when correlation is statically
//     detectable, the analysis can tell the predictor *which* earlier
//     branch (or other source) determines the outcome, instead of the
//     hardware tracking the last k branches;
//   - inlining guidance: procedures that generate correlation should get a
//     higher inlining priority, so a conventional inliner plus
//     intraprocedural elimination can harvest the correlation.

// SourceKind classifies where a correlation originates — the paper's four
// sources of static correlation.
type SourceKind int

// Correlation source kinds.
const (
	SrcConstant SourceKind = iota // constant assignment
	SrcBranch                     // an earlier conditional's outcome
	SrcByte                       // unsigned→signed conversion (byte)
	SrcDeref                      // pointer dereference (non-nil)
	SrcAlloc                      // allocation result (non-nil)
	SrcOther
)

func (k SourceKind) String() string {
	switch k {
	case SrcConstant:
		return "constant"
	case SrcBranch:
		return "branch"
	case SrcByte:
		return "byte-conversion"
	case SrcDeref:
		return "dereference"
	case SrcAlloc:
		return "allocation"
	}
	return "other"
}

// Source is one resolution site of the analyzed conditional: executing it
// decides the conditional's outcome along the paths that lead from it to
// the conditional.
type Source struct {
	// Node is the resolution site.
	Node ir.NodeID
	// Kind classifies the correlation source.
	Kind SourceKind
	// Branch, for Kind == SrcBranch, names the earlier conditional whose
	// outcome predicts the analyzed one — the paper's prediction hint.
	Branch ir.NodeID
	// Answer is the decided outcome (AnsTrue or AnsFalse).
	Answer AnswerSet
	// SameProc reports whether the source lies in the conditional's own
	// procedure; interprocedural sources are what ICBE adds over
	// intraprocedural elimination.
	SameProc bool
}

// CorrelationSources lists the resolution sites that decide the analyzed
// conditional (answers TRUE or FALSE), classified by source kind. For
// branch sources the originating conditional is identified, providing the
// paper's "which recent branch should be used for prediction" directive.
func (r *Result) CorrelationSources(p *ir.Program) []Source {
	condProc := -1
	if n := p.Node(r.Cond); n != nil {
		condProc = n.Proc
	}
	var out []Source
	r.ForEachResolved(func(pn ir.NodeID, _ *Query, ans AnswerSet) {
		if ans&(AnsTrue|AnsFalse) == 0 {
			return
		}
		node := p.Node(pn)
		if node == nil {
			return
		}
		s := Source{Node: pn, Answer: ans & (AnsTrue | AnsFalse), Kind: SrcOther,
			Branch: ir.NoNode, SameProc: node.Proc == condProc}
		switch node.Kind {
		case ir.NAssign:
			switch node.RHS.Kind {
			case ir.RConst:
				s.Kind = SrcConstant
			case ir.RByte:
				s.Kind = SrcByte
			case ir.RAlloc:
				s.Kind = SrcAlloc
			}
		case ir.NAssert:
			// Branch-arm asserts have a branch predecessor; dereference
			// asserts follow loads and stores.
			s.Kind = SrcDeref
			for _, m := range node.Preds {
				if mn := p.Node(m); mn != nil && mn.Kind == ir.NBranch {
					s.Kind = SrcBranch
					s.Branch = m
					break
				}
			}
		}
		out = append(out, s)
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// ProcPriority scores one procedure for correlation-directed inlining.
type ProcPriority struct {
	Proc int
	Name string
	// Conds counts conditionals whose correlation crosses this
	// procedure's boundary; Weight adds each crossing's dynamic benefit
	// when a profile is supplied (nil profile weights each crossing 1).
	Conds  int
	Weight int64
}

// InliningPriorities ranks procedures by the correlation that crosses
// their boundaries: a procedure containing resolution sites for another
// procedure's conditionals is a profitable inlining candidate, because
// inlining it lets a purely intraprocedural eliminator see the correlation
// (paper §5, "Procedure inlining"). execCount may be nil.
func InliningPriorities(p *ir.Program, opts Options, execCount map[ir.NodeID]int64) []ProcPriority {
	an := New(p, opts)
	score := make(map[int]*ProcPriority)
	p.LiveNodes(func(b *ir.Node) {
		if b.Kind != ir.NBranch || !b.Analyzable() {
			return
		}
		res := an.AnalyzeBranch(b.ID)
		if res == nil || !res.HasCorrelation() {
			return
		}
		credited := make(map[int]bool)
		res.ForEachResolved(func(pn ir.NodeID, _ *Query, ans AnswerSet) {
			if ans&(AnsTrue|AnsFalse) == 0 {
				return
			}
			node := p.Node(pn)
			if node == nil || node.Proc == b.Proc {
				return
			}
			pp := score[node.Proc]
			if pp == nil {
				pp = &ProcPriority{Proc: node.Proc, Name: p.Procs[node.Proc].Name}
				score[node.Proc] = pp
			}
			if !credited[node.Proc] {
				pp.Conds++
				credited[node.Proc] = true
			}
			if execCount != nil {
				pp.Weight += execCount[pn]
			} else {
				pp.Weight++
			}
		})
		res.Release()
	})
	out := make([]ProcPriority, 0, len(score))
	for _, pp := range score {
		out = append(out, *pp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Proc < out[j].Proc
	})
	return out
}
