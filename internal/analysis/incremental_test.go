package analysis

import (
	"testing"

	"icbe/internal/ir"
	"icbe/internal/pred"
)

// faultSrc: the conditional on g in main depends on two summaries of callee
// (which modifies g), so its root record carries dependency records —
// summary keys, arrival sets, exit answers, and MOD decisions — that replay
// must validate before trusting the cached subtree.
const faultSrc = `
var g = 0;
func callee(a0) {
	if (a0 > 0) { g = g + 1; }
	var x = a0 + 1;
	x = x + 2;
	x = x - a0;
	return x;
}
func main() {
	var h = callee(3);
	h = callee(h);
	if (g == 0) { print(1); }
	print(h);
	return 0;
}
`

// TestRootReplayFaultInjection corrupts a committed root record's dependency
// bookkeeping in every dimension replay validates — summary keys, arrival
// sets, exit answers, MOD decisions — and asserts the analyzer never serves
// a stale answer: every corrupted replay must fail closed into a fresh
// analysis that reproduces the memo-less baseline exactly (same answers,
// same pair counters).
func TestRootReplayFaultInjection(t *testing.T) {
	p := build(t, faultSrc)
	b := findBranch(t, p, "g", pred.Eq, 0)
	opts := Options{Interprocedural: true, ModSummaries: true, MemoSummaries: true}

	fresh := New(p, opts).AnalyzeBranch(b.ID)
	wantAns := fresh.RootAnswers()
	wantProcessed := fresh.PairsProcessed
	wantRaised := fresh.PairsRaised

	cp := b.CondPred()
	key := rootKey{cond: b.ID, v: b.CondVar, op: cp.Op, c: cp.C}

	// record produces a memo holding one committed root record for the
	// conditional (plus the summary records its closure waited on).
	record := func(t *testing.T) *SummaryMemo {
		t.Helper()
		m := NewSummaryMemo()
		r := NewWithMemo(p, opts, m).AnalyzeBranch(b.ID)
		if r.RootAnswers() != wantAns {
			t.Fatalf("recording run answers %v, want %v", r.RootAnswers(), wantAns)
		}
		m.Commit(nil)
		if m.roots[key] == nil {
			t.Fatal("no committed root record for the conditional")
		}
		return m
	}

	// Sanity: an intact record replays, with every pair reused and counters
	// identical to the baseline — otherwise the corruption cases below would
	// be vacuously green.
	m := record(t)
	rep := NewWithMemo(p, opts, m).AnalyzeBranch(b.ID)
	if rep.RootAnswers() != wantAns || rep.PairsProcessed != wantProcessed || rep.PairsRaised != wantRaised {
		t.Fatalf("intact replay diverged: ans=%v pairs=%d/%d, want ans=%v pairs=%d/%d",
			rep.RootAnswers(), rep.PairsProcessed, rep.PairsRaised, wantAns, wantProcessed, wantRaised)
	}
	if rep.QueriesReused == 0 {
		t.Fatal("intact replay reused nothing; the fault-injection cases would not exercise replay")
	}

	corrupt := func(name string, mutate func(t *testing.T, rr *rootRecord)) {
		t.Run(name, func(t *testing.T) {
			m := record(t)
			rr := m.roots[key]
			mutate(t, rr)
			res := NewWithMemo(p, opts, m).AnalyzeBranch(b.ID)
			if res.RootAnswers() != wantAns {
				t.Errorf("stale answers served: got %v, want %v", res.RootAnswers(), wantAns)
			}
			if res.PairsProcessed != wantProcessed || res.PairsRaised != wantRaised {
				t.Errorf("counters diverged from the fresh baseline: pairs=%d/%d, want %d/%d",
					res.PairsProcessed, res.PairsRaised, wantProcessed, wantRaised)
			}
		})
	}

	corrupt("dep-key", func(t *testing.T, rr *rootRecord) {
		if len(rr.deps) == 0 {
			t.Fatal("root record has no dependency records")
		}
		rr.deps[0].key.c = 123456789
	})
	corrupt("dep-arrivals-dropped", func(t *testing.T, rr *rootRecord) {
		rr.deps[0].arrivals = nil
	})
	corrupt("dep-arrival-var", func(t *testing.T, rr *rootRecord) {
		if len(rr.deps[0].arrivals) == 0 {
			t.Fatal("dependency has no arrivals to corrupt")
		}
		rr.deps[0].arrivals[0].v++
	})
	corrupt("dep-arrival-pred", func(t *testing.T, rr *rootRecord) {
		if len(rr.deps[0].arrivals) == 0 {
			t.Fatal("dependency has no arrivals to corrupt")
		}
		rr.deps[0].arrivals[0].p.C += 7
	})
	corrupt("mod-decision-flipped", func(t *testing.T, rr *rootRecord) {
		if len(rr.modChecks) == 0 {
			t.Fatal("root record recorded no MOD decisions")
		}
		rr.modChecks[0].must = !rr.modChecks[0].must
	})
	corrupt("extra-phantom-dep", func(t *testing.T, rr *rootRecord) {
		phantom := rr.deps[0]
		phantom.key.c = 987654321
		rr.deps = append(rr.deps, phantom)
	})

	// The region contract: committing a dirty set that intersects the
	// record's touched nodes must drop it — the next analysis is fresh, not
	// a replay of a record recorded against a program that no longer exists.
	t.Run("touched-invalidation", func(t *testing.T) {
		m := record(t)
		rr := m.roots[key]
		if len(rr.touched) == 0 {
			t.Fatal("root record has an empty region")
		}
		m.Commit(map[ir.NodeID]bool{rr.touched[0]: true})
		if m.roots[key] != nil {
			t.Fatal("root record survived a commit that dirtied its region")
		}
		res := NewWithMemo(p, opts, m).AnalyzeBranch(b.ID)
		if res.RootAnswers() != wantAns {
			t.Errorf("post-invalidation answers %v, want %v", res.RootAnswers(), wantAns)
		}
	})
}
