package analysis

import (
	"math"
	"sync"

	"icbe/internal/ir"
	"icbe/internal/pred"
)

// Options configures the correlation analysis.
type Options struct {
	// Interprocedural enables query propagation across procedure
	// boundaries (the ICBE analysis). When false the analysis is the
	// intraprocedural baseline: queries resolve UNDEF at procedure entries
	// and at call-site exits whose callee may modify the query variable
	// (per MOD summary information), matching the paper's baseline.
	Interprocedural bool
	// TerminationLimit bounds the number of node–query pairs processed for
	// one conditional; pending queries resolve UNDEF when it is reached.
	// Zero means unlimited. The paper's Figure 11 experiments use 1000.
	TerminationLimit int
	// ArithSubst extends symbolic back-substitution beyond copy
	// assignments to v := -w and v := w ± k (an ablation of the paper's
	// remark that richer symbolic manipulation is possible).
	ArithSubst bool
	// ModSummaries consults MOD summary information at call sites so
	// queries on globals the callee cannot modify skip the callee.
	ModSummaries bool
	// CacheAnswers caches the rolled-back answer sets of all top-level
	// (node, query) pairs across AnalyzeBranch calls, reproducing the
	// paper's query-caching variant (§3.3: O(CNV) analysis time at the
	// price of memory, which the authors found counterproductive). Cached
	// results are valid only while the program is unmodified, and results
	// computed with caching lack the supplier structure restructuring
	// needs — use it for analysis-only measurements.
	CacheAnswers bool
}

// DefaultOptions returns the configuration used for the paper's main
// experiments: interprocedural, MOD summaries on, copy-only substitution.
func DefaultOptions() Options {
	return Options{Interprocedural: true, ModSummaries: true}
}

// Analyzer analyzes conditionals of one program. It precomputes MOD
// summaries; each conditional is analyzed on demand.
//
// An Analyzer is safe for concurrent AnalyzeBranch calls as long as the
// program is not mutated: per-conditional state lives in the per-call run,
// the MOD summaries are computed once and read-only afterwards, and the
// cross-conditional answer cache is mutex-guarded.
type Analyzer struct {
	Prog *ir.Program
	Opts Options
	mod  []map[ir.VarID]bool
	// cache holds rolled-back answers of top-level pairs from previous
	// AnalyzeBranch calls (when Opts.CacheAnswers), guarded by mu.
	mu    sync.Mutex
	cache map[cacheKey]AnswerSet
}

type cacheKey struct {
	node ir.NodeID
	v    ir.VarID
	op   pred.Op
	c    int64
}

// New creates an analyzer for the program.
func New(p *ir.Program, opts Options) *Analyzer {
	a := &Analyzer{Prog: p, Opts: opts}
	if opts.ModSummaries {
		a.mod = ModSets(p)
	}
	if opts.CacheAnswers {
		a.cache = make(map[cacheKey]AnswerSet)
	}
	return a
}

// CacheBytes approximates the memory held by the cross-conditional answer
// cache (the paper's memory-versus-time tradeoff).
func (a *Analyzer) CacheBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return int64(len(a.cache)) * 40
}

// cacheGet looks up a cached rolled-back answer set.
func (a *Analyzer) cacheGet(k cacheKey) (AnswerSet, bool) {
	a.mu.Lock()
	ans, ok := a.cache[k]
	a.mu.Unlock()
	return ans, ok
}

// Result holds the analysis of one conditional: the queries raised at every
// node, the single-answer resolutions of the propagation phase, and (after
// rollback) the collected answer sets per node–query pair.
type Result struct {
	// Cond is the analyzed branch node.
	Cond ir.NodeID
	// Root is the query raised at the conditional itself.
	Root *Query
	// Queries lists the queries raised at each node (the paper's Q[n]).
	Queries map[ir.NodeID][]*Query
	// Resolved maps pairs to their propagation-phase resolution (single
	// answer), for pairs that resolved.
	Resolved map[PairKey]AnswerSet
	// Answers maps every visited pair to its rolled-back answer set (the
	// paper's A[n,q]).
	Answers map[PairKey]AnswerSet
	// Suppliers maps each unresolved pair to the per-predecessor sources
	// its answers flow from; resolved pairs have no suppliers (their
	// answers originate at the node). Restructuring consumes this.
	Suppliers map[PairKey][]EdgeSupplier
	// PairsProcessed counts node–query pairs taken off the worklist (the
	// paper's analysis-cost metric); PairsRaised counts pairs ever raised.
	PairsProcessed int
	PairsRaised    int
	// Truncated reports that the termination limit was reached and pending
	// queries were conservatively resolved UNDEF.
	Truncated bool
	// Interrupted reports that an interrupt callback (a deadline or a
	// cancelled context threaded in by the driver) stopped propagation
	// early. Interrupted results are still sound — pending queries resolved
	// UNDEF exactly as under the termination limit — but incomplete, and
	// the driver declines to restructure from them.
	Interrupted bool
	// CacheHits counts pairs answered from the cross-conditional cache
	// (only with Options.CacheAnswers).
	CacheHits int

	queries []*Query // by ID
	snes    []*SNE
}

// RootAnswers returns the answer set at the conditional (union over all
// incoming paths).
func (r *Result) RootAnswers() AnswerSet {
	return r.Answers[PairKey{r.Cond, r.Root.ID}]
}

// HasCorrelation reports whether some incoming path is correlated (the
// branch outcome is known along it).
func (r *Result) HasCorrelation() bool {
	return r.RootAnswers()&(AnsTrue|AnsFalse) != 0
}

// FullCorrelation reports whether the branch outcome is known along every
// incoming path (the conditional can be completely eliminated).
func (r *Result) FullCorrelation() bool {
	root := r.RootAnswers()
	return root != 0 && root&(AnsUndef|AnsTrans) == 0
}

// QueryByID returns the query with the given ID.
func (r *Result) QueryByID(id int) *Query { return r.queries[id] }

// SNEs returns the summary node entries created during the analysis.
func (r *Result) SNEs() []*SNE { return r.snes }

type run struct {
	a         *Analyzer
	p         *ir.Program
	res       *Result
	intern    map[queryKey]*Query
	sneByKey  map[queryKey]*SNE // keyed by (exit, var, pred); owner field unused
	worklist  []PairKey
	raised    map[PairKey]bool
	interrupt func() bool // nil = never; polled during propagation
}

// AnalyzeBranch runs the demand-driven analysis for one conditional. It
// returns nil when the branch is not of the analyzable (var relop const)
// form.
func (a *Analyzer) AnalyzeBranch(b ir.NodeID) *Result {
	return a.AnalyzeBranchInterruptible(b, nil)
}

// AnalyzeBranchInterruptible is AnalyzeBranch with a cooperative stop
// condition: interrupt (when non-nil) is polled periodically during query
// propagation, and when it reports true the run stops early exactly like
// the termination limit — pending queries resolve UNDEF, the result is
// marked Truncated and Interrupted — so a per-branch deadline or a
// cancelled context bounds the analysis without losing soundness.
func (a *Analyzer) AnalyzeBranchInterruptible(b ir.NodeID, interrupt func() bool) *Result {
	node := a.Prog.Node(b)
	if node == nil || !node.Analyzable() {
		return nil
	}
	r := &run{
		interrupt: interrupt,
		a:         a,
		p:         a.Prog,
		res: &Result{
			Cond:     b,
			Queries:  make(map[ir.NodeID][]*Query),
			Resolved: make(map[PairKey]AnswerSet),
		},
		intern:   make(map[queryKey]*Query),
		sneByKey: make(map[queryKey]*SNE),
		raised:   make(map[PairKey]bool),
	}
	// Raise the initial query at the conditional itself; the branch node is
	// transparent, so the first processing step propagates it to all
	// predecessors, and the pair (b, root) collects the union of all
	// incoming answers, which restructuring uses to split b.
	r.res.Root = r.internQuery(node.CondVar, node.CondPred(), nil)
	r.raise(b, r.res.Root)
	r.propagate()
	r.rollback()
	if a.cache != nil && !r.res.Truncated {
		a.mu.Lock()
		for n, qs := range r.res.Queries {
			for _, q := range qs {
				if q.Owner != nil {
					continue
				}
				if ans, ok := r.res.Answers[PairKey{n, q.ID}]; ok && ans != 0 {
					a.cache[cacheKey{n, q.Var, q.P.Op, q.P.C}] = ans
				}
			}
		}
		a.mu.Unlock()
	}
	return r.res
}

func (r *run) internQuery(v ir.VarID, p pred.Pred, owner *SNE) *Query {
	key := queryKey{v: v, op: p.Op, c: p.C, owner: -1}
	if owner != nil {
		key.owner = owner.ID
	}
	if q, ok := r.intern[key]; ok {
		return q
	}
	q := &Query{ID: len(r.res.queries), Var: v, P: p, Owner: owner}
	r.res.queries = append(r.res.queries, q)
	r.intern[key] = q
	return q
}

// lookupQuery returns the interned query, or nil if it was never created
// during propagation (used by rollback, which must not invent new queries).
func (r *run) lookupQuery(v ir.VarID, p pred.Pred, owner *SNE) *Query {
	key := queryKey{v: v, op: p.Op, c: p.C, owner: -1}
	if owner != nil {
		key.owner = owner.ID
	}
	return r.intern[key]
}

func (r *run) raise(n ir.NodeID, q *Query) {
	pk := PairKey{n, q.ID}
	if r.raised[pk] {
		return
	}
	r.raised[pk] = true
	r.res.Queries[n] = append(r.res.Queries[n], q)
	r.res.PairsRaised++
	if q.Owner == nil && r.a.cache != nil {
		if ans, ok := r.a.cacheGet(cacheKey{n, q.Var, q.P.Op, q.P.C}); ok {
			// Cached rolled-back answers from a previous conditional's
			// analysis substitute for re-propagation.
			r.res.Resolved[pk] = ans
			r.res.CacheHits++
			return
		}
	}
	r.worklist = append(r.worklist, pk)
}

func (r *run) resolve(pk PairKey, ans AnswerSet) {
	r.res.Resolved[pk] = ans
}

// hardLimit bounds propagation when arithmetic back-substitution is
// enabled without an explicit termination limit: shifting constants around
// loop back edges can generate unboundedly many distinct queries, the very
// divergence the paper's cutoff rule exists for ("since query propagation
// may not terminate under a general symbolic analysis, we stop query
// propagation with the UNDEF answer when a sufficient number of nodes has
// been processed").
const hardLimit = 200_000

// propagate is the paper's Figure 4 worklist loop.
func (r *run) propagate() {
	limit := r.a.Opts.TerminationLimit
	if limit == 0 && r.a.Opts.ArithSubst {
		limit = hardLimit
	}
	for len(r.worklist) > 0 {
		// Poll the interrupt every 64 pairs: often enough that a deadline
		// cuts a diverging propagation within microseconds, rarely enough
		// that the time.Now() inside typical interrupt closures stays off
		// the hot path.
		if r.interrupt != nil && r.res.PairsProcessed&63 == 0 && r.interrupt() {
			r.res.Interrupted = true
			r.stopEarly()
			return
		}
		if limit > 0 && r.res.PairsProcessed >= limit {
			r.stopEarly()
			return
		}
		pk := r.worklist[0]
		r.worklist = r.worklist[1:]
		r.res.PairsProcessed++
		r.process(pk)
	}
}

// stopEarly abandons propagation soundly: every pending pair is
// conservatively resolved UNDEF and the result marked Truncated (the
// paper's cutoff rule, shared by the termination limit and interrupts).
func (r *run) stopEarly() {
	r.res.Truncated = true
	for _, pk := range r.worklist {
		if _, ok := r.res.Resolved[pk]; !ok {
			r.resolve(pk, AnsUndef)
		}
	}
	r.worklist = nil
}

func (r *run) process(pk PairKey) {
	n := r.p.Node(pk.Node)
	q := r.res.queries[pk.Query]
	switch n.Kind {
	case ir.NEntry:
		r.processEntry(pk, n, q)
	case ir.NCallExit:
		r.processCallExit(pk, n, q)
	default:
		out := r.transfer(n, q)
		if out.resolved {
			r.resolve(pk, out.ans)
			return
		}
		for _, m := range n.Preds {
			r.raise(m, out.next)
		}
		if len(n.Preds) == 0 {
			// A node with no predecessors that is not an entry should not
			// exist in a valid graph, but resolve conservatively.
			r.resolve(pk, AnsUndef)
		}
	}
}

// processEntry handles procedure entry nodes (Figure 4 lines 6–13).
func (r *run) processEntry(pk PairKey, n *ir.Node, q *Query) {
	if q.Owner != nil {
		// Summary node query reaching the entry: the procedure is
		// transparent along this path.
		if !r.substitutableAtEntry(n, q) {
			r.resolve(pk, AnsUndef)
			return
		}
		r.resolve(pk, AnsTrans)
		s := q.Owner
		s.Entries[n.ID] = append(s.Entries[n.ID], q)
		for _, w := range s.Waiters {
			if w.entry == n.ID {
				r.raiseContinuation(w, q)
			}
		}
		return
	}
	if !r.a.Opts.Interprocedural {
		r.resolve(pk, AnsUndef)
		return
	}
	if !r.substitutableAtEntry(n, q) {
		// A query on a non-formal local at procedure start asks about an
		// uninitialized value.
		r.resolve(pk, AnsUndef)
		return
	}
	if len(n.Preds) == 0 {
		// main's entry, or an uncalled procedure.
		r.resolve(pk, AnsUndef)
		return
	}
	for _, m := range n.Preds {
		call := r.p.Node(m)
		r.raise(m, r.substEntry(q, call, q.Owner))
	}
}

// substitutableAtEntry reports whether the query variable has a meaning in
// the callers: a formal of the entered procedure or a global.
func (r *run) substitutableAtEntry(n *ir.Node, q *Query) bool {
	v := r.p.Vars[q.Var]
	if v.IsGlobal() {
		return true
	}
	for _, f := range r.p.Procs[n.Proc].Formals {
		if f == q.Var {
			return true
		}
	}
	return false
}

// substEntry rewrites a query crossing from a procedure entry to a call
// site: formals become the call's argument variables; globals pass through.
func (r *run) substEntry(q *Query, call *ir.Node, owner *SNE) *Query {
	v := r.p.Vars[q.Var]
	if v.IsGlobal() {
		if owner == q.Owner {
			return q
		}
		return r.internQuery(q.Var, q.P, owner)
	}
	for i, f := range r.p.Procs[call.Callee].Formals {
		if f == q.Var {
			return r.internQuery(call.Args[i], q.P, owner)
		}
	}
	panic("analysis: substEntry on non-formal non-global")
}

// callExitContent rewrites the query through the call-site exit's return
// value copy: a query on the destination becomes a query on the callee's
// return variable.
func (r *run) callExitContent(n *ir.Node, q *Query) (ir.VarID, pred.Pred) {
	if n.Dst != ir.NoVar && q.Var == n.Dst {
		return r.p.Procs[n.Callee].RetVar, q.P
	}
	return q.Var, q.P
}

// mustTraverse reports whether the query (with content variable v) must be
// propagated through the callee at a call-site exit, or may skip straight
// to the call node.
func (r *run) mustTraverse(callee int, v ir.VarID) bool {
	vv := r.p.Vars[v]
	if vv.Proc == callee {
		// The callee's return variable (or, defensively, any callee
		// variable) must be chased inside the callee.
		return true
	}
	if !vv.IsGlobal() {
		// Caller locals cannot be modified by the callee (no reference
		// parameters in MiniC).
		return false
	}
	if r.a.mod != nil && !r.a.mod[callee][v] {
		return false
	}
	return true
}

// processCallExit handles call-site exit nodes (Figure 4 lines 14–26).
func (r *run) processCallExit(pk PairKey, n *ir.Node, q *Query) {
	cv, cp := r.callExitContent(n, q)
	call := r.p.CallPred(n)
	exit := r.p.ExitPred(n)
	if call == nil || exit == nil {
		// Graph not in normal form — resolve conservatively.
		r.resolve(pk, AnsUndef)
		return
	}
	if !r.mustTraverse(n.Callee, cv) {
		r.raise(call.ID, r.internQuery(cv, cp, q.Owner))
		return
	}
	if !r.a.Opts.Interprocedural {
		// Baseline: the callee may modify the variable; without crossing
		// the boundary the value is unknown.
		r.resolve(pk, AnsUndef)
		return
	}
	s := r.getSNE(exit.ID, cv, cp)
	en := r.p.EntrySucc(call)
	w := waiter{node: n.ID, q: q, call: call.ID, entry: en.ID}
	s.Waiters = append(s.Waiters, w)
	for _, qo := range s.Entries[en.ID] {
		r.raiseContinuation(w, qo)
	}
}

// getSNE returns the summary node entry for (exit, content), creating it
// and raising its summary query at the exit when new.
func (r *run) getSNE(exit ir.NodeID, v ir.VarID, p pred.Pred) *SNE {
	key := queryKey{v: v, op: p.Op, c: p.C, owner: int(exit)}
	if s, ok := r.sneByKey[key]; ok {
		return s
	}
	s := &SNE{ID: len(r.res.snes), Exit: exit, Entries: make(map[ir.NodeID][]*Query)}
	r.res.snes = append(r.res.snes, s)
	r.sneByKey[key] = s
	s.Qsn = r.internQuery(v, p, s)
	r.raise(exit, s.Qsn)
	return s
}

// raiseContinuation continues a waiting query at the call node after the
// summary query qo reached the waiter's entry: the procedure is transparent
// along that path, so propagation resumes in the caller.
func (r *run) raiseContinuation(w waiter, qo *Query) {
	call := r.p.Node(w.call)
	r.raise(w.call, r.substEntry(qo, call, w.q.Owner))
}

type transferResult struct {
	resolved bool
	ans      AnswerSet
	next     *Query
}

func outcomeToAnswer(o pred.Outcome) AnswerSet {
	switch o {
	case pred.True:
		return AnsTrue
	case pred.False:
		return AnsFalse
	}
	return 0
}

// transfer models the effect of one ordinary node on a backward-propagating
// query: it either resolves the query or substitutes it for continued
// propagation.
func (r *run) transfer(n *ir.Node, q *Query) transferResult {
	cont := transferResult{next: q}
	switch n.Kind {
	case ir.NAssign:
		if n.Dst != q.Var {
			return cont
		}
		switch n.RHS.Kind {
		case ir.RConst:
			if q.P.Eval(n.RHS.Const) {
				return transferResult{resolved: true, ans: AnsTrue}
			}
			return transferResult{resolved: true, ans: AnsFalse}
		case ir.RCopy:
			return transferResult{next: r.internQuery(n.RHS.Src, q.P, q.Owner)}
		case ir.RByte:
			// The unsigned-conversion correlation source: byte() yields a
			// value in [0,255].
			if o := pred.Decide(pred.Range(0, 255), q.P); o != pred.Unknown {
				return transferResult{resolved: true, ans: outcomeToAnswer(o)}
			}
			return transferResult{resolved: true, ans: AnsUndef}
		case ir.RAlloc:
			// alloc never returns nil in MiniC: the result is >= 1.
			if o := pred.Decide(pred.RangeBounds(pred.Fin(1), pred.PosInf()), q.P); o != pred.Unknown {
				return transferResult{resolved: true, ans: outcomeToAnswer(o)}
			}
			return transferResult{resolved: true, ans: AnsUndef}
		case ir.RNeg:
			if r.a.Opts.ArithSubst && q.P.C != math.MinInt64 {
				// v = -w: (v op c) == (w mirror(op) -c).
				return transferResult{next: r.internQuery(n.RHS.Src,
					pred.Pred{Op: mirrorOp(q.P.Op), C: -q.P.C}, q.Owner)}
			}
			return transferResult{resolved: true, ans: AnsUndef}
		case ir.RBinop:
			if next, ok := r.arithSubst(n.RHS, q); ok {
				return transferResult{next: next}
			}
			return transferResult{resolved: true, ans: AnsUndef}
		default: // RLoad, RInput
			return transferResult{resolved: true, ans: AnsUndef}
		}

	case ir.NAssert:
		if n.AVar != q.Var {
			return cont
		}
		if o := pred.Decide(n.APred.Sat(), q.P); o != pred.Unknown {
			return transferResult{resolved: true, ans: outcomeToAnswer(o)}
		}
		return cont

	case ir.NCallExit, ir.NEntry:
		panic("analysis: transfer on boundary node")

	default:
		// NBranch, NStore, NPrint, NNop, NExit, NCall: transparent for the
		// query variable (stores change the heap, not variables).
		return cont
	}
}

// arithSubst substitutes a query through v := w ± k when the ArithSubst
// extension is enabled.
func (r *run) arithSubst(rhs ir.RHS, q *Query) (*Query, bool) {
	if !r.a.Opts.ArithSubst {
		return nil, false
	}
	a, b := rhs.A, rhs.B
	switch rhs.Op {
	case ir.OpAdd:
		// v = w + k or v = k + w: shift by k.
		if !a.IsConst && b.IsConst {
			if p, ok := pred.ShiftSat(q.P, b.Const); ok {
				return r.internQuery(a.Var, p, q.Owner), true
			}
		}
		if a.IsConst && !b.IsConst {
			if p, ok := pred.ShiftSat(q.P, a.Const); ok {
				return r.internQuery(b.Var, p, q.Owner), true
			}
		}
	case ir.OpSub:
		// v = w - k: shift by -k.
		if !a.IsConst && b.IsConst && b.Const != math.MinInt64 {
			if p, ok := pred.ShiftSat(q.P, -b.Const); ok {
				return r.internQuery(a.Var, p, q.Owner), true
			}
		}
		// v = k - w: (v op c) == (-w op c-k) == (w mirror(op) k-c).
		if a.IsConst && !b.IsConst {
			kc := a.Const - q.P.C
			underflow := (q.P.C > 0 && kc > a.Const) || (q.P.C < 0 && kc < a.Const)
			if !underflow {
				return r.internQuery(b.Var, pred.Pred{Op: mirrorOp(q.P.Op), C: kc}, q.Owner), true
			}
		}
	}
	return nil, false
}

func mirrorOp(op pred.Op) pred.Op {
	switch op {
	case pred.Lt:
		return pred.Gt
	case pred.Le:
		return pred.Ge
	case pred.Gt:
		return pred.Lt
	case pred.Ge:
		return pred.Le
	}
	return op
}
