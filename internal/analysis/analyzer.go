package analysis

import (
	"math"
	"sync"
	"unsafe"

	"icbe/internal/ir"
	"icbe/internal/pred"
)

// Options configures the correlation analysis.
type Options struct {
	// Interprocedural enables query propagation across procedure
	// boundaries (the ICBE analysis). When false the analysis is the
	// intraprocedural baseline: queries resolve UNDEF at procedure entries
	// and at call-site exits whose callee may modify the query variable
	// (per MOD summary information), matching the paper's baseline.
	Interprocedural bool
	// TerminationLimit bounds the number of node–query pairs processed for
	// one conditional; pending queries resolve UNDEF when it is reached.
	// Zero means unlimited. The paper's Figure 11 experiments use 1000.
	TerminationLimit int
	// ArithSubst extends symbolic back-substitution beyond copy
	// assignments to v := -w and v := w ± k (an ablation of the paper's
	// remark that richer symbolic manipulation is possible).
	ArithSubst bool
	// ModSummaries consults MOD summary information at call sites so
	// queries on globals the callee cannot modify skip the callee.
	ModSummaries bool
	// CacheAnswers caches the rolled-back answer sets of all top-level
	// (node, query) pairs across AnalyzeBranch calls, reproducing the
	// paper's query-caching variant (§3.3: O(CNV) analysis time at the
	// price of memory, which the authors found counterproductive). Cached
	// results are valid only while the program is unmodified, and results
	// computed with caching lack the supplier structure restructuring
	// needs — use it for analysis-only measurements.
	CacheAnswers bool
	// MemoSummaries memoizes summary node entries (the TRANS closures
	// computed at procedure exits) across AnalyzeBranch calls on the same
	// unmodified program: a later conditional whose queries cross the same
	// procedure exit with the same content replays the recorded closure
	// instead of re-propagating it. Replay is exact — answers, supplier
	// structure and pair counts match a fresh computation — so results are
	// interchangeable with unmemoized ones (see memo.go for the contract).
	// Only interprocedural analysis has summaries to memoize.
	MemoSummaries bool
}

// DefaultOptions returns the configuration used for the paper's main
// experiments: interprocedural, MOD summaries on, copy-only substitution.
func DefaultOptions() Options {
	return Options{Interprocedural: true, ModSummaries: true, MemoSummaries: true}
}

// Analyzer analyzes conditionals of one program. It precomputes MOD
// summaries and an ICFG link index; each conditional is analyzed on demand.
//
// An Analyzer is safe for concurrent AnalyzeBranch calls as long as the
// program is not mutated: per-conditional state lives in the per-call run
// (drawn from a sync.Pool and returned via Result.Release), the MOD
// summaries and ICFG index are computed once and read-only afterwards, and
// the cross-conditional answer cache and summary memo are lock-guarded.
type Analyzer struct {
	Prog *ir.Program
	Opts Options
	idx  *ir.Index
	mod  []map[ir.VarID]bool
	memo *SummaryMemo
	// cache holds rolled-back answers of top-level pairs from previous
	// AnalyzeBranch calls (when Opts.CacheAnswers), guarded by mu.
	mu    sync.Mutex
	cache map[cacheKey]AnswerSet
}

type cacheKey struct {
	node ir.NodeID
	v    ir.VarID
	op   pred.Op
	c    int64
}

// New creates an analyzer for the program. With Opts.MemoSummaries it owns
// a private summary memo that commits records as soon as each AnalyzeBranch
// returns (the right policy for a serial caller on an unchanging program);
// drivers that interleave analysis with program mutation should manage the
// commit points themselves via NewWithMemo.
func New(p *ir.Program, opts Options) *Analyzer {
	var memo *SummaryMemo
	if opts.MemoSummaries && opts.Interprocedural {
		memo = newSummaryMemo(true)
	}
	return NewWithMemo(p, opts, memo)
}

// NewWithMemo creates an analyzer that records into and replays from the
// caller-managed summary memo (nil behaves like no memoization). The caller
// is responsible for calling memo.Commit at points where the program is
// known unchanged since the records were made — the optimization driver
// commits once per round, against its dirty set.
func NewWithMemo(p *ir.Program, opts Options, memo *SummaryMemo) *Analyzer {
	a := &Analyzer{Prog: p, Opts: opts, memo: memo, idx: ir.BuildIndex(p)}
	if opts.ModSummaries {
		a.mod = ModSets(p)
	}
	if opts.CacheAnswers {
		a.cache = make(map[cacheKey]AnswerSet)
	}
	return a
}

// CacheBytes reports the memory held by the cross-conditional structures:
// the answer cache (the paper's memory-versus-time tradeoff) plus the
// summary memo. Map entries are accounted at their key/value footprint
// scaled by the runtime's bucket geometry (8 slots per bucket, one tophash
// byte each, average occupancy ~6.5 at the load-factor boundary).
func (a *Analyzer) CacheBytes() int64 {
	a.mu.Lock()
	n := int64(len(a.cache))
	a.mu.Unlock()
	entry := int64(unsafe.Sizeof(cacheKey{})) + int64(unsafe.Sizeof(AnswerSet(0)))
	b := n * mapEntryFootprint(entry)
	if a.memo != nil {
		b += a.memo.Bytes()
	}
	return b
}

// mapEntryFootprint scales a raw key+value size to its amortized in-map
// footprint: 8-slot buckets carry one tophash byte per slot and run at
// about 13/16 occupancy before growing.
func mapEntryFootprint(kv int64) int64 { return (kv + 1) * 16 / 13 }

// Memo returns the analyzer's summary memo (nil when memoization is off).
func (a *Analyzer) Memo() *SummaryMemo { return a.memo }

// cacheGet looks up a cached rolled-back answer set.
func (a *Analyzer) cacheGet(k cacheKey) (AnswerSet, bool) {
	a.mu.Lock()
	ans, ok := a.cache[k]
	a.mu.Unlock()
	return ans, ok
}

// Result holds the analysis of one conditional: the queries raised at every
// node, the single-answer resolutions of the propagation phase, and (after
// rollback) the collected answer sets per node–query pair. The backing
// storage is pooled; call Release when done with a result to recycle it
// (results simply fall to the GC otherwise).
type Result struct {
	// Cond is the analyzed branch node.
	Cond ir.NodeID
	// Root is the query raised at the conditional itself.
	Root *Query
	// PairsProcessed counts node–query pairs taken off the worklist (the
	// paper's analysis-cost metric); PairsRaised counts pairs ever raised.
	PairsProcessed int
	PairsRaised    int
	// Truncated reports that the termination limit was reached and pending
	// queries were conservatively resolved UNDEF.
	Truncated bool
	// Interrupted reports that an interrupt callback (a deadline or a
	// cancelled context threaded in by the driver) stopped propagation
	// early. Interrupted results are still sound — pending queries resolved
	// UNDEF exactly as under the termination limit — but incomplete, and
	// the driver declines to restructure from them.
	Interrupted bool
	// CacheHits counts pairs answered from the cross-conditional cache
	// (only with Options.CacheAnswers). MemoHits counts summary node
	// entries replayed from the summary memo (only with
	// Options.MemoSummaries).
	CacheHits int
	MemoHits  int
	// QueriesReused counts node–query pairs reconstructed from memo
	// records (summary replays and root-record replays) instead of being
	// re-propagated — the incremental engine's reuse counter.
	QueriesReused int

	st *state
}

// Release returns the result's pooled storage. The result and everything
// obtained through its accessors (queries, suppliers, SNEs) must not be
// used afterwards. Releasing is optional but keeps a steady-state driver
// allocation-free; calling it twice is harmless.
func (r *Result) Release() {
	st := r.st
	if st == nil {
		return
	}
	r.st = nil
	r.Root = nil
	st.reset()
	statePool.Put(st)
}

// QueriesAt lists the queries raised at a node, in raise order (the
// paper's Q[n]); nil for unvisited nodes.
func (r *Result) QueriesAt(n ir.NodeID) []*Query {
	if n < 0 || int(n) >= len(r.st.nodeQ) {
		return nil
	}
	return r.st.nodeQ[n]
}

// Visited reports whether the analysis raised any query at the node.
func (r *Result) Visited(n ir.NodeID) bool {
	return n >= 0 && int(n) < len(r.st.nodeQ) && len(r.st.nodeQ[n]) > 0
}

// VisitedNodes lists the visited nodes in first-raise order.
func (r *Result) VisitedNodes() []ir.NodeID { return r.st.visited }

// VisitedBits returns the visited-node bitset (bit n set when node n hosts
// at least one pair). The slice aliases pooled storage: it is valid until
// Release and must not be mutated. The driver intersects it word-wise with
// its dirty bitset instead of scanning node lists.
func (r *Result) VisitedBits() []uint64 { return r.st.visitedBits }

// NumVisited counts the visited nodes.
func (r *Result) NumVisited() int { return len(r.st.visited) }

func (r *Result) pairID(n ir.NodeID, q *Query) int32 {
	if q == nil || n < 0 || int(n) >= len(r.st.nodeQ) {
		return -1
	}
	return r.st.findPair(n, q)
}

// AnswerAt returns the rolled-back answer set of the pair (n, q) — the
// paper's A[n, q] — or 0 when the pair was never raised.
func (r *Result) AnswerAt(n ir.NodeID, q *Query) AnswerSet {
	pid := r.pairID(n, q)
	if pid < 0 {
		return 0
	}
	return r.st.pairAns[pid]
}

// ResolvedAt returns the propagation-phase resolution of the pair (n, q)
// (a single answer), and whether the pair resolved.
func (r *Result) ResolvedAt(n ir.NodeID, q *Query) (AnswerSet, bool) {
	pid := r.pairID(n, q)
	if pid < 0 || !r.st.pairResolved[pid] {
		return 0, false
	}
	return r.st.pairRes[pid], true
}

// SuppliersAt returns the per-predecessor answer sources of an unresolved
// pair; resolved pairs have none (their answers originate at the node).
// Restructuring consumes this.
func (r *Result) SuppliersAt(n ir.NodeID, q *Query) []EdgeSupplier {
	pid := r.pairID(n, q)
	if pid < 0 || r.st.pairSupDeleted[pid] {
		return nil
	}
	off, ln := r.st.pairSupOff[pid], r.st.pairSupLen[pid]
	if ln == 0 {
		return nil
	}
	return r.st.supStore[off : off+ln]
}

// ForEachPair visits every raised pair in raise order with its rolled-back
// answer set.
func (r *Result) ForEachPair(f func(n ir.NodeID, q *Query, ans AnswerSet)) {
	st := r.st
	for pid := range st.pairNode {
		f(st.pairNode[pid], st.queries[st.pairQ[pid]], st.pairAns[pid])
	}
}

// ForEachResolved visits every propagation-resolved pair in raise order
// with its resolution.
func (r *Result) ForEachResolved(f func(n ir.NodeID, q *Query, ans AnswerSet)) {
	st := r.st
	for pid := range st.pairNode {
		if st.pairResolved[pid] {
			f(st.pairNode[pid], st.queries[st.pairQ[pid]], st.pairRes[pid])
		}
	}
}

// RootAnswers returns the answer set at the conditional (union over all
// incoming paths).
func (r *Result) RootAnswers() AnswerSet {
	return r.AnswerAt(r.Cond, r.Root)
}

// HasCorrelation reports whether some incoming path is correlated (the
// branch outcome is known along it).
func (r *Result) HasCorrelation() bool {
	return r.RootAnswers()&(AnsTrue|AnsFalse) != 0
}

// FullCorrelation reports whether the branch outcome is known along every
// incoming path (the conditional can be completely eliminated).
func (r *Result) FullCorrelation() bool {
	root := r.RootAnswers()
	return root != 0 && root&(AnsUndef|AnsTrans) == 0
}

// QueryByID returns the query with the given ID.
func (r *Result) QueryByID(id int) *Query { return r.st.queries[id] }

// SNEs returns the summary node entries created during the analysis.
func (r *Result) SNEs() []*SNE { return r.st.snes }

type run struct {
	a         *Analyzer
	p         *ir.Program
	idx       *ir.Index
	st        *state
	res       *Result
	interrupt func() bool // nil = never; polled during propagation

	// Top-level closure dependencies, collected (only when a memo is
	// present) while owner-less queries propagate: the summaries the top
	// level waited on, the call-site linkage nodes it consulted, and every
	// MOD traverse/skip decision it took. recordRoot packages them into the
	// conditional's root record; see memo.go.
	topDeps      []*SNE
	topLinks     []ir.NodeID
	topModChecks []modCheck
}

// AnalyzeBranch runs the demand-driven analysis for one conditional. It
// returns nil when the branch is not of the analyzable (var relop const)
// form.
func (a *Analyzer) AnalyzeBranch(b ir.NodeID) *Result {
	return a.AnalyzeBranchInterruptible(b, nil)
}

// AnalyzeBranchInterruptible is AnalyzeBranch with a cooperative stop
// condition: interrupt (when non-nil) is polled periodically during query
// propagation, and when it reports true the run stops early exactly like
// the termination limit — pending queries resolve UNDEF, the result is
// marked Truncated and Interrupted — so a per-branch deadline or a
// cancelled context bounds the analysis without losing soundness.
func (a *Analyzer) AnalyzeBranchInterruptible(b ir.NodeID, interrupt func() bool) *Result {
	node := a.Prog.Node(b)
	if node == nil || !node.Analyzable() {
		return nil
	}
	st := acquireState(len(a.Prog.Nodes), len(a.Prog.Vars))
	res := &Result{Cond: b, st: st}
	r := &run{a: a, p: a.Prog, idx: a.idx, st: st, res: res, interrupt: interrupt}
	cp := node.CondPred()
	if a.memo != nil && !a.Opts.CacheAnswers {
		// Incremental path: a surviving root record reconstructs this
		// conditional's whole analysis; on any validation failure the
		// partial state is discarded and the run falls through to the
		// fresh path below (a stale record is never served).
		if rr := a.memo.lookupRoot(rootKey{cond: b, v: node.CondVar, op: cp.Op, c: cp.C}); rr != nil {
			if r.replayRoot(rr) {
				r.rollback()
				if !res.Truncated {
					r.recordSNEs()
				}
				return res
			}
			st.reset()
			*res = Result{Cond: b, st: st}
			r.topDeps, r.topLinks, r.topModChecks = nil, nil, nil
		}
	}
	// Raise the initial query at the conditional itself; the branch node is
	// transparent, so the first processing step propagates it to all
	// predecessors, and the pair (b, root) collects the union of all
	// incoming answers, which restructuring uses to split b.
	res.Root = r.internQuery(node.CondVar, cp, nil)
	r.raise(b, res.Root)
	r.propagate()
	r.rollback()
	if a.memo != nil && !res.Truncated {
		r.recordSNEs()
		if !a.Opts.CacheAnswers {
			r.recordRoot(b, node.CondVar, cp)
		}
	}
	if a.cache != nil && !res.Truncated {
		a.mu.Lock()
		for pid := range st.pairNode {
			q := st.queries[st.pairQ[pid]]
			if q.Owner != nil {
				continue
			}
			if ans := st.pairAns[pid]; ans != 0 {
				a.cache[cacheKey{st.pairNode[pid], q.Var, q.P.Op, q.P.C}] = ans
			}
		}
		a.mu.Unlock()
	}
	return res
}

func (r *run) internQuery(v ir.VarID, p pred.Pred, owner *SNE) *Query {
	return r.st.intern(v, p, owner)
}

// lookupQuery returns the interned query, or nil if it was never created
// during propagation (used by rollback, which must not invent new queries).
func (r *run) lookupQuery(v ir.VarID, p pred.Pred, owner *SNE) *Query {
	return r.st.lookupIntern(v, p, owner)
}

func (r *run) raise(n ir.NodeID, q *Query) {
	st := r.st
	if st.findPair(n, q) >= 0 {
		return
	}
	pid := st.addPair(n, q)
	r.res.PairsRaised++
	if q.Owner == nil && r.a.cache != nil {
		if ans, ok := r.a.cacheGet(cacheKey{n, q.Var, q.P.Op, q.P.C}); ok {
			// Cached rolled-back answers from a previous conditional's
			// analysis substitute for re-propagation.
			st.resolvePair(pid, ans)
			r.res.CacheHits++
			return
		}
	}
	st.worklist = append(st.worklist, pid)
}

// hardLimit bounds propagation when arithmetic back-substitution is
// enabled without an explicit termination limit: shifting constants around
// loop back edges can generate unboundedly many distinct queries, the very
// divergence the paper's cutoff rule exists for ("since query propagation
// may not terminate under a general symbolic analysis, we stop query
// propagation with the UNDEF answer when a sufficient number of nodes has
// been processed").
const hardLimit = 200_000

// propagate is the paper's Figure 4 worklist loop.
func (r *run) propagate() {
	st := r.st
	limit := r.a.Opts.TerminationLimit
	if limit == 0 && r.a.Opts.ArithSubst {
		limit = hardLimit
	}
	for st.wlHead < len(st.worklist) {
		// Poll the interrupt every 64 pairs: often enough that a deadline
		// cuts a diverging propagation within microseconds, rarely enough
		// that the time.Now() inside typical interrupt closures stays off
		// the hot path.
		if r.interrupt != nil && r.res.PairsProcessed&63 == 0 && r.interrupt() {
			r.res.Interrupted = true
			r.stopEarly()
			return
		}
		if limit > 0 && r.res.PairsProcessed >= limit {
			r.stopEarly()
			return
		}
		pid := st.worklist[st.wlHead]
		st.wlHead++
		r.res.PairsProcessed++
		r.process(pid)
	}
}

// stopEarly abandons propagation soundly: every pending pair is
// conservatively resolved UNDEF and the result marked Truncated (the
// paper's cutoff rule, shared by the termination limit and interrupts).
func (r *run) stopEarly() {
	st := r.st
	r.res.Truncated = true
	for _, pid := range st.worklist[st.wlHead:] {
		if !st.pairResolved[pid] {
			st.resolvePair(pid, AnsUndef)
		}
	}
	st.wlHead = len(st.worklist)
}

func (r *run) process(pid int32) {
	st := r.st
	n := r.p.Node(st.pairNode[pid])
	q := st.queries[st.pairQ[pid]]
	switch n.Kind {
	case ir.NEntry:
		r.processEntry(pid, n, q)
	case ir.NCallExit:
		r.processCallExit(pid, n, q)
	default:
		out := r.transfer(n, q)
		if out.resolved {
			st.resolvePair(pid, out.ans)
			return
		}
		for _, m := range n.Preds {
			r.raise(m, out.next)
		}
		if len(n.Preds) == 0 {
			// A node with no predecessors that is not an entry should not
			// exist in a valid graph, but resolve conservatively.
			st.resolvePair(pid, AnsUndef)
		}
	}
}

// processEntry handles procedure entry nodes (Figure 4 lines 6–13).
func (r *run) processEntry(pid int32, n *ir.Node, q *Query) {
	st := r.st
	if q.Owner != nil {
		// Summary node query reaching the entry: the procedure is
		// transparent along this path.
		if !r.substitutableAtEntry(n, q) {
			st.resolvePair(pid, AnsUndef)
			return
		}
		st.resolvePair(pid, AnsTrans)
		s := q.Owner
		s.addEntry(n.ID, q)
		for _, w := range s.Waiters {
			if w.entry == n.ID {
				r.raiseContinuation(w, q)
			}
		}
		return
	}
	if !r.a.Opts.Interprocedural {
		st.resolvePair(pid, AnsUndef)
		return
	}
	if !r.substitutableAtEntry(n, q) {
		// A query on a non-formal local at procedure start asks about an
		// uninitialized value.
		st.resolvePair(pid, AnsUndef)
		return
	}
	if len(n.Preds) == 0 {
		// main's entry, or an uncalled procedure.
		st.resolvePair(pid, AnsUndef)
		return
	}
	for _, m := range n.Preds {
		call := r.p.Node(m)
		r.raise(m, r.substEntry(q, call, q.Owner))
	}
}

// substitutableAtEntry reports whether the query variable has a meaning in
// the callers: a formal of the entered procedure or a global.
func (r *run) substitutableAtEntry(n *ir.Node, q *Query) bool {
	v := r.p.Vars[q.Var]
	if v.IsGlobal() {
		return true
	}
	for _, f := range r.p.Procs[n.Proc].Formals {
		if f == q.Var {
			return true
		}
	}
	return false
}

// substEntry rewrites a query crossing from a procedure entry to a call
// site: formals become the call's argument variables; globals pass through.
func (r *run) substEntry(q *Query, call *ir.Node, owner *SNE) *Query {
	v := r.p.Vars[q.Var]
	if v.IsGlobal() {
		if owner == q.Owner {
			return q
		}
		return r.internQuery(q.Var, q.P, owner)
	}
	for i, f := range r.p.Procs[call.Callee].Formals {
		if f == q.Var {
			return r.internQuery(call.Args[i], q.P, owner)
		}
	}
	panic("analysis: substEntry on non-formal non-global")
}

// callExitContent rewrites the query through the call-site exit's return
// value copy: a query on the destination becomes a query on the callee's
// return variable. viaRet reports whether the rewrite fired — the only way
// a non-global query content can legitimately refer to the callee's frame.
func (r *run) callExitContent(n *ir.Node, q *Query) (ir.VarID, pred.Pred, bool) {
	if n.Dst != ir.NoVar && q.Var == n.Dst {
		return r.p.Procs[n.Callee].RetVar, q.P, true
	}
	return q.Var, q.P, false
}

// mustTraverse reports whether the query (with content variable v) must be
// propagated through the callee at a call-site exit, or may skip straight
// to the call node. viaRet marks content produced by callExitContent's
// destination-to-return-variable rewrite at this exit.
//
// Only two contents cross into the callee: the return variable reached via
// that rewrite, and globals the callee may modify. Every other content is a
// caller-frame local the callee cannot touch (MiniC has no reference
// parameters), and that holds even when the callee is the caller's own
// procedure: a recursive callee runs in a separate frame, so its facts about
// a shared VarID say nothing about the caller's instance. Deciding traversal
// by vv.Proc == callee here would conflate those frames and misapply the
// callee's base-case facts to the caller's live locals.
func (r *run) mustTraverse(callee int, v ir.VarID, viaRet bool) bool {
	if viaRet {
		return true
	}
	if !r.p.Vars[v].IsGlobal() {
		return false
	}
	if r.a.mod != nil && !r.a.mod[callee][v] {
		return false
	}
	return true
}

// processCallExit handles call-site exit nodes (Figure 4 lines 14–26).
func (r *run) processCallExit(pid int32, n *ir.Node, q *Query) {
	st := r.st
	cv, cp, viaRet := r.callExitContent(n, q)
	call := r.idx.CallPred(n.ID)
	exit := r.idx.ExitPred(n.ID)
	if call == ir.NoNode || exit == ir.NoNode {
		// Graph not in normal form — resolve conservatively.
		st.resolvePair(pid, AnsUndef)
		return
	}
	must := r.mustTraverse(n.Callee, cv, viaRet)
	if q.Owner == nil && r.a.memo != nil {
		// Root records must revalidate every top-level MOD consultation:
		// MOD sets can shrink when restructuring deletes nodes, flipping a
		// traverse into a skip without dirtying any node the top-level
		// closure touched.
		r.topModChecks = append(r.topModChecks, modCheck{callee: int32(n.Callee), v: cv, viaRet: viaRet, must: must})
	}
	if !must {
		r.raise(call, r.internQuery(cv, cp, q.Owner))
		return
	}
	if !r.a.Opts.Interprocedural {
		// Baseline: the callee may modify the variable; without crossing
		// the boundary the value is unknown.
		st.resolvePair(pid, AnsUndef)
		return
	}
	s := r.getSNE(exit, cv, cp)
	en := r.idx.EntrySucc(call)
	if owner := q.Owner; owner != nil {
		// A nested summary: the owner's closure depends on s, and its
		// replay validity on the call-site linkage consulted here.
		owner.addDep(s)
		owner.linkNodes = append(owner.linkNodes, call, exit, en)
	} else if r.a.memo != nil {
		// Top-level dependency: mirrored into the run for recordRoot.
		found := false
		for _, d := range r.topDeps {
			if d == s {
				found = true
				break
			}
		}
		if !found {
			r.topDeps = append(r.topDeps, s)
		}
		r.topLinks = append(r.topLinks, call, exit, en)
	}
	w := waiter{node: n.ID, q: q, call: call, entry: en}
	s.Waiters = append(s.Waiters, w)
	for _, qo := range s.EntriesAt(en) {
		r.raiseContinuation(w, qo)
	}
}

// getSNE returns the summary node entry for (exit, content): an existing
// one, a memo replay, or a fresh one with its summary query raised at the
// exit.
func (r *run) getSNE(exit ir.NodeID, v ir.VarID, p pred.Pred) *SNE {
	if s := r.st.findSNE(exit, v, p); s != nil {
		return s
	}
	if r.a.memo != nil {
		if rec := r.a.memo.lookup(memoKey{exit: exit, v: v, op: p.Op, c: p.C}); rec != nil {
			return r.replaySNE(rec)
		}
	}
	s := r.st.newSNE(exit)
	s.Qsn = r.internQuery(v, p, s)
	r.raise(exit, s.Qsn)
	return s
}

// raiseContinuation continues a waiting query at the call node after the
// summary query qo reached the waiter's entry: the procedure is transparent
// along that path, so propagation resumes in the caller.
func (r *run) raiseContinuation(w waiter, qo *Query) {
	call := r.p.Node(w.call)
	r.raise(w.call, r.substEntry(qo, call, w.q.Owner))
}

type transferResult struct {
	resolved bool
	ans      AnswerSet
	next     *Query
}

func outcomeToAnswer(o pred.Outcome) AnswerSet {
	switch o {
	case pred.True:
		return AnsTrue
	case pred.False:
		return AnsFalse
	}
	return 0
}

// transfer models the effect of one ordinary node on a backward-propagating
// query: it either resolves the query or substitutes it for continued
// propagation.
func (r *run) transfer(n *ir.Node, q *Query) transferResult {
	cont := transferResult{next: q}
	switch n.Kind {
	case ir.NAssign:
		if n.Dst != q.Var {
			return cont
		}
		switch n.RHS.Kind {
		case ir.RConst:
			if q.P.Eval(n.RHS.Const) {
				return transferResult{resolved: true, ans: AnsTrue}
			}
			return transferResult{resolved: true, ans: AnsFalse}
		case ir.RCopy:
			return transferResult{next: r.internQuery(n.RHS.Src, q.P, q.Owner)}
		case ir.RByte:
			// The unsigned-conversion correlation source: byte() yields a
			// value in [0,255].
			if o := pred.Decide(pred.Range(0, 255), q.P); o != pred.Unknown {
				return transferResult{resolved: true, ans: outcomeToAnswer(o)}
			}
			return transferResult{resolved: true, ans: AnsUndef}
		case ir.RAlloc:
			// alloc never returns nil in MiniC: the result is >= 1.
			if o := pred.Decide(pred.RangeBounds(pred.Fin(1), pred.PosInf()), q.P); o != pred.Unknown {
				return transferResult{resolved: true, ans: outcomeToAnswer(o)}
			}
			return transferResult{resolved: true, ans: AnsUndef}
		case ir.RNeg:
			if r.a.Opts.ArithSubst && q.P.C != math.MinInt64 {
				// v = -w: (v op c) == (w mirror(op) -c).
				return transferResult{next: r.internQuery(n.RHS.Src,
					pred.Pred{Op: mirrorOp(q.P.Op), C: -q.P.C}, q.Owner)}
			}
			return transferResult{resolved: true, ans: AnsUndef}
		case ir.RBinop:
			if next, ok := r.arithSubst(n.RHS, q); ok {
				return transferResult{next: next}
			}
			return transferResult{resolved: true, ans: AnsUndef}
		default: // RLoad, RInput
			return transferResult{resolved: true, ans: AnsUndef}
		}

	case ir.NAssert:
		if n.AVar != q.Var {
			return cont
		}
		if o := pred.DecidePred(n.APred, q.P); o != pred.Unknown {
			return transferResult{resolved: true, ans: outcomeToAnswer(o)}
		}
		return cont

	case ir.NCallExit, ir.NEntry:
		panic("analysis: transfer on boundary node")

	default:
		// NBranch, NStore, NPrint, NNop, NExit, NCall: transparent for the
		// query variable (stores change the heap, not variables).
		return cont
	}
}

// arithSubst substitutes a query through v := w ± k when the ArithSubst
// extension is enabled.
func (r *run) arithSubst(rhs ir.RHS, q *Query) (*Query, bool) {
	if !r.a.Opts.ArithSubst {
		return nil, false
	}
	a, b := rhs.A, rhs.B
	switch rhs.Op {
	case ir.OpAdd:
		// v = w + k or v = k + w: shift by k.
		if !a.IsConst && b.IsConst {
			if p, ok := pred.ShiftSat(q.P, b.Const); ok {
				return r.internQuery(a.Var, p, q.Owner), true
			}
		}
		if a.IsConst && !b.IsConst {
			if p, ok := pred.ShiftSat(q.P, a.Const); ok {
				return r.internQuery(b.Var, p, q.Owner), true
			}
		}
	case ir.OpSub:
		// v = w - k: shift by -k.
		if !a.IsConst && b.IsConst && b.Const != math.MinInt64 {
			if p, ok := pred.ShiftSat(q.P, -b.Const); ok {
				return r.internQuery(a.Var, p, q.Owner), true
			}
		}
		// v = k - w: (v op c) == (-w op c-k) == (w mirror(op) k-c).
		if a.IsConst && !b.IsConst {
			kc := a.Const - q.P.C
			underflow := (q.P.C > 0 && kc > a.Const) || (q.P.C < 0 && kc < a.Const)
			if !underflow {
				return r.internQuery(b.Var, pred.Pred{Op: mirrorOp(q.P.Op), C: kc}, q.Owner), true
			}
		}
	}
	return nil, false
}

func mirrorOp(op pred.Op) pred.Op {
	switch op {
	case pred.Lt:
		return pred.Gt
	case pred.Le:
		return pred.Ge
	case pred.Gt:
		return pred.Lt
	case pred.Ge:
		return pred.Le
	}
	return op
}
