package analysis

import (
	"strings"
	"sync"
	"testing"

	"icbe/internal/interp"
	"icbe/internal/ir"
	"icbe/internal/pred"
)

func build(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := ir.Build(src)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := ir.Validate(p); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return p
}

// findBranch locates the unique analyzable branch whose condition variable
// name has the given suffix and whose predicate matches.
func findBranch(t *testing.T, p *ir.Program, varSuffix string, op pred.Op, c int64) *ir.Node {
	t.Helper()
	var found *ir.Node
	p.LiveNodes(func(n *ir.Node) {
		if n.Kind != ir.NBranch || !n.Analyzable() {
			return
		}
		if strings.HasSuffix(p.VarName(n.CondVar), varSuffix) && n.CondOp == op && n.CondRHS.Const == c {
			if found != nil {
				t.Fatalf("multiple branches match %s %s %d", varSuffix, op, c)
			}
			found = n
		}
	})
	if found == nil {
		t.Fatalf("no branch matches %s %s %d\n%s", varSuffix, op, c, p.Dump())
	}
	return found
}

func analyze(t *testing.T, p *ir.Program, b *ir.Node, opts Options) *Result {
	t.Helper()
	res := New(p, opts).AnalyzeBranch(b.ID)
	if res == nil {
		t.Fatalf("AnalyzeBranch returned nil for analyzable branch")
	}
	return res
}

func inter() Options { return DefaultOptions() }
func intra() Options { return Options{Interprocedural: false, ModSummaries: true} }

func TestConstantAssignmentFullTrue(t *testing.T) {
	p := build(t, `
		func main() {
			var x = 0;
			if (x == 0) { print(1); } else { print(2); }
		}
	`)
	res := analyze(t, p, findBranch(t, p, "x", pred.Eq, 0), inter())
	if got := res.RootAnswers(); got != AnsTrue {
		t.Errorf("root answers = %v, want {T}", got)
	}
	if !res.FullCorrelation() || !res.HasCorrelation() {
		t.Error("expected full correlation")
	}
}

func TestPartialCorrelation(t *testing.T) {
	p := build(t, `
		func main() {
			var x = 0;
			if (input() > 0) { x = input(); }
			if (x == 0) { print(1); }
		}
	`)
	res := analyze(t, p, findBranch(t, p, "x", pred.Eq, 0), inter())
	if got := res.RootAnswers(); got != AnsTrue|AnsUndef {
		t.Errorf("root answers = %v, want {T,U}", got)
	}
	if res.FullCorrelation() {
		t.Error("partial correlation reported as full")
	}
	if !res.HasCorrelation() {
		t.Error("correlation not detected")
	}
}

func TestBranchAssertCorrelation(t *testing.T) {
	p := build(t, `
		func main() {
			var x = input();
			if (x == 0) { print(1); }
			if (x == 0) { print(2); }
		}
	`)
	// The second test is fully correlated with the first.
	branches := []*ir.Node{}
	p.LiveNodes(func(n *ir.Node) {
		if n.Kind == ir.NBranch {
			branches = append(branches, n)
		}
	})
	if len(branches) != 2 {
		t.Fatalf("branches = %d", len(branches))
	}
	second := branches[0]
	if branches[1].ID > second.ID {
		second = branches[1]
	}
	res := analyze(t, p, second, inter())
	if got := res.RootAnswers(); got != AnsTrue|AnsFalse {
		t.Errorf("root answers = %v, want {T,F}", got)
	}
	if !res.FullCorrelation() {
		t.Error("expected full correlation from branch assertions")
	}
}

func TestImpliedCorrelationBetweenDifferentPredicates(t *testing.T) {
	p := build(t, `
		func main() {
			var x = input();
			if (x > 10) { print(1); } else { return; }
			if (x > 5) { print(2); }
		}
	`)
	res := analyze(t, p, findBranch(t, p, "x", pred.Gt, 5), inter())
	// Reaching the second test requires x > 10, which implies x > 5.
	if got := res.RootAnswers(); got != AnsTrue {
		t.Errorf("root answers = %v, want {T}", got)
	}
}

func TestLoopSelfCorrelation(t *testing.T) {
	// The loop test correlates with itself around the back edge because x
	// is not redefined in the body (the paper's self-correlation remark).
	p := build(t, `
		func main() {
			var x = input();
			var i = 0;
			while (x != 0) {
				i = i + 1;
				if (i > 100) { break; }
			}
			print(i);
		}
	`)
	res := analyze(t, p, findBranch(t, p, "x", pred.Ne, 0), inter())
	// Along the back edge the outcome is TRUE (loop entered means x != 0);
	// from function entry it is UNDEF.
	if got := res.RootAnswers(); got != AnsTrue|AnsUndef {
		t.Errorf("root answers = %v, want {T,U}", got)
	}
}

func TestCopySubstitution(t *testing.T) {
	p := build(t, `
		func main() {
			var x = 5;
			var y = x;
			var z = y;
			if (z == 5) { print(1); }
		}
	`)
	res := analyze(t, p, findBranch(t, p, "z", pred.Eq, 5), inter())
	if got := res.RootAnswers(); got != AnsTrue {
		t.Errorf("root answers = %v, want {T}", got)
	}
}

func TestByteConversionCorrelation(t *testing.T) {
	p := build(t, `
		func main() {
			var c = byte(input());
			if (c == -1) { print(1); } else { print(2); }
		}
	`)
	res := analyze(t, p, findBranch(t, p, "c", pred.Eq, -1), inter())
	if got := res.RootAnswers(); got != AnsFalse {
		t.Errorf("root answers = %v, want {F}", got)
	}
}

func TestDerefCorrelation(t *testing.T) {
	p := build(t, `
		func main() {
			var p = input();
			var v = p[0];
			if (p == 0) { print(1); } else { print(v); }
		}
	`)
	res := analyze(t, p, findBranch(t, p, "p", pred.Eq, 0), inter())
	if got := res.RootAnswers(); got != AnsFalse {
		t.Errorf("root answers = %v, want {F} (pointer was dereferenced)", got)
	}
}

func TestAllocNonNil(t *testing.T) {
	p := build(t, `
		func main() {
			var p = alloc(2);
			if (p != 0) { print(1); }
		}
	`)
	res := analyze(t, p, findBranch(t, p, "p", pred.Ne, 0), inter())
	if got := res.RootAnswers(); got != AnsTrue {
		t.Errorf("root answers = %v, want {T}", got)
	}
}

func TestInterproceduralReturnValue(t *testing.T) {
	// The paper's flagship pattern: the callee returns a tested sentinel.
	p := build(t, `
		func get() {
			if (input() > 0) { return 0; }
			return input();
		}
		func main() {
			var r = get();
			if (r == 0) { print(1); } else { print(2); }
		}
	`)
	b := findBranch(t, p, "r", pred.Eq, 0)
	res := analyze(t, p, b, inter())
	if got := res.RootAnswers(); got != AnsTrue|AnsUndef {
		t.Errorf("inter root answers = %v, want {T,U}", got)
	}
	// The baseline cannot see into the callee.
	resIntra := analyze(t, p, b, intra())
	if got := resIntra.RootAnswers(); got != AnsUndef {
		t.Errorf("intra root answers = %v, want {U}", got)
	}
}

func TestFigure5GlobalThroughSummary(t *testing.T) {
	// Mirrors the paper's Figure 5: a global x, set before the call along
	// two paths (unknown at A, constant at B); the callee modifies x on
	// one path and is transparent on the other.
	p := build(t, `
		var x;
		func f() {
			if (input() > 0) { x = input(); }
			return 0;
		}
		func main() {
			if (input() > 0) { x = input(); } else { x = 5; }
			f();
			if (x == 0) { print(1); } else { print(2); }
		}
	`)
	res := analyze(t, p, findBranch(t, p, "x", pred.Eq, 0), inter())
	// Paths: x=input (U), x=5 (F) — both possibly overwritten in f (U) or
	// transparent. Union: {F, U}.
	if got := res.RootAnswers(); got != AnsFalse|AnsUndef {
		t.Errorf("root answers = %v, want {F,U}", got)
	}
	// A summary node entry must exist, with TRANS recorded at f's entry.
	if len(res.SNEs()) == 0 {
		t.Fatal("no summary node entries created")
	}
	s := res.SNEs()[0]
	f := p.ProcByName("f")
	exitAns := res.AnswerAt(s.Exit, s.Qsn)
	if exitAns != AnsUndef|AnsTrans {
		t.Errorf("summary answers at exit = %v, want {U,Tr}", exitAns)
	}
	if len(s.EntriesAt(f.Entries[0])) == 0 {
		t.Error("no entry queries recorded for the transparent path")
	}
}

func TestModSummarySkipsCallee(t *testing.T) {
	p := build(t, `
		var g;
		func noop(a) { return a + 1; }
		func main() {
			g = 7;
			var r = noop(1);
			if (g == 7) { print(r); }
		}
	`)
	b := findBranch(t, p, "g", pred.Eq, 7)
	res := analyze(t, p, b, inter())
	if got := res.RootAnswers(); got != AnsTrue {
		t.Errorf("root answers = %v, want {T}", got)
	}
	if len(res.SNEs()) != 0 {
		t.Errorf("MOD summaries should have skipped the callee, got %d SNEs", len(res.SNEs()))
	}
	// Without MOD summaries the callee is traversed but the answer is the
	// same.
	res2 := analyze(t, p, b, Options{Interprocedural: true})
	if got := res2.RootAnswers(); got != AnsTrue {
		t.Errorf("no-MOD root answers = %v, want {T}", got)
	}
	if len(res2.SNEs()) == 0 {
		t.Error("expected summary traversal without MOD info")
	}
	if res2.PairsProcessed <= res.PairsProcessed {
		t.Errorf("MOD summaries should reduce work: %d vs %d", res.PairsProcessed, res2.PairsProcessed)
	}
	// The intraprocedural baseline also benefits from MOD information.
	res3 := analyze(t, p, b, intra())
	if got := res3.RootAnswers(); got != AnsTrue {
		t.Errorf("intra+MOD root answers = %v, want {T}", got)
	}
	// Intra without MOD must give up at the call.
	res4 := analyze(t, p, b, Options{})
	if got := res4.RootAnswers(); got != AnsUndef {
		t.Errorf("intra-no-MOD root answers = %v, want {U}", got)
	}
}

func TestGlobalModifiedByCalleeTraversed(t *testing.T) {
	p := build(t, `
		var g;
		func set(v) { g = v; return 0; }
		func main() {
			g = 1;
			set(3);
			if (g == 3) { print(1); }
		}
	`)
	res := analyze(t, p, findBranch(t, p, "g", pred.Eq, 3), inter())
	// set assigns g from its formal v, which substitutes to the constant
	// argument 3 at the call site: fully correlated TRUE.
	if got := res.RootAnswers(); got != AnsTrue {
		t.Errorf("root answers = %v, want {T}", got)
	}
}

func TestParameterCorrelationPerCallSite(t *testing.T) {
	p := build(t, `
		func check(flag) {
			if (flag == 0) { return 1; }
			return 2;
		}
		func main() {
			print(check(0));
			print(check(1));
		}
	`)
	res := analyze(t, p, findBranch(t, p, "flag", pred.Eq, 0), inter())
	// One call site passes 0 (TRUE), the other 1 (FALSE): full correlation
	// once entry splitting separates the call sites.
	if got := res.RootAnswers(); got != AnsTrue|AnsFalse {
		t.Errorf("root answers = %v, want {T,F}", got)
	}
}

func TestRecursionTerminates(t *testing.T) {
	p := build(t, `
		func fact(n) {
			if (n <= 1) { return 1; }
			return n * fact(n - 1);
		}
		func main() { print(fact(5)); }
	`)
	res := analyze(t, p, findBranch(t, p, "n", pred.Le, 1), inter())
	if res.PairsProcessed == 0 {
		t.Error("no work done")
	}
	// n is unknown through the recursive call site and multiplication.
	if got := res.RootAnswers(); got&AnsUndef == 0 && got&(AnsTrue|AnsFalse) == 0 {
		t.Errorf("unexpected root answers %v", got)
	}
}

func TestTerminationLimit(t *testing.T) {
	p := build(t, `
		func main() {
			var x = 0;
			var i = input();
			while (i > 0) {
				x = x + 0;
				i = i - 1;
			}
			if (x == 0) { print(1); }
		}
	`)
	opts := inter()
	opts.TerminationLimit = 2
	res := analyze(t, p, findBranch(t, p, "x", pred.Eq, 0), opts)
	if !res.Truncated {
		t.Error("expected truncation")
	}
	if res.PairsProcessed > 2 {
		t.Errorf("processed %d pairs, limit 2", res.PairsProcessed)
	}
	if got := res.RootAnswers(); got&AnsUndef == 0 {
		t.Errorf("truncated analysis must include UNDEF, got %v", got)
	}
}

func TestArithSubstitution(t *testing.T) {
	src := `
		func main() {
			var y = 2;
			var x = y + 5;
			if (x == 7) { print(1); }
		}
	`
	p := build(t, src)
	b := findBranch(t, p, "x", pred.Eq, 7)
	// Without the extension, the binop resolves UNDEF.
	res := analyze(t, p, b, inter())
	if got := res.RootAnswers(); got != AnsUndef {
		t.Errorf("base root answers = %v, want {U}", got)
	}
	// With it, the query shifts through the addition.
	opts := inter()
	opts.ArithSubst = true
	res2 := analyze(t, p, b, opts)
	if got := res2.RootAnswers(); got != AnsTrue {
		t.Errorf("arith root answers = %v, want {T}", got)
	}
}

func TestArithSubstitutionSubAndNeg(t *testing.T) {
	p := build(t, `
		func main() {
			var y = 9;
			var a = y - 4;
			var b = -y;
			var c = 10 - y;
			if (a == 5) { print(1); }
			if (b == -9) { print(2); }
			if (c == 1) { print(3); }
		}
	`)
	opts := inter()
	opts.ArithSubst = true
	for _, tc := range []struct {
		v string
		c int64
	}{{"a", 5}, {"b", -9}, {"c", 1}} {
		res := analyze(t, p, findBranch(t, p, tc.v, pred.Eq, tc.c), opts)
		if got := res.RootAnswers(); got != AnsTrue {
			t.Errorf("%s: root answers = %v, want {T}", tc.v, got)
		}
	}
}

func TestUnanalyzableBranchReturnsNil(t *testing.T) {
	p := build(t, `
		func main() {
			var x = input();
			var y = input();
			if (x == y) { print(1); }
		}
	`)
	var br *ir.Node
	p.LiveNodes(func(n *ir.Node) {
		if n.Kind == ir.NBranch {
			br = n
		}
	})
	if res := New(p, inter()).AnalyzeBranch(br.ID); res != nil {
		t.Error("expected nil result for var-var branch")
	}
}

func TestStoreDoesNotKillVariableQueries(t *testing.T) {
	p := build(t, `
		func main() {
			var x = 3;
			var p = alloc(1);
			p[0] = 99;
			if (x == 3) { print(p[0]); }
		}
	`)
	res := analyze(t, p, findBranch(t, p, "x", pred.Eq, 3), inter())
	if got := res.RootAnswers(); got != AnsTrue {
		t.Errorf("root answers = %v, want {T}", got)
	}
}

func TestDuplicationEstimateAndBenefit(t *testing.T) {
	src := `
		func main() {
			var x = 0;
			if (input() > 0) { x = input(); }
			if (x == 0) { print(1); }
		}
	`
	p := build(t, src)
	b := findBranch(t, p, "x", pred.Eq, 0)
	res := analyze(t, p, b, inter())
	if est := res.DuplicationEstimate(p); est <= 0 {
		t.Errorf("duplication estimate = %d, want > 0 (paths must be separated)", est)
	}
	run, err := interp.Run(p, interp.Options{Input: []int64{5, 7}, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if ben := res.EstimatedBenefit(run.ExecCount); ben <= 0 {
		t.Errorf("estimated benefit = %d, want > 0", ben)
	}
	if res.ApproxBytes() <= 0 {
		t.Error("ApproxBytes should be positive")
	}
}

func TestAnswerSetHelpers(t *testing.T) {
	s := AnsTrue | AnsUndef
	if !s.Has(AnsTrue) || s.Has(AnsFalse) || s.Count() != 2 {
		t.Errorf("AnswerSet ops wrong for %v", s)
	}
	if s.String() != "{T,U}" {
		t.Errorf("String = %q", s.String())
	}
	if (AnswerSet(0)).String() != "{}" {
		t.Error("empty set string")
	}
	all := AnsTrue | AnsFalse | AnsUndef | AnsTrans
	if all.String() != "{T,F,U,Tr}" || all.Count() != 4 {
		t.Errorf("all-answer string = %q", all.String())
	}
}

func TestFgetcStyleFullElimination(t *testing.T) {
	// A compact version of the paper's Figure 1: fgetc returns either the
	// EOF sentinel -1 (when the buffer refill fails) or a byte in [0,255];
	// the caller's EOF test is correlated along both return paths.
	p := build(t, `
		var cnt;
		var buf;
		func fillbuf() {
			var n = input();
			if (n <= 0) { return -1; }
			cnt = n;
			return 0;
		}
		func fgetc() {
			if (cnt <= 0) {
				var r = fillbuf();
				if (r == -1) { return -1; }
			}
			cnt = cnt - 1;
			var c = byte(input());
			return c;
		}
		func main() {
			buf = alloc(16);
			var c = fgetc();
			while (c != -1) {
				print(c);
				c = fgetc();
			}
		}
	`)
	b := findBranch(t, p, "c", pred.Ne, -1)
	res := analyze(t, p, b, inter())
	// Both return paths of fgetc are correlated: -1 (FALSE for c != -1)
	// and byte (TRUE). Full correlation — PO can be eliminated entirely.
	if got := res.RootAnswers(); got != AnsTrue|AnsFalse {
		t.Errorf("root answers = %v, want {T,F}\n%s", got, p.Dump())
	}
	if !res.FullCorrelation() {
		t.Error("expected full correlation for the fgetc EOF test")
	}
	// The intraprocedural baseline sees only UNDEF.
	resIntra := analyze(t, p, b, intra())
	if resIntra.HasCorrelation() {
		t.Error("intra baseline should find no correlation here")
	}
}

func TestAnswerCache(t *testing.T) {
	// Two conditionals share most of their backward region (the second
	// reaches the call through the outer test's false arm, bypassing the
	// first conditional's asserts); with caching, the second analysis
	// answers the shared pairs from the cache.
	src := `
		func get() {
			if (input() > 0) { return 0; }
			return 7;
		}
		func main() {
			var r = get();
			if (input() > 5) {
				if (r == 0) { print(1); }
			}
			if (r == 0) { print(2); }
		}
	`
	p := build(t, src)
	var bs []*ir.Node
	p.LiveNodes(func(n *ir.Node) {
		if n.Kind == ir.NBranch && strings.HasSuffix(p.VarName(n.CondVar), "r") {
			bs = append(bs, n)
		}
	})
	if len(bs) != 2 {
		t.Fatalf("want 2 caller branches, got %d", len(bs))
	}

	opts := inter()
	opts.CacheAnswers = true
	an := New(p, opts)
	res1 := an.AnalyzeBranch(bs[0].ID)
	if res1.CacheHits != 0 {
		t.Errorf("first analysis had %d cache hits", res1.CacheHits)
	}
	if an.CacheBytes() <= 0 {
		t.Error("cache empty after first analysis")
	}
	res2 := an.AnalyzeBranch(bs[1].ID)
	if res2.CacheHits == 0 {
		t.Error("second analysis did not hit the cache")
	}
	if res2.PairsProcessed >= res1.PairsProcessed {
		t.Errorf("cache did not reduce work: %d vs %d", res2.PairsProcessed, res1.PairsProcessed)
	}
	// Answers must agree with an uncached analyzer.
	plain := New(p, inter()).AnalyzeBranch(bs[1].ID)
	if res2.RootAnswers() != plain.RootAnswers() {
		t.Errorf("cached answers %v != plain %v", res2.RootAnswers(), plain.RootAnswers())
	}
}

// cacheEquivSrc has many conditionals sharing backward regions, so the
// cross-conditional cache actually fires.
const cacheEquivSrc = `
	func get() {
		if (input() > 0) { return 0; }
		if (input() > 3) { return 1; }
		return 7;
	}
	func check(v) {
		if (v == 0) { return 1; }
		return 0;
	}
	func main() {
		var r = get();
		if (input() > 5) {
			if (r == 0) { print(1); }
		}
		if (r == 0) { print(2); }
		if (r == 7) { print(3); }
		var s = check(r);
		if (s == 1) { print(4); }
		var u = get();
		if (u == 0) { print(5); }
		if (u == 7) { print(6); }
	}
`

// allAnalyzable returns every analyzable branch in node order.
func allAnalyzable(p *ir.Program) []*ir.Node {
	var out []*ir.Node
	p.LiveNodes(func(n *ir.Node) {
		if n.Kind == ir.NBranch && n.Analyzable() {
			out = append(out, n)
		}
	})
	return out
}

// TestAnswerCacheAnswerEquivalence analyzes every conditional of a program
// with one cache-enabled analyzer and compares the root answer set of each
// against a fresh uncached analyzer: the cache is a pure time/memory
// tradeoff and must never change an answer.
func TestAnswerCacheAnswerEquivalence(t *testing.T) {
	p := build(t, cacheEquivSrc)
	bs := allAnalyzable(p)
	if len(bs) < 8 {
		t.Fatalf("want >= 8 analyzable branches, got %d", len(bs))
	}
	opts := inter()
	opts.CacheAnswers = true
	cached := New(p, opts)
	hits := 0
	for _, b := range bs {
		cres := cached.AnalyzeBranch(b.ID)
		plain := New(p, inter()).AnalyzeBranch(b.ID)
		if cres == nil || plain == nil {
			t.Fatalf("branch %d: nil result", b.ID)
		}
		if cres.RootAnswers() != plain.RootAnswers() {
			t.Errorf("branch %d (line %d): cached answers %v != plain %v",
				b.ID, b.Line, cres.RootAnswers(), plain.RootAnswers())
		}
		hits += cres.CacheHits
	}
	if hits == 0 {
		t.Error("cache never hit; the equivalence test exercised nothing")
	}
}

// TestAnalyzerConcurrentUse exercises concurrent AnalyzeBranch calls on one
// shared analyzer — with the answer cache enabled, so the mutex-guarded
// cache is hit from multiple goroutines (load-bearing under -race) — and
// checks every result against a serial uncached baseline.
func TestAnalyzerConcurrentUse(t *testing.T) {
	p := build(t, cacheEquivSrc)
	bs := allAnalyzable(p)
	want := make(map[ir.NodeID]AnswerSet, len(bs))
	for _, b := range bs {
		want[b.ID] = analyze(t, p, b, inter()).RootAnswers()
	}
	for _, cacheOn := range []bool{false, true} {
		opts := inter()
		opts.CacheAnswers = cacheOn
		shared := New(p, opts)
		const rounds = 4
		got := make([]AnswerSet, rounds*len(bs))
		var wg sync.WaitGroup
		for g := 0; g < rounds; g++ {
			for i, b := range bs {
				wg.Add(1)
				go func(slot int, id ir.NodeID) {
					defer wg.Done()
					got[slot] = shared.AnalyzeBranch(id).RootAnswers()
				}(g*len(bs)+i, b.ID)
			}
		}
		wg.Wait()
		for g := 0; g < rounds; g++ {
			for i, b := range bs {
				if a := got[g*len(bs)+i]; a != want[b.ID] {
					t.Errorf("cache=%v branch %d: concurrent answers %v != serial %v",
						cacheOn, b.ID, a, want[b.ID])
				}
			}
		}
	}
}
