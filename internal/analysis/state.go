package analysis

import (
	"sync"

	"icbe/internal/ir"
	"icbe/internal/pred"
)

// This file holds the dense per-run storage of the analysis. The seed
// implementation kept every per-run relation in maps keyed by structs
// (raised, Resolved, Answers, Suppliers, the query-intern table); each
// AnalyzeBranch call allocated them afresh and every pair touched them
// through hashing. The hot path now runs on flat slices indexed by a dense
// pair ID assigned in raise order, with per-node and per-variable side
// tables indexed directly by NodeID/VarID, and the whole block recycles
// through a sync.Pool so concurrent driver workers reuse scratch buffers
// across conditionals instead of reallocating.
//
// Lookup structure:
//
//   - a pair (n, q) is found by scanning the (short) list of queries raised
//     at n; a per-run map fallback engages for the rare node that
//     accumulates more than fallbackThreshold queries (possible under
//     ArithSubst, which can mint unboundedly many predicates per variable);
//   - a query (v, pred, owner) is interned by scanning the chain of queries
//     sharing v; the same map fallback engages per variable.
//
// Release() returns a Result's state block to the pool. Callers that drop a
// Result without releasing merely hand the block to the GC — nothing
// breaks — but the optimization driver releases every settled result, so a
// steady-state driver run reuses a handful of blocks regardless of how many
// conditionals it analyzes.

// fallbackThreshold is the per-node query count (and per-variable intern
// chain length) beyond which the linear scans switch to map lookups.
const fallbackThreshold = 32

// qChunkSize sizes the query arena chunks.
const qChunkSize = 128

// state is the pooled per-run storage block.
type state struct {
	// Per-pair parallel slices, indexed by dense pair ID in raise order.
	pairNode     []ir.NodeID
	pairQ        []int32
	pairResolved []bool
	pairRes      []AnswerSet // propagation-phase resolution (when resolved)
	pairAns      []AnswerSet // rolled-back answer sets (after rollback)
	pairSupOff   []int32     // offset into supStore
	pairSupLen   []int32
	// pairSupDeleted marks pairs whose suppliers the forced-UNDEF phase of
	// rollback withdrew from the public view. The supplier range itself
	// stays: the fixpoint keeps consulting it (matching the seed, which
	// deleted only the published map entry, not its internal relation).
	pairSupDeleted []bool

	// Flat supplier arena shared by all pairs; supSrc holds the supplying
	// pair's ID (or -1 when that pair was never raised, possible only after
	// truncation severed a chain).
	supStore []EdgeSupplier
	supSrc   []int32

	// Reverse supplier relation (consumers), built once per rollback.
	consOff   []int32
	consLen   []int32
	consStore []int32

	// Per-node side tables, indexed by NodeID; nodeQ holds the queries
	// raised at each node in raise order (the paper's Q[n]) and nodePair
	// the parallel pair IDs. visited lists the nodes with at least one
	// pair, in first-raise order — it is also the reset list. visitedBits
	// mirrors visited as a bitset (bit n set when node n hosts a pair) so
	// the driver's dirty-set intersection is a word-wise AND instead of a
	// per-node scan.
	nodeQ       [][]*Query
	nodePair    [][]int32
	visited     []ir.NodeID
	visitedBits []uint64

	// pairFinal marks pairs whose rolled-back answers and suppliers were
	// restored from a memo record (see memo.go): rollback seeds them as
	// settled fixpoint sources and never recomputes them.
	pairFinal []bool

	// Query interning: queries by ID, backed by a chunked arena so the
	// Query values are reused across runs; per-variable chains via
	// varHead/qNext.
	queries []*Query
	qChunks [][]Query
	nQ      int
	varHead []int32 // first query ID for each VarID, -1 when none
	varLen  []int32 // chain length per VarID (decides the map fallback)
	qNext   []int32 // next query ID sharing the variable, parallel to queries

	// Map fallbacks, engaged only past fallbackThreshold.
	pairIdx   map[PairKey]int32
	internBig map[queryKey]*Query

	snes []*SNE

	worklist []int32
	wlHead   int
	scratch  []int32 // rollback worklist / forced-UNDEF list
}

var statePool = sync.Pool{New: func() any { return &state{} }}

// acquireState takes a clean block from the pool and sizes its per-node and
// per-variable tables for the program.
func acquireState(numNodes, numVars int) *state {
	st := statePool.Get().(*state)
	if cap(st.nodeQ) < numNodes {
		st.nodeQ = make([][]*Query, numNodes)
		st.nodePair = make([][]int32, numNodes)
	}
	st.nodeQ = st.nodeQ[:numNodes]
	st.nodePair = st.nodePair[:numNodes]
	words := (numNodes + 63) / 64
	if cap(st.visitedBits) < words {
		st.visitedBits = make([]uint64, words)
	}
	st.visitedBits = st.visitedBits[:words]
	if cap(st.varHead) < numVars {
		grown := make([]int32, numVars)
		copy(grown, st.varHead[:cap(st.varHead)])
		for i := cap(st.varHead); i < numVars; i++ {
			grown[i] = -1
		}
		st.varHead = grown
		st.varLen = make([]int32, numVars)
	}
	st.varHead = st.varHead[:numVars]
	st.varLen = st.varLen[:numVars]
	return st
}

// reset restores the block to its clean pooled form, retaining capacity.
// Cleanup is proportional to what the run touched, not to program size: the
// per-node lists are cleared via the visited list and the per-variable
// chain heads via the interned queries.
func (st *state) reset() {
	for _, n := range st.visited {
		st.nodeQ[n] = st.nodeQ[n][:0]
		st.nodePair[n] = st.nodePair[n][:0]
		st.visitedBits[n>>6] &^= 1 << (uint(n) & 63)
	}
	for _, q := range st.queries {
		st.varHead[q.Var] = -1
		st.varLen[q.Var] = 0
	}
	st.pairNode = st.pairNode[:0]
	st.pairQ = st.pairQ[:0]
	st.pairResolved = st.pairResolved[:0]
	st.pairRes = st.pairRes[:0]
	st.pairAns = st.pairAns[:0]
	st.pairSupOff = st.pairSupOff[:0]
	st.pairSupLen = st.pairSupLen[:0]
	st.pairSupDeleted = st.pairSupDeleted[:0]
	st.pairFinal = st.pairFinal[:0]
	st.supStore = st.supStore[:0]
	st.supSrc = st.supSrc[:0]
	st.consOff = st.consOff[:0]
	st.consLen = st.consLen[:0]
	st.consStore = st.consStore[:0]
	st.visited = st.visited[:0]
	st.queries = st.queries[:0]
	st.qNext = st.qNext[:0]
	st.nQ = 0
	if len(st.pairIdx) > 0 {
		clear(st.pairIdx)
	}
	if len(st.internBig) > 0 {
		clear(st.internBig)
	}
	st.snes = st.snes[:0]
	st.worklist = st.worklist[:0]
	st.wlHead = 0
	st.scratch = st.scratch[:0]
}

// newQuery allocates an interned query from the chunked arena and links it
// into its variable's chain.
func (st *state) newQuery(v ir.VarID, p pred.Pred, owner *SNE) *Query {
	ci, off := st.nQ/qChunkSize, st.nQ%qChunkSize
	if ci == len(st.qChunks) {
		st.qChunks = append(st.qChunks, make([]Query, qChunkSize))
	}
	q := &st.qChunks[ci][off]
	st.nQ++
	*q = Query{ID: len(st.queries), Var: v, P: p, Owner: owner}
	st.queries = append(st.queries, q)
	st.qNext = append(st.qNext, st.varHead[v])
	st.varHead[v] = int32(q.ID)
	return q
}

// lookupIntern finds the interned query for (v, p, owner), or nil. Chains
// past fallbackThreshold are served by the internBig map instead.
func (st *state) lookupIntern(v ir.VarID, p pred.Pred, owner *SNE) *Query {
	if st.varLen[v] > fallbackThreshold {
		return st.internBig[internKey(v, p, owner)]
	}
	for id := st.varHead[v]; id >= 0; id = st.qNext[id] {
		q := st.queries[id]
		if q.P == p && q.Owner == owner {
			return q
		}
	}
	return nil
}

// intern returns the query for (v, p, owner), creating it when new.
func (st *state) intern(v ir.VarID, p pred.Pred, owner *SNE) *Query {
	if q := st.lookupIntern(v, p, owner); q != nil {
		return q
	}
	q := st.newQuery(v, p, owner)
	st.varLen[v]++
	if st.varLen[v] > fallbackThreshold {
		if st.internBig == nil {
			st.internBig = make(map[queryKey]*Query)
		}
		if st.varLen[v] == fallbackThreshold+1 {
			// Crossing the threshold: every query of this variable must be
			// reachable through the map, so migrate the whole chain.
			for m := st.varHead[v]; m >= 0; m = st.qNext[m] {
				mq := st.queries[m]
				st.internBig[internKey(mq.Var, mq.P, mq.Owner)] = mq
			}
		} else {
			st.internBig[internKey(v, p, owner)] = q
		}
	}
	return q
}

func internKey(v ir.VarID, p pred.Pred, owner *SNE) queryKey {
	k := queryKey{v: v, op: p.Op, c: p.C, owner: -1}
	if owner != nil {
		k.owner = owner.ID
	}
	return k
}

// findPair returns the dense pair ID for (n, q), or -1 when the pair was
// never raised. Nodes past fallbackThreshold queries are served by the
// pairIdx map.
func (st *state) findPair(n ir.NodeID, q *Query) int32 {
	qs := st.nodeQ[n]
	if len(qs) > fallbackThreshold {
		if pid, ok := st.pairIdx[PairKey{n, q.ID}]; ok {
			return pid
		}
		return -1
	}
	for i, oq := range qs {
		if oq == q {
			return st.nodePair[n][i]
		}
	}
	return -1
}

// addPair appends a new pair for (n, q) and returns its ID. The caller has
// checked absence via findPair.
func (st *state) addPair(n ir.NodeID, q *Query) int32 {
	pid := int32(len(st.pairNode))
	st.pairNode = append(st.pairNode, n)
	st.pairQ = append(st.pairQ, int32(q.ID))
	st.pairResolved = append(st.pairResolved, false)
	st.pairRes = append(st.pairRes, 0)
	st.pairAns = append(st.pairAns, 0)
	st.pairSupOff = append(st.pairSupOff, 0)
	st.pairSupLen = append(st.pairSupLen, 0)
	st.pairSupDeleted = append(st.pairSupDeleted, false)
	st.pairFinal = append(st.pairFinal, false)
	if len(st.nodeQ[n]) == 0 {
		st.visited = append(st.visited, n)
		st.visitedBits[n>>6] |= 1 << (uint(n) & 63)
	}
	st.nodeQ[n] = append(st.nodeQ[n], q)
	st.nodePair[n] = append(st.nodePair[n], pid)
	if len(st.nodeQ[n]) > fallbackThreshold {
		if st.pairIdx == nil {
			st.pairIdx = make(map[PairKey]int32)
		}
		if len(st.nodeQ[n]) == fallbackThreshold+1 {
			// Crossing the threshold: migrate the node's existing pairs.
			for i, oq := range st.nodeQ[n] {
				st.pairIdx[PairKey{n, oq.ID}] = st.nodePair[n][i]
			}
		} else {
			st.pairIdx[PairKey{n, q.ID}] = pid
		}
	}
	return pid
}

// resolvePair records a propagation-phase resolution.
func (st *state) resolvePair(pid int32, ans AnswerSet) {
	st.pairResolved[pid] = true
	st.pairRes[pid] = ans
}

// newSNE registers a summary node entry for the exit.
func (st *state) newSNE(exit ir.NodeID) *SNE {
	s := &SNE{ID: len(st.snes), Exit: exit}
	st.snes = append(st.snes, s)
	return s
}

// findSNE returns the SNE for (exit, v, p), or nil. SNE counts are tiny
// (one per distinct query content crossing a procedure exit), so a linear
// scan beats any map.
func (st *state) findSNE(exit ir.NodeID, v ir.VarID, p pred.Pred) *SNE {
	for _, s := range st.snes {
		if s.Exit == exit && s.Qsn != nil && s.Qsn.Var == v && s.Qsn.P == p {
			return s
		}
	}
	return nil
}
