package analysis

import (
	"sort"

	"icbe/internal/ir"
	"icbe/internal/pred"
)

// Portable summary records.
//
// A SummaryMemo's records are plain data — node IDs, var IDs, predicate
// contents — so they can be serialized and replayed into a later process
// working on the same program. The types below are the wire form: they carry
// exactly the fields replaySNE needs, with no pooled pointers. Node and var
// IDs are in the coordinate system of the program the records were computed
// against; the store translates them through ir.ProgramHash canonical
// orderings when moving records between processes, and Inject validates
// every reference against the receiving program before accepting anything
// (verify-on-read: a corrupted or stale record is dropped, never replayed).

// PortableKey identifies a summary node entry: the procedure exit and the
// summary query's content.
type PortableKey struct {
	Exit ir.NodeID `json:"exit"`
	Var  ir.VarID  `json:"var"`
	Op   pred.Op   `json:"op"`
	C    int64     `json:"c"`
}

// PortablePair is one closure pair, in raise order.
type PortablePair struct {
	Node     ir.NodeID `json:"node"`
	Var      ir.VarID  `json:"var"`
	Op       pred.Op   `json:"op"`
	C        int64     `json:"c"`
	Resolved bool      `json:"resolved,omitempty"`
	Ans      AnswerSet `json:"ans,omitempty"`
}

// PortableArrival is one summary query that reached a procedure entry.
type PortableArrival struct {
	Entry ir.NodeID `json:"entry"`
	Var   ir.VarID  `json:"var"`
	Op    pred.Op   `json:"op"`
	C     int64     `json:"c"`
}

// PortableRecord is one summary closure in wire form.
type PortableRecord struct {
	Key      PortableKey       `json:"key"`
	Pairs    []PortablePair    `json:"pairs,omitempty"`
	Arrivals []PortableArrival `json:"arrivals,omitempty"`
	Nested   []PortableKey     `json:"nested,omitempty"`
	Touched  []ir.NodeID       `json:"touched,omitempty"`
}

// ExportPristine returns the memo's records that are valid for the pristine
// input program: records staged before the first Commit (later rounds
// compute closures against a restructured graph whose node IDs do not exist
// in a fresh compile of the same source). Records that were themselves
// injected from a store are excluded. The returned slices are deep copies.
func (m *SummaryMemo) ExportPristine() []PortableRecord {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var recs []*memoRecord
	if m.frozen {
		recs = m.pristine
	} else {
		// No Commit yet: everything recorded so far — committed (auto-commit
		// memos publish immediately) and pending — is pristine.
		for _, rec := range m.committed {
			if !rec.injected {
				recs = append(recs, rec)
			}
		}
		for _, rec := range m.pending {
			if !rec.injected {
				recs = append(recs, rec)
			}
		}
	}
	out := make([]PortableRecord, 0, len(recs))
	seen := make(map[memoKey]bool, len(recs))
	for _, rec := range recs {
		// Concurrent round-1 runs can stage the same summary independently;
		// the closures are identical, so the first record stands for all.
		if seen[rec.key] {
			continue
		}
		seen[rec.key] = true
		out = append(out, portableFromRecord(rec))
	}
	// Deterministic order regardless of map iteration.
	sort.Slice(out, func(i, j int) bool { return out[i].Key.less(out[j].Key) })
	return out
}

func (k PortableKey) less(o PortableKey) bool {
	if k.Exit != o.Exit {
		return k.Exit < o.Exit
	}
	if k.Var != o.Var {
		return k.Var < o.Var
	}
	if k.Op != o.Op {
		return k.Op < o.Op
	}
	return k.C < o.C
}

func portableFromRecord(rec *memoRecord) PortableRecord {
	p := PortableRecord{
		Key:     PortableKey{Exit: rec.key.exit, Var: rec.key.v, Op: rec.key.op, C: rec.key.c},
		Touched: append([]ir.NodeID(nil), rec.touched...),
	}
	for _, mp := range rec.pairs {
		p.Pairs = append(p.Pairs, PortablePair{
			Node: mp.node, Var: mp.v, Op: mp.p.Op, C: mp.p.C,
			Resolved: mp.resolved, Ans: mp.ans,
		})
	}
	for _, ar := range rec.arrivals {
		p.Arrivals = append(p.Arrivals, PortableArrival{
			Entry: ar.entry, Var: ar.v, Op: ar.p.Op, C: ar.p.C,
		})
	}
	for _, nk := range rec.nested {
		p.Nested = append(p.Nested, PortableKey{Exit: nk.exit, Var: nk.v, Op: nk.op, C: nk.c})
	}
	return p
}

// Inject validates portable records against a program and commits the
// survivors, marked so they are never re-exported. Validation is strict: a
// record referencing a missing/deleted node, an out-of-range variable, a
// malformed predicate, or a nested summary that did not itself survive is
// dropped (the replay machinery computes those summaries fresh — reuse is
// an optimization, never a requirement). Returns the number of records
// accepted. Inject is intended for a fresh memo before its first run;
// records for keys already present are skipped.
func (m *SummaryMemo) Inject(p *ir.Program, recs []PortableRecord) int {
	valid := make([]*memoRecord, 0, len(recs))
	keys := make(map[memoKey]bool, len(recs))
	for i := range recs {
		rec := recordFromPortable(p, &recs[i])
		if rec == nil {
			continue
		}
		if keys[rec.key] {
			continue
		}
		keys[rec.key] = true
		valid = append(valid, rec)
	}
	// Keep the replay invariant "a committed record's nested summaries are
	// themselves committed": iteratively drop records whose nested keys are
	// not in the surviving set.
	for {
		dropped := false
		kept := valid[:0]
		for _, rec := range valid {
			ok := true
			for _, nk := range rec.nested {
				if !keys[nk] {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, rec)
			} else {
				delete(keys, rec.key)
				dropped = true
			}
		}
		valid = kept
		if !dropped {
			break
		}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	accepted := 0
	for _, rec := range valid {
		if _, ok := m.committed[rec.key]; ok {
			continue
		}
		m.committed[rec.key] = rec
		m.bytes += rec.footprint()
		accepted++
	}
	return accepted
}

// recordFromPortable converts and validates one record; nil when any
// reference does not hold in p.
func recordFromPortable(p *ir.Program, pr *PortableRecord) *memoRecord {
	liveNode := func(id ir.NodeID, kind ir.NodeKind, anyKind bool) bool {
		n := p.Node(id)
		if n == nil {
			return false
		}
		return anyKind || n.Kind == kind
	}
	validVar := func(v ir.VarID) bool { return v >= 0 && int(v) < len(p.Vars) }
	validOp := func(op pred.Op) bool { return op <= pred.Ge }
	validKey := func(k PortableKey) bool {
		return liveNode(k.Exit, ir.NExit, false) && validVar(k.Var) && validOp(k.Op)
	}
	if !validKey(pr.Key) {
		return nil
	}
	rec := &memoRecord{
		key:      memoKey{exit: pr.Key.Exit, v: pr.Key.Var, op: pr.Key.Op, c: pr.Key.C},
		injected: true,
	}
	for i := range pr.Pairs {
		mp := &pr.Pairs[i]
		if !liveNode(mp.Node, 0, true) || !validVar(mp.Var) || !validOp(mp.Op) || mp.Ans > 15 {
			return nil
		}
		rec.pairs = append(rec.pairs, memoPair{
			node: mp.Node, v: mp.Var, p: pred.Pred{Op: mp.Op, C: mp.C},
			resolved: mp.Resolved, ans: mp.Ans,
		})
	}
	for i := range pr.Arrivals {
		ar := &pr.Arrivals[i]
		if !liveNode(ar.Entry, ir.NEntry, false) || !validVar(ar.Var) || !validOp(ar.Op) {
			return nil
		}
		rec.arrivals = append(rec.arrivals, memoArrival{
			entry: ar.Entry, v: ar.Var, p: pred.Pred{Op: ar.Op, C: ar.C},
		})
	}
	for _, nk := range pr.Nested {
		if !validKey(nk) {
			return nil
		}
		rec.nested = append(rec.nested, memoKey{exit: nk.Exit, v: nk.Var, op: nk.Op, c: nk.C})
	}
	prev := ir.NodeID(-1)
	for _, id := range pr.Touched {
		if id <= prev || p.Node(id) == nil {
			return nil
		}
		prev = id
		rec.touched = append(rec.touched, id)
	}
	return rec
}
