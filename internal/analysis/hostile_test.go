package analysis_test

import (
	"encoding/json"
	"testing"

	"icbe"
	"icbe/internal/analysis"
	"icbe/internal/ir"
	"icbe/internal/pred"
)

// Hostile-bytes hardening for the portable-record surface. Records now cross
// process boundaries (the worker pool ships them over pipes), so the decode
// side must be fail-closed against bytes no honest worker would produce:
// truncated documents, garbage field values, duplicate keys. The contract is
// that Inject never panics, rejects every invalid record, and leaves the memo
// with no partial mutation — a poisoned payload yields exactly the cold run.

// hostileSrc is small enough to optimize per-case but has a call with
// conditionals on both sides, so real summary records exist to corrupt.
const hostileSrc = `
func check(x) {
	if (x == 0) { return 1; }
	return 0;
}

func main() {
	var a = 0;
	if (check(a) == 1) { print(1); }
	print(2);
}
`

// coldRun optimizes hostileSrc with the given memo and returns the optimized
// dump plus the report's headline counters.
func coldRun(t testing.TB, m *analysis.SummaryMemo) (string, int, int) {
	t.Helper()
	p, err := icbe.Compile(hostileSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	opts := icbe.DefaultOptions()
	opts.SummaryMemo = m
	opt, rep, err := p.Optimize(opts)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	return opt.Dump(), rep.Optimized, rep.PairsTotal
}

// hostileGraph returns a fresh compile of hostileSrc for Inject to validate
// against.
func hostileGraph(t testing.TB) *ir.Program {
	t.Helper()
	p, err := icbe.Compile(hostileSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p.Graph()
}

// exportedJSON runs hostileSrc once and returns its pristine records both as
// a slice and as the marshaled wire bytes a worker would send.
func exportedJSON(t testing.TB) ([]analysis.PortableRecord, []byte) {
	t.Helper()
	m := analysis.NewSummaryMemo()
	coldRun(t, m)
	recs := m.ExportPristine()
	if len(recs) == 0 {
		t.Fatalf("hostileSrc produced no summary records")
	}
	raw, err := json.Marshal(recs)
	if err != nil {
		t.Fatalf("marshal records: %v", err)
	}
	return recs, raw
}

// TestInjectHostileBytes drives raw wire payloads through the decode+Inject
// path an untrusted peer would reach.
func TestInjectHostileBytes(t *testing.T) {
	recs, raw := exportedJSON(t)
	wantDump, wantOpt, wantPairs := coldRun(t, analysis.NewSummaryMemo())

	// Truncated documents fail at the JSON layer — decode is the first gate,
	// and a cut-off frame never reaches Inject at all.
	for _, cut := range []int{1, len(raw) / 2, len(raw) - 1} {
		var got []analysis.PortableRecord
		if err := json.Unmarshal(raw[:cut], &got); err == nil {
			t.Errorf("truncated payload (%d of %d bytes) decoded without error", cut, len(raw))
		}
	}

	// Parseable garbage: every record carries references no program has.
	// Inject must return 0, and the memo must behave exactly like a fresh
	// one afterward — no partial mutation.
	hostile := [][]byte{
		[]byte(`[{"key":{"exit":2147483647,"var":0,"op":0,"c":0}}]`),
		[]byte(`[{"key":{"exit":-1,"var":-5,"op":0,"c":0}}]`),
		[]byte(`[{"key":{"exit":0,"var":0,"op":255,"c":9}}]`),
		[]byte(`[{"key":{"exit":0,"var":999999,"op":1,"c":0},"pairs":[{"node":3,"var":0,"op":1,"c":0,"ans":255}]}]`),
		[]byte(`[{"key":{"exit":0,"var":0,"op":1,"c":0},"touched":[9,3,1]}]`),
		[]byte(`[{"key":{"exit":0,"var":0,"op":1,"c":0},"nested":[{"exit":0,"var":0,"op":1,"c":777777}]}]`),
	}
	for _, payload := range hostile {
		var got []analysis.PortableRecord
		if err := json.Unmarshal(payload, &got); err != nil {
			t.Fatalf("hostile payload must parse to exercise Inject: %v\n%s", err, payload)
		}
		m := analysis.NewSummaryMemo()
		if n := m.Inject(hostileGraph(t), got); n != 0 {
			t.Errorf("Inject accepted %d hostile records from %s", n, payload)
		}
		if exp := m.ExportPristine(); len(exp) != 0 {
			t.Errorf("hostile inject left %d records in the memo", len(exp))
		}
		dump, opt, pairs := coldRun(t, m)
		if dump != wantDump || opt != wantOpt || pairs != wantPairs {
			t.Errorf("memo mutated by rejected payload %s: run diverged from cold", payload)
		}
	}

	// Duplicate keys: only one record per key survives, whichever order the
	// duplicates arrive in, and a garbage duplicate never displaces a valid
	// record.
	g := hostileGraph(t)
	valid := recs[0]
	garbage := valid
	garbage.Pairs = []analysis.PortablePair{{Node: -1, Var: -1, Op: pred.Op(200), C: 0}}
	for name, pair := range map[string][]analysis.PortableRecord{
		"valid-then-valid":   {valid, valid},
		"valid-then-garbage": {valid, garbage},
		"garbage-then-valid": {garbage, valid},
	} {
		if n := analysis.NewSummaryMemo().Inject(g, pair); n != 1 {
			t.Errorf("%s: Inject accepted %d records, want exactly 1", name, n)
		}
	}

	// Re-injecting into a memo that already holds the keys is a no-op.
	m := analysis.NewSummaryMemo()
	if n := m.Inject(g, recs); n != len(recs) {
		t.Fatalf("clean inject accepted %d of %d", n, len(recs))
	}
	if n := m.Inject(g, recs); n != 0 {
		t.Errorf("second inject accepted %d records, want 0", n)
	}
}

// FuzzInject feeds arbitrary bytes through the wire decode into Inject. Any
// input that parses must be injectable without panic, never over-accept, and
// never leave exportable state behind; injecting the same payload twice must
// be a no-op the second time.
func FuzzInject(f *testing.F) {
	recs, raw := exportedJSON(f)
	f.Add(raw)
	f.Add(raw[:len(raw)/2])
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"key":{"exit":0,"var":0,"op":1,"c":0}}]`))
	if dup, err := json.Marshal([]analysis.PortableRecord{recs[0], recs[0]}); err == nil {
		f.Add(dup)
	}
	g := hostileGraph(f)

	f.Fuzz(func(t *testing.T, data []byte) {
		var got []analysis.PortableRecord
		if err := json.Unmarshal(data, &got); err != nil {
			return // fail-closed at the decode gate
		}
		m := analysis.NewSummaryMemo()
		n := m.Inject(g, got)
		if n < 0 || n > len(got) {
			t.Fatalf("Inject accepted %d of %d records", n, len(got))
		}
		if exp := m.ExportPristine(); len(exp) != 0 {
			t.Fatalf("injected records re-exported: %d", len(exp))
		}
		if again := m.Inject(g, got); again != 0 {
			t.Fatalf("second inject of the same payload accepted %d records", again)
		}
	})
}
