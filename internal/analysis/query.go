// Package analysis implements the demand-driven interprocedural static
// correlation analysis of Bodík, Gupta and Soffa (PLDI'97, Figure 4), and
// the rollback phase that collects the resolved answers along the traversed
// paths.
//
// Given a conditional branch with predicate (v relop c), the analysis raises
// the query (v relop c) at the branch and propagates it backwards through
// the ICFG until it resolves at every reaching path. Resolutions:
//
//   - TRUE / FALSE — the path is correlated: the branch outcome is known.
//   - UNDEF — the variable receives a value the analysis cannot interpret.
//   - TRANS — summary-node queries only: the path through the procedure is
//     transparent for the query.
//
// Four correlation sources resolve queries: constant assignments,
// conditional-branch assertions (materialized as assert nodes on branch
// out-edges), byte conversions (value range [0,255], the paper's
// unsigned→signed source), and pointer dereferences (non-nil afterwards).
// Copy assignments substitute the query variable and propagation continues;
// an optional extension also substitutes through v := w ± k.
//
// Queries crossing a call site exit are computed through summary node
// entries stored at procedure exits, following the demand-driven
// interprocedural framework of Duesterwald, Gupta and Soffa (POPL'95).
package analysis

import (
	"fmt"
	"math/bits"
	"strings"

	"icbe/internal/ir"
	"icbe/internal/pred"
)

// AnswerSet is a set of query answers, represented as a bitmask.
type AnswerSet uint8

// Individual answers.
const (
	AnsTrue AnswerSet = 1 << iota
	AnsFalse
	AnsUndef
	AnsTrans
)

// Has reports whether the set contains every answer in m.
func (s AnswerSet) Has(m AnswerSet) bool { return s&m == m }

// Count returns the number of answers in the set.
func (s AnswerSet) Count() int { return bits.OnesCount8(uint8(s)) }

func (s AnswerSet) String() string {
	if s == 0 {
		return "{}"
	}
	var parts []string
	if s&AnsTrue != 0 {
		parts = append(parts, "T")
	}
	if s&AnsFalse != 0 {
		parts = append(parts, "F")
	}
	if s&AnsUndef != 0 {
		parts = append(parts, "U")
	}
	if s&AnsTrans != 0 {
		parts = append(parts, "Tr")
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Query is an interned query (v relop c). Owner is nil for queries raised on
// behalf of the analyzed conditional, and points to the summary node entry
// the query computes otherwise (the paper's sne field).
type Query struct {
	ID    int
	Var   ir.VarID
	P     pred.Pred
	Owner *SNE
}

func (q *Query) String() string {
	owner := ""
	if q.Owner != nil {
		owner = fmt.Sprintf(" [sne%d]", q.Owner.ID)
	}
	return fmt.Sprintf("(v%d %s)%s", int(q.Var), q.P, owner)
}

// SNE is a summary node entry, stored at a procedure exit node for one query
// content. It records the summary query raised at the exit, the queries that
// propagated all the way to each procedure entry, and the call-site exits
// waiting on it.
type SNE struct {
	ID   int
	Exit ir.NodeID
	Qsn  *Query
	// entries groups, per procedure entry node, the summary queries that
	// reached it (resolved TRANS there). A short slice instead of a map:
	// procedures have one entry before splitting and a handful after.
	entries []sneEntry
	// Waiters are the call-site-exit pairs whose answers depend on this
	// summary.
	Waiters []waiter

	// Memoization bookkeeping (see memo.go): replayed marks an SNE
	// reconstructed from a memo record; rec points to that record. deps
	// lists the nested SNEs this summary's closure waited on, and
	// linkNodes the call/entry nodes consulted when crossing nested call
	// sites — both feed the record's invalidation set.
	replayed  bool
	rec       *memoRecord
	deps      []*SNE
	linkNodes []ir.NodeID
}

type sneEntry struct {
	entry ir.NodeID
	qs    []*Query
}

// EntriesAt returns the summary queries that reached the given procedure
// entry (resolved TRANS there).
func (s *SNE) EntriesAt(entry ir.NodeID) []*Query {
	for i := range s.entries {
		if s.entries[i].entry == entry {
			return s.entries[i].qs
		}
	}
	return nil
}

// ForEachEntry iterates the entry arrivals in arrival-group order.
func (s *SNE) ForEachEntry(f func(entry ir.NodeID, qs []*Query)) {
	for i := range s.entries {
		f(s.entries[i].entry, s.entries[i].qs)
	}
}

// addEntry records the arrival of summary query q at a procedure entry.
func (s *SNE) addEntry(entry ir.NodeID, q *Query) {
	for i := range s.entries {
		if s.entries[i].entry == entry {
			s.entries[i].qs = append(s.entries[i].qs, q)
			return
		}
	}
	s.entries = append(s.entries, sneEntry{entry: entry, qs: []*Query{q}})
}

// addDep records that this summary's closure waits on nested summary d.
func (s *SNE) addDep(d *SNE) {
	for _, e := range s.deps {
		if e == d {
			return
		}
	}
	s.deps = append(s.deps, d)
}

type waiter struct {
	node  ir.NodeID // the call-site exit
	q     *Query    // the query raised there
	call  ir.NodeID // its call-site predecessor
	entry ir.NodeID // the procedure entry invoked by call
}

// PairKey identifies a (node, query) pair.
type PairKey struct {
	Node  ir.NodeID
	Query int
}

type queryKey struct {
	v     ir.VarID
	op    pred.Op
	c     int64
	owner int // SNE ID, or -1
}
