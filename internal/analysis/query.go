// Package analysis implements the demand-driven interprocedural static
// correlation analysis of Bodík, Gupta and Soffa (PLDI'97, Figure 4), and
// the rollback phase that collects the resolved answers along the traversed
// paths.
//
// Given a conditional branch with predicate (v relop c), the analysis raises
// the query (v relop c) at the branch and propagates it backwards through
// the ICFG until it resolves at every reaching path. Resolutions:
//
//   - TRUE / FALSE — the path is correlated: the branch outcome is known.
//   - UNDEF — the variable receives a value the analysis cannot interpret.
//   - TRANS — summary-node queries only: the path through the procedure is
//     transparent for the query.
//
// Four correlation sources resolve queries: constant assignments,
// conditional-branch assertions (materialized as assert nodes on branch
// out-edges), byte conversions (value range [0,255], the paper's
// unsigned→signed source), and pointer dereferences (non-nil afterwards).
// Copy assignments substitute the query variable and propagation continues;
// an optional extension also substitutes through v := w ± k.
//
// Queries crossing a call site exit are computed through summary node
// entries stored at procedure exits, following the demand-driven
// interprocedural framework of Duesterwald, Gupta and Soffa (POPL'95).
package analysis

import (
	"fmt"
	"strings"

	"icbe/internal/ir"
	"icbe/internal/pred"
)

// AnswerSet is a set of query answers, represented as a bitmask.
type AnswerSet uint8

// Individual answers.
const (
	AnsTrue AnswerSet = 1 << iota
	AnsFalse
	AnsUndef
	AnsTrans
)

// Has reports whether the set contains every answer in m.
func (s AnswerSet) Has(m AnswerSet) bool { return s&m == m }

// Count returns the number of answers in the set.
func (s AnswerSet) Count() int {
	c := 0
	for m := AnsTrue; m <= AnsTrans; m <<= 1 {
		if s&m != 0 {
			c++
		}
	}
	return c
}

func (s AnswerSet) String() string {
	if s == 0 {
		return "{}"
	}
	var parts []string
	if s&AnsTrue != 0 {
		parts = append(parts, "T")
	}
	if s&AnsFalse != 0 {
		parts = append(parts, "F")
	}
	if s&AnsUndef != 0 {
		parts = append(parts, "U")
	}
	if s&AnsTrans != 0 {
		parts = append(parts, "Tr")
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Query is an interned query (v relop c). Owner is nil for queries raised on
// behalf of the analyzed conditional, and points to the summary node entry
// the query computes otherwise (the paper's sne field).
type Query struct {
	ID    int
	Var   ir.VarID
	P     pred.Pred
	Owner *SNE
}

func (q *Query) String() string {
	owner := ""
	if q.Owner != nil {
		owner = fmt.Sprintf(" [sne%d]", q.Owner.ID)
	}
	return fmt.Sprintf("(v%d %s)%s", int(q.Var), q.P, owner)
}

// SNE is a summary node entry, stored at a procedure exit node for one query
// content. It records the summary query raised at the exit, the queries that
// propagated all the way to each procedure entry, and the call-site exits
// waiting on it.
type SNE struct {
	ID   int
	Exit ir.NodeID
	Qsn  *Query
	// Entries maps each procedure entry node to the summary queries that
	// reached it (resolved TRANS there).
	Entries map[ir.NodeID][]*Query
	// Waiters are the call-site-exit pairs whose answers depend on this
	// summary.
	Waiters []waiter
}

type waiter struct {
	node  ir.NodeID // the call-site exit
	q     *Query    // the query raised there
	call  ir.NodeID // its call-site predecessor
	entry ir.NodeID // the procedure entry invoked by call
}

// PairKey identifies a (node, query) pair.
type PairKey struct {
	Node  ir.NodeID
	Query int
}

type queryKey struct {
	v     ir.VarID
	op    pred.Op
	c     int64
	owner int // SNE ID, or -1
}
