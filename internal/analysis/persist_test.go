package analysis_test

import (
	"testing"

	"icbe"
	"icbe/internal/analysis"
	"icbe/internal/ir"
	"icbe/internal/pred"
	"icbe/internal/progs"
)

func optimizeWithMemo(t *testing.T, src string, m *analysis.SummaryMemo) (*icbe.Program, *icbe.Report, *ir.Program) {
	t.Helper()
	p, err := icbe.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	opts := icbe.DefaultOptions()
	opts.SummaryMemo = m
	opt, rep, err := p.Optimize(opts)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	return opt, rep, p.Graph()
}

func TestExportInjectReplayEquivalence(t *testing.T) {
	for _, name := range []string{"stdio", "lisp", "oodispatch"} {
		w := progs.ByName(name)
		m1 := analysis.NewSummaryMemo()
		opt1, rep1, _ := optimizeWithMemo(t, w.Source, m1)
		recs := m1.ExportPristine()
		if len(recs) == 0 {
			t.Fatalf("%s: run produced no pristine summary records", name)
		}

		// Fresh compile of the same source, seeded with the persisted
		// records: the optimized program and the analysis cost must be
		// identical — replay is pair-for-pair exact.
		m2 := analysis.NewSummaryMemo()
		p2, err := icbe.Compile(w.Source)
		if err != nil {
			t.Fatal(err)
		}
		accepted := m2.Inject(p2.Graph(), recs)
		if accepted == 0 {
			t.Fatalf("%s: no records accepted by Inject", name)
		}
		if accepted != len(recs) {
			t.Errorf("%s: Inject accepted %d of %d records computed for the same program", name, accepted, len(recs))
		}
		opts := icbe.DefaultOptions()
		opts.SummaryMemo = m2
		opt2, rep2, err := p2.Optimize(opts)
		if err != nil {
			t.Fatal(err)
		}
		if opt1.Dump() != opt2.Dump() {
			t.Errorf("%s: seeded run produced a different program than the cold run", name)
		}
		if rep1.Optimized != rep2.Optimized || rep1.PairsTotal != rep2.PairsTotal {
			t.Errorf("%s: seeded run report differs: optimized %d/%d pairs %d/%d",
				name, rep1.Optimized, rep2.Optimized, rep1.PairsTotal, rep2.PairsTotal)
		}
		if rep2.Stats.SNEMemoHits < rep1.Stats.SNEMemoHits {
			t.Errorf("%s: seeded run replayed fewer summaries (%d) than cold (%d)",
				name, rep2.Stats.SNEMemoHits, rep1.Stats.SNEMemoHits)
		}

		// A warm process must not re-persist what it read: the seeded run's
		// pristine export contains no injected keys.
		injected := make(map[analysis.PortableKey]bool, len(recs))
		for _, r := range recs {
			injected[r.Key] = true
		}
		for _, r := range m2.ExportPristine() {
			if injected[r.Key] {
				t.Errorf("%s: injected record %+v re-exported", name, r.Key)
			}
		}
	}
}

func TestInjectValidation(t *testing.T) {
	w := progs.ByName("stdio")
	m1 := analysis.NewSummaryMemo()
	_, _, _ = optimizeWithMemo(t, w.Source, m1)
	recs := m1.ExportPristine()
	if len(recs) == 0 {
		t.Fatal("no records to corrupt")
	}
	g := func() *ir.Program {
		p, err := icbe.Compile(w.Source)
		if err != nil {
			t.Fatal(err)
		}
		return p.Graph()
	}

	corrupt := func(mutate func([]analysis.PortableRecord)) int {
		cp := make([]analysis.PortableRecord, len(recs))
		copy(cp, recs)
		for i := range cp {
			cp[i].Pairs = append([]analysis.PortablePair(nil), recs[i].Pairs...)
			cp[i].Touched = append([]ir.NodeID(nil), recs[i].Touched...)
			cp[i].Nested = append([]analysis.PortableKey(nil), recs[i].Nested...)
		}
		mutate(cp)
		return analysis.NewSummaryMemo().Inject(g(), cp)
	}

	if n := corrupt(func(r []analysis.PortableRecord) { r[0].Key.Exit = 1 << 20 }); n >= len(recs) {
		t.Errorf("out-of-range exit accepted (%d records)", n)
	}
	if n := corrupt(func(r []analysis.PortableRecord) { r[0].Key.Op = pred.Op(99) }); n >= len(recs) {
		t.Errorf("malformed predicate op accepted (%d records)", n)
	}
	if n := corrupt(func(r []analysis.PortableRecord) {
		if len(r[0].Pairs) > 0 {
			r[0].Pairs[0].Var = 1 << 24
		}
	}); len(recs) > 0 && len(recs[0].Pairs) > 0 && n >= len(recs) {
		t.Errorf("out-of-range pair var accepted (%d records)", n)
	}
	if n := corrupt(func(r []analysis.PortableRecord) {
		if len(r[0].Touched) > 1 {
			r[0].Touched[0], r[0].Touched[1] = r[0].Touched[1], r[0].Touched[0]
		}
	}); len(recs[0].Touched) > 1 && n >= len(recs) {
		t.Errorf("unsorted touched set accepted (%d records)", n)
	}
	// A record whose nested summary is missing must be dropped too.
	if n := corrupt(func(r []analysis.PortableRecord) {
		for i := range r {
			if len(r[i].Nested) > 0 {
				r[i].Nested[0].C = 123456789
			}
		}
	}); n > len(recs) {
		t.Errorf("dangling nested key accepted (%d records)", n)
	}
	// The nested-closure filter keeps the committed-nested invariant.
	m := analysis.NewSummaryMemo()
	dangling := []analysis.PortableRecord{{
		Key:    recs[0].Key,
		Nested: []analysis.PortableKey{{Exit: recs[0].Key.Exit, Var: 0, Op: pred.Eq, C: 424242}},
	}}
	if n := m.Inject(g(), dangling); n != 0 {
		t.Errorf("record with unresolvable nested key accepted (%d)", n)
	}
}
