package analysis

import (
	"icbe/internal/ir"
)

// EdgeSupplier identifies one source of answers for a pair (n, q): the
// answers collected for Query at predecessor Pred, filtered through Mask,
// flow into A[n, q]. Restructuring uses the supplier relation to decide
// which edges still connect nodes hosting a common answer (fix-edges) and
// which answers remain available at a node (Figure 8 line 5).
type EdgeSupplier struct {
	Pred  ir.NodeID
	Query *Query
	Mask  AnswerSet
	// FromExit marks the summary supplier crossing a procedure exit →
	// call-site-exit edge; its TRANS answers stand for the transparent
	// paths whose answers arrive through the call-site predecessor instead.
	FromExit bool
}

type supplier struct {
	Key  PairKey
	Mask AnswerSet
}

// MaskAll passes every answer.
const MaskAll = AnsTrue | AnsFalse | AnsUndef | AnsTrans

const maskAll = MaskAll

// rollback collects the resolved answers along the traversed paths: answers
// propagate forward from their resolution sites and are set-unioned at
// merge points (paper §3.1). The propagation structure mirrors the analysis
// exactly, so the supplier sets are recomputed deterministically.
func (r *run) rollback() {
	res := r.res
	res.Answers = make(map[PairKey]AnswerSet, len(r.raised))
	res.Suppliers = make(map[PairKey][]EdgeSupplier)

	// Build the supplier relation for every unresolved pair and its
	// reverse (consumers).
	suppliers := make(map[PairKey][]supplier)
	consumers := make(map[PairKey][]PairKey)
	for n, qs := range res.Queries {
		for _, q := range qs {
			pk := PairKey{n, q.ID}
			if _, ok := res.Resolved[pk]; ok {
				continue
			}
			edgeSups := r.suppliersOf(pk)
			res.Suppliers[pk] = edgeSups
			sups := make([]supplier, len(edgeSups))
			for i, es := range edgeSups {
				sups[i] = supplier{Key: PairKey{es.Pred, es.Query.ID}, Mask: es.Mask}
			}
			suppliers[pk] = sups
			for _, s := range sups {
				consumers[s.Key] = append(consumers[s.Key], pk)
			}
		}
	}

	// Seed with resolutions and propagate to a fixpoint.
	worklist := make([]PairKey, 0, len(res.Resolved))
	for pk, ans := range res.Resolved {
		res.Answers[pk] = ans
		worklist = append(worklist, pk)
	}
	for {
		for len(worklist) > 0 {
			pk := worklist[len(worklist)-1]
			worklist = worklist[:len(worklist)-1]
			for _, c := range consumers[pk] {
				var union AnswerSet
				for _, s := range suppliers[c] {
					union |= res.Answers[s.Key] & s.Mask
				}
				if union != res.Answers[c] {
					res.Answers[c] = union
					worklist = append(worklist, c)
				}
			}
		}
		// A raised pair can end up with an empty answer set when its
		// supplier chain delivers nothing (e.g. the chain was severed by
		// truncation, or it passes only through TRANS-masked summary
		// edges). The paper's rule applies: whatever remains unresolved is
		// UNDEF. Such pairs become resolution sites — their partial
		// supplier information must not constrain restructuring — and the
		// forced answers propagate to their consumers before the rollback
		// finishes.
		var forced []PairKey
		for n, qs := range res.Queries {
			for _, q := range qs {
				pk := PairKey{n, q.ID}
				if res.Answers[pk] == 0 {
					res.Answers[pk] = AnsUndef
					res.Resolved[pk] = AnsUndef
					delete(res.Suppliers, pk)
					forced = append(forced, pk)
				}
			}
		}
		if len(forced) == 0 {
			return
		}
		worklist = forced
	}
}

// suppliersOf recomputes where the answers for an unresolved pair come
// from, mirroring the propagation cases of process().
func (r *run) suppliersOf(pk PairKey) []EdgeSupplier {
	n := r.p.Node(pk.Node)
	q := r.res.queries[pk.Query]
	var sups []EdgeSupplier

	switch n.Kind {
	case ir.NEntry:
		// Unresolved entry pairs are interprocedural normal queries with
		// call-site predecessors.
		for _, m := range n.Preds {
			call := r.p.Node(m)
			sq := r.substEntryLookup(q, call, q.Owner)
			if sq != nil {
				sups = append(sups, EdgeSupplier{Pred: m, Query: sq, Mask: maskAll})
			}
		}

	case ir.NCallExit:
		cv, cp := r.callExitContent(n, q)
		call := r.p.CallPred(n)
		exit := r.p.ExitPred(n)
		if call == nil || exit == nil {
			return nil
		}
		if !r.mustTraverse(n.Callee, cv) {
			if sq := r.lookupQuery(cv, cp, q.Owner); sq != nil {
				sups = append(sups, EdgeSupplier{Pred: call.ID, Query: sq, Mask: maskAll})
			}
			return sups
		}
		key := queryKey{v: cv, op: cp.Op, c: cp.C, owner: int(exit.ID)}
		s := r.sneByKey[key]
		if s == nil {
			return nil
		}
		// Answers resolved inside the callee, minus transparency.
		sups = append(sups, EdgeSupplier{Pred: exit.ID, Query: s.Qsn,
			Mask: maskAll &^ AnsTrans, FromExit: true})
		// Answers flowing across the transparent paths: the entry queries
		// continued at the call node.
		en := r.p.EntrySucc(call)
		for _, qo := range s.Entries[en.ID] {
			cq := r.substEntryLookup(qo, call, q.Owner)
			if cq != nil {
				sups = append(sups, EdgeSupplier{Pred: call.ID, Query: cq, Mask: maskAll})
			}
		}

	default:
		out := r.transfer(n, q)
		if out.resolved {
			// Resolved pairs never reach suppliersOf.
			return nil
		}
		for _, m := range n.Preds {
			sups = append(sups, EdgeSupplier{Pred: m, Query: out.next, Mask: maskAll})
		}
	}
	return sups
}

// substEntryLookup is substEntry without interning: it returns nil when the
// substituted query does not exist (possible only after truncation).
func (r *run) substEntryLookup(q *Query, call *ir.Node, owner *SNE) *Query {
	v := r.p.Vars[q.Var]
	if v.IsGlobal() {
		return r.lookupQuery(q.Var, q.P, owner)
	}
	for i, f := range r.p.Procs[call.Callee].Formals {
		if f == q.Var {
			return r.lookupQuery(call.Args[i], q.P, owner)
		}
	}
	return nil
}

// DuplicationEstimate returns the upper bound on the number of new nodes
// that must be created to isolate the correlated paths of this
// conditional: a node hosting k answers for a query must be split k-ways,
// and the copies needed for multiple queries multiply (paper §3.1). All
// ICFG nodes are counted, including the synthetic assert/join nodes this
// implementation materializes, since splitting duplicates them too; the
// estimate saturates at a large cap to avoid overflow on cross products.
func (r *Result) DuplicationEstimate(p *ir.Program) int {
	// estCap saturates the estimate (deliberately not named cap: a local
	// `cap` would shadow the builtin for the whole function body).
	const estCap = 1 << 30
	est := 0
	for n, qs := range r.Queries {
		if p.Node(n) == nil {
			continue
		}
		copies := 1
		for _, q := range qs {
			if c := r.Answers[PairKey{n, q.ID}].Count(); c > 1 {
				copies *= c
				if copies > estCap {
					copies = estCap
					break
				}
			}
		}
		if copies > 1 {
			est += copies - 1
		}
		if est > estCap {
			return estCap
		}
	}
	return est
}

// EstimatedBenefit estimates the number of dynamic instances of the
// conditional whose outcome is decided, from the execution counts of the
// nodes where queries resolved TRUE or FALSE (the paper's Figure 10
// estimate).
func (r *Result) EstimatedBenefit(execCount map[ir.NodeID]int64) int64 {
	var total int64
	for pk, ans := range r.Resolved {
		if ans&(AnsTrue|AnsFalse) != 0 {
			total += execCount[pk.Node]
		}
	}
	return total
}

// ApproxBytes estimates the memory consumed by the analysis structures
// (queries, pairs, summary node entries), for the Table 2 memory column.
func (r *Result) ApproxBytes() int64 {
	var b int64
	b += int64(len(r.queries)) * 48
	b += int64(r.PairsRaised) * 40 // raised set + worklist entries
	b += int64(len(r.Resolved)) * 24
	b += int64(len(r.Answers)) * 24
	for _, s := range r.snes {
		b += 64
		b += int64(len(s.Waiters)) * 40
		for _, qs := range s.Entries {
			b += 16 + int64(len(qs))*8
		}
	}
	return b
}
