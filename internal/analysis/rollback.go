package analysis

import (
	"icbe/internal/ir"
)

// EdgeSupplier identifies one source of answers for a pair (n, q): the
// answers collected for Query at predecessor Pred, filtered through Mask,
// flow into A[n, q]. Restructuring uses the supplier relation to decide
// which edges still connect nodes hosting a common answer (fix-edges) and
// which answers remain available at a node (Figure 8 line 5).
type EdgeSupplier struct {
	Pred  ir.NodeID
	Query *Query
	Mask  AnswerSet
	// FromExit marks the summary supplier crossing a procedure exit →
	// call-site-exit edge; its TRANS answers stand for the transparent
	// paths whose answers arrive through the call-site predecessor instead.
	FromExit bool
}

// MaskAll passes every answer.
const MaskAll = AnsTrue | AnsFalse | AnsUndef | AnsTrans

const maskAll = MaskAll

// rollback collects the resolved answers along the traversed paths: answers
// propagate forward from their resolution sites and are set-unioned at
// merge points (paper §3.1). The propagation structure mirrors the analysis
// exactly, so the supplier sets are recomputed deterministically.
//
// The relation lives in the run's flat arenas: each unresolved pair owns a
// range of supStore (its suppliers), supSrc holds the supplying pair's ID
// per supplier, and the reverse relation (consumers) is a counted
// offset/store pair built in two passes — no per-pair map or slice
// allocations, and the fixpoint unions read contiguous memory.
func (r *run) rollback() {
	st := r.st
	np := len(st.pairNode)

	// Pass 1: supplier ranges for every unresolved pair, in pair order.
	// Final pairs (restored from a memo record, see memo.go) already carry
	// their recorded supplier ranges and are skipped.
	for pid := 0; pid < np; pid++ {
		if st.pairResolved[pid] || st.pairFinal[pid] {
			continue
		}
		off := int32(len(st.supStore))
		r.appendSuppliersOf(int32(pid))
		st.pairSupOff[pid] = off
		st.pairSupLen[pid] = int32(len(st.supStore)) - off
	}

	// Resolve supplier sources to pair IDs (-1 when the supplying pair was
	// never raised — possible only after truncation severed a chain; such a
	// supplier contributes nothing) and count consumers per source.
	st.consLen = resizeInt32(st.consLen, np)
	for _, es := range st.supStore {
		src := st.findPair(es.Pred, es.Query)
		st.supSrc = append(st.supSrc, src)
		if src >= 0 {
			st.consLen[src]++
		}
	}
	st.consOff = resizeInt32(st.consOff, np)
	total := int32(0)
	for pid := 0; pid < np; pid++ {
		st.consOff[pid] = total
		total += st.consLen[pid]
		st.consLen[pid] = 0 // refilled as the cursor in pass 2
	}
	if cap(st.consStore) < int(total) {
		st.consStore = make([]int32, total)
	}
	st.consStore = st.consStore[:total]
	for pid := 0; pid < np; pid++ {
		if st.pairResolved[pid] {
			continue
		}
		off, ln := st.pairSupOff[pid], st.pairSupLen[pid]
		for i := off; i < off+ln; i++ {
			if src := st.supSrc[i]; src >= 0 {
				st.consStore[st.consOff[src]+st.consLen[src]] = int32(pid)
				st.consLen[src]++
			}
		}
	}

	// Seed with resolutions and propagate to a fixpoint. Final pairs seed
	// as settled sources: their restored answer sets flow to any fresh
	// consumers, but the fixpoint never recomputes them.
	wl := st.scratch[:0]
	for pid := 0; pid < np; pid++ {
		if st.pairResolved[pid] {
			st.pairAns[pid] = st.pairRes[pid]
			wl = append(wl, int32(pid))
		} else if st.pairFinal[pid] {
			wl = append(wl, int32(pid))
		}
	}
	for {
		for len(wl) > 0 {
			pid := wl[len(wl)-1]
			wl = wl[:len(wl)-1]
			coff, cln := st.consOff[pid], st.consLen[pid]
			for _, c := range st.consStore[coff : coff+cln] {
				if st.pairFinal[c] {
					continue
				}
				var union AnswerSet
				off, ln := st.pairSupOff[c], st.pairSupLen[c]
				for i := off; i < off+ln; i++ {
					if src := st.supSrc[i]; src >= 0 {
						union |= st.pairAns[src] & st.supStore[i].Mask
					}
				}
				if union != st.pairAns[c] {
					st.pairAns[c] = union
					wl = append(wl, c)
				}
			}
		}
		// A raised pair can end up with an empty answer set when its
		// supplier chain delivers nothing (e.g. the chain was severed by
		// truncation, or it passes only through TRANS-masked summary
		// edges). The paper's rule applies: whatever remains unresolved is
		// UNDEF. Such pairs become resolution sites — their partial
		// supplier information must not constrain restructuring, so their
		// published suppliers are withdrawn (the fixpoint keeps using the
		// relation internally) — and the forced answers propagate to their
		// consumers before the rollback finishes.
		forced := wl[:0]
		for pid := 0; pid < np; pid++ {
			if st.pairAns[pid] == 0 {
				st.pairAns[pid] = AnsUndef
				st.resolvePair(int32(pid), AnsUndef)
				st.pairSupDeleted[pid] = true
				forced = append(forced, int32(pid))
			}
		}
		if len(forced) == 0 {
			st.scratch = wl[:0]
			return
		}
		wl = forced
	}
}

func resizeInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// appendSuppliersOf recomputes where the answers for an unresolved pair
// come from, mirroring the propagation cases of process(), and appends them
// to the supplier arena.
func (r *run) appendSuppliersOf(pid int32) {
	st := r.st
	n := r.p.Node(st.pairNode[pid])
	q := st.queries[st.pairQ[pid]]

	switch n.Kind {
	case ir.NEntry:
		// Unresolved entry pairs are interprocedural normal queries with
		// call-site predecessors.
		for _, m := range n.Preds {
			call := r.p.Node(m)
			if sq := r.substEntryLookup(q, call, q.Owner); sq != nil {
				st.supStore = append(st.supStore, EdgeSupplier{Pred: m, Query: sq, Mask: maskAll})
			}
		}

	case ir.NCallExit:
		cv, cp, viaRet := r.callExitContent(n, q)
		call := r.idx.CallPred(n.ID)
		exit := r.idx.ExitPred(n.ID)
		if call == ir.NoNode || exit == ir.NoNode {
			return
		}
		if !r.mustTraverse(n.Callee, cv, viaRet) {
			if sq := r.lookupQuery(cv, cp, q.Owner); sq != nil {
				st.supStore = append(st.supStore, EdgeSupplier{Pred: call, Query: sq, Mask: maskAll})
			}
			return
		}
		s := st.findSNE(exit, cv, cp)
		if s == nil {
			return
		}
		// Answers resolved inside the callee, minus transparency.
		st.supStore = append(st.supStore, EdgeSupplier{Pred: exit, Query: s.Qsn,
			Mask: maskAll &^ AnsTrans, FromExit: true})
		// Answers flowing across the transparent paths: the entry queries
		// continued at the call node.
		en := r.idx.EntrySucc(call)
		callNode := r.p.Node(call)
		for _, qo := range s.EntriesAt(en) {
			if cq := r.substEntryLookup(qo, callNode, q.Owner); cq != nil {
				st.supStore = append(st.supStore, EdgeSupplier{Pred: call, Query: cq, Mask: maskAll})
			}
		}

	default:
		out := r.transfer(n, q)
		if out.resolved {
			// Resolved pairs never reach appendSuppliersOf.
			return
		}
		for _, m := range n.Preds {
			st.supStore = append(st.supStore, EdgeSupplier{Pred: m, Query: out.next, Mask: maskAll})
		}
	}
}

// substEntryLookup is substEntry without interning: it returns nil when the
// substituted query does not exist (possible only after truncation).
func (r *run) substEntryLookup(q *Query, call *ir.Node, owner *SNE) *Query {
	v := r.p.Vars[q.Var]
	if v.IsGlobal() {
		return r.lookupQuery(q.Var, q.P, owner)
	}
	for i, f := range r.p.Procs[call.Callee].Formals {
		if f == q.Var {
			return r.lookupQuery(call.Args[i], q.P, owner)
		}
	}
	return nil
}

// DuplicationEstimate returns the upper bound on the number of new nodes
// that must be created to isolate the correlated paths of this
// conditional: a node hosting k answers for a query must be split k-ways,
// and the copies needed for multiple queries multiply (paper §3.1). All
// ICFG nodes are counted, including the synthetic assert/join nodes this
// implementation materializes, since splitting duplicates them too; the
// estimate saturates at a large cap to avoid overflow on cross products.
func (r *Result) DuplicationEstimate(p *ir.Program) int {
	// estCap saturates the estimate (deliberately not named cap: a local
	// `cap` would shadow the builtin for the whole function body).
	const estCap = 1 << 30
	st := r.st
	est := 0
	for _, n := range st.visited {
		if p.Node(n) == nil {
			continue
		}
		copies := 1
		for _, pid := range st.nodePair[n] {
			if c := st.pairAns[pid].Count(); c > 1 {
				copies *= c
				if copies > estCap {
					copies = estCap
					break
				}
			}
		}
		if copies > 1 {
			est += copies - 1
		}
		if est > estCap {
			return estCap
		}
	}
	return est
}

// EstimatedBenefit estimates the number of dynamic instances of the
// conditional whose outcome is decided, from the execution counts of the
// nodes where queries resolved TRUE or FALSE (the paper's Figure 10
// estimate).
func (r *Result) EstimatedBenefit(execCount map[ir.NodeID]int64) int64 {
	st := r.st
	var total int64
	for pid := range st.pairNode {
		if st.pairResolved[pid] && st.pairRes[pid]&(AnsTrue|AnsFalse) != 0 {
			total += execCount[st.pairNode[pid]]
		}
	}
	return total
}

// ApproxBytes estimates the memory consumed by the analysis structures
// (queries, pairs, summary node entries), for the Table 2 memory column.
// The per-entry constants mirror what the seed's map-based representation
// charged, so the Table 2 memory column stays comparable across versions.
func (r *Result) ApproxBytes() int64 {
	st := r.st
	var b int64
	b += int64(len(st.queries)) * 48
	b += int64(r.PairsRaised) * 40 // raised set + worklist entries
	resolved := 0
	for pid := range st.pairNode {
		if st.pairResolved[pid] {
			resolved++
		}
	}
	b += int64(resolved) * 24
	b += int64(len(st.pairNode)) * 24
	for _, s := range st.snes {
		b += 64
		b += int64(len(s.Waiters)) * 40
		for i := range s.entries {
			b += 16 + int64(len(s.entries[i].qs))*8
		}
	}
	return b
}
