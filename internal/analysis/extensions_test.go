package analysis

import (
	"testing"

	"icbe/internal/ir"
	"icbe/internal/pred"
)

func TestCorrelationSourcesClassification(t *testing.T) {
	p := build(t, `
		func main() {
			var a = input();
			if (a > 0) { print(1); } else { return; }
			var b = byte(input());
			var q = alloc(2);
			var d = input();
			var l = d[0];
			print(l);
			var x = 0;
			if (a > 0) { x = 1; }      // branch-correlated: always taken
			if (b == -1) { print(9); } // byte-correlated: never
			if (q == 0) { print(9); }  // alloc-correlated: never
			if (d == 0) { print(9); }  // deref-correlated: never
			if (x == 1) { print(x); }  // constant-correlated (partially)
		}
	`)
	cases := []struct {
		varSuffix string
		op        pred.Op
		c         int64
		want      SourceKind
	}{
		{"b", pred.Eq, -1, SrcByte},
		{"q", pred.Eq, 0, SrcAlloc},
		{"d", pred.Eq, 0, SrcDeref},
		{"x", pred.Eq, 1, SrcConstant},
	}
	for _, tc := range cases {
		b := findBranch(t, p, tc.varSuffix, tc.op, tc.c)
		res := analyze(t, p, b, inter())
		srcs := res.CorrelationSources(p)
		found := false
		for _, s := range srcs {
			if s.Kind == tc.want {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no %v source in %+v", tc.varSuffix, tc.want, srcs)
		}
	}
}

func TestCorrelationSourcesBranchHint(t *testing.T) {
	p := build(t, `
		func main() {
			var a = input();
			if (a > 0) { print(1); }
			if (a > 0) { print(2); }
		}
	`)
	var first, second *ir.Node
	p.LiveNodes(func(n *ir.Node) {
		if n.Kind != ir.NBranch {
			return
		}
		if first == nil || n.ID < first.ID {
			second = first
			first = n
		} else {
			second = n
		}
	})
	res := analyze(t, p, second, inter())
	srcs := res.CorrelationSources(p)
	hinted := false
	for _, s := range srcs {
		if s.Kind == SrcBranch {
			if s.Branch != first.ID {
				t.Errorf("prediction hint points at branch %d, want %d", s.Branch, first.ID)
			}
			if !s.SameProc {
				t.Error("source should be intraprocedural here")
			}
			hinted = true
		}
	}
	if !hinted {
		t.Errorf("no branch prediction hint in %+v", srcs)
	}
}

func TestCorrelationSourcesInterprocedural(t *testing.T) {
	p := build(t, `
		func get() {
			if (input() > 0) { return 0; }
			return 7;
		}
		func main() {
			var r = get();
			if (r == 0) { print(1); }
		}
	`)
	b := findBranch(t, p, "r", pred.Eq, 0)
	res := analyze(t, p, b, inter())
	interSrcs := 0
	for _, s := range res.CorrelationSources(p) {
		if !s.SameProc {
			interSrcs++
			if s.Kind != SrcConstant {
				t.Errorf("source kind = %v, want constant returns", s.Kind)
			}
		}
	}
	if interSrcs != 2 {
		t.Errorf("interprocedural sources = %d, want 2 (both returns)", interSrcs)
	}
}

func TestInliningPriorities(t *testing.T) {
	p := build(t, `
		func classify(v) {
			if (v == 0) { return 0; }
			return 1;
		}
		func unrelated(v) { return v * 2; }
		func main() {
			var i = 0;
			while (i < 10) {
				var k = classify(input());
				if (k == 0) { print(0); } else { print(1); }
				var u = unrelated(i);
				i = i + u - u + 1;
			}
		}
	`)
	pris := InliningPriorities(p, DefaultOptions(), nil)
	if len(pris) == 0 {
		t.Fatal("no priorities computed")
	}
	if pris[0].Name != "classify" {
		t.Errorf("top priority = %s, want classify (%+v)", pris[0].Name, pris)
	}
	for _, pp := range pris {
		if pp.Name == "unrelated" {
			t.Error("unrelated procedure should generate no correlation credit")
		}
	}
	if pris[0].Conds == 0 || pris[0].Weight == 0 {
		t.Errorf("empty scores: %+v", pris[0])
	}
}

func TestInliningPrioritiesWithProfile(t *testing.T) {
	p := build(t, `
		func hot() {
			if (input() > 0) { return 0; }
			return 1;
		}
		func cold() {
			if (input() > 5) { return 0; }
			return 1;
		}
		func main() {
			var i = 0;
			while (i < 100) {
				var h = hot();
				if (h == 0) { print(1); }
				i = i + 1;
			}
			var c = cold();
			if (c == 0) { print(2); }
		}
	`)
	// Build a synthetic profile favoring hot's resolution sites.
	exec := map[ir.NodeID]int64{}
	hot := p.ProcByName("hot")
	cold := p.ProcByName("cold")
	p.LiveNodes(func(n *ir.Node) {
		switch n.Proc {
		case hot.Index:
			exec[n.ID] = 100
		case cold.Index:
			exec[n.ID] = 1
		}
	})
	pris := InliningPriorities(p, DefaultOptions(), exec)
	if len(pris) < 2 {
		t.Fatalf("priorities = %+v", pris)
	}
	if pris[0].Name != "hot" || pris[1].Name != "cold" {
		t.Errorf("profile-weighted order wrong: %+v", pris)
	}
	if pris[0].Weight <= pris[1].Weight {
		t.Errorf("weights not ordered: %+v", pris)
	}
}

func TestSourceKindString(t *testing.T) {
	kinds := []SourceKind{SrcConstant, SrcBranch, SrcByte, SrcDeref, SrcAlloc, SrcOther}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", int(k))
		}
	}
}
