package analysis

import "icbe/internal/ir"

// ModSets computes, for every procedure, the set of global variables the
// procedure may modify directly or through the procedures it calls
// (Cooper/Kennedy-style MOD summary information, which the paper's
// intraprocedural optimization consults at call sites).
//
// The result maps procedure index → set of global VarIDs.
func ModSets(p *ir.Program) []map[ir.VarID]bool {
	n := len(p.Procs)
	direct := make([]map[ir.VarID]bool, n)
	calls := make([][]int, n) // call graph edges: proc → callees
	for i := 0; i < n; i++ {
		direct[i] = make(map[ir.VarID]bool)
	}
	p.LiveNodes(func(nd *ir.Node) {
		switch nd.Kind {
		case ir.NAssign:
			if nd.Dst != ir.NoVar && p.Vars[nd.Dst].IsGlobal() {
				direct[nd.Proc][nd.Dst] = true
			}
		case ir.NCallExit:
			if nd.Dst != ir.NoVar && p.Vars[nd.Dst].IsGlobal() {
				direct[nd.Proc][nd.Dst] = true
			}
		case ir.NCall:
			calls[nd.Proc] = append(calls[nd.Proc], nd.Callee)
		}
	})

	// Transitive closure over the call graph: iterate to a fixpoint
	// (programs are small; a simple round-robin loop suffices and is easy
	// to verify).
	changed := true
	for changed {
		changed = false
		for caller := 0; caller < n; caller++ {
			for _, callee := range calls[caller] {
				for g := range direct[callee] {
					if !direct[caller][g] {
						direct[caller][g] = true
						changed = true
					}
				}
			}
		}
	}
	return direct
}
