package analysis

import (
	"sort"
	"sync"
	"unsafe"

	"icbe/internal/ir"
	"icbe/internal/pred"
)

// Summary-node memoization.
//
// The closure computed for a summary node entry — the set of (node, query)
// pairs raised on behalf of the SNE's summary query, their resolutions, and
// the entry nodes the query reached — depends only on the program and on the
// SNE's identity (exit node + query content). It is independent of which
// conditional demanded it. Different conditionals in the same program
// routinely cross the same call sites with the same query contents (the
// paper's Figure 8 programs re-derive the same summaries for every
// elimination candidate), so the driver re-propagates identical closures
// over and over.
//
// A SummaryMemo records each completed closure keyed by (exit, content) and
// replays it into later runs: the replayed pairs are interned and resolved
// exactly as a fresh propagation would have left them, and each replayed
// pair counts as one pair raised and one pair processed, so a replayed
// analysis is pair-for-pair identical to a fresh one — same answers, same
// supplier structure, same counters. Only closures from untruncated runs
// are recorded (a truncated closure is incomplete and must not stand in for
// a complete one).
//
// Invalidation contract: a record lists the nodes its closure consulted
// (`touched`) — the nodes its pairs sit on, the call/exit/entry linkage
// nodes crossed at nested call sites, and, transitively, everything its
// nested summaries touched. After mutating the program the owner must drop
// every record whose touched set intersects the modified region; the
// optimization driver does this once per round via Commit(dirty), using the
// same dirty set that decides which conditionals to re-analyze. Records
// pending since the last Commit are not replayed from (the driver's workers
// analyze concurrently against a frozen per-round view, which keeps results
// independent of worker count and scheduling); an Analyzer created with New
// owns an auto-committing memo instead, appropriate for serial use on an
// unchanging program.
//
// The contract guarantees a structural invariant the replay path relies on:
// a committed record's nested summaries are always themselves committed.
// Records recorded in the same run commit or die together (the parent's
// touched set contains each nested record's), and two committed records for
// the same key on the same program revision describe the same closure, so
// deleting a nested record always deletes its parents too.
type SummaryMemo struct {
	mu         sync.RWMutex
	autoCommit bool
	committed  map[memoKey]*memoRecord
	pending    []*memoRecord
	// pristine snapshots the records staged before the first Commit: they
	// were computed against the unmodified input program, so they are the
	// only records safe to persist and replay into a fresh compile of the
	// same program (later rounds reference restructure-created nodes). See
	// ExportPristine in persist.go.
	pristine []*memoRecord
	frozen   bool
	hits     int64
	bytes    int64
}

// memoKey identifies a summary node entry across runs: the procedure exit
// and the summary query's content.
type memoKey struct {
	exit ir.NodeID
	v    ir.VarID
	op   pred.Op
	c    int64
}

// memoPair is one recorded closure pair, in raise order.
type memoPair struct {
	node     ir.NodeID
	v        ir.VarID
	p        pred.Pred
	resolved bool
	ans      AnswerSet
}

// memoArrival is one summary query that reached a procedure entry.
type memoArrival struct {
	entry ir.NodeID
	v     ir.VarID
	p     pred.Pred
}

type memoRecord struct {
	key      memoKey
	pairs    []memoPair
	arrivals []memoArrival
	nested   []memoKey   // keys of the summaries this closure waited on
	touched  []ir.NodeID // sorted invalidation set
	// injected marks records loaded from a persisted store (Inject) rather
	// than computed by this process; they are excluded from ExportPristine
	// so a warm process never re-persists what it read.
	injected bool
}

func newSummaryMemo(autoCommit bool) *SummaryMemo {
	return &SummaryMemo{autoCommit: autoCommit, committed: make(map[memoKey]*memoRecord)}
}

// NewSummaryMemo creates an empty memo with caller-managed commit points,
// for sharing across the analyzers a driver creates round after round.
func NewSummaryMemo() *SummaryMemo { return newSummaryMemo(false) }

func (m *SummaryMemo) lookup(k memoKey) *memoRecord {
	m.mu.RLock()
	rec := m.committed[k]
	m.mu.RUnlock()
	return rec
}

func (m *SummaryMemo) hit() {
	m.mu.Lock()
	m.hits++
	m.mu.Unlock()
}

// record accepts the records of one completed run. Auto-committing memos
// publish them immediately (first record for a key wins; concurrent runs on
// the same unmodified program produce identical closures, so the race is
// benign); otherwise they stage until the next Commit.
func (m *SummaryMemo) record(recs []*memoRecord) {
	if len(recs) == 0 {
		return
	}
	m.mu.Lock()
	if m.autoCommit {
		for _, rec := range recs {
			if _, ok := m.committed[rec.key]; ok {
				continue
			}
			m.committed[rec.key] = rec
			m.bytes += rec.footprint()
		}
	} else {
		m.pending = append(m.pending, recs...)
	}
	m.mu.Unlock()
}

// Commit publishes the records staged since the last Commit and drops every
// record — staged or committed — whose touched set intersects dirty (the
// nodes modified since those records were made). The driver calls it once
// per optimization round, after applying that round's transformations.
func (m *SummaryMemo) Commit(dirty map[ir.NodeID]bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.frozen {
		// First Commit: everything staged so far was computed against the
		// pristine input program (the dirty set may invalidate some of it
		// for THIS run's mutated program, but not for a fresh compile of the
		// same source). Injected records came from a store, not this run.
		m.frozen = true
		for _, rec := range m.pending {
			if !rec.injected {
				m.pristine = append(m.pristine, rec)
			}
		}
	}
	if len(dirty) > 0 {
		for k, rec := range m.committed {
			if rec.touchesDirty(dirty) {
				delete(m.committed, k)
				m.bytes -= rec.footprint()
			}
		}
	}
	for _, rec := range m.pending {
		if _, ok := m.committed[rec.key]; ok {
			continue
		}
		if len(dirty) > 0 && rec.touchesDirty(dirty) {
			continue
		}
		m.committed[rec.key] = rec
		m.bytes += rec.footprint()
	}
	m.pending = m.pending[:0]
}

// Entries returns the number of committed records.
func (m *SummaryMemo) Entries() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.committed)
}

// Hits returns the number of summary replays served so far.
func (m *SummaryMemo) Hits() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.hits
}

// Bytes estimates the memory held by the committed records.
func (m *SummaryMemo) Bytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.bytes
}

func (rec *memoRecord) footprint() int64 {
	b := int64(unsafe.Sizeof(*rec))
	b += int64(len(rec.pairs)) * int64(unsafe.Sizeof(memoPair{}))
	b += int64(len(rec.arrivals)) * int64(unsafe.Sizeof(memoArrival{}))
	b += int64(len(rec.nested)) * int64(unsafe.Sizeof(memoKey{}))
	b += int64(len(rec.touched)) * int64(unsafe.Sizeof(ir.NodeID(0)))
	b += mapEntryFootprint(int64(unsafe.Sizeof(memoKey{})) + int64(unsafe.Sizeof((*memoRecord)(nil))))
	return b
}

func (rec *memoRecord) touchesDirty(dirty map[ir.NodeID]bool) bool {
	for _, n := range rec.touched {
		if dirty[n] {
			return true
		}
	}
	return false
}

// replaySNE reconstructs a summary node entry from a memo record, exactly
// as a fresh propagation would have left it: the closure pairs are interned
// and resolved in recorded raise order (each counting as raised and
// processed), the entry arrivals are re-registered, and nested summaries
// are replayed first. Returns nil — and the caller computes fresh — if a
// nested summary is unavailable; the commit contract makes that
// unreachable, but a fresh computation is always a correct substitute.
func (r *run) replaySNE(rec *memoRecord) *SNE {
	st := r.st
	for _, nk := range rec.nested {
		if st.findSNE(nk.exit, nk.v, pred.Pred{Op: nk.op, C: nk.c}) != nil {
			continue
		}
		if r.a.memo.lookup(nk) == nil {
			return nil
		}
	}
	s := st.newSNE(rec.key.exit)
	s.replayed = true
	s.rec = rec
	s.Qsn = st.intern(rec.key.v, pred.Pred{Op: rec.key.op, C: rec.key.c}, s)
	for _, nk := range rec.nested {
		np := pred.Pred{Op: nk.op, C: nk.c}
		if st.findSNE(nk.exit, nk.v, np) != nil {
			continue
		}
		// Registered-before-recursing (s is already in st.snes), so mutually
		// recursive summaries terminate: the recursive replay finds s.
		if nrec := r.a.memo.lookup(nk); nrec != nil && r.replaySNE(nrec) != nil {
			continue
		}
		// Degraded path (unreachable under the commit contract): raise the
		// nested summary for fresh propagation.
		ns := st.newSNE(nk.exit)
		ns.Qsn = st.intern(nk.v, np, ns)
		r.raise(nk.exit, ns.Qsn)
	}
	for i := range rec.pairs {
		mp := &rec.pairs[i]
		q := st.intern(mp.v, mp.p, s)
		pid := st.addPair(mp.node, q)
		if mp.resolved {
			st.resolvePair(pid, mp.ans)
		}
		// A replayed pair stands for one raise and one processing step of
		// the recorded run, keeping the cost counters — and with them the
		// termination-limit behavior of callers that bound PairsProcessed —
		// identical to a fresh computation.
		r.res.PairsRaised++
		r.res.PairsProcessed++
	}
	for i := range rec.arrivals {
		ar := &rec.arrivals[i]
		if q := st.lookupIntern(ar.v, ar.p, s); q != nil {
			s.addEntry(ar.entry, q)
		}
	}
	r.res.MemoHits++
	r.a.memo.hit()
	return s
}

// recordSNEs extracts memo records for every summary computed fresh in this
// (untruncated) run and hands them to the memo.
func (r *run) recordSNEs() {
	st := r.st
	recs := make([]*memoRecord, len(st.snes))
	any := false
	for i, s := range st.snes {
		if s.replayed || s.Qsn == nil {
			continue
		}
		recs[i] = &memoRecord{key: memoKey{exit: s.Exit, v: s.Qsn.Var, op: s.Qsn.P.Op, c: s.Qsn.P.C}}
		any = true
	}
	if !any {
		return
	}
	// One pass over the pairs assigns each SNE its closure, in raise order.
	for pid := range st.pairNode {
		q := st.queries[st.pairQ[pid]]
		if q.Owner == nil || recs[q.Owner.ID] == nil {
			continue
		}
		mp := memoPair{node: st.pairNode[pid], v: q.Var, p: q.P}
		if st.pairResolved[pid] {
			mp.resolved, mp.ans = true, st.pairRes[pid]
		}
		recs[q.Owner.ID].pairs = append(recs[q.Owner.ID].pairs, mp)
	}
	// Arrivals, nested keys, and the direct invalidation sets. Query
	// contents are copied out — records must not retain pooled *Query or
	// *SNE pointers.
	touched := make([]map[ir.NodeID]struct{}, len(st.snes))
	for i, s := range st.snes {
		rec := recs[i]
		if rec == nil {
			continue
		}
		for _, e := range s.entries {
			for _, q := range e.qs {
				rec.arrivals = append(rec.arrivals, memoArrival{entry: e.entry, v: q.Var, p: q.P})
			}
		}
		for _, d := range s.deps {
			rec.nested = append(rec.nested, memoKey{exit: d.Exit, v: d.Qsn.Var, op: d.Qsn.P.Op, c: d.Qsn.P.C})
		}
		set := make(map[ir.NodeID]struct{}, len(rec.pairs)+len(s.linkNodes))
		for _, mp := range rec.pairs {
			set[mp.node] = struct{}{}
		}
		for _, ln := range s.linkNodes {
			set[ln] = struct{}{}
		}
		if s.replayedDepTouched(set) {
			// replayed deps contributed already; nothing else to do here
		}
		touched[i] = set
	}
	// Transitive closure over fresh deps (iterate to a fixed point; SNE
	// dependency graphs are tiny and almost always acyclic).
	for changed := true; changed; {
		changed = false
		for i, s := range st.snes {
			if recs[i] == nil {
				continue
			}
			set := touched[i]
			before := len(set)
			for _, d := range s.deps {
				if d.replayed {
					continue // folded in by replayedDepTouched
				}
				if ds := touched[d.ID]; ds != nil {
					for n := range ds {
						set[n] = struct{}{}
					}
				}
			}
			if len(set) != before {
				changed = true
			}
		}
	}
	out := recs[:0]
	for i, rec := range recs {
		if rec == nil {
			continue
		}
		rec.touched = make([]ir.NodeID, 0, len(touched[i]))
		for n := range touched[i] {
			rec.touched = append(rec.touched, n)
		}
		sort.Slice(rec.touched, func(a, b int) bool { return rec.touched[a] < rec.touched[b] })
		out = append(out, rec)
	}
	r.a.memo.record(out)
}

// replayedDepTouched folds the (already final) touched sets of replayed
// dependencies into set, returning whether it added anything.
func (s *SNE) replayedDepTouched(set map[ir.NodeID]struct{}) bool {
	added := false
	for _, d := range s.deps {
		if !d.replayed {
			continue
		}
		for _, n := range d.rec.touched {
			if _, ok := set[n]; !ok {
				set[n] = struct{}{}
				added = true
			}
		}
	}
	return added
}
