package analysis

import (
	"sort"
	"sync"
	"unsafe"

	"icbe/internal/ir"
	"icbe/internal/pred"
)

// Summary-node memoization.
//
// The closure computed for a summary node entry — the set of (node, query)
// pairs raised on behalf of the SNE's summary query, their resolutions, and
// the entry nodes the query reached — depends only on the program and on the
// SNE's identity (exit node + query content). It is independent of which
// conditional demanded it. Different conditionals in the same program
// routinely cross the same call sites with the same query contents (the
// paper's Figure 8 programs re-derive the same summaries for every
// elimination candidate), so the driver re-propagates identical closures
// over and over.
//
// A SummaryMemo records each completed closure keyed by (exit, content) and
// replays it into later runs: the replayed pairs are interned and resolved
// exactly as a fresh propagation would have left them, and each replayed
// pair counts as one pair raised and one pair processed, so a replayed
// analysis is pair-for-pair identical to a fresh one — same answers, same
// supplier structure, same counters. Only closures from untruncated runs
// are recorded (a truncated closure is incomplete and must not stand in for
// a complete one).
//
// Invalidation contract: a record lists the nodes its closure consulted
// (`touched`) — the nodes its pairs sit on, the call/exit/entry linkage
// nodes crossed at nested call sites, and, transitively, everything its
// nested summaries touched. After mutating the program the owner must drop
// every record whose touched set intersects the modified region; the
// optimization driver does this once per round via Commit(dirty), using the
// same dirty set that decides which conditionals to re-analyze. Records
// pending since the last Commit are not replayed from (the driver's workers
// analyze concurrently against a frozen per-round view, which keeps results
// independent of worker count and scheduling); an Analyzer created with New
// owns an auto-committing memo instead, appropriate for serial use on an
// unchanging program.
//
// The contract guarantees a structural invariant the replay path relies on:
// a committed record's nested summaries are always themselves committed.
// Records recorded in the same run commit or die together (the parent's
// touched set contains each nested record's), and two committed records for
// the same key on the same program revision describe the same closure, so
// deleting a nested record always deletes its parents too.
type SummaryMemo struct {
	mu         sync.RWMutex
	autoCommit bool
	committed  map[memoKey]*memoRecord
	pending    []*memoRecord
	// roots holds the committed root-closure records: the top-level
	// (owner-less) part of one conditional's analysis, cached across apply
	// rounds under the same commit/invalidation discipline as the summary
	// records. pendingRoots stages them between Commits. See the
	// root-record commentary further down.
	roots        map[rootKey]*rootRecord
	pendingRoots []*rootRecord
	// pristine snapshots the records staged before the first Commit: they
	// were computed against the unmodified input program, so they are the
	// only records safe to persist and replay into a fresh compile of the
	// same program (later rounds reference restructure-created nodes). See
	// ExportPristine in persist.go. Root records are process-local and
	// never persisted (their rolled-back payload is cheap to recompute and
	// their validity is bound to this process's apply sequence).
	pristine []*memoRecord
	frozen   bool
	hits     int64
	// invalidated counts cached subtrees (summary and root records) that a
	// Commit dropped because their recorded region intersected the round's
	// dirty set — the driver's SubtreesInvalidated counter.
	invalidated int64
	bytes       int64
}

// memoKey identifies a summary node entry across runs: the procedure exit
// and the summary query's content.
type memoKey struct {
	exit ir.NodeID
	v    ir.VarID
	op   pred.Op
	c    int64
}

// memoPair is one recorded closure pair, in raise order. Beyond the
// propagation-phase resolution, records made by this process also carry the
// pair's rolled-back answer set and (for unresolved pairs) its supplier
// range in the record's supplier arena, so replay can restore the complete
// post-rollback state of the closure and the global rollback can skip it.
type memoPair struct {
	node     ir.NodeID
	v        ir.VarID
	p        pred.Pred
	resolved bool
	ans      AnswerSet
	rolled   AnswerSet
	supOff   int32
	supLen   int32
}

// memoSupplier is one recorded edge supplier in portable form: the supplying
// predecessor, the supplier query's content, and which closure owns that
// query — ownerRef 0 is the record's own closure (the SNE itself, or the
// top level for root records) and k>0 is the record's k-th nested/dep
// summary (whose Qsn is the exit supplier's query).
type memoSupplier struct {
	pred     ir.NodeID
	v        ir.VarID
	p        pred.Pred
	ownerRef int32
	mask     AnswerSet
	fromExit bool
}

// memoArrival is one summary query that reached a procedure entry.
type memoArrival struct {
	entry ir.NodeID
	v     ir.VarID
	p     pred.Pred
}

type memoRecord struct {
	key      memoKey
	pairs    []memoPair
	arrivals []memoArrival
	nested   []memoKey      // keys of the summaries this closure waited on
	sups     []memoSupplier // supplier arena referenced by pairs' supOff/supLen
	touched  []ir.NodeID    // sorted invalidation set
	// hasRolled marks records whose pairs carry rolled-back answers and
	// suppliers, letting replay restore the closure's complete post-rollback
	// state; records injected from a persisted store lack them (the wire
	// format carries only the propagation closure) and are replayed with a
	// fresh rollback instead.
	hasRolled bool
	// injected marks records loaded from a persisted store (Inject) rather
	// than computed by this process; they are excluded from ExportPristine
	// so a warm process never re-persists what it read.
	injected bool
}

// Root-closure records.
//
// The driver requeues a conditional whenever an applied restructuring dirties
// any node its analysis visited. Before root records, a requeue discarded the
// entire result and the next round re-derived everything from scratch, even
// though the dirty region is usually confined to one procedure's interior:
// the summary memo salvages the untouched callee closures, but the top-level
// (owner-less) part of the analysis — typically the caller-side bulk of a
// deep interprocedural query — was re-propagated every time.
//
// A rootRecord caches exactly that top-level part, keyed by the conditional
// and its predicate content. Its `touched` set holds only the nodes the
// top-level closure itself consulted (its pair nodes plus the call/exit/entry
// linkage nodes crossed at traversed call sites) — NOT the interiors of the
// summaries it waited on. That decomposition is the point: a requeue implies
// some visited node is dirty, so a record whose validity covered the whole
// visited region would never survive its own requeue. With the split, a
// restructuring inside a callee invalidates that callee's summary records
// while the conditional's root record stays committed, and the next round
// replays the top level, re-derives (or memo-replays) the summaries, and
// revalidates the stitching:
//
//   - every MOD-based traverse/skip decision the top level made must decide
//     the same way against the current program (MOD sets can shrink when
//     restructuring kills nodes, flipping a decision without dirtying any
//     node the record touched);
//   - every summary the top level waited on must reproduce the recorded
//     entry-arrival set (arrivals decide which continuation queries the top
//     level raises, so a changed arrival set changes the top closure).
//
// If validation fails the record is simply not used and the analysis runs
// fresh — replay is an optimization, never a requirement. When additionally
// every dep summary was itself restored with rolled-back answers and its
// exit answer matches the recorded one, the top level's rolled-back answers
// and suppliers are restored too and the global rollback skips the whole
// result (the near-constant-time repeat-query path).
type rootKey struct {
	cond ir.NodeID
	v    ir.VarID
	op   pred.Op
	c    int64
}

// rootDep records one summary the top-level closure waited on, with the
// entry-arrival set (sorted) replay must revalidate and the rolled-back
// answer at the summary's exit that gates answer restoration.
type rootDep struct {
	key      memoKey
	arrivals []memoArrival
	exitAns  AnswerSet
}

// modCheck records one MOD-based traverse/skip decision of the top-level
// closure; replay re-asks mustTraverse and falls back to a fresh analysis on
// any flip.
type modCheck struct {
	callee int32
	v      ir.VarID
	viaRet bool
	must   bool
}

type rootRecord struct {
	key       rootKey
	pairs     []memoPair
	sups      []memoSupplier
	deps      []rootDep
	modChecks []modCheck
	touched   []ir.NodeID // sorted: top-level pair nodes + linkage nodes only
	hasRolled bool
}

func newSummaryMemo(autoCommit bool) *SummaryMemo {
	return &SummaryMemo{autoCommit: autoCommit,
		committed: make(map[memoKey]*memoRecord),
		roots:     make(map[rootKey]*rootRecord)}
}

// NewSummaryMemo creates an empty memo with caller-managed commit points,
// for sharing across the analyzers a driver creates round after round.
func NewSummaryMemo() *SummaryMemo { return newSummaryMemo(false) }

// NewAutoCommitMemo creates an empty memo that publishes each record the
// moment its analysis completes, with no commit points. It is for serial
// callers analyzing an unchanging program — the pool worker's shard loop —
// where later conditionals should replay earlier ones' summaries immediately
// and ExportPristine must return everything recorded (an auto-commit memo is
// never frozen, so the unfrozen export path sees committed and pending
// records alike).
func NewAutoCommitMemo() *SummaryMemo { return newSummaryMemo(true) }

func (m *SummaryMemo) lookup(k memoKey) *memoRecord {
	m.mu.RLock()
	rec := m.committed[k]
	m.mu.RUnlock()
	return rec
}

// lookupRoot returns the committed root record for a conditional, or nil.
// Like summary lookups it reads only the committed (round-frozen) view, so
// concurrent driver workers see the same records regardless of scheduling.
func (m *SummaryMemo) lookupRoot(k rootKey) *rootRecord {
	m.mu.RLock()
	rr := m.roots[k]
	m.mu.RUnlock()
	return rr
}

// recordRoot accepts one completed conditional's root record, published
// immediately for auto-committing memos and staged until Commit otherwise.
func (m *SummaryMemo) recordRoot(rr *rootRecord) {
	m.mu.Lock()
	if m.autoCommit {
		if _, ok := m.roots[rr.key]; !ok {
			m.roots[rr.key] = rr
			m.bytes += rr.footprint()
		}
	} else {
		m.pendingRoots = append(m.pendingRoots, rr)
	}
	m.mu.Unlock()
}

func (m *SummaryMemo) hit() {
	m.mu.Lock()
	m.hits++
	m.mu.Unlock()
}

// record accepts the records of one completed run. Auto-committing memos
// publish them immediately (first record for a key wins; concurrent runs on
// the same unmodified program produce identical closures, so the race is
// benign); otherwise they stage until the next Commit.
func (m *SummaryMemo) record(recs []*memoRecord) {
	if len(recs) == 0 {
		return
	}
	m.mu.Lock()
	if m.autoCommit {
		for _, rec := range recs {
			if _, ok := m.committed[rec.key]; ok {
				continue
			}
			m.committed[rec.key] = rec
			m.bytes += rec.footprint()
		}
	} else {
		m.pending = append(m.pending, recs...)
	}
	m.mu.Unlock()
}

// Commit publishes the records staged since the last Commit and drops every
// record — staged or committed — whose touched set intersects dirty (the
// nodes modified since those records were made). The driver calls it once
// per optimization round, after applying that round's transformations.
func (m *SummaryMemo) Commit(dirty map[ir.NodeID]bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.frozen {
		// First Commit: everything staged so far was computed against the
		// pristine input program (the dirty set may invalidate some of it
		// for THIS run's mutated program, but not for a fresh compile of the
		// same source). Injected records came from a store, not this run.
		m.frozen = true
		for _, rec := range m.pending {
			if !rec.injected {
				m.pristine = append(m.pristine, rec)
			}
		}
	}
	if len(dirty) > 0 {
		for k, rec := range m.committed {
			if rec.touchesDirty(dirty) {
				delete(m.committed, k)
				m.bytes -= rec.footprint()
				m.invalidated++
			}
		}
		for k, rr := range m.roots {
			if touchesDirtySet(rr.touched, dirty) {
				delete(m.roots, k)
				m.bytes -= rr.footprint()
				m.invalidated++
			}
		}
	}
	for _, rec := range m.pending {
		if _, ok := m.committed[rec.key]; ok {
			continue
		}
		if len(dirty) > 0 && rec.touchesDirty(dirty) {
			continue
		}
		m.committed[rec.key] = rec
		m.bytes += rec.footprint()
	}
	m.pending = m.pending[:0]
	for _, rr := range m.pendingRoots {
		if len(dirty) > 0 && touchesDirtySet(rr.touched, dirty) {
			continue
		}
		// Last-wins: a fresh record for a conditional supersedes a committed
		// one. A root record is only re-recorded after its replay failed (a
		// dep summary drifted), so keeping the old record would pin the
		// stale version and force a failed revalidation every round.
		if old, ok := m.roots[rr.key]; ok {
			m.bytes -= old.footprint()
		}
		m.roots[rr.key] = rr
		m.bytes += rr.footprint()
	}
	m.pendingRoots = m.pendingRoots[:0]
}

// Entries returns the number of committed records.
func (m *SummaryMemo) Entries() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.committed)
}

// RootEntries returns the number of committed root records.
func (m *SummaryMemo) RootEntries() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.roots)
}

// Invalidated returns the number of cached subtrees (summary and root
// records) dropped by Commits because their recorded region intersected a
// dirty set.
func (m *SummaryMemo) Invalidated() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.invalidated
}

// Hits returns the number of summary replays served so far.
func (m *SummaryMemo) Hits() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.hits
}

// Bytes estimates the memory held by the committed records.
func (m *SummaryMemo) Bytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.bytes
}

func (rec *memoRecord) footprint() int64 {
	b := int64(unsafe.Sizeof(*rec))
	b += int64(len(rec.pairs)) * int64(unsafe.Sizeof(memoPair{}))
	b += int64(len(rec.arrivals)) * int64(unsafe.Sizeof(memoArrival{}))
	b += int64(len(rec.nested)) * int64(unsafe.Sizeof(memoKey{}))
	b += int64(len(rec.sups)) * int64(unsafe.Sizeof(memoSupplier{}))
	b += int64(len(rec.touched)) * int64(unsafe.Sizeof(ir.NodeID(0)))
	b += mapEntryFootprint(int64(unsafe.Sizeof(memoKey{})) + int64(unsafe.Sizeof((*memoRecord)(nil))))
	return b
}

func (rr *rootRecord) footprint() int64 {
	b := int64(unsafe.Sizeof(*rr))
	b += int64(len(rr.pairs)) * int64(unsafe.Sizeof(memoPair{}))
	b += int64(len(rr.sups)) * int64(unsafe.Sizeof(memoSupplier{}))
	b += int64(len(rr.modChecks)) * int64(unsafe.Sizeof(modCheck{}))
	b += int64(len(rr.touched)) * int64(unsafe.Sizeof(ir.NodeID(0)))
	for i := range rr.deps {
		b += int64(unsafe.Sizeof(rootDep{}))
		b += int64(len(rr.deps[i].arrivals)) * int64(unsafe.Sizeof(memoArrival{}))
	}
	b += mapEntryFootprint(int64(unsafe.Sizeof(rootKey{})) + int64(unsafe.Sizeof((*rootRecord)(nil))))
	return b
}

func (rec *memoRecord) touchesDirty(dirty map[ir.NodeID]bool) bool {
	return touchesDirtySet(rec.touched, dirty)
}

func touchesDirtySet(touched []ir.NodeID, dirty map[ir.NodeID]bool) bool {
	for _, n := range touched {
		if dirty[n] {
			return true
		}
	}
	return false
}

// replaySNE reconstructs a summary node entry from a memo record, exactly
// as a fresh propagation would have left it: the closure pairs are interned
// and resolved in recorded raise order (each counting as raised and
// processed), the entry arrivals are re-registered, and nested summaries
// are replayed first. Returns nil — and the caller computes fresh — if a
// nested summary is unavailable; the commit contract makes that
// unreachable, but a fresh computation is always a correct substitute.
func (r *run) replaySNE(rec *memoRecord) *SNE {
	st := r.st
	for _, nk := range rec.nested {
		if st.findSNE(nk.exit, nk.v, pred.Pred{Op: nk.op, C: nk.c}) != nil {
			continue
		}
		if r.a.memo.lookup(nk) == nil {
			return nil
		}
	}
	s := st.newSNE(rec.key.exit)
	s.replayed = true
	s.rec = rec
	s.Qsn = st.intern(rec.key.v, pred.Pred{Op: rec.key.op, C: rec.key.c}, s)
	for _, nk := range rec.nested {
		np := pred.Pred{Op: nk.op, C: nk.c}
		if st.findSNE(nk.exit, nk.v, np) != nil {
			continue
		}
		// Registered-before-recursing (s is already in st.snes), so mutually
		// recursive summaries terminate: the recursive replay finds s.
		if nrec := r.a.memo.lookup(nk); nrec != nil && r.replaySNE(nrec) != nil {
			continue
		}
		// Degraded path (unreachable under the commit contract): raise the
		// nested summary for fresh propagation.
		ns := st.newSNE(nk.exit)
		ns.Qsn = st.intern(nk.v, np, ns)
		r.raise(nk.exit, ns.Qsn)
	}
	firstPid := int32(len(st.pairNode))
	for i := range rec.pairs {
		mp := &rec.pairs[i]
		q := st.intern(mp.v, mp.p, s)
		pid := st.addPair(mp.node, q)
		if mp.resolved {
			st.resolvePair(pid, mp.ans)
		}
		// A replayed pair stands for one raise and one processing step of
		// the recorded run, keeping the cost counters — and with them the
		// termination-limit behavior of callers that bound PairsProcessed —
		// identical to a fresh computation.
		r.res.PairsRaised++
		r.res.PairsProcessed++
	}
	for i := range rec.arrivals {
		ar := &rec.arrivals[i]
		if q := st.lookupIntern(ar.v, ar.p, s); q != nil {
			s.addEntry(ar.entry, q)
		}
	}
	if rec.hasRolled {
		r.restoreRolled(rec.pairs, rec.sups, firstPid, s, rec.nested)
	}
	r.res.MemoHits++
	r.res.QueriesReused += len(rec.pairs)
	r.a.memo.hit()
	return s
}

// restoreRolled restores the post-rollback state of a replayed closure: each
// pair's rolled-back answer set and, for unresolved pairs, its recorded
// supplier list, appended to the supplier arena. Restored pairs are marked
// final — rollback seeds them as settled sources and never recomputes them
// (see rollback.go). pairs[i] corresponds to dense pair ID firstPid+i (the
// caller interned them contiguously); own is the closure's owner (nil for
// the top level) and nested resolves supplier ownerRefs k>0 to the k-th
// nested summary's key. Restoration is all-or-nothing per closure: if any
// supplier reference fails to resolve (impossible for records made by this
// process, defensive otherwise), the pairs stay non-final and rollback
// recomputes them.
func (r *run) restoreRolled(pairs []memoPair, sups []memoSupplier, firstPid int32, own *SNE, nested []memoKey) {
	st := r.st
	// Resolve supplier queries first, so failure leaves no pair half-final.
	owners := make([]*SNE, 1+len(nested))
	owners[0] = own
	for i, nk := range nested {
		ns := st.findSNE(nk.exit, nk.v, pred.Pred{Op: nk.op, C: nk.c})
		if ns == nil {
			return
		}
		owners[1+i] = ns
	}
	supQ := make([]*Query, len(sups))
	for i := range sups {
		ms := &sups[i]
		if int(ms.ownerRef) >= len(owners) {
			return
		}
		q := st.lookupIntern(ms.v, ms.p, owners[ms.ownerRef])
		if q == nil {
			return
		}
		supQ[i] = q
	}
	for i := range pairs {
		mp := &pairs[i]
		pid := firstPid + int32(i)
		st.pairAns[pid] = mp.rolled
		st.pairFinal[pid] = true
		if mp.resolved || mp.supLen == 0 {
			continue
		}
		off := int32(len(st.supStore))
		for j := mp.supOff; j < mp.supOff+mp.supLen; j++ {
			ms := &sups[j]
			st.supStore = append(st.supStore, EdgeSupplier{
				Pred: ms.pred, Query: supQ[j], Mask: ms.mask, FromExit: ms.fromExit})
		}
		st.pairSupOff[pid] = off
		st.pairSupLen[pid] = mp.supLen
	}
}

// recordSNEs extracts memo records for every summary computed fresh in this
// (untruncated) run and hands them to the memo.
func (r *run) recordSNEs() {
	st := r.st
	recs := make([]*memoRecord, len(st.snes))
	any := false
	for i, s := range st.snes {
		if s.replayed || s.Qsn == nil {
			continue
		}
		recs[i] = &memoRecord{key: memoKey{exit: s.Exit, v: s.Qsn.Var, op: s.Qsn.P.Op, c: s.Qsn.P.C}}
		any = true
	}
	if !any {
		return
	}
	for _, rec := range recs {
		if rec != nil {
			rec.hasRolled = true
		}
	}
	// One pass over the pairs assigns each SNE its closure, in raise order,
	// together with the pair's rolled-back answer and supplier list (the
	// complete post-rollback state replay restores).
	for pid := range st.pairNode {
		q := st.queries[st.pairQ[pid]]
		if q.Owner == nil || recs[q.Owner.ID] == nil {
			continue
		}
		rec := recs[q.Owner.ID]
		mp := memoPair{node: st.pairNode[pid], v: q.Var, p: q.P, rolled: st.pairAns[pid]}
		if st.pairResolved[pid] {
			mp.resolved, mp.ans = true, st.pairRes[pid]
		} else {
			mp.supOff = int32(len(rec.sups))
			if !appendRecSuppliers(&rec.sups, st, int32(pid), q.Owner, q.Owner.deps) {
				rec.hasRolled = false
			}
			mp.supLen = int32(len(rec.sups)) - mp.supOff
		}
		rec.pairs = append(rec.pairs, mp)
	}
	// Arrivals, nested keys, and the direct invalidation sets. Query
	// contents are copied out — records must not retain pooled *Query or
	// *SNE pointers.
	touched := make([]map[ir.NodeID]struct{}, len(st.snes))
	for i, s := range st.snes {
		rec := recs[i]
		if rec == nil {
			continue
		}
		for _, e := range s.entries {
			for _, q := range e.qs {
				rec.arrivals = append(rec.arrivals, memoArrival{entry: e.entry, v: q.Var, p: q.P})
			}
		}
		for _, d := range s.deps {
			rec.nested = append(rec.nested, memoKey{exit: d.Exit, v: d.Qsn.Var, op: d.Qsn.P.Op, c: d.Qsn.P.C})
		}
		set := make(map[ir.NodeID]struct{}, len(rec.pairs)+len(s.linkNodes))
		for _, mp := range rec.pairs {
			set[mp.node] = struct{}{}
		}
		for _, ln := range s.linkNodes {
			set[ln] = struct{}{}
		}
		if s.replayedDepTouched(set) {
			// replayed deps contributed already; nothing else to do here
		}
		touched[i] = set
	}
	// Transitive closure over fresh deps (iterate to a fixed point; SNE
	// dependency graphs are tiny and almost always acyclic).
	for changed := true; changed; {
		changed = false
		for i, s := range st.snes {
			if recs[i] == nil {
				continue
			}
			set := touched[i]
			before := len(set)
			for _, d := range s.deps {
				if d.replayed {
					continue // folded in by replayedDepTouched
				}
				if ds := touched[d.ID]; ds != nil {
					for n := range ds {
						set[n] = struct{}{}
					}
				}
			}
			if len(set) != before {
				changed = true
			}
		}
	}
	out := recs[:0]
	for i, rec := range recs {
		if rec == nil {
			continue
		}
		rec.touched = make([]ir.NodeID, 0, len(touched[i]))
		for n := range touched[i] {
			rec.touched = append(rec.touched, n)
		}
		sort.Slice(rec.touched, func(a, b int) bool { return rec.touched[a] < rec.touched[b] })
		out = append(out, rec)
	}
	r.a.memo.record(out)
}

// appendRecSuppliers encodes the supplier list of one unresolved pair into a
// record's supplier arena. own is the closure the record describes (nil for
// the top level); deps are its direct nested summaries, in the same order as
// the record's nested/dep key list, so ownerRef k+1 round-trips through
// restoreRolled. Returns false when a supplier query's owner is neither —
// such a record cannot restore rolled state and is replayed with a fresh
// rollback instead.
func appendRecSuppliers(dst *[]memoSupplier, st *state, pid int32, own *SNE, deps []*SNE) bool {
	off, ln := st.pairSupOff[pid], st.pairSupLen[pid]
	for i := off; i < off+ln; i++ {
		es := &st.supStore[i]
		ref := int32(-1)
		if es.Query.Owner == own {
			ref = 0
		} else {
			for k, d := range deps {
				if es.Query.Owner == d {
					ref = int32(k + 1)
					break
				}
			}
		}
		if ref < 0 {
			return false
		}
		*dst = append(*dst, memoSupplier{pred: es.Pred, v: es.Query.Var, p: es.Query.P,
			ownerRef: ref, mask: es.Mask, fromExit: es.FromExit})
	}
	return true
}

// replayedDepTouched folds the (already final) touched sets of replayed
// dependencies into set, returning whether it added anything.
func (s *SNE) replayedDepTouched(set map[ir.NodeID]struct{}) bool {
	added := false
	for _, d := range s.deps {
		if !d.replayed {
			continue
		}
		for _, n := range d.rec.touched {
			if _, ok := set[n]; !ok {
				set[n] = struct{}{}
				added = true
			}
		}
	}
	return added
}

// recordRoot extracts the root record of a completed, untruncated, fresh run:
// the top-level closure with its rolled-back payload, the summaries the top
// level waited on (with arrival sets and exit answers), the MOD decisions it
// took, and the top-level invalidation set.
func (r *run) recordRoot(b ir.NodeID, v ir.VarID, p pred.Pred) {
	st := r.st
	rr := &rootRecord{key: rootKey{cond: b, v: v, op: p.Op, c: p.C}, hasRolled: true}
	set := make(map[ir.NodeID]struct{}, 64)
	for pid := range st.pairNode {
		q := st.queries[st.pairQ[pid]]
		if q.Owner != nil {
			continue
		}
		mp := memoPair{node: st.pairNode[pid], v: q.Var, p: q.P, rolled: st.pairAns[pid]}
		if st.pairResolved[pid] {
			mp.resolved, mp.ans = true, st.pairRes[pid]
		} else {
			mp.supOff = int32(len(rr.sups))
			if !appendRecSuppliers(&rr.sups, st, int32(pid), nil, r.topDeps) {
				rr.hasRolled = false
			}
			mp.supLen = int32(len(rr.sups)) - mp.supOff
		}
		rr.pairs = append(rr.pairs, mp)
		set[st.pairNode[pid]] = struct{}{}
	}
	for _, ln := range r.topLinks {
		set[ln] = struct{}{}
	}
	for _, s := range r.topDeps {
		d := rootDep{
			key:      memoKey{exit: s.Exit, v: s.Qsn.Var, op: s.Qsn.P.Op, c: s.Qsn.P.C},
			arrivals: sortedArrivals(s),
		}
		if pid := st.findPair(s.Exit, s.Qsn); pid >= 0 {
			d.exitAns = st.pairAns[pid]
		}
		rr.deps = append(rr.deps, d)
	}
	rr.modChecks = append([]modCheck(nil), r.topModChecks...)
	rr.touched = make([]ir.NodeID, 0, len(set))
	for n := range set {
		rr.touched = append(rr.touched, n)
	}
	sort.Slice(rr.touched, func(a, b int) bool { return rr.touched[a] < rr.touched[b] })
	r.a.memo.recordRoot(rr)
}

// sortedArrivals flattens a summary's entry arrivals into a content-sorted
// list, the canonical form root records store and replay compares against.
// Arrival sets — not orders — decide which continuation queries a waiting
// top-level pair raises, so set equality is the right validity test.
func sortedArrivals(s *SNE) []memoArrival {
	var out []memoArrival
	for i := range s.entries {
		e := &s.entries[i]
		for _, q := range e.qs {
			out = append(out, memoArrival{entry: e.entry, v: q.Var, p: q.P})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		x, y := out[a], out[b]
		if x.entry != y.entry {
			return x.entry < y.entry
		}
		if x.v != y.v {
			return x.v < y.v
		}
		if x.p.Op != y.p.Op {
			return x.p.Op < y.p.Op
		}
		return x.p.C < y.p.C
	})
	return out
}

// arrivalsMatch reports whether a summary's current arrival set equals the
// recorded one.
func arrivalsMatch(s *SNE, want []memoArrival) bool {
	got := sortedArrivals(s)
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// replayRoot reconstructs one conditional's analysis from its root record.
// The record's own region is unchanged (the Commit contract dropped it
// otherwise); what replay must revalidate is the stitching to the summaries
// the top level waited on, which live outside the record's region by design:
//
//  1. every recorded MOD traverse/skip decision must decide the same way
//     against the current program;
//  2. each dep summary is re-derived — memo replay when its record survived,
//     fresh propagation when it was invalidated — and must reproduce the
//     recorded arrival set;
//  3. when every dep was restored with rolled-back answers and its exit
//     answer matches the recorded one, the top level's rolled-back payload
//     is restored too and rollback skips the whole closure.
//
// On any mismatch replayRoot returns false and the caller discards the
// partial state and analyzes fresh — a stale record can never be served.
func (r *run) replayRoot(rr *rootRecord) bool {
	st := r.st
	for _, mc := range rr.modChecks {
		if r.mustTraverse(int(mc.callee), mc.v, mc.viaRet) != mc.must {
			return false
		}
	}
	depSNEs := make([]*SNE, len(rr.deps))
	for i := range rr.deps {
		k := rr.deps[i].key
		depSNEs[i] = r.getSNE(k.exit, k.v, pred.Pred{Op: k.op, C: k.c})
	}
	// Fresh deps propagate to quiescence here; replayed ones left no work.
	r.propagate()
	if r.res.Truncated {
		return false
	}
	limit := r.a.Opts.TerminationLimit
	if limit == 0 && r.a.Opts.ArithSubst {
		limit = hardLimit
	}
	if limit > 0 && r.res.PairsProcessed+len(rr.pairs) > limit {
		// A fresh run would hit the termination limit; let it, so replayed
		// and from-scratch results truncate identically.
		return false
	}
	for i := range rr.deps {
		if !arrivalsMatch(depSNEs[i], rr.deps[i].arrivals) {
			return false
		}
	}
	final := rr.hasRolled
	if final {
		for i := range rr.deps {
			s := depSNEs[i]
			if !s.replayed || s.rec == nil || !s.rec.hasRolled {
				final = false
				break
			}
			pid := st.findPair(s.Exit, s.Qsn)
			if pid < 0 || st.pairAns[pid] != rr.deps[i].exitAns {
				final = false
				break
			}
		}
	}
	firstPid := int32(len(st.pairNode))
	for i := range rr.pairs {
		mp := &rr.pairs[i]
		q := st.intern(mp.v, mp.p, nil)
		pid := st.addPair(mp.node, q)
		if mp.resolved {
			st.resolvePair(pid, mp.ans)
		}
		r.res.PairsRaised++
		r.res.PairsProcessed++
	}
	if final {
		nested := make([]memoKey, len(rr.deps))
		for i := range rr.deps {
			nested[i] = rr.deps[i].key
		}
		r.restoreRolled(rr.pairs, rr.sups, firstPid, nil, nested)
	}
	r.res.QueriesReused += len(rr.pairs)
	r.res.Root = st.lookupIntern(rr.key.v, pred.Pred{Op: rr.key.op, C: rr.key.c}, nil)
	return r.res.Root != nil
}
