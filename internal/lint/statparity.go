// Package lint holds repository-level consistency checks that run as tests
// (and as an explicit CI step). The first is the stat-parity lint: every
// exported DriverStats counter must flow through the whole reporting chain —
// mirrored into the public API, encoded by reportjson, aggregated by
// DriverStats.Add (which is what the serving layer's /stats uses), and
// either scrubbed or explicitly whitelisted in the server's byte-determinism
// scrub. PRs 6–8 each hand-patched a missed link in that chain; this lint
// turns the drift into a test failure.
//
// The lint is built on go/parser and go/ast only — the repository is
// stdlib-only by policy, so the go/analysis framework is not available.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"sort"
)

// deterministicStats is the whitelist for the scrub check: reportjson
// DriverStats fields that are pure functions of (program, request shape) and
// therefore deliberately survive scrubStats into cached response bodies.
// Adding a DriverStats field means either scrubbing it in the server's
// scrubStats or — after convincing yourself it is deterministic — listing it
// here.
var deterministicStats = map[string]bool{
	"Rounds":            true,
	"Analyses":          true,
	"Reanalyses":        true,
	"Clones":            true,
	"ClonesAvoided":     true,
	"Failures":          true,
	"PairsTotal":        true,
	"VerifyRuns":        true,
	"CheckRuns":         true,
	"SCCPAgreements":    true,
	"SCCPDisagreements": true,
	"SCCPVacuous":       true,
	"SCCPDecided":       true,
	"SCCPRecall":        true,
	"SCCPResidual":      true,
	"CheckFindingsPre":  true,
	"CheckFindingsPost": true,
	"FoldAttempted":     true,
	"FoldApplied":       true,
	"FoldDuplicated":    true,
	"ResidualBefore":    true,
	"ResidualAfter":     true,
	"FoldReduction":     true,
}

// StatParity runs the stat-parity lint against a repository root and returns
// one message per violation (empty means the chain is intact).
func StatParity(root string) ([]string, error) {
	fset := token.NewFileSet()
	parse := func(rel string) (*ast.File, error) {
		f, err := parser.ParseFile(fset, filepath.Join(root, rel), nil, 0)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", rel, err)
		}
		return f, nil
	}

	driverFile, err := parse("internal/restructure/driver.go")
	if err != nil {
		return nil, err
	}
	icbeFile, err := parse("icbe.go")
	if err != nil {
		return nil, err
	}
	wireFile, err := parse("internal/reportjson/reportjson.go")
	if err != nil {
		return nil, err
	}
	scrubFile, err := parse("internal/server/cache.go")
	if err != nil {
		return nil, err
	}

	var violations []string
	report := func(format string, args ...any) {
		violations = append(violations, fmt.Sprintf(format, args...))
	}

	// Link 1: every exported counter on the internal driver's stats struct
	// must be mirrored onto the public icbe.DriverStats (icbe.go reads it
	// somewhere — the Stats conversion in OptimizeContext).
	driverFields := structFields(driverFile, "DriverStats")
	if len(driverFields) == 0 {
		return nil, fmt.Errorf("lint: restructure.DriverStats not found")
	}
	icbeReads := selectorNames(icbeFile)
	for _, f := range driverFields {
		if !icbeReads[f] {
			report("restructure.DriverStats.%s is never read in icbe.go — the public icbe.DriverStats mirror is missing it", f)
		}
	}

	// Link 2: every exported field of the public icbe.DriverStats must be
	// read by reportjson.FromDriverStats (the wire encoding).
	publicFields := structFields(icbeFile, "DriverStats")
	if len(publicFields) == 0 {
		return nil, fmt.Errorf("lint: icbe.DriverStats not found")
	}
	fromReads := selectorNamesOn(funcBody(wireFile, "FromDriverStats"), "s")
	for _, f := range publicFields {
		if !fromReads[f] {
			report("icbe.DriverStats.%s is not read by reportjson.FromDriverStats — the wire encoding drops it", f)
		}
	}

	// Link 3: every wire field must be aggregated by DriverStats.Add, which
	// is what the serving layer's /stats metrics use. Ratios count as
	// aggregated when Add assigns them (they must be recomputed, and a
	// recompute is an assignment).
	wireFields := structFields(wireFile, "DriverStats")
	if len(wireFields) == 0 {
		return nil, fmt.Errorf("lint: reportjson.DriverStats not found")
	}
	addWrites := assignTargets(funcBody(wireFile, "Add"), "d")
	for _, f := range wireFields {
		if !addWrites[f] {
			report("reportjson.DriverStats.%s is not aggregated by Add — /stats drops it", f)
		}
	}

	// Link 4: every wire field must be either zeroed by the server's
	// scrubStats (nondeterministic telemetry) or whitelisted as
	// deterministic above — and never both.
	scrubWrites := assignTargets(funcBody(scrubFile, "scrubStats"), "d")
	for _, f := range wireFields {
		scrubbed, whitelisted := scrubWrites[f], deterministicStats[f]
		switch {
		case scrubbed && whitelisted:
			report("reportjson.DriverStats.%s is both scrubbed in scrubStats and whitelisted as deterministic — pick one", f)
		case !scrubbed && !whitelisted:
			report("reportjson.DriverStats.%s is neither scrubbed in the server's scrubStats nor whitelisted in internal/lint — cached bodies may be nondeterministic", f)
		}
	}
	for f := range deterministicStats {
		if !contains(wireFields, f) {
			report("lint whitelist names %s, which is not a reportjson.DriverStats field — stale entry", f)
		}
	}

	sort.Strings(violations)
	return violations, nil
}

// structFields returns the exported field names of the named struct type in
// the file, in declaration order.
func structFields(f *ast.File, typeName string) []string {
	var out []string
	ast.Inspect(f, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok || ts.Name.Name != typeName {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		for _, fld := range st.Fields.List {
			for _, name := range fld.Names {
				if name.IsExported() {
					out = append(out, name.Name)
				}
			}
		}
		return false
	})
	return out
}

// funcBody returns the body of the named function or method in the file
// (nil when absent).
func funcBody(f *ast.File, name string) *ast.BlockStmt {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd.Body
		}
	}
	return nil
}

// selectorNames collects every selector field name (x.Sel for any x) used
// anywhere in the file.
func selectorNames(f *ast.File) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			out[sel.Sel.Name] = true
		}
		return true
	})
	return out
}

// selectorNamesOn collects selector field names rooted at the named
// identifier (recv.Sel) within a function body.
func selectorNamesOn(body *ast.BlockStmt, recv string) map[string]bool {
	out := make(map[string]bool)
	if body == nil {
		return out
	}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv {
			out[sel.Sel.Name] = true
		}
		return true
	})
	return out
}

// assignTargets collects the field names assigned (plain or op-assign)
// through the named receiver identifier within a function body.
func assignTargets(body *ast.BlockStmt, recv string) map[string]bool {
	out := make(map[string]bool)
	if body == nil {
		return out
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv {
				out[sel.Sel.Name] = true
			}
		}
		return true
	})
	return out
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}
