package lint

import "testing"

// TestStatParity runs the stat-parity lint against the repository itself:
// the chain driver stats → public API → wire encoding → /stats aggregation →
// determinism scrub must be unbroken. CI also runs this test as an explicit
// named step so a parity break is visible as a lint failure, not a generic
// test failure.
func TestStatParity(t *testing.T) {
	violations, err := StatParity("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range violations {
		t.Error(v)
	}
}
