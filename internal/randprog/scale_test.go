package randprog_test

import (
	"testing"
	"time"

	"icbe/internal/analysis"
	"icbe/internal/ir"
	"icbe/internal/randprog"
	"icbe/internal/restructure"
)

// TestScaleDeterministic: equal seeds yield byte-equal programs, different
// seeds differ.
func TestScaleDeterministic(t *testing.T) {
	a := randprog.Scale(7, randprog.ScaleConfig{Leaves: 10, LeafStmts: 20, Hubs: 4})
	b := randprog.Scale(7, randprog.ScaleConfig{Leaves: 10, LeafStmts: 20, Hubs: 4})
	if a != b {
		t.Fatal("same seed produced different programs")
	}
	if c := randprog.Scale(8, randprog.ScaleConfig{Leaves: 10, LeafStmts: 20, Hubs: 4}); c == a {
		t.Fatal("different seeds produced identical programs")
	}
}

// TestScaleShape: the default configuration compiles and meets the
// adversarial-scale floor the stress benchmark advertises — at least 100k
// ICFG nodes across at least 100 procedures.
func TestScaleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a ~100k-node program")
	}
	src := randprog.Scale(1, randprog.ScaleConfig{})
	p, err := ir.Build(src)
	if err != nil {
		t.Fatalf("default scale program does not compile: %v", err)
	}
	if n := len(p.Nodes); n < 100_000 {
		t.Fatalf("default scale program has %d nodes, want >= 100000", n)
	}
	if n := len(p.Procs); n < 100 {
		t.Fatalf("default scale program has %d procedures, want >= 100", n)
	}
	t.Logf("nodes=%d procs=%d", len(p.Nodes), len(p.Procs))
}

// TestScaleProbe is a tuning aid, not an assertion: -run ScaleProbe -v prints
// scratch vs incremental driver wall times on a reduced configuration.
func TestScaleProbe(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("probe only")
	}
	cfg := randprog.ScaleConfig{}
	src := randprog.Scale(1, cfg)
	p, err := ir.Build(src)
	if err != nil {
		t.Fatal(err)
	}
	opts := restructure.DriverOptions{
		Analysis: analysis.Options{Interprocedural: true, ModSummaries: true,
			MemoSummaries: true, TerminationLimit: 0},
		MaxDuplication: 0,
		Workers:        1,
	}
	run := func(label string, o restructure.DriverOptions) *restructure.DriverResult {
		start := time.Now()
		dr := restructure.Optimize(ir.Clone(p), o)
		t.Logf("%-12s %8v rounds=%d analyses=%d pairs=%d reused=%d invalidated=%d optimized=%d truncated=%v",
			label, time.Since(start).Round(time.Millisecond), dr.Stats.Rounds, dr.Stats.Analyses,
			dr.PairsTotal, dr.Stats.QueriesReused, dr.Stats.SubtreesInvalidated, dr.Optimized, dr.Truncated)
		return dr
	}
	so := opts
	so.Scratch = true
	run("scratch", so)
	dr := run("incremental", opts)
	memo := analysis.NewSummaryMemo()
	wo := opts
	wo.Memo = memo
	wr := restructure.Optimize(ir.Clone(p), wo)
	if wr.Optimized != dr.Optimized {
		t.Fatalf("warmup optimized %d != incremental %d", wr.Optimized, dr.Optimized)
	}
	// Re-analysis of the settled program: the memo is valid for exactly this
	// program, so the warm run is sound (and must match scratch bit for bit).
	final := wr.Program
	p = final
	rs := run("re-scratch", so)
	ri := run("re-warm", wo)
	if rs.Optimized != ri.Optimized || rs.PairsTotal != ri.PairsTotal {
		t.Fatalf("re-analysis diverged: scratch opt=%d pairs=%d, warm opt=%d pairs=%d",
			rs.Optimized, rs.PairsTotal, ri.Optimized, ri.PairsTotal)
	}
}
