package randprog

import (
	"errors"
	"strings"
	"testing"

	"icbe/internal/analysis"
	"icbe/internal/inline"
	"icbe/internal/interp"
	"icbe/internal/ir"
	"icbe/internal/restructure"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(42, Config{})
	b := Generate(42, Config{})
	if a != b {
		t.Fatal("same seed produced different programs")
	}
	if Generate(43, Config{}) == a {
		t.Fatal("different seeds produced the same program")
	}
	if !strings.Contains(a, "func main()") {
		t.Fatal("no main generated")
	}
}

func TestGeneratedProgramsCompileAndTerminate(t *testing.T) {
	for seed := uint64(0); seed < 60; seed++ {
		src := Generate(seed, Config{})
		p, err := ir.Build(src)
		if err != nil {
			t.Fatalf("seed %d: build failed: %v\n%s", seed, err, src)
		}
		if err := ir.Validate(p); err != nil {
			t.Fatalf("seed %d: invalid graph: %v", seed, err)
		}
		if _, err := interp.Run(p, interp.Options{Input: inputFor(seed), MaxSteps: 5_000_000}); err != nil {
			t.Fatalf("seed %d: run failed: %v\n%s", seed, err, src)
		}
	}
}

func inputFor(seed uint64) []int64 {
	r := rng{s: seed ^ 0xABCDEF}
	in := make([]int64, 8)
	for i := range in {
		in[i] = int64(r.intn(21) - 10)
	}
	return in
}

// TestOptimizerPropertyDifferential is the central property test: for many
// random programs, many inputs, and several optimizer configurations, the
// optimized program must produce identical output and never execute more
// operations or conditionals than the original.
func TestOptimizerPropertyDifferential(t *testing.T) {
	seeds := 150
	if testing.Short() {
		seeds = 15
	}
	// Every config caps per-conditional duplication, as the paper's
	// optimizer does (N ≤ 200): unbounded path duplication is worst-case
	// exponential (§3.3) and is gated by the duplication estimate.
	configs := []restructure.DriverOptions{
		{Analysis: analysis.Options{Interprocedural: true, ModSummaries: true, TerminationLimit: 1000}, MaxDuplication: 200},
		{Analysis: analysis.Options{Interprocedural: true, ModSummaries: true, TerminationLimit: 1000}, MaxDuplication: 10},
		{Analysis: analysis.Options{Interprocedural: true, TerminationLimit: 50}, MaxDuplication: 50},
		{Analysis: analysis.Options{Interprocedural: true, ModSummaries: true, ArithSubst: true, TerminationLimit: 1000}, MaxDuplication: 100},
		{Analysis: analysis.Options{Interprocedural: false, ModSummaries: true, TerminationLimit: 1000}, MaxDuplication: 200},
		{Analysis: analysis.Options{Interprocedural: true, ModSummaries: true, TerminationLimit: 1000}, MaxDuplication: 100, FullOnly: true},
	}
	for seed := uint64(0); seed < uint64(seeds); seed++ {
		src := Generate(seed, Config{})
		p, err := ir.Build(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for ci, cfg := range configs {
			dr := restructure.Optimize(p, cfg)
			for _, rep := range dr.Reports {
				// Declining ambiguous transparency is the documented safe
				// behavior; anything else is a bug.
				if rep.Err != nil && !errors.Is(rep.Err, restructure.ErrAmbiguousTransparency) {
					t.Errorf("seed %d cfg %d: restructuring error on line %d: %v",
						seed, ci, rep.Line, rep.Err)
				}
			}
			if err := ir.Validate(dr.Program); err != nil {
				t.Fatalf("seed %d cfg %d: optimized graph invalid: %v", seed, ci, err)
			}
			for trial := uint64(0); trial < 3; trial++ {
				in := inputFor(seed*31 + trial)
				r1, err := interp.Run(p, interp.Options{Input: in, MaxSteps: 5_000_000})
				if err != nil {
					t.Fatalf("seed %d: original failed: %v", seed, err)
				}
				r2, err := interp.Run(dr.Program, interp.Options{Input: in, MaxSteps: 5_000_000})
				if err != nil {
					t.Fatalf("seed %d cfg %d: optimized failed: %v\nsource:\n%s", seed, ci, err, src)
				}
				if len(r1.Output) != len(r2.Output) {
					t.Fatalf("seed %d cfg %d: output length %d vs %d\nsource:\n%s",
						seed, ci, len(r1.Output), len(r2.Output), src)
				}
				for i := range r1.Output {
					if r1.Output[i] != r2.Output[i] {
						t.Fatalf("seed %d cfg %d: output[%d] %d vs %d\nsource:\n%s",
							seed, ci, i, r1.Output[i], r2.Output[i], src)
					}
				}
				if r2.Operations > r1.Operations {
					t.Fatalf("seed %d cfg %d: safety violated (%d ops vs %d)\nsource:\n%s",
						seed, ci, r2.Operations, r1.Operations, src)
				}
				if r2.CondExecs > r1.CondExecs {
					t.Fatalf("seed %d cfg %d: conditionals increased (%d vs %d)",
						seed, ci, r2.CondExecs, r1.CondExecs)
				}
			}
		}
	}
}

// TestAnalysisOnlyNeverCrashes fuzzes the analysis across random programs
// with all option combinations.
func TestAnalysisOnlyNeverCrashes(t *testing.T) {
	for seed := uint64(100); seed < 130; seed++ {
		src := Generate(seed, Config{Procs: 4, MaxDepth: 4})
		p, err := ir.Build(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, interp := range []bool{false, true} {
			for _, mod := range []bool{false, true} {
				for _, arith := range []bool{false, true} {
					an := analysis.New(p, analysis.Options{
						Interprocedural: interp, ModSummaries: mod,
						ArithSubst: arith, TerminationLimit: 300,
					})
					p.LiveNodes(func(n *ir.Node) {
						if n.Kind == ir.NBranch && n.Analyzable() {
							res := an.AnalyzeBranch(n.ID)
							if res == nil {
								t.Fatalf("nil result for analyzable branch")
							}
							if res.RootAnswers() == 0 && !res.Truncated {
								// A reachable conditional must get some answer.
								for _, e := range p.Procs[p.MainProc].Entries {
									_ = e
								}
							}
						}
					})
				}
			}
		}
	}
}

// TestInlinerPropertyDifferential checks that exhaustive inlining preserves
// semantics on random programs, and composes correctly with the
// intraprocedural optimizer (the paper's §5 alternative route).
func TestInlinerPropertyDifferential(t *testing.T) {
	seeds := 80
	if testing.Short() {
		seeds = 10
	}
	for seed := uint64(0); seed < uint64(seeds); seed++ {
		src := Generate(seed, Config{})
		p, err := ir.Build(src)
		if err != nil {
			t.Fatal(err)
		}
		q := ir.Clone(p)
		inline.Exhaustive(q, 50)
		if err := ir.Validate(q); err != nil {
			t.Fatalf("seed %d: invalid after inlining: %v", seed, err)
		}
		dr := restructure.Optimize(q, restructure.DriverOptions{
			Analysis:       analysis.Options{ModSummaries: true, TerminationLimit: 1000},
			MaxDuplication: 100,
		})
		if err := ir.Validate(dr.Program); err != nil {
			t.Fatalf("seed %d: invalid after inline+intra: %v", seed, err)
		}
		for trial := uint64(0); trial < 3; trial++ {
			in := inputFor(seed*17 + trial)
			r1, err := interp.Run(p, interp.Options{Input: in, MaxSteps: 5_000_000})
			if err != nil {
				t.Fatalf("seed %d: original failed: %v", seed, err)
			}
			for _, variant := range []*ir.Program{q, dr.Program} {
				r2, err := interp.Run(variant, interp.Options{Input: in, MaxSteps: 5_000_000})
				if err != nil {
					t.Fatalf("seed %d: variant failed: %v\n%s", seed, err, src)
				}
				if len(r1.Output) != len(r2.Output) {
					t.Fatalf("seed %d: output length mismatch\n%s", seed, src)
				}
				for i := range r1.Output {
					if r1.Output[i] != r2.Output[i] {
						t.Fatalf("seed %d: output mismatch at %d\n%s", seed, i, src)
					}
				}
			}
		}
	}
}

// TestSimplifyPropertyDifferential checks graph compaction on random
// optimized programs: identical output, identical operation counts, and
// never more interpreter steps.
func TestSimplifyPropertyDifferential(t *testing.T) {
	for seed := uint64(200); seed < 260; seed++ {
		src := Generate(seed, Config{})
		p, err := ir.Build(src)
		if err != nil {
			t.Fatal(err)
		}
		dr := restructure.Optimize(p, restructure.DriverOptions{
			Analysis:       analysis.Options{Interprocedural: true, ModSummaries: true, TerminationLimit: 1000},
			MaxDuplication: 100,
		})
		q := ir.Clone(dr.Program)
		ir.Simplify(q)
		if err := ir.Validate(q); err != nil {
			t.Fatalf("seed %d: invalid after simplify: %v", seed, err)
		}
		for trial := uint64(0); trial < 2; trial++ {
			in := inputFor(seed*13 + trial)
			r1, err := interp.Run(dr.Program, interp.Options{Input: in, MaxSteps: 5_000_000})
			if err != nil {
				t.Fatal(err)
			}
			r2, err := interp.Run(q, interp.Options{Input: in, MaxSteps: 5_000_000})
			if err != nil {
				t.Fatalf("seed %d: simplified failed: %v", seed, err)
			}
			if len(r1.Output) != len(r2.Output) {
				t.Fatalf("seed %d: output mismatch", seed)
			}
			for i := range r1.Output {
				if r1.Output[i] != r2.Output[i] {
					t.Fatalf("seed %d: output mismatch", seed)
				}
			}
			if r2.Operations != r1.Operations {
				t.Fatalf("seed %d: operations changed %d -> %d", seed, r1.Operations, r2.Operations)
			}
			if r2.Steps > r1.Steps {
				t.Fatalf("seed %d: steps grew %d -> %d", seed, r1.Steps, r2.Steps)
			}
		}
	}
}
