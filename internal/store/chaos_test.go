package store_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"icbe/internal/ir"
	"icbe/internal/progs"
	"icbe/internal/store"

	"icbe"
)

// TestChaosCorruptionStorm fills a store with real optimization results,
// flips bits in a third of the on-disk entries, truncates one, plants an
// orphan temp file, and then re-reads everything through a fresh store over
// the same directory. Every intact entry must come back byte-identical,
// every damaged entry must quarantine into a miss, and the quarantine
// counter must reconcile exactly with the number of damaged files read.
func TestChaosCorruptionStorm(t *testing.T) {
	dir := t.TempDir()
	s1, err := store.Open(store.Config{CacheEntries: 64, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}

	type seeded struct {
		key  store.ResultKey
		body []byte
	}
	var entries []seeded
	fp := store.NewFingerprint([]byte("chaos-options"))
	for _, w := range progs.All() {
		p, err := icbe.Compile(w.Source)
		if err != nil {
			t.Fatal(err)
		}
		opt, rep, err := p.Optimize(icbe.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		g := p.Graph()
		enc := ir.EncodeProgram(g)
		key := store.KeyForProgram(ir.HashProgram(g).Sum, sha256Of(enc), fp)
		body := []byte(fmt.Sprintf(`{"workload":%q,"optimized":%d,"dump_sha":%q}`,
			w.Name, rep.Optimized, opt.Dump()[:32]))
		s1.PutResult(key, &store.Entry{Body: body, Prog: ir.EncodeProgram(opt.Graph())})
		entries = append(entries, seeded{key, body})
	}
	if len(entries) < 4 {
		t.Fatalf("not enough workloads: %d", len(entries))
	}

	// Damage: flip bits in >=25% of entries, truncate one more, and leave a
	// torn temp file behind. rand is seeded for reproducibility.
	rng := rand.New(rand.NewSource(42))
	corrupt := len(entries)/3 + 1
	for i := 0; i < corrupt; i++ {
		name := filepath.Join(dir, "res-"+entries[i].key.Hex()+".json")
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		data[rng.Intn(len(data))] ^= byte(1 << rng.Intn(8))
		if err := os.WriteFile(name, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	truncIdx := corrupt
	truncName := filepath.Join(dir, "res-"+entries[truncIdx].key.Hex()+".json")
	data, err := os.ReadFile(truncName)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(truncName, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "res-torn.json.tmp99"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := store.Open(store.Config{CacheEntries: 64, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	damaged := corrupt + 1
	for i, e := range entries {
		got, src := s2.GetResult(e.key)
		if i < damaged {
			if src != "" {
				t.Errorf("damaged entry %d served from %q", i, src)
			}
			continue
		}
		if src != "disk" {
			t.Errorf("intact entry %d: source %q", i, src)
			continue
		}
		if string(got.Body) != string(e.body) {
			t.Errorf("intact entry %d: body diverged", i)
		}
	}
	st := s2.Stats()
	if st.Quarantined != int64(damaged) {
		t.Errorf("quarantined = %d, want exactly %d", st.Quarantined, damaged)
	}
	if st.Misses != int64(damaged) {
		t.Errorf("misses = %d, want %d", st.Misses, damaged)
	}
	if st.HitsDisk != int64(len(entries)-damaged) {
		t.Errorf("disk hits = %d, want %d", st.HitsDisk, len(entries)-damaged)
	}
	// Corruption is not an I/O failure: the breaker stayed closed.
	if st.State != "ok" || st.IOErrors != 0 || st.DegradedTransitions != 0 {
		t.Errorf("breaker reacted to corruption: %+v", st)
	}
	// Quarantine holds exactly the damaged files.
	qents, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil {
		t.Fatal(err)
	}
	if len(qents) != damaged {
		t.Errorf("quarantine dir holds %d files, want %d", len(qents), damaged)
	}
	// Damaged entries are never retried: a second read round adds misses
	// but no new quarantines.
	for i := 0; i < damaged; i++ {
		if _, src := s2.GetResult(entries[i].key); src != "" {
			t.Errorf("quarantined entry %d resurrected from %q", i, src)
		}
	}
	if st2 := s2.Stats(); st2.Quarantined != int64(damaged) {
		t.Errorf("re-read quarantined more: %d", st2.Quarantined)
	}
}

func sha256Of(b []byte) [32]byte {
	return store.NewFingerprint(b)
}
