// Package store is the crash-safe content-addressed result and summary
// store behind the optimization service: a bounded in-memory LRU of full
// optimization results in front of an optional on-disk store, addressed by a
// canonical content hash of the normalized ICFG rather than by source text
// (two layouts of the same program share one entry; see ir.HashProgram).
//
// Nothing read from the store is ever trusted: every entry carries a
// checksum, and a disk read additionally decodes the embedded optimized
// program and re-runs ir.Validate plus the check layer's invariant passes
// before the entry may be served (verify-on-read). An entry that fails any
// of it is quarantined — renamed aside, counted, never retried — and the
// request falls through to a fresh compute, so a corrupt store degrades
// capacity, never answers.
//
// Availability is protected on two more axes: concurrent requests for the
// same key coalesce onto a single computation (singleflight; waiters honor
// their own deadlines), and disk I/O failures first retry with capped
// backoff, then trip a store circuit breaker that pins the service to
// compute-only serving — a "store-degraded" dimension orthogonal to the
// server's tier ladder — with half-open recovery probes.
package store

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sync"
	"time"

	"icbe/internal/check"
	"icbe/internal/ir"
)

// encodeEntry/decodeEntry are the disk payload codec for result entries.
func encodeEntry(e *Entry) ([]byte, error) { return json.Marshal(e) }

func decodeEntry(payload []byte) (*Entry, error) {
	var e Entry
	if err := json.Unmarshal(payload, &e); err != nil {
		return nil, err
	}
	return &e, nil
}

// ResultKey addresses one cached optimization result: the canonical content
// hash of the input ICFG, the exact encoded input (so programs that are
// canonically equal but not byte-identical — e.g. different names — still
// produce byte-identical dumps from the cache), and the request fingerprint.
type ResultKey [sha256.Size]byte

// Hex renders the key for filenames and headers.
func (k ResultKey) Hex() string { return hex.EncodeToString(k[:]) }

// Fingerprint condenses everything about a request that shapes the response
// body besides the program itself (options, run inputs, dump suppression,
// effective worker count — but never the deadline, which shapes only how far
// a degraded attempt got, and degraded results are not cached).
type Fingerprint [sha256.Size]byte

// NewFingerprint hashes an opaque canonical encoding of the request shape.
func NewFingerprint(encoded []byte) Fingerprint { return sha256.Sum256(encoded) }

// KeyForProgram builds the L2 result key from the program's canonical hash,
// the sha of its exact encoding, and the request fingerprint.
func KeyForProgram(sum ir.Sum, encSHA [sha256.Size]byte, fp Fingerprint) ResultKey {
	h := sha256.New()
	h.Write([]byte("icbe-result-v1\x00"))
	h.Write(sum[:])
	h.Write(encSHA[:])
	h.Write(fp[:])
	var k ResultKey
	h.Sum(k[:0])
	return k
}

// KeyForSource builds the L1 key: source text + fingerprint. The L1 map
// lets a repeated request skip compilation and hashing entirely.
func KeyForSource(source string, fp Fingerprint) ResultKey {
	h := sha256.New()
	h.Write([]byte("icbe-source-v1\x00"))
	h.Write(fp[:])
	h.Write([]byte(source))
	var k ResultKey
	h.Sum(k[:0])
	return k
}

// Config tunes a Store. The zero value of every field has a usable default;
// a zero Dir disables the disk layer and a CacheEntries <= 0 disables the
// memory layer (the store still coalesces flights).
type Config struct {
	// CacheEntries bounds the in-memory result LRU.
	CacheEntries int
	// Dir roots the on-disk store ("" = memory only).
	Dir string
	// FS overrides the filesystem (nil = the real one); the seam for fault
	// injection in tests.
	FS FS
	// Retries is how many attempts a failing disk operation gets before the
	// failure counts against the health breaker.
	Retries int
	// RetryBase/RetryCap shape the capped-doubling backoff between retries.
	RetryBase time.Duration
	RetryCap  time.Duration
	// FailThreshold consecutive failed operations trip the breaker;
	// Cooldown/CooldownCap shape its doubling recovery timer.
	FailThreshold int
	Cooldown      time.Duration
	CooldownCap   time.Duration

	// now and sleep are test seams (nil = real clock / time.Sleep).
	now   func() time.Time
	sleep func(d time.Duration)
}

func (c Config) withDefaults() Config {
	if c.FS == nil {
		c.FS = osFS{}
	}
	if c.Retries <= 0 {
		c.Retries = 2
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 2 * time.Millisecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 50 * time.Millisecond
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	if c.CooldownCap <= 0 {
		c.CooldownCap = 30 * time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
	if c.sleep == nil {
		c.sleep = time.Sleep
	}
	return c
}

// SetClock installs test clock seams; call before use.
func (c *Config) SetClock(now func() time.Time, sleep func(d time.Duration)) {
	c.now, c.sleep = now, sleep
}

// Store is one result + summary store instance. Safe for concurrent use.
type Store struct {
	cfg    Config
	disk   *disk // nil when the disk layer is disabled
	health *health

	mu      sync.Mutex
	lru     *lru
	l1      map[ResultKey]ResultKey // source-key -> program-key
	l1order []ResultKey             // FIFO eviction for the l1 map
	flights map[ResultKey]*Flight

	hitsMemory  int64
	hitsDisk    int64
	misses      int64
	quarantined int64
	coalesced   int64
	ioErrors    int64
	sumSaved    int64
	sumLoaded   int64
	sumDropped  int64
}

// Open builds a Store. When the disk root cannot be initialized the store
// still opens — memory-only, with the error returned so the caller can log
// it; a broken disk degrades the store, it must not take the service down.
func Open(cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	s := &Store{
		cfg:     cfg,
		lru:     newLRU(cfg.CacheEntries),
		l1:      make(map[ResultKey]ResultKey),
		flights: make(map[ResultKey]*Flight),
		health:  newHealth(cfg.FailThreshold, cfg.Cooldown, cfg.CooldownCap, cfg.now),
	}
	var err error
	if cfg.Dir != "" {
		s.disk, err = openDisk(cfg.FS, cfg.Dir)
		if err != nil {
			s.disk = nil
		}
	}
	return s, err
}

// DiskEnabled reports whether the durable layer is active.
func (s *Store) DiskEnabled() bool { return s.disk != nil }

// SourceKey returns the cached L2 key for an L1 (source-level) key.
func (s *Store) SourceKey(l1 ResultKey) (ResultKey, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k, ok := s.l1[l1]
	return k, ok
}

// MapSource records the L1 -> L2 association. The map is bounded to four
// entries per LRU slot (several sources can map to one program) with FIFO
// eviction; with the memory cache disabled it is bounded to a small constant.
func (s *Store) MapSource(l1, l2 ResultKey) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.l1[l1]; ok {
		s.l1[l1] = l2
		return
	}
	max := 4 * s.cfg.CacheEntries
	if max <= 0 {
		max = 64
	}
	s.l1[l1] = l2
	s.l1order = append(s.l1order, l1)
	for len(s.l1order) > max {
		delete(s.l1, s.l1order[0])
		s.l1order = s.l1order[1:]
	}
}

// GetResult looks a result up, memory first, then disk. source is "memory"
// or "disk" on a hit, "" on a miss. Every returned entry has been verified:
// checksum for memory hits; checksum, program decode, ir.Validate and the
// check layer's invariant passes for disk hits (which then populate the
// memory layer).
func (s *Store) GetResult(key ResultKey) (e *Entry, source string) {
	s.mu.Lock()
	ent, ok, corrupt := s.lru.get(key)
	if corrupt {
		s.quarantined++
	}
	if ok {
		s.hitsMemory++
		s.mu.Unlock()
		return ent, "memory"
	}
	s.mu.Unlock()

	if ent := s.readDiskResult(key); ent != nil {
		s.mu.Lock()
		s.hitsDisk++
		s.lru.put(key, ent)
		s.mu.Unlock()
		return ent, "disk"
	}
	s.mu.Lock()
	s.misses++
	s.mu.Unlock()
	return nil, ""
}

// PutResult stores a verified-good result in both layers.
func (s *Store) PutResult(key ResultKey, e *Entry) {
	s.mu.Lock()
	s.lru.put(key, e)
	s.mu.Unlock()
	if s.disk == nil {
		return
	}
	payload, err := encodeEntry(e)
	if err != nil {
		return
	}
	s.diskOp(func() error { return s.disk.write(resultName(key), kindResult, payload) })
}

// readDiskResult loads and fully verifies one result entry from disk.
func (s *Store) readDiskResult(key ResultKey) *Entry {
	if s.disk == nil {
		return nil
	}
	var payload []byte
	var ok bool
	var readErr error
	ioOK := s.diskOp(func() error {
		var err error
		payload, ok, err = s.disk.read(resultName(key), kindResult)
		readErr = err
		return err
	})
	if !ioOK || !ok {
		if readErr == errCorrupt {
			// disk.read already quarantined the file.
			s.countQuarantined()
		}
		return nil
	}
	ent, err := decodeEntry(payload)
	if err == nil && len(ent.Prog) > 0 {
		err = verifyProgram(ent.Prog)
	}
	if err != nil {
		// The bytes checksummed clean but the content does not hold up
		// (version skew, an encoder bug, a deliberate tamper that rewrote
		// the checksum too): quarantine, same as a torn write.
		s.disk.quarantine(resultName(key))
		s.mu.Lock()
		s.quarantined++
		s.mu.Unlock()
		return nil
	}
	return ent
}

// verifyProgram re-validates a cached optimized program before the entry
// may be served: decode, structural validation, and the cheap invariant
// subset of the static check layer.
func verifyProgram(enc []byte) error {
	p, err := ir.DecodeProgram(enc)
	if err != nil {
		return err
	}
	if err := ir.Validate(p); err != nil {
		return err
	}
	if rep := check.AnalyzeInvariants(p); rep.Invariants != 0 {
		return errCorrupt
	}
	return nil
}

// WaitFlight waits on another request's computation; a non-nil result is a
// successfully coalesced request (counted as such).
func (s *Store) WaitFlight(ctx context.Context, f *Flight) *Entry {
	e := f.Wait(ctx)
	if e == nil {
		return nil
	}
	s.mu.Lock()
	s.coalesced++
	s.mu.Unlock()
	return e
}

// diskOp runs one disk operation through the health breaker and the retry
// schedule. Returns false when the operation was skipped (store degraded)
// or exhausted its retries; corruption (errCorrupt) passes through as a
// successful I/O with a failed verification — the caller has already
// quarantined, and the breaker must not trip over bad bytes.
func (s *Store) diskOp(op func() error) bool {
	if !s.health.allow() {
		return false
	}
	var err error
	for _, d := range retryDelays(s.cfg.Retries, s.cfg.RetryBase, s.cfg.RetryCap) {
		if err = op(); err == nil || err == errCorrupt {
			s.health.success()
			return err == nil
		}
		s.cfg.sleep(d)
	}
	s.mu.Lock()
	s.ioErrors++
	s.mu.Unlock()
	s.health.failure()
	return false
}

// Quarantined counts one external verification failure (used by the summary
// loader, whose validation lives in the analysis package).
func (s *Store) countQuarantined() {
	s.mu.Lock()
	s.quarantined++
	s.mu.Unlock()
}

func resultName(key ResultKey) string { return "res-" + key.Hex() + ".json" }

// Snapshot is the store's counter block for /stats and bench output.
type Snapshot struct {
	MemoryEntries       int    `json:"memory_entries"`
	HitsMemory          int64  `json:"hits_memory"`
	HitsDisk            int64  `json:"hits_disk"`
	Misses              int64  `json:"misses"`
	Quarantined         int64  `json:"quarantined"`
	Coalesced           int64  `json:"coalesced"`
	IOErrors            int64  `json:"io_errors"`
	State               string `json:"state"`
	DegradedTransitions int64  `json:"degraded_transitions"`
	SummariesSaved      int64  `json:"summaries_saved"`
	SummariesLoaded     int64  `json:"summaries_loaded"`
	SummariesDropped    int64  `json:"summaries_dropped"`
	DiskEnabled         bool   `json:"disk_enabled"`
}

// Stats returns the current counters.
func (s *Store) Stats() Snapshot {
	state, trips := s.health.snapshot()
	s.mu.Lock()
	defer s.mu.Unlock()
	return Snapshot{
		MemoryEntries:       s.lru.len(),
		HitsMemory:          s.hitsMemory,
		HitsDisk:            s.hitsDisk,
		Misses:              s.misses,
		Quarantined:         s.quarantined,
		Coalesced:           s.coalesced,
		IOErrors:            s.ioErrors,
		State:               state,
		DegradedTransitions: trips,
		SummariesSaved:      s.sumSaved,
		SummariesLoaded:     s.sumLoaded,
		SummariesDropped:    s.sumDropped,
		DiskEnabled:         s.disk != nil,
	}
}
