package store

import (
	"io"
	"os"
	"path/filepath"
)

// FS is the store's filesystem seam. The disk layer reaches the OS only
// through this interface so tests can inject write errors (ENOSPC, EACCES),
// kill writes between temp-file creation and rename, and flip bits in stored
// entries without touching a real disk. The default implementation is osFS.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	// CreateTemp creates a new temp file in dir whose name starts with
	// pattern; writes go through the returned File.
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	ReadFile(name string) ([]byte, error)
	Remove(name string) error
	ReadDir(name string) ([]os.DirEntry, error)
	Stat(name string) (os.FileInfo, error)
}

// File is the writable handle CreateTemp returns: enough surface for the
// store's write-sync-close-rename sequence.
type File interface {
	io.Writer
	Name() string
	Sync() error
	Close() error
}

// osFS is the real filesystem.
type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Stat(name string) (os.FileInfo, error)      { return os.Stat(name) }

// join builds store paths with the platform separator; a tiny wrapper so the
// disk layer never imports path/filepath directly in more than one place.
func join(elem ...string) string { return filepath.Join(elem...) }
