package store

import (
	"sync"
	"time"
)

// healthState is the store circuit breaker's state. The breaker guards every
// disk operation: a run of consecutive I/O failures trips it to degraded,
// pinning the service to compute-only serving (reads and writes are skipped
// wholesale, never attempted and never block a request). After a cooldown
// the breaker goes half-open and admits a single trial operation; success
// closes it, failure re-trips it with a doubled (capped) cooldown.
//
// Corruption is NOT a health signal: a quarantined entry means the bytes
// were bad, not that the disk is failing, so verify failures do not count
// against the breaker.
type healthState int

const (
	healthOK healthState = iota
	healthDegraded
	healthHalfOpen
)

func (s healthState) String() string {
	switch s {
	case healthOK:
		return "ok"
	case healthDegraded:
		return "degraded"
	case healthHalfOpen:
		return "half-open"
	}
	return "unknown"
}

type health struct {
	mu          sync.Mutex
	threshold   int           // consecutive failures to trip
	base        time.Duration // initial cooldown
	cap         time.Duration // cooldown ceiling
	now         func() time.Time
	state       healthState
	consecutive int
	cooldown    time.Duration // next cooldown to apply on a trip
	until       time.Time     // when degraded may go half-open
	trialOut    bool          // a half-open trial operation is in flight
	transitions int64         // ok/half-open -> degraded trips
}

func newHealth(threshold int, base, cap time.Duration, now func() time.Time) *health {
	return &health{threshold: threshold, base: base, cap: cap, now: now, cooldown: base}
}

// allow reports whether a disk operation may proceed. In the degraded state
// it flips to half-open once the cooldown has elapsed and admits exactly one
// trial; concurrent callers are refused until that trial reports back.
func (h *health) allow() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	switch h.state {
	case healthOK:
		return true
	case healthDegraded:
		if h.now().Before(h.until) {
			return false
		}
		h.state = healthHalfOpen
		h.trialOut = true
		return true
	case healthHalfOpen:
		if h.trialOut {
			return false
		}
		h.trialOut = true
		return true
	}
	return false
}

// success records a completed disk operation: failures reset, a half-open
// trial closes the breaker and restores the base cooldown.
func (h *health) success() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.consecutive = 0
	if h.state == healthHalfOpen {
		h.state = healthOK
		h.trialOut = false
		h.cooldown = h.base
	}
}

// failure records a failed disk operation. A half-open trial failure re-trips
// immediately with a doubled cooldown; in the ok state the breaker trips
// after threshold consecutive failures.
func (h *health) failure() {
	h.mu.Lock()
	defer h.mu.Unlock()
	switch h.state {
	case healthHalfOpen:
		// Double before tripping so the new cooldown governs this trip.
		if h.cooldown *= 2; h.cooldown > h.cap {
			h.cooldown = h.cap
		}
		h.trip()
	case healthOK:
		h.consecutive++
		if h.consecutive >= h.threshold {
			h.trip()
		}
	}
}

// trip moves to degraded; callers hold h.mu.
func (h *health) trip() {
	h.state = healthDegraded
	h.trialOut = false
	h.consecutive = 0
	h.until = h.now().Add(h.cooldown)
	h.transitions++
}

func (h *health) snapshot() (state string, transitions int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state.String(), h.transitions
}
