package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	iofs "io/fs"
	"strings"
	"time"
)

// Disk entry format, version 1:
//
//	icbestore1 <kind> <sha256-hex> <len>\n
//	<payload bytes>
//
// The header names the format version, the entry kind ("result" or
// "summaries"), the payload's sha256 and its exact byte length. A reader
// accepts an entry only when all four agree with the payload that follows —
// anything else (torn write, bit flip, truncation, version skew) is
// corruption, quarantined on sight.
const (
	diskMagic     = "icbestore1"
	kindResult    = "result"
	kindSummaries = "summaries"
	quarantineDir = "quarantine"
	tmpSuffix     = ".tmp"
)

// errCorrupt marks verify-on-read failures, which quarantine the entry and
// never count against the store's health breaker.
var errCorrupt = errors.New("store: corrupt entry")

// disk is the durable layer under the Store: atomic writes (temp file +
// fsync + rename), header-checksummed reads, quarantine for anything that
// fails verification, and an orphan-temp sweep at open. All I/O goes through
// the FS seam and the retry/health wrapper in store.go.
type disk struct {
	dir string
	fs  FS
}

func openDisk(fs FS, dir string) (*disk, error) {
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := fs.MkdirAll(join(dir, quarantineDir), 0o755); err != nil {
		return nil, err
	}
	d := &disk{dir: dir, fs: fs}
	d.sweepTemps()
	return d, nil
}

// sweepTemps removes temp files orphaned by a crash between CreateTemp and
// Rename. Rename is atomic, so an orphan is invisible to readers — the sweep
// is hygiene, not correctness. Errors are ignored: a sweep that fails leaves
// garbage, nothing worse.
func (d *disk) sweepTemps() {
	ents, err := d.fs.ReadDir(d.dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		// CreateTemp appends a random suffix after the ".tmp" marker, so
		// match by containment, not suffix. Entry names never contain it.
		if !e.IsDir() && strings.Contains(e.Name(), tmpSuffix) {
			_ = d.fs.Remove(join(d.dir, e.Name()))
		}
	}
}

// write persists payload under name atomically: temp file in the same
// directory, sync, close, rename. Any error leaves the previous entry (if
// any) intact.
func (d *disk) write(name, kind string, payload []byte) error {
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s %s %s %d\n", diskMagic, kind, hex.EncodeToString(sum[:]), len(payload))
	f, err := d.fs.CreateTemp(d.dir, name+tmpSuffix)
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write([]byte(header)); err != nil {
		f.Close()
		_ = d.fs.Remove(tmp)
		return err
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		_ = d.fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		_ = d.fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = d.fs.Remove(tmp)
		return err
	}
	if err := d.fs.Rename(tmp, join(d.dir, name)); err != nil {
		_ = d.fs.Remove(tmp)
		return err
	}
	return nil
}

// read loads and verifies the named entry. A missing file returns (nil,
// false, nil). A verification failure quarantines the file and returns
// errCorrupt; other errors are I/O failures for the health breaker.
func (d *disk) read(name, kind string) (payload []byte, ok bool, err error) {
	data, err := d.fs.ReadFile(join(d.dir, name))
	if err != nil {
		if isNotExist(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	payload, verr := verifyEntry(data, kind)
	if verr != nil {
		d.quarantine(name)
		return nil, false, errCorrupt
	}
	return payload, true, nil
}

// verifyEntry checks the header and checksum of a raw entry file.
func verifyEntry(data []byte, kind string) ([]byte, error) {
	nl := -1
	// The header is short; cap the scan so a corrupt file cannot make us
	// search megabytes for a newline.
	for i := 0; i < len(data) && i < 160; i++ {
		if data[i] == '\n' {
			nl = i
			break
		}
	}
	if nl < 0 {
		return nil, fmt.Errorf("no header")
	}
	fields := strings.Fields(string(data[:nl]))
	if len(fields) != 4 || fields[0] != diskMagic || fields[1] != kind {
		return nil, fmt.Errorf("bad header")
	}
	wantSum, err := hex.DecodeString(fields[2])
	if err != nil || len(wantSum) != sha256.Size {
		return nil, fmt.Errorf("bad checksum field")
	}
	var wantLen int
	if _, err := fmt.Sscanf(fields[3], "%d", &wantLen); err != nil || wantLen < 0 {
		return nil, fmt.Errorf("bad length field")
	}
	payload := data[nl+1:]
	if len(payload) != wantLen {
		return nil, fmt.Errorf("length mismatch")
	}
	got := sha256.Sum256(payload)
	if hex.EncodeToString(got[:]) != fields[2] {
		return nil, fmt.Errorf("checksum mismatch")
	}
	return payload, nil
}

// quarantine renames a failed entry into the quarantine subdirectory with a
// timestamp-free, collision-safe name (the original name is unique per key).
// A quarantined entry is never read again and never retried; if the rename
// itself fails the entry is removed outright so it cannot be re-served.
func (d *disk) quarantine(name string) {
	if err := d.fs.Rename(join(d.dir, name), join(d.dir, quarantineDir, name)); err != nil {
		_ = d.fs.Remove(join(d.dir, name))
	}
}

// exists reports whether an entry file is present (no verification).
func (d *disk) exists(name string) bool {
	_, err := d.fs.Stat(join(d.dir, name))
	return err == nil
}

// isNotExist treats fs.ErrNotExist (which os wraps, and which fault
// injecting test filesystems should wrap too) as a plain miss.
func isNotExist(err error) bool { return errors.Is(err, iofs.ErrNotExist) }

// retryDelays yields the capped-doubling backoff schedule for transient I/O
// retries: base, 2*base, ... capped, attempts entries total.
func retryDelays(attempts int, base, cap time.Duration) []time.Duration {
	out := make([]time.Duration, 0, attempts)
	d := base
	for i := 0; i < attempts; i++ {
		out = append(out, d)
		if d *= 2; d > cap {
			d = cap
		}
	}
	return out
}
