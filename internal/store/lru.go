package store

import (
	"container/list"
	"crypto/sha256"
)

// Entry is one cached optimization result: the response body exactly as it
// was (and will again be) served, plus the encoded optimized program so a
// disk read can re-validate the result's IR before trusting it.
type Entry struct {
	// Body is the serialized /optimize response body.
	Body []byte `json:"body"`
	// Prog is ir.EncodeProgram of the optimized program; empty for results
	// that carry no program (disabled dumps still carry it — Prog is the
	// verification artifact, not the user payload).
	Prog []byte `json:"prog,omitempty"`
}

// checksum is the entry's self-verification digest, covering both fields
// with a length prefix so (Body, Prog) boundaries cannot shift.
func (e *Entry) checksum() [sha256.Size]byte {
	h := sha256.New()
	var n [8]byte
	putU64(n[:], uint64(len(e.Body)))
	h.Write(n[:])
	h.Write(e.Body)
	h.Write(e.Prog)
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// lru is a bounded in-memory result cache. Every entry stores the checksum
// computed at insertion; get re-verifies it so a corrupted (accidentally
// mutated) entry is dropped rather than served. Not goroutine-safe — the
// Store serializes access.
type lru struct {
	cap  int
	ll   *list.List // front = most recent
	byID map[ResultKey]*list.Element
}

type lruItem struct {
	key ResultKey
	ent *Entry
	sum [sha256.Size]byte
}

func newLRU(capacity int) *lru {
	return &lru{cap: capacity, ll: list.New(), byID: make(map[ResultKey]*list.Element)}
}

func (c *lru) len() int { return c.ll.Len() }

// get returns the entry and whether its checksum still holds. A checksum
// mismatch removes the entry and returns ok=false with corrupt=true.
func (c *lru) get(key ResultKey) (e *Entry, ok, corrupt bool) {
	el, hit := c.byID[key]
	if !hit {
		return nil, false, false
	}
	it := el.Value.(*lruItem)
	if it.ent.checksum() != it.sum {
		c.ll.Remove(el)
		delete(c.byID, key)
		return nil, false, true
	}
	c.ll.MoveToFront(el)
	return it.ent, true, false
}

func (c *lru) put(key ResultKey, e *Entry) {
	if c.cap <= 0 {
		return
	}
	if el, hit := c.byID[key]; hit {
		it := el.Value.(*lruItem)
		it.ent, it.sum = e, e.checksum()
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&lruItem{key: key, ent: e, sum: e.checksum()})
	c.byID[key] = el
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.byID, last.Value.(*lruItem).key)
	}
}
