package store

import (
	"errors"
	"os"
	"sync"
)

// errInject is the transient I/O failure the fault FS returns (think ENOSPC
// or EACCES — an errno, not corruption).
var errInject = errors.New("injected I/O failure")

// faultFS wraps the real filesystem with switchable failure modes, the test
// seam the chaos tests drive: refuse reads, refuse writes, or kill an
// in-flight write between temp-file creation and rename (the crash window
// atomic replacement protects against).
type faultFS struct {
	osFS
	mu         sync.Mutex
	failReads  bool
	failWrites bool
	killRename bool // drop the rename silently: the entry never appears
	reads      int
	writes     int
}

func (f *faultFS) set(mut func(*faultFS)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	mut(f)
}

func (f *faultFS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	fail := f.failReads
	f.reads++
	f.mu.Unlock()
	if fail {
		return nil, errInject
	}
	return f.osFS.ReadFile(name)
}

func (f *faultFS) CreateTemp(dir, pattern string) (File, error) {
	f.mu.Lock()
	fail := f.failWrites
	f.writes++
	f.mu.Unlock()
	if fail {
		return nil, errInject
	}
	return f.osFS.CreateTemp(dir, pattern)
}

func (f *faultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	kill := f.killRename
	f.mu.Unlock()
	if kill {
		// Simulate a crash after the temp write but before the rename: the
		// temp file stays, the destination never appears.
		return nil
	}
	return f.osFS.Rename(oldpath, newpath)
}

func (f *faultFS) Stat(name string) (os.FileInfo, error) {
	f.mu.Lock()
	fail := f.failReads
	f.mu.Unlock()
	if fail {
		return nil, errInject
	}
	return f.osFS.Stat(name)
}
