package store_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"icbe"
	"icbe/internal/analysis"
	"icbe/internal/ir"
	"icbe/internal/progs"
	"icbe/internal/store"
)

func optimizeMemo(t *testing.T, src string, m *analysis.SummaryMemo) (*icbe.Program, *icbe.Report, *ir.Program) {
	t.Helper()
	p, err := icbe.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	opts := icbe.DefaultOptions()
	opts.SummaryMemo = m
	opt, rep, err := p.Optimize(opts)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	return opt, rep, p.Graph()
}

func TestSummariesPersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fp := store.NewSummaryFingerprint(true, true)
	for _, name := range []string{"stdio", "lisp"} {
		w := progs.ByName(name)
		m1 := analysis.NewSummaryMemo()
		opt1, rep1, g1 := optimizeMemo(t, w.Source, m1)
		recs := m1.ExportPristine()
		if len(recs) == 0 {
			t.Fatalf("%s: no pristine records", name)
		}

		s1, err := store.Open(store.Config{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		s1.SaveSummaries(g1, ir.HashProgram(g1), fp, recs)
		if st := s1.Stats(); st.SummariesSaved == 0 {
			t.Fatalf("%s: nothing saved: %+v", name, st)
		}

		// A fresh process: compile again, hash, load, replay. The seeded run
		// must emit the same program as the cold one.
		s2, err := store.Open(store.Config{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		p2, err := icbe.Compile(w.Source)
		if err != nil {
			t.Fatal(err)
		}
		m2 := analysis.NewSummaryMemo()
		accepted := s2.LoadSummaries(p2.Graph(), ir.HashProgram(p2.Graph()), fp, m2)
		if accepted == 0 {
			t.Fatalf("%s: no summaries loaded", name)
		}
		opts := icbe.DefaultOptions()
		opts.SummaryMemo = m2
		opt2, rep2, err := p2.Optimize(opts)
		if err != nil {
			t.Fatal(err)
		}
		if opt1.Dump() != opt2.Dump() {
			t.Errorf("%s: store-seeded run diverged from cold run", name)
		}
		if rep2.Stats.SNEMemoHits < rep1.Stats.SNEMemoHits {
			t.Errorf("%s: seeded replayed fewer summaries (%d < %d)",
				name, rep2.Stats.SNEMemoHits, rep1.Stats.SNEMemoHits)
		}
	}
}

func TestSummariesSurviveRenamedProgram(t *testing.T) {
	// The canonical coordinates are name- and layout-independent for
	// procedure-local content: a program whose procedures and locals were
	// renamed shares closure hashes with the original, so its summaries
	// replay. (Globals are identified by name and do not move.)
	src := progs.ByName("stdio").Source
	renamed := strings.NewReplacer(
		"func getchar(", "func rd_in(", "getchar(", "rd_in(",
		"func putchar(", "func wr_out(", "putchar(", "wr_out(",
	).Replace(src)
	if renamed == src {
		t.Skip("rename produced no change; source layout shifted under the test")
	}

	dir := t.TempDir()
	fp := store.NewSummaryFingerprint(true, true)
	m1 := analysis.NewSummaryMemo()
	_, _, g1 := optimizeMemo(t, src, m1)
	recs := m1.ExportPristine()
	s, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s.SaveSummaries(g1, ir.HashProgram(g1), fp, recs)

	p2, err := icbe.Compile(renamed)
	if err != nil {
		t.Fatalf("renamed source does not compile: %v", err)
	}
	m2 := analysis.NewSummaryMemo()
	if accepted := s.LoadSummaries(p2.Graph(), ir.HashProgram(p2.Graph()), fp, m2); accepted == 0 {
		t.Fatal("summaries did not carry over to the renamed program")
	}
	opts := icbe.DefaultOptions()
	opts.SummaryMemo = m2
	if _, rep, err := p2.Optimize(opts); err != nil {
		t.Fatal(err)
	} else if rep.Stats.SNEMemoHits == 0 {
		t.Fatal("loaded summaries were never replayed")
	}
}

func TestSummariesVerifyOnRead(t *testing.T) {
	dir := t.TempDir()
	fp := store.NewSummaryFingerprint(true, true)
	w := progs.ByName("stdio")
	m1 := analysis.NewSummaryMemo()
	_, _, g1 := optimizeMemo(t, w.Source, m1)
	s, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s.SaveSummaries(g1, ir.HashProgram(g1), fp, m1.ExportPristine())

	// Flip one byte in every stored summary file.
	names, err := filepath.Glob(filepath.Join(dir, "sum-*.json"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no summary files: %v", err)
	}
	for _, n := range names {
		data, err := os.ReadFile(n)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(n, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := icbe.Compile(w.Source)
	if err != nil {
		t.Fatal(err)
	}
	m2 := analysis.NewSummaryMemo()
	if accepted := s2.LoadSummaries(p2.Graph(), ir.HashProgram(p2.Graph()), fp, m2); accepted != 0 {
		t.Fatalf("corrupt summaries accepted: %d", accepted)
	}
	st := s2.Stats()
	if st.Quarantined != int64(len(names)) {
		t.Fatalf("quarantined %d of %d corrupted files", st.Quarantined, len(names))
	}
	// The cold path still works: the memo is empty but usable.
	opts := icbe.DefaultOptions()
	opts.SummaryMemo = m2
	if _, _, err := p2.Optimize(opts); err != nil {
		t.Fatal(err)
	}
}

func TestSummariesOptionsFingerprintIsolation(t *testing.T) {
	dir := t.TempDir()
	w := progs.ByName("stdio")
	m1 := analysis.NewSummaryMemo()
	_, _, g1 := optimizeMemo(t, w.Source, m1)
	s, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	fpA := store.NewSummaryFingerprint(true, true)
	fpB := store.NewSummaryFingerprint(false, false)
	s.SaveSummaries(g1, ir.HashProgram(g1), fpA, m1.ExportPristine())

	p2, err := icbe.Compile(w.Source)
	if err != nil {
		t.Fatal(err)
	}
	m2 := analysis.NewSummaryMemo()
	if n := s.LoadSummaries(p2.Graph(), ir.HashProgram(p2.Graph()), fpB, m2); n != 0 {
		t.Fatalf("records crossed the options fingerprint: %d", n)
	}
}
