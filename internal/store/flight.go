package store

import "context"

// Flight is one in-progress computation for a result key, shared by every
// request that arrived while it was running (stampede control). The first
// caller of BeginFlight becomes the leader and must call FinishFlight exactly
// once; the rest wait on the leader's published entry.
//
// The leader publishes only a cacheable full-fidelity result. When it
// finishes with nothing (the run degraded, truncated, or failed), waiters
// wake empty-handed and compute for themselves — a degraded body is shaped
// by the leader's deadline, not the waiter's, so it must never be served to
// a request that still has budget.
type Flight struct {
	done chan struct{}
	ent  *Entry // nil unless published; written once before done closes
}

// Wait blocks until the leader finishes or ctx expires. It returns the
// published entry, or nil when the leader published nothing or the waiter's
// own deadline ran out first (the waiter then falls through to compute).
func (f *Flight) Wait(ctx context.Context) *Entry {
	select {
	case <-f.done:
		return f.ent
	case <-ctx.Done():
		return nil
	}
}

// BeginFlight joins or opens the flight for key. leader reports whether the
// caller must compute (and then FinishFlight); otherwise it should Wait.
func (s *Store) BeginFlight(key ResultKey) (f *Flight, leader bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.flights[key]; ok {
		return f, false
	}
	f = &Flight{done: make(chan struct{})}
	s.flights[key] = f
	return f, true
}

// FinishFlight closes the leader's flight, publishing e (nil = nothing) to
// every waiter. Must be called exactly once by the leader, on every path.
func (s *Store) FinishFlight(key ResultKey, f *Flight, e *Entry) {
	s.mu.Lock()
	if s.flights[key] == f {
		delete(s.flights, key)
	}
	s.mu.Unlock()
	f.ent = e
	close(f.done)
}
