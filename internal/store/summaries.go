package store

import (
	"encoding/hex"
	"encoding/json"
	"sort"

	"icbe/internal/analysis"
	"icbe/internal/ir"
	"icbe/internal/pred"
)

// Summary persistence.
//
// Procedure summaries (analysis.SummaryMemo records) outlive a process by
// being rewritten into canonical coordinates: every node reference becomes
// (owning procedure's closure hash, canonical node index) and every variable
// reference becomes either (closure hash, canonical var index) or, for
// globals, (name, initial value) — exactly the coordinate system
// ir.HashProgram defines. Records are grouped by the procedure that owns the
// summarized exit and stored one file per (procedure closure, summary
// options fingerprint), so any later program containing a procedure with the
// same closure hash — same content, transitively through its callees — can
// replay them, whatever its node numbering.
//
// Loading is verify-on-read twice over: the disk layer checks the entry
// checksum, the translation drops any reference that does not resolve in the
// receiving program, and analysis.Inject re-validates every surviving record
// against the live IR before committing it. A summary that fails anywhere is
// dropped (and the file quarantined for checksum failures); replay is an
// optimization, never a requirement.

const summaryCodecVersion = 1

// SummaryFingerprint condenses the analysis options that change summary
// content. Records computed under different options never mix.
type SummaryFingerprint [2]bool

// NewSummaryFingerprint builds the fingerprint from the two option bits
// that shape summary closures.
func NewSummaryFingerprint(arithSubst, modSummaries bool) SummaryFingerprint {
	return SummaryFingerprint{arithSubst, modSummaries}
}

func (f SummaryFingerprint) tag() string {
	b := func(v bool) byte {
		if v {
			return '1'
		}
		return '0'
	}
	return string([]byte{b(f[0]), b(f[1])})
}

// canonNode is a node reference in canonical coordinates.
type canonNode struct {
	Proc string `json:"proc"` // closure hash, hex
	Idx  int32  `json:"idx"`  // canonical node index within the proc
}

// canonVar is a variable reference: global by (name, init), local by
// (closure hash, canonical var index).
type canonVar struct {
	Global bool   `json:"global,omitempty"`
	Name   string `json:"name,omitempty"` // globals only
	Init   int64  `json:"init,omitempty"` // globals only
	Proc   string `json:"proc,omitempty"`
	Idx    int32  `json:"idx,omitempty"`
}

type canonKey struct {
	Exit canonNode `json:"exit"`
	Var  canonVar  `json:"var"`
	Op   pred.Op   `json:"op"`
	C    int64     `json:"c"`
}

type canonPair struct {
	Node     canonNode          `json:"node"`
	Var      canonVar           `json:"var"`
	Op       pred.Op            `json:"op"`
	C        int64              `json:"c"`
	Resolved bool               `json:"resolved,omitempty"`
	Ans      analysis.AnswerSet `json:"ans,omitempty"`
}

type canonArrival struct {
	Entry canonNode `json:"entry"`
	Var   canonVar  `json:"var"`
	Op    pred.Op   `json:"op"`
	C     int64     `json:"c"`
}

type canonRecord struct {
	Key      canonKey       `json:"key"`
	Pairs    []canonPair    `json:"pairs,omitempty"`
	Arrivals []canonArrival `json:"arrivals,omitempty"`
	Nested   []canonKey     `json:"nested,omitempty"`
	Touched  []canonNode    `json:"touched,omitempty"`
}

type summaryFile struct {
	Version int           `json:"version"`
	Options string        `json:"options"`
	Records []canonRecord `json:"records"`
}

// coords translates between a program's IDs and canonical coordinates.
type coords struct {
	p  *ir.Program
	ph *ir.ProgramHash
	// nodeOf maps a NodeID to its (proc closure hex, canonical index).
	nodeOf map[ir.NodeID]canonNode
	// globalOf maps (name, init) to the global's VarID.
	globalOf map[globalSig]ir.VarID
}

type globalSig struct {
	name string
	init int64
}

func newCoords(p *ir.Program, ph *ir.ProgramHash) *coords {
	c := &coords{p: p, ph: ph, nodeOf: make(map[ir.NodeID]canonNode), globalOf: make(map[globalSig]ir.VarID)}
	for i := 0; i < ph.NumProcs(); i++ {
		proc := ph.Proc(i)
		hexSum := proc.Closure.Hex()
		for j := 0; j < proc.NodeCount(); j++ {
			id, _ := proc.NodeAt(int32(j))
			c.nodeOf[id] = canonNode{Proc: hexSum, Idx: int32(j)}
		}
	}
	for _, v := range p.Vars {
		if v != nil && v.IsGlobal() {
			c.globalOf[globalSig{v.Name, v.Init}] = v.ID
		}
	}
	return c
}

// encodeNode translates a node reference; ok=false when the node is not in
// any procedure's canonical table (deleted or out of range).
func (c *coords) encodeNode(id ir.NodeID) (canonNode, bool) {
	n, ok := c.nodeOf[id]
	return n, ok
}

// encodeVar translates a variable reference.
func (c *coords) encodeVar(id ir.VarID) (canonVar, bool) {
	if id < 0 || int(id) >= len(c.p.Vars) || c.p.Vars[id] == nil {
		return canonVar{}, false
	}
	v := c.p.Vars[id]
	if v.IsGlobal() {
		return canonVar{Global: true, Name: v.Name, Init: v.Init}, true
	}
	if v.Proc < 0 || v.Proc >= c.ph.NumProcs() {
		return canonVar{}, false
	}
	proc := c.ph.Proc(v.Proc)
	idx, ok := proc.VarIndex(id)
	if !ok {
		// The var is proc-owned but unreferenced by any live node; it has no
		// canonical coordinate and the record is not portable.
		return canonVar{}, false
	}
	return canonVar{Proc: proc.Closure.Hex(), Idx: idx}, true
}

// decodeNode resolves a canonical node reference in the receiving program.
func (c *coords) decodeNode(n canonNode) (ir.NodeID, bool) {
	proc := c.procByHex(n.Proc)
	if proc == nil {
		return 0, false
	}
	return proc.NodeAt(n.Idx)
}

// decodeVar resolves a canonical variable reference.
func (c *coords) decodeVar(v canonVar) (ir.VarID, bool) {
	if v.Global {
		id, ok := c.globalOf[globalSig{v.Name, v.Init}]
		return id, ok
	}
	proc := c.procByHex(v.Proc)
	if proc == nil {
		return 0, false
	}
	return proc.VarAt(v.Idx)
}

func (c *coords) procByHex(h string) *ir.ProcHash {
	raw, err := hex.DecodeString(h)
	if err != nil || len(raw) != len(ir.Sum{}) {
		return nil
	}
	var s ir.Sum
	copy(s[:], raw)
	return c.ph.ByClosure(s)
}

// encodeRecord rewrites one portable record into canonical coordinates;
// ok=false when any reference has no canonical coordinate.
func (c *coords) encodeRecord(r *analysis.PortableRecord) (canonRecord, bool) {
	out := canonRecord{}
	key, ok := c.encodeKey(analysis.PortableKey{Exit: r.Key.Exit, Var: r.Key.Var, Op: r.Key.Op, C: r.Key.C})
	if !ok {
		return out, false
	}
	out.Key = key
	for _, p := range r.Pairs {
		n, ok1 := c.encodeNode(p.Node)
		v, ok2 := c.encodeVar(p.Var)
		if !ok1 || !ok2 {
			return out, false
		}
		out.Pairs = append(out.Pairs, canonPair{Node: n, Var: v, Op: p.Op, C: p.C, Resolved: p.Resolved, Ans: p.Ans})
	}
	for _, a := range r.Arrivals {
		n, ok1 := c.encodeNode(a.Entry)
		v, ok2 := c.encodeVar(a.Var)
		if !ok1 || !ok2 {
			return out, false
		}
		out.Arrivals = append(out.Arrivals, canonArrival{Entry: n, Var: v, Op: a.Op, C: a.C})
	}
	for _, nk := range r.Nested {
		k, ok := c.encodeKey(nk)
		if !ok {
			return out, false
		}
		out.Nested = append(out.Nested, k)
	}
	for _, id := range r.Touched {
		n, ok := c.encodeNode(id)
		if !ok {
			return out, false
		}
		out.Touched = append(out.Touched, n)
	}
	return out, true
}

func (c *coords) encodeKey(k analysis.PortableKey) (canonKey, bool) {
	n, ok1 := c.encodeNode(k.Exit)
	v, ok2 := c.encodeVar(k.Var)
	if !ok1 || !ok2 {
		return canonKey{}, false
	}
	return canonKey{Exit: n, Var: v, Op: k.Op, C: k.C}, true
}

// decodeRecord resolves one canonical record against the receiving program;
// ok=false when any reference does not resolve (the record is dropped —
// analysis.Inject re-validates whatever passes here).
func (c *coords) decodeRecord(r *canonRecord) (analysis.PortableRecord, bool) {
	out := analysis.PortableRecord{}
	key, ok := c.decodeKey(r.Key)
	if !ok {
		return out, false
	}
	out.Key = key
	for _, p := range r.Pairs {
		n, ok1 := c.decodeNode(p.Node)
		v, ok2 := c.decodeVar(p.Var)
		if !ok1 || !ok2 {
			return out, false
		}
		out.Pairs = append(out.Pairs, analysis.PortablePair{Node: n, Var: v, Op: p.Op, C: p.C, Resolved: p.Resolved, Ans: p.Ans})
	}
	for _, a := range r.Arrivals {
		n, ok1 := c.decodeNode(a.Entry)
		v, ok2 := c.decodeVar(a.Var)
		if !ok1 || !ok2 {
			return out, false
		}
		out.Arrivals = append(out.Arrivals, analysis.PortableArrival{Entry: n, Var: v, Op: a.Op, C: a.C})
	}
	for _, nk := range r.Nested {
		k, ok := c.decodeKey(nk)
		if !ok {
			return out, false
		}
		out.Nested = append(out.Nested, k)
	}
	for _, n := range r.Touched {
		id, ok := c.decodeNode(n)
		if !ok {
			return out, false
		}
		out.Touched = append(out.Touched, id)
	}
	// Touched sets are sorted in record coordinates; canonical order is a
	// permutation of node IDs, so re-sort after translation.
	sort.Slice(out.Touched, func(i, j int) bool { return out.Touched[i] < out.Touched[j] })
	return out, true
}

func (c *coords) decodeKey(k canonKey) (analysis.PortableKey, bool) {
	n, ok1 := c.decodeNode(k.Exit)
	v, ok2 := c.decodeVar(k.Var)
	if !ok1 || !ok2 {
		return analysis.PortableKey{}, false
	}
	return analysis.PortableKey{Exit: n, Var: v, Op: k.Op, C: k.C}, true
}

func summaryName(closure ir.Sum, fp SummaryFingerprint) string {
	return "sum-" + closure.Hex() + "-" + fp.tag() + ".json"
}

// SaveSummaries persists a run's pristine summary records, grouped by the
// procedure owning each summarized exit. Files that already exist are left
// alone (summary content for a closure is content-addressed; the first
// writer's records are as good as anyone's). Unportable records are skipped.
func (s *Store) SaveSummaries(p *ir.Program, ph *ir.ProgramHash, fp SummaryFingerprint, recs []analysis.PortableRecord) {
	if s.disk == nil || len(recs) == 0 {
		return
	}
	co := newCoords(p, ph)
	groups := make(map[ir.Sum][]canonRecord)
	for i := range recs {
		cn, ok := co.encodeNode(recs[i].Key.Exit)
		if !ok {
			continue
		}
		cr, ok := co.encodeRecord(&recs[i])
		if !ok {
			continue
		}
		var closure ir.Sum
		raw, _ := hex.DecodeString(cn.Proc)
		copy(closure[:], raw)
		groups[closure] = append(groups[closure], cr)
	}
	for closure, crs := range groups {
		name := summaryName(closure, fp)
		if s.disk.exists(name) {
			continue
		}
		payload, err := json.Marshal(summaryFile{Version: summaryCodecVersion, Options: fp.tag(), Records: crs})
		if err != nil {
			continue
		}
		if s.diskOp(func() error { return s.disk.write(name, kindSummaries, payload) }) {
			s.mu.Lock()
			s.sumSaved += int64(len(crs))
			s.mu.Unlock()
		}
	}
}

// LoadSummaries seeds a memo with every stored summary whose procedure
// closure appears in the program. Returns the number of records the memo
// accepted. Corrupt files are quarantined; records that fail translation or
// Inject's validation are dropped and counted.
func (s *Store) LoadSummaries(p *ir.Program, ph *ir.ProgramHash, fp SummaryFingerprint, m *analysis.SummaryMemo) int {
	if s.disk == nil {
		return 0
	}
	co := newCoords(p, ph)
	seen := make(map[ir.Sum]bool)
	var recs []analysis.PortableRecord
	dropped := 0
	for i := 0; i < ph.NumProcs(); i++ {
		closure := ph.Proc(i).Closure
		if seen[closure] {
			continue
		}
		seen[closure] = true
		name := summaryName(closure, fp)
		var payload []byte
		var ok bool
		var ioErr error
		if !s.diskOp(func() error {
			var err error
			payload, ok, err = s.disk.read(name, kindSummaries)
			ioErr = err
			return err
		}) {
			if ioErr == errCorrupt {
				s.countQuarantined()
			}
			continue
		}
		if !ok {
			continue
		}
		var sf summaryFile
		if err := json.Unmarshal(payload, &sf); err != nil || sf.Version != summaryCodecVersion || sf.Options != fp.tag() {
			s.disk.quarantine(name)
			s.countQuarantined()
			continue
		}
		for j := range sf.Records {
			pr, ok := co.decodeRecord(&sf.Records[j])
			if !ok {
				dropped++
				continue
			}
			recs = append(recs, pr)
		}
	}
	if len(recs) == 0 {
		if dropped > 0 {
			s.mu.Lock()
			s.sumDropped += int64(dropped)
			s.mu.Unlock()
		}
		return 0
	}
	accepted := m.Inject(p, recs)
	s.mu.Lock()
	s.sumLoaded += int64(accepted)
	s.sumDropped += int64(dropped + len(recs) - accepted)
	s.mu.Unlock()
	return accepted
}
