package store

import (
	"context"
	"crypto/sha256"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manual clock for breaker-recovery tests; sleep advances it
// so retry backoff costs no wall time.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) sleep(d time.Duration) { c.advance(d) }

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testKey(b byte) ResultKey {
	var k ResultKey
	k[0] = b
	return k
}

func openTest(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestMemoryRoundTrip(t *testing.T) {
	s := openTest(t, Config{CacheEntries: 2})
	k := testKey(1)
	e := &Entry{Body: []byte(`{"tier":"full"}`)}
	s.PutResult(k, e)
	got, src := s.GetResult(k)
	if src != "memory" || string(got.Body) != string(e.Body) {
		t.Fatalf("got src=%q body=%q", src, got.Body)
	}
	// Eviction: two more keys push the first out.
	s.PutResult(testKey(2), e)
	s.PutResult(testKey(3), e)
	if _, src := s.GetResult(k); src != "" {
		t.Fatalf("expected eviction miss, got %q", src)
	}
	st := s.Stats()
	if st.HitsMemory != 1 || st.Misses != 1 || st.MemoryEntries != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestMemoryCorruptionDropped(t *testing.T) {
	s := openTest(t, Config{CacheEntries: 4})
	k := testKey(1)
	e := &Entry{Body: []byte("cached body")}
	s.PutResult(k, e)
	// The caller's pointer aliases the cached entry: mutating it models
	// in-process memory corruption, which the checksum must catch.
	e.Body[0] ^= 0xFF
	if _, src := s.GetResult(k); src != "" {
		t.Fatalf("corrupt entry served from %q", src)
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", st.Quarantined)
	}
}

func TestDiskRoundTripAcrossStores(t *testing.T) {
	dir := t.TempDir()
	k := testKey(7)
	e := &Entry{Body: []byte(`{"tier":"full","dump":"x"}`)}
	s1 := openTest(t, Config{CacheEntries: 4, Dir: dir})
	s1.PutResult(k, e)

	// A second store over the same directory models a process restart.
	s2 := openTest(t, Config{CacheEntries: 4, Dir: dir})
	got, src := s2.GetResult(k)
	if src != "disk" || string(got.Body) != string(e.Body) {
		t.Fatalf("got src=%q body=%q", src, got)
	}
	// The disk hit populated memory.
	if _, src := s2.GetResult(k); src != "memory" {
		t.Fatalf("second get src=%q, want memory", src)
	}
}

func TestSourceMap(t *testing.T) {
	s := openTest(t, Config{CacheEntries: 2})
	l1, l2 := KeyForSource("func main() {}", Fingerprint{}), testKey(9)
	if _, ok := s.SourceKey(l1); ok {
		t.Fatal("unexpected L1 hit")
	}
	s.MapSource(l1, l2)
	got, ok := s.SourceKey(l1)
	if !ok || got != l2 {
		t.Fatalf("L1 lookup = %v %v", got, ok)
	}
}

func TestVerifyOnReadQuarantinesBitFlips(t *testing.T) {
	dir := t.TempDir()
	k := testKey(3)
	s1 := openTest(t, Config{CacheEntries: 4, Dir: dir})
	s1.PutResult(k, &Entry{Body: []byte("precious result")})

	name := filepath.Join(dir, resultName(k))
	data, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x01
	if err := os.WriteFile(name, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, Config{CacheEntries: 4, Dir: dir})
	if _, src := s2.GetResult(k); src != "" {
		t.Fatalf("corrupt entry served from %q", src)
	}
	st := s2.Stats()
	if st.Quarantined != 1 || st.Misses != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// The entry was renamed aside, not deleted, and is never retried.
	if _, err := os.Stat(name); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry still in place: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, resultName(k))); err != nil {
		t.Fatalf("quarantined copy missing: %v", err)
	}
	if _, src := s2.GetResult(k); src != "" {
		t.Fatal("quarantined entry came back")
	}
	// I/O was healthy throughout: corruption must not trip the breaker.
	if st.State != "ok" || st.IOErrors != 0 {
		t.Fatalf("breaker reacted to corruption: %+v", st)
	}
}

func TestVerifyOnReadRejectsBadProgram(t *testing.T) {
	// A valid checksum over an entry whose embedded program does not decode:
	// header verification passes, IR verification must still refuse it.
	dir := t.TempDir()
	k := testKey(4)
	s1 := openTest(t, Config{CacheEntries: 4, Dir: dir})
	s1.PutResult(k, &Entry{Body: []byte("body"), Prog: []byte("not an encoded program")})

	s2 := openTest(t, Config{CacheEntries: 4, Dir: dir})
	if _, src := s2.GetResult(k); src != "" {
		t.Fatalf("entry with invalid program served from %q", src)
	}
	if st := s2.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestOrphanTempSweep(t *testing.T) {
	dir := t.TempDir()
	orphan := filepath.Join(dir, "res-deadbeef.json.tmp123")
	if err := os.WriteFile(orphan, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	openTest(t, Config{Dir: dir})
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan temp not swept: %v", err)
	}
}

func TestKilledWriteLeavesNoEntry(t *testing.T) {
	dir := t.TempDir()
	fs := &faultFS{}
	fs.set(func(f *faultFS) { f.killRename = true })
	s := openTest(t, Config{CacheEntries: 4, Dir: dir, FS: fs})
	k := testKey(5)
	s.PutResult(k, &Entry{Body: []byte("never lands")})

	// The entry is served from memory in this process...
	if _, src := s.GetResult(k); src != "memory" {
		t.Fatal("memory layer should still serve")
	}
	// ...but a restart finds no entry and no readable garbage — only a temp
	// file, which the open sweep removes.
	fs.set(func(f *faultFS) { f.killRename = false })
	s2 := openTest(t, Config{CacheEntries: 4, Dir: dir, FS: fs})
	if _, src := s2.GetResult(k); src != "" {
		t.Fatalf("torn write served from %q", src)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), tmpSuffix) {
			t.Fatalf("orphan temp survived sweep: %s", e.Name())
		}
	}
}

func TestSingleFlightCoalesces(t *testing.T) {
	s := openTest(t, Config{CacheEntries: 4})
	k := testKey(6)
	f1, leader := s.BeginFlight(k)
	if !leader {
		t.Fatal("first caller should lead")
	}
	f2, leader2 := s.BeginFlight(k)
	if leader2 {
		t.Fatal("second caller must wait")
	}
	e := &Entry{Body: []byte("shared")}
	done := make(chan *Entry, 1)
	go func() { done <- s.WaitFlight(context.Background(), f2) }()
	s.FinishFlight(k, f1, e)
	if got := <-done; got == nil || string(got.Body) != "shared" {
		t.Fatalf("waiter got %v", got)
	}
	if st := s.Stats(); st.Coalesced != 1 {
		t.Fatalf("coalesced = %d", st.Coalesced)
	}
	// The flight is gone; the next request leads again.
	if _, leader := s.BeginFlight(k); !leader {
		t.Fatal("flight not cleared")
	}
}

func TestSingleFlightNilPublishWakesWaitersEmpty(t *testing.T) {
	s := openTest(t, Config{CacheEntries: 4})
	k := testKey(6)
	f1, _ := s.BeginFlight(k)
	f2, _ := s.BeginFlight(k)
	done := make(chan *Entry, 1)
	go func() { done <- s.WaitFlight(context.Background(), f2) }()
	s.FinishFlight(k, f1, nil) // degraded result: not shareable
	if got := <-done; got != nil {
		t.Fatalf("waiter got %v, want nil", got)
	}
	if st := s.Stats(); st.Coalesced != 0 {
		t.Fatalf("coalesced = %d, want 0", st.Coalesced)
	}
}

func TestSingleFlightWaiterHonorsOwnDeadline(t *testing.T) {
	s := openTest(t, Config{CacheEntries: 4})
	k := testKey(6)
	_, _ = s.BeginFlight(k)
	f2, _ := s.BeginFlight(k)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if got := s.WaitFlight(ctx, f2); got != nil {
		t.Fatalf("expired waiter got %v", got)
	}
}

func TestBreakerTripsAndRecoversHalfOpen(t *testing.T) {
	dir := t.TempDir()
	fs := &faultFS{}
	clk := &fakeClock{t: time.Unix(1000, 0)}
	cfg := Config{
		CacheEntries: 4, Dir: dir, FS: fs,
		Retries: 1, FailThreshold: 2,
		Cooldown: time.Second, CooldownCap: 8 * time.Second,
	}
	cfg.SetClock(clk.now, clk.sleep)
	s := openTest(t, cfg)
	k := testKey(8)
	s.PutResult(k, &Entry{Body: []byte("x")})
	s.lru = newLRU(4) // drop the memory copy so gets go to disk

	fs.set(func(f *faultFS) { f.failReads = true })
	for i := 0; i < 2; i++ {
		s.GetResult(k)
	}
	st := s.Stats()
	if st.State != "degraded" || st.DegradedTransitions != 1 || st.IOErrors != 2 {
		t.Fatalf("after failures: %+v", st)
	}
	// Degraded pins to compute-only: disk is not even attempted.
	before := func() int { fs.mu.Lock(); defer fs.mu.Unlock(); return fs.reads }()
	s.GetResult(k)
	if after := func() int { fs.mu.Lock(); defer fs.mu.Unlock(); return fs.reads }(); after != before {
		t.Fatal("degraded store touched the disk")
	}

	// After the cooldown the breaker goes half-open; a healthy trial closes
	// it and the store serves from disk again.
	fs.set(func(f *faultFS) { f.failReads = false })
	clk.advance(2 * time.Second)
	if got, src := s.GetResult(k); src != "disk" || string(got.Body) != "x" {
		t.Fatalf("post-recovery get: src=%q", src)
	}
	if st := s.Stats(); st.State != "ok" {
		t.Fatalf("breaker did not close: %+v", st)
	}
}

func TestBreakerHalfOpenFailureDoublesCooldown(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	h := newHealth(1, time.Second, 8*time.Second, clk.now)
	h.failure() // trip
	if st, _ := h.snapshot(); st != "degraded" {
		t.Fatalf("state %s", st)
	}
	clk.advance(1100 * time.Millisecond)
	if !h.allow() {
		t.Fatal("half-open trial refused")
	}
	if h.allow() {
		t.Fatal("second concurrent trial admitted")
	}
	h.failure() // trial failed: cooldown doubles to 2s
	clk.advance(1100 * time.Millisecond)
	if h.allow() {
		t.Fatal("reopened before doubled cooldown")
	}
	clk.advance(time.Second)
	if !h.allow() {
		t.Fatal("trial refused after doubled cooldown")
	}
	h.success()
	if st, _ := h.snapshot(); st != "ok" {
		t.Fatalf("state %s after recovery", st)
	}
	if _, trips := h.snapshot(); trips != 2 {
		t.Fatalf("transitions = %d, want 2", trips)
	}
}

func TestWriteFailureDoesNotPoisonStore(t *testing.T) {
	dir := t.TempDir()
	fs := &faultFS{}
	fs.set(func(f *faultFS) { f.failWrites = true })
	cfg := Config{CacheEntries: 4, Dir: dir, FS: fs, Retries: 1, FailThreshold: 100}
	clk := &fakeClock{t: time.Unix(0, 0)}
	cfg.SetClock(clk.now, clk.sleep)
	s := openTest(t, cfg)
	k := testKey(2)
	s.PutResult(k, &Entry{Body: []byte("survives in memory")})
	if _, src := s.GetResult(k); src != "memory" {
		t.Fatal("memory put should survive a disk write failure")
	}
	if st := s.Stats(); st.IOErrors == 0 {
		t.Fatal("write failure not counted")
	}
}

func TestKeyDerivations(t *testing.T) {
	fpA := NewFingerprint([]byte("opts-a"))
	fpB := NewFingerprint([]byte("opts-b"))
	var sum [sha256.Size]byte
	if KeyForSource("src", fpA) == KeyForSource("src", fpB) {
		t.Fatal("fingerprint ignored in L1 key")
	}
	if KeyForSource("src", fpA) != KeyForSource("src", fpA) {
		t.Fatal("L1 key not deterministic")
	}
	k1 := KeyForProgram([32]byte{1}, sum, fpA)
	k2 := KeyForProgram([32]byte{2}, sum, fpA)
	k3 := KeyForProgram([32]byte{1}, sum, fpB)
	if k1 == k2 || k1 == k3 {
		t.Fatal("L2 key collisions")
	}
}
