package pred

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{Eq: "==", Ne: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">="}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", int(op), got, want)
		}
	}
	if got := Op(99).String(); got != "Op(99)" {
		t.Errorf("invalid op string = %q", got)
	}
}

func TestParseOp(t *testing.T) {
	for _, op := range []Op{Eq, Ne, Lt, Le, Gt, Ge} {
		got, ok := ParseOp(op.String())
		if !ok || got != op {
			t.Errorf("ParseOp(%q) = %v,%v", op.String(), got, ok)
		}
	}
	if _, ok := ParseOp("<>"); ok {
		t.Error("ParseOp accepted invalid operator")
	}
}

func TestOpNegate(t *testing.T) {
	vals := []int64{-3, -1, 0, 1, 2, 7}
	for _, op := range []Op{Eq, Ne, Lt, Le, Gt, Ge} {
		for _, v := range vals {
			for _, c := range vals {
				if op.Eval(v, c) == op.Negate().Eval(v, c) {
					t.Fatalf("negation not complement: %d %s %d", v, op, c)
				}
			}
		}
	}
}

func TestOpNegateInvolution(t *testing.T) {
	for _, op := range []Op{Eq, Ne, Lt, Le, Gt, Ge} {
		if op.Negate().Negate() != op {
			t.Errorf("double negation of %s = %s", op, op.Negate().Negate())
		}
	}
}

func TestPredSatMembership(t *testing.T) {
	// Property: v ∈ Sat(p) iff p.Eval(v).
	f := func(opRaw uint8, c, v int64) bool {
		p := Pred{Op: Op(opRaw % 6), C: c}
		return p.Sat().Contains(v) == p.Eval(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPredSatExtremes(t *testing.T) {
	if !(Pred{Op: Lt, C: math.MinInt64}).Sat().Empty() {
		t.Error("v < MinInt64 should be unsatisfiable")
	}
	if !(Pred{Op: Gt, C: math.MaxInt64}).Sat().Empty() {
		t.Error("v > MaxInt64 should be unsatisfiable")
	}
	ne := (Pred{Op: Ne, C: math.MinInt64}).Sat()
	if ne.Contains(math.MinInt64) || !ne.Contains(math.MinInt64+1) {
		t.Errorf("Ne MinInt64 wrong: %v", ne)
	}
	ne = (Pred{Op: Ne, C: math.MaxInt64}).Sat()
	if ne.Contains(math.MaxInt64) || !ne.Contains(math.MaxInt64-1) {
		t.Errorf("Ne MaxInt64 wrong: %v", ne)
	}
}

func TestPredNegateSatComplement(t *testing.T) {
	f := func(opRaw uint8, c, v int64) bool {
		p := Pred{Op: Op(opRaw % 6), C: c}
		return p.Sat().Contains(v) != p.Negate().Sat().Contains(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoundCmp(t *testing.T) {
	order := []Bound{NegInf(), Fin(math.MinInt64), Fin(-1), Fin(0), Fin(1), Fin(math.MaxInt64), PosInf()}
	for i, a := range order {
		for j, b := range order {
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got := a.Cmp(b); got != want {
				t.Errorf("Cmp(%s,%s) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestBoundValuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Value on +inf did not panic")
		}
	}()
	PosInf().Value()
}

func TestBoundSuccSaturates(t *testing.T) {
	if !Fin(math.MaxInt64).succ().IsPosInf() {
		t.Error("succ(MaxInt64) should be +inf")
	}
	if got := Fin(5).succ(); got.Cmp(Fin(6)) != 0 {
		t.Errorf("succ(5) = %s", got)
	}
	if !PosInf().succ().IsPosInf() {
		t.Error("succ(+inf) should be +inf")
	}
}

func TestNormalizeMerges(t *testing.T) {
	s := Normalize([]Interval{
		{Fin(5), Fin(9)},
		{Fin(0), Fin(3)},
		{Fin(4), Fin(4)},   // adjacent to both: everything merges to [0,9]
		{Fin(20), Fin(10)}, // empty, dropped
	})
	want := Set{{Fin(0), Fin(9)}}
	if !s.Equal(want) {
		t.Errorf("Normalize = %v, want %v", s, want)
	}
}

func TestNormalizeKeepsGaps(t *testing.T) {
	s := Normalize([]Interval{{Fin(0), Fin(1)}, {Fin(3), Fin(4)}})
	if len(s) != 2 {
		t.Errorf("Normalize merged across a gap: %v", s)
	}
	if s.Contains(2) {
		t.Error("gap value contained")
	}
}

func TestSetOperationsSemantics(t *testing.T) {
	// Property: membership distributes over Union/Intersect for sets built
	// from two predicates.
	f := func(op1, op2 uint8, c1, c2 int64, v int64) bool {
		a := Pred{Op: Op(op1 % 6), C: c1}.Sat()
		b := Pred{Op: Op(op2 % 6), C: c2}.Sat()
		u := a.Union(b)
		i := a.Intersect(b)
		inA, inB := a.Contains(v), b.Contains(v)
		return u.Contains(v) == (inA || inB) && i.Contains(v) == (inA && inB)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSubsetAndIntersects(t *testing.T) {
	a := Range(0, 10)
	b := Range(3, 5)
	if !b.SubsetOf(a) || a.SubsetOf(b) {
		t.Error("subset relation wrong")
	}
	if !a.Intersects(b) {
		t.Error("intersects wrong")
	}
	c := Range(11, 20)
	if a.Intersects(c) {
		t.Error("disjoint ranges reported intersecting")
	}
	if !(Set{}).SubsetOf(a) {
		t.Error("empty set must be subset of everything")
	}
	if (Set{}).Intersects(a) {
		t.Error("empty set intersects nothing")
	}
}

func TestSubsetConsistentWithIntersect(t *testing.T) {
	f := func(op1, op2 uint8, c1, c2 int64) bool {
		a := Pred{Op: Op(op1 % 6), C: c1}.Sat()
		b := Pred{Op: Op(op2 % 6), C: c2}.Sat()
		// a ⊆ b iff a ∩ b == a
		return a.SubsetOf(b) == a.Intersect(b).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecide(t *testing.T) {
	tests := []struct {
		fact Set
		p    Pred
		want Outcome
	}{
		{Single(0), Pred{Eq, 0}, True},
		{Single(0), Pred{Ne, 0}, False},
		{Single(5), Pred{Lt, 10}, True},
		{Single(5), Pred{Gt, 10}, False},
		{Range(0, 255), Pred{Ge, 0}, True},        // unsigned load
		{Range(0, 255), Pred{Eq, -1}, False},      // EOF test on unsigned char
		{Range(0, 255), Pred{Eq, 10}, Unknown},    // could be newline or not
		{Pred{Ne, 0}.Sat(), Pred{Eq, 0}, False},   // after deref, p == 0 is false
		{Pred{Ne, 0}.Sat(), Pred{Ne, 0}, True},    //
		{Pred{Gt, 3}.Sat(), Pred{Ge, 3}, True},    // v>3 implies v>=3
		{Pred{Ge, 3}.Sat(), Pred{Gt, 3}, Unknown}, // v>=3 does not imply v>3
		{Pred{Le, -1}.Sat(), Pred{Lt, 0}, True},   // v<=-1 implies v<0
		{Pred{Eq, 7}.Sat(), Pred{Ne, 8}, True},    //
		{Set{}, Pred{Eq, 0}, True},                // unreachable fact
		{All(), Pred{Eq, 0}, Unknown},             //
		{Range(0, 255), Pred{Le, 255}, True},      //
		{Range(0, 255), Pred{Lt, 255}, Unknown},   //
		{Range(0, 255), Pred{Gt, 255}, False},     //
		{All(), Pred{Lt, math.MinInt64}, False},   // unsatisfiable predicate
		{All(), Pred{Gt, math.MaxInt64}, False},   //
		{All(), Pred{Le, math.MaxInt64}, True},    // tautological predicate
		{Single(math.MinInt64), Pred{Le, math.MinInt64}, True},
	}
	for _, tc := range tests {
		if got := Decide(tc.fact, tc.p); got != tc.want {
			t.Errorf("Decide(%v, %v) = %v, want %v", tc.fact, tc.p, got, tc.want)
		}
	}
}

func TestDecideAgreesWithBruteForce(t *testing.T) {
	// Exhaustive check on a small universe: build facts and preds from
	// constants in [-3,3] and verify Decide against direct evaluation over
	// a wide sample window.
	consts := []int64{-3, -2, -1, 0, 1, 2, 3}
	ops := []Op{Eq, Ne, Lt, Le, Gt, Ge}
	for _, fop := range ops {
		for _, fc := range consts {
			fact := Pred{Op: fop, C: fc}.Sat()
			for _, qop := range ops {
				for _, qc := range consts {
					q := Pred{Op: qop, C: qc}
					allTrue, allFalse := true, true
					for v := int64(-10); v <= 10; v++ {
						if !fact.Contains(v) {
							continue
						}
						if q.Eval(v) {
							allFalse = false
						} else {
							allTrue = false
						}
					}
					// The window [-10,10] is wide enough to be
					// representative only when the fact set extends beyond
					// it symmetrically; infinite tails share the truth value
					// of the window edge for our operator constants, so the
					// window verdict matches the full verdict.
					got := Decide(fact, q)
					if allTrue && !allFalse && got != True {
						t.Errorf("fact (v %s %d), q (v %s %d): want True, got %v", fop, fc, qop, qc, got)
					}
					if allFalse && !allTrue && got != False {
						t.Errorf("fact (v %s %d), q (v %s %d): want False, got %v", fop, fc, qop, qc, got)
					}
					if !allTrue && !allFalse && got != Unknown {
						t.Errorf("fact (v %s %d), q (v %s %d): want Unknown, got %v", fop, fc, qop, qc, got)
					}
					if dp := DecidePred(Pred{Op: fop, C: fc}, q); dp != got {
						t.Errorf("DecidePred(v %s %d, v %s %d) = %v, Decide = %v",
							fop, fc, qop, qc, dp, got)
					}
				}
			}
		}
	}
}

func TestShiftSat(t *testing.T) {
	p, ok := ShiftSat(Pred{Eq, 10}, 3) // v = w+3, v==10 -> w==7
	if !ok || p.C != 7 || p.Op != Eq {
		t.Errorf("ShiftSat = %v,%v", p, ok)
	}
	if _, ok := ShiftSat(Pred{Eq, math.MaxInt64}, -1); ok {
		t.Error("overflowing shift accepted")
	}
	if _, ok := ShiftSat(Pred{Eq, math.MinInt64}, 1); ok {
		t.Error("underflowing shift accepted")
	}
}

func TestShiftSatSemantics(t *testing.T) {
	f := func(opRaw uint8, c int64, k int16, w int64) bool {
		p := Pred{Op: Op(opRaw % 6), C: c}
		q, ok := ShiftSat(p, int64(k))
		if !ok {
			return true // overflow declined; nothing to check
		}
		// v = w + k, guard against overflow in the test itself
		v := w + int64(k)
		if (int64(k) > 0 && v < w) || (int64(k) < 0 && v > w) {
			return true
		}
		return p.Eval(v) == q.Eval(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSetString(t *testing.T) {
	if got := (Set{}).String(); got != "{}" {
		t.Errorf("empty set string = %q", got)
	}
	s := Pred{Ne, 0}.Sat()
	if got := s.String(); got != "[-inf,-1] ∪ [1,+inf]" {
		t.Errorf("Ne 0 set string = %q", got)
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{Fin(2), Fin(5)}
	if iv.Empty() || !iv.Contains(2) || !iv.Contains(5) || iv.Contains(6) || iv.Contains(1) {
		t.Errorf("interval membership wrong for %v", iv)
	}
	if got := iv.String(); got != "[2,5]" {
		t.Errorf("interval string = %q", got)
	}
	if !(Interval{Fin(5), Fin(2)}).Empty() {
		t.Error("inverted interval not empty")
	}
}

func TestRangeBounds(t *testing.T) {
	if !RangeBounds(Fin(3), Fin(2)).Empty() {
		t.Error("inverted RangeBounds not empty")
	}
	s := RangeBounds(NegInf(), Fin(-1))
	if !s.Contains(math.MinInt64) || s.Contains(0) {
		t.Errorf("RangeBounds(-inf,-1) = %v", s)
	}
}
