// Package pred implements the small predicate algebra used by the ICBE
// correlation analysis. Queries and branch assertions in the paper are
// restricted to the form (var relop const); this package decides, given a
// fact about a variable's value (an exact constant, a value range, or a
// previously established relational assertion), whether a query predicate is
// implied true, implied false, or left undetermined.
//
// Facts and predicates are both represented through their satisfying sets
// over the integers, modeled as normalized unions of closed intervals with
// optional infinite endpoints. All arithmetic is exact over int64 with
// explicit handling of the representation limits.
package pred

import (
	"fmt"
	"math"
)

// Op is a relational operator appearing in a predicate (v Op C).
type Op uint8

// The six relational operators of MiniC conditionals.
const (
	Eq Op = iota // ==
	Ne           // !=
	Lt           // <
	Le           // <=
	Gt           // >
	Ge           // >=
)

var opNames = [...]string{Eq: "==", Ne: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">="}

func (o Op) String() string {
	if int(o) >= len(opNames) {
		return fmt.Sprintf("Op(%d)", int(o))
	}
	return opNames[o]
}

// ParseOp converts a source-level operator token to an Op.
func ParseOp(s string) (Op, bool) {
	switch s {
	case "==":
		return Eq, true
	case "!=":
		return Ne, true
	case "<":
		return Lt, true
	case "<=":
		return Le, true
	case ">":
		return Gt, true
	case ">=":
		return Ge, true
	}
	return 0, false
}

// Negate returns the operator computing the logical negation: !(v Op c) ==
// (v Negate(Op) c).
func (o Op) Negate() Op {
	switch o {
	case Eq:
		return Ne
	case Ne:
		return Eq
	case Lt:
		return Ge
	case Le:
		return Gt
	case Gt:
		return Le
	case Ge:
		return Lt
	}
	panic(fmt.Sprintf("pred: invalid operator %d", int(o)))
}

// Eval evaluates (v Op c) for a concrete value v.
func (o Op) Eval(v, c int64) bool {
	switch o {
	case Eq:
		return v == c
	case Ne:
		return v != c
	case Lt:
		return v < c
	case Le:
		return v <= c
	case Gt:
		return v > c
	case Ge:
		return v >= c
	}
	panic(fmt.Sprintf("pred: invalid operator %d", int(o)))
}

// Pred is a predicate (v Op C) about an unnamed variable v.
type Pred struct {
	Op Op
	C  int64
}

func (p Pred) String() string { return fmt.Sprintf("%s %d", p.Op, p.C) }

// Negate returns the logical complement of p.
func (p Pred) Negate() Pred { return Pred{Op: p.Op.Negate(), C: p.C} }

// Eval evaluates the predicate for the concrete value v.
func (p Pred) Eval(v int64) bool { return p.Op.Eval(v, p.C) }

// Sat returns the set of integer values satisfying p.
func (p Pred) Sat() Set { return Set(p.satInto(nil)) }

// satInto appends the satisfying intervals of p (at most two) to ivs. With
// a caller-provided stack buffer it builds the set without heap allocation.
func (p Pred) satInto(ivs []Interval) []Interval {
	switch p.Op {
	case Eq:
		return append(ivs, Interval{Fin(p.C), Fin(p.C)})
	case Ne:
		if p.C != math.MinInt64 {
			ivs = append(ivs, Interval{NegInf(), Fin(p.C - 1)})
		}
		if p.C != math.MaxInt64 {
			ivs = append(ivs, Interval{Fin(p.C + 1), PosInf()})
		}
		return ivs
	case Lt:
		if p.C == math.MinInt64 {
			return ivs
		}
		return append(ivs, Interval{NegInf(), Fin(p.C - 1)})
	case Le:
		return append(ivs, Interval{NegInf(), Fin(p.C)})
	case Gt:
		if p.C == math.MaxInt64 {
			return ivs
		}
		return append(ivs, Interval{Fin(p.C + 1), PosInf()})
	case Ge:
		return append(ivs, Interval{Fin(p.C), PosInf()})
	}
	panic(fmt.Sprintf("pred: invalid operator %d", int(p.Op)))
}

// Outcome is the three-valued result of deciding a predicate under a fact.
type Outcome int

// Outcomes of Decide: the predicate always holds, never holds, or is not
// determined by the fact.
const (
	Unknown Outcome = iota
	True
	False
)

func (o Outcome) String() string {
	switch o {
	case True:
		return "true"
	case False:
		return "false"
	default:
		return "unknown"
	}
}

// Decide reports whether every value in fact satisfies p (True), no value in
// fact satisfies p (False), or neither (Unknown). An empty fact set denotes
// unreachable state; Decide returns True for it (any answer is sound; True
// keeps the common x != x style degenerate cases deterministic).
func Decide(fact Set, p Pred) Outcome { return decideIntervals(fact, p) }

// DecidePred is Decide with the fact given as a predicate's satisfying set:
// Decide(fact.Sat(), p) without materializing the Set. The analysis' assert
// transfer sits on this call, so the savings are per node-query pair.
func DecidePred(fact, p Pred) Outcome {
	var buf [2]Interval
	return decideIntervals(fact.satInto(buf[:0]), p)
}

// decideIntervals decides p against a union of disjoint non-empty closed
// intervals by comparing effective integer endpoints, with infinite bounds
// clamped to the int64 range (every representable value lies within it).
func decideIntervals(fact []Interval, p Pred) Outcome {
	all, some := true, false
	for _, iv := range fact {
		lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
		if iv.Lo.Finite() {
			lo = iv.Lo.v
		}
		if iv.Hi.Finite() {
			hi = iv.Hi.v
		}
		var a, s bool
		switch p.Op {
		case Eq:
			a = lo == p.C && hi == p.C
			s = lo <= p.C && p.C <= hi
		case Ne:
			a = p.C < lo || hi < p.C
			s = !(lo == p.C && hi == p.C)
		case Lt:
			a = hi < p.C
			s = lo < p.C
		case Le:
			a = hi <= p.C
			s = lo <= p.C
		case Gt:
			a = lo > p.C
			s = hi > p.C
		case Ge:
			a = lo >= p.C
			s = hi >= p.C
		default:
			panic(fmt.Sprintf("pred: invalid operator %d", int(p.Op)))
		}
		all = all && a
		some = some || s
	}
	if all {
		return True
	}
	if !some {
		return False
	}
	return Unknown
}

// Bound is an interval endpoint: a finite int64 or one of the infinities.
type Bound struct {
	inf int8 // -1 = -inf, 0 = finite, +1 = +inf
	v   int64
}

// NegInf returns the -infinity bound.
func NegInf() Bound { return Bound{inf: -1} }

// PosInf returns the +infinity bound.
func PosInf() Bound { return Bound{inf: 1} }

// Fin returns a finite bound with value v.
func Fin(v int64) Bound { return Bound{v: v} }

// IsNegInf reports whether b is -infinity.
func (b Bound) IsNegInf() bool { return b.inf < 0 }

// IsPosInf reports whether b is +infinity.
func (b Bound) IsPosInf() bool { return b.inf > 0 }

// Finite reports whether b is a finite value.
func (b Bound) Finite() bool { return b.inf == 0 }

// Value returns the finite value of b; it panics on an infinite bound.
func (b Bound) Value() int64 {
	if b.inf != 0 {
		panic("pred: Value on infinite bound")
	}
	return b.v
}

// Cmp compares two bounds: -1 if b < c, 0 if equal, +1 if b > c.
func (b Bound) Cmp(c Bound) int {
	if b.inf != c.inf {
		if b.inf < c.inf {
			return -1
		}
		return 1
	}
	if b.inf != 0 {
		return 0
	}
	switch {
	case b.v < c.v:
		return -1
	case b.v > c.v:
		return 1
	}
	return 0
}

func (b Bound) String() string {
	switch {
	case b.inf < 0:
		return "-inf"
	case b.inf > 0:
		return "+inf"
	}
	return fmt.Sprintf("%d", b.v)
}

// succ returns the bound one greater than b (finite bounds only; saturates
// at +inf when b is MaxInt64).
func (b Bound) succ() Bound {
	if !b.Finite() {
		return b
	}
	if b.v == math.MaxInt64 {
		return PosInf()
	}
	return Fin(b.v + 1)
}

// Interval is a closed integer interval [Lo, Hi]; Lo/Hi may be infinite.
type Interval struct {
	Lo, Hi Bound
}

// Empty reports whether the interval contains no integers.
func (iv Interval) Empty() bool { return iv.Lo.Cmp(iv.Hi) > 0 }

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v int64) bool {
	return iv.Lo.Cmp(Fin(v)) <= 0 && Fin(v).Cmp(iv.Hi) <= 0
}

func (iv Interval) String() string {
	return fmt.Sprintf("[%s,%s]", iv.Lo, iv.Hi)
}

// Set is a normalized union of disjoint, sorted, non-adjacent intervals.
type Set []Interval

// All returns the set of all integers.
func All() Set { return Set{{NegInf(), PosInf()}} }

// Single returns the singleton set {v}.
func Single(v int64) Set { return Set{{Fin(v), Fin(v)}} }

// Range returns the set [lo, hi] with finite endpoints. An inverted range is
// empty.
func Range(lo, hi int64) Set {
	if lo > hi {
		return Set{}
	}
	return Set{{Fin(lo), Fin(hi)}}
}

// RangeBounds returns the set [lo, hi] for arbitrary bounds.
func RangeBounds(lo, hi Bound) Set {
	iv := Interval{lo, hi}
	if iv.Empty() {
		return Set{}
	}
	return Set{iv}
}

// Normalize sorts and merges overlapping or adjacent intervals, dropping
// empty ones. It returns a fresh normalized set.
func Normalize(ivs []Interval) Set {
	var nonEmpty []Interval
	for _, iv := range ivs {
		if !iv.Empty() {
			nonEmpty = append(nonEmpty, iv)
		}
	}
	if len(nonEmpty) == 0 {
		return Set{}
	}
	// Insertion sort by Lo: sets here are tiny (≤ 3 intervals in practice).
	for i := 1; i < len(nonEmpty); i++ {
		for j := i; j > 0 && nonEmpty[j].Lo.Cmp(nonEmpty[j-1].Lo) < 0; j-- {
			nonEmpty[j], nonEmpty[j-1] = nonEmpty[j-1], nonEmpty[j]
		}
	}
	out := Set{nonEmpty[0]}
	for _, iv := range nonEmpty[1:] {
		last := &out[len(out)-1]
		// Merge if iv.Lo <= last.Hi+1 (overlapping or adjacent).
		if iv.Lo.Cmp(last.Hi.succ()) <= 0 {
			if iv.Hi.Cmp(last.Hi) > 0 {
				last.Hi = iv.Hi
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// Empty reports whether the set contains no integers.
func (s Set) Empty() bool { return len(s) == 0 }

// Contains reports whether v is a member of the set.
func (s Set) Contains(v int64) bool {
	for _, iv := range s {
		if iv.Contains(v) {
			return true
		}
	}
	return false
}

// Intersect returns the normalized intersection of s and t.
func (s Set) Intersect(t Set) Set {
	var out []Interval
	for _, a := range s {
		for _, b := range t {
			lo := a.Lo
			if b.Lo.Cmp(lo) > 0 {
				lo = b.Lo
			}
			hi := a.Hi
			if b.Hi.Cmp(hi) < 0 {
				hi = b.Hi
			}
			iv := Interval{lo, hi}
			if !iv.Empty() {
				out = append(out, iv)
			}
		}
	}
	return Normalize(out)
}

// Union returns the normalized union of s and t.
func (s Set) Union(t Set) Set {
	all := make([]Interval, 0, len(s)+len(t))
	all = append(all, s...)
	all = append(all, t...)
	return Normalize(all)
}

// Intersects reports whether s and t share at least one integer.
func (s Set) Intersects(t Set) bool {
	for _, a := range s {
		for _, b := range t {
			lo := a.Lo
			if b.Lo.Cmp(lo) > 0 {
				lo = b.Lo
			}
			hi := a.Hi
			if b.Hi.Cmp(hi) < 0 {
				hi = b.Hi
			}
			if !(Interval{lo, hi}).Empty() {
				return true
			}
		}
	}
	return false
}

// SubsetOf reports whether every integer in s is also in t.
func (s Set) SubsetOf(t Set) bool {
	for _, a := range s {
		if !t.covers(a) {
			return false
		}
	}
	return true
}

// covers reports whether interval a is fully contained in the set.
func (s Set) covers(a Interval) bool {
	for _, b := range s {
		if b.Lo.Cmp(a.Lo) <= 0 && a.Hi.Cmp(b.Hi) <= 0 {
			return true
		}
	}
	return false
}

// Equal reports set equality (both sets must be normalized).
func (s Set) Equal(t Set) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i].Lo.Cmp(t[i].Lo) != 0 || s[i].Hi.Cmp(t[i].Hi) != 0 {
			return false
		}
	}
	return true
}

func (s Set) String() string {
	if len(s) == 0 {
		return "{}"
	}
	out := ""
	for i, iv := range s {
		if i > 0 {
			out += " ∪ "
		}
		out += iv.String()
	}
	return out
}

// ShiftSat returns the satisfying set of (w Op C') where the original query
// was (v Op C) and v = w + k: solving for w shifts the constant by -k. It
// reports ok=false when the shifted constant would overflow int64, in which
// case the caller must give up on arithmetic back-substitution.
func ShiftSat(p Pred, k int64) (Pred, bool) {
	c := p.C
	// compute c - k with overflow check
	r := c - k
	if (k > 0 && r > c) || (k < 0 && r < c) {
		return Pred{}, false
	}
	return Pred{Op: p.Op, C: r}, true
}
