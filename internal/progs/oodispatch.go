package progs

// OODispatch models the paper's §5 discussion of object-oriented dynamic
// dispatch: call sites invoking member procedures of polymorphic types
// dispatch on the receiver's concrete type tag. Lowered to a procedural
// language, the dispatcher is an if-chain over the tag — and the tag tests
// inside the dispatched methods (and in later dispatches on the same
// receiver) are correlated with the dispatcher's tests. ICBE's entry/exit
// splitting then plays the role the paper assigns it: separating the
// per-type paths so repeated dispatches and in-method type checks
// disappear, exactly like type-directed cloning but without duplicating
// whole procedures.
func OODispatch() *Workload {
	return &Workload{
		Name:        "oodispatch",
		Paper:       "§5 virtual dispatch / C++ virtual functions",
		Description: "shape objects with type tags, if-chain dispatcher, repeated dispatch on the same receiver",
		Source:      ooDispatchSrc,
		Ref:         shapeInput(1500, 83),
		Train:       shapeInput(120, 19),
	}
}

// shapeInput generates (tag, a, b) triples; tags 1..3.
func shapeInput(n int, seed uint64) []int64 {
	r := newRng(seed)
	out := make([]int64, 0, 3*n)
	for i := 0; i < n; i++ {
		out = append(out, 1+r.intn(3), 1+r.intn(20), 1+r.intn(20))
	}
	return out
}

const ooDispatchSrc = `
// oodispatch: class hierarchy Shape { Square, Rect, Tri } with virtual
// area() and perimeter(), lowered to tag dispatch. As a compiler lowering
// OO code would, the type tag is loaded from the object header once and
// then flows through scalar parameters — the form the paper's scalar
// correlation analysis (and ours) tracks.
// Object layout: obj[0] = type tag (1 square, 2 rect, 3 tri), obj[1] = a,
// obj[2] = b.
var made;

func newshape(tag, a, b) {
	var o = alloc(3);
	o[0] = tag;
	o[1] = a;
	o[2] = b;
	made = made + 1;
	return o;
}

// Per-type methods re-validate their receiver's tag (defensive checks the
// dispatcher already performed — the paper's repeated-test idiom).
func squarearea(o, tag) {
	if (tag != 1) { return -1; }
	return o[1] * o[1];
}

func rectarea(o, tag) {
	if (tag != 2) { return -1; }
	return o[1] * o[2];
}

func triarea(o, tag) {
	if (tag != 3) { return -1; }
	return o[1] * o[2] / 2;
}

// area is the virtual-call site: dynamic dispatch over the tag. After
// entry splitting, each caller that knows the tag enters the matching
// method directly — the paper's devirtualization effect.
func area(o, tag) {
	if (tag == 1) { return squarearea(o, tag); }
	if (tag == 2) { return rectarea(o, tag); }
	if (tag == 3) { return triarea(o, tag); }
	return -1;
}

// perimeter dispatches on the same receiver again; its tests correlate
// with area's when both are called on one object.
func perimeter(o, tag) {
	if (tag == 1) { return 4 * o[1]; }
	if (tag == 2) { return 2 * o[1] + 2 * o[2]; }
	if (tag == 3) { return o[1] + o[2] + o[1] + o[2]; }
	return -1;
}

func main() {
	made = 0;
	var areas = 0;
	var perims = 0;
	var squares = 0;
	var bad = 0;
	var tag = input();
	while (tag != -1) {
		var a = input();
		var b = input();
		if (a == -1) { tag = -1; }
		else if (b == -1) { tag = -1; }
		else {
			if (tag < 1) { tag = 1; }
			if (tag > 3) { tag = 3; }
			var o = newshape(tag, a, b);
			// Load the header tag once; every later test correlates.
			var tg = o[0];
			var ar = area(o, tg);
			if (ar < 0) { bad = bad + 1; }
			else { areas = areas + ar; }
			perims = perims + perimeter(o, tg);
			if (tg == 1) { squares = squares + 1; }
			tag = input();
		}
	}
	print(made);
	print(areas);
	print(perims);
	print(squares);
	print(bad);
}
`
