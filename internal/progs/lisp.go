package progs

// Lisp plays the role of 130.li: cons-cell list processing where the nil
// test is performed both by the list-walking callers (through the isnil
// library predicate) and again inside car/cdr — the paper's linked-list
// example. Pointer dereferences add the non-nil correlation source.
func Lisp() *Workload {
	return &Workload{
		Name:        "lisp",
		Paper:       "130.li",
		Description: "cons-cell list library (car/cdr/isnil with repeated nil checks) under length/sum/reverse/filter",
		Source:      lispSrc,
		Ref:         numberInput(1200, 1000, 31),
		Train:       numberInput(80, 1000, 3),
	}
}

// numberInput generates n nonnegative values below max.
func numberInput(n int, max int64, seed uint64) []int64 {
	r := newRng(seed)
	out := make([]int64, n)
	for i := range out {
		out[i] = r.intn(max)
	}
	return out
}

const lispSrc = `
// lisp: a cons-cell list module in the style of a Lisp runtime.
var cells;

func cons(v, next) {
	var c = alloc(2);
	c[0] = v;
	c[1] = next;
	cells = cells + 1;
	return c;
}

// car/cdr guard against nil even though most callers already checked —
// the modular-checking idiom the paper measures.
func car(l) {
	if (l == 0) { return -1; }
	return l[0];
}

func cdr(l) {
	if (l == 0) { return 0; }
	return l[1];
}

func isnil(l) {
	if (l == 0) { return 1; }
	return 0;
}

func length(l) {
	var n = 0;
	while (isnil(l) == 0) {
		n = n + 1;
		l = cdr(l);
	}
	return n;
}

func sum(l) {
	var s = 0;
	while (isnil(l) == 0) {
		s = s + car(l);
		l = cdr(l);
	}
	return s;
}

func reverse(l) {
	var r = 0;
	while (isnil(l) == 0) {
		r = cons(car(l), r);
		l = cdr(l);
	}
	return r;
}

func nth(l, k) {
	while (k > 0) {
		if (isnil(l) == 1) { return -1; }
		l = cdr(l);
		k = k - 1;
	}
	return car(l);
}

// countabove walks the list testing each element — the comparison inside
// the loop correlates with values the generator bounded.
func countabove(l, bound) {
	var n = 0;
	while (isnil(l) == 0) {
		var h = car(l);
		if (h > bound) { n = n + 1; }
		l = cdr(l);
	}
	return n;
}

func main() {
	cells = 0;
	var l = 0;
	var v = input();
	while (v != -1) {
		l = cons(v, l);
		v = input();
	}
	print(length(l));
	print(sum(l));
	var r = reverse(l);
	print(car(r));
	print(nth(r, 3));
	print(countabove(r, 500));
	print(countabove(r, 900));
	print(cells);
}
`
