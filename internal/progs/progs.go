// Package progs provides the benchmark workloads of the reproduction. The
// paper evaluates ICBE on the integer SPEC95 suite (099.go, 124.m88ksim,
// 129.compress, 130.li, 134.perl) plus the ICC compiler itself; those
// sources are proprietary, so each workload here is a synthetic MiniC
// program written to exhibit the correlation idioms the paper identifies as
// the source of interprocedural branch correlation:
//
//   - a procedure selects its return value with an if-statement and the
//     caller tests the returned value again (the fgetc/EOF pattern);
//   - procedures include sanity checks on parameters that the caller (or a
//     previous call to a related procedure) already performed;
//   - calls to procedures of the same library module propagate values that
//     each procedure re-tests;
//   - loop-carried flag variables are assigned inside the loop and tested
//     by the loop condition.
//
// Every workload comes with deterministic ref and train inputs produced by
// a seeded generator, standing in for the SPEC ref/train input sets.
package progs

// Workload is one benchmark program with its inputs.
type Workload struct {
	// Name identifies the workload in tables.
	Name string
	// Paper names the SPEC95 program whose role this workload plays.
	Paper string
	// Description summarizes what the program computes and which
	// correlation idioms it exercises.
	Description string
	// Source is the MiniC program text.
	Source string
	// Ref is the large profiling input (the paper's ref set); Train is a
	// small input for quick runs.
	Ref   []int64
	Train []int64
}

// All returns every workload, in a fixed order.
func All() []*Workload {
	return []*Workload{
		Stdio(),
		Compress(),
		Lisp(),
		M88k(),
		GoBoard(),
		Scanner(),
		OODispatch(),
	}
}

// ByName returns the named workload or nil.
func ByName(name string) *Workload {
	for _, w := range All() {
		if w.Name == name {
			return w
		}
	}
	return nil
}

// rng is a deterministic generator (splitmix-style) for workload inputs.
type rng struct{ s uint64 }

func newRng(seed uint64) *rng { return &rng{s: seed} }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int64) int64 {
	return int64(r.next() % uint64(n))
}
