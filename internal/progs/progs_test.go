package progs

import (
	"testing"

	"icbe/internal/analysis"
	"icbe/internal/interp"
	"icbe/internal/ir"
	"icbe/internal/restructure"
)

func TestWorkloadsBuildAndRun(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p, err := ir.Build(w.Source)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			if err := ir.Validate(p); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			for _, in := range [][]int64{w.Train, w.Ref} {
				res, err := interp.Run(p, interp.Options{Input: in})
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				if len(res.Output) == 0 {
					t.Error("no output produced")
				}
				if res.CondExecs == 0 {
					t.Error("no conditionals executed")
				}
			}
		})
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	for _, w := range All() {
		p, _ := ir.Build(w.Source)
		r1, err1 := interp.Run(p, interp.Options{Input: w.Ref})
		r2, err2 := interp.Run(p, interp.Options{Input: w.Ref})
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v %v", w.Name, err1, err2)
		}
		for i := range r1.Output {
			if r1.Output[i] != r2.Output[i] {
				t.Fatalf("%s: nondeterministic output", w.Name)
			}
		}
		// Regenerating the workload must give the same inputs.
		w2 := ByName(w.Name)
		if len(w2.Ref) != len(w.Ref) {
			t.Fatalf("%s: input generation not deterministic", w.Name)
		}
		for i := range w.Ref {
			if w.Ref[i] != w2.Ref[i] {
				t.Fatalf("%s: input generation not deterministic", w.Name)
			}
		}
	}
}

func TestWorkloadsOptimizeCorrectly(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p, err := ir.Build(w.Source)
			if err != nil {
				t.Fatal(err)
			}
			dr := restructure.Optimize(p, restructure.DriverOptions{
				Analysis:       analysis.DefaultOptions(),
				MaxDuplication: 100,
			})
			if dr.Optimized == 0 {
				t.Errorf("no conditionals optimized in %s", w.Name)
			}
			if err := ir.Validate(dr.Program); err != nil {
				t.Fatalf("optimized program invalid: %v", err)
			}
			for _, in := range [][]int64{w.Train, w.Ref, nil} {
				r1, err := interp.Run(p, interp.Options{Input: in})
				if err != nil {
					t.Fatalf("original: %v", err)
				}
				r2, err := interp.Run(dr.Program, interp.Options{Input: in})
				if err != nil {
					t.Fatalf("optimized: %v", err)
				}
				if len(r1.Output) != len(r2.Output) {
					t.Fatalf("output length mismatch: %d vs %d", len(r1.Output), len(r2.Output))
				}
				for i := range r1.Output {
					if r1.Output[i] != r2.Output[i] {
						t.Fatalf("output[%d] mismatch: %d vs %d", i, r1.Output[i], r2.Output[i])
					}
				}
				if r2.Operations > r1.Operations {
					t.Errorf("safety violated: %d ops after vs %d before", r2.Operations, r1.Operations)
				}
				if r2.CondExecs > r1.CondExecs {
					t.Errorf("conditionals increased: %d vs %d", r2.CondExecs, r1.CondExecs)
				}
			}
			// On the ref input the optimizer must show a real win.
			r1, _ := interp.Run(p, interp.Options{Input: w.Ref})
			r2, _ := interp.Run(dr.Program, interp.Options{Input: w.Ref})
			if r2.CondExecs >= r1.CondExecs {
				t.Errorf("no dynamic conditional reduction: %d -> %d", r1.CondExecs, r2.CondExecs)
			} else {
				t.Logf("%s: executed conditionals %d -> %d (%.1f%% removed), optimized %d branches",
					w.Name, r1.CondExecs, r2.CondExecs,
					100*float64(r1.CondExecs-r2.CondExecs)/float64(r1.CondExecs), dr.Optimized)
			}
		})
	}
}

func TestInterBeatsIntraOnWorkloads(t *testing.T) {
	totalInter, totalIntra, totalBase := int64(0), int64(0), int64(0)
	for _, w := range All() {
		p, err := ir.Build(w.Source)
		if err != nil {
			t.Fatal(err)
		}
		interDr := restructure.Optimize(p, restructure.DriverOptions{
			Analysis:       analysis.DefaultOptions(),
			MaxDuplication: 100,
		})
		intraDr := restructure.Optimize(p, restructure.DriverOptions{
			Analysis:       analysis.Options{ModSummaries: true},
			MaxDuplication: 100,
		})
		rBase, _ := interp.Run(p, interp.Options{Input: w.Ref})
		rInter, err := interp.Run(interDr.Program, interp.Options{Input: w.Ref})
		if err != nil {
			t.Fatalf("%s inter: %v", w.Name, err)
		}
		rIntra, err := interp.Run(intraDr.Program, interp.Options{Input: w.Ref})
		if err != nil {
			t.Fatalf("%s intra: %v", w.Name, err)
		}
		totalBase += rBase.CondExecs
		totalInter += rInter.CondExecs
		totalIntra += rIntra.CondExecs
		t.Logf("%-9s conds: base %7d  intra %7d  inter %7d", w.Name, rBase.CondExecs, rIntra.CondExecs, rInter.CondExecs)
	}
	if totalInter >= totalIntra {
		t.Errorf("interprocedural ICBE should beat intra overall: inter %d, intra %d", totalInter, totalIntra)
	}
	interRemoved := totalBase - totalInter
	intraRemoved := totalBase - totalIntra
	t.Logf("total removed: inter %d, intra %d (ratio %.2f)", interRemoved, intraRemoved,
		float64(interRemoved)/float64(intraRemoved+1))
}

func TestByName(t *testing.T) {
	if ByName("stdio") == nil || ByName("nosuch") != nil {
		t.Error("ByName lookup wrong")
	}
	names := map[string]bool{}
	for _, w := range All() {
		if names[w.Name] {
			t.Errorf("duplicate workload name %s", w.Name)
		}
		names[w.Name] = true
		if w.Paper == "" || w.Description == "" || len(w.Ref) == 0 || len(w.Train) == 0 {
			t.Errorf("workload %s incomplete", w.Name)
		}
		if len(w.Train) >= len(w.Ref) {
			t.Errorf("workload %s: train input should be smaller than ref", w.Name)
		}
	}
}

// TestWorkloadsSimplifyAfterOptimize composes the full pipeline per
// workload: optimize, compact, and verify output equality with fewer
// interpreter steps and unchanged operation counts.
func TestWorkloadsSimplifyAfterOptimize(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p, err := ir.Build(w.Source)
			if err != nil {
				t.Fatal(err)
			}
			dr := restructure.Optimize(p, restructure.DriverOptions{
				Analysis:       analysis.DefaultOptions(),
				MaxDuplication: 100,
			})
			q := ir.Clone(dr.Program)
			removed := ir.Simplify(q)
			if err := ir.Validate(q); err != nil {
				t.Fatalf("invalid after simplify: %v", err)
			}
			r1, err := interp.Run(dr.Program, interp.Options{Input: w.Train})
			if err != nil {
				t.Fatal(err)
			}
			r2, err := interp.Run(q, interp.Options{Input: w.Train})
			if err != nil {
				t.Fatalf("simplified run: %v", err)
			}
			for i := range r1.Output {
				if r1.Output[i] != r2.Output[i] {
					t.Fatalf("output mismatch at %d", i)
				}
			}
			if r2.Operations != r1.Operations {
				t.Errorf("operations changed: %d -> %d", r1.Operations, r2.Operations)
			}
			if removed > 0 && r2.Steps >= r1.Steps {
				t.Errorf("steps not reduced: %d -> %d (removed %d nodes)", r1.Steps, r2.Steps, removed)
			}
		})
	}
}

// TestWorkloadDescendantsReporting checks the driver's branch-descendant
// bookkeeping stays within the requeue cap and reports live nodes.
func TestWorkloadDescendantsReporting(t *testing.T) {
	p, err := ir.Build(Stdio().Source)
	if err != nil {
		t.Fatal(err)
	}
	dr := restructure.Optimize(p, restructure.DriverOptions{
		Analysis:       analysis.DefaultOptions(),
		MaxDuplication: 100,
	})
	if len(dr.Reports) == 0 {
		t.Fatal("no reports")
	}
	seen := map[ir.NodeID]bool{}
	for _, rep := range dr.Reports {
		if seen[rep.Cond] {
			t.Errorf("conditional %d reported twice", rep.Cond)
		}
		seen[rep.Cond] = true
	}
}
