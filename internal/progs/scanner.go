package progs

// Scanner plays the role of 134.perl: a tokenizer with a pushback buffer
// whose state flag is tested on every read, a character classifier whose
// result every caller re-tests, and mode procedures (string/number/word
// scanning) that re-test characters the dispatcher already classified.
func Scanner() *Workload {
	return &Workload{
		Name:        "scanner",
		Paper:       "134.perl",
		Description: "tokenizer: pushback flag, class() dispatcher, per-token scanners re-testing classes",
		Source:      scannerSrc,
		Ref:         scriptInput(3500, 71),
		Train:       scriptInput(300, 17),
	}
}

// scriptInput generates script-like text: words, numbers, quoted strings,
// whitespace and punctuation.
func scriptInput(n int, seed uint64) []int64 {
	r := newRng(seed)
	out := make([]int64, 0, n)
	for len(out) < n {
		switch r.intn(8) {
		case 0:
			out = append(out, ' ')
		case 1:
			out = append(out, '\n')
		case 2: // number
			k := 1 + r.intn(5)
			for j := int64(0); j < k && len(out) < n; j++ {
				out = append(out, '0'+r.intn(10))
			}
			out = append(out, ' ')
		case 3: // quoted string
			out = append(out, '\'')
			k := r.intn(10)
			for j := int64(0); j < k && len(out) < n; j++ {
				out = append(out, 'a'+r.intn(26))
			}
			out = append(out, '\'')
		case 4:
			out = append(out, ';')
		default: // word
			k := 1 + r.intn(7)
			for j := int64(0); j < k && len(out) < n; j++ {
				out = append(out, 'a'+r.intn(26))
			}
			out = append(out, ' ')
		}
	}
	return out[:n]
}

const scannerSrc = `
// scanner: a perl-style tokenizer with one-character pushback.
var pending;
var haspending;

// nextc returns the next character or -1 at end of input. The pushback
// flag is a loop-carried correlation source: pushback() sets it, the next
// nextc() call tests it.
func nextc() {
	if (haspending == 1) {
		haspending = 0;
		return pending;
	}
	var c = input();
	if (c == -1) { return -1; }
	return byte(c);
}

func pushback(c) {
	pending = c;
	haspending = 1;
	return 0;
}

// class maps a character to a token class: 0 other, 1 alpha, 2 digit,
// 3 space, 4 quote. Constant returns make every dispatch test correlated.
func class(c) {
	if (c == 32) { return 3; }
	if (c == 10) { return 3; }
	if (c == 39) { return 4; }
	if (c >= 48) {
		if (c <= 57) { return 2; }
	}
	if (c >= 97) {
		if (c <= 122) { return 1; }
	}
	return 0;
}

// scanstring consumes a quoted string; returns its length, or -1 when the
// input ends before the closing quote.
func scanstring() {
	var n = 0;
	var c = nextc();
	while (c != -1) {
		if (c == 39) { return n; }
		n = n + 1;
		c = nextc();
	}
	return -1;
}

// scannumber accumulates digits, pushing back the terminator. It re-tests
// the digit class the dispatcher established for the first character.
func scannumber(first) {
	var v = first - 48;
	var c = nextc();
	while (c != -1) {
		var k = class(c);
		if (k == 2) {
			v = v * 10 + c - 48;
			c = nextc();
		} else {
			pushback(c);
			return v;
		}
	}
	return v;
}

// scanword counts word characters, pushing back the terminator.
func scanword(first) {
	var n = 1;
	var c = nextc();
	while (c != -1) {
		var k = class(c);
		if (k == 1) {
			n = n + 1;
			c = nextc();
		} else {
			pushback(c);
			return n;
		}
	}
	return n;
}

func main() {
	haspending = 0;
	pending = 0;
	var words = 0;
	var numbers = 0;
	var strings = 0;
	var others = 0;
	var numsum = 0;
	var wordchars = 0;
	var strchars = 0;
	var c = nextc();
	while (c != -1) {
		var k = class(c);
		if (k == 1) {
			wordchars = wordchars + scanword(c);
			words = words + 1;
		} else if (k == 2) {
			numsum = numsum + scannumber(c);
			numbers = numbers + 1;
		} else if (k == 4) {
			var len = scanstring();
			if (len >= 0) {
				strings = strings + 1;
				strchars = strchars + len;
			}
		} else if (k == 0) {
			others = others + 1;
		}
		c = nextc();
	}
	print(words);
	print(numbers);
	print(strings);
	print(others);
	print(numsum);
	print(wordchars);
	print(strchars);
}
`
