package progs

// Compress plays the role of 129.compress: a run-length encoder whose byte
// I/O goes through library-style getbyte/putbyte procedures. The EOF
// sentinel returned by getbyte is re-tested by the main loop (full
// interprocedural correlation through the byte conversion), and the emit
// helper re-tests run lengths the caller established.
func Compress() *Workload {
	return &Workload{
		Name:        "compress",
		Paper:       "129.compress",
		Description: "run-length encoder over getbyte/putbyte library procedures with an EOF sentinel",
		Source:      compressSrc,
		Ref:         runsInput(5000, 23),
		Train:       runsInput(400, 5),
	}
}

// runsInput generates byte data with runs (compressible) mixed with noise.
func runsInput(n int, seed uint64) []int64 {
	r := newRng(seed)
	out := make([]int64, 0, n)
	for len(out) < n {
		if r.intn(3) == 0 {
			b := r.intn(256)
			runLen := 2 + r.intn(12)
			for j := int64(0); j < runLen && len(out) < n; j++ {
				out = append(out, b)
			}
		} else {
			out = append(out, r.intn(256))
		}
	}
	return out
}

const compressSrc = `
// compress: run-length encoding through a byte-I/O library layer.
var outcount;
var escapes;

// getbyte returns the next input byte in [0,255], or -1 at end of input.
// The caller's EOF test is fully correlated with these two return paths.
func getbyte() {
	var c = input();
	if (c == -1) { return -1; }
	return byte(c);
}

func putbyte(b) {
	print(b);
	outcount = outcount + 1;
	return 0;
}

// emit writes one run. Short runs are emitted literally; longer runs use
// an escape triple. The run-length test repeats a bound the callers
// already maintain.
func emit(run, b) {
	if (run <= 0) { return 0; }
	if (run < 4) {
		var i = 0;
		while (i < run) {
			putbyte(b);
			i = i + 1;
		}
		return run;
	}
	putbyte(27);
	putbyte(run);
	putbyte(b);
	escapes = escapes + 1;
	return 3;
}

func main() {
	outcount = 0;
	escapes = 0;
	var cur = getbyte();
	if (cur == -1) {
		print(0);
		return;
	}
	var run = 1;
	var c = getbyte();
	while (c != -1) {
		if (c == cur) {
			run = run + 1;
			if (run == 200) {
				emit(run, cur);
				run = 0;
			}
		} else {
			emit(run, cur);
			cur = c;
			run = 1;
		}
		c = getbyte();
	}
	emit(run, cur);
	print(outcount);
	print(escapes);
}
`
