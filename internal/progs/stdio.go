package progs

// Stdio is the paper's running example scaled up: a buffered character
// reader (fillbuf/fgetc, Figure 1) under a word/line/digit counter that
// calls small classification procedures whose integer results the caller
// re-tests. The fgetc EOF test is fully correlated interprocedurally (the
// byte conversion yields [0,255]; the refill failure path yields -1), and
// every classifier call site is an entry/exit-splitting opportunity.
func Stdio() *Workload {
	return &Workload{
		Name:        "stdio",
		Paper:       "129.compress (I/O layer) / Figure 1",
		Description: "buffered reader with fgetc/fillbuf plus a word-count-style scanner over classifier procedures",
		Source:      stdioSrc,
		Ref:         textInput(4000, 11),
		Train:       textInput(300, 7),
	}
}

// textInput generates printable text bytes with spaces, newlines and
// digits.
func textInput(n int, seed uint64) []int64 {
	r := newRng(seed)
	out := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		switch r.intn(10) {
		case 0:
			out = append(out, ' ')
		case 1:
			out = append(out, '\n')
		case 2, 3:
			out = append(out, '0'+r.intn(10))
		default:
			out = append(out, 'a'+r.intn(26))
		}
	}
	return out
}

const stdioSrc = `
// stdio: buffered character input (the paper's Figure 1) under a scanner.
var bufcap;
var bufptr;
var bufpos;
var buflen;

// fillbuf refills the buffer from the input stream. It returns the number
// of bytes read, or -1 when the stream is exhausted.
func fillbuf() {
	var n = 0;
	while (n < bufcap) {
		var c = input();
		if (c == -1) {
			if (n == 0) { return -1; }
			buflen = n;
			bufpos = 0;
			return n;
		}
		bufptr[n] = c;
		n = n + 1;
	}
	buflen = n;
	bufpos = 0;
	return n;
}

// fgetc returns the next character, or -1 at end of file. The returned
// character is a byte in [0,255]; the caller's EOF test is therefore fully
// correlated with the two return paths.
func fgetc() {
	if (bufpos >= buflen) {
		var r = fillbuf();
		if (r == -1) { return -1; }
	}
	var c = byte(bufptr[bufpos]);
	bufpos = bufpos + 1;
	return c;
}

// Classifiers in the style of ctype.h: each selects its boolean result
// with if-statements, and each caller tests that result again.
func isspace(c) {
	if (c == 32) { return 1; }
	if (c == 10) { return 1; }
	if (c == 9) { return 1; }
	return 0;
}

func isdigit(c) {
	if (c < 48) { return 0; }
	if (c > 57) { return 0; }
	return 1;
}

func isalpha(c) {
	if (c < 97) { return 0; }
	if (c > 122) { return 0; }
	return 1;
}

func main() {
	bufcap = 64;
	bufptr = alloc(64);
	buflen = 0;
	bufpos = 0;
	var words = 0;
	var digits = 0;
	var lines = 0;
	var letters = 0;
	var inword = 0;
	var c = fgetc();
	while (c != -1) {
		if (c == 10) { lines = lines + 1; }
		var sp = isspace(c);
		if (sp == 1) {
			inword = 0;
		} else {
			if (inword == 0) {
				words = words + 1;
				inword = 1;
			}
			var d = isdigit(c);
			if (d == 1) {
				digits = digits + c - 48;
			} else {
				var a = isalpha(c);
				if (a == 1) { letters = letters + 1; }
			}
		}
		c = fgetc();
	}
	print(words);
	print(digits);
	print(lines);
	print(letters);
}
`
