package progs

// M88k plays the role of 124.m88ksim: an instruction-set interpreter whose
// decode procedure classifies opcodes with constant returns the dispatch
// loop re-tests (entry/exit splitting across decode), plus a loop-carried
// run flag tested by the loop condition and a condition-flag register set
// in one helper and tested in another.
func M88k() *Workload {
	return &Workload{
		Name:        "m88k",
		Paper:       "124.m88ksim",
		Description: "toy ISA interpreter: decode classifier + dispatch loop + flag register correlations",
		Source:      m88kSrc,
		Ref:         isaInput(3000, 47),
		Train:       isaInput(250, 9),
	}
}

// isaInput generates (opcode, argument) pairs; opcode 5 (halt) is rare.
func isaInput(n int, seed uint64) []int64 {
	r := newRng(seed)
	out := make([]int64, 0, 2*n)
	for i := 0; i < n; i++ {
		op := r.intn(5) // halt excluded; the stream ends by exhaustion
		arg := r.intn(100)
		out = append(out, op, arg)
	}
	return out
}

const m88kSrc = `
// m88k: a toy accumulator ISA interpreter.
var acc;
var flag;
var mem;
var steps;
var bad;

// decode maps an opcode to its class: 0 = ALU, 1 = memory, 2 = conditional,
// 3 = halt, -1 = illegal. Every return is a constant, so the dispatch tests
// in run() are fully correlated with the decode paths.
func decode(op) {
	if (op == 0) { return 0; }
	if (op == 1) { return 0; }
	if (op == 2) { return 1; }
	if (op == 3) { return 1; }
	if (op == 4) { return 2; }
	if (op == 5) { return 3; }
	return -1;
}

// alu executes an arithmetic instruction and sets the zero flag — which
// the conditional instruction class tests later.
func alu(op, arg) {
	if (op == 0) {
		acc = acc + arg;
	} else {
		acc = acc - arg;
	}
	if (acc == 0) { flag = 1; } else { flag = 0; }
	return acc;
}

func memop(op, arg) {
	var a = arg % 64;
	if (a < 0) { a = a + 64; }
	if (op == 2) {
		mem[a] = acc;
		return acc;
	}
	acc = mem[a];
	return acc;
}

func run() {
	var running = 1;
	while (running == 1) {
		var op = input();
		if (op == -1) {
			running = 0;
		} else {
			var arg = input();
			if (arg == -1) {
				running = 0;
			} else {
				var cls = decode(op);
				if (cls == 0) {
					alu(op, arg);
				} else if (cls == 1) {
					memop(op, arg);
				} else if (cls == 2) {
					if (flag == 1) { acc = acc + arg; }
				} else if (cls == 3) {
					running = 0;
				} else {
					bad = bad + 1;
				}
				steps = steps + 1;
			}
		}
	}
	return steps;
}

func main() {
	acc = 0;
	flag = 0;
	steps = 0;
	bad = 0;
	mem = alloc(64);
	var total = run();
	print(acc);
	print(total);
	print(flag);
	print(bad);
}
`
