package progs

// GoBoard plays the role of 099.go: grid scanning where every cell access
// goes through a bounds-checking accessor whose sanity test repeats the
// check its own inbounds helper already performed — a hot, fully
// correlated interprocedural conditional.
func GoBoard() *Workload {
	return &Workload{
		Name:        "goboard",
		Paper:       "099.go",
		Description: "9x9 board scan: bounds-checked accessors, neighbor counting, liberty-style aggregation",
		Source:      goBoardSrc,
		Ref:         boardInput(25, 81, 59),
		Train:       boardInput(3, 81, 13),
	}
}

// boardInput generates `boards` boards of `cells` cell values in 0..2.
func boardInput(boards, cells int, seed uint64) []int64 {
	r := newRng(seed)
	out := make([]int64, 0, boards*cells)
	for b := 0; b < boards; b++ {
		for i := 0; i < cells; i++ {
			out = append(out, r.intn(3))
		}
	}
	return out
}

const goBoardSrc = `
// goboard: scanning a 9x9 board with bounds-checked accessors.
var size;
var board;

// inbounds selects its boolean result with if-statements; get() re-tests
// that result — the fully correlated pair the optimizer removes.
func inbounds(x, y) {
	if (x < 0) { return 0; }
	if (x >= size) { return 0; }
	if (y < 0) { return 0; }
	if (y >= size) { return 0; }
	return 1;
}

// get returns the stone at (x,y) or -1 off the board.
func get(x, y) {
	var ok = inbounds(x, y);
	if (ok == 0) { return -1; }
	return board[y * size + x];
}

// neighbors counts the 4-neighbors of (x,y) holding value v.
func neighbors(x, y, v) {
	var n = 0;
	if (get(x - 1, y) == v) { n = n + 1; }
	if (get(x + 1, y) == v) { n = n + 1; }
	if (get(x, y - 1) == v) { n = n + 1; }
	if (get(x, y + 1) == v) { n = n + 1; }
	return n;
}

// liberties counts empty neighbors of an occupied point.
func liberties(x, y) {
	var s = get(x, y);
	if (s <= 0) { return 0; }
	return neighbors(x, y, 0);
}

// scan aggregates statistics over one board position.
func scan() {
	var y = 0;
	var stones = 0;
	var libs = 0;
	var caps = 0;
	while (y < size) {
		var x = 0;
		while (x < size) {
			var s = get(x, y);
			if (s > 0) {
				stones = stones + 1;
				var l = liberties(x, y);
				libs = libs + l;
				if (l == 0) { caps = caps + 1; }
			}
			x = x + 1;
		}
		y = y + 1;
	}
	return stones * 10000 + libs * 10 + caps;
}

// loadboard reads one position; returns 0 when the input is exhausted.
func loadboard() {
	var i = 0;
	while (i < size * size) {
		var v = input();
		if (v == -1) { return 0; }
		board[i] = v;
		i = i + 1;
	}
	return 1;
}

func main() {
	size = 9;
	board = alloc(81);
	var total = 0;
	var boards = 0;
	var more = loadboard();
	while (more == 1) {
		total = total + scan();
		boards = boards + 1;
		more = loadboard();
	}
	print(boards);
	print(total);
}
`
