package check

import (
	"icbe/internal/ir"
	"icbe/internal/pred"
)

// Provenance names the fact that decided a branch outcome on one in-edge,
// for the fold pass's residual attribution. The classification is a
// best-effort explanation (one edge may owe its decision to several fact
// kinds at once); the precedence below picks the most specific.
type Provenance uint8

// Provenance kinds, in increasing specificity.
const (
	// ProvNone: the edge does not decide the branch.
	ProvNone Provenance = iota
	// ProvValue: the plain constant lattice value of the operands decides it.
	ProvValue
	// ProvInterval: an interval bound (byte() result, clamped range, const
	// shift) decides it — the flow-insensitive constant lattice could not.
	ProvInterval
	// ProvCopy: the tested variable's cell was populated through its
	// copy-propagation group — a copy fact strengthened the constancy fact.
	ProvCopy
	// ProvAssert: only the predecessor's own branch-edge or assert
	// refinement decides it; the unrefined state could not.
	ProvAssert
)

func (p Provenance) String() string {
	switch p {
	case ProvNone:
		return "none"
	case ProvValue:
		return "value"
	case ProvInterval:
		return "interval"
	case ProvCopy:
		return "copy"
	case ProvAssert:
		return "assert"
	}
	return "?"
}

// EdgeFact is the oracle's verdict about one in-edge of a branch: whether
// the edge is executable, what the branch condition folds to in the state
// arriving along exactly that edge, and which fact kind decided it. The
// edge is identified by the predecessor and the slot of the branch in the
// predecessor's successor list (parallel edges from a branch's two arms get
// one fact each).
type EdgeFact struct {
	From    ir.NodeID
	Slot    int
	Live    bool
	Outcome pred.Outcome
	Prov    Provenance
}

// EdgeFacts replays every predecessor's transfer function on its settled
// entry state and folds the branch condition in each resulting edge state —
// the per-edge refinement of BranchOutcome that the fold pass's residual
// attribution consumes. The replay mirrors the propagation engine's
// transfer functions exactly (same refinement, same call-site-exit return
// merge), so an edge fact is as sound as the run it came from. Nil is
// returned for saturated runs, non-branches, and deleted nodes.
func (s *SCCP) EdgeFacts(b ir.NodeID) []EdgeFact {
	bn := s.prog.Node(b)
	if s.saturated || bn == nil || bn.Kind != ir.NBranch {
		return nil
	}
	bsp := s.spaceOf(bn.Proc)
	out := make([]EdgeFact, 0, len(bn.Preds))
	// occ counts how many edges from each predecessor were already
	// attributed, so parallel edges map to distinct successor slots.
	occ := make(map[ir.NodeID]int, len(bn.Preds))
	for _, pid := range bn.Preds {
		k := occ[pid]
		occ[pid] = k + 1
		ef := EdgeFact{From: pid, Slot: -1, Outcome: pred.Unknown}
		pn := s.prog.Node(pid)
		if pn != nil {
			ef.Slot = nthSuccSlot(pn, b, k)
		}
		if pn != nil && ef.Slot >= 0 && s.Reachable(pid) {
			st, base := s.edgeState(pn, ef.Slot)
			if st != nil {
				if psp := s.spaceOf(pn.Proc); psp != bsp {
					st = s.convertState(st, bsp)
					if base != nil {
						base = s.convertState(base, bsp)
					}
				}
				ef.Live = true
				ef.Outcome = decideValues(bn.CondOp, valueOf(st, bsp, bn.CondVar), operandValue(st, bsp, bn.CondRHS))
				refinedOnly := false
				if ef.Outcome != pred.Unknown && base != nil {
					bo := decideValues(bn.CondOp, valueOf(base, bsp, bn.CondVar), operandValue(base, bsp, bn.CondRHS))
					refinedOnly = bo != ef.Outcome
				}
				ef.Prov = s.provenance(bn, bsp, st, ef.Outcome, refinedOnly)
			}
		}
		out = append(out, ef)
	}
	return out
}

// nthSuccSlot returns the index of the k-th occurrence of to in the node's
// successor list, or -1 (a dangling Preds entry, possible only on
// fuzz-mutated graphs).
func nthSuccSlot(n *ir.Node, to ir.NodeID, k int) int {
	for i, sid := range n.Succs {
		if sid == to {
			if k == 0 {
				return i
			}
			k--
		}
	}
	return -1
}

// edgeState replays the predecessor's transfer function for the given
// successor slot on its settled entry state. It returns nil when the edge
// carries no executable state (the predecessor never ran, or the arm is
// statically infeasible). base is the same edge state WITHOUT the
// branch-edge/assert refinement applied (nil when no refinement happened):
// comparing outcomes across the two tells ProvAssert apart from the rest.
func (s *SCCP) edgeState(pn *ir.Node, slot int) (st, base []cell) {
	in := s.stateOf(pn.ID)
	if in == nil {
		return nil, nil
	}
	sp := s.spaceOf(pn.Proc)
	switch pn.Kind {
	case ir.NAssign:
		out := cloneCells(in)
		v, root := evalRHS(in, sp, pn)
		assign(out, sp, pn.Dst, v, root)
		return out, nil
	case ir.NBranch:
		return s.branchEdgeState(pn, sp, in, slot)
	case ir.NAssert:
		out := cloneCells(in)
		if validOp(pn.APred.Op) {
			if !refineGroup(out, sp, pn.AVar, pn.APred.Op, pn.APred.C) {
				return nil, nil
			}
			return out, cloneCells(in)
		}
		return out, nil
	case ir.NCallExit:
		out := cloneCells(in)
		if pn.Dst != ir.NoVar {
			ret := bottom()
			if int(pn.ID) < len(s.ceRet) {
				ret = s.ceRet[pn.ID]
			}
			assign(out, sp, pn.Dst, ret, ir.NoVar)
		}
		return out, nil
	}
	// NEntry, NCall, NExit, NStore, NPrint, NNop: state passes through.
	// (A branch can never be the entry or call-site-exit special successor
	// of a call or exit, so the plain pass-through is the right transfer.)
	return cloneCells(in), nil
}

// branchEdgeState is edgeState for a branch predecessor: arm feasibility
// plus the branch-edge assertion on the tested variable's copy group,
// mirroring processBranch.
func (s *SCCP) branchEdgeState(pn *ir.Node, sp *space, in []cell, slot int) (st, base []cell) {
	if slot >= 2 {
		// Malformed extra out-edges (fuzz graphs): plain unrefined flow.
		return cloneCells(in), nil
	}
	o := decideValues(pn.CondOp, valueOf(in, sp, pn.CondVar), operandValue(in, sp, pn.CondRHS))
	if (slot == 0 && o == pred.False) || (slot == 1 && o == pred.True) {
		return nil, nil
	}
	out := cloneCells(in)
	if !pn.CondRHS.IsConst || !validOp(pn.CondOp) {
		return out, nil
	}
	p := pred.Pred{Op: pn.CondOp, C: pn.CondRHS.Const}
	if slot == 1 {
		p = p.Negate()
	}
	if !refineGroup(out, sp, pn.CondVar, p.Op, p.C) {
		return nil, nil
	}
	return out, cloneCells(in)
}

// provenance classifies which fact kind decided the branch in the edge
// state: the predecessor's refinement alone (assert), the copy group that
// populated the tested cell (copy), an interval bound (interval), or the
// plain constant value (value).
func (s *SCCP) provenance(bn *ir.Node, bsp *space, st []cell, o pred.Outcome, refinedOnly bool) Provenance {
	if o == pred.Unknown {
		return ProvNone
	}
	if refinedOnly {
		return ProvAssert
	}
	if sl := bsp.slot(bn.CondVar); sl >= 0 && sl < len(st) && st[sl].alias != ir.NoVar {
		return ProvCopy
	}
	lv := valueOf(st, bsp, bn.CondVar)
	rv := operandValue(st, bsp, bn.CondRHS)
	if lv.kind == vRange || rv.kind == vRange {
		return ProvInterval
	}
	return ProvValue
}

// convertState carries a state into another procedure's space: globals
// survive (aliases rooted in locals are dropped), everything else bottoms
// out — the read-only twin of the propagation engine's cross-space convert.
func (s *SCCP) convertState(st []cell, to *space) []cell {
	out := make([]cell, len(to.vars))
	for i := range out {
		if i < s.nGlobals {
			if i < len(st) {
				c := st[i]
				if c.alias != ir.NoVar && !s.isGlobalVar(c.alias) {
					c.alias = ir.NoVar
				}
				out[i] = c
			} else {
				out[i] = cell{v: bottom(), alias: ir.NoVar}
			}
		} else {
			out[i] = cell{v: bottom(), alias: ir.NoVar}
		}
	}
	return out
}

func (s *SCCP) isGlobalVar(v ir.VarID) bool {
	return v >= 0 && int(v) < len(s.prog.Vars) && s.prog.Vars[v] != nil && s.prog.Vars[v].IsGlobal()
}
