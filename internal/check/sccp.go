package check

import (
	"fmt"
	"math"

	"icbe/internal/ir"
	"icbe/internal/pred"
)

// Value is a lattice element for one variable at one program point: ⊤ (no
// executable computation seen yet), a single constant, a small integer
// interval [lo,hi], or ⊥ (provably more than the lattice models). Intervals
// let comparisons against bounds fold — byte() results live in [0,255], and
// branch-edge assertions clamp the tested variable — which is what makes
// the oracle decide branches the flow-insensitive lattice could not.
type Value struct {
	kind uint8 // vTop, vConst, vRange, vBottom
	// lo is the constant for vConst; [lo,hi] the interval for vRange.
	// vBottom carries the full int64 range so bound arithmetic is uniform.
	lo, hi int64
}

const (
	vTop uint8 = iota
	vConst
	vBottom
	vRange
)

func top() Value             { return Value{} }
func constant(c int64) Value { return Value{kind: vConst, lo: c, hi: c} }
func bottom() Value          { return Value{kind: vBottom, lo: math.MinInt64, hi: math.MaxInt64} }

// rangeValue builds the normalized lattice element covering [lo,hi]:
// singletons are constants and the full int64 range is ⊥, so structural
// equality keeps meaning lattice equality.
func rangeValue(lo, hi int64) Value {
	switch {
	case lo == hi:
		return constant(lo)
	case lo == math.MinInt64 && hi == math.MaxInt64:
		return bottom()
	}
	return Value{kind: vRange, lo: lo, hi: hi}
}

// IsTop reports the ⊤ element.
func (v Value) IsTop() bool { return v.kind == vTop }

// IsBottom reports the ⊥ element.
func (v Value) IsBottom() bool { return v.kind == vBottom }

// Const returns the constant and true for a const element.
func (v Value) Const() (int64, bool) { return v.lo, v.kind == vConst }

// Range returns the inclusive bounds of a proper interval element.
func (v Value) Range() (lo, hi int64, ok bool) { return v.lo, v.hi, v.kind == vRange }

func (v Value) String() string {
	switch v.kind {
	case vTop:
		return "⊤"
	case vConst:
		return fmt.Sprintf("%d", v.lo)
	case vRange:
		return fmt.Sprintf("[%d,%d]", v.lo, v.hi)
	}
	return "⊥"
}

// meet is the lattice meet: ⊤ is the identity, an interval absorbs the
// constants and sub-intervals it contains, and incomparable elements fall to
// ⊥ (no interval hulling, so descending chains stay short).
func meet(a, b Value) Value {
	switch {
	case a.kind == vTop:
		return b
	case b.kind == vTop:
		return a
	case a == b:
		return a
	case a.kind == vBottom || b.kind == vBottom:
		return bottom()
	case a.lo <= b.lo && b.hi <= a.hi:
		return a
	case b.lo <= a.lo && a.hi <= b.hi:
		return b
	}
	return bottom()
}

// cell is one variable slot of a program-point state: its value element plus
// an optional copy-chain root. When alias is set, the slot's variable
// provably holds the same value as the root variable at this point, so a
// branch-edge assertion about either refines the whole group.
type cell struct {
	v     Value
	alias ir.VarID
}

// space is the state layout of one procedure: the globals (a prefix shared
// by every space, in the same slot order) followed by the procedure's own
// variables. ir.Validate guarantees a node references only globals and its
// own procedure's variables, so per-point states never need the whole arena.
type space struct {
	// slots maps VarID → slot, -1 when the variable is not in this space.
	slots []int32
	// vars maps slot → VarID.
	vars []ir.VarID
}

func (sp *space) slot(v ir.VarID) int {
	if v < 0 || int(v) >= len(sp.slots) {
		return -1
	}
	return int(sp.slots[v])
}

// SCCP is the result of one forward conditional constant propagation run:
// per-node entry states (a cell per in-scope variable) plus the
// executable-node set, computed with a worklist over the ICFG in the
// Wegman–Zadeck style. The engine is branch-sensitive: only feasible branch
// arms are entered, and on each arm the tested variable's cell (and its
// copy-propagation group) is refined by the implied constant or interval.
// Calls and returns are handled context-insensitively: entry states meet
// across call sites, and a call-site exit combines its caller state (locals
// survive the call in the caller's frame) with the callee exit's globals and
// return value.
//
// Per-variable summaries (VarValue/ConstOf) meet the variable's entry value
// over every executable read, so a constant summary is a whole-program fact
// about runtime reads, directly comparable with the backward analysis'
// answers; per-point facts are available through ValueAt and BranchOutcome.
type SCCP struct {
	prog     *ir.Program
	spaces   []*space
	fallback *space
	nGlobals int
	in       [][]cell
	exec     []bool
	mustFail []ir.NodeID
	summary  []Value
	// ceRet holds, per call-site-exit node, the settled return value its
	// callee exit delivered (⊥ when no exit fed it). EdgeFacts needs it to
	// replay the call-site-exit transfer function after the run is over.
	ceRet []Value
	// saturated is the sound give-up state for pathological graphs whose
	// propagation exceeds the step budget: everything is reported reachable
	// and nothing decided.
	saturated bool
}

// RunSCCP computes the oracle facts of a program. It is read-only, total,
// and panic-free even on malformed graphs (every node, variable, and
// procedure reference is bounds-checked), which the fuzz harness relies on.
func RunSCCP(p *ir.Program) *SCCP {
	r := newSCCPRun(p)
	r.seed()
	r.drain()
	s := &SCCP{
		prog:      p,
		spaces:    r.spaces,
		fallback:  r.fallback,
		nGlobals:  r.nGlob,
		saturated: r.saturated,
	}
	if r.saturated {
		return s
	}
	s.in, s.exec = r.in, r.exec
	s.ceRet = make([]Value, len(r.ces))
	for i, ce := range r.ces {
		if ce != nil && ce.hasExit {
			s.ceRet[i] = ce.ret
		} else {
			s.ceRet[i] = bottom()
		}
	}
	// Executable assertions whose own variable cannot satisfy the predicate
	// are the sccp-consistency findings (a correct restructuring only keeps
	// an assert on edges consistent with the branch it materializes).
	p.LiveNodes(func(n *ir.Node) {
		if int(n.ID) < len(r.mustFail) && r.mustFail[n.ID] {
			s.mustFail = append(s.mustFail, n.ID)
		}
	})
	s.summary = make([]Value, len(p.Vars))
	p.LiveNodes(func(n *ir.Node) {
		st := s.stateOf(n.ID)
		if st == nil {
			return
		}
		sp := s.spaceOf(n.Proc)
		forEachRead(n, func(v ir.VarID) {
			if v >= 0 && int(v) < len(s.summary) {
				s.summary[v] = meet(s.summary[v], valueOf(st, sp, v))
			}
		})
		if n.Kind == ir.NExit {
			// The exit's implicit read of the procedure's return variable.
			if n.Proc >= 0 && n.Proc < len(p.Procs) && p.Procs[n.Proc] != nil {
				rv := p.Procs[n.Proc].RetVar
				if rv >= 0 && int(rv) < len(s.summary) {
					s.summary[rv] = meet(s.summary[rv], valueOf(st, sp, rv))
				}
			}
		}
	})
	return s
}

func (s *SCCP) spaceOf(proc int) *space {
	if proc >= 0 && proc < len(s.spaces) {
		return s.spaces[proc]
	}
	return s.fallback
}

func (s *SCCP) stateOf(n ir.NodeID) []cell {
	if s.saturated || n < 0 || int(n) >= len(s.in) {
		return nil
	}
	return s.in[n]
}

// Reachable reports whether the oracle proved the node executable. False
// means statically unreachable (the proof is conservative: unreachable nodes
// may still be reported reachable, never the reverse).
func (s *SCCP) Reachable(n ir.NodeID) bool {
	if s.saturated {
		return s.prog.Node(n) != nil
	}
	return n >= 0 && int(n) < len(s.exec) && s.exec[n]
}

// VarValue returns the variable's summary element: the meet of its entry
// value over every executable read site. Out-of-range variables (including
// NoVar) are ⊥; a variable with no executable read stays ⊤.
func (s *SCCP) VarValue(v ir.VarID) Value {
	if s.saturated || v < 0 || int(v) >= len(s.summary) {
		return bottom()
	}
	return s.summary[v]
}

// ConstOf returns the proved constant value of a variable, if any: every
// runtime read of the variable yields that constant.
func (s *SCCP) ConstOf(v ir.VarID) (int64, bool) { return s.VarValue(v).Const() }

// ValueAt returns the variable's lattice element on entry to the given node
// (⊥ when the node is unreachable, deleted, or out of range).
func (s *SCCP) ValueAt(n ir.NodeID, v ir.VarID) Value {
	nd := s.prog.Node(n)
	st := s.stateOf(n)
	if nd == nil || st == nil {
		return bottom()
	}
	return valueOf(st, s.spaceOf(nd.Proc), v)
}

// BranchOutcome decides a branch's condition from its entry state: pred.True
// / pred.False when the comparison folds over the operand elements,
// pred.Unknown otherwise. Branches in unreachable code are never decided —
// their cells hold no executable fact, and grading them would manufacture
// spurious disagreements with the path-sensitive backward analysis.
func (s *SCCP) BranchOutcome(b ir.NodeID) pred.Outcome {
	n := s.prog.Node(b)
	st := s.stateOf(b)
	if n == nil || n.Kind != ir.NBranch || st == nil {
		return pred.Unknown
	}
	sp := s.spaceOf(n.Proc)
	return decideValues(n.CondOp, valueOf(st, sp, n.CondVar), operandValue(st, sp, n.CondRHS))
}

// MustFailAsserts returns the executable assert nodes whose predicate can
// never hold on any modeled path, in node order. On a well-formed program
// this is empty: an assert only becomes executable through edges consistent
// with the branch that materialized it.
func (s *SCCP) MustFailAsserts() []ir.NodeID {
	return append([]ir.NodeID(nil), s.mustFail...)
}

// DecidedBranches returns the executable branches whose outcome
// BranchOutcome decides, in node order.
func (s *SCCP) DecidedBranches() []ir.NodeID {
	var out []ir.NodeID
	s.prog.LiveNodes(func(n *ir.Node) {
		if n.Kind == ir.NBranch && s.BranchOutcome(n.ID) != pred.Unknown {
			out = append(out, n.ID)
		}
	})
	return out
}

// sccpRun is the in-flight worklist state of one RunSCCP call.
type sccpRun struct {
	p        *ir.Program
	spaces   []*space
	fallback *space
	nGlob    int
	in       [][]cell
	exec     []bool
	mustFail []bool
	ces      []*ceState
	queue    []ir.NodeID
	head     int
	inWL     []bool
	// steps bounds worklist processing; exceeding the budget (possible only
	// on adversarial graphs whose interval flows keep descending) flips
	// saturated, the sound give-up state.
	steps     int
	budget    int
	saturated bool
}

// ceState accumulates the two halves a call-site exit joins: the caller's
// state at the call (locals survive the call in the caller's frame) and the
// callee exit's globals and return value. The node's entry state is
// recomputed whenever either half changes and both are present — the
// interprocedural two-predecessor rule.
type ceState struct {
	callSt  []cell
	hasCall bool
	exitGlb []cell
	ret     Value
	hasExit bool
}

func newSCCPRun(p *ir.Program) *sccpRun {
	r := &sccpRun{
		p:        p,
		in:       make([][]cell, len(p.Nodes)),
		exec:     make([]bool, len(p.Nodes)),
		mustFail: make([]bool, len(p.Nodes)),
		ces:      make([]*ceState, len(p.Nodes)),
		inWL:     make([]bool, len(p.Nodes)),
	}
	var globals []ir.VarID
	for _, v := range p.Vars {
		if v != nil && v.IsGlobal() {
			globals = append(globals, v.ID)
		}
	}
	r.nGlob = len(globals)
	mkSpace := func() *space {
		sp := &space{slots: make([]int32, len(p.Vars)), vars: append([]ir.VarID(nil), globals...)}
		for i := range sp.slots {
			sp.slots[i] = -1
		}
		for s, v := range globals {
			sp.slots[v] = int32(s)
		}
		return sp
	}
	r.fallback = mkSpace()
	r.spaces = make([]*space, len(p.Procs))
	for pi := range p.Procs {
		sp := mkSpace()
		for _, v := range p.Vars {
			if v != nil && !v.IsGlobal() && v.Proc == pi {
				sp.slots[v.ID] = int32(len(sp.vars))
				sp.vars = append(sp.vars, v.ID)
			}
		}
		r.spaces[pi] = sp
	}
	total := 0
	p.LiveNodes(func(n *ir.Node) { total += len(r.spaceOf(n.Proc).vars) + 1 })
	r.budget = 4096 + 32*total
	return r
}

func (r *sccpRun) spaceOf(proc int) *space {
	if proc >= 0 && proc < len(r.spaces) {
		return r.spaces[proc]
	}
	return r.fallback
}

// seed builds the program's initial state — globals at their declared
// initial values, main's own variables at the interpreter's implicit zero —
// and pushes it into main's first entry, matching where execution starts.
func (r *sccpRun) seed() {
	p := r.p
	if p.MainProc < 0 || p.MainProc >= len(p.Procs) || p.Procs[p.MainProc] == nil {
		return
	}
	es := p.Procs[p.MainProc].Entries
	if len(es) == 0 {
		return
	}
	sp := r.spaceOf(p.MainProc)
	st := make([]cell, len(sp.vars))
	for i, v := range sp.vars {
		val := constant(0)
		if i < r.nGlob && int(v) < len(p.Vars) && p.Vars[v] != nil {
			val = constant(p.Vars[v].Init)
		}
		st[i] = cell{v: val, alias: ir.NoVar}
	}
	en := p.Node(es[0])
	if en == nil {
		return
	}
	r.pushState(es[0], st, sp)
}

func (r *sccpRun) enqueue(id ir.NodeID) {
	if id < 0 || int(id) >= len(r.inWL) || r.inWL[id] {
		return
	}
	r.inWL[id] = true
	r.queue = append(r.queue, id)
}

func (r *sccpRun) drain() {
	for r.head < len(r.queue) {
		if r.steps >= r.budget {
			r.saturated = true
			return
		}
		r.steps++
		id := r.queue[r.head]
		r.head++
		r.inWL[id] = false
		r.process(id)
	}
}

func cloneCells(st []cell) []cell { return append([]cell(nil), st...) }

// meetCells meets src into dst elementwise, reporting whether dst changed.
// Aliases survive only when both sides agree; length mismatches (possible
// only across fuzz-mutated cross-procedure edges) bottom out the tail.
func meetCells(dst, src []cell) bool {
	changed := false
	m := len(dst)
	if len(src) < m {
		m = len(src)
	}
	for i := 0; i < m; i++ {
		nv := meet(dst[i].v, src[i].v)
		na := dst[i].alias
		if na != src[i].alias {
			na = ir.NoVar
		}
		if nv != dst[i].v || na != dst[i].alias {
			dst[i] = cell{v: nv, alias: na}
			changed = true
		}
	}
	for i := m; i < len(dst); i++ {
		if !dst[i].v.IsBottom() || dst[i].alias != ir.NoVar {
			dst[i] = cell{v: bottom(), alias: ir.NoVar}
			changed = true
		}
	}
	return changed
}

// meetIn meets a state into the node's entry state, marking the node
// executable on first arrival and re-enqueueing it on any change.
func (r *sccpRun) meetIn(id ir.NodeID, st []cell) {
	if id < 0 || int(id) >= len(r.in) {
		return
	}
	if r.in[id] == nil {
		r.in[id] = cloneCells(st)
		r.exec[id] = true
		r.enqueue(id)
		return
	}
	if meetCells(r.in[id], st) {
		r.enqueue(id)
	}
}

// pushState propagates a state along one plain control edge, converting
// between procedure spaces when a malformed edge crosses procedures (globals
// survive the conversion, everything else bottoms out).
func (r *sccpRun) pushState(to ir.NodeID, st []cell, from *space) {
	n := r.p.Node(to)
	if n == nil {
		return
	}
	tsp := r.spaceOf(n.Proc)
	if tsp != from {
		st = r.convert(st, tsp)
	}
	r.meetIn(to, st)
}

func (r *sccpRun) isGlobalVar(v ir.VarID) bool {
	return v >= 0 && int(v) < len(r.p.Vars) && r.p.Vars[v] != nil && r.p.Vars[v].IsGlobal()
}

// globalCell extracts one global slot for transport into another space,
// dropping aliases rooted in non-global variables.
func (r *sccpRun) globalCell(st []cell, g int) cell {
	if g >= len(st) {
		return cell{v: bottom(), alias: ir.NoVar}
	}
	c := st[g]
	if c.alias != ir.NoVar && !r.isGlobalVar(c.alias) {
		c.alias = ir.NoVar
	}
	return c
}

func (r *sccpRun) convert(st []cell, to *space) []cell {
	out := make([]cell, len(to.vars))
	for i := range out {
		if i < r.nGlob {
			out[i] = r.globalCell(st, i)
		} else {
			out[i] = cell{v: bottom(), alias: ir.NoVar}
		}
	}
	return out
}

func valueOf(st []cell, sp *space, v ir.VarID) Value {
	s := sp.slot(v)
	if s < 0 || s >= len(st) {
		return bottom()
	}
	return st[s].v
}

func operandValue(st []cell, sp *space, o ir.Operand) Value {
	if o.IsConst {
		return constant(o.Const)
	}
	return valueOf(st, sp, o.Var)
}

// rootOf resolves a variable's copy-chain root in the state: the alias
// recorded in its slot, or the variable itself.
func rootOf(st []cell, sp *space, v ir.VarID) ir.VarID {
	s := sp.slot(v)
	if s < 0 || s >= len(st) {
		return v
	}
	if a := st[s].alias; a != ir.NoVar {
		return a
	}
	return v
}

// assign writes dst := (v, aliased to root) into the state and severs every
// stale equality recorded against the overwritten variable.
func assign(st []cell, sp *space, dst ir.VarID, v Value, root ir.VarID) {
	if root == dst {
		root = ir.NoVar
	}
	ds := sp.slot(dst)
	for i := range st {
		if i != ds && st[i].alias == dst {
			st[i].alias = ir.NoVar
		}
	}
	if ds >= 0 && ds < len(st) {
		st[ds] = cell{v: v, alias: root}
	}
}

// refineGroup narrows the asserted variable's cell — and every cell in its
// copy-propagation group — by the predicate (v op c). It reports false only
// when the asserted variable itself cannot satisfy the predicate: the path
// is infeasible (a branch arm) or the assertion must fail. A contradiction
// on another group member leaves that member unchanged instead; the group
// bookkeeping is conservative and must never manufacture a proof.
func refineGroup(st []cell, sp *space, v ir.VarID, op pred.Op, c int64) bool {
	okOwn := true
	root := rootOf(st, sp, v)
	for i := range st {
		if i >= len(sp.vars) {
			break
		}
		vi := sp.vars[i]
		ri := st[i].alias
		if ri == ir.NoVar {
			ri = vi
		}
		if ri != root && vi != root {
			continue
		}
		nv, ok := refine(st[i].v, op, c)
		if !ok {
			if vi == v {
				okOwn = false
			}
			continue
		}
		st[i].v = nv
	}
	return okOwn
}

// refine intersects a lattice element with the predicate (· op c),
// reporting ok=false when the intersection is empty. ⊤ carries no
// executable value and passes through untouched.
func refine(v Value, op pred.Op, c int64) (Value, bool) {
	if v.kind == vTop {
		return v, true
	}
	lo, hi := v.lo, v.hi
	switch op {
	case pred.Eq:
		if c < lo || c > hi {
			return v, false
		}
		return constant(c), true
	case pred.Ne:
		switch {
		case lo == hi:
			if lo == c {
				return v, false
			}
		case c == lo:
			return rangeValue(lo+1, hi), true
		case c == hi:
			return rangeValue(lo, hi-1), true
		}
		return v, true
	case pred.Lt:
		if c == math.MinInt64 {
			return v, false
		}
		return clampHi(v, lo, hi, c-1)
	case pred.Le:
		return clampHi(v, lo, hi, c)
	case pred.Gt:
		if c == math.MaxInt64 {
			return v, false
		}
		return clampLo(v, lo, hi, c+1)
	case pred.Ge:
		return clampLo(v, lo, hi, c)
	}
	return v, true
}

func clampHi(v Value, lo, hi, bound int64) (Value, bool) {
	switch {
	case bound < lo:
		return v, false
	case bound >= hi:
		return v, true
	}
	return rangeValue(lo, bound), true
}

func clampLo(v Value, lo, hi, bound int64) (Value, bool) {
	switch {
	case bound > hi:
		return v, false
	case bound <= lo:
		return v, true
	}
	return rangeValue(bound, hi), true
}

// decideValues folds a comparison over two lattice elements: True/False when
// the operand bounds decide it, Unknown otherwise (including ⊤ operands and
// malformed operators).
func decideValues(op pred.Op, l, r Value) pred.Outcome {
	if !validOp(op) || l.kind == vTop || r.kind == vTop {
		return pred.Unknown
	}
	llo, lhi := l.lo, l.hi
	rlo, rhi := r.lo, r.hi
	switch op {
	case pred.Eq:
		if llo == lhi && rlo == rhi && llo == rlo {
			return pred.True
		}
		if lhi < rlo || llo > rhi {
			return pred.False
		}
	case pred.Ne:
		if lhi < rlo || llo > rhi {
			return pred.True
		}
		if llo == lhi && rlo == rhi && llo == rlo {
			return pred.False
		}
	case pred.Lt:
		if lhi < rlo {
			return pred.True
		}
		if llo >= rhi {
			return pred.False
		}
	case pred.Le:
		if lhi <= rlo {
			return pred.True
		}
		if llo > rhi {
			return pred.False
		}
	case pred.Gt:
		if llo > rhi {
			return pred.True
		}
		if lhi <= rlo {
			return pred.False
		}
	case pred.Ge:
		if llo >= rhi {
			return pred.True
		}
		if lhi < rlo {
			return pred.False
		}
	}
	return pred.Unknown
}

func (r *sccpRun) process(id ir.NodeID) {
	n := r.p.Node(id)
	if n == nil || int(id) >= len(r.in) {
		return
	}
	st := r.in[id]
	if st == nil {
		return
	}
	sp := r.spaceOf(n.Proc)
	switch n.Kind {
	case ir.NAssign:
		out := cloneCells(st)
		v, root := evalRHS(st, sp, n)
		assign(out, sp, n.Dst, v, root)
		r.pushAll(n, out, sp)
	case ir.NBranch:
		r.processBranch(n, st, sp)
	case ir.NAssert:
		out := cloneCells(st)
		ok := true
		if validOp(n.APred.Op) {
			ok = refineGroup(out, sp, n.AVar, n.APred.Op, n.APred.C)
		}
		if int(id) < len(r.mustFail) {
			r.mustFail[id] = !ok
		}
		if !ok {
			// Statically failing assertion: control cannot continue past it.
			return
		}
		r.pushAll(n, out, sp)
	case ir.NCall:
		r.processCall(n, st, sp)
	case ir.NExit:
		r.processExit(n, st, sp)
	case ir.NCallExit:
		out := cloneCells(st)
		if n.Dst != ir.NoVar {
			ret := bottom()
			if ce := r.ces[id]; ce != nil && ce.hasExit {
				ret = ce.ret
			}
			assign(out, sp, n.Dst, ret, ir.NoVar)
		}
		r.pushAll(n, out, sp)
	default: // NEntry, NStore, NPrint, NNop
		r.pushAll(n, st, sp)
	}
}

func (r *sccpRun) pushAll(n *ir.Node, st []cell, sp *space) {
	for _, s := range n.Succs {
		r.pushState(s, st, sp)
	}
}

// processBranch pushes only the feasible arms, refining the tested
// variable's group by the implied predicate on each taken edge — the
// branch-edge assertion that makes the oracle conditional.
func (r *sccpRun) processBranch(n *ir.Node, st []cell, sp *space) {
	l := valueOf(st, sp, n.CondVar)
	rv := operandValue(st, sp, n.CondRHS)
	o := decideValues(n.CondOp, l, rv)
	refinable := n.CondRHS.IsConst && validOp(n.CondOp)
	if o != pred.False && len(n.Succs) > 0 {
		out := cloneCells(st)
		ok := true
		if refinable {
			ok = refineGroup(out, sp, n.CondVar, n.CondOp, n.CondRHS.Const)
		}
		if ok {
			r.pushState(n.Succs[0], out, sp)
		}
	}
	if o != pred.True && len(n.Succs) > 1 {
		out := cloneCells(st)
		ok := true
		if refinable {
			np := pred.Pred{Op: n.CondOp, C: n.CondRHS.Const}.Negate()
			ok = refineGroup(out, sp, n.CondVar, np.Op, np.C)
		}
		if ok {
			r.pushState(n.Succs[1], out, sp)
		}
	}
	// Malformed extra out-edges (fuzz graphs): plain unrefined flow.
	for i := 2; i < len(n.Succs); i++ {
		r.pushState(n.Succs[i], st, sp)
	}
}

// processCall builds the callee's entry state — formals bound to the
// argument values, other callee variables at the interpreter's implicit
// zero, globals carried over — and feeds the caller half of each call-site
// exit. Entry states meet across call sites (context-insensitive), but
// split entries keep their own states, so restructured specialized entries
// stay specialized.
func (r *sccpRun) processCall(n *ir.Node, st []cell, sp *space) {
	callee := n.Callee
	calleeOK := callee >= 0 && callee < len(r.p.Procs) && r.p.Procs[callee] != nil
	var es []cell
	var csp *space
	if calleeOK {
		csp = r.spaceOf(callee)
		es = make([]cell, len(csp.vars))
		for i := range es {
			if i < r.nGlob {
				es[i] = r.globalCell(st, i)
			} else {
				es[i] = cell{v: constant(0), alias: ir.NoVar}
			}
		}
		for i, formal := range r.p.Procs[callee].Formals {
			fs := csp.slot(formal)
			if fs < 0 || fs >= len(es) {
				continue
			}
			v := bottom()
			if i < len(n.Args) {
				v = valueOf(st, sp, n.Args[i])
			}
			es[fs] = cell{v: v, alias: ir.NoVar}
		}
	}
	for _, s := range n.Succs {
		sn := r.p.Node(s)
		switch {
		case sn == nil:
		case sn.Kind == ir.NCallExit:
			r.feedCallHalf(sn, st, sp)
		case sn.Kind == ir.NEntry && calleeOK && sn.Proc == callee:
			r.meetIn(s, es)
		default:
			r.pushState(s, st, sp)
		}
	}
}

// processExit feeds the callee half — globals and return value — of each
// call-site-exit successor. Split exits feed only the call-site exits wired
// to them, so restructured specialized returns stay specialized.
func (r *sccpRun) processExit(n *ir.Node, st []cell, sp *space) {
	ret := bottom()
	if n.Proc >= 0 && n.Proc < len(r.p.Procs) && r.p.Procs[n.Proc] != nil {
		ret = valueOf(st, sp, r.p.Procs[n.Proc].RetVar)
	}
	for _, s := range n.Succs {
		sn := r.p.Node(s)
		switch {
		case sn == nil:
		case sn.Kind == ir.NCallExit:
			r.feedExitHalf(sn, st, ret)
		default:
			r.pushState(s, st, sp)
		}
	}
}

func (r *sccpRun) ceOf(id ir.NodeID) *ceState {
	if id < 0 || int(id) >= len(r.ces) {
		return nil
	}
	if r.ces[id] == nil {
		r.ces[id] = &ceState{}
	}
	return r.ces[id]
}

func (r *sccpRun) feedCallHalf(ce *ir.Node, st []cell, sp *space) {
	ces := r.ceOf(ce.ID)
	if ces == nil {
		return
	}
	tsp := r.spaceOf(ce.Proc)
	if tsp != sp {
		st = r.convert(st, tsp)
	}
	changed := !ces.hasCall
	ces.hasCall = true
	if ces.callSt == nil {
		ces.callSt = cloneCells(st)
		changed = true
	} else if meetCells(ces.callSt, st) {
		changed = true
	}
	if changed {
		r.recomputeCE(ce)
	}
}

func (r *sccpRun) feedExitHalf(ce *ir.Node, st []cell, ret Value) {
	ces := r.ceOf(ce.ID)
	if ces == nil {
		return
	}
	changed := !ces.hasExit
	ces.hasExit = true
	if ces.exitGlb == nil {
		ces.exitGlb = make([]cell, r.nGlob)
		for g := range ces.exitGlb {
			ces.exitGlb[g] = r.globalCell(st, g)
		}
		ces.ret = ret
		changed = true
	} else {
		glb := make([]cell, r.nGlob)
		for g := range glb {
			glb[g] = r.globalCell(st, g)
		}
		if meetCells(ces.exitGlb, glb) {
			changed = true
		}
		if nr := meet(ces.ret, ret); nr != ces.ret {
			ces.ret = nr
			changed = true
		}
	}
	if changed {
		r.recomputeCE(ce)
	}
}

// recomputeCE rebuilds a call-site exit's entry state once both its halves
// are present: the caller state with the globals overwritten by the callee
// exit's, caller equalities against globals severed (the callee may have
// changed them), and the return value applied by process. The node is
// re-enqueued even when the merged state is unchanged because the return
// value alone may have lowered.
func (r *sccpRun) recomputeCE(ce *ir.Node) {
	ces := r.ces[ce.ID]
	if ces == nil || !ces.hasCall || !ces.hasExit {
		return
	}
	merged := cloneCells(ces.callSt)
	for g := 0; g < r.nGlob && g < len(merged) && g < len(ces.exitGlb); g++ {
		merged[g] = ces.exitGlb[g]
	}
	for i := r.nGlob; i < len(merged); i++ {
		if a := merged[i].alias; a != ir.NoVar && r.isGlobalVar(a) {
			merged[i].alias = ir.NoVar
		}
	}
	r.meetIn(ce.ID, merged)
	if int(ce.ID) < len(r.in) && r.in[ce.ID] != nil {
		r.enqueue(ce.ID)
	}
}

// evalRHS folds an assignment right-hand side over the entry state,
// mirroring the interpreter's semantics exactly: negation and arithmetic
// wrap natively, byte conversion always lands in [0,255], and a right-hand
// side that can fault (division or modulo by a constant zero) or that the
// lattice does not model (heap loads, allocations, input) is ⊥. The second
// result is the copy-chain root for RCopy.
func evalRHS(st []cell, sp *space, n *ir.Node) (Value, ir.VarID) {
	rh := n.RHS
	switch rh.Kind {
	case ir.RConst:
		return constant(rh.Const), ir.NoVar
	case ir.RCopy:
		return valueOf(st, sp, rh.Src), rootOf(st, sp, rh.Src)
	case ir.RNeg:
		return negValue(valueOf(st, sp, rh.Src)), ir.NoVar
	case ir.RByte:
		return byteValue(valueOf(st, sp, rh.Src)), ir.NoVar
	case ir.RBinop:
		a := operandValue(st, sp, rh.A)
		b := operandValue(st, sp, rh.B)
		return binopValue(rh.Op, a, b), ir.NoVar
	}
	return bottom(), ir.NoVar // RLoad, RAlloc, RInput
}

func negValue(v Value) Value {
	switch v.kind {
	case vTop:
		return v
	case vConst:
		return constant(-v.lo) // wraps at MinInt64, matching the interpreter
	case vRange:
		if v.lo == math.MinInt64 {
			return bottom()
		}
		return rangeValue(-v.hi, -v.lo)
	}
	return bottom()
}

// byteValue models byte(): constants mask to their low 8 bits, an interval
// already inside [0,255] is exact, and any other input — including ⊥ —
// still lands in [0,255], the fact that decides sentinel comparisons like
// (c != -1) on byte-fed paths.
func byteValue(v Value) Value {
	switch v.kind {
	case vConst:
		return constant(v.lo & 0xFF)
	case vRange:
		if v.lo >= 0 && v.hi <= 255 {
			return v
		}
	}
	return rangeValue(0, 255)
}

func binopValue(op ir.BinOp, a, b Value) Value {
	if a.kind == vTop || b.kind == vTop {
		return top()
	}
	ac, aok := a.Const()
	bc, bok := b.Const()
	if aok && bok {
		if v, ok := foldBinop(op, ac, bc); ok {
			return constant(v)
		}
		return bottom()
	}
	// Interval arithmetic is deliberately limited to constant shifts:
	// interval+interval sums grow without bound around loops, and the
	// containment-only meet would ride them straight into the step budget.
	switch op {
	case ir.OpAdd:
		if aok {
			return shiftValue(b, ac)
		}
		if bok {
			return shiftValue(a, bc)
		}
	case ir.OpSub:
		if bok {
			if bc == math.MinInt64 {
				return bottom()
			}
			return shiftValue(a, -bc)
		}
		if aok {
			return shiftValue(negValue(b), ac)
		}
	}
	return bottom()
}

// shiftValue translates an interval by a constant, falling to ⊥ when a bound
// would wrap (the interpreter wraps natively, so a wrapped interval would be
// unsound to keep).
func shiftValue(v Value, d int64) Value {
	if v.kind != vRange {
		return bottom()
	}
	nlo, ok1 := addChecked(v.lo, d)
	nhi, ok2 := addChecked(v.hi, d)
	if !ok1 || !ok2 {
		return bottom()
	}
	return rangeValue(nlo, nhi)
}

func addChecked(a, b int64) (int64, bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, false
	}
	return s, true
}

// foldBinop evaluates a binary operation on constants with the
// interpreter's exact semantics; ok is false when the operation faults at
// runtime (division or modulo by zero).
func foldBinop(op ir.BinOp, a, b int64) (int64, bool) {
	switch op {
	case ir.OpAdd:
		return a + b, true
	case ir.OpSub:
		return a - b, true
	case ir.OpMul:
		return a * b, true
	case ir.OpDiv:
		if b == 0 {
			return 0, false
		}
		if a == math.MinInt64 && b == -1 {
			return math.MinInt64, true
		}
		return a / b, true
	case ir.OpMod:
		if b == 0 {
			return 0, false
		}
		if a == math.MinInt64 && b == -1 {
			return 0, true
		}
		return a % b, true
	}
	return 0, false
}

// validOp guards pred.Op.Eval, which panics on out-of-range operators
// (possible only on fuzz-mutated graphs).
func validOp(op pred.Op) bool { return op >= pred.Eq && op <= pred.Ge }
