package check

import (
	"fmt"
	"math"

	"icbe/internal/ir"
	"icbe/internal/pred"
)

// Value is an SCCP lattice element for one variable: ⊤ (no executable
// assignment seen yet), a single constant, or ⊥ (provably more than one
// runtime value, or a value the analysis does not model).
type Value struct {
	kind uint8 // 0 = ⊤, 1 = const, 2 = ⊥
	c    int64
}

const (
	vTop uint8 = iota
	vConst
	vBottom
)

func top() Value             { return Value{} }
func constant(c int64) Value { return Value{kind: vConst, c: c} }
func bottom() Value          { return Value{kind: vBottom} }

// IsTop reports the ⊤ element.
func (v Value) IsTop() bool { return v.kind == vTop }

// IsBottom reports the ⊥ element.
func (v Value) IsBottom() bool { return v.kind == vBottom }

// Const returns the constant and true for a const element.
func (v Value) Const() (int64, bool) { return v.c, v.kind == vConst }

func (v Value) String() string {
	switch v.kind {
	case vTop:
		return "⊤"
	case vConst:
		return fmt.Sprintf("%d", v.c)
	}
	return "⊥"
}

// meet is the lattice meet: ⊤ is the identity, unequal constants fall to ⊥.
func meet(a, b Value) Value {
	switch {
	case a.kind == vTop:
		return b
	case b.kind == vTop:
		return a
	case a.kind == vConst && b.kind == vConst && a.c == b.c:
		return a
	}
	return bottom()
}

// SCCP is the result of one forward sparse conditional constant propagation
// run: per-variable lattice cells plus the executable-node set, computed
// with an executable-edge worklist over the ICFG. Calls and returns are
// handled context-insensitively: argument values meet into the callee's
// formals at every executable call site, and the callee's return variable
// meets into the call-site-exit destination; a call-site exit becomes
// executable only when both its call-site and its procedure-exit
// predecessor are.
//
// The cells are flow-insensitive (one per variable), so a const cell is a
// whole-program fact: every runtime read of the variable yields that
// constant. That makes the oracle's claims directly comparable with the
// backward analysis' full-correlation answers without any false
// disagreement from program points the backward analysis reasons about
// path-sensitively.
type SCCP struct {
	prog     *ir.Program
	cells    []Value
	exec     []bool
	mustFail []ir.NodeID
}

// RunSCCP computes the SCCP facts of a program. It is read-only, total, and
// panic-free even on malformed graphs (every node, variable, and procedure
// reference is bounds-checked), which the fuzz harness relies on.
func RunSCCP(p *ir.Program) *SCCP {
	r := &sccpRun{
		p:     p,
		cells: make([]Value, len(p.Vars)),
		exec:  make([]bool, len(p.Nodes)),
		inWL:  make([]bool, len(p.Nodes)),
		users: make([][]ir.NodeID, len(p.Vars)),
	}
	r.seedCells()
	r.buildUsers()
	// Execution starts at the first entry of main, matching the interpreter.
	if p.MainProc >= 0 && p.MainProc < len(p.Procs) && p.Procs[p.MainProc] != nil {
		if es := p.Procs[p.MainProc].Entries; len(es) > 0 {
			r.markNode(es[0])
		}
	}
	for {
		r.drain()
		// A quiescent executable branch whose condition is still ⊤ was never
		// computed on any modeled path; treat it as unknown and mark both
		// arms, then propagate the consequences.
		if !r.expandTopBranches() {
			break
		}
	}
	s := &SCCP{prog: p, cells: r.cells, exec: r.exec}
	// Executable assertions that can never hold under a constant cell are
	// the sccp-consistency findings (a correct restructuring only keeps an
	// assert on edges consistent with the branch it materializes).
	p.LiveNodes(func(n *ir.Node) {
		if n.Kind == ir.NAssert && s.Reachable(n.ID) {
			if c, ok := s.VarValue(n.AVar).Const(); ok && validOp(n.APred.Op) && !n.APred.Eval(c) {
				s.mustFail = append(s.mustFail, n.ID)
			}
		}
	})
	return s
}

// Reachable reports whether SCCP proved the node executable. False means
// statically unreachable (the proof is conservative: unreachable nodes may
// still be reported reachable, never the reverse).
func (s *SCCP) Reachable(n ir.NodeID) bool {
	return n >= 0 && int(n) < len(s.exec) && s.exec[n]
}

// VarValue returns the variable's lattice cell. Out-of-range variables
// (including NoVar) are ⊥.
func (s *SCCP) VarValue(v ir.VarID) Value {
	if v < 0 || int(v) >= len(s.cells) {
		return bottom()
	}
	return s.cells[v]
}

// ConstOf returns the proved constant value of a variable, if any.
func (s *SCCP) ConstOf(v ir.VarID) (int64, bool) { return s.VarValue(v).Const() }

// BranchOutcome decides a branch's condition from the final cells:
// pred.True / pred.False when the branch is executable and both operands
// are proved constants, pred.Unknown otherwise (including unreachable or
// non-branch nodes).
func (s *SCCP) BranchOutcome(b ir.NodeID) pred.Outcome {
	n := s.prog.Node(b)
	if n == nil || n.Kind != ir.NBranch || !s.Reachable(b) {
		return pred.Unknown
	}
	o, resolved := decideBranch(n, func(v ir.VarID) Value { return s.VarValue(v) })
	if !resolved {
		return pred.Unknown
	}
	return o
}

// MustFailAsserts returns the executable assert nodes whose predicate is
// statically false under a constant cell, in node order. On a well-formed
// program this is empty: an assert only becomes executable through edges
// consistent with the branch that materialized it.
func (s *SCCP) MustFailAsserts() []ir.NodeID {
	return append([]ir.NodeID(nil), s.mustFail...)
}

// DecidedBranches returns the executable branches whose outcome
// BranchOutcome decides, in node order.
func (s *SCCP) DecidedBranches() []ir.NodeID {
	var out []ir.NodeID
	s.prog.LiveNodes(func(n *ir.Node) {
		if n.Kind == ir.NBranch && s.BranchOutcome(n.ID) != pred.Unknown {
			out = append(out, n.ID)
		}
	})
	return out
}

// sccpRun is the in-flight worklist state of one RunSCCP call.
type sccpRun struct {
	p     *ir.Program
	cells []Value
	exec  []bool
	// users indexes, per variable, the nodes whose transfer function reads
	// it — the sparse re-evaluation set when a cell changes.
	users [][]ir.NodeID
	queue []ir.NodeID
	inWL  []bool
}

// seedCells initializes the lattice: globals start at their initial value,
// and any local that may be read before being assigned (per-procedure
// definite-assignment dataflow) starts at the interpreter's implicit zero.
// Everything else starts at ⊤ and is lowered only by executable
// assignments, so a const cell soundly covers every runtime read.
func (r *sccpRun) seedCells() {
	for i, v := range r.p.Vars {
		if v != nil && v.IsGlobal() {
			r.cells[i] = constant(v.Init)
		}
	}
	for proc := range r.p.Procs {
		af := analyzeAssignments(r.p, proc)
		af.forEachMayUndefRead(func(v ir.VarID) {
			if v >= 0 && int(v) < len(r.cells) {
				r.cells[v] = meet(r.cells[v], constant(0))
			}
		})
	}
}

func (r *sccpRun) buildUsers() {
	addUser := func(v ir.VarID, n ir.NodeID) {
		if v >= 0 && int(v) < len(r.users) {
			r.users[v] = append(r.users[v], n)
		}
	}
	r.p.LiveNodes(func(n *ir.Node) {
		forEachRead(n, func(v ir.VarID) { addUser(v, n.ID) })
		if n.Kind == ir.NCallExit {
			// The call-site exit's transfer reads the callee's return
			// variable across the procedure boundary.
			if rv, ok := r.retVarOf(n.Callee); ok {
				addUser(rv, n.ID)
			}
		}
	})
}

func (r *sccpRun) retVarOf(callee int) (ir.VarID, bool) {
	if callee < 0 || callee >= len(r.p.Procs) || r.p.Procs[callee] == nil {
		return ir.NoVar, false
	}
	rv := r.p.Procs[callee].RetVar
	if rv < 0 || int(rv) >= len(r.cells) {
		return ir.NoVar, false
	}
	return rv, true
}

func (r *sccpRun) markNode(id ir.NodeID) {
	if id < 0 || int(id) >= len(r.exec) || r.exec[id] {
		return
	}
	r.exec[id] = true
	r.enqueue(id)
}

func (r *sccpRun) enqueue(id ir.NodeID) {
	if id < 0 || int(id) >= len(r.inWL) || r.inWL[id] {
		return
	}
	r.inWL[id] = true
	r.queue = append(r.queue, id)
}

func (r *sccpRun) drain() {
	for len(r.queue) > 0 {
		id := r.queue[0]
		r.queue = r.queue[1:]
		r.inWL[id] = false
		r.process(id)
	}
}

func (r *sccpRun) cellOf(v ir.VarID) Value {
	if v < 0 || int(v) >= len(r.cells) {
		return bottom()
	}
	return r.cells[v]
}

// setCell meets val into the variable's cell; a lowered cell re-enqueues
// every executable user of the variable.
func (r *sccpRun) setCell(v ir.VarID, val Value) {
	if v < 0 || int(v) >= len(r.cells) {
		return
	}
	nv := meet(r.cells[v], val)
	if nv == r.cells[v] {
		return
	}
	r.cells[v] = nv
	for _, u := range r.users[v] {
		if r.exec[u] {
			r.enqueue(u)
		}
	}
}

func (r *sccpRun) markAllSuccs(n *ir.Node) {
	for _, s := range n.Succs {
		r.markNode(s)
	}
}

func (r *sccpRun) process(id ir.NodeID) {
	n := r.p.Node(id)
	if n == nil {
		return
	}
	switch n.Kind {
	case ir.NAssign:
		r.setCell(n.Dst, r.evalRHS(n))
		r.markAllSuccs(n)
	case ir.NBranch:
		o, resolved := decideBranch(n, r.cellOf)
		if !resolved {
			return // an operand is still ⊤; expandTopBranches resolves leftovers
		}
		switch o {
		case pred.True:
			if len(n.Succs) > 0 {
				r.markNode(n.Succs[0])
			}
		case pred.False:
			if len(n.Succs) > 1 {
				r.markNode(n.Succs[1])
			}
		default:
			r.markAllSuccs(n)
		}
	case ir.NAssert:
		if c, ok := r.cellOf(n.AVar).Const(); ok && validOp(n.APred.Op) && !n.APred.Eval(c) {
			// Statically failing assertion: control cannot continue past it.
			return
		}
		r.markAllSuccs(n)
	case ir.NCall:
		r.bindFormals(n)
		for _, s := range n.Succs {
			sn := r.p.Node(s)
			switch {
			case sn == nil:
			case sn.Kind == ir.NCallExit:
				r.markCallExit(sn)
			default:
				// The callee entry; on malformed graphs any other successor
				// is treated as plain control flow.
				r.markNode(s)
			}
		}
	case ir.NExit:
		for _, s := range n.Succs {
			sn := r.p.Node(s)
			switch {
			case sn == nil:
			case sn.Kind == ir.NCallExit:
				r.markCallExit(sn)
			default:
				r.markNode(s)
			}
		}
	case ir.NCallExit:
		if n.Dst != ir.NoVar {
			if rv, ok := r.retVarOf(n.Callee); ok {
				r.setCell(n.Dst, r.cellOf(rv))
			} else {
				r.setCell(n.Dst, bottom())
			}
		}
		r.markAllSuccs(n)
	default: // NEntry, NStore, NPrint, NNop
		r.markAllSuccs(n)
	}
}

// bindFormals meets the executable call's argument values into the callee's
// formals (context-insensitive entry meet).
func (r *sccpRun) bindFormals(call *ir.Node) {
	callee := call.Callee
	if callee < 0 || callee >= len(r.p.Procs) || r.p.Procs[callee] == nil {
		return
	}
	for i, formal := range r.p.Procs[callee].Formals {
		if i < len(call.Args) {
			r.setCell(formal, r.cellOf(call.Args[i]))
		} else {
			r.setCell(formal, bottom())
		}
	}
}

// markCallExit marks a call-site exit executable once both interprocedural
// conditions hold: its call-site predecessor is executable (the call is
// reached) and its procedure-exit predecessor is executable (the callee
// returns). Any executable predecessor of another kind (malformed graphs
// only) marks it directly.
func (r *sccpRun) markCallExit(ce *ir.Node) {
	hasCall, hasExit := false, false
	for _, m := range ce.Preds {
		mn := r.p.Node(m)
		if mn == nil || m < 0 || int(m) >= len(r.exec) || !r.exec[m] {
			continue
		}
		switch mn.Kind {
		case ir.NCall:
			hasCall = true
		case ir.NExit:
			hasExit = true
		default:
			hasCall, hasExit = true, true
		}
	}
	if hasCall && hasExit {
		r.markNode(ce.ID)
	}
}

// expandTopBranches marks both arms of every quiescent executable branch
// whose condition is still ⊤, reporting whether anything new became
// executable.
func (r *sccpRun) expandTopBranches() bool {
	changed := false
	r.p.LiveNodes(func(n *ir.Node) {
		if n.Kind != ir.NBranch || int(n.ID) >= len(r.exec) || !r.exec[n.ID] {
			return
		}
		if _, resolved := decideBranch(n, r.cellOf); resolved {
			return
		}
		for _, s := range n.Succs {
			if s >= 0 && int(s) < len(r.exec) && !r.exec[s] {
				r.markNode(s)
				changed = true
			}
		}
	})
	return changed
}

// evalRHS folds an assignment right-hand side over the cells, mirroring the
// interpreter's semantics exactly: negation and arithmetic wrap natively,
// byte conversion masks to the low 8 bits, and a right-hand side that can
// fault (division or modulo by a constant zero) or that the lattice does
// not model (heap loads, allocations, input) is ⊥.
func (r *sccpRun) evalRHS(n *ir.Node) Value {
	rh := n.RHS
	switch rh.Kind {
	case ir.RConst:
		return constant(rh.Const)
	case ir.RCopy:
		return r.cellOf(rh.Src)
	case ir.RNeg:
		if c, ok := r.cellOf(rh.Src).Const(); ok {
			return constant(-c)
		}
		return r.cellOf(rh.Src)
	case ir.RByte:
		if c, ok := r.cellOf(rh.Src).Const(); ok {
			return constant(c & 0xFF)
		}
		return r.cellOf(rh.Src)
	case ir.RBinop:
		a, b := r.operandValue(rh.A), r.operandValue(rh.B)
		if ac, ok := a.Const(); ok {
			if bc, ok := b.Const(); ok {
				if v, ok := foldBinop(rh.Op, ac, bc); ok {
					return constant(v)
				}
				return bottom()
			}
		}
		if a.IsBottom() || b.IsBottom() {
			return bottom()
		}
		return top()
	}
	return bottom()
}

func (r *sccpRun) operandValue(o ir.Operand) Value {
	if o.IsConst {
		return constant(o.Const)
	}
	return r.cellOf(o.Var)
}

// foldBinop evaluates a binary operation on constants with the
// interpreter's exact semantics; ok is false when the operation faults at
// runtime (division or modulo by zero).
func foldBinop(op ir.BinOp, a, b int64) (int64, bool) {
	switch op {
	case ir.OpAdd:
		return a + b, true
	case ir.OpSub:
		return a - b, true
	case ir.OpMul:
		return a * b, true
	case ir.OpDiv:
		if b == 0 {
			return 0, false
		}
		if a == math.MinInt64 && b == -1 {
			return math.MinInt64, true
		}
		return a / b, true
	case ir.OpMod:
		if b == 0 {
			return 0, false
		}
		if a == math.MinInt64 && b == -1 {
			return 0, true
		}
		return a % b, true
	}
	return 0, false
}

// decideBranch evaluates a branch condition over lattice cells. resolved is
// false while an operand is still ⊤ (the condition was never computed on a
// modeled path); with both operands constant the outcome is True/False, and
// a ⊥ operand or a malformed operator decides Unknown (both arms live).
func decideBranch(n *ir.Node, cell func(ir.VarID) Value) (o pred.Outcome, resolved bool) {
	lhs := cell(n.CondVar)
	rhs := constant(n.CondRHS.Const)
	if !n.CondRHS.IsConst {
		rhs = cell(n.CondRHS.Var)
	}
	if !validOp(n.CondOp) || lhs.IsBottom() || rhs.IsBottom() {
		return pred.Unknown, true
	}
	lc, lok := lhs.Const()
	rc, rok := rhs.Const()
	if !lok || !rok {
		return pred.Unknown, false
	}
	if n.CondOp.Eval(lc, rc) {
		return pred.True, true
	}
	return pred.False, true
}

// validOp guards pred.Op.Eval, which panics on out-of-range operators
// (possible only on fuzz-mutated graphs).
func validOp(op pred.Op) bool { return op >= pred.Eq && op <= pred.Ge }
