package check

import (
	"testing"

	"icbe/internal/ir"
	"icbe/internal/pred"
)

func TestPassesCleanProgram(t *testing.T) {
	p := build(t, `
		func inc(a) { return a + 1; }
		func main() {
			var x = input();
			var s = 0;
			while (x > 0) { s = s + inc(x); x = x - 1; }
			print(s);
		}
	`)
	rep := Analyze(p)
	if rep.Invariants != 0 {
		t.Errorf("invariant findings on a compiled program = %d, want 0:\n%v", rep.Invariants, rep.Findings)
	}
}

func TestUnreachableNodeFinding(t *testing.T) {
	p := build(t, `
		func main() { print(1); }
	`)
	// An orphan nop wired to an existing node: ir.Validate has no
	// reachability requirement, so only the unreachable-node pass sees it.
	pr := p.Procs[p.MainProc]
	orphan := p.NewNode(ir.NNop, pr.Index)
	p.AddEdge(orphan.ID, pr.Exits[0])
	if err := ir.Validate(p); err != nil {
		t.Fatalf("orphan nop should pass structural validation: %v", err)
	}
	rep := Analyze(p)
	if got := rep.Count("unreachable-node"); got != 1 {
		t.Errorf("unreachable-node findings = %d, want 1:\n%v", got, rep.Findings)
	}
	f, err := rep.FirstFinding("unreachable-node")
	if err != nil || f.Node != orphan.ID {
		t.Errorf("finding anchored at %d, want %d (err %v)", f.Node, orphan.ID, err)
	}
}

func TestUseBeforeDefFinding(t *testing.T) {
	p := build(t, `
		func main() {
			var x = 0;
			print(x);
		}
	`)
	// Erase the zero-initializing assignment by retyping it: the read at the
	// print is now ahead of every definition.
	var erased bool
	for _, n := range p.Nodes {
		if n != nil && n.Kind == ir.NAssign && n.RHS.Kind == ir.RConst && n.RHS.Const == 0 {
			n.Kind = ir.NNop
			erased = true
			break
		}
	}
	if !erased {
		t.Fatalf("no zero-init assignment found\n%s", p.Dump())
	}
	rep := Analyze(p)
	if got := rep.Count("use-before-def"); got == 0 {
		t.Errorf("use-before-def findings = 0, want >0:\n%v", rep.Findings)
	}
}

func TestDeadStoreFinding(t *testing.T) {
	p := build(t, `
		func main() { print(1); }
	`)
	pr := p.Procs[p.MainProc]
	entry := p.Node(pr.Entries[0])
	// Splice an assignment to a fresh temporary after the entry; nothing
	// reads it.
	tmp := p.NewVar("main.$dead", ir.VarTemp, pr.Index)
	st := p.NewNode(ir.NAssign, pr.Index)
	st.Dst = tmp
	st.RHS = ir.RHS{Kind: ir.RConst, Const: 3}
	succ := entry.Succs[0]
	p.RedirectSucc(entry.ID, succ, st.ID)
	p.AddEdge(st.ID, succ)
	if err := ir.Validate(p); err != nil {
		t.Fatalf("spliced program invalid: %v", err)
	}
	rep := Analyze(p)
	if got := rep.Count("dead-store"); got != 1 {
		t.Errorf("dead-store findings = %d, want 1:\n%v", got, rep.Findings)
	}
	if rep.Invariants != 0 {
		t.Errorf("dead store must be diagnostic, got %d invariant findings:\n%v", rep.Invariants, rep.Findings)
	}
}

func TestConstantBranchFinding(t *testing.T) {
	p := build(t, `
		func main() {
			var x = 5;
			if (x == 5) { print(1); } else { print(2); }
		}
	`)
	rep := Analyze(p)
	if got := rep.Count("constant-branch"); got != 1 {
		t.Errorf("constant-branch findings = %d, want 1:\n%v", got, rep.Findings)
	}
	if rep.Invariants != 0 {
		t.Errorf("constant branch on a seed program must not be an invariant violation, got %d:\n%v",
			rep.Invariants, rep.Findings)
	}
	if got := RecallCount(p, rep.SCCP); got != 1 {
		t.Errorf("RecallCount = %d, want 1", got)
	}
}

func TestStructureFinding(t *testing.T) {
	p := build(t, `
		func main() { print(1); }
	`)
	// A dangling successor edge (succ without matching pred) is a structural
	// violation ir.Validate reports.
	pr := p.Procs[p.MainProc]
	entry := p.Node(pr.Entries[0])
	entry.Succs = append(entry.Succs, pr.Exits[0])
	rep := Analyze(p)
	if got := rep.Count("structure"); got == 0 {
		t.Errorf("structure findings = 0, want >0:\n%v", rep.Findings)
	}
	if rep.Invariants == 0 {
		t.Errorf("structure violations must count as invariants")
	}
}

func TestAnalyzeInvariantsSkipsDiagnostics(t *testing.T) {
	p := build(t, `
		func main() {
			var x = 5;
			if (x == 5) { print(1); } else { print(2); }
		}
	`)
	rep := AnalyzeInvariants(p)
	if len(rep.Findings) != 0 {
		t.Errorf("AnalyzeInvariants reported %v", rep.Findings)
	}
	if _, ok := rep.PerPass["constant-branch"]; ok {
		t.Errorf("diagnostic pass present in invariant-only report: %v", rep.PerPass)
	}
	if _, ok := rep.PerPass["unreachable-node"]; !ok {
		t.Errorf("invariant pass missing from report: %v", rep.PerPass)
	}
}

func TestRegistryOrderAndKinds(t *testing.T) {
	want := []struct {
		name string
		kind Kind
	}{
		{"structure", Invariant},
		{"unreachable-node", Invariant},
		{"use-before-def", Invariant},
		{"sccp-consistency", Invariant},
		{"dead-store", Diagnostic},
		{"constant-branch", Diagnostic},
	}
	ps := Passes()
	if len(ps) != len(want) {
		t.Fatalf("registry has %d passes, want %d", len(ps), len(want))
	}
	for i, w := range want {
		if ps[i].Name() != w.name || ps[i].Kind() != w.kind {
			t.Errorf("pass %d = %s/%s, want %s/%s", i, ps[i].Name(), ps[i].Kind(), w.name, w.kind)
		}
	}
}

func TestBranchOutcomeNonBranch(t *testing.T) {
	p := build(t, `func main() { print(1); }`)
	s := RunSCCP(p)
	pr := p.Procs[p.MainProc]
	if got := s.BranchOutcome(pr.Entries[0]); got != pred.Unknown {
		t.Errorf("BranchOutcome(entry) = %v, want unknown", got)
	}
	if got := s.BranchOutcome(ir.NoNode); got != pred.Unknown {
		t.Errorf("BranchOutcome(NoNode) = %v, want unknown", got)
	}
	if !s.VarValue(ir.NoVar).IsBottom() {
		t.Errorf("VarValue(NoVar) should be ⊥")
	}
}
