package check

import (
	"testing"

	"icbe/internal/analysis"
	"icbe/internal/ir"
	"icbe/internal/pred"
	"icbe/internal/randprog"
)

// fuzzCfg keeps generated programs small enough for tight fuzz iterations
// while still exercising calls, branches, and globals.
var fuzzCfg = randprog.Config{Procs: 3, MaxStmts: 4, MaxDepth: 2}

// fuzzRNG is a splitmix64 stream, so mutations are a pure function of the
// fuzz input and failures replay deterministically.
type fuzzRNG struct{ s uint64 }

func (r *fuzzRNG) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *fuzzRNG) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// liveNodeIDs returns the non-nil node ids, the mutation candidates.
func liveNodeIDs(p *ir.Program) []ir.NodeID {
	var ids []ir.NodeID
	for i, n := range p.Nodes {
		if n != nil {
			ids = append(ids, ir.NodeID(i))
		}
	}
	return ids
}

func removePredOnce(ids []ir.NodeID, x ir.NodeID) []ir.NodeID {
	for i, id := range ids {
		if id == x {
			return append(ids[:i:i], ids[i+1:]...)
		}
	}
	return ids
}

// mutate applies one random graph corruption: the kinds of damage a buggy
// restructuring could inflict (dangling and asymmetric edges, freed nodes,
// out-of-range variable/procedure references, invalid kinds and operators).
func mutate(p *ir.Program, r *fuzzRNG) {
	ids := liveNodeIDs(p)
	if len(ids) == 0 {
		return
	}
	n := p.Node(ids[r.intn(len(ids))])
	switch r.intn(9) {
	case 0: // free a node while edges still reference it
		p.Nodes[n.ID] = nil
	case 1: // drop the backward direction of an edge (asymmetry)
		if len(n.Succs) > 0 {
			s := n.Succs[r.intn(len(n.Succs))]
			if sn := p.Node(s); sn != nil {
				sn.Preds = removePredOnce(sn.Preds, n.ID)
			}
		}
	case 2: // rewrite a successor slot to an arbitrary id
		if len(n.Succs) > 0 {
			n.Succs[r.intn(len(n.Succs))] = ir.NodeID(r.intn(len(p.Nodes)+6) - 3)
		}
	case 3: // retype the node, possibly to an invalid kind
		n.Kind = ir.NodeKind(r.intn(16))
	case 4: // out-of-range variable references
		n.Dst = ir.VarID(len(p.Vars) + r.intn(4))
		n.CondVar = ir.VarID(-1 - r.intn(2))
		n.AVar = ir.VarID(len(p.Vars) + 1)
	case 5: // out-of-range procedure references
		n.Callee = len(p.Procs) + r.intn(3)
		n.Proc = -1 - r.intn(2)
	case 6: // invalid predicate operators
		n.CondOp = pred.Op(64 + r.intn(8))
		n.APred.Op = pred.Op(64 + r.intn(8))
	case 7: // out-of-range argument list
		n.Args = append(n.Args, ir.VarID(len(p.Vars)+r.intn(3)))
	default: // invalid main procedure
		p.MainProc = len(p.Procs) + r.intn(2)
	}
}

// FuzzCheck feeds randomly generated programs — intact and with random graph
// corruptions — through the whole static check layer and requires it to stay
// panic-free: ir.Validate, the lint passes, the SCCP oracle, and the
// cross-check must diagnose arbitrary damage, never crash on it (the driver
// runs them on every candidate restructuring). On intact programs it also
// requires a clean bill of health: no validation error, no invariant
// findings, no must-fail asserts.
func FuzzCheck(f *testing.F) {
	for _, seed := range []uint64{0, 1, 2, 3, 7, 11, 42, 99, 1234, 0xdeadbeef} {
		f.Add(seed, seed*3)
		f.Add(seed, uint64(0))
	}
	f.Fuzz(func(t *testing.T, seed, mutSeed uint64) {
		src := randprog.Generate(seed, fuzzCfg)
		p, err := ir.Build(src)
		if err != nil {
			t.Fatalf("generated program rejected: %v\n%s", err, src)
		}

		r := &fuzzRNG{s: mutSeed}
		nmut := int(mutSeed % 4)
		for i := 0; i < nmut; i++ {
			mutate(p, r)
		}

		verr := ir.Validate(p)
		Analyze(p)
		s := RunSCCP(p)
		s.MustFailAsserts()
		s.DecidedBranches()
		RecallCount(p, s)
		for _, id := range liveNodeIDs(p) {
			if p.Node(id).Kind != ir.NBranch {
				continue
			}
			for _, ans := range []analysis.AnswerSet{analysis.AnsTrue, analysis.AnsFalse} {
				if _, cf := CrossCheck(p, s, id, ans); cf != nil {
					_ = cf.Error()
				}
			}
		}

		if nmut == 0 {
			if verr != nil {
				t.Fatalf("intact program failed validation: %v\n%s", verr, src)
			}
			if inv := AnalyzeInvariants(p); len(inv.Findings) != 0 {
				t.Fatalf("intact program has invariant findings: %v\n%s", inv.Findings, src)
			}
			if mf := s.MustFailAsserts(); len(mf) != 0 {
				t.Fatalf("intact program has must-fail asserts %v\n%s", mf, src)
			}
		}
	})
}
