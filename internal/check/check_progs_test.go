package check

import (
	"fmt"
	"testing"

	"icbe/internal/ir"
	"icbe/internal/progs"
	"icbe/internal/randprog"
)

// Compiled programs — the paper workloads and the equivalence-suite random
// seeds — must carry zero invariant findings: lowering is structurally sound,
// reachable, and definite-assignment clean by construction. Diagnostics
// (dead stores, constant branches) are legal on seeds and not asserted.
func TestWorkloadsHaveNoInvariantFindings(t *testing.T) {
	for _, w := range progs.All() {
		t.Run(w.Name, func(t *testing.T) {
			p, err := ir.Build(w.Source)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			rep := Analyze(p)
			if rep.Invariants != 0 {
				t.Errorf("invariant findings = %d:\n%v", rep.Invariants, rep.FindingsOf("structure"))
				for _, f := range rep.Findings {
					t.Logf("  %s", f)
				}
			}
		})
	}
}

var checkSeeds = []uint64{0, 1, 2, 3, 7, 11, 42, 99, 1234, 0xdeadbeef}

func TestRandomProgramsHaveNoInvariantFindings(t *testing.T) {
	cfg := randprog.Config{Procs: 3, MaxStmts: 4, MaxDepth: 2}
	for _, seed := range checkSeeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			src := randprog.Generate(seed, cfg)
			p, err := ir.Build(src)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			rep := Analyze(p)
			if rep.Invariants != 0 {
				t.Errorf("invariant findings = %d on seed %d", rep.Invariants, seed)
				for _, f := range rep.Findings {
					t.Logf("  %s", f)
				}
			}
		})
	}
}
