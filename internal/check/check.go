// Package check is the static verification layer of the ICBE pipeline: a
// whole-program forward oracle in the Wegman–Zadeck sparse conditional
// constant propagation (SCCP) style, plus a registry of lint passes over
// the ICFG.
//
// The package is the static counterpart of the dynamic shadow-execution
// oracle in internal/restructure: the demand-driven backward correlation
// analysis proves branch outcomes along incoming paths, SCCP proves
// variable constancy and node reachability forward, and the two must never
// contradict each other. A contradiction (CrossCheck), or a lint invariant
// that held before a restructuring and fails after it, indicates a compiler
// bug; the optimization driver uses both as apply gates.
//
// Passes come in two kinds. Invariant passes must report zero findings on
// every well-formed program — compiled seed programs and correctly
// restructured ones alike — so any finding is a defect. Diagnostic passes
// report interesting-but-legal facts (a temp that is never read, a branch
// whose condition SCCP proves constant); they feed metrics such as the ICBE
// recall counter and never gate an apply.
package check

import (
	"fmt"
	"sort"

	"icbe/internal/ir"
)

// Kind classifies a lint pass.
type Kind int

const (
	// Invariant passes must be finding-free on well-formed programs; the
	// driver's check gate treats a new finding as a contained failure.
	Invariant Kind = iota
	// Diagnostic passes report legal-but-notable facts and never gate.
	Diagnostic
)

func (k Kind) String() string {
	switch k {
	case Invariant:
		return "invariant"
	case Diagnostic:
		return "diagnostic"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Finding is one lint result.
type Finding struct {
	// Pass is the reporting pass's name.
	Pass string
	// Node anchors the finding in the ICFG (NoNode for whole-program
	// findings such as structural violations).
	Node ir.NodeID
	// Line is the source line of Node, when known.
	Line int
	// Msg describes the finding (one line).
	Msg string
}

func (f Finding) String() string {
	if f.Node == ir.NoNode {
		return fmt.Sprintf("%s: %s", f.Pass, f.Msg)
	}
	return fmt.Sprintf("%s: node %d (line %d): %s", f.Pass, int(f.Node), f.Line, f.Msg)
}

// Context carries the shared analysis state a pass runs against. The SCCP
// result is computed once per suite run and shared by every pass.
type Context struct {
	Prog *ir.Program
	SCCP *SCCP
}

// Pass is one registered lint pass. Run must be read-only on the program,
// deterministic, and must not panic on malformed graphs (the fuzz harness
// feeds it mutated ones).
type Pass interface {
	Name() string
	Kind() Kind
	Run(cx *Context) []Finding
}

// registry holds the built-in passes in registration order; the order is
// fixed so reports and gate comparisons are deterministic.
var registry []Pass

// Register appends a pass to the registry. The built-in passes register
// from init; tests may add their own.
func Register(p Pass) { registry = append(registry, p) }

// Passes returns the registered passes in registration order.
func Passes() []Pass { return append([]Pass(nil), registry...) }

// Report is the outcome of running a pass suite over one program.
type Report struct {
	// Findings holds every finding, grouped by pass in registry order and
	// sorted by node within a pass.
	Findings []Finding
	// PerPass maps each executed pass to its finding count (zero entries
	// included, so gate comparisons see every pass).
	PerPass map[string]int
	// Invariants and Diagnostics total the findings by pass kind.
	Invariants  int
	Diagnostics int
	// SCCP is the shared oracle result the passes ran against.
	SCCP *SCCP
}

// Count returns the finding count of the named pass.
func (r *Report) Count(pass string) int { return r.PerPass[pass] }

// FindingsOf returns the findings of the named pass.
func (r *Report) FindingsOf(pass string) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Pass == pass {
			out = append(out, f)
		}
	}
	return out
}

// Analyze runs every registered pass over the program.
func Analyze(p *ir.Program) *Report { return run(p, nil, false) }

// AnalyzeInvariants runs only the invariant passes — the gate set the
// optimization driver compares before and after each restructuring.
func AnalyzeInvariants(p *ir.Program) *Report { return run(p, nil, true) }

// AnalyzeWith runs the given passes against a caller-supplied SCCP result
// (computed with RunSCCP), avoiding a recomputation when the caller already
// holds one for this exact program.
func AnalyzeWith(p *ir.Program, s *SCCP, passes []Pass) *Report {
	return runPasses(p, s, passes)
}

func run(p *ir.Program, s *SCCP, invariantOnly bool) *Report {
	var passes []Pass
	for _, ps := range registry {
		if invariantOnly && ps.Kind() != Invariant {
			continue
		}
		passes = append(passes, ps)
	}
	return runPasses(p, s, passes)
}

func runPasses(p *ir.Program, s *SCCP, passes []Pass) *Report {
	if s == nil {
		s = RunSCCP(p)
	}
	cx := &Context{Prog: p, SCCP: s}
	rep := &Report{PerPass: make(map[string]int, len(passes)), SCCP: s}
	for _, ps := range passes {
		fs := ps.Run(cx)
		sort.SliceStable(fs, func(i, j int) bool { return fs[i].Node < fs[j].Node })
		rep.PerPass[ps.Name()] = len(fs)
		rep.Findings = append(rep.Findings, fs...)
		if ps.Kind() == Invariant {
			rep.Invariants += len(fs)
		} else {
			rep.Diagnostics += len(fs)
		}
	}
	return rep
}
