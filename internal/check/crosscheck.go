package check

import (
	"fmt"

	"icbe/internal/analysis"
	"icbe/internal/ir"
	"icbe/internal/pred"
)

// Verdict classifies one conditional's cross-check between the
// demand-driven backward analysis and the forward SCCP oracle.
type Verdict int

const (
	// VerdictUndecided: neither analysis decided the branch outcome.
	VerdictUndecided Verdict = iota
	// VerdictAgree: both analyses decided the outcome and agree.
	VerdictAgree
	// VerdictVacuous: SCCP proved the branch unreachable, so any backward
	// answer is vacuously consistent (it quantifies over incoming paths,
	// of which none execute).
	VerdictVacuous
	// VerdictICBEOnly: the backward analysis proved a full-correlation
	// answer the forward oracle cannot see — correlations the
	// branch-sensitive lattice does not represent (e.g. a != guard pokes no
	// hole in an interval). ICBE's path-sensitivity advantage, not a defect.
	VerdictICBEOnly
	// VerdictSCCPOnly: the oracle decided a branch the backward analysis
	// did not fully decide — the recall gap the driver counts.
	VerdictSCCPOnly
	// VerdictDisagree: both analyses decided the outcome and contradict
	// each other. One of them is wrong; the driver treats this as a
	// contained failure.
	VerdictDisagree
)

func (v Verdict) String() string {
	switch v {
	case VerdictUndecided:
		return "undecided"
	case VerdictAgree:
		return "agree"
	case VerdictVacuous:
		return "vacuous"
	case VerdictICBEOnly:
		return "icbe-only"
	case VerdictSCCPOnly:
		return "sccp-only"
	case VerdictDisagree:
		return "disagree"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// CheckFailure is a typed contradiction between the backward analysis'
// full-correlation answer and the forward oracle's proof at one
// conditional. It implements error.
type CheckFailure struct {
	// Branch and Line identify the conditional.
	Branch ir.NodeID
	Line   int
	// Answers is the backward analysis' root answer set; Outcome is the
	// oracle's proved branch outcome.
	Answers analysis.AnswerSet
	Outcome pred.Outcome
}

func (f *CheckFailure) Error() string {
	return fmt.Sprintf("check: branch %d (line %d): demand-driven answer %s contradicts SCCP-proved outcome %s",
		int(f.Branch), f.Line, f.Answers, f.Outcome)
}

// CrossCheck compares the backward analysis' root answer set for one
// conditional against the oracle's forward facts. The backward analysis
// claims an outcome only when its answer set is a full single answer ({T}
// or {F}: the outcome is decided along every incoming path); the oracle
// claims one when the comparison folds over the condition operands' entry
// elements (constants or disjoint/contained intervals) at a reachable
// branch. A disagreement returns a non-nil *CheckFailure.
func CrossCheck(p *ir.Program, s *SCCP, branch ir.NodeID, answers analysis.AnswerSet) (Verdict, *CheckFailure) {
	n := p.Node(branch)
	if n == nil || n.Kind != ir.NBranch {
		return VerdictUndecided, nil
	}
	if !s.Reachable(branch) {
		return VerdictVacuous, nil
	}
	claim := pred.Unknown
	switch answers {
	case analysis.AnsTrue:
		claim = pred.True
	case analysis.AnsFalse:
		claim = pred.False
	}
	outcome := s.BranchOutcome(branch)
	switch {
	case outcome == pred.Unknown && claim == pred.Unknown:
		return VerdictUndecided, nil
	case outcome == pred.Unknown:
		return VerdictICBEOnly, nil
	case claim == pred.Unknown:
		return VerdictSCCPOnly, nil
	case outcome == claim:
		return VerdictAgree, nil
	}
	return VerdictDisagree, &CheckFailure{Branch: branch, Line: n.Line, Answers: answers, Outcome: outcome}
}
