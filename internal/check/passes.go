package check

import (
	"errors"
	"fmt"

	"icbe/internal/ir"
	"icbe/internal/pred"
)

// The built-in passes, in the fixed registry order reports use.
func init() {
	Register(structurePass{})
	Register(unreachablePass{})
	Register(useBeforeDefPass{})
	Register(sccpConsistencyPass{})
	Register(deadStorePass{})
	Register(constantBranchPass{})
}

// structurePass surfaces ir.Validate's structural and linkage violations
// (arena consistency, edge symmetry, call-site normal form, call↔entry↔exit
// linkage, variable references) as findings, one per violation.
type structurePass struct{}

func (structurePass) Name() string { return "structure" }
func (structurePass) Kind() Kind   { return Invariant }
func (structurePass) Run(cx *Context) []Finding {
	err := ir.Validate(cx.Prog)
	if err == nil {
		return nil
	}
	var out []Finding
	for _, e := range flattenErrors(err) {
		out = append(out, Finding{Pass: "structure", Node: ir.NoNode, Msg: e.Error()})
	}
	return out
}

// flattenErrors unwraps errors.Join trees into leaves.
func flattenErrors(err error) []error {
	if joined, ok := err.(interface{ Unwrap() []error }); ok {
		var out []error
		for _, e := range joined.Unwrap() {
			out = append(out, flattenErrors(e)...)
		}
		return out
	}
	return []error{err}
}

// reachableFromEntries computes the per-procedure structural reachability
// set: BFS from the procedure's entries over same-procedure successor
// edges. This is exactly the rule restructure's pruning uses, so a node
// outside the set after an apply is a node pruning should have removed.
func reachableFromEntries(p *ir.Program, pr *ir.Proc) map[ir.NodeID]bool {
	seen := make(map[ir.NodeID]bool)
	var stack []ir.NodeID
	for _, e := range pr.Entries {
		if p.Node(e) != nil && !seen[e] {
			seen[e] = true
			stack = append(stack, e)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range p.Node(id).Succs {
			sn := p.Node(s)
			if sn == nil || sn.Proc != pr.Index || seen[s] {
				continue
			}
			seen[s] = true
			stack = append(stack, s)
		}
	}
	return seen
}

// unreachablePass flags live nodes not reachable from their procedure's
// entries. Lowering never emits them and restructuring prunes them, so one
// left behind means a restructuring kept dead code alive (or wired a split
// copy to nothing).
type unreachablePass struct{}

func (unreachablePass) Name() string { return "unreachable-node" }
func (unreachablePass) Kind() Kind   { return Invariant }
func (unreachablePass) Run(cx *Context) []Finding {
	var out []Finding
	for _, pr := range cx.Prog.Procs {
		if pr == nil {
			continue
		}
		seen := reachableFromEntries(cx.Prog, pr)
		for _, n := range cx.Prog.ProcNodes(pr.Index) {
			if !seen[n.ID] {
				out = append(out, Finding{Pass: "unreachable-node", Node: n.ID, Line: n.Line,
					Msg: fmt.Sprintf("node (%s) unreachable from proc %q entries", n.Kind, pr.Name)})
			}
		}
	}
	return out
}

// useBeforeDefPass flags reads of a procedure's own variables on paths
// where no assignment can have happened yet. Lowering zero-initializes
// every local and return variable at declaration, so compiled programs have
// none; a finding after restructuring means path duplication detached a
// use from its defining assignment.
type useBeforeDefPass struct{}

func (useBeforeDefPass) Name() string { return "use-before-def" }
func (useBeforeDefPass) Kind() Kind   { return Invariant }
func (useBeforeDefPass) Run(cx *Context) []Finding {
	var out []Finding
	for _, pr := range cx.Prog.Procs {
		if pr == nil {
			continue
		}
		af := analyzeAssignments(cx.Prog, pr.Index)
		seen := reachableFromEntries(cx.Prog, pr)
		for _, n := range af.nodes {
			if !seen[n.ID] {
				continue // unreachable nodes are the unreachable-node pass's finding
			}
			reportedHere := make(map[ir.VarID]bool)
			forEachRead(n, func(v ir.VarID) {
				may, owned := af.maybeAssignedIn(n.ID, v)
				if !owned || may || reportedHere[v] {
					return
				}
				reportedHere[v] = true
				name := fmt.Sprintf("v%d", int(v))
				if v >= 0 && int(v) < len(cx.Prog.Vars) && cx.Prog.Vars[v] != nil {
					name = cx.Prog.Vars[v].Name
				}
				out = append(out, Finding{Pass: "use-before-def", Node: n.ID, Line: n.Line,
					Msg: fmt.Sprintf("%q read before any assignment", name)})
			})
		}
	}
	return out
}

// sccpConsistencyPass flags executable assertions the oracle proves can
// never hold. Assertions materialize branch edge facts, so a must-fail
// assertion means control reaches an edge whose guarding branch cannot take
// it — the signature of a restructuring that kept the wrong arm.
type sccpConsistencyPass struct{}

func (sccpConsistencyPass) Name() string { return "sccp-consistency" }
func (sccpConsistencyPass) Kind() Kind   { return Invariant }
func (sccpConsistencyPass) Run(cx *Context) []Finding {
	var out []Finding
	for _, id := range cx.SCCP.MustFailAsserts() {
		n := cx.Prog.Node(id)
		if n == nil {
			continue
		}
		out = append(out, Finding{Pass: "sccp-consistency", Node: id, Line: n.Line,
			Msg: fmt.Sprintf("reachable assertion (v%d %s) can never hold: variable is %s on entry",
				int(n.AVar), n.APred, cx.SCCP.ValueAt(id, n.AVar))})
	}
	return out
}

// deadStorePass reports compiler temporaries that are assigned somewhere
// but never read anywhere. Restructuring can legitimately orphan a temp
// (eliminating a branch removes the read of its condition temp), so this is
// diagnostic, not gating.
type deadStorePass struct{}

func (deadStorePass) Name() string { return "dead-store" }
func (deadStorePass) Kind() Kind   { return Diagnostic }
func (deadStorePass) Run(cx *Context) []Finding {
	p := cx.Prog
	read := make([]bool, len(p.Vars))
	firstStore := make([]ir.NodeID, len(p.Vars))
	for i := range firstStore {
		firstStore[i] = ir.NoNode
	}
	mark := func(v ir.VarID) {
		if v >= 0 && int(v) < len(read) {
			read[v] = true
		}
	}
	p.LiveNodes(func(n *ir.Node) {
		forEachRead(n, mark)
		switch n.Kind {
		case ir.NAssign, ir.NCallExit:
			d := n.Dst
			if d >= 0 && int(d) < len(firstStore) &&
				(firstStore[d] == ir.NoNode || n.ID < firstStore[d]) {
				firstStore[d] = n.ID
			}
		case ir.NExit:
			// The exit's implicit read of the return variable.
			if n.Proc >= 0 && n.Proc < len(p.Procs) && p.Procs[n.Proc] != nil {
				mark(p.Procs[n.Proc].RetVar)
			}
		}
	})
	var out []Finding
	for i, v := range p.Vars {
		if v == nil || v.Kind != ir.VarTemp || read[i] || firstStore[i] == ir.NoNode {
			continue
		}
		n := p.Node(firstStore[i])
		line := 0
		if n != nil {
			line = n.Line
		}
		out = append(out, Finding{Pass: "dead-store", Node: firstStore[i], Line: line,
			Msg: fmt.Sprintf("temporary %q assigned but never read", v.Name)})
	}
	return out
}

// constantBranchPass reports executable branches whose outcome SCCP
// decides. On the input program these are legal (and common in generated
// code); after optimization, the analyzable ones are exactly the recall gap
// between the forward oracle and ICBE — constant branches the
// restructuring left in place.
type constantBranchPass struct{}

func (constantBranchPass) Name() string { return "constant-branch" }
func (constantBranchPass) Kind() Kind   { return Diagnostic }
func (constantBranchPass) Run(cx *Context) []Finding {
	var out []Finding
	cx.Prog.LiveNodes(func(n *ir.Node) {
		if n.Kind != ir.NBranch {
			return
		}
		o := cx.SCCP.BranchOutcome(n.ID)
		if o == pred.Unknown {
			return
		}
		kind := "non-analyzable"
		if n.Analyzable() {
			kind = "analyzable"
		}
		out = append(out, Finding{Pass: "constant-branch", Node: n.ID, Line: n.Line,
			Msg: fmt.Sprintf("%s branch condition is constant: always %s", kind, o)})
	})
	return out
}

// RecallCount counts the analyzable branches of the program whose outcome
// the oracle decides — after optimization, the branches ICBE could have
// eliminated but did not (the recall metric reported by the driver).
func RecallCount(p *ir.Program, s *SCCP) int {
	n := 0
	p.LiveNodes(func(nd *ir.Node) {
		if nd.Kind == ir.NBranch && nd.Analyzable() && s.BranchOutcome(nd.ID) != pred.Unknown {
			n++
		}
	})
	return n
}

// FirstFinding returns the first finding of the named pass, for error
// reporting.
func (r *Report) FirstFinding(pass string) (Finding, error) {
	for _, f := range r.Findings {
		if f.Pass == pass {
			return f, nil
		}
	}
	return Finding{}, errors.New("check: no finding for pass " + pass)
}
