package check

import (
	"icbe/internal/ir"
)

// forEachRead calls f for every variable the node's transfer function
// reads. Call-site exits read the callee's return variable, which is a
// cross-procedure read handled separately by the callers that need it; the
// implicit return-variable read at procedure exits is likewise opt-in (see
// assignFlow.forEachMayUndefRead).
func forEachRead(n *ir.Node, f func(ir.VarID)) {
	operand := func(o ir.Operand) {
		if !o.IsConst {
			f(o.Var)
		}
	}
	switch n.Kind {
	case ir.NAssign:
		switch n.RHS.Kind {
		case ir.RCopy, ir.RNeg, ir.RByte:
			f(n.RHS.Src)
		case ir.RBinop:
			operand(n.RHS.A)
			operand(n.RHS.B)
		case ir.RLoad:
			f(n.RHS.Src)
			operand(n.RHS.A)
		case ir.RAlloc:
			operand(n.RHS.A)
		}
	case ir.NBranch:
		f(n.CondVar)
		operand(n.CondRHS)
	case ir.NAssert:
		f(n.AVar)
	case ir.NCall:
		for _, a := range n.Args {
			f(a)
		}
	case ir.NStore:
		f(n.Ptr)
		operand(n.Idx)
		operand(n.Val)
	case ir.NPrint:
		operand(n.Val)
	}
}

// assignFlow holds the per-node assigned-variable sets of one procedure:
// a forward definite-assignment analysis (intersection over predecessors;
// used to seed SCCP cells with the interpreter's implicit zero for
// variables that may be read before any assignment) and a forward
// maybe-assignment analysis (union over predecessors; a read of a variable
// that is not even maybe-assigned is the use-before-def lint finding).
//
// Dataflow edges are the intraprocedural ones: successor edges within the
// procedure, excluding return edges (procedure exit → call-site exit) and
// call-to-entry edges of self-recursive calls — a call site's local
// continuation is its call-site exit, whose only intraprocedural dataflow
// predecessor is the call.
type assignFlow struct {
	p    *ir.Program
	proc int
	// vars are the procedure's own variables in VarID order; varPos maps a
	// VarID to its bit position.
	vars   []ir.VarID
	varPos map[ir.VarID]int
	nodes  []*ir.Node
	pos    map[ir.NodeID]int
	words  int
	defIn  []uint64 // definitely-assigned at node entry, words per node
	mayIn  []uint64 // maybe-assigned at node entry
}

// analyzeAssignments runs both assignment dataflows for one procedure.
func analyzeAssignments(p *ir.Program, proc int) *assignFlow {
	af := &assignFlow{p: p, proc: proc, varPos: make(map[ir.VarID]int), pos: make(map[ir.NodeID]int)}
	for _, v := range p.Vars {
		if v != nil && !v.IsGlobal() && v.Proc == proc {
			af.varPos[v.ID] = len(af.vars)
			af.vars = append(af.vars, v.ID)
		}
	}
	for _, n := range p.Nodes {
		if n != nil && n.Proc == proc {
			af.pos[n.ID] = len(af.nodes)
			af.nodes = append(af.nodes, n)
		}
	}
	af.words = (len(af.vars) + 63) / 64
	if af.words == 0 || len(af.nodes) == 0 {
		return af
	}
	af.defIn = make([]uint64, af.words*len(af.nodes))
	af.mayIn = make([]uint64, af.words*len(af.nodes))
	// Non-entry in-states start at the intersection identity (all ones) for
	// the definite analysis and empty for the maybe analysis; entry nodes
	// have no dataflow predecessors and keep empty in-states (their formals
	// are transfer-function definitions).
	for i, n := range af.nodes {
		if n.Kind != ir.NEntry {
			row := af.defIn[i*af.words : (i+1)*af.words]
			for w := range row {
				row[w] = ^uint64(0)
			}
		}
	}
	af.solve()
	return af
}

// defs collects the node's assigned bit positions: assignment and call-site
// exit destinations, plus the formals at procedure entries.
func (af *assignFlow) defs(n *ir.Node, emit func(pos int)) {
	add := func(v ir.VarID) {
		if pos, ok := af.varPos[v]; ok {
			emit(pos)
		}
	}
	switch n.Kind {
	case ir.NAssign, ir.NCallExit:
		if n.Dst != ir.NoVar {
			add(n.Dst)
		}
	case ir.NEntry:
		if n.Proc >= 0 && n.Proc < len(af.p.Procs) && af.p.Procs[n.Proc] != nil {
			for _, formal := range af.p.Procs[n.Proc].Formals {
				add(formal)
			}
		}
	}
}

// flowPreds calls emit for every intraprocedural dataflow predecessor.
func (af *assignFlow) flowPreds(n *ir.Node, emit func(pos int)) {
	if n.Kind == ir.NEntry {
		return // entry predecessors are call sites of other frames
	}
	for _, m := range n.Preds {
		mn := af.p.Node(m)
		if mn == nil || mn.Proc != af.proc || mn.Kind == ir.NExit {
			continue // return edges are not local dataflow
		}
		if pos, ok := af.pos[m]; ok {
			emit(pos)
		}
	}
}

// solve iterates both analyses to their fixpoints with round-robin sweeps
// (the definite sets only shrink, the maybe sets only grow, so joint
// iteration terminates).
func (af *assignFlow) solve() {
	w := af.words
	// Per-node def bitsets, computed once: out(n) = in(n) | defRow(n).
	defRows := make([]uint64, w*len(af.nodes))
	for i, n := range af.nodes {
		row := defRows[i*w : (i+1)*w]
		af.defs(n, func(pos int) {
			row[pos/64] |= 1 << (pos % 64)
		})
	}
	defOut := make([]uint64, w)
	mayOut := make([]uint64, w)
	for changed := true; changed; {
		changed = false
		for i, n := range af.nodes {
			if n.Kind == ir.NEntry {
				continue // boundary in-states stay empty
			}
			havePreds := false
			for k := 0; k < w; k++ {
				defOut[k] = ^uint64(0)
				mayOut[k] = 0
			}
			af.flowPreds(n, func(pp int) {
				havePreds = true
				dr := af.defIn[pp*w : (pp+1)*w]
				mr := af.mayIn[pp*w : (pp+1)*w]
				gen := defRows[pp*w : (pp+1)*w]
				for k := 0; k < w; k++ {
					defOut[k] &= dr[k] | gen[k]
					mayOut[k] |= mr[k] | gen[k]
				}
			})
			if !havePreds {
				continue // orphan: keep the vacuous all-ones / empty states
			}
			drow := af.defIn[i*w : (i+1)*w]
			mrow := af.mayIn[i*w : (i+1)*w]
			for k := 0; k < w; k++ {
				if nv := drow[k] & defOut[k]; nv != drow[k] {
					drow[k] = nv
					changed = true
				}
				if nv := mrow[k] | mayOut[k]; nv != mrow[k] {
					mrow[k] = nv
					changed = true
				}
			}
		}
	}
}

func (af *assignFlow) bit(set []uint64, nodePos int, v ir.VarID) (bool, bool) {
	pos, ok := af.varPos[v]
	if !ok || set == nil {
		return false, false
	}
	return set[nodePos*af.words+pos/64]&(1<<(pos%64)) != 0, true
}

// definitelyAssignedIn reports whether the procedure's variable is assigned
// on every intraprocedural path reaching the node. The second result is
// false when the variable does not belong to this procedure.
func (af *assignFlow) definitelyAssignedIn(n ir.NodeID, v ir.VarID) (bool, bool) {
	pos, ok := af.pos[n]
	if !ok {
		return false, false
	}
	return af.bit(af.defIn, pos, v)
}

// maybeAssignedIn reports whether any intraprocedural path reaching the
// node assigns the variable.
func (af *assignFlow) maybeAssignedIn(n ir.NodeID, v ir.VarID) (bool, bool) {
	pos, ok := af.pos[n]
	if !ok {
		return false, false
	}
	return af.bit(af.mayIn, pos, v)
}

// forEachMayUndefRead calls f for every procedure variable with a read that
// is not definitely preceded by an assignment — the variables whose SCCP
// cell must include the interpreter's implicit zero. Procedure exits count
// as implicit reads of the return variable.
func (af *assignFlow) forEachMayUndefRead(f func(ir.VarID)) {
	reported := make(map[ir.VarID]bool)
	for _, n := range af.nodes {
		check := func(v ir.VarID) {
			if reported[v] {
				return
			}
			def, owned := af.definitelyAssignedIn(n.ID, v)
			if owned && !def {
				reported[v] = true
				f(v)
			}
		}
		forEachRead(n, check)
		if n.Kind == ir.NExit && n.Proc >= 0 && n.Proc < len(af.p.Procs) && af.p.Procs[n.Proc] != nil {
			check(af.p.Procs[n.Proc].RetVar)
		}
	}
}
