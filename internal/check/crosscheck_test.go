package check

import (
	"strings"
	"testing"

	"icbe/internal/analysis"
	"icbe/internal/ir"
	"icbe/internal/pred"
)

// answersOf runs the demand-driven backward analysis on a branch.
func answersOf(t *testing.T, p *ir.Program, b *ir.Node) analysis.AnswerSet {
	t.Helper()
	res := analysis.New(p, analysis.DefaultOptions()).AnalyzeBranch(b.ID)
	if res == nil {
		t.Fatalf("AnalyzeBranch returned nil for branch %d", b.ID)
	}
	return res.RootAnswers()
}

func TestCrossCheckAgree(t *testing.T) {
	p := build(t, `
		func main() {
			var x = 5;
			if (x == 5) { print(1); } else { print(2); }
		}
	`)
	s := RunSCCP(p)
	b := findBranch(t, p, "x", pred.Eq, 5)
	v, cf := CrossCheck(p, s, b.ID, answersOf(t, p, b))
	if v != VerdictAgree || cf != nil {
		t.Errorf("verdict = %v (%v), want agree", v, cf)
	}
}

func TestCrossCheckUndecided(t *testing.T) {
	p := build(t, `
		func main() {
			var x = input();
			if (x == 5) { print(1); } else { print(2); }
		}
	`)
	s := RunSCCP(p)
	b := findBranch(t, p, "x", pred.Eq, 5)
	v, cf := CrossCheck(p, s, b.ID, answersOf(t, p, b))
	if v != VerdictUndecided || cf != nil {
		t.Errorf("verdict = %v (%v), want undecided", v, cf)
	}
}

func TestCrossCheckVacuous(t *testing.T) {
	p := build(t, `
		func main() {
			var x = 5;
			var y = input();
			if (x == 4) {
				if (y == 1) { print(1); } else { print(2); }
			}
		}
	`)
	s := RunSCCP(p)
	b := findBranch(t, p, "y", pred.Eq, 1)
	if s.Reachable(b.ID) {
		t.Fatalf("inner branch should be SCCP-unreachable (guarded by x == 4 with x = 5)")
	}
	// Whatever the backward analysis says about the dead branch, the
	// cross-check must not escalate.
	for _, ans := range []analysis.AnswerSet{analysis.AnsTrue, analysis.AnsFalse, analysis.AnsTrue | analysis.AnsUndef} {
		v, cf := CrossCheck(p, s, b.ID, ans)
		if v != VerdictVacuous || cf != nil {
			t.Errorf("verdict for %v = %v (%v), want vacuous", ans, v, cf)
		}
	}
}

func TestCrossCheckICBEOnly(t *testing.T) {
	// x = input(); if (x != 5) { if (x == 5) ... } — the inner branch is
	// fully correlated (always false on its incoming edge), but the edge
	// assertion x != 5 pokes no representable hole in x's ⊥ interval, so the
	// oracle cannot decide it.
	p := build(t, `
		func main() {
			var x = input();
			if (x != 5) {
				if (x == 5) { print(1); } else { print(2); }
			}
		}
	`)
	s := RunSCCP(p)
	branches := decidableBranches(p, "x", pred.Eq, 5)
	if len(branches) != 1 {
		t.Fatalf("want 1 branch on x == 5, got %d", len(branches))
	}
	inner := branches[0]
	ans := answersOf(t, p, inner)
	if ans != analysis.AnsFalse {
		t.Fatalf("inner branch answers = %v, want {F} (correlated)", ans)
	}
	v, cf := CrossCheck(p, s, inner.ID, ans)
	if v != VerdictICBEOnly || cf != nil {
		t.Errorf("verdict = %v (%v), want icbe-only", v, cf)
	}
}

// decidableBranches returns the analyzable branches matching the predicate in
// node-id order.
func decidableBranches(p *ir.Program, varSuffix string, op pred.Op, c int64) []*ir.Node {
	var out []*ir.Node
	p.LiveNodes(func(n *ir.Node) {
		if n.Kind == ir.NBranch && n.Analyzable() &&
			strings.HasSuffix(p.VarName(n.CondVar), varSuffix) && n.CondOp == op && n.CondRHS.Const == c {
			out = append(out, n)
		}
	})
	return out
}

func TestCrossCheckSCCPOnly(t *testing.T) {
	p := build(t, `
		func main() {
			var x = 5;
			if (x == 5) { print(1); } else { print(2); }
		}
	`)
	s := RunSCCP(p)
	b := findBranch(t, p, "x", pred.Eq, 5)
	// Simulate a backward analysis that gave up (mixed answer set): the
	// oracle still decides, which is the recall signal, not a failure.
	v, cf := CrossCheck(p, s, b.ID, analysis.AnsTrue|analysis.AnsUndef)
	if v != VerdictSCCPOnly || cf != nil {
		t.Errorf("verdict = %v (%v), want sccp-only", v, cf)
	}
}

func TestCrossCheckDisagree(t *testing.T) {
	p := build(t, `
		func main() {
			var x = 5;
			if (x == 5) { print(1); } else { print(2); }
		}
	`)
	s := RunSCCP(p)
	b := findBranch(t, p, "x", pred.Eq, 5)
	// A (hypothetically buggy) backward analysis answering {F} contradicts
	// the oracle's proved "always true".
	v, cf := CrossCheck(p, s, b.ID, analysis.AnsFalse)
	if v != VerdictDisagree {
		t.Fatalf("verdict = %v, want disagree", v)
	}
	if cf == nil {
		t.Fatalf("disagreement without CheckFailure")
	}
	if cf.Branch != b.ID || cf.Outcome != pred.True || cf.Answers != analysis.AnsFalse {
		t.Errorf("CheckFailure = %+v", cf)
	}
	msg := cf.Error()
	for _, want := range []string{"check:", "contradicts", "SCCP"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() = %q, missing %q", msg, want)
		}
	}
}

func TestCrossCheckNonBranch(t *testing.T) {
	p := build(t, `func main() { print(1); }`)
	s := RunSCCP(p)
	pr := p.Procs[p.MainProc]
	v, cf := CrossCheck(p, s, pr.Entries[0], analysis.AnsTrue)
	if v != VerdictUndecided || cf != nil {
		t.Errorf("verdict for non-branch = %v (%v), want undecided", v, cf)
	}
	v, cf = CrossCheck(p, s, ir.NoNode, analysis.AnsTrue)
	if v != VerdictUndecided || cf != nil {
		t.Errorf("verdict for NoNode = %v (%v), want undecided", v, cf)
	}
}

func TestVerdictStrings(t *testing.T) {
	cases := map[Verdict]string{
		VerdictUndecided: "undecided",
		VerdictAgree:     "agree",
		VerdictVacuous:   "vacuous",
		VerdictICBEOnly:  "icbe-only",
		VerdictSCCPOnly:  "sccp-only",
		VerdictDisagree:  "disagree",
	}
	for v, want := range cases {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(v), v.String(), want)
		}
	}
}
