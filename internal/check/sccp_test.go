package check

import (
	"strings"
	"testing"

	"icbe/internal/ir"
	"icbe/internal/pred"
)

func build(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := ir.Build(src)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := ir.Validate(p); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return p
}

// findBranch locates the unique analyzable branch whose condition variable
// name has the given suffix and whose predicate matches.
func findBranch(t *testing.T, p *ir.Program, varSuffix string, op pred.Op, c int64) *ir.Node {
	t.Helper()
	var found *ir.Node
	p.LiveNodes(func(n *ir.Node) {
		if n.Kind != ir.NBranch || !n.Analyzable() {
			return
		}
		if strings.HasSuffix(p.VarName(n.CondVar), varSuffix) && n.CondOp == op && n.CondRHS.Const == c {
			if found != nil {
				t.Fatalf("multiple branches match %s %s %d", varSuffix, op, c)
			}
			found = n
		}
	})
	if found == nil {
		t.Fatalf("no branch matches %s %s %d\n%s", varSuffix, op, c, p.Dump())
	}
	return found
}

func findVar(t *testing.T, p *ir.Program, suffix string) ir.VarID {
	t.Helper()
	for _, v := range p.Vars {
		if v != nil && strings.HasSuffix(v.Name, suffix) {
			return v.ID
		}
	}
	t.Fatalf("no variable with suffix %q", suffix)
	return ir.NoVar
}

func TestSCCPDecidesConstantBranch(t *testing.T) {
	p := build(t, `
		func main() {
			var x = 5;
			if (x == 5) { print(1); } else { print(2); }
		}
	`)
	s := RunSCCP(p)
	b := findBranch(t, p, "x", pred.Eq, 5)
	if got := s.BranchOutcome(b.ID); got != pred.True {
		t.Errorf("BranchOutcome = %v, want true", got)
	}
	if c, ok := s.ConstOf(b.CondVar); !ok || c != 5 {
		t.Errorf("ConstOf(x) = %d,%v, want 5,true", c, ok)
	}
	// The false arm must be unreachable: exactly one print executes.
	reachPrints := 0
	p.LiveNodes(func(n *ir.Node) {
		if n.Kind == ir.NPrint && s.Reachable(n.ID) {
			reachPrints++
		}
	})
	if reachPrints != 1 {
		t.Errorf("reachable prints = %d, want 1 (false arm pruned)", reachPrints)
	}
	if got := s.DecidedBranches(); len(got) != 1 || got[0] != b.ID {
		t.Errorf("DecidedBranches = %v, want [%d]", got, b.ID)
	}
}

func TestSCCPInputIsBottom(t *testing.T) {
	p := build(t, `
		func main() {
			var x = input();
			if (x == 0) { print(1); } else { print(2); }
		}
	`)
	s := RunSCCP(p)
	b := findBranch(t, p, "x", pred.Eq, 0)
	if got := s.BranchOutcome(b.ID); got != pred.Unknown {
		t.Errorf("BranchOutcome = %v, want unknown", got)
	}
	if !s.VarValue(b.CondVar).IsBottom() {
		t.Errorf("input-fed variable not ⊥: %v", s.VarValue(b.CondVar))
	}
	reachPrints := 0
	p.LiveNodes(func(n *ir.Node) {
		if n.Kind == ir.NPrint && s.Reachable(n.ID) {
			reachPrints++
		}
	})
	if reachPrints != 2 {
		t.Errorf("reachable prints = %d, want 2 (both arms live)", reachPrints)
	}
}

func TestSCCPFormalMeetSingleCallSite(t *testing.T) {
	p := build(t, `
		func f(a) {
			if (a == 3) { print(1); } else { print(2); }
		}
		func main() { f(3); }
	`)
	s := RunSCCP(p)
	b := findBranch(t, p, "a", pred.Eq, 3)
	if got := s.BranchOutcome(b.ID); got != pred.True {
		t.Errorf("BranchOutcome = %v, want true (single call site passes 3)", got)
	}
}

func TestSCCPFormalMeetConflictingCallSites(t *testing.T) {
	p := build(t, `
		func f(a) {
			if (a == 3) { print(1); } else { print(2); }
		}
		func main() { f(3); f(4); }
	`)
	s := RunSCCP(p)
	b := findBranch(t, p, "a", pred.Eq, 3)
	if got := s.BranchOutcome(b.ID); got != pred.Unknown {
		t.Errorf("BranchOutcome = %v, want unknown (two call sites conflict)", got)
	}
	if !s.VarValue(b.CondVar).IsBottom() {
		t.Errorf("formal with conflicting arguments not ⊥")
	}
}

func TestSCCPReturnValue(t *testing.T) {
	p := build(t, `
		func f() { return 7; }
		func main() {
			var x = f();
			if (x == 7) { print(1); } else { print(2); }
		}
	`)
	s := RunSCCP(p)
	b := findBranch(t, p, "x", pred.Eq, 7)
	if got := s.BranchOutcome(b.ID); got != pred.True {
		t.Errorf("BranchOutcome = %v, want true (return value propagates)", got)
	}
}

func TestSCCPGlobalInit(t *testing.T) {
	p := build(t, `
		var g = 9;
		func main() {
			if (g == 9) { print(1); } else { print(2); }
		}
	`)
	s := RunSCCP(p)
	b := findBranch(t, p, "g", pred.Eq, 9)
	if got := s.BranchOutcome(b.ID); got != pred.True {
		t.Errorf("BranchOutcome = %v, want true (global init seeds the cell)", got)
	}
}

func TestSCCPGlobalReassigned(t *testing.T) {
	p := build(t, `
		var g = 9;
		func main() {
			g = input();
			if (g == 9) { print(1); } else { print(2); }
		}
	`)
	s := RunSCCP(p)
	b := findBranch(t, p, "g", pred.Eq, 9)
	if got := s.BranchOutcome(b.ID); got != pred.Unknown {
		t.Errorf("BranchOutcome = %v, want unknown (reassigned global)", got)
	}
}

func TestSCCPDivByConstantZero(t *testing.T) {
	p := build(t, `
		func main() {
			var x = 10;
			var y = 0;
			var z = x / y;
			if (z == 0) { print(1); } else { print(2); }
		}
	`)
	s := RunSCCP(p)
	b := findBranch(t, p, "z", pred.Eq, 0)
	// The division faults at runtime; the oracle must not model a value for
	// it (and must not crash folding it).
	if got := s.BranchOutcome(b.ID); got != pred.Unknown {
		t.Errorf("BranchOutcome = %v, want unknown (div by zero is ⊥)", got)
	}
	if !s.VarValue(b.CondVar).IsBottom() {
		t.Errorf("div-by-zero result not ⊥: %v", s.VarValue(b.CondVar))
	}
}

func TestSCCPLoopTerminates(t *testing.T) {
	p := build(t, `
		func main() {
			var i = 0;
			var s = 0;
			while (i < 3) { i = i + 1; s = s + 2; }
			if (i >= 3) { print(s); }
		}
	`)
	s := RunSCCP(p)
	i := findVar(t, p, ".i")
	if !s.VarValue(i).IsBottom() {
		t.Errorf("loop counter cell = %v, want ⊥", s.VarValue(i))
	}
}

func TestSCCPRecursionTerminates(t *testing.T) {
	p := build(t, `
		func down(n) {
			if (n <= 0) { return 0; }
			return down(n - 1);
		}
		func main() { print(down(4)); }
	`)
	s := RunSCCP(p)
	// Just a termination and sanity check: the recursive call executes.
	b := findBranch(t, p, "n", pred.Le, 0)
	if !s.Reachable(b.ID) {
		t.Errorf("recursive procedure body unreachable")
	}
}

func TestSCCPDeadArmCallUnreachable(t *testing.T) {
	p := build(t, `
		func f() { print(42); return 0; }
		func main() {
			var x = 5;
			if (x == 5) { print(1); } else { f(); }
		}
	`)
	s := RunSCCP(p)
	pr := p.ProcByName("f")
	if pr == nil || len(pr.Entries) == 0 {
		t.Fatalf("no proc f")
	}
	if s.Reachable(pr.Entries[0]) {
		t.Errorf("callee of a pruned arm is reachable")
	}
}

func TestSCCPMustFailAssert(t *testing.T) {
	p := build(t, `
		func main() {
			var x = input();
			var y = 7;
			if (x == 5) { print(1); }
		}
	`)
	// Retarget the true-arm assertion (x == 5) at y, whose cell is the
	// constant 7: the assertion stays reachable (the branch is unknown) but
	// can never hold — the corruption signature sccp-consistency detects.
	y := findVar(t, p, ".y")
	var assert *ir.Node
	p.LiveNodes(func(n *ir.Node) {
		if n.Kind == ir.NAssert && n.APred.Op == pred.Eq && n.APred.C == 5 {
			assert = n
		}
	})
	if assert == nil {
		t.Fatalf("no (== 5) assertion\n%s", p.Dump())
	}
	assert.AVar = y
	s := RunSCCP(p)
	fails := s.MustFailAsserts()
	if len(fails) != 1 || fails[0] != assert.ID {
		t.Fatalf("MustFailAsserts = %v, want [%d]", fails, assert.ID)
	}
	// Propagation stops at the failing assertion: its successor must not be
	// reachable through it alone.
	rep := Analyze(p)
	if rep.Count("sccp-consistency") != 1 {
		t.Errorf("sccp-consistency findings = %d, want 1", rep.Count("sccp-consistency"))
	}
}

func TestSCCPValueString(t *testing.T) {
	if top().String() != "⊤" || bottom().String() != "⊥" || constant(3).String() != "3" {
		t.Errorf("Value.String: %s %s %s", top(), bottom(), constant(3))
	}
	if meet(top(), constant(2)) != constant(2) {
		t.Errorf("meet(⊤, 2) != 2")
	}
	if meet(constant(2), constant(3)) != bottom() {
		t.Errorf("meet(2, 3) != ⊥")
	}
	if meet(constant(2), constant(2)) != constant(2) {
		t.Errorf("meet(2, 2) != 2")
	}
}
