package check

import (
	"testing"

	"icbe/internal/ir"
	"icbe/internal/pred"
)

// The tests in this file pin the branch-sensitive features of the CCP
// engine one by one: branch-edge assertions, copy-propagation groups,
// interval cells from byte()/bounds, and constant-shift folding. Each uses
// input() so the tested variable is ⊥ to any flow-insensitive lattice — the
// decisions below exist only because of the feature under test.

// TestCCPEdgeAssertionTrueArm: on the true out-edge of (x < 10) the engine
// refines x to [MinInt64, 9], which decides an inner test of the same
// predicate.
func TestCCPEdgeAssertionTrueArm(t *testing.T) {
	p := build(t, `
		func main() {
			var x = input();
			if (x < 10) {
				if (x < 10) { print(1); } else { print(2); }
			}
		}
	`)
	s := RunSCCP(p)
	branches := decidableBranches(p, "x", pred.Lt, 10)
	if len(branches) != 2 {
		t.Fatalf("want 2 branches on x < 10, got %d", len(branches))
	}
	if o := s.BranchOutcome(branches[0].ID); o != pred.Unknown {
		t.Errorf("outer branch outcome = %v, want unknown (x is input)", o)
	}
	if o := s.BranchOutcome(branches[1].ID); o != pred.True {
		t.Errorf("inner branch outcome = %v, want true (edge assertion)", o)
	}
}

// TestCCPEdgeAssertionFalseArm: the false out-edge carries the negated
// predicate — x in [10, MaxInt64] — which decides the inner branch false.
func TestCCPEdgeAssertionFalseArm(t *testing.T) {
	p := build(t, `
		func main() {
			var x = input();
			if (x < 10) {
				print(0);
			} else {
				if (x < 10) { print(1); } else { print(2); }
			}
		}
	`)
	s := RunSCCP(p)
	branches := decidableBranches(p, "x", pred.Lt, 10)
	if len(branches) != 2 {
		t.Fatalf("want 2 branches on x < 10, got %d", len(branches))
	}
	if o := s.BranchOutcome(branches[1].ID); o != pred.False {
		t.Errorf("inner branch outcome = %v, want false (negated edge assertion)", o)
	}
}

// TestCCPCopyChainRefinement: y = x makes {x, y} one copy group, so a branch
// on y refines x too.
func TestCCPCopyChainRefinement(t *testing.T) {
	p := build(t, `
		func main() {
			var x = input();
			var y = x;
			if (y == 3) {
				if (x == 3) { print(1); } else { print(2); }
			}
		}
	`)
	s := RunSCCP(p)
	b := findBranch(t, p, "x", pred.Eq, 3)
	if o := s.BranchOutcome(b.ID); o != pred.True {
		t.Errorf("branch on x outcome = %v, want true (refined through the copy of y)", o)
	}
	// The group fact is per-point: at the inner branch x is the constant 3.
	if v := s.ValueAt(b.ID, b.CondVar); !v.isConst(3) {
		t.Errorf("ValueAt(inner, x) = %s, want 3", v)
	}
}

// TestCCPCopyChainBreaksOnReassign: overwriting the copy source severs the
// group, so the stale equality must not refine the copy.
func TestCCPCopyChainBreaksOnReassign(t *testing.T) {
	p := build(t, `
		func main() {
			var x = input();
			var y = x;
			x = input();
			if (y == 3) {
				if (x == 3) { print(1); } else { print(2); }
			}
		}
	`)
	s := RunSCCP(p)
	b := findBranch(t, p, "x", pred.Eq, 3)
	if o := s.BranchOutcome(b.ID); o != pred.Unknown {
		t.Errorf("branch on x outcome = %v, want unknown (x was reassigned after the copy)", o)
	}
}

// TestCCPByteRange: byte() lands in [0,255] whatever its input, deciding
// sentinel comparisons — the stdio byte-exit idiom (c != -1).
func TestCCPByteRange(t *testing.T) {
	p := build(t, `
		func main() {
			var c = byte(input());
			if (c == -1) { print(1); } else { print(2); }
			if (c < 256) { print(3); } else { print(4); }
		}
	`)
	s := RunSCCP(p)
	if v := s.VarValue(findVar(t, p, "c")); v.IsBottom() || v.IsTop() {
		t.Errorf("VarValue(c) = %s, want the byte interval", v)
	}
	if o := s.BranchOutcome(findBranch(t, p, "c", pred.Eq, -1).ID); o != pred.False {
		t.Errorf("(c == -1) outcome = %v, want false (c in [0,255])", o)
	}
	if o := s.BranchOutcome(findBranch(t, p, "c", pred.Lt, 256).ID); o != pred.True {
		t.Errorf("(c < 256) outcome = %v, want true (c in [0,255])", o)
	}
}

// TestCCPRangeConstShift: interval arithmetic folds constant shifts, so a
// derived bound decides comparisons on the derived variable.
func TestCCPRangeConstShift(t *testing.T) {
	p := build(t, `
		func main() {
			var c = byte(input());
			var d = c + 10;
			if (d > 5) { print(1); } else { print(2); }
			var e = c - 300;
			if (e < 0) { print(3); } else { print(4); }
		}
	`)
	s := RunSCCP(p)
	if o := s.BranchOutcome(findBranch(t, p, "d", pred.Gt, 5).ID); o != pred.True {
		t.Errorf("(d > 5) outcome = %v, want true (d in [10,265])", o)
	}
	if o := s.BranchOutcome(findBranch(t, p, "e", pred.Lt, 0).ID); o != pred.True {
		t.Errorf("(e < 0) outcome = %v, want true (e in [-300,-45])", o)
	}
}

// TestCCPRangeMeetContainment: the meet of an interval with a contained
// constant keeps the interval; incomparable elements fall to ⊥.
func TestCCPRangeMeetContainment(t *testing.T) {
	r := rangeValue(0, 255)
	if got := meet(r, constant(7)); got != r {
		t.Errorf("meet([0,255], 7) = %s, want [0,255]", got)
	}
	if got := meet(r, rangeValue(10, 20)); got != r {
		t.Errorf("meet([0,255], [10,20]) = %s, want [0,255]", got)
	}
	if got := meet(r, constant(-1)); !got.IsBottom() {
		t.Errorf("meet([0,255], -1) = %s, want bottom", got)
	}
	if got := meet(r, rangeValue(-5, 5)); !got.IsBottom() {
		t.Errorf("meet([0,255], [-5,5]) = %s, want bottom (no hulling)", got)
	}
	if lo, hi, ok := r.Range(); !ok || lo != 0 || hi != 255 {
		t.Errorf("Range() = %d,%d,%v, want 0,255,true", lo, hi, ok)
	}
}

// TestCCPUnreachableBranchNoDecision pins the vacuity rule: a branch in
// unreachable code must report no decision even though its condition is a
// constant comparison the engine could fold — grading it would manufacture
// spurious disagreements.
func TestCCPUnreachableBranchNoDecision(t *testing.T) {
	p := build(t, `
		func main() {
			var x = 5;
			if (x == 4) {
				if (x == 4) { print(1); } else { print(2); }
			}
		}
	`)
	s := RunSCCP(p)
	branches := decidableBranches(p, "x", pred.Eq, 4)
	if len(branches) != 2 {
		t.Fatalf("want 2 branches on x == 4, got %d", len(branches))
	}
	inner := branches[1]
	if s.Reachable(inner.ID) {
		t.Fatalf("inner branch should be unreachable (guarded by x == 4 with x = 5)")
	}
	if o := s.BranchOutcome(inner.ID); o != pred.Unknown {
		t.Errorf("unreachable branch outcome = %v, want unknown", o)
	}
	for _, id := range s.DecidedBranches() {
		if id == inner.ID {
			t.Errorf("DecidedBranches includes the unreachable branch %d", id)
		}
	}
}

// TestCCPValueAtUnreachable: per-point facts for unreachable nodes are ⊥.
func TestCCPValueAtUnreachable(t *testing.T) {
	p := build(t, `
		func main() {
			var x = 5;
			if (x == 4) { print(1); }
		}
	`)
	s := RunSCCP(p)
	var dead *ir.Node
	p.LiveNodes(func(n *ir.Node) {
		if n.Kind == ir.NPrint && !s.Reachable(n.ID) {
			dead = n
		}
	})
	if dead == nil {
		t.Fatalf("no unreachable print found")
	}
	if v := s.ValueAt(dead.ID, findVar(t, p, "x")); !v.IsBottom() {
		t.Errorf("ValueAt(unreachable, x) = %s, want bottom", v)
	}
}

func (v Value) isConst(c int64) bool {
	got, ok := v.Const()
	return ok && got == c
}
