// Package reportjson is the single machine-readable encoding of an
// optimization report. Both `cmd/icbe -json` and the serving layer
// (internal/server's /optimize responses and /stats aggregates) marshal
// through these types, so the CLI and the service can never drift: a field
// added here appears in both, and a consumer can parse either with one
// schema.
//
// Durations are encoded as integer nanoseconds (suffix `_ns`) so aggregation
// across requests is exact integer addition.
package reportjson

import (
	"encoding/json"
	"io"

	"icbe"
)

// Report mirrors icbe.Report.
type Report struct {
	Optimized        int            `json:"optimized"`
	PairsTotal       int            `json:"pairs_total"`
	OperationsBefore int            `json:"operations_before"`
	OperationsAfter  int            `json:"operations_after"`
	Truncated        bool           `json:"truncated"`
	Failures         map[string]int `json:"failures,omitempty"`
	Stats            DriverStats    `json:"stats"`
	Conditionals     []CondReport   `json:"conditionals,omitempty"`
}

// DriverStats mirrors icbe.DriverStats. All fields except Workers and the
// wall clocks are deterministic per run; all fields except Workers are
// meaningful to sum across runs with Add.
type DriverStats struct {
	Workers           int            `json:"workers"`
	Rounds            int            `json:"rounds"`
	Analyses          int            `json:"analyses"`
	Reanalyses        int            `json:"reanalyses"`
	Clones            int            `json:"clones"`
	ClonesAvoided     int            `json:"clones_avoided"`
	Failures          map[string]int `json:"failures,omitempty"`
	SNEMemoEntries    int            `json:"sne_memo_entries"`
	SNEMemoHits       int64          `json:"sne_memo_hits"`
	CacheBytes        int64          `json:"cache_bytes"`
	SeedsInjected     int            `json:"seeds_injected"`
	QueriesReused     int            `json:"queries_reused"`
	SubtreesInvalid   int64          `json:"subtrees_invalidated"`
	PairsTotal        int            `json:"pairs_total"`
	ReuseRate         float64        `json:"reuse_rate"`
	VerifyRuns        int            `json:"verify_runs"`
	VerifyWallNS      int64          `json:"verify_wall_ns"`
	CheckRuns         int            `json:"check_runs"`
	CheckWallNS       int64          `json:"check_wall_ns"`
	SCCPAgreements    int            `json:"sccp_agreements"`
	SCCPDisagreements int            `json:"sccp_disagreements"`
	SCCPVacuous       int            `json:"sccp_vacuous"`
	SCCPDecided       int            `json:"sccp_decided"`
	SCCPRecall        float64        `json:"sccp_recall"`
	SCCPResidual      int            `json:"sccp_residual"`
	CheckFindingsPre  int            `json:"check_findings_pre"`
	CheckFindingsPost int            `json:"check_findings_post"`
	FoldAttempted     int            `json:"fold_attempted"`
	FoldApplied       int            `json:"fold_applied"`
	FoldDuplicated    int            `json:"fold_duplicated"`
	ResidualBefore    int            `json:"sccp_residual_before"`
	ResidualAfter     int            `json:"sccp_residual_after"`
	FoldReduction     float64        `json:"fold_reduction"`
	AnalysisWallNS    int64          `json:"analysis_wall_ns"`
	ApplyWallNS       int64          `json:"apply_wall_ns"`
	FoldWallNS        int64          `json:"fold_wall_ns"`
}

// CondReport mirrors icbe.CondReport.
type CondReport struct {
	Line           int    `json:"line"`
	Analyzable     bool   `json:"analyzable"`
	Correlated     bool   `json:"correlated"`
	Full           bool   `json:"full"`
	Answers        string `json:"answers,omitempty"`
	DupEstimate    int    `json:"dup_estimate"`
	PairsProcessed int    `json:"pairs_processed"`
	Applied        bool   `json:"applied"`
	Skipped        bool   `json:"skipped"`
	FailureKind    string `json:"failure_kind,omitempty"`
	Error          string `json:"error,omitempty"`
}

// FromReport converts an optimization report to its wire form.
func FromReport(r *icbe.Report) *Report {
	if r == nil {
		return nil
	}
	out := &Report{
		Optimized:        r.Optimized,
		PairsTotal:       r.PairsTotal,
		OperationsBefore: r.OperationsBefore,
		OperationsAfter:  r.OperationsAfter,
		Truncated:        r.Truncated,
		Failures:         copyCounts(r.Stats.Failures),
		Stats:            FromDriverStats(r.Stats),
	}
	for _, c := range r.Conditionals {
		wc := CondReport{
			Line:           c.Line,
			Analyzable:     c.Analyzable,
			Correlated:     c.Correlated,
			Full:           c.Full,
			Answers:        c.Answers,
			DupEstimate:    c.DupEstimate,
			PairsProcessed: c.PairsProcessed,
			Applied:        c.Applied,
			Skipped:        c.Skipped,
			FailureKind:    c.FailureKind,
		}
		if c.Err != nil {
			wc.Error = c.Err.Error()
		}
		out.Conditionals = append(out.Conditionals, wc)
	}
	return out
}

// FromDriverStats converts driver counters to their wire form.
func FromDriverStats(s icbe.DriverStats) DriverStats {
	return DriverStats{
		Workers:           s.Workers,
		Rounds:            s.Rounds,
		Analyses:          s.Analyses,
		Reanalyses:        s.Reanalyses,
		Clones:            s.Clones,
		ClonesAvoided:     s.ClonesAvoided,
		Failures:          copyCounts(s.Failures),
		SNEMemoEntries:    s.SNEMemoEntries,
		SNEMemoHits:       s.SNEMemoHits,
		CacheBytes:        s.CacheBytes,
		SeedsInjected:     s.SeedsInjected,
		QueriesReused:     s.QueriesReused,
		SubtreesInvalid:   s.SubtreesInvalidated,
		PairsTotal:        s.PairsTotal,
		ReuseRate:         reuseRate(s.QueriesReused, s.PairsTotal),
		VerifyRuns:        s.VerifyRuns,
		VerifyWallNS:      int64(s.VerifyWall),
		CheckRuns:         s.CheckRuns,
		CheckWallNS:       int64(s.CheckWall),
		SCCPAgreements:    s.SCCPAgreements,
		SCCPDisagreements: s.SCCPDisagreements,
		SCCPVacuous:       s.SCCPVacuous,
		SCCPDecided:       s.SCCPDecided,
		SCCPRecall:        s.SCCPRecall,
		SCCPResidual:      s.SCCPResidual,
		CheckFindingsPre:  s.CheckFindingsPre,
		CheckFindingsPost: s.CheckFindingsPost,
		FoldAttempted:     s.FoldAttempted,
		FoldApplied:       s.FoldApplied,
		FoldDuplicated:    s.FoldDuplicated,
		ResidualBefore:    s.SCCPResidualBefore,
		ResidualAfter:     s.SCCPResidualAfter,
		FoldReduction:     s.FoldReduction,
		AnalysisWallNS:    int64(s.AnalysisWall),
		ApplyWallNS:       int64(s.ApplyWall),
		FoldWallNS:        int64(s.FoldWall),
	}
}

// Add accumulates another run's counters into d (Workers is kept as the
// maximum, SCCPRecall is recomputed from the summed grading counts, every
// other field sums). The serving layer's /stats aggregates per-request
// DriverStats with it.
func (d *DriverStats) Add(o DriverStats) {
	if o.Workers > d.Workers {
		d.Workers = o.Workers
	}
	d.Rounds += o.Rounds
	d.Analyses += o.Analyses
	d.Reanalyses += o.Reanalyses
	d.Clones += o.Clones
	d.ClonesAvoided += o.ClonesAvoided
	if len(o.Failures) > 0 {
		if d.Failures == nil {
			d.Failures = make(map[string]int, len(o.Failures))
		}
		for k, n := range o.Failures {
			d.Failures[k] += n
		}
	}
	d.SNEMemoEntries += o.SNEMemoEntries
	d.SNEMemoHits += o.SNEMemoHits
	d.CacheBytes += o.CacheBytes
	d.SeedsInjected += o.SeedsInjected
	d.QueriesReused += o.QueriesReused
	d.SubtreesInvalid += o.SubtreesInvalid
	d.PairsTotal += o.PairsTotal
	// Like SCCPRecall, the reuse rate is recomputed from the summed counts
	// rather than summed itself.
	d.ReuseRate = reuseRate(d.QueriesReused, d.PairsTotal)
	d.VerifyRuns += o.VerifyRuns
	d.VerifyWallNS += o.VerifyWallNS
	d.CheckRuns += o.CheckRuns
	d.CheckWallNS += o.CheckWallNS
	d.SCCPAgreements += o.SCCPAgreements
	d.SCCPDisagreements += o.SCCPDisagreements
	d.SCCPVacuous += o.SCCPVacuous
	d.SCCPDecided += o.SCCPDecided
	// The recall ratio is recomputed from the summed counts rather than
	// summed itself — a ratio does not aggregate by addition.
	d.SCCPRecall = 0
	if d.SCCPDecided > 0 {
		d.SCCPRecall = float64(d.SCCPAgreements+d.SCCPDisagreements) / float64(d.SCCPDecided)
	}
	d.SCCPResidual += o.SCCPResidual
	d.CheckFindingsPre += o.CheckFindingsPre
	d.CheckFindingsPost += o.CheckFindingsPost
	d.FoldAttempted += o.FoldAttempted
	d.FoldApplied += o.FoldApplied
	d.FoldDuplicated += o.FoldDuplicated
	d.ResidualBefore += o.ResidualBefore
	d.ResidualAfter += o.ResidualAfter
	// The residual-reduction ratio is recomputed from the summed before and
	// after counts rather than summed itself, mirroring SCCPRecall above.
	d.FoldReduction = 0
	if d.ResidualBefore > 0 {
		d.FoldReduction = float64(d.ResidualBefore-d.ResidualAfter) / float64(d.ResidualBefore)
	}
	d.AnalysisWallNS += o.AnalysisWallNS
	d.ApplyWallNS += o.ApplyWallNS
	d.FoldWallNS += o.FoldWallNS
}

// reuseRate is the incremental engine's hit rate: the fraction of all
// settled node–query pairs that were reconstructed from memo records
// instead of re-propagated.
func reuseRate(reused, total int) float64 {
	if total <= 0 {
		return 0
	}
	return float64(reused) / float64(total)
}

func copyCounts(m map[string]int) map[string]int {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Encode writes v as indented JSON with a trailing newline — the one
// rendering used everywhere a report leaves the process.
func Encode(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
