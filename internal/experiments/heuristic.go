package experiments

import (
	"fmt"
	"strings"

	"icbe/internal/interp"
	"icbe/internal/ir"
	"icbe/internal/profile"
	"icbe/internal/progs"
	"icbe/internal/restructure"
)

// HeuristicRow compares the paper's growth-only duplication limit against
// the profile-guided heuristic it proposes as future improvement ("a
// better heuristic would also consider the amount of conditionals
// eliminated, as opposed to the incurred code growth alone"): optimize a
// conditional only when its estimated eliminated executions per duplicated
// node reach a threshold.
type HeuristicRow struct {
	Name string
	// Growth-only limit N=200.
	LimitGrowthPct, LimitReductionPct float64
	// Benefit-aware, threshold 1 execution/node on the train profile.
	Ben1GrowthPct, Ben1ReductionPct float64
	// Benefit-aware, threshold 25 executions/node.
	Ben25GrowthPct, Ben25ReductionPct float64
}

// HeuristicComparison trains the benefit heuristic on the train input and
// evaluates every variant on the ref input.
func HeuristicComparison(ws []*progs.Workload, termLimit int) ([]HeuristicRow, error) {
	var rows []HeuristicRow
	for _, w := range ws {
		p, err := ir.Build(w.Source)
		if err != nil {
			return nil, err
		}
		trainProf, _, err := profile.Collect(p, w.Train)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		base, err := interp.Run(p, interp.Options{Input: w.Ref})
		if err != nil {
			return nil, err
		}
		opsBefore := ir.Collect(p).Operations
		measure := func(opts restructure.DriverOptions) (growth, reduction float64, err error) {
			dr := restructure.Optimize(p, opts)
			run, err := interp.Run(dr.Program, interp.Options{Input: w.Ref})
			if err != nil {
				return 0, 0, err
			}
			growth = pct(float64(ir.Collect(dr.Program).Operations-opsBefore), float64(opsBefore))
			reduction = pct(float64(base.CondExecs-run.CondExecs), float64(base.CondExecs))
			return growth, reduction, nil
		}
		row := HeuristicRow{Name: w.Name}
		if row.LimitGrowthPct, row.LimitReductionPct, err = measure(driverOpts(interOpts(termLimit), 200)); err != nil {
			return nil, err
		}
		ben1 := driverOpts(interOpts(termLimit), 200)
		ben1.Profile, ben1.MinBenefitPerNode = trainProf, 1
		if row.Ben1GrowthPct, row.Ben1ReductionPct, err = measure(ben1); err != nil {
			return nil, err
		}
		ben25 := driverOpts(interOpts(termLimit), 200)
		ben25.Profile, ben25.MinBenefitPerNode = trainProf, 25
		if row.Ben25GrowthPct, row.Ben25ReductionPct, err = measure(ben25); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatHeuristic renders the heuristic comparison.
func FormatHeuristic(rows []HeuristicRow) string {
	var sb strings.Builder
	sb.WriteString("Duplication-limit vs profile-guided benefit heuristic (train profile, ref evaluation)\n")
	fmt.Fprintf(&sb, "%-10s | %19s | %19s | %19s\n",
		"", "limit N=200", "benefit >= 1/node", "benefit >= 25/node")
	fmt.Fprintf(&sb, "%-10s | %8s %9s | %8s %9s | %8s %9s\n",
		"program", "growth%", "reduct%", "growth%", "reduct%", "growth%", "reduct%")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s | %8.1f %9.1f | %8.1f %9.1f | %8.1f %9.1f\n",
			r.Name, r.LimitGrowthPct, r.LimitReductionPct,
			r.Ben1GrowthPct, r.Ben1ReductionPct,
			r.Ben25GrowthPct, r.Ben25ReductionPct)
	}
	return sb.String()
}
