package experiments

import (
	"fmt"
	"strings"
	"time"

	"icbe/internal/analysis"
	"icbe/internal/ir"
	"icbe/internal/progs"
)

// Table1Row mirrors the paper's Table 1: program size and conditional
// density, static and dynamic.
type Table1Row struct {
	Name       string
	Paper      string
	Lines      int
	Procedures int
	AllNodes   int
	CondNodes  int
	// StaticPct is conditionals / all executable (operation) nodes;
	// DynamicPct weights both by ref-input execution counts (the paper's
	// cond/prog static and dynamic columns).
	StaticPct  float64
	DynamicPct float64
}

// Table1 computes the benchmark characteristics table.
func Table1(ws []*progs.Workload) ([]Table1Row, error) {
	var rows []Table1Row
	for _, w := range ws {
		p, prof, err := buildAndProfile(w)
		if err != nil {
			return nil, err
		}
		st := ir.Collect(p)
		row := Table1Row{
			Name:       w.Name,
			Paper:      w.Paper,
			Lines:      p.SourceLines,
			Procedures: st.Procs,
			AllNodes:   st.AllNodes,
			CondNodes:  st.Conditionals,
			StaticPct:  pct(float64(st.Conditionals), float64(st.Operations)),
		}
		row.DynamicPct = pct(float64(prof.CondExecutions(p)), float64(prof.OperationExecutions(p)))
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable1 renders Table 1 as aligned text.
func FormatTable1(rows []Table1Row) string {
	var sb strings.Builder
	sb.WriteString("Table 1: Benchmark programs\n")
	fmt.Fprintf(&sb, "%-10s %-28s %6s %6s %8s %6s %9s %10s\n",
		"program", "stands in for", "lines", "procs", "nodes", "cond", "cond/prog", "cond/prog")
	fmt.Fprintf(&sb, "%-10s %-28s %6s %6s %8s %6s %9s %10s\n",
		"", "", "", "", "", "", "static%", "dynamic%")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %-28s %6d %6d %8d %6d %9.1f %10.1f\n",
			r.Name, r.Paper, r.Lines, r.Procedures, r.AllNodes, r.CondNodes, r.StaticPct, r.DynamicPct)
	}
	return sb.String()
}

// Table2Row mirrors the paper's Table 2: the cost of correlation analysis.
type Table2Row struct {
	Name string
	// OverallSec includes parsing, IR construction, and analysis of every
	// analyzable conditional; AnalysisSec is the analysis alone.
	OverallSec  float64
	AnalysisSec float64
	// ProgRepBytes approximates the memory of the program representation;
	// AnalysisBytes approximates the peak memory of queries and summary
	// nodes.
	ProgRepBytes  int64
	AnalysisBytes int64
	// PairsTotal counts node-query pairs processed over all conditionals;
	// PairsPerCond divides by the number of analyzed conditionals.
	PairsTotal   int
	PairsPerCond float64
}

// Table2 measures analysis cost with the paper's termination limit.
func Table2(ws []*progs.Workload, limit int) ([]Table2Row, error) {
	var rows []Table2Row
	for _, w := range ws {
		t0 := time.Now()
		p, err := ir.Build(w.Source)
		if err != nil {
			return nil, err
		}
		row := Table2Row{Name: w.Name, ProgRepBytes: progRepBytes(p)}
		an := analysis.New(p, interOpts(limit))
		ta := time.Now()
		nconds := 0
		for _, b := range analyzableBranches(p) {
			res := an.AnalyzeBranch(b.ID)
			if res == nil {
				continue
			}
			nconds++
			row.PairsTotal += res.PairsProcessed
			if mb := res.ApproxBytes(); mb > 0 {
				row.AnalysisBytes += mb
			}
			res.Release()
		}
		row.AnalysisSec = time.Since(ta).Seconds()
		row.OverallSec = time.Since(t0).Seconds()
		if nconds > 0 {
			row.PairsPerCond = float64(row.PairsTotal) / float64(nconds)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// progRepBytes approximates the memory of the internal program
// representation (nodes, edges, variables).
func progRepBytes(p *ir.Program) int64 {
	var b int64
	p.LiveNodes(func(n *ir.Node) {
		b += 200 + int64(len(n.Succs)+len(n.Preds)+len(n.Args))*8
	})
	b += int64(len(p.Vars)) * 64
	return b
}

// FormatTable2 renders Table 2 as aligned text.
func FormatTable2(rows []Table2Row) string {
	var sb strings.Builder
	sb.WriteString("Table 2: The cost of correlation analysis\n")
	fmt.Fprintf(&sb, "%-10s %12s %12s %12s %12s %12s %10s\n",
		"program", "overall[s]", "analysis[s]", "progrep[KB]", "analysis[KB]", "pairs", "per cond")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %12.4f %12.4f %12.1f %12.1f %12d %10.1f\n",
			r.Name, r.OverallSec, r.AnalysisSec,
			float64(r.ProgRepBytes)/1024, float64(r.AnalysisBytes)/1024,
			r.PairsTotal, r.PairsPerCond)
	}
	return sb.String()
}
