// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) on the reproduction's workloads:
//
//   - Table 1: benchmark characteristics
//   - Table 2: cost of the correlation analysis
//   - Figure 9: statically detectable correlation (some/full, static count
//     and dynamically weighted, intra vs inter)
//   - Figure 10: per-conditional cost/benefit scatter
//   - Figure 11: executed-conditional reduction vs code growth for a sweep
//     of per-conditional duplication limits
//   - the headline claim: at matched code growth, ICBE removes a multiple
//     of what intraprocedural elimination removes
//
// Absolute values differ from the paper (different machines, synthetic
// workloads standing in for SPEC95); the comparisons reproduce the shapes.
package experiments

import (
	"fmt"
	"time"

	"icbe/internal/analysis"
	"icbe/internal/ir"
	"icbe/internal/profile"
	"icbe/internal/progs"
	"icbe/internal/restructure"
)

// PaperTerminationLimit is the analysis budget used in the paper's
// Figure 11 experiment (node-query pairs per conditional).
const PaperTerminationLimit = 1000

// PaperDupLimits is the paper's sweep of per-conditional duplication
// limits N.
var PaperDupLimits = []int{5, 10, 20, 50, 100, 200}

// interOpts returns the ICBE analysis configuration.
func interOpts(limit int) analysis.Options {
	return analysis.Options{Interprocedural: true, ModSummaries: true, TerminationLimit: limit}
}

// intraOpts returns the baseline analysis configuration (intraprocedural
// with MOD/USE summary information at call sites, per the paper).
func intraOpts(limit int) analysis.Options {
	return analysis.Options{Interprocedural: false, ModSummaries: true, TerminationLimit: limit}
}

// Workers sets the analysis worker count every experiment passes to the
// restructuring driver. The driver output is identical for any value; the
// knob only affects wall time (cmd/icbe-bench -workers).
var Workers = 1

// Verify enables the driver's differential shadow-execution oracle for
// every experiment run (cmd/icbe-bench -verify): each applied
// restructuring is checked against the paper's identical-output /
// no-op-growth guarantee and rolled back on violation. Off by default —
// it multiplies apply cost by the number of shadow runs.
var Verify = false

// Timeout bounds each driver run an experiment performs (cmd/icbe-bench
// -timeout); zero means none. Expired runs report their remaining
// conditionals as skipped with a timeout failure instead of hanging the
// evaluation.
var Timeout time.Duration

// driverOpts builds the restructuring driver configuration shared by the
// experiments, injecting the package-level Workers / Verify / Timeout
// knobs.
func driverOpts(a analysis.Options, dupLimit int) restructure.DriverOptions {
	return restructure.DriverOptions{
		Analysis:       a,
		MaxDuplication: dupLimit,
		Workers:        Workers,
		Verify:         Verify,
		Timeout:        Timeout,
	}
}

// buildAndProfile compiles a workload and collects its ref profile.
func buildAndProfile(w *progs.Workload) (*ir.Program, profile.Profile, error) {
	p, err := ir.Build(w.Source)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	prof, _, err := profile.Collect(p, w.Ref)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: profiling failed: %w", w.Name, err)
	}
	return p, prof, nil
}

// analyzableBranches lists the analyzable conditionals of a program in ID
// order.
func analyzableBranches(p *ir.Program) []*ir.Node {
	var out []*ir.Node
	p.LiveNodes(func(n *ir.Node) {
		if n.Kind == ir.NBranch && n.Analyzable() {
			out = append(out, n)
		}
	})
	return out
}

// allBranches counts every conditional.
func allBranches(p *ir.Program) []*ir.Node {
	var out []*ir.Node
	p.LiveNodes(func(n *ir.Node) {
		if n.Kind == ir.NBranch {
			out = append(out, n)
		}
	})
	return out
}

func pct(part, whole float64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * part / whole
}
