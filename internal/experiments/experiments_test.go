package experiments

import (
	"strings"
	"testing"

	"icbe/internal/progs"
)

// fast returns a cheap subset of workloads for unit-testing the harness;
// the full set runs in the benchmarks and the CLI.
func fast() []*progs.Workload {
	return []*progs.Workload{progs.Stdio(), progs.M88k()}
}

func TestTable1(t *testing.T) {
	rows, err := Table1(fast())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Lines <= 0 || r.Procedures <= 0 || r.AllNodes <= 0 || r.CondNodes <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
		if r.StaticPct <= 0 || r.StaticPct >= 100 || r.DynamicPct <= 0 || r.DynamicPct >= 100 {
			t.Errorf("percentages out of range: %+v", r)
		}
		if r.CondNodes >= r.AllNodes {
			t.Errorf("conds >= nodes: %+v", r)
		}
	}
	text := FormatTable1(rows)
	if !strings.Contains(text, "stdio") || !strings.Contains(text, "m88k") {
		t.Errorf("format missing rows:\n%s", text)
	}
}

func TestTable2(t *testing.T) {
	rows, err := Table2(fast(), PaperTerminationLimit)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.PairsTotal <= 0 || r.PairsPerCond <= 0 {
			t.Errorf("no analysis work recorded: %+v", r)
		}
		if r.AnalysisSec > r.OverallSec {
			t.Errorf("analysis time exceeds overall: %+v", r)
		}
		if r.ProgRepBytes <= 0 || r.AnalysisBytes <= 0 {
			t.Errorf("memory estimates missing: %+v", r)
		}
	}
	if s := FormatTable2(rows); !strings.Contains(s, "pairs") {
		t.Error("format broken")
	}
}

func TestFigure9(t *testing.T) {
	rows, err := Figure9(fast())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Monotonicity: inter finds at least as much as intra; full is a
		// subset of some; analyzable bounds everything.
		if r.InterSomePct < r.IntraSomePct {
			t.Errorf("%s: inter < intra (some)", r.Name)
		}
		if r.InterFullPct < r.IntraFullPct {
			t.Errorf("%s: inter < intra (full)", r.Name)
		}
		if r.IntraFullPct > r.IntraSomePct || r.InterFullPct > r.InterSomePct {
			t.Errorf("%s: full > some", r.Name)
		}
		if r.InterSomePct > r.AnalyzablePct {
			t.Errorf("%s: correlated > analyzable", r.Name)
		}
		// The key claim: interprocedural analysis detects materially more.
		if r.InterSomePct <= r.IntraSomePct {
			t.Errorf("%s: no interprocedural advantage (some: %f vs %f)", r.Name, r.InterSomePct, r.IntraSomePct)
		}
	}
	if s := FormatFigure9(rows); !strings.Contains(s, "full correlation") {
		t.Error("format broken")
	}
}

func TestFigure10(t *testing.T) {
	intra, inter, err := Figure10(fast())
	if err != nil {
		t.Fatal(err)
	}
	if len(inter) <= len(intra) {
		t.Errorf("inter should have more correlated conditionals: %d vs %d", len(inter), len(intra))
	}
	posBenefit := 0
	for _, p := range inter {
		if p.Dup < 0 {
			t.Errorf("negative duplication: %+v", p)
		}
		if p.Benefit > 0 {
			posBenefit++
		}
	}
	if posBenefit == 0 {
		t.Error("no conditional with positive dynamic benefit")
	}
	if s := FormatFigure10(intra, inter); !strings.Contains(s, "interprocedural") {
		t.Error("format broken")
	}
}

func TestFigure11(t *testing.T) {
	rows, err := Figure11(fast(), PaperTerminationLimit, []int{5, 50, 200})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if len(r.Intra) != 3 || len(r.Inter) != 3 {
			t.Fatalf("%s: wrong point counts", r.Name)
		}
		// Larger limits can only help (monotone in N).
		for i := 1; i < len(r.Inter); i++ {
			if r.Inter[i].CondReductionPct+1e-9 < r.Inter[i-1].CondReductionPct {
				t.Errorf("%s: inter reduction not monotone in N: %v", r.Name, r.Inter)
			}
		}
		// At the largest limit inter must beat intra.
		last := len(r.Inter) - 1
		if r.Inter[last].CondReductionPct <= r.Intra[last].CondReductionPct {
			t.Errorf("%s: inter %f <= intra %f at N=200", r.Name,
				r.Inter[last].CondReductionPct, r.Intra[last].CondReductionPct)
		}
		for _, pt := range r.Inter {
			if pt.CondReductionPct < 0 || pt.CondReductionPct > 100 {
				t.Errorf("%s: reduction out of range: %+v", r.Name, pt)
			}
			if pt.CodeGrowthPct < 0 {
				t.Errorf("%s: negative growth: %+v", r.Name, pt)
			}
		}
	}
	if s := FormatFigure11(rows); !strings.Contains(s, "growth%") {
		t.Error("format broken")
	}
}

func TestHeadline(t *testing.T) {
	h, err := ComputeHeadline(fast(), PaperTerminationLimit, []int{5, 50, 200})
	if err != nil {
		t.Fatal(err)
	}
	if h.FullCorrMaxPct <= 0 {
		t.Error("no full correlation found")
	}
	if h.MatchedGrowthRatio <= 1 {
		t.Errorf("matched-growth ratio %.2f should exceed 1 (ICBE advantage)", h.MatchedGrowthRatio)
	}
	if s := FormatHeadline(h); !strings.Contains(s, "2.5x") {
		t.Error("format broken")
	}
}

func TestInliningComparison(t *testing.T) {
	rows, err := InliningComparison(fast(), PaperTerminationLimit, 200)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.InlinedCalls == 0 {
			t.Errorf("%s: nothing inlined", r.Name)
		}
		if r.InlineReductionPct <= 0 {
			t.Errorf("%s: inline route removed nothing", r.Name)
		}
		if r.ICBEReductionPct <= 0 {
			t.Errorf("%s: ICBE route removed nothing", r.Name)
		}
	}
	if s := FormatInlining(rows); !strings.Contains(s, "ICBE restructuring") {
		t.Error("format broken")
	}
}

func TestHeuristicComparison(t *testing.T) {
	rows, err := HeuristicComparison(fast(), PaperTerminationLimit)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// A higher benefit threshold can only shrink growth (fewer
		// conditionals pass the gate) and reduction.
		if r.Ben25GrowthPct > r.Ben1GrowthPct+1e-9 {
			t.Errorf("%s: growth not monotone in threshold: %+v", r.Name, r)
		}
		if r.Ben1ReductionPct > r.LimitReductionPct+1e-9 {
			t.Errorf("%s: benefit gate cannot beat ungated reduction: %+v", r.Name, r)
		}
		if r.LimitReductionPct <= 0 {
			t.Errorf("%s: no reduction at all", r.Name)
		}
	}
	if s := FormatHeuristic(rows); !strings.Contains(s, "benefit") {
		t.Error("format broken")
	}
}
