package experiments

import (
	"fmt"
	"strings"

	"icbe/internal/analysis"
	"icbe/internal/interp"
	"icbe/internal/ir"
	"icbe/internal/progs"
	"icbe/internal/restructure"
)

// Fig9Row holds the four graphs of Figure 9 for one program: the share of
// conditionals that are analyzable, have some correlated path, and have
// full correlation — counted statically and weighted by execution counts —
// for the intraprocedural baseline and interprocedural ICBE analysis.
type Fig9Row struct {
	Name string

	// Of all conditionals, statically counted:
	AnalyzablePct float64
	IntraSomePct  float64
	InterSomePct  float64
	IntraFullPct  float64
	InterFullPct  float64

	// The same, weighted by ref-input execution counts:
	AnalyzableDynPct float64
	IntraSomeDynPct  float64
	InterSomeDynPct  float64
	IntraFullDynPct  float64
	InterFullDynPct  float64
}

// Figure9 computes statically detectable correlation with an unlimited
// termination budget (the paper notes Figures 9 and 10 used an infinite
// limit).
func Figure9(ws []*progs.Workload) ([]Fig9Row, error) {
	var rows []Fig9Row
	for _, w := range ws {
		p, prof, err := buildAndProfile(w)
		if err != nil {
			return nil, err
		}
		all := allBranches(p)
		var totalStatic, totalDyn float64
		for _, b := range all {
			totalStatic++
			totalDyn += float64(prof.Of(b.ID))
		}
		row := Fig9Row{Name: w.Name}
		anInter := analysis.New(p, interOpts(0))
		anIntra := analysis.New(p, intraOpts(0))
		for _, b := range analyzableBranches(p) {
			weight := float64(prof.Of(b.ID))
			row.AnalyzablePct += 1
			row.AnalyzableDynPct += weight
			resInter := anInter.AnalyzeBranch(b.ID)
			resIntra := anIntra.AnalyzeBranch(b.ID)
			if resIntra.HasCorrelation() {
				row.IntraSomePct++
				row.IntraSomeDynPct += weight
			}
			if resInter.HasCorrelation() {
				row.InterSomePct++
				row.InterSomeDynPct += weight
			}
			if resIntra.FullCorrelation() {
				row.IntraFullPct++
				row.IntraFullDynPct += weight
			}
			if resInter.FullCorrelation() {
				row.InterFullPct++
				row.InterFullDynPct += weight
			}
			resInter.Release()
			resIntra.Release()
		}
		row.AnalyzablePct = pct(row.AnalyzablePct, totalStatic)
		row.IntraSomePct = pct(row.IntraSomePct, totalStatic)
		row.InterSomePct = pct(row.InterSomePct, totalStatic)
		row.IntraFullPct = pct(row.IntraFullPct, totalStatic)
		row.InterFullPct = pct(row.InterFullPct, totalStatic)
		row.AnalyzableDynPct = pct(row.AnalyzableDynPct, totalDyn)
		row.IntraSomeDynPct = pct(row.IntraSomeDynPct, totalDyn)
		row.InterSomeDynPct = pct(row.InterSomeDynPct, totalDyn)
		row.IntraFullDynPct = pct(row.IntraFullDynPct, totalDyn)
		row.InterFullDynPct = pct(row.InterFullDynPct, totalDyn)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFigure9 renders the four Figure 9 graphs as two tables.
func FormatFigure9(rows []Fig9Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 9: Conditionals with correlation (% of all conditionals)\n")
	fmt.Fprintf(&sb, "%-10s | %28s | %28s\n", "", "static count", "dynamic (exec-weighted)")
	fmt.Fprintf(&sb, "%-10s | %8s %9s %9s | %8s %9s %9s\n",
		"program", "analyz.", "intra", "inter", "analyz.", "intra", "inter")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s | %8.1f %9.1f %9.1f | %8.1f %9.1f %9.1f\n",
			r.Name, r.AnalyzablePct, r.IntraSomePct, r.InterSomePct,
			r.AnalyzableDynPct, r.IntraSomeDynPct, r.InterSomeDynPct)
	}
	sb.WriteString("\nFigure 9 (cont.): Conditionals with full correlation (% of all conditionals)\n")
	fmt.Fprintf(&sb, "%-10s | %19s | %19s\n", "", "static count", "dynamic")
	fmt.Fprintf(&sb, "%-10s | %9s %9s | %9s %9s\n", "program", "intra", "inter", "intra", "inter")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s | %9.1f %9.1f | %9.1f %9.1f\n",
			r.Name, r.IntraFullPct, r.InterFullPct, r.IntraFullDynPct, r.InterFullDynPct)
	}
	return sb.String()
}

// Fig10Point is one conditional in the Figure 10 scatter plot: the code
// duplication its elimination requires (x) against the dynamic instances
// whose outcome becomes known (y).
type Fig10Point struct {
	Workload string
	Line     int
	// Dup is the analysis' upper bound on new operation nodes.
	Dup int
	// Benefit estimates the dynamic instances decided, from the execution
	// counts of the resolution sites.
	Benefit int64
}

// Figure10 computes the cost/benefit scatter for both analyses.
func Figure10(ws []*progs.Workload) (intra, inter []Fig10Point, err error) {
	for _, w := range ws {
		p, prof, err := buildAndProfile(w)
		if err != nil {
			return nil, nil, err
		}
		anInter := analysis.New(p, interOpts(0))
		anIntra := analysis.New(p, intraOpts(0))
		for _, b := range analyzableBranches(p) {
			if res := anIntra.AnalyzeBranch(b.ID); res != nil {
				if res.HasCorrelation() {
					intra = append(intra, Fig10Point{
						Workload: w.Name, Line: b.Line,
						Dup:     res.DuplicationEstimate(p),
						Benefit: res.EstimatedBenefit(prof),
					})
				}
				res.Release()
			}
			if res := anInter.AnalyzeBranch(b.ID); res != nil {
				if res.HasCorrelation() {
					inter = append(inter, Fig10Point{
						Workload: w.Name, Line: b.Line,
						Dup:     res.DuplicationEstimate(p),
						Benefit: res.EstimatedBenefit(prof),
					})
				}
				res.Release()
			}
		}
	}
	return intra, inter, nil
}

// FormatFigure10 renders the scatter data as two point lists.
func FormatFigure10(intra, inter []Fig10Point) string {
	var sb strings.Builder
	sb.WriteString("Figure 10: branch-removal contribution vs code duplication (one point per correlated conditional)\n")
	render := func(label string, pts []Fig10Point) {
		fmt.Fprintf(&sb, "%s (%d correlated conditionals)\n", label, len(pts))
		fmt.Fprintf(&sb, "  %-10s %6s %12s %14s\n", "program", "line", "dup[nodes]", "benefit[execs]")
		for _, p := range pts {
			fmt.Fprintf(&sb, "  %-10s %6d %12d %14d\n", p.Workload, p.Line, p.Dup, p.Benefit)
		}
	}
	render("intraprocedural", intra)
	render("interprocedural", inter)
	return sb.String()
}

// Fig11Point is one duplication-limit setting of Figure 11.
type Fig11Point struct {
	Limit int
	// CondReductionPct is the percentage of ref-input executed conditional
	// nodes removed; CodeGrowthPct is the static operation-node growth.
	CondReductionPct float64
	CodeGrowthPct    float64
	Optimized        int
}

// Fig11Row is one benchmark's pair of curves.
type Fig11Row struct {
	Name  string
	Intra []Fig11Point
	Inter []Fig11Point
}

// Figure11 sweeps the per-conditional duplication limit with the paper's
// termination budget, optimizing each workload with both analyses and
// measuring executed-conditional reduction against code growth on the ref
// input.
func Figure11(ws []*progs.Workload, termLimit int, dupLimits []int) ([]Fig11Row, error) {
	var rows []Fig11Row
	for _, w := range ws {
		p, err := ir.Build(w.Source)
		if err != nil {
			return nil, err
		}
		base, err := interp.Run(p, interp.Options{Input: w.Ref})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		opsBefore := ir.Collect(p).Operations
		row := Fig11Row{Name: w.Name}
		for _, mode := range []struct {
			opts analysis.Options
			dst  *[]Fig11Point
		}{
			{intraOpts(termLimit), &row.Intra},
			{interOpts(termLimit), &row.Inter},
		} {
			for _, limit := range dupLimits {
				dr := restructure.Optimize(p, driverOpts(mode.opts, limit))
				run, err := interp.Run(dr.Program, interp.Options{Input: w.Ref})
				if err != nil {
					return nil, fmt.Errorf("%s (limit %d): %w", w.Name, limit, err)
				}
				opsAfter := ir.Collect(dr.Program).Operations
				*mode.dst = append(*mode.dst, Fig11Point{
					Limit:            limit,
					CondReductionPct: pct(float64(base.CondExecs-run.CondExecs), float64(base.CondExecs)),
					CodeGrowthPct:    pct(float64(opsAfter-opsBefore), float64(opsBefore)),
					Optimized:        dr.Optimized,
				})
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFigure11 renders the per-benchmark reduction-vs-growth curves.
func FormatFigure11(rows []Fig11Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 11: reduction in executed conditional nodes vs program code growth\n")
	sb.WriteString("(one point per per-conditional duplication limit N)\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%s\n", r.Name)
		fmt.Fprintf(&sb, "  %6s | %22s | %22s\n", "", "intraprocedural", "interprocedural (ICBE)")
		fmt.Fprintf(&sb, "  %6s | %8s %9s %4s | %8s %9s %4s\n",
			"N", "growth%", "reduct%", "opt", "growth%", "reduct%", "opt")
		for i := range r.Intra {
			ia, ie := r.Intra[i], r.Inter[i]
			fmt.Fprintf(&sb, "  %6d | %8.1f %9.1f %4d | %8.1f %9.1f %4d\n",
				ia.Limit, ia.CodeGrowthPct, ia.CondReductionPct, ia.Optimized,
				ie.CodeGrowthPct, ie.CondReductionPct, ie.Optimized)
		}
	}
	return sb.String()
}
