package experiments

import (
	"fmt"
	"strings"

	"icbe/internal/inline"
	"icbe/internal/interp"
	"icbe/internal/ir"
	"icbe/internal/progs"
	"icbe/internal/restructure"
)

// InliningRow compares the two routes to interprocedural branch
// elimination the paper discusses in §5: ICBE's interprocedural
// restructuring (duplicating only correlated paths, with entry/exit
// splitting) versus pre-pass inlining followed by purely intraprocedural
// elimination (duplicating whole callees per call site).
type InliningRow struct {
	Name string
	// ICBE route.
	ICBEGrowthPct    float64
	ICBEReductionPct float64
	// Inline-then-intraprocedural route.
	InlineGrowthPct    float64
	InlineReductionPct float64
	// InlinedCalls counts call sites integrated by the pre-pass.
	InlinedCalls int
}

// InliningComparison measures both routes on every workload.
func InliningComparison(ws []*progs.Workload, termLimit, dupLimit int) ([]InliningRow, error) {
	var rows []InliningRow
	for _, w := range ws {
		p, err := ir.Build(w.Source)
		if err != nil {
			return nil, err
		}
		base, err := interp.Run(p, interp.Options{Input: w.Ref})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		opsBefore := ir.Collect(p).Operations
		row := InliningRow{Name: w.Name}

		// Route 1: ICBE.
		icbe := restructure.Optimize(p, driverOpts(interOpts(termLimit), dupLimit))
		run1, err := interp.Run(icbe.Program, interp.Options{Input: w.Ref})
		if err != nil {
			return nil, fmt.Errorf("%s icbe: %w", w.Name, err)
		}
		row.ICBEGrowthPct = pct(float64(ir.Collect(icbe.Program).Operations-opsBefore), float64(opsBefore))
		row.ICBEReductionPct = pct(float64(base.CondExecs-run1.CondExecs), float64(base.CondExecs))

		// Route 2: exhaustive pre-pass inlining, then the intraprocedural
		// eliminator.
		inlined := ir.Clone(p)
		row.InlinedCalls = inline.Exhaustive(inlined, 200)
		intra := restructure.Optimize(inlined, driverOpts(intraOpts(termLimit), dupLimit))
		run2, err := interp.Run(intra.Program, interp.Options{Input: w.Ref})
		if err != nil {
			return nil, fmt.Errorf("%s inline: %w", w.Name, err)
		}
		row.InlineGrowthPct = pct(float64(ir.Collect(intra.Program).Operations-opsBefore), float64(opsBefore))
		row.InlineReductionPct = pct(float64(base.CondExecs-run2.CondExecs), float64(base.CondExecs))
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatInlining renders the comparison table.
func FormatInlining(rows []InliningRow) string {
	var sb strings.Builder
	sb.WriteString("Inlining vs ICBE (paper §5): growth and executed-conditional reduction\n")
	fmt.Fprintf(&sb, "%-10s | %20s | %27s\n", "", "ICBE restructuring", "inline + intraprocedural")
	fmt.Fprintf(&sb, "%-10s | %9s %10s | %9s %10s %6s\n",
		"program", "growth%", "reduct%", "growth%", "reduct%", "calls")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s | %9.1f %10.1f | %9.1f %10.1f %6d\n",
			r.Name, r.ICBEGrowthPct, r.ICBEReductionPct,
			r.InlineGrowthPct, r.InlineReductionPct, r.InlinedCalls)
	}
	return sb.String()
}
