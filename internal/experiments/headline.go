package experiments

import (
	"fmt"
	"strings"

	"icbe/internal/progs"
)

// Headline quantifies the paper's two headline claims:
//
//  1. interprocedural detection of correlation enables elimination of 3% to
//     18% of executed conditionals (full correlation, dynamic weighted);
//  2. for the same amount of code growth, the reduction in executed
//     conditional branches is about 2.5× higher with ICBE than with
//     intraprocedural elimination alone.
type Headline struct {
	// FullCorrMinPct/MaxPct bound the per-workload dynamic share of fully
	// correlated conditionals under interprocedural analysis (claim 1).
	FullCorrMinPct, FullCorrMaxPct float64
	// MatchedGrowthRatio is the mean, over workloads and growth budgets,
	// of inter reduction / intra reduction at matched (or smaller) code
	// growth (claim 2).
	MatchedGrowthRatio float64
	// TotalReductionRatio is the ratio of total removed executed
	// conditionals (inter / intra) at the largest duplication limit.
	TotalReductionRatio float64
	PerWorkload         []HeadlineRow
}

// HeadlineRow is one workload's contribution.
type HeadlineRow struct {
	Name               string
	FullCorrDynPct     float64
	BestIntraReduction float64
	BestInterReduction float64
	// InterAtIntraGrowth is the inter reduction achievable with code
	// growth no larger than the best intra point's growth.
	InterAtIntraGrowth float64
}

// ComputeHeadline derives the headline numbers from Figures 9 and 11.
func ComputeHeadline(ws []*progs.Workload, termLimit int, dupLimits []int) (*Headline, error) {
	fig9, err := Figure9(ws)
	if err != nil {
		return nil, err
	}
	fig11, err := Figure11(ws, termLimit, dupLimits)
	if err != nil {
		return nil, err
	}
	h := &Headline{FullCorrMinPct: 101}
	var ratioSum float64
	var ratioN int
	var totalIntra, totalInter float64
	for i, w := range ws {
		row := HeadlineRow{Name: w.Name, FullCorrDynPct: fig9[i].InterFullDynPct}
		if row.FullCorrDynPct < h.FullCorrMinPct {
			h.FullCorrMinPct = row.FullCorrDynPct
		}
		if row.FullCorrDynPct > h.FullCorrMaxPct {
			h.FullCorrMaxPct = row.FullCorrDynPct
		}
		f := fig11[i]
		for _, pt := range f.Intra {
			if pt.CondReductionPct > row.BestIntraReduction {
				row.BestIntraReduction = pt.CondReductionPct
			}
		}
		for _, pt := range f.Inter {
			if pt.CondReductionPct > row.BestInterReduction {
				row.BestInterReduction = pt.CondReductionPct
			}
		}
		// Matched growth: the largest intra point's growth defines the
		// budget; find the best inter reduction within it.
		var budget float64 = -1
		for _, pt := range f.Intra {
			if pt.CondReductionPct == row.BestIntraReduction && pt.CodeGrowthPct > budget {
				budget = pt.CodeGrowthPct
			}
		}
		for _, pt := range f.Inter {
			if pt.CodeGrowthPct <= budget+1e-9 && pt.CondReductionPct > row.InterAtIntraGrowth {
				row.InterAtIntraGrowth = pt.CondReductionPct
			}
		}
		if row.BestIntraReduction > 0 {
			ratioSum += row.InterAtIntraGrowth / row.BestIntraReduction
			ratioN++
		}
		totalIntra += row.BestIntraReduction
		totalInter += row.BestInterReduction
		h.PerWorkload = append(h.PerWorkload, row)
	}
	if ratioN > 0 {
		h.MatchedGrowthRatio = ratioSum / float64(ratioN)
	}
	if totalIntra > 0 {
		h.TotalReductionRatio = totalInter / totalIntra
	}
	return h, nil
}

// FormatHeadline renders the headline comparison.
func FormatHeadline(h *Headline) string {
	var sb strings.Builder
	sb.WriteString("Headline claims\n")
	fmt.Fprintf(&sb, "%-10s %14s %14s %14s %20s\n",
		"program", "full-corr dyn%", "intra best%", "inter best%", "inter@intra-growth%")
	for _, r := range h.PerWorkload {
		fmt.Fprintf(&sb, "%-10s %14.1f %14.1f %14.1f %20.1f\n",
			r.Name, r.FullCorrDynPct, r.BestIntraReduction, r.BestInterReduction, r.InterAtIntraGrowth)
	}
	fmt.Fprintf(&sb, "\nfully correlated executed conditionals: %.1f%% .. %.1f%% (paper: 3%%..18-19%%)\n",
		h.FullCorrMinPct, h.FullCorrMaxPct)
	fmt.Fprintf(&sb, "reduction ratio inter/intra at matched growth: %.2fx (paper: ~2.5x)\n", h.MatchedGrowthRatio)
	fmt.Fprintf(&sb, "reduction ratio inter/intra, best points: %.2fx\n", h.TotalReductionRatio)
	return sb.String()
}
