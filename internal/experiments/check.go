package experiments

import (
	"fmt"
	"strings"

	"icbe/internal/progs"
	"icbe/internal/restructure"
)

// CheckRow is one workload's static verification summary: the driver run
// with the check layer on (SCCP cross-check + invariant lint gate), plus the
// oracle's recall signal — constant branches ICBE left in the optimized
// program.
type CheckRow struct {
	Name       string
	Analyzable int
	Optimized  int
	// Agreements/Disagreements count cross-checked conditionals the SCCP
	// oracle confirmed/contradicted. Disagreements must be zero: each one
	// is a contained rollback and evidence of an analysis bug. Decided
	// counts every non-vacuous conditional with a full demand-driven
	// answer, and Recall the fraction of those the oracle graded.
	Agreements    int
	Disagreements int
	Decided       int
	Recall        float64
	// Residual counts analyzable branches of the optimized program whose
	// outcome the oracle still decides (smaller is better; 0 means ICBE
	// eliminated every branch the conditional constant propagator can see).
	Residual int
	// FindingsPre/Post count invariant lint findings before and after
	// optimization (both 0 for sound runs).
	FindingsPre, FindingsPost int
	// CheckFailures counts conditionals the gate refused (rolled back).
	CheckFailures int
}

// CheckReport runs the optimization driver with the static check layer on
// every workload.
func CheckReport(ws []*progs.Workload, termLimit int) ([]CheckRow, error) {
	var rows []CheckRow
	for _, w := range ws {
		p, _, err := buildAndProfile(w)
		if err != nil {
			return nil, err
		}
		opts := driverOpts(interOpts(termLimit), 0)
		opts.Check = true
		dr := restructure.Optimize(p, opts)
		rows = append(rows, CheckRow{
			Name:          w.Name,
			Analyzable:    len(analyzableBranches(p)),
			Optimized:     dr.Optimized,
			Agreements:    dr.Stats.SCCPAgreements,
			Disagreements: dr.Stats.SCCPDisagreements,
			Decided:       dr.Stats.SCCPDecided,
			Recall:        dr.Stats.SCCPRecall,
			Residual:      dr.Stats.SCCPResidual,
			FindingsPre:   dr.Stats.CheckFindingsPre,
			FindingsPost:  dr.Stats.CheckFindingsPost,
			CheckFailures: dr.Stats.Failures[restructure.FailCheck],
		})
	}
	return rows, nil
}

// FormatCheckReport renders the static verification table.
func FormatCheckReport(rows []CheckRow) string {
	var sb strings.Builder
	sb.WriteString("Static verification (SCCP cross-check + invariant lints)\n")
	fmt.Fprintf(&sb, "%-10s %10s %9s %6s %9s %7s %6s %8s %13s %8s\n",
		"program", "analyzable", "optimized", "agree", "disagree", "decided", "recall", "residual", "findings", "refused")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %10d %9d %6d %9d %7d %6.2f %8d %6d -> %3d %8d\n",
			r.Name, r.Analyzable, r.Optimized, r.Agreements, r.Disagreements, r.Decided,
			r.Recall, r.Residual, r.FindingsPre, r.FindingsPost, r.CheckFailures)
	}
	sb.WriteString("\ndisagree and findings must be 0; recall is the graded fraction of decided claims; residual counts constant branches ICBE left behind\n")
	return sb.String()
}
