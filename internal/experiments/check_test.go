package experiments

import (
	"strings"
	"testing"

	"icbe/internal/progs"
)

// TestCheckReportOracleBites is the golden gate for the check layer: across
// the full workload set the branch-sensitive oracle must actually grade
// claims (nonzero agreements and recall on most workloads), and must never
// contradict the demand-driven analysis or surface lint findings. A
// regression to a vacuous oracle (all-zero agreements) fails here before it
// fails in CI's bench smoke.
func TestCheckReportOracleBites(t *testing.T) {
	rows, err := CheckReport(progs.All(), PaperTerminationLimit)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want the 7 paper workloads", len(rows))
	}
	biting := 0
	for _, r := range rows {
		if r.Disagreements != 0 || r.CheckFailures != 0 {
			t.Errorf("%s: oracle contradiction (disagree=%d refused=%d)", r.Name, r.Disagreements, r.CheckFailures)
		}
		if r.FindingsPre != 0 || r.FindingsPost != 0 {
			t.Errorf("%s: lint findings %d -> %d, want 0 -> 0", r.Name, r.FindingsPre, r.FindingsPost)
		}
		if r.Agreements > 0 && r.Recall > 0 {
			biting++
		}
		if r.Agreements > r.Decided {
			t.Errorf("%s: agreements %d exceed decided %d", r.Name, r.Agreements, r.Decided)
		}
	}
	// compress, m88k, and goboard eliminate exclusively via per-edge splits
	// ({T,F} answers), which never present a single gradeable claim — so the
	// ceiling is 4 of 7, and the floor is the same: the oracle must grade
	// every workload that presents full answers.
	if biting < 4 {
		t.Errorf("oracle bites on %d workloads, want >= 4", biting)
	}
	text := FormatCheckReport(rows)
	if !strings.Contains(text, "recall") || !strings.Contains(text, "stdio") {
		t.Errorf("format missing columns:\n%s", text)
	}
}
