package minic

import (
	"strings"
	"testing"
)

func mustCheck(t *testing.T, src string) (*Program, *Info) {
	t.Helper()
	prog := mustParse(t, src)
	info, err := Check(prog)
	if err != nil {
		t.Fatalf("Check failed: %v", err)
	}
	return prog, info
}

func TestCheckResolvesScopes(t *testing.T) {
	prog, info := mustCheck(t, `
		var g = 1;
		func f(a) {
			var x = a + g;
			if (x > 0) {
				var x = 2;
				x = x + 1;
			}
			return x;
		}
		func main() { var r = f(3); print(r); }
	`)
	f := prog.Procs[0]
	// Outer x and inner x are distinct symbols.
	outerDecl := f.Body.Stmts[0].(*VarDecl)
	ifs := f.Body.Stmts[1].(*IfStmt)
	innerDecl := ifs.Then.Stmts[0].(*VarDecl)
	outerSym := info.DeclSyms[outerDecl]
	innerSym := info.DeclSyms[innerDecl]
	if outerSym == innerSym {
		t.Error("shadowed locals resolved to the same symbol")
	}
	// Assignment inside the if refers to the inner x.
	asgn := ifs.Then.Stmts[1].(*AssignStmt)
	if info.AssignSyms[asgn] != innerSym {
		t.Error("assignment in inner scope did not resolve to inner symbol")
	}
	// Return refers to the outer x.
	ret := f.Body.Stmts[2].(*ReturnStmt)
	if info.Uses[ret.Value.(*VarRef)] != outerSym {
		t.Error("return did not resolve to outer symbol")
	}
	// g resolves to a global.
	add := outerDecl.Init.(*BinExpr)
	gSym := info.Uses[add.R.(*VarRef)]
	if gSym.Kind != SymGlobal {
		t.Errorf("g resolved to %v", gSym.Kind)
	}
	// a resolves to the parameter.
	aSym := info.Uses[add.L.(*VarRef)]
	if aSym.Kind != SymParam {
		t.Errorf("a resolved to %v", aSym.Kind)
	}
}

func TestCheckLocalShadowsGlobal(t *testing.T) {
	prog, info := mustCheck(t, `
		var x = 1;
		func main() {
			var x = 2;
			print(x);
		}
	`)
	pr := prog.Procs[0].Body.Stmts[1].(*PrintStmt)
	sym := info.Uses[pr.Value.(*VarRef)]
	if sym.Kind != SymLocal {
		t.Errorf("x resolved to %v, want local", sym.Kind)
	}
}

func TestCheckVarInitUsesOuterScope(t *testing.T) {
	// `var x = x;` must refer to the outer x, not the new one.
	prog, info := mustCheck(t, `
		var x = 5;
		func main() {
			var x = x;
			print(x);
		}
	`)
	decl := prog.Procs[0].Body.Stmts[0].(*VarDecl)
	initSym := info.Uses[decl.Init.(*VarRef)]
	if initSym.Kind != SymGlobal {
		t.Errorf("initializer x resolved to %v, want global", initSym.Kind)
	}
}

func TestCheckProcIndices(t *testing.T) {
	_, info := mustCheck(t, `
		func a() {}
		func b() {}
		func main() { a(); b(); }
	`)
	if info.ProcIdx["a"] != 0 || info.ProcIdx["b"] != 1 || info.ProcIdx["main"] != 2 {
		t.Errorf("ProcIdx = %v", info.ProcIdx)
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{`func f() {}`, "no 'main'"},
		{`func main(a) {}`, "'main' must take no parameters"},
		{`func main() { x = 1; }`, "undeclared variable"},
		{`func main() { var y = x; }`, "undeclared variable"},
		{`var g; var g; func main() {}`, "duplicate global"},
		{`func f() {} func f() {} func main() {}`, "duplicate procedure"},
		{`var f; func f() {} func main() {}`, "conflicts with a global"},
		{`func main() { var a; var a; }`, "duplicate declaration"},
		{`func main(){ f(); }`, "undefined procedure"},
		{`func f(a) { return a; } func main() { f(); }`, "takes 1 arguments, got 0"},
		{`func main() { break; }`, "'break' outside loop"},
		{`func main() { continue; }`, "'continue' outside loop"},
		{`func main() { main(); }`, "'main' cannot be called"},
		{`func main() { var x = alloc(1, 2); }`, "alloc takes 1 argument"},
		{`func main() { var x = byte(); }`, "byte takes 1 argument"},
		{`func main() { var x = input(5); }`, "input takes no arguments"},
		{`var alloc; func main() {}`, "name is a builtin"},
		{`func byte() {} func main() {}`, "name is a builtin"},
		{`func main() { var input = 3; }`, "name is a builtin"},
	}
	for _, tc := range cases {
		prog, err := Parse(tc.src)
		if err != nil {
			t.Errorf("Parse(%q) failed: %v", tc.src, err)
			continue
		}
		_, err = Check(prog)
		if err == nil {
			t.Errorf("Check(%q) succeeded, want error %q", tc.src, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("Check(%q) error = %q, want substring %q", tc.src, err, tc.wantSub)
		}
	}
}

func TestCheckSiblingScopesDontConflict(t *testing.T) {
	mustCheck(t, `
		func main() {
			if (1) { var t = 1; print(t); } else { var t = 2; print(t); }
			while (0) { var t = 3; print(t); }
		}
	`)
}

func TestCheckParamsAndLocalsListed(t *testing.T) {
	_, info := mustCheck(t, `
		func f(a, b) { var c; return a + b + c; }
		func main() { var r = f(1, 2); print(r); }
	`)
	syms := info.ProcSyms[0]
	if len(syms) != 3 {
		t.Fatalf("proc symbols = %d, want 3", len(syms))
	}
	if syms[0].Kind != SymParam || syms[1].Kind != SymParam || syms[2].Kind != SymLocal {
		t.Errorf("symbol kinds = %v %v %v", syms[0].Kind, syms[1].Kind, syms[2].Kind)
	}
}

func TestSymKindString(t *testing.T) {
	if SymGlobal.String() != "global" || SymParam.String() != "param" || SymLocal.String() != "local" {
		t.Error("SymKind strings wrong")
	}
	if !strings.Contains(SymKind(9).String(), "9") {
		t.Error("unknown SymKind string")
	}
}
