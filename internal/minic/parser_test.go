package minic

import (
	"strings"
	"testing"
	"testing/quick"

	"icbe/internal/pred"
)

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse failed: %v", err)
	}
	return prog
}

func TestParseGlobalsAndProc(t *testing.T) {
	prog := mustParse(t, `
		var g;
		var h = 7;
		var neg = -3;
		func main() { return; }
	`)
	if len(prog.Globals) != 3 {
		t.Fatalf("globals = %d, want 3", len(prog.Globals))
	}
	if prog.Globals[0].HasInit {
		t.Error("g should have no initializer")
	}
	if !prog.Globals[1].HasInit || prog.Globals[1].Init != 7 {
		t.Errorf("h init = %v %d", prog.Globals[1].HasInit, prog.Globals[1].Init)
	}
	if prog.Globals[2].Init != -3 {
		t.Errorf("neg init = %d, want -3", prog.Globals[2].Init)
	}
	if len(prog.Procs) != 1 || prog.Procs[0].Name != "main" {
		t.Fatalf("procs = %v", prog.Procs)
	}
}

func TestParseIfElseChain(t *testing.T) {
	prog := mustParse(t, `
		func main() {
			var x = 1;
			if (x == 0) { x = 1; }
			else if (x < 5) { x = 2; }
			else { x = 3; }
		}
	`)
	body := prog.Procs[0].Body.Stmts
	ifs, ok := body[1].(*IfStmt)
	if !ok {
		t.Fatalf("stmt 1 is %T", body[1])
	}
	if ifs.Cond.Op != pred.Eq {
		t.Errorf("first cond op = %v", ifs.Cond.Op)
	}
	elif, ok := ifs.Else.(*IfStmt)
	if !ok {
		t.Fatalf("else is %T, want *IfStmt", ifs.Else)
	}
	if elif.Cond.Op != pred.Lt {
		t.Errorf("elif cond op = %v", elif.Cond.Op)
	}
	blk, ok := ElseBlock(elif.Else)
	if !ok || len(blk.Stmts) != 1 {
		t.Fatalf("final else not a plain block: %T", elif.Else)
	}
}

func TestParseBareCondition(t *testing.T) {
	prog := mustParse(t, `func main() { var x = 1; while (x) { x = x - 1; } }`)
	w := prog.Procs[0].Body.Stmts[1].(*WhileStmt)
	if w.Cond.Op != pred.Ne {
		t.Errorf("bare cond op = %v, want !=", w.Cond.Op)
	}
	rhs, ok := w.Cond.Rhs.(*NumLit)
	if !ok || rhs.Val != 0 {
		t.Errorf("bare cond rhs = %#v, want 0", w.Cond.Rhs)
	}
}

func TestParsePrecedence(t *testing.T) {
	prog := mustParse(t, `func main() { var x = 1 + 2 * 3 - 4 / 2; }`)
	d := prog.Procs[0].Body.Stmts[0].(*VarDecl)
	// Expect ((1 + (2*3)) - (4/2))
	top, ok := d.Init.(*BinExpr)
	if !ok || top.Op != OpSub {
		t.Fatalf("top = %#v", d.Init)
	}
	l, ok := top.L.(*BinExpr)
	if !ok || l.Op != OpAdd {
		t.Fatalf("left = %#v", top.L)
	}
	lr, ok := l.R.(*BinExpr)
	if !ok || lr.Op != OpMul {
		t.Fatalf("left.right = %#v", l.R)
	}
	r, ok := top.R.(*BinExpr)
	if !ok || r.Op != OpDiv {
		t.Fatalf("right = %#v", top.R)
	}
}

func TestParseParenthesesOverridePrecedence(t *testing.T) {
	prog := mustParse(t, `func main() { var x = (1 + 2) * 3; }`)
	d := prog.Procs[0].Body.Stmts[0].(*VarDecl)
	top, ok := d.Init.(*BinExpr)
	if !ok || top.Op != OpMul {
		t.Fatalf("top = %#v", d.Init)
	}
	if l, ok := top.L.(*BinExpr); !ok || l.Op != OpAdd {
		t.Fatalf("left = %#v", top.L)
	}
}

func TestParseNegation(t *testing.T) {
	prog := mustParse(t, `func main() { var a = -5; var b = -a; }`)
	a := prog.Procs[0].Body.Stmts[0].(*VarDecl)
	if n, ok := a.Init.(*NumLit); !ok || n.Val != -5 {
		t.Errorf("-5 folded to %#v", a.Init)
	}
	b := prog.Procs[0].Body.Stmts[1].(*VarDecl)
	if _, ok := b.Init.(*NegExpr); !ok {
		t.Errorf("-a parsed to %#v", b.Init)
	}
}

func TestParseCallsLoadsStores(t *testing.T) {
	prog := mustParse(t, `
		func get(p, i) { return p[i]; }
		func main() {
			var p = alloc(4);
			p[0] = 10;
			p[1 + 2] = get(p, 0);
			get(p, 1);
			var c = byte(input());
			print(c);
		}
	`)
	body := prog.Procs[1].Body.Stmts
	if _, ok := body[1].(*StoreStmt); !ok {
		t.Errorf("stmt 1 = %T, want store", body[1])
	}
	st := body[2].(*StoreStmt)
	if _, ok := st.Value.(*CallExpr); !ok {
		t.Errorf("store value = %T, want call", st.Value)
	}
	if _, ok := body[3].(*CallStmt); !ok {
		t.Errorf("stmt 3 = %T, want call stmt", body[3])
	}
	decl := body[4].(*VarDecl)
	outer, ok := decl.Init.(*CallExpr)
	if !ok || outer.Name != "byte" {
		t.Fatalf("byte call = %#v", decl.Init)
	}
	if inner, ok := outer.Args[0].(*CallExpr); !ok || inner.Name != "input" {
		t.Errorf("nested input call = %#v", outer.Args[0])
	}
	ret := prog.Procs[0].Body.Stmts[0].(*ReturnStmt)
	if _, ok := ret.Value.(*IndexExpr); !ok {
		t.Errorf("return value = %T, want index", ret.Value)
	}
}

func TestParseBreakContinue(t *testing.T) {
	prog := mustParse(t, `func main() { while (1) { break; continue; } }`)
	w := prog.Procs[0].Body.Stmts[0].(*WhileStmt)
	if _, ok := w.Body.Stmts[0].(*BreakStmt); !ok {
		t.Error("break not parsed")
	}
	if _, ok := w.Body.Stmts[1].(*ContinueStmt); !ok {
		t.Error("continue not parsed")
	}
}

func TestParseCharInExpr(t *testing.T) {
	prog := mustParse(t, `func main() { var c = input(); if (c == 'a') { print(c); } }`)
	ifs := prog.Procs[0].Body.Stmts[1].(*IfStmt)
	rhs := ifs.Cond.Rhs.(*NumLit)
	if rhs.Val != 'a' {
		t.Errorf("char rhs = %d, want %d", rhs.Val, 'a')
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{"var", "expected identifier"},
		{"var x", "expected ';'"},
		{"var x = y;", "global initializer must be a constant"},
		{"func", "expected identifier"},
		{"func f() { if x { } }", "expected '('"},
		{"func f() { x; }", "expected '=', '[' or '('"},
		{"func f() { return 1 }", "expected ';'"},
		{"func f() { var x = ; }", "expected expression"},
		{"blah", "expected 'var' or 'func'"},
		{"func f() { ", "unexpected end of input"},
		{"func f(a b) {}", "expected ')'"},
		{"func f() { x = f(1,; }", "expected expression"},
		{"func f() { p[1 = 2; }", "expected ']'"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error %q", tc.src, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("Parse(%q) error = %q, want substring %q", tc.src, err, tc.wantSub)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("func f() {\n  var x = ;\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.HasPrefix(err.Error(), "2:") {
		t.Errorf("error position = %q, want line 2", err.Error())
	}
}

// TestParserNeverPanics fuzzes the front end with mutated program text:
// any input must either parse or return an error, never panic.
func TestParserNeverPanics(t *testing.T) {
	base := `
		var g = 1;
		func f(a, b) { if (a < b) { return a; } return b; }
		func main() { var x = f(g, input()); while (x > 0) { x = x - 1; } print(x); }
	`
	f := func(pos uint16, repl byte) bool {
		b := []byte(base)
		b[int(pos)%len(b)] = repl
		prog, err := Parse(string(b))
		if err == nil && prog == nil {
			return false
		}
		if err == nil {
			_, cerr := Check(prog)
			_ = cerr
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestParserTruncationsNeverPanic parses every prefix of a valid program.
func TestParserTruncationsNeverPanic(t *testing.T) {
	src := `
		var g = 7;
		func helper(p) { if (p == 0) { return -1; } return p[0]; }
		func main() {
			var q = alloc(3);
			q[0] = 'x';
			print(helper(q));
		}
	`
	for i := 0; i <= len(src); i++ {
		prog, err := Parse(src[:i])
		if err == nil && prog != nil {
			_, _ = Check(prog)
		}
	}
}
