package minic

import "fmt"

// SymKind classifies resolved symbols.
type SymKind int

// Symbol kinds.
const (
	SymGlobal SymKind = iota
	SymParam
	SymLocal
)

func (k SymKind) String() string {
	switch k {
	case SymGlobal:
		return "global"
	case SymParam:
		return "param"
	case SymLocal:
		return "local"
	}
	return fmt.Sprintf("SymKind(%d)", int(k))
}

// Symbol is a resolved variable.
type Symbol struct {
	Name string
	Kind SymKind
	Proc int // procedure index, or -1 for globals
	Pos  Pos
}

// Info is the result of semantic analysis: procedure indices and the
// resolution of every variable reference, ready for IR construction.
type Info struct {
	ProcIdx    map[string]int
	GlobalSyms []*Symbol
	ProcSyms   [][]*Symbol // per procedure: params first, then locals in declaration order

	Uses       map[*VarRef]*Symbol
	DeclSyms   map[*VarDecl]*Symbol
	AssignSyms map[*AssignStmt]*Symbol
	StoreSyms  map[*StoreStmt]*Symbol // resolution of the pointer identifier
	LoadSyms   map[*IndexExpr]*Symbol // resolution of the pointer identifier
}

type checker struct {
	prog *Program
	info *Info

	procIdx   int
	scopes    []map[string]*Symbol // innermost last; scopes[0] is globals
	loopDepth int
	errs      []*Error
	symPool   []Symbol // slab declare hands symbols out of
}

// Check performs semantic analysis on a parsed program. It verifies that a
// `main` procedure with no parameters exists, that all names resolve, that
// calls match procedure arity, and that break/continue appear inside loops.
// The first error encountered in source order is returned.
func Check(prog *Program) (*Info, error) {
	c := &checker{
		prog: prog,
		info: &Info{
			ProcIdx:    make(map[string]int),
			Uses:       make(map[*VarRef]*Symbol),
			DeclSyms:   make(map[*VarDecl]*Symbol),
			AssignSyms: make(map[*AssignStmt]*Symbol),
			StoreSyms:  make(map[*StoreStmt]*Symbol),
			LoadSyms:   make(map[*IndexExpr]*Symbol),
		},
	}
	c.run()
	if len(c.errs) > 0 {
		return nil, c.errs[0]
	}
	return c.info, nil
}

func (c *checker) errorf(pos Pos, format string, args ...interface{}) {
	c.errs = append(c.errs, errf(pos, format, args...))
}

func (c *checker) run() {
	globals := make(map[string]*Symbol)
	for _, g := range c.prog.Globals {
		if IsBuiltin(g.Name) {
			c.errorf(g.Pos, "cannot declare global %q: name is a builtin", g.Name)
			continue
		}
		if _, dup := globals[g.Name]; dup {
			c.errorf(g.Pos, "duplicate global variable %q", g.Name)
			continue
		}
		sym := &Symbol{Name: g.Name, Kind: SymGlobal, Proc: -1, Pos: g.Pos}
		globals[g.Name] = sym
		c.info.GlobalSyms = append(c.info.GlobalSyms, sym)
	}
	c.scopes = []map[string]*Symbol{globals}

	for i, fn := range c.prog.Procs {
		if IsBuiltin(fn.Name) {
			c.errorf(fn.Pos, "cannot define procedure %q: name is a builtin", fn.Name)
		}
		if _, dup := c.info.ProcIdx[fn.Name]; dup {
			c.errorf(fn.Pos, "duplicate procedure %q", fn.Name)
			continue
		}
		if _, isGlobal := globals[fn.Name]; isGlobal {
			c.errorf(fn.Pos, "procedure %q conflicts with a global variable", fn.Name)
		}
		c.info.ProcIdx[fn.Name] = i
	}
	c.info.ProcSyms = make([][]*Symbol, len(c.prog.Procs))

	mainIdx, ok := c.info.ProcIdx["main"]
	if !ok {
		c.errorf(Pos{Line: 1, Col: 1}, "program has no 'main' procedure")
	} else if n := len(c.prog.Procs[mainIdx].Params); n != 0 {
		c.errorf(c.prog.Procs[mainIdx].Pos, "'main' must take no parameters, has %d", n)
	}

	for i, fn := range c.prog.Procs {
		c.procIdx = i
		c.checkProc(fn)
	}
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, make(map[string]*Symbol)) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(name string, kind SymKind, pos Pos) *Symbol {
	top := c.scopes[len(c.scopes)-1]
	if IsBuiltin(name) {
		c.errorf(pos, "cannot declare %q: name is a builtin", name)
	}
	if prev, dup := top[name]; dup {
		c.errorf(pos, "duplicate declaration of %q (previous at %s)", name, prev.Pos)
		return prev
	}
	if len(c.symPool) == 0 {
		c.symPool = make([]Symbol, 64)
	}
	sym := &c.symPool[0]
	c.symPool = c.symPool[1:]
	*sym = Symbol{Name: name, Kind: kind, Proc: c.procIdx, Pos: pos}
	top[name] = sym
	c.info.ProcSyms[c.procIdx] = append(c.info.ProcSyms[c.procIdx], sym)
	return sym
}

func (c *checker) lookup(name string, pos Pos) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if sym, ok := c.scopes[i][name]; ok {
			return sym
		}
	}
	c.errorf(pos, "undeclared variable %q", name)
	// Recover with a fake local so later checks continue.
	return &Symbol{Name: name, Kind: SymLocal, Proc: c.procIdx, Pos: pos}
}

func (c *checker) checkProc(fn *Proc) {
	c.pushScope()
	defer c.popScope()
	for _, prm := range fn.Params {
		c.declare(prm.Name, SymParam, prm.Pos)
	}
	c.checkBlock(fn.Body)
}

func (c *checker) checkBlock(b *Block) {
	c.pushScope()
	defer c.popScope()
	for _, s := range b.Stmts {
		c.checkStmt(s)
	}
}

func (c *checker) checkStmt(s Stmt) {
	switch s := s.(type) {
	case *VarDecl:
		// The initializer is checked in the enclosing scope: `var x = x;`
		// refers to an outer x.
		if s.Init != nil {
			c.checkExpr(s.Init)
		}
		c.info.DeclSyms[s] = c.declare(s.Name, SymLocal, s.Pos)
	case *AssignStmt:
		c.checkExpr(s.Value)
		c.info.AssignSyms[s] = c.lookup(s.Name, s.Pos)
	case *StoreStmt:
		c.info.StoreSyms[s] = c.lookup(s.Ptr, s.Pos)
		c.checkExpr(s.Index)
		c.checkExpr(s.Value)
	case *CallStmt:
		c.checkCall(s.Call, true)
	case *IfStmt:
		c.checkCond(s.Cond)
		c.checkBlock(s.Then)
		if s.Else != nil {
			if blk, ok := ElseBlock(s.Else); ok {
				c.checkBlock(blk)
			} else {
				c.checkStmt(s.Else)
			}
		}
	case *WhileStmt:
		c.checkCond(s.Cond)
		c.loopDepth++
		c.checkBlock(s.Body)
		c.loopDepth--
	case *ReturnStmt:
		if s.Value != nil {
			c.checkExpr(s.Value)
		}
	case *BreakStmt:
		if c.loopDepth == 0 {
			c.errorf(s.Pos, "'break' outside loop")
		}
	case *ContinueStmt:
		if c.loopDepth == 0 {
			c.errorf(s.Pos, "'continue' outside loop")
		}
	case *PrintStmt:
		c.checkExpr(s.Value)
	default:
		// The front end consumes untrusted source: an AST node this
		// checker does not know (a parser extension it was not taught, a
		// hand-built tree) must surface as a source error, never crash
		// the process.
		c.errorf(s.Position(), "unsupported statement %T", s)
	}
}

func (c *checker) checkCond(cd *Cond) {
	c.checkExpr(cd.Lhs)
	c.checkExpr(cd.Rhs)
}

func (c *checker) checkExpr(e Expr) {
	switch e := e.(type) {
	case *NumLit:
	case *VarRef:
		c.info.Uses[e] = c.lookup(e.Name, e.Pos)
	case *BinExpr:
		c.checkExpr(e.L)
		c.checkExpr(e.R)
	case *NegExpr:
		c.checkExpr(e.X)
	case *CallExpr:
		c.checkCall(e, false)
	case *IndexExpr:
		c.info.LoadSyms[e] = c.lookup(e.Ptr, e.Pos)
		c.checkExpr(e.Index)
	default:
		c.errorf(e.Position(), "unsupported expression %T", e)
	}
}

func (c *checker) checkCall(call *CallExpr, isStmt bool) {
	for _, a := range call.Args {
		c.checkExpr(a)
	}
	switch call.Name {
	case BuiltinAlloc:
		if len(call.Args) != 1 {
			c.errorf(call.Pos, "alloc takes 1 argument, got %d", len(call.Args))
		}
		return
	case BuiltinByte:
		if len(call.Args) != 1 {
			c.errorf(call.Pos, "byte takes 1 argument, got %d", len(call.Args))
		}
		return
	case BuiltinInput:
		if len(call.Args) != 0 {
			c.errorf(call.Pos, "input takes no arguments, got %d", len(call.Args))
		}
		return
	}
	idx, ok := c.info.ProcIdx[call.Name]
	if !ok {
		c.errorf(call.Pos, "call to undefined procedure %q", call.Name)
		return
	}
	fn := c.prog.Procs[idx]
	if len(call.Args) != len(fn.Params) {
		c.errorf(call.Pos, "procedure %q takes %d arguments, got %d",
			call.Name, len(fn.Params), len(call.Args))
	}
	if call.Name == "main" {
		c.errorf(call.Pos, "'main' cannot be called")
	}
	_ = isStmt
}
