package minic

import (
	"icbe/internal/pred"
)

// Parser is a recursive-descent parser for MiniC.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a complete MiniC program from source text.
func Parse(src string) (*Program, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseProgram()
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(k TokKind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k TokKind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k TokKind) (Token, error) {
	if !p.at(k) {
		return Token{}, errf(p.cur().Pos, "expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *Parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for !p.at(TokEOF) {
		switch p.cur().Kind {
		case TokVar:
			g, err := p.parseGlobal()
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, g)
		case TokFunc:
			fn, err := p.parseProc()
			if err != nil {
				return nil, err
			}
			prog.Procs = append(prog.Procs, fn)
		default:
			return nil, errf(p.cur().Pos, "expected 'var' or 'func' at top level, found %s", p.cur())
		}
	}
	return prog, nil
}

func (p *Parser) parseGlobal() (*Global, error) {
	kw := p.next() // 'var'
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	g := &Global{Name: name.Text, Pos: kw.Pos}
	if p.accept(TokAssign) {
		neg := p.accept(TokMinus)
		num := p.cur()
		if num.Kind != TokNumber && num.Kind != TokChar {
			return nil, errf(num.Pos, "global initializer must be a constant, found %s", num)
		}
		p.next()
		g.HasInit = true
		g.Init = num.Val
		if neg {
			g.Init = -g.Init
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return g, nil
}

func (p *Parser) parseProc() (*Proc, error) {
	kw := p.next() // 'func'
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	fn := &Proc{Name: name.Text, Pos: kw.Pos}
	if !p.at(TokRParen) {
		for {
			pn, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			fn.Params = append(fn.Params, Param{Name: pn.Text, Pos: pn.Pos})
			if !p.accept(TokComma) {
				break
			}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *Parser) parseBlock() (*Block, error) {
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	b := &Block{Stmts: make([]Stmt, 0, 4)}
	for !p.at(TokRBrace) {
		if p.at(TokEOF) {
			return nil, errf(p.cur().Pos, "unexpected end of input inside block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // '}'
	return b, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch p.cur().Kind {
	case TokVar:
		return p.parseVarDecl()
	case TokIf:
		return p.parseIf()
	case TokWhile:
		return p.parseWhile()
	case TokReturn:
		kw := p.next()
		s := &ReturnStmt{Pos: kw.Pos}
		if !p.at(TokSemi) {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.Value = e
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return s, nil
	case TokBreak:
		kw := p.next()
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: kw.Pos}, nil
	case TokContinue:
		kw := p.next()
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: kw.Pos}, nil
	case TokPrint:
		kw := p.next()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &PrintStmt{Value: e, Pos: kw.Pos}, nil
	case TokIdent:
		return p.parseSimpleStmt()
	}
	return nil, errf(p.cur().Pos, "expected statement, found %s", p.cur())
}

func (p *Parser) parseVarDecl() (Stmt, error) {
	kw := p.next() // 'var'
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	d := &VarDecl{Name: name.Text, Pos: kw.Pos}
	if p.accept(TokAssign) {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = e
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return d, nil
}

// parseSimpleStmt parses statements starting with an identifier:
// assignment, store, or call statement.
func (p *Parser) parseSimpleStmt() (Stmt, error) {
	name := p.next()
	switch p.cur().Kind {
	case TokAssign:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &AssignStmt{Name: name.Text, Value: e, Pos: name.Pos}, nil

	case TokLBracket:
		p.next()
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokAssign); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &StoreStmt{Ptr: name.Text, Index: idx, Value: val, Pos: name.Pos}, nil

	case TokLParen:
		call, err := p.parseCallRest(name)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &CallStmt{Call: call, Pos: name.Pos}, nil
	}
	return nil, errf(p.cur().Pos, "expected '=', '[' or '(' after identifier %q, found %s", name.Text, p.cur())
}

func (p *Parser) parseIf() (Stmt, error) {
	kw := p.next() // 'if'
	cond, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Cond: cond, Then: then, Pos: kw.Pos}
	if p.accept(TokElse) {
		if p.at(TokIf) {
			elif, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			s.Else = elif
		} else {
			blk, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			s.Else = &elseBlock{blk: blk}
		}
	}
	return s, nil
}

// elseBlock adapts a plain else block to the Stmt interface.
type elseBlock struct{ blk *Block }

func (*elseBlock) stmt() {}

// Position returns the position of the first statement in the block, or a
// zero position for an empty block.
func (e *elseBlock) Position() Pos {
	if len(e.blk.Stmts) > 0 {
		return e.blk.Stmts[0].Position()
	}
	return Pos{}
}

// ElseBlock extracts the block of a plain else branch, if s is one.
func ElseBlock(s Stmt) (*Block, bool) {
	if eb, ok := s.(*elseBlock); ok {
		return eb.blk, true
	}
	return nil, false
}

func (p *Parser) parseWhile() (Stmt, error) {
	kw := p.next() // 'while'
	cond, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Pos: kw.Pos}, nil
}

func relopOf(k TokKind) (pred.Op, bool) {
	switch k {
	case TokEq:
		return pred.Eq, true
	case TokNe:
		return pred.Ne, true
	case TokLt:
		return pred.Lt, true
	case TokLe:
		return pred.Le, true
	case TokGt:
		return pred.Gt, true
	case TokGe:
		return pred.Ge, true
	}
	return 0, false
}

// parseCond parses a parenthesized condition `(lhs relop rhs)` or `(expr)`
// which is shorthand for `(expr != 0)`.
func (p *Parser) parseCond() (*Cond, error) {
	lp, err := p.expect(TokLParen)
	if err != nil {
		return nil, err
	}
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	c := &Cond{Lhs: lhs, Pos: lp.Pos}
	if op, ok := relopOf(p.cur().Kind); ok {
		p.next()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Op = op
		c.Rhs = rhs
	} else {
		c.Op = pred.Ne
		c.Rhs = &NumLit{Val: 0, Pos: lp.Pos}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return c, nil
}

// Expression grammar:
//
//	expr    := mulexpr (("+"|"-") mulexpr)*
//	mulexpr := unary (("*"|"/"|"%") unary)*
//	unary   := "-" unary | primary
//	primary := number | char | ident | ident "(" args ")" | ident "[" expr "]" | "(" expr ")"
func (p *Parser) parseExpr() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch p.cur().Kind {
		case TokPlus:
			op = OpAdd
		case TokMinus:
			op = OpSub
		default:
			return l, nil
		}
		opTok := p.next()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r, Pos: opTok.Pos}
	}
}

func (p *Parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch p.cur().Kind {
		case TokStar:
			op = OpMul
		case TokSlash:
			op = OpDiv
		case TokPercent:
			op = OpMod
		default:
			return l, nil
		}
		opTok := p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r, Pos: opTok.Pos}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.at(TokMinus) {
		minus := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if n, ok := x.(*NumLit); ok {
			return &NumLit{Val: -n.Val, Pos: minus.Pos}, nil
		}
		return &NegExpr{X: x, Pos: minus.Pos}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch p.cur().Kind {
	case TokNumber, TokChar:
		t := p.next()
		return &NumLit{Val: t.Val, Pos: t.Pos}, nil
	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokIdent:
		name := p.next()
		switch p.cur().Kind {
		case TokLParen:
			return p.parseCallRest(name)
		case TokLBracket:
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			return &IndexExpr{Ptr: name.Text, Index: idx, Pos: name.Pos}, nil
		}
		return &VarRef{Name: name.Text, Pos: name.Pos}, nil
	}
	return nil, errf(p.cur().Pos, "expected expression, found %s", p.cur())
}

// parseCallRest parses the argument list after `name(`'s identifier; the
// opening parenthesis has not yet been consumed.
func (p *Parser) parseCallRest(name Token) (*CallExpr, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	call := &CallExpr{Name: name.Text, Pos: name.Pos}
	if !p.at(TokRParen) {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, a)
			if !p.accept(TokComma) {
				break
			}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return call, nil
}
