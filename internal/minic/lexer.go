package minic

import (
	"strconv"
)

// Lexer turns MiniC source text into a token stream. It tracks line/column
// positions and reports malformed input through *Error values.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (lx *Lexer) pos() Pos { return Pos{Line: int32(lx.line), Col: int32(lx.col)} }

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

// skipSpace consumes whitespace and comments; it returns an error for an
// unterminated block comment.
func (lx *Lexer) skipSpace() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			// Batch non-newline whitespace runs: bump the column once.
			end := lx.off
			for end < len(lx.src) {
				if b := lx.src[end]; b != ' ' && b != '\t' && b != '\r' {
					break
				}
				end++
			}
			lx.col += end - lx.off
			lx.off = end
		case c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return errf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token, or an error for malformed input. At end of
// input it returns a TokEOF token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpace(); err != nil {
		return Token{}, err
	}
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := lx.peek()
	switch {
	case isIdentStart(c):
		// Identifiers contain no newlines, so scan the run directly and
		// bump the column once instead of per character.
		start := lx.off
		end := start
		for end < len(lx.src) && isIdentCont(lx.src[end]) {
			end++
		}
		lx.col += end - lx.off
		lx.off = end
		text := lx.src[start:end]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: pos}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: pos}, nil

	case isDigit(c):
		start := lx.off
		end := start
		for end < len(lx.src) && isDigit(lx.src[end]) {
			end++
		}
		lx.col += end - lx.off
		lx.off = end
		if lx.off < len(lx.src) && isIdentStart(lx.peek()) {
			return Token{}, errf(pos, "malformed number: identifier character %q after digits", lx.peek())
		}
		text := lx.src[start:lx.off]
		v, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Token{}, errf(pos, "number %s out of range", text)
		}
		return Token{Kind: TokNumber, Text: text, Val: v, Pos: pos}, nil

	case c == '\'':
		lx.advance()
		if lx.off >= len(lx.src) {
			return Token{}, errf(pos, "unterminated character literal")
		}
		ch := lx.advance()
		if ch == '\\' {
			if lx.off >= len(lx.src) {
				return Token{}, errf(pos, "unterminated character literal")
			}
			esc := lx.advance()
			switch esc {
			case 'n':
				ch = '\n'
			case 't':
				ch = '\t'
			case 'r':
				ch = '\r'
			case '0':
				ch = 0
			case '\\':
				ch = '\\'
			case '\'':
				ch = '\''
			default:
				return Token{}, errf(pos, "unknown escape sequence '\\%c'", esc)
			}
		}
		if lx.off >= len(lx.src) || lx.peek() != '\'' {
			return Token{}, errf(pos, "unterminated character literal")
		}
		lx.advance()
		return Token{Kind: TokChar, Text: string(ch), Val: int64(ch), Pos: pos}, nil
	}

	lx.advance()
	two := func(second byte, with, without TokKind) (Token, error) {
		if lx.off < len(lx.src) && lx.peek() == second {
			lx.advance()
			return Token{Kind: with, Pos: pos}, nil
		}
		return Token{Kind: without, Pos: pos}, nil
	}
	switch c {
	case '(':
		return Token{Kind: TokLParen, Pos: pos}, nil
	case ')':
		return Token{Kind: TokRParen, Pos: pos}, nil
	case '{':
		return Token{Kind: TokLBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: TokRBrace, Pos: pos}, nil
	case '[':
		return Token{Kind: TokLBracket, Pos: pos}, nil
	case ']':
		return Token{Kind: TokRBracket, Pos: pos}, nil
	case ',':
		return Token{Kind: TokComma, Pos: pos}, nil
	case ';':
		return Token{Kind: TokSemi, Pos: pos}, nil
	case '+':
		return Token{Kind: TokPlus, Pos: pos}, nil
	case '-':
		return Token{Kind: TokMinus, Pos: pos}, nil
	case '*':
		return Token{Kind: TokStar, Pos: pos}, nil
	case '/':
		return Token{Kind: TokSlash, Pos: pos}, nil
	case '%':
		return Token{Kind: TokPercent, Pos: pos}, nil
	case '=':
		return two('=', TokEq, TokAssign)
	case '!':
		tok, err := two('=', TokNe, TokEOF)
		if err == nil && tok.Kind == TokEOF {
			return Token{}, errf(pos, "unexpected character '!'")
		}
		return tok, err
	case '<':
		return two('=', TokLe, TokLt)
	case '>':
		return two('=', TokGe, TokGt)
	}
	return Token{}, errf(pos, "unexpected character %q", c)
}

// LexAll tokenizes the entire source, returning the tokens including the
// trailing EOF token.
func LexAll(src string) ([]Token, error) {
	lx := NewLexer(src)
	// Minic averages under four bytes per token; one sized allocation
	// replaces the append-growth copies on every build.
	toks := make([]Token, 0, len(src)/3+16)
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
