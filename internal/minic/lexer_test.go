package minic

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []TokKind {
	out := make([]TokKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := LexAll("var x = 42; // comment\nfunc f(a, b) { return a + b; }")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{
		TokVar, TokIdent, TokAssign, TokNumber, TokSemi,
		TokFunc, TokIdent, TokLParen, TokIdent, TokComma, TokIdent, TokRParen,
		TokLBrace, TokReturn, TokIdent, TokPlus, TokIdent, TokSemi, TokRBrace,
		TokEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
	if toks[3].Val != 42 {
		t.Errorf("number value = %d, want 42", toks[3].Val)
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := LexAll("== != < <= > >= = + - * / %")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokEq, TokNe, TokLt, TokLe, TokGt, TokGe, TokAssign,
		TokPlus, TokMinus, TokStar, TokSlash, TokPercent, TokEOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexCharLiterals(t *testing.T) {
	cases := map[string]int64{
		"'a'":   'a',
		"'\\n'": '\n',
		"'\\t'": '\t',
		"'\\0'": 0,
		"'\\''": '\'',
		"' '":   ' ',
	}
	for src, want := range cases {
		toks, err := LexAll(src)
		if err != nil {
			t.Errorf("LexAll(%q): %v", src, err)
			continue
		}
		if toks[0].Kind != TokChar || toks[0].Val != want {
			t.Errorf("LexAll(%q) = %v val %d, want char %d", src, toks[0].Kind, toks[0].Val, want)
		}
	}
}

func TestLexBlockComment(t *testing.T) {
	toks, err := LexAll("a /* ignore \n all this */ b")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Errorf("block comment not skipped: %v", toks)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := LexAll("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{2, 3}) {
		t.Errorf("b at %v, want 2:3", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{"@", "unexpected character"},
		{"!x", "unexpected character '!'"},
		{"123abc", "malformed number"},
		{"99999999999999999999", "out of range"},
		{"'ab'", "unterminated character literal"},
		{"'\\q'", "unknown escape"},
		{"'", "unterminated character literal"},
		{"/* never closed", "unterminated block comment"},
	}
	for _, tc := range cases {
		_, err := LexAll(tc.src)
		if err == nil {
			t.Errorf("LexAll(%q) succeeded, want error containing %q", tc.src, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("LexAll(%q) error = %q, want substring %q", tc.src, err, tc.wantSub)
		}
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks, err := LexAll("ifx if while0 while returned return")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokIdent, TokIf, TokIdent, TokWhile, TokIdent, TokReturn, TokEOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTokenString(t *testing.T) {
	toks, _ := LexAll("x 5 'c' +")
	if s := toks[0].String(); !strings.Contains(s, "x") {
		t.Errorf("ident token string = %q", s)
	}
	if s := toks[1].String(); !strings.Contains(s, "5") {
		t.Errorf("number token string = %q", s)
	}
	if s := toks[2].String(); !strings.Contains(s, "c") {
		t.Errorf("char token string = %q", s)
	}
	if s := toks[3].String(); s != "'+'" {
		t.Errorf("plus token string = %q", s)
	}
}
