// Package minic implements the front end for MiniC, the small C-like
// language used as the compiler substrate for the ICBE reproduction. MiniC
// has int64-valued variables, procedures with value parameters and a single
// return value, globals, if/while control flow, and heap access through
// builtins (alloc, indexed load/store, byte). The front end produces an AST
// that internal/ir lowers onto the interprocedural control flow graph.
package minic

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokChar // character literal 'a'

	// Keywords.
	TokVar
	TokFunc
	TokIf
	TokElse
	TokWhile
	TokReturn
	TokBreak
	TokContinue
	TokPrint

	// Punctuation and operators.
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokComma
	TokSemi
	TokAssign // =
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokEq // ==
	TokNe // !=
	TokLt // <
	TokLe // <=
	TokGt // >
	TokGe // >=
)

var tokNames = map[TokKind]string{
	TokEOF:      "end of input",
	TokIdent:    "identifier",
	TokNumber:   "number",
	TokChar:     "character literal",
	TokVar:      "'var'",
	TokFunc:     "'func'",
	TokIf:       "'if'",
	TokElse:     "'else'",
	TokWhile:    "'while'",
	TokReturn:   "'return'",
	TokBreak:    "'break'",
	TokContinue: "'continue'",
	TokPrint:    "'print'",
	TokLParen:   "'('",
	TokRParen:   "')'",
	TokLBrace:   "'{'",
	TokRBrace:   "'}'",
	TokLBracket: "'['",
	TokRBracket: "']'",
	TokComma:    "','",
	TokSemi:     "';'",
	TokAssign:   "'='",
	TokPlus:     "'+'",
	TokMinus:    "'-'",
	TokStar:     "'*'",
	TokSlash:    "'/'",
	TokPercent:  "'%'",
	TokEq:       "'=='",
	TokNe:       "'!='",
	TokLt:       "'<'",
	TokLe:       "'<='",
	TokGt:       "'>'",
	TokGe:       "'>='",
}

func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokKind(%d)", int(k))
}

var keywords = map[string]TokKind{
	"var":      TokVar,
	"func":     TokFunc,
	"if":       TokIf,
	"else":     TokElse,
	"while":    TokWhile,
	"return":   TokReturn,
	"break":    TokBreak,
	"continue": TokContinue,
	"print":    TokPrint,
}

// Pos is a source position (1-based line and column). int32 keeps Token
// at 32 bytes (tokens are the front end's largest allocation).
type Pos struct {
	Line, Col int32
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexical token with its source position. Field order is
// size-descending to minimize padding.
type Token struct {
	Text string // identifier text or number literal text
	Val  int64  // value for TokNumber / TokChar
	Pos  Pos
	Kind TokKind
}

func (t Token) String() string {
	switch t.Kind {
	case TokIdent:
		return fmt.Sprintf("identifier %q", t.Text)
	case TokNumber:
		return fmt.Sprintf("number %s", t.Text)
	case TokChar:
		return fmt.Sprintf("character %q", rune(t.Val))
	}
	return t.Kind.String()
}

// Error is a front-end diagnostic carrying a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...interface{}) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
