package minic

import (
	"strings"
	"testing"
)

// bogusStmt and bogusExpr stand in for AST nodes the checker was never
// taught — a parser extension or a hand-built tree. The checker must report
// them as source errors, never panic (the front end consumes untrusted
// input).
type bogusStmt struct{}

func (bogusStmt) stmt()         {}
func (bogusStmt) Position() Pos { return Pos{Line: 3, Col: 7} }

type bogusExpr struct{}

func (bogusExpr) expr()         {}
func (bogusExpr) Position() Pos { return Pos{Line: 4, Col: 1} }

func TestCheckUnknownStmtIsErrorNotPanic(t *testing.T) {
	prog := &Program{Procs: []*Proc{{
		Name: "main",
		Body: &Block{Stmts: []Stmt{bogusStmt{}}},
	}}}
	_, err := Check(prog)
	if err == nil {
		t.Fatal("Check accepted an unknown statement node")
	}
	if !strings.Contains(err.Error(), "unsupported statement") {
		t.Fatalf("error %q does not name the unsupported statement", err)
	}
	if !strings.Contains(err.Error(), "3:7") {
		t.Fatalf("error %q lost the node position", err)
	}
}

func TestCheckUnknownExprIsErrorNotPanic(t *testing.T) {
	prog := &Program{Procs: []*Proc{{
		Name: "main",
		Body: &Block{Stmts: []Stmt{&PrintStmt{Value: bogusExpr{}}}},
	}}}
	_, err := Check(prog)
	if err == nil {
		t.Fatal("Check accepted an unknown expression node")
	}
	if !strings.Contains(err.Error(), "unsupported expression") {
		t.Fatalf("error %q does not name the unsupported expression", err)
	}
	if !strings.Contains(err.Error(), "4:1") {
		t.Fatalf("error %q lost the node position", err)
	}
}
