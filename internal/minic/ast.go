package minic

import "icbe/internal/pred"

// Program is a parsed MiniC compilation unit.
type Program struct {
	Globals []*Global
	Procs   []*Proc
}

// Global is a global variable declaration with an optional constant
// initializer (default 0).
type Global struct {
	Name    string
	HasInit bool
	Init    int64
	Pos     Pos
}

// Proc is a procedure definition. Every procedure may return a value with
// `return expr;`; a bare `return;` (or falling off the end) returns 0.
type Proc struct {
	Name   string
	Params []Param
	Body   *Block
	Pos    Pos
}

// Param is a formal parameter (passed by value).
type Param struct {
	Name string
	Pos  Pos
}

// Block is a brace-delimited statement sequence with its own scope.
type Block struct {
	Stmts []Stmt
}

// Stmt is implemented by all statement nodes.
type Stmt interface {
	stmt()
	Position() Pos
}

// VarDecl declares a local variable with an optional initializer.
type VarDecl struct {
	Name string
	Init Expr // nil means zero
	Pos  Pos
}

// AssignStmt assigns the value of an expression to a variable.
type AssignStmt struct {
	Name  string
	Value Expr
	Pos   Pos
}

// StoreStmt writes to the heap: ptr[index] = value.
type StoreStmt struct {
	Ptr   string
	Index Expr
	Value Expr
	Pos   Pos
}

// CallStmt invokes a procedure for effect, discarding any result.
type CallStmt struct {
	Call *CallExpr
	Pos  Pos
}

// IfStmt is a two-way conditional; Else is nil, a *Block, or an *IfStmt
// (for `else if` chains).
type IfStmt struct {
	Cond *Cond
	Then *Block
	Else Stmt
	Pos  Pos
}

// WhileStmt is a pre-tested loop.
type WhileStmt struct {
	Cond *Cond
	Body *Block
	Pos  Pos
}

// ReturnStmt leaves the current procedure, optionally with a value.
type ReturnStmt struct {
	Value Expr // nil means return 0
	Pos   Pos
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt jumps to the innermost loop's condition.
type ContinueStmt struct{ Pos Pos }

// PrintStmt appends a value to the program output.
type PrintStmt struct {
	Value Expr
	Pos   Pos
}

func (*VarDecl) stmt()      {}
func (*AssignStmt) stmt()   {}
func (*StoreStmt) stmt()    {}
func (*CallStmt) stmt()     {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*ReturnStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}
func (*PrintStmt) stmt()    {}

// Position returns the statement's source position.
func (s *VarDecl) Position() Pos      { return s.Pos }
func (s *AssignStmt) Position() Pos   { return s.Pos }
func (s *StoreStmt) Position() Pos    { return s.Pos }
func (s *CallStmt) Position() Pos     { return s.Pos }
func (s *IfStmt) Position() Pos       { return s.Pos }
func (s *WhileStmt) Position() Pos    { return s.Pos }
func (s *ReturnStmt) Position() Pos   { return s.Pos }
func (s *BreakStmt) Position() Pos    { return s.Pos }
func (s *ContinueStmt) Position() Pos { return s.Pos }
func (s *PrintStmt) Position() Pos    { return s.Pos }

// Cond is a branch condition `lhs relop rhs`. A bare expression condition
// `if (e)` parses as `e != 0`.
type Cond struct {
	Lhs Expr
	Op  pred.Op
	Rhs Expr
	Pos Pos
}

// Expr is implemented by all expression nodes.
type Expr interface {
	expr()
	Position() Pos
}

// NumLit is an integer or character literal.
type NumLit struct {
	Val int64
	Pos Pos
}

// VarRef names a variable.
type VarRef struct {
	Name string
	Pos  Pos
}

// BinOp enumerates arithmetic operators.
type BinOp int

// Arithmetic operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
)

func (o BinOp) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	}
	return "?"
}

// BinExpr is a binary arithmetic expression.
type BinExpr struct {
	Op   BinOp
	L, R Expr
	Pos  Pos
}

// NegExpr is arithmetic negation.
type NegExpr struct {
	X   Expr
	Pos Pos
}

// CallExpr invokes a procedure or builtin for a value. The builtins are
// alloc(n), byte(x), and input().
type CallExpr struct {
	Name string
	Args []Expr
	Pos  Pos
}

// IndexExpr is a heap load `ptr[index]`.
type IndexExpr struct {
	Ptr   string
	Index Expr
	Pos   Pos
}

func (*NumLit) expr()    {}
func (*VarRef) expr()    {}
func (*BinExpr) expr()   {}
func (*NegExpr) expr()   {}
func (*CallExpr) expr()  {}
func (*IndexExpr) expr() {}

// Position returns the expression's source position.
func (e *NumLit) Position() Pos    { return e.Pos }
func (e *VarRef) Position() Pos    { return e.Pos }
func (e *BinExpr) Position() Pos   { return e.Pos }
func (e *NegExpr) Position() Pos   { return e.Pos }
func (e *CallExpr) Position() Pos  { return e.Pos }
func (e *IndexExpr) Position() Pos { return e.Pos }

// Builtin names reserved by the language.
const (
	BuiltinAlloc = "alloc"
	BuiltinByte  = "byte"
	BuiltinInput = "input"
)

// IsBuiltin reports whether name is a reserved builtin procedure name.
func IsBuiltin(name string) bool {
	switch name {
	case BuiltinAlloc, BuiltinByte, BuiltinInput:
		return true
	}
	return false
}
