package minic

import "testing"

// FuzzParse throws arbitrary bytes at the MiniC front end. The parser and
// checker consume untrusted source: any input may be rejected with an
// error, none may panic. (Fault isolation for the front end is this plus
// the recover at the public Compile boundary.)
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"func main() { }",
		"func main() { print(1); }",
		"var g = 3; func main() { if (g == 3) { print(g); } }",
		"func f(a, b) { return a + b; } func main() { print(f(1, 2)); }",
		"func main() { var i = 0; while (i < 10) { i = i + 1; } print(i); }",
		"func main() { var p = alloc(4); p[0] = 7; print(p[0]); }",
		"func main() { print(input()); }",
		"func main() { if (1 ==",
		"func main() { var x = ((((1)))); }",
		"var", "func", "{}", ";;;", "0",
		"func main() { break; }",
		"func main() { print(1/0); }",
		"func main(x) { }",
		"func f() {} func f() {} func main() {}",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		prog, err := Parse(src)
		if err != nil {
			return
		}
		// Parsed successfully: the checker must also finish without
		// panicking, whatever it decides.
		_, _ = Check(prog)
	})
}
