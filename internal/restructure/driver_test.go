package restructure

import (
	"reflect"
	"testing"

	"icbe/internal/analysis"
	"icbe/internal/ir"
	"icbe/internal/progs"
)

// stripWall zeroes the fields of a driver result that legitimately vary
// between runs (wall-clock durations, worker count), leaving everything a
// determinism comparison should cover.
func stripWall(r *DriverResult) *DriverResult {
	r.Stats.Workers = 0
	r.Stats.AnalysisWall = 0
	r.Stats.ApplyWall = 0
	return r
}

// TestDriverSerialParallelDeterminism is the tentpole's correctness bar:
// Workers=1 and Workers=N must produce byte-identical optimized programs and
// equal reports on every benchmark workload, in both analysis modes.
func TestDriverSerialParallelDeterminism(t *testing.T) {
	for _, w := range progs.All() {
		for _, mode := range []struct {
			name string
			opts analysis.Options
		}{
			{"inter", analysis.Options{Interprocedural: true, ModSummaries: true, TerminationLimit: 1000}},
			{"intra", analysis.Options{Interprocedural: false, ModSummaries: true, TerminationLimit: 1000}},
		} {
			p, err := ir.Build(w.Source)
			if err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
			base := DriverOptions{Analysis: mode.opts, MaxDuplication: 100}

			serialOpts := base
			serialOpts.Workers = 1
			serial := stripWall(Optimize(p, serialOpts))
			serialDump := serial.Program.Dump()
			serial.Program = nil

			for _, workers := range []int{4, -1} {
				parOpts := base
				parOpts.Workers = workers
				par := stripWall(Optimize(p, parOpts))
				if pd := par.Program.Dump(); pd != serialDump {
					t.Errorf("%s/%s: optimized program differs between Workers=1 and Workers=%d",
						w.Name, mode.name, workers)
					continue
				}
				par.Program = nil
				if !reflect.DeepEqual(serial, par) {
					t.Errorf("%s/%s: reports differ between Workers=1 and Workers=%d:\n serial %+v\n par    %+v",
						w.Name, mode.name, workers, serial, par)
				}
			}
		}
	}
}

// TestDriverDeterministicAcrossRuns guards against map-iteration order
// leaking into the requeue order: repeated runs must agree exactly.
func TestDriverDeterministicAcrossRuns(t *testing.T) {
	w := progs.ByName("stdio")
	if w == nil {
		t.Fatal("stdio workload missing")
	}
	opts := DriverOptions{Analysis: analysis.DefaultOptions(), MaxDuplication: 100, Workers: 2}
	var firstDump string
	var first *DriverResult
	for i := 0; i < 3; i++ {
		p, err := ir.Build(w.Source)
		if err != nil {
			t.Fatal(err)
		}
		r := stripWall(Optimize(p, opts))
		d := r.Program.Dump()
		r.Program = nil
		if i == 0 {
			firstDump, first = d, r
			continue
		}
		if d != firstDump {
			t.Fatalf("run %d: optimized program differs from run 0", i)
		}
		if !reflect.DeepEqual(first, r) {
			t.Fatalf("run %d: reports differ from run 0", i)
		}
	}
}

// TestDriverTruncationReporting covers the silent-truncation fix: every
// conditional still queued when MaxWork is exhausted must surface as a
// Skipped report and raise Truncated, instead of vanishing.
func TestDriverTruncationReporting(t *testing.T) {
	p, err := ir.Build(`
		func main() {
			var a = 0;
			var b = 0;
			var c = 0;
			var d = 0;
			if (a == 0) { print(1); }
			if (b == 0) { print(2); }
			if (c == 0) { print(3); }
			if (d == 0) { print(4); }
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	nconds := 0
	p.LiveNodes(func(n *ir.Node) {
		if n.Kind == ir.NBranch {
			nconds++
		}
	})
	if nconds != 4 {
		t.Fatalf("want 4 conditionals, got %d", nconds)
	}

	r := Optimize(p, DriverOptions{Analysis: analysis.DefaultOptions(), MaxWork: 1})
	if !r.Truncated {
		t.Error("Truncated not set with MaxWork=1")
	}
	var analyzed, skipped int
	for _, c := range r.Reports {
		if c.Skipped {
			skipped++
			if c.Applied || c.Answers != 0 || c.PairsProcessed != 0 {
				t.Errorf("skipped report carries analysis results: %+v", c)
			}
		} else {
			analyzed++
		}
	}
	if analyzed != 1 {
		t.Errorf("analyzed %d conditionals, want 1 (MaxWork=1)", analyzed)
	}
	// Nothing dropped silently: the one processed branch is eliminated
	// (no surviving copies), the other three are reported skipped.
	if skipped != 3 {
		t.Errorf("skipped %d conditionals, want 3\nreports: %+v", skipped, r.Reports)
	}

	// Without a cap nothing is truncated on the same program.
	r2 := Optimize(p, DriverOptions{Analysis: analysis.DefaultOptions()})
	if r2.Truncated {
		t.Error("Truncated set without a work cap")
	}
	for _, c := range r2.Reports {
		if c.Skipped {
			t.Errorf("skipped report without a work cap: %+v", c)
		}
	}
}

// TestDriverStatsAccounting checks the clone-avoidance bookkeeping: one
// defensive clone plus one per attempted restructuring, an avoided clone for
// every analyzed-but-rejected conditional, and analyses = reported analyses
// + invalidation re-analyses.
func TestDriverStatsAccounting(t *testing.T) {
	for _, w := range progs.All() {
		p, err := ir.Build(w.Source)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		// A small duplication limit forces rejections, so clone avoidance
		// must show up.
		r := Optimize(p, DriverOptions{Analysis: analysis.DefaultOptions(), MaxDuplication: 10})
		s := r.Stats
		var attempted, avoided, analyzed int
		for _, c := range r.Reports {
			if c.Skipped || !c.Analyzable {
				continue
			}
			analyzed++
			if c.Applied || c.Err != nil {
				attempted++
			} else {
				avoided++
			}
		}
		if s.Clones != 1+attempted {
			t.Errorf("%s: Clones = %d, want 1+%d attempts", w.Name, s.Clones, attempted)
		}
		if s.ClonesAvoided != avoided {
			t.Errorf("%s: ClonesAvoided = %d, want %d", w.Name, s.ClonesAvoided, avoided)
		}
		if s.Analyses != analyzed+s.Reanalyses {
			t.Errorf("%s: Analyses = %d, want %d reported + %d re-analyses",
				w.Name, s.Analyses, analyzed, s.Reanalyses)
		}
		if s.Rounds < 1 || s.Workers != 1 {
			t.Errorf("%s: implausible stats %+v", w.Name, s)
		}
		if analyzed > 0 && s.Clones >= s.Analyses+1 {
			// The tentpole's acceptance criterion: strictly fewer clones
			// than conditionals analyzed (the old driver cloned for every
			// one, i.e. Clones = Analyses + 1 counting the defensive copy).
			t.Errorf("%s: %d clones for %d analyses — clone avoidance ineffective",
				w.Name, s.Clones, s.Analyses)
		}
	}
}
