package restructure

import (
	"errors"
	"strings"
	"testing"

	"icbe/internal/analysis"
	"icbe/internal/check"
	"icbe/internal/ir"
)

func setAnswerHook(t *testing.T, hook func(*ir.Program, ir.NodeID, analysis.AnswerSet) analysis.AnswerSet) {
	t.Helper()
	testHookCheckAnswers = hook
	t.Cleanup(func() { testHookCheckAnswers = nil })
}

// TestCheckCleanRun enables the static layer on a healthy program: the
// optimization outcome is unchanged, every cross-check agrees, and the final
// program carries no residual constant branches or invariant findings.
func TestCheckCleanRun(t *testing.T) {
	plain := Optimize(buildSafety(t), DriverOptions{})
	checked := Optimize(buildSafety(t), DriverOptions{Check: true})
	if checked.Optimized != plain.Optimized {
		t.Fatalf("Check changed the outcome: %d optimized vs %d plain", checked.Optimized, plain.Optimized)
	}
	if got, want := checked.Program.Dump(), plain.Program.Dump(); got != want {
		t.Fatalf("Check changed the program:\n--- plain ---\n%s\n--- checked ---\n%s", want, got)
	}
	st := checked.Stats
	if st.SCCPDisagreements != 0 {
		t.Errorf("SCCPDisagreements = %d, want 0", st.SCCPDisagreements)
	}
	if st.SCCPAgreements != 3 {
		t.Errorf("SCCPAgreements = %d, want 3 (three constant conditionals)", st.SCCPAgreements)
	}
	if st.SCCPDecided != 3 {
		t.Errorf("SCCPDecided = %d, want 3", st.SCCPDecided)
	}
	if st.SCCPRecall != 1.0 {
		t.Errorf("SCCPRecall = %v, want 1.0 (every decided claim graded)", st.SCCPRecall)
	}
	if st.SCCPResidual != 0 {
		t.Errorf("SCCPResidual = %d, want 0 (all constant branches eliminated)", st.SCCPResidual)
	}
	if st.CheckFindingsPre != 0 || st.CheckFindingsPost != 0 {
		t.Errorf("findings pre/post = %d/%d, want 0/0", st.CheckFindingsPre, st.CheckFindingsPost)
	}
	if st.CheckRuns == 0 || st.CheckWall <= 0 {
		t.Errorf("check layer apparently never ran: runs %d, wall %v", st.CheckRuns, st.CheckWall)
	}
	if plain.Stats.CheckRuns != 0 {
		t.Errorf("check layer ran without opting in: %d runs", plain.Stats.CheckRuns)
	}
}

// TestCheckCatchesCorruptedSplit injects a deliberately corrupted
// restructure output — an unreachable nop spliced into the scratch clone,
// which structural validation accepts — and checks the post-apply gate
// refuses it with FailCheck and rolls back.
func TestCheckCatchesCorruptedSplit(t *testing.T) {
	p := buildSafety(t)
	want := ir.Clone(p).Dump()
	setHooks(t, nil, func(scratch *ir.Program, cond ir.NodeID) error {
		pr := scratch.Procs[scratch.MainProc]
		orphan := scratch.NewNode(ir.NNop, pr.Index)
		scratch.AddEdge(orphan.ID, pr.Exits[0])
		return nil
	})

	res := Optimize(p, DriverOptions{Check: true})
	if res.Optimized != 0 {
		t.Fatalf("Optimized = %d, want 0 when every apply is corrupted", res.Optimized)
	}
	if got := res.Program.Dump(); got != want {
		t.Fatalf("corrupted apply not rolled back:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	if n := countKind(res, FailCheck); n != 3 {
		t.Fatalf("check failures = %d (stats %v), want 3", n, res.Stats.Failures)
	}
	for _, r := range res.Reports {
		if r.Failure == nil {
			continue
		}
		if r.Failure.Kind != FailCheck {
			t.Errorf("failure kind = %v, want check", r.Failure.Kind)
		}
		if !strings.Contains(r.Failure.Msg, "unreachable-node") {
			t.Errorf("failure msg %q does not name the regressed pass", r.Failure.Msg)
		}
	}
	// Without the check layer the same corruption sails through structural
	// validation — the coverage the lint gate adds.
	res2 := Optimize(buildSafety(t), DriverOptions{})
	if res2.Optimized == 0 {
		t.Fatalf("corrupted applies were refused even without Check; the corruption is not validate-invisible")
	}
}

// TestCheckCatchesDisagreement simulates a buggy backward analysis by
// flipping every decided answer and checks the pre-apply cross-check refuses
// each conditional with a typed CheckFailure.
func TestCheckCatchesDisagreement(t *testing.T) {
	p := buildSafety(t)
	want := ir.Clone(p).Dump()
	setAnswerHook(t, func(_ *ir.Program, b ir.NodeID, ans analysis.AnswerSet) analysis.AnswerSet {
		switch ans {
		case analysis.AnsTrue:
			return analysis.AnsFalse
		case analysis.AnsFalse:
			return analysis.AnsTrue
		}
		return ans
	})

	res := Optimize(p, DriverOptions{Check: true})
	if res.Optimized != 0 {
		t.Fatalf("Optimized = %d, want 0 when every answer disagrees", res.Optimized)
	}
	if got := res.Program.Dump(); got != want {
		t.Fatalf("disagreeing conditionals not left untouched:\n%s", got)
	}
	if res.Stats.SCCPDisagreements != 3 {
		t.Errorf("SCCPDisagreements = %d, want 3", res.Stats.SCCPDisagreements)
	}
	if n := countKind(res, FailCheck); n != 3 {
		t.Fatalf("check failures = %d (stats %v), want 3", n, res.Stats.Failures)
	}
	var cf *check.CheckFailure
	if !errors.As(res.Reports[0].Err, &cf) {
		t.Fatalf("report Err does not unwrap to *check.CheckFailure: %v", res.Reports[0].Err)
	}
	if cf.Answers != analysis.AnsFalse {
		t.Errorf("CheckFailure.Answers = %v, want {F} (the flipped claim)", cf.Answers)
	}
}

// TestCheckComposesWithVerify runs both oracles together on a healthy
// program.
func TestCheckComposesWithVerify(t *testing.T) {
	res := Optimize(buildSafety(t), DriverOptions{Check: true, Verify: true})
	if res.Optimized == 0 {
		t.Fatalf("nothing optimized with both oracles on")
	}
	if res.Stats.SCCPDisagreements != 0 || len(res.Stats.Failures) != 0 {
		t.Fatalf("healthy program failed a gate: %v", res.Stats.Failures)
	}
	if res.Stats.VerifyRuns == 0 || res.Stats.CheckRuns == 0 {
		t.Fatalf("an oracle did not run: verify %d, check %d", res.Stats.VerifyRuns, res.Stats.CheckRuns)
	}
}

func TestFailCheckString(t *testing.T) {
	if got := FailCheck.String(); got != "check" {
		t.Errorf("FailCheck.String() = %q, want %q", got, "check")
	}
}

// TestCheckRecallCountsResidualConstantBranch pins the residual metric: a
// constant branch the driver is forbidden to optimize (duplication limit)
// stays in the final program and is counted.
func TestCheckRecallCountsResidualConstantBranch(t *testing.T) {
	p, err := ir.Build(`
		func main() {
			var x = 5;
			if (x == 5) { print(1); } else { print(2); }
		}
	`)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	// MaxWork exhausts the budget before the branch is settled, so the
	// constant branch survives to the final program.
	res := Optimize(p, DriverOptions{Check: true, MaxWork: 1, FullOnly: true,
		Analysis: analysis.Options{ModSummaries: true, TerminationLimit: 1}})
	if res.Stats.SCCPResidual == 0 && res.Optimized > 0 {
		t.Skipf("branch optimized despite limits; residual legitimately 0")
	}
	if res.Optimized == 0 && res.Stats.SCCPResidual != 1 {
		t.Errorf("SCCPResidual = %d, want 1 (unoptimized constant branch)", res.Stats.SCCPResidual)
	}
}
