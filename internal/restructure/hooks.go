package restructure

import (
	"icbe/internal/analysis"
	"icbe/internal/ir"
)

// AllFailureKinds enumerates every FailureKind the driver can contain, in
// gating order. Callers that key state per kind — the serving layer keeps a
// circuit breaker per kind — iterate this instead of hard-coding the
// taxonomy, so a kind added here is automatically covered there.
func AllFailureKinds() []FailureKind {
	return []FailureKind{
		FailPanic, FailValidate, FailDiffMismatch, FailOpGrowth, FailTimeout, FailCheck, FailFold,
	}
}

// FaultInjection bundles the driver's fault-injection hooks so tests outside
// this package (the serving layer's degradation-ladder tests) can force each
// FailureKind. Every field may be nil. The hooks are process globals read by
// concurrent analysis workers without synchronization: install them before
// any driver run starts, clear them after every run has finished, and never
// use them outside tests.
type FaultInjection struct {
	// Analyze runs at the start of every branch analysis against the
	// round's snapshot. Panicking here exercises FailPanic containment; the
	// snapshot lets a hook target only branches of a marked program.
	Analyze func(snapshot *ir.Program, b ir.NodeID)
	// AfterApply runs on the scratch clone after a successful Eliminate,
	// before the gating oracles; a non-nil error is treated as a validation
	// failure (FailValidate).
	AfterApply func(scratch *ir.Program, cond ir.NodeID) error
	// CheckAnswers substitutes the answer set the static cross-check sees
	// for one conditional, simulating a buggy backward analysis (FailCheck)
	// without having one.
	CheckAnswers func(p *ir.Program, b ir.NodeID, ans analysis.AnswerSet) analysis.AnswerSet
}

// SetFaultInjection installs the given hooks, replacing any previous set.
// Pass the zero value to clear. Test-only; see FaultInjection for the
// synchronization contract.
func SetFaultInjection(f FaultInjection) {
	testHookAnalyze = f.Analyze
	testHookAfterApply = f.AfterApply
	testHookCheckAnswers = f.CheckAnswers
}
