package restructure

import (
	"fmt"
	"runtime/debug"

	"icbe/internal/ir"
)

// FailureKind categorizes a contained per-conditional failure. The driver
// converts every failure into a rolled-back, reported refusal: the working
// program is never replaced by a program that panicked during
// restructuring, failed structural validation, or violated the paper's
// semantic guarantee under shadow execution.
type FailureKind int

// Failure categories, in gating order: a panic aborts the attempt before
// validation, validation runs before the differential oracle, and the
// oracle distinguishes wrong output from the op-growth safety violation.
// Timeouts come from the driver's deadlines, not from the apply path.
const (
	// FailPanic: the analysis or the restructuring attempt panicked; the
	// recovered value and stack are preserved on the BranchFailure.
	FailPanic FailureKind = iota + 1
	// FailValidate: the restructured program failed ir.Validate.
	FailValidate
	// FailDiffMismatch: shadow execution produced different output (or a
	// different fault) than the pre-apply program on some input.
	FailDiffMismatch
	// FailOpGrowth: shadow execution executed more operations than the
	// pre-apply program on some input, violating the paper's §3.2
	// guarantee that restructuring never lengthens any path.
	FailOpGrowth
	// FailTimeout: a per-branch analysis deadline or the overall driver
	// deadline expired before the conditional could be settled.
	FailTimeout
	// FailCheck: the static check layer (DriverOptions.Check) vetoed the
	// conditional — either its demand-driven answer contradicted the SCCP
	// oracle, or applying its restructuring raised an invariant lint
	// finding (unreachable node, use-before-def, must-fail assertion) the
	// working program did not have.
	FailCheck
	// FailFold: the residual fold pass (DriverOptions.Fold) vetoed a fold
	// attempt — the folded clone failed validation, regressed an invariant
	// pass, diverged under shadow execution, or presented a residual
	// constant branch the pre-fold program did not have.
	FailFold
)

func (k FailureKind) String() string {
	switch k {
	case FailPanic:
		return "panic"
	case FailValidate:
		return "validate"
	case FailDiffMismatch:
		return "diff-mismatch"
	case FailOpGrowth:
		return "op-growth"
	case FailTimeout:
		return "timeout"
	case FailCheck:
		return "check"
	case FailFold:
		return "fold"
	}
	return fmt.Sprintf("FailureKind(%d)", int(k))
}

// BranchFailure is the typed, contained failure of one conditional's
// optimization attempt. It implements error so it can flow through the
// existing CondReport.Err field; the Kind makes it machine-classifiable.
type BranchFailure struct {
	Kind FailureKind
	// Cond and Line identify the conditional the failure was contained to.
	Cond ir.NodeID
	Line int
	// Msg describes the violation (one line).
	Msg string
	// Stack holds the recovered goroutine stack for FailPanic.
	Stack string
	// Err is the underlying error (ir.Validate's joined violations, a
	// shadow-run fault), when one exists.
	Err error
}

func (f *BranchFailure) Error() string {
	s := fmt.Sprintf("restructure: %s failure at conditional %d (line %d): %s",
		f.Kind, f.Cond, f.Line, f.Msg)
	if f.Err != nil {
		s += ": " + f.Err.Error()
	}
	return s
}

// Unwrap exposes the underlying error for errors.Is / errors.As.
func (f *BranchFailure) Unwrap() error { return f.Err }

// panicFailure converts a recovered panic value into a typed failure,
// capturing the stack at the recovery point.
func panicFailure(cond ir.NodeID, line int, recovered interface{}) *BranchFailure {
	return &BranchFailure{
		Kind:  FailPanic,
		Cond:  cond,
		Line:  line,
		Msg:   fmt.Sprintf("recovered panic: %v", recovered),
		Stack: string(debug.Stack()),
	}
}

// countFailure tallies a contained failure in the driver's stats.
func (s *DriverStats) countFailure(k FailureKind) {
	if s.Failures == nil {
		s.Failures = make(map[FailureKind]int)
	}
	s.Failures[k]++
}
