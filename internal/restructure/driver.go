package restructure

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"icbe/internal/analysis"
	"icbe/internal/ir"
)

// Test-only fault-injection hooks (see SetFaultInjection). testHookAnalyze
// runs at the start of every branch analysis against the round's snapshot;
// testHookAfterApply runs on the scratch clone after a successful Eliminate,
// before the gating oracles, and a non-nil return is treated as a validation
// failure. Both may panic to exercise the driver's fault isolation. They
// must be nil outside tests.
var (
	testHookAnalyze    func(snapshot *ir.Program, b ir.NodeID)
	testHookAfterApply func(scratch *ir.Program, cond ir.NodeID) error
)

// DriverOptions configures the two-phase optimization driver.
type DriverOptions struct {
	// Analysis configures the correlation analysis (interprocedural or the
	// intraprocedural baseline, termination limit, substitution power).
	// CacheAnswers is ignored: cached answers lack the supplier structure
	// restructuring consumes, and a cache shared between analysis workers
	// would make reports depend on goroutine scheduling.
	Analysis analysis.Options
	// MaxDuplication is the per-conditional code-duplication limit N: a
	// conditional is optimized only when the analysis estimates at most N
	// new operation nodes (paper §4 "Eliminated Branches"). Zero means
	// unlimited.
	MaxDuplication int
	// FullOnly restricts optimization to fully correlated conditionals
	// (outcome known along every incoming path).
	FullOnly bool
	// Profile supplies node execution counts; with MinBenefitPerNode > 0
	// the driver implements the heuristic the paper suggests as an
	// improvement over the growth-only limit (§4: "a better heuristic
	// would also consider the amount of conditionals eliminated"): a
	// conditional is optimized only when its estimated eliminated dynamic
	// instances per duplicated node reach the threshold.
	Profile           map[ir.NodeID]int64
	MinBenefitPerNode float64
	// Workers bounds the analysis-phase goroutines. 0 and 1 analyze
	// serially; negative values use runtime.NumCPU(). The optimized
	// program and the reports are identical for every worker count (the
	// wall-clock and worker-count fields of DriverStats aside).
	Workers int
	// MaxWork caps the total number of work-queue entries the driver
	// dequeues, including invalidation re-analyses, bounding the sweep on
	// pathological programs whose restructurings keep splitting queued
	// conditionals. Zero selects the default 8×(initial conditionals)+64.
	// Conditionals still queued when the cap is reached receive a report
	// entry with Skipped set and DriverResult.Truncated is raised.
	MaxWork int
	// Ctx cancels the driver run: when it expires, still-queued
	// conditionals are reported Skipped with a timeout failure, exactly
	// like the MaxWork path, and the program optimized so far is returned.
	// nil means context.Background().
	Ctx context.Context
	// Timeout is the overall driver deadline layered onto Ctx (0 = none).
	Timeout time.Duration
	// BranchTimeout bounds each conditional's analysis (0 = none). A
	// branch whose analysis deadline expires is reported with a timeout
	// failure and left unoptimized; the driver moves on.
	BranchTimeout time.Duration
	// Memo, when non-nil, is used as the run's summary memo instead of a
	// fresh one, letting a caller seed the run with records replayed from a
	// persisted store (analysis.SummaryMemo.Inject) and harvest the run's
	// own pristine records afterwards (ExportPristine). The driver still
	// owns the commit points. Ignored unless the analysis options enable
	// summary memoization. The memo must not be shared between concurrent
	// driver runs.
	Memo *analysis.SummaryMemo
	// SeedRecords are portable summary records injected into the run's memo
	// before the first round (the worker pool's pre-analysis, or any other
	// out-of-process seed). Injection is strict verify-on-read and replay is
	// pair-for-pair exact, so seeds change warmth, never results; invalid or
	// stale records are silently dropped. Ignored when the run has no memo.
	SeedRecords []analysis.PortableRecord
	// Scratch disables the cross-round incremental engine entirely (no
	// summary memo, no root records): every requeued conditional is
	// re-analyzed from scratch each round. The optimized program and
	// reports are identical either way — Scratch exists as the honest
	// baseline for measuring the incremental speedup (icbe-bench -stress).
	Scratch bool
	// Verify enables the differential shadow-execution oracle: after each
	// applied restructuring the pre- and post-apply programs are run over
	// VerifyInputs plus built-in input vectors, and any output difference
	// or operation-count growth rolls the apply back with a typed failure.
	// Verification multiplies apply cost by the number of shadow runs; see
	// DriverStats.VerifyRuns / VerifyWall.
	Verify bool
	// VerifyInputs supplies workload input vectors for Verify, checked in
	// addition to the built-in vectors.
	VerifyInputs [][]int64
	// Check enables the static verification layer (internal/check): every
	// demand-driven answer is cross-checked against a forward SCCP oracle
	// before its restructuring is attempted, and each applied restructuring
	// must not raise an invariant lint finding (unreachable node,
	// use-before-def, must-fail assertion, structural violation) over the
	// working program's baseline. Violations roll back with FailCheck.
	// Unlike Verify it runs no inputs, so it covers all paths statically;
	// the two oracles compose.
	Check bool
	// Fold enables the CCP-fact-driven residual fold pass (internal/fold):
	// after the correlation rounds settle, the forward oracle's fact table
	// classifies every remaining conditional, branches constant on all
	// executable in-edges are folded whole, and edge-split residuals have
	// their deciding in-edges redirected to the implied arm. Every fold is
	// a transactional scratch-clone attempt gated by ir.Validate, the
	// invariant passes, shadow execution, and a post-fold oracle re-check;
	// vetoes roll back with FailFold. Independent of Check (the fold pass
	// runs its own oracle), though the two compose naturally.
	Fold bool
}

// CondReport records the per-conditional outcome of a driver run.
type CondReport struct {
	// Cond is the branch node in the input program.
	Cond ir.NodeID
	Line int
	// Analyzable is false for branches not of the (var relop const) form.
	Analyzable bool
	// Answers is the root answer set found by the analysis.
	Answers analysis.AnswerSet
	// Full reports full correlation (no UNDEF path).
	Full bool
	// DupEstimate is the analysis' upper bound on new operation nodes.
	DupEstimate int
	// Benefit is the profile-based estimate of decided dynamic instances
	// (0 without a profile).
	Benefit int64
	// PairsProcessed is the analysis cost for this conditional.
	PairsProcessed int
	// Applied reports that restructuring was performed for this branch.
	Applied bool
	// Removed counts eliminated branch copies when applied.
	Removed int
	// Skipped reports that the branch was still queued when the driver's
	// work cap (DriverOptions.MaxWork) was reached or its deadline expired
	// and was never analyzed.
	Skipped bool
	// Failure records a contained failure (panic, validation or shadow
	// oracle violation, deadline) that rolled this branch's optimization
	// back. The working program is unaffected; other branches still
	// optimize.
	Failure *BranchFailure
	// Err records a restructuring failure (the program is left untouched).
	// When Failure is set, Err carries the same value; Err without Failure
	// is a graceful decline by Eliminate (e.g. ambiguous transparency).
	Err error
}

// DriverStats exposes the two-phase driver's cost counters so the effect of
// parallel analysis and clone avoidance is measurable from reports and
// benchmarks. All fields except the wall-clock durations are deterministic
// and identical for every worker count.
type DriverStats struct {
	// Workers is the analysis-phase worker count actually used.
	Workers int
	// Rounds counts snapshot rounds (one concurrent analysis phase plus
	// one serial apply phase each).
	Rounds int
	// Analyses counts AnalyzeBranch runs; Reanalyses is the subset queued
	// again because an applied restructuring invalidated the snapshot
	// result (the analysis had visited a changed node).
	Analyses   int
	Reanalyses int
	// Clones counts ir.Clone calls: one defensive clone of the input plus
	// one per attempted restructuring. ClonesAvoided counts analyzed
	// conditionals that needed no clone because no restructuring was
	// attempted for them.
	Clones        int
	ClonesAvoided int
	// Failures counts contained per-conditional failures by category; nil
	// when the run had none. Every counted failure was rolled back and
	// carries a CondReport entry with its BranchFailure.
	Failures map[FailureKind]int
	// SNEMemoEntries and SNEMemoHits expose the cross-conditional summary
	// memo (analysis.SummaryMemo): committed records at the end of the run
	// and summaries replayed instead of re-propagated. CacheBytes is the
	// memo's footprint. The driver commits the memo once per round against
	// the round's dirty set and workers replay only from the frozen
	// per-round view, so all three are deterministic.
	SNEMemoEntries int
	SNEMemoHits    int64
	CacheBytes     int64
	// SeedsInjected counts portable records accepted into the memo from
	// DriverOptions.SeedRecords before the first round — how much of the
	// worker pool's pre-analysis survived verify-on-read. Telemetry, not
	// result: it varies with pool health and is scrubbed from response
	// bodies.
	SeedsInjected int
	// QueriesReused counts node–query pairs reconstructed from memo
	// records (summary and root-record replays) instead of re-propagated;
	// SubtreesInvalidated counts cached subtrees the per-round Commits
	// dropped because their recorded region intersected a dirty set. Their
	// ratio against PairsTotal is the incremental engine's hit rate. Both
	// are deterministic across worker counts (replays come from the
	// round-frozen memo view).
	QueriesReused       int
	SubtreesInvalidated int64
	// PairsTotal mirrors DriverResult.PairsTotal (replayed pairs count in
	// both) so reuse-rate aggregation from stats alone is self-contained:
	// reuse rate = QueriesReused / PairsTotal.
	PairsTotal int
	// VerifyRuns counts shadow executions performed by the differential
	// oracle (DriverOptions.Verify); VerifyWall is their summed wall time.
	VerifyRuns int
	// CheckRuns counts static check-layer analyses (DriverOptions.Check):
	// the initial baseline, one per attempted apply, and recomputations
	// after commits. CheckWall is their summed wall time.
	CheckRuns int
	// SCCPAgreements and SCCPDisagreements count cross-checked conditionals
	// whose demand-driven full answer the SCCP oracle independently
	// confirmed or contradicted. Disagreements are contained FailCheck
	// refusals; a healthy run has zero. SCCPVacuous counts conditionals the
	// oracle proved unreachable (neither confirmed nor graded), and
	// SCCPDecided counts every non-vacuous conditional with a full
	// demand-driven answer — the recall denominator.
	SCCPAgreements    int
	SCCPDisagreements int
	SCCPVacuous       int
	SCCPDecided       int
	// SCCPRecall is the fraction of decided claims the oracle could grade:
	// (agreements + disagreements) / decided, 0 when nothing was decided.
	SCCPRecall float64
	// SCCPResidual counts analyzable branches of the final program whose
	// outcome the oracle still decides — constant branches ICBE left in
	// place (the recall gap of the demand-driven analysis).
	SCCPResidual int
	// FoldAttempted counts fold-pass rewrite attempts (DriverOptions.Fold):
	// scratch clones the fold rewriter actually changed, gates and all.
	// FoldApplied is the subset that survived every gate and was adopted;
	// FoldDuplicated counts the in-edges edge-split folds redirected across
	// adopted attempts (the duplication-based eliminations, degenerated to
	// redirections).
	FoldAttempted  int
	FoldApplied    int
	FoldDuplicated int
	// SCCPResidualBefore and SCCPResidualAfter bracket the fold pass: the
	// oracle's residual constant-branch count entering the pass and after
	// its last adopted fold. Both stay zero when the pass is disabled.
	SCCPResidualBefore int
	SCCPResidualAfter  int
	// FoldReduction is the fold pass's bite:
	// (SCCPResidualBefore − SCCPResidualAfter) / SCCPResidualBefore,
	// 0 when nothing was residual to begin with.
	FoldReduction float64
	// CheckFindingsPre and CheckFindingsPost count invariant lint findings
	// on the input and final working programs (both 0 for sound inputs).
	CheckFindingsPre  int
	CheckFindingsPost int
	// AnalysisWall and ApplyWall sum the wall-clock time of the analysis
	// phases and the serial apply phases. They and VerifyWall are the only
	// nondeterministic fields of a driver result.
	AnalysisWall time.Duration
	ApplyWall    time.Duration
	VerifyWall   time.Duration
	CheckWall    time.Duration
	FoldWall     time.Duration
}

// DriverResult is the outcome of optimizing a whole program.
type DriverResult struct {
	// Program is the optimized program (the input is never mutated).
	Program *ir.Program
	// Reports holds one entry per conditional branch considered, in the
	// deterministic order the driver settled them.
	Reports []CondReport
	// Optimized counts conditionals for which restructuring was applied.
	Optimized int
	// PairsTotal sums the analysis cost over all conditionals.
	PairsTotal int
	// Truncated reports that the work cap was reached and the conditionals
	// carrying Skipped reports were never analyzed.
	Truncated bool
	// Stats holds the driver's cost counters.
	Stats DriverStats
}

// condResult carries one conditional's analysis-phase outcome across the
// phase boundary into the serial apply phase.
type condResult struct {
	b ir.NodeID
	// live is false when the branch was consumed by an earlier
	// restructuring (split or eliminated) before this round's snapshot.
	live  bool
	res   *analysis.Result
	rep   CondReport
	apply bool
}

// Optimize applies ICBE to every analyzable conditional of the program with
// a two-phase, batched driver. Each round, phase 1 analyzes every queued
// conditional concurrently against the current program snapshot — the
// analysis is demand-driven and per-conditional, so the queries are
// independent and embarrassingly parallel. Phase 2 then applies the
// accepted restructurings serially, cloning the working program only when a
// restructuring is actually attempted; a conditional whose analysis visited
// none of the nodes changed by an earlier restructuring of the same round
// is applied directly from its snapshot result, and only conditionals whose
// visited node set intersects the changed nodes are re-analyzed in the next
// round. The input program is left unmodified, and the result is identical
// for every worker count.
//
// The driver is transactional and fault-isolated: each apply runs on a
// scratch clone and is adopted only after it passes ir.Validate (and, with
// Verify, differential shadow execution); a panic in analysis or
// restructuring is recovered into a typed BranchFailure on that
// conditional's report. The driver may refuse to optimize a branch, but it
// never crashes and never emits a program that failed a gate.
func Optimize(p *ir.Program, opts DriverOptions) *DriverResult {
	workers := opts.Workers
	if workers < 0 {
		workers = runtime.NumCPU()
	}
	if workers == 0 {
		workers = 1
	}
	aopts := opts.Analysis
	aopts.CacheAnswers = false
	// The summary memo outlives the per-round analyzers; the driver owns the
	// commit points so workers replay only round-frozen records (see
	// analysis.SummaryMemo for the invalidation contract).
	var memo *analysis.SummaryMemo
	if aopts.MemoSummaries && aopts.Interprocedural && !opts.Scratch {
		if opts.Memo != nil {
			memo = opts.Memo
		} else {
			memo = analysis.NewSummaryMemo()
		}
	}
	ctx := opts.Ctx
	var seedsInjected int
	if memo != nil && len(opts.SeedRecords) > 0 {
		seedsInjected = memo.Inject(p, opts.SeedRecords)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}

	out := &DriverResult{}
	out.Stats.Workers = workers
	out.Stats.SeedsInjected = seedsInjected

	work := ir.Clone(p)
	out.Stats.Clones = 1

	var gate *checkGate
	if opts.Check {
		gate = newCheckGate(work, &out.Stats)
	}

	// The work queue starts with the conditionals of the input program.
	// When restructuring one conditional splits another into copies, the
	// copies are requeued so the duplication-limit sweep stays monotone; a
	// cap bounds the total work on pathological programs.
	var queue []ir.NodeID
	queued := make(map[ir.NodeID]bool)
	p.LiveNodes(func(n *ir.Node) {
		if n.Kind == ir.NBranch {
			queue = append(queue, n.ID)
			queued[n.ID] = true
		}
	})
	budget := opts.MaxWork
	if budget <= 0 {
		budget = 8*len(queue) + 64
	}
	// dirtyBits mirrors each round's dirty map as a bitset so the
	// visited-dirty intersection is a word-wise AND against the analysis'
	// visited bitset; the backing array is reused across rounds.
	var dirtyBits []uint64

	for len(queue) > 0 && budget > 0 && ctx.Err() == nil {
		batch := queue
		if len(batch) > budget {
			batch = batch[:budget]
		}
		overflow := queue[len(batch):]
		budget -= len(batch)
		out.Stats.Rounds++

		// Phase 1: concurrent, read-only analysis of the whole batch
		// against the immutable snapshot. One analyzer is shared so the
		// MOD summaries are computed once per round.
		results := analyzeBatch(ctx, work, batch, aopts, memo, opts, workers, &out.Stats)

		// Phase 2: serial application in batch order. dirty accumulates
		// the nodes changed by restructurings applied this round; a later
		// conditional whose analysis visited any of them is re-analyzed
		// against the next snapshot instead of being applied stale.
		t0 := time.Now()
		dirty := make(map[ir.NodeID]bool)
		dirtyBits = dirtyBits[:0]
		var next []ir.NodeID
		for i := range results {
			cr := &results[i]
			if !cr.live {
				// Consumed by an earlier restructuring.
				continue
			}
			if ctx.Err() != nil {
				// Deadline expired mid-apply: everything still unsettled
				// is requeued and reported Skipped below.
				release(cr)
				next = append(next, cr.b)
				continue
			}
			if cr.rep.Failure != nil {
				// The analysis phase contained a panic or hit its branch
				// deadline; report the refusal and move on.
				out.Stats.countFailure(cr.rep.Failure.Kind)
				if cr.res != nil {
					out.PairsTotal += cr.res.PairsProcessed
					out.Stats.QueriesReused += cr.res.QueriesReused
				}
				release(cr)
				out.Reports = append(out.Reports, cr.rep)
				continue
			}
			if cr.res == nil {
				// Not analyzable (or, defensively, the analysis declined).
				out.Reports = append(out.Reports, cr.rep)
				continue
			}
			if visitedDirty(cr.res, dirty, dirtyBits) {
				out.Stats.Reanalyses++
				release(cr)
				next = append(next, cr.b)
				continue
			}
			out.PairsTotal += cr.res.PairsProcessed
			out.Stats.QueriesReused += cr.res.QueriesReused
			if gate != nil {
				// Static cross-check: a demand-driven answer contradicting
				// the SCCP oracle refuses this conditional outright, before
				// any restructuring is attempted.
				if fail := gate.crossCheck(work, cr); fail != nil {
					cr.rep.Failure = fail
					cr.rep.Err = fail
					out.Stats.countFailure(fail.Kind)
					release(cr)
					out.Reports = append(out.Reports, cr.rep)
					continue
				}
			}
			if !cr.apply {
				out.Stats.ClonesAvoided++
				release(cr)
				out.Reports = append(out.Reports, cr.rep)
				continue
			}
			// Attempt the restructuring on a scratch clone so a failure —
			// including a panic or a gate violation — cannot corrupt the
			// working program. This is the only place the driver clones
			// after the initial defensive copy. Adopting the clone is the
			// commit point; every earlier exit rolls back by discarding it.
			scratch := ir.Clone(work)
			out.Stats.Clones++
			oc, declined, fail := applyOne(work, scratch, cr, opts, gate, &out.Stats)
			switch {
			case fail != nil:
				cr.rep.Failure = fail
				cr.rep.Err = fail
				out.Stats.countFailure(fail.Kind)
			case declined != nil:
				cr.rep.Err = declined
			default:
				cr.rep.Applied = true
				cr.rep.Removed = oc.BranchCopiesRemoved
				out.Optimized++
				dirtyBits = markChanged(dirty, dirtyBits, work, scratch)
				work = scratch
				if gate != nil {
					gate.adopt(work)
				}
				// Requeue branch copies created as a side effect of this
				// restructuring (including surviving copies of cr.b
				// itself), in ID order for determinism.
				for _, c := range sortedDescendants(oc) {
					if !queued[c] {
						queued[c] = true
						next = append(next, c)
					}
				}
			}
			release(cr)
			out.Reports = append(out.Reports, cr.rep)
		}
		out.Stats.ApplyWall += time.Since(t0)
		if memo != nil {
			// Publish this round's summary records and drop everything the
			// round's restructurings invalidated; the next round replays
			// only records valid for its snapshot.
			memo.Commit(dirty)
		}
		queue = append(append([]ir.NodeID(nil), overflow...), next...)
	}

	// Work cap reached or deadline expired with conditionals still queued:
	// report every still-live skipped branch instead of dropping it
	// silently, tagging deadline victims with a timeout failure.
	timedOut := ctx.Err() != nil
	for _, b := range queue {
		node := work.Node(b)
		if node == nil || node.Kind != ir.NBranch {
			continue
		}
		rep := CondReport{
			Cond:       b,
			Line:       node.Line,
			Analyzable: node.Analyzable(),
			Skipped:    true,
		}
		if timedOut {
			f := &BranchFailure{Kind: FailTimeout, Cond: b, Line: node.Line,
				Msg: "driver deadline expired before this conditional was settled"}
			rep.Failure, rep.Err = f, f
			out.Stats.countFailure(FailTimeout)
		}
		out.Reports = append(out.Reports, rep)
		out.Truncated = true
	}
	out.Stats.PairsTotal = out.PairsTotal
	if memo != nil {
		out.Stats.SNEMemoEntries = memo.Entries()
		out.Stats.SNEMemoHits = memo.Hits()
		out.Stats.CacheBytes = memo.Bytes()
		out.Stats.SubtreesInvalidated = memo.Invalidated()
	}
	if opts.Fold {
		// The second optimizer: fold the residual conditionals the oracle
		// decides but the correlation rounds left behind. Runs before
		// gate.finish so the Check layer's end-of-run residual metric
		// reflects the folded program.
		work = runFoldPass(ctx, work, opts, out)
	}
	if gate != nil {
		gate.finish(work)
	}
	out.Program = work
	return out
}

// release returns a settled conditional's pooled analysis state. Everything
// the driver keeps past this point (the report, counters) was copied out.
func release(cr *condResult) {
	if cr.res != nil {
		cr.res.Release()
	}
}

// applyOne performs one transactional restructuring attempt on the scratch
// clone. It returns the outcome to commit, a graceful decline from
// Eliminate, or a typed failure (panic, validation, shadow-oracle
// violation) — in every non-commit case the caller simply discards the
// scratch clone, which is the rollback.
func applyOne(work, scratch *ir.Program, cr *condResult, opts DriverOptions,
	gate *checkGate, stats *DriverStats) (oc *Outcome, declined error, fail *BranchFailure) {
	defer func() {
		if r := recover(); r != nil {
			oc, declined = nil, nil
			fail = panicFailure(cr.b, cr.rep.Line, r)
		}
	}()
	oc, err := Eliminate(scratch, cr.res)
	if err != nil {
		return nil, err, nil
	}
	if testHookAfterApply != nil {
		if err := testHookAfterApply(scratch, cr.b); err != nil {
			return nil, nil, &BranchFailure{Kind: FailValidate, Cond: cr.b, Line: cr.rep.Line,
				Msg: "injected validation failure", Err: err}
		}
	}
	if err := ir.Validate(scratch); err != nil {
		return nil, nil, &BranchFailure{Kind: FailValidate, Cond: cr.b, Line: cr.rep.Line,
			Msg: "restructured program failed structural validation", Err: err}
	}
	if gate != nil {
		// Static post-apply gate: the scratch clone must not regress any
		// invariant lint pass over the working program's baseline.
		if f := gate.checkApply(scratch, cr); f != nil {
			return nil, nil, f
		}
	}
	if opts.Verify {
		if f := verifyShadow(work, scratch, verifyInputs(opts), stats); f != nil {
			f.Cond, f.Line = cr.b, cr.rep.Line
			return nil, nil, f
		}
	}
	return oc, nil, nil
}

// analyzeBatch runs the analysis phase for one round: every batched
// conditional is analyzed against the snapshot and gated, concurrently when
// workers > 1. The snapshot is never written, AnalyzeBranch keeps its state
// in the per-call run, and each worker writes only its own results slot, so
// the outcome is independent of scheduling. A panic during one branch's
// analysis is recovered into a timeout-safe typed failure on that branch
// alone; the per-branch deadline (DriverOptions.BranchTimeout) and the
// driver context interrupt propagation cooperatively.
func analyzeBatch(ctx context.Context, snapshot *ir.Program, batch []ir.NodeID,
	aopts analysis.Options, memo *analysis.SummaryMemo, opts DriverOptions,
	workers int, stats *DriverStats) []condResult {
	t0 := time.Now()
	an := analysis.NewWithMemo(snapshot, aopts, memo)
	results := make([]condResult, len(batch))
	analyzeOne := func(i int) {
		cr := &results[i]
		cr.b = batch[i]
		cr.rep = CondReport{Cond: cr.b}
		defer func() {
			if r := recover(); r != nil {
				f := panicFailure(cr.b, cr.rep.Line, r)
				cr.res, cr.apply = nil, false
				cr.rep.Failure, cr.rep.Err = f, f
			}
		}()
		node := snapshot.Node(cr.b)
		if node == nil || node.Kind != ir.NBranch {
			return
		}
		cr.live = true
		cr.rep.Line = node.Line
		if !node.Analyzable() {
			return
		}
		cr.rep.Analyzable = true
		if testHookAnalyze != nil {
			testHookAnalyze(snapshot, cr.b)
		}
		var interrupt func() bool
		if opts.BranchTimeout > 0 || ctx.Done() != nil {
			deadline := time.Now().Add(opts.BranchTimeout)
			interrupt = func() bool {
				if ctx.Err() != nil {
					return true
				}
				return opts.BranchTimeout > 0 && time.Now().After(deadline)
			}
		}
		res := an.AnalyzeBranchInterruptible(cr.b, interrupt)
		if res == nil {
			return
		}
		if res.Interrupted {
			f := &BranchFailure{Kind: FailTimeout, Cond: cr.b, Line: cr.rep.Line,
				Msg: "analysis deadline expired; pending queries resolved UNDEF"}
			cr.res = res
			cr.rep.PairsProcessed = res.PairsProcessed
			cr.rep.Failure, cr.rep.Err = f, f
			return
		}
		cr.res = res
		cr.rep.Answers = res.RootAnswers()
		cr.rep.Full = res.FullCorrelation()
		cr.rep.DupEstimate = res.DuplicationEstimate(snapshot)
		cr.rep.PairsProcessed = res.PairsProcessed

		cr.apply = res.HasCorrelation()
		if opts.FullOnly && !res.FullCorrelation() {
			cr.apply = false
		}
		if opts.MaxDuplication > 0 && cr.rep.DupEstimate > opts.MaxDuplication {
			cr.apply = false
		}
		if opts.Profile != nil {
			cr.rep.Benefit = res.EstimatedBenefit(opts.Profile)
			if opts.MinBenefitPerNode > 0 {
				denom := float64(cr.rep.DupEstimate)
				if denom < 1 {
					denom = 1
				}
				if float64(cr.rep.Benefit)/denom < opts.MinBenefitPerNode {
					cr.apply = false
				}
			}
		}
	}
	if workers > len(batch) {
		workers = len(batch)
	}
	if workers <= 1 {
		for i := range batch {
			analyzeOne(i)
		}
	} else {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(batch) {
						return
					}
					analyzeOne(i)
				}
			}()
		}
		wg.Wait()
	}
	for i := range results {
		if results[i].rep.Analyzable {
			stats.Analyses++
		}
	}
	stats.AnalysisWall += time.Since(t0)
	return results
}

// visitedDirty reports whether the analysis visited any node changed by a
// restructuring applied earlier in the round (the visited set is the
// paper's Q[n] domain: exactly the nodes the demand-driven analysis
// reached). The intersection is a word-wise AND of the analysis' visited
// bitset with the round's dirty bitset — O(nodes/64) regardless of how
// large the dirty set or the visited set grows, where the old
// min(|dirty|, |visited|) scan degenerated on restructurings that dirtied
// thousands of nodes. Nodes created after the snapshot lie beyond the
// visited bitset and can never have been visited, so truncating the AND to
// the shorter slice is exact.
func visitedDirty(res *analysis.Result, dirty map[ir.NodeID]bool, dirtyBits []uint64) bool {
	if len(dirty) == 0 {
		return false
	}
	vis := res.VisitedBits()
	n := len(vis)
	if len(dirtyBits) < n {
		n = len(dirtyBits)
	}
	for i := 0; i < n; i++ {
		if vis[i]&dirtyBits[i] != 0 {
			return true
		}
	}
	return false
}

// markChanged records every node that differs between the pre- and
// post-restructuring programs: created, deleted, retyped, or re-wired nodes
// all count, so a snapshot analysis that visited none of them would compute
// the same result on the new program (its demand-driven traversal can only
// reach changed program parts through a changed node). Changed nodes are
// recorded twice — in the dirty map (consumed by the memo Commit) and in
// the dirty bitset (consumed by visitedDirty) — and the grown bitset is
// returned.
func markChanged(dirty map[ir.NodeID]bool, dirtyBits []uint64, before, after *ir.Program) []uint64 {
	words := (len(after.Nodes) + 63) / 64
	for len(dirtyBits) < words {
		dirtyBits = append(dirtyBits, 0)
	}
	for i, bn := range after.Nodes {
		var an *ir.Node
		if i < len(before.Nodes) {
			an = before.Nodes[i]
		}
		if nodeChanged(an, bn) {
			dirty[ir.NodeID(i)] = true
			dirtyBits[i>>6] |= 1 << (uint(i) & 63)
		}
	}
	return dirtyBits
}

func nodeChanged(a, b *ir.Node) bool {
	if (a == nil) != (b == nil) {
		return true
	}
	if a == nil {
		return false
	}
	if a.Kind != b.Kind || a.Proc != b.Proc || a.Dst != b.Dst || a.RHS != b.RHS ||
		a.CondVar != b.CondVar || a.CondOp != b.CondOp || a.CondRHS != b.CondRHS ||
		a.AVar != b.AVar || a.APred != b.APred || a.Callee != b.Callee ||
		a.Ptr != b.Ptr || a.Idx != b.Idx || a.Val != b.Val ||
		a.Synthetic != b.Synthetic || a.Line != b.Line {
		return true
	}
	return !equalNodeIDs(a.Succs, b.Succs) || !equalNodeIDs(a.Preds, b.Preds) ||
		!equalVarIDs(a.Args, b.Args)
}

func equalNodeIDs(a, b []ir.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalVarIDs(a, b []ir.VarID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sortedDescendants flattens an Outcome's branch-descendant map into ID
// order. Map iteration order is randomized, so requeueing straight from the
// map would make the queue — and with it the report order — nondeterministic.
func sortedDescendants(oc *Outcome) []ir.NodeID {
	var all []ir.NodeID
	for _, copies := range oc.BranchDescendants {
		all = append(all, copies...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all
}
