package restructure

import (
	"icbe/internal/analysis"
	"icbe/internal/ir"
)

// DriverOptions configures the one-by-one optimization driver.
type DriverOptions struct {
	// Analysis configures the correlation analysis (interprocedural or the
	// intraprocedural baseline, termination limit, substitution power).
	Analysis analysis.Options
	// MaxDuplication is the per-conditional code-duplication limit N: a
	// conditional is optimized only when the analysis estimates at most N
	// new operation nodes (paper §4 "Eliminated Branches"). Zero means
	// unlimited.
	MaxDuplication int
	// FullOnly restricts optimization to fully correlated conditionals
	// (outcome known along every incoming path).
	FullOnly bool
	// Profile supplies node execution counts; with MinBenefitPerNode > 0
	// the driver implements the heuristic the paper suggests as an
	// improvement over the growth-only limit (§4: "a better heuristic
	// would also consider the amount of conditionals eliminated"): a
	// conditional is optimized only when its estimated eliminated dynamic
	// instances per duplicated node reach the threshold.
	Profile           map[ir.NodeID]int64
	MinBenefitPerNode float64
}

// CondReport records the per-conditional outcome of a driver run.
type CondReport struct {
	// Cond is the branch node in the input program.
	Cond ir.NodeID
	Line int
	// Analyzable is false for branches not of the (var relop const) form.
	Analyzable bool
	// Answers is the root answer set found by the analysis.
	Answers analysis.AnswerSet
	// Full reports full correlation (no UNDEF path).
	Full bool
	// DupEstimate is the analysis' upper bound on new operation nodes.
	DupEstimate int
	// Benefit is the profile-based estimate of decided dynamic instances
	// (0 without a profile).
	Benefit int64
	// PairsProcessed is the analysis cost for this conditional.
	PairsProcessed int
	// Applied reports that restructuring was performed for this branch.
	Applied bool
	// Removed counts eliminated branch copies when applied.
	Removed int
	// Err records a restructuring failure (the program is left untouched).
	Err error
}

// DriverResult is the outcome of optimizing a whole program.
type DriverResult struct {
	// Program is the optimized program (the input is never mutated).
	Program *ir.Program
	// Reports holds one entry per conditional branch considered, in node
	// order.
	Reports []CondReport
	// Optimized counts conditionals for which restructuring was applied.
	Optimized int
	// PairsTotal sums the analysis cost over all conditionals.
	PairsTotal int
}

// Optimize applies ICBE to every analyzable conditional of the program, one
// by one: each conditional is analyzed on the current (already partially
// restructured) program, and restructured when correlation was found and
// the estimated code growth is within the per-conditional limit. The input
// program is left unmodified.
func Optimize(p *ir.Program, opts DriverOptions) *DriverResult {
	work := ir.Clone(p)
	out := &DriverResult{}

	// The work queue starts with the conditionals of the input program.
	// When restructuring one conditional splits another into copies, the
	// copies are requeued so the duplication-limit sweep stays monotone; a
	// cap bounds the total work on pathological programs.
	var queue []ir.NodeID
	queued := make(map[ir.NodeID]bool)
	p.LiveNodes(func(n *ir.Node) {
		if n.Kind == ir.NBranch {
			queue = append(queue, n.ID)
			queued[n.ID] = true
		}
	})
	maxWork := 8*len(queue) + 64

	for qi := 0; qi < len(queue) && qi < maxWork; qi++ {
		b := queue[qi]
		node := work.Node(b)
		rep := CondReport{Cond: b}
		if node == nil || node.Kind != ir.NBranch {
			// Consumed by an earlier restructuring (split or eliminated).
			continue
		}
		rep.Line = node.Line
		if !node.Analyzable() {
			out.Reports = append(out.Reports, rep)
			continue
		}
		rep.Analyzable = true

		// Analyze and restructure on a scratch clone so a failed
		// restructuring cannot corrupt the working program.
		scratch := ir.Clone(work)
		an := analysis.New(scratch, opts.Analysis)
		res := an.AnalyzeBranch(b)
		if res == nil {
			out.Reports = append(out.Reports, rep)
			continue
		}
		rep.Answers = res.RootAnswers()
		rep.Full = res.FullCorrelation()
		rep.DupEstimate = res.DuplicationEstimate(scratch)
		rep.PairsProcessed = res.PairsProcessed
		out.PairsTotal += res.PairsProcessed

		apply := res.HasCorrelation()
		if opts.FullOnly && !res.FullCorrelation() {
			apply = false
		}
		if opts.MaxDuplication > 0 && rep.DupEstimate > opts.MaxDuplication {
			apply = false
		}
		if opts.Profile != nil {
			rep.Benefit = res.EstimatedBenefit(opts.Profile)
			if opts.MinBenefitPerNode > 0 {
				denom := float64(rep.DupEstimate)
				if denom < 1 {
					denom = 1
				}
				if float64(rep.Benefit)/denom < opts.MinBenefitPerNode {
					apply = false
				}
			}
		}
		if apply {
			oc, err := Eliminate(scratch, res)
			if err != nil {
				rep.Err = err
			} else {
				rep.Applied = true
				rep.Removed = oc.BranchCopiesRemoved
				out.Optimized++
				work = scratch
				// Requeue branch copies created as a side effect of this
				// restructuring (including surviving copies of b itself).
				for _, copies := range oc.BranchDescendants {
					for _, c := range copies {
						if !queued[c] {
							queued[c] = true
							queue = append(queue, c)
						}
					}
				}
			}
		}
		out.Reports = append(out.Reports, rep)
	}
	out.Program = work
	return out
}
