package restructure

import (
	"strings"
	"testing"

	"icbe/internal/analysis"
	"icbe/internal/interp"
	"icbe/internal/ir"
	"icbe/internal/pred"
)

func build(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := ir.Build(src)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func findBranch(t *testing.T, p *ir.Program, varSuffix string, op pred.Op, c int64) *ir.Node {
	t.Helper()
	var found *ir.Node
	p.LiveNodes(func(n *ir.Node) {
		if n.Kind != ir.NBranch || !n.Analyzable() {
			return
		}
		if strings.HasSuffix(p.VarName(n.CondVar), varSuffix) && n.CondOp == op && n.CondRHS.Const == c {
			found = n
		}
	})
	if found == nil {
		t.Fatalf("no branch matches %s %s %d\n%s", varSuffix, op, c, p.Dump())
	}
	return found
}

// eliminateOne analyzes and restructures a single conditional, returning
// the optimized clone.
func eliminateOne(t *testing.T, p *ir.Program, b *ir.Node, opts analysis.Options) (*ir.Program, *Outcome) {
	t.Helper()
	work := ir.Clone(p)
	res := analysis.New(work, opts).AnalyzeBranch(b.ID)
	if res == nil {
		t.Fatal("branch not analyzable")
	}
	oc, err := Eliminate(work, res)
	if err != nil {
		t.Fatalf("Eliminate: %v\n%s", err, work.Dump())
	}
	return work, oc
}

// checkEquivalent runs both programs on the inputs and verifies identical
// output, no more executed operations, and no more executed conditionals.
func checkEquivalent(t *testing.T, orig, opt *ir.Program, inputs [][]int64) (condBefore, condAfter int64) {
	t.Helper()
	for _, in := range inputs {
		r1, err := interp.Run(orig, interp.Options{Input: in})
		if err != nil {
			t.Fatalf("original failed on %v: %v", in, err)
		}
		r2, err := interp.Run(opt, interp.Options{Input: in})
		if err != nil {
			t.Fatalf("optimized failed on %v: %v\n%s", in, err, opt.Dump())
		}
		if len(r1.Output) != len(r2.Output) {
			t.Fatalf("output mismatch on %v:\n  orig %v\n  opt  %v", in, r1.Output, r2.Output)
		}
		for i := range r1.Output {
			if r1.Output[i] != r2.Output[i] {
				t.Fatalf("output mismatch on %v:\n  orig %v\n  opt  %v", in, r1.Output, r2.Output)
			}
		}
		if r2.Operations > r1.Operations {
			t.Errorf("optimized executes more operations on %v: %d > %d", in, r2.Operations, r1.Operations)
		}
		if r2.CondExecs > r1.CondExecs {
			t.Errorf("optimized executes more conditionals on %v: %d > %d", in, r2.CondExecs, r1.CondExecs)
		}
		condBefore += r1.CondExecs
		condAfter += r2.CondExecs
	}
	return condBefore, condAfter
}

func inter() analysis.Options { return analysis.DefaultOptions() }

func TestEliminateFullyTrueBranch(t *testing.T) {
	p := build(t, `
		func main() {
			var x = 0;
			if (x == 0) { print(1); } else { print(2); }
			print(3);
		}
	`)
	b := findBranch(t, p, "x", pred.Eq, 0)
	opt, oc := eliminateOne(t, p, b, inter())
	if oc.BranchCopiesRemoved != 1 {
		t.Errorf("removed = %d, want 1", oc.BranchCopiesRemoved)
	}
	st := ir.Collect(opt)
	if st.Conditionals != 0 {
		t.Errorf("conditionals left = %d, want 0\n%s", st.Conditionals, opt.Dump())
	}
	before, after := checkEquivalent(t, p, opt, [][]int64{{}})
	if before != 1 || after != 0 {
		t.Errorf("cond execs %d -> %d, want 1 -> 0", before, after)
	}
}

func TestEliminatePartialCorrelation(t *testing.T) {
	p := build(t, `
		func main() {
			var x = 0;
			if (input() > 0) { x = input(); }
			if (x == 0) { print(1); } else { print(2); }
		}
	`)
	b := findBranch(t, p, "x", pred.Eq, 0)
	opt, oc := eliminateOne(t, p, b, inter())
	if oc.BranchCopiesRemoved < 1 {
		t.Error("no branch copy removed")
	}
	inputs := [][]int64{{0}, {5, 0}, {5, 9}, {-3}, {1, -1}}
	before, after := checkEquivalent(t, p, opt, inputs)
	if after >= before {
		t.Errorf("cond execs not reduced: %d -> %d", before, after)
	}
	// On the path where input() <= 0 the second test must be gone.
	r2, err := interp.Run(opt, interp.Options{Input: []int64{-1}})
	if err != nil {
		t.Fatal(err)
	}
	if r2.CondExecs != 1 {
		t.Errorf("cond execs on correlated path = %d, want 1 (only the first test)", r2.CondExecs)
	}
}

func TestEliminateBranchBranchCorrelation(t *testing.T) {
	p := build(t, `
		func main() {
			var x = input();
			if (x == 0) { print(1); } else { print(2); }
			if (x == 0) { print(3); } else { print(4); }
		}
	`)
	branches := []*ir.Node{}
	p.LiveNodes(func(n *ir.Node) {
		if n.Kind == ir.NBranch {
			branches = append(branches, n)
		}
	})
	second := branches[0]
	if branches[1].ID > second.ID {
		second = branches[1]
	}
	opt, oc := eliminateOne(t, p, second, inter())
	if oc.BranchCopiesRemoved != 2 {
		t.Errorf("removed = %d, want 2 (both split copies)", oc.BranchCopiesRemoved)
	}
	inputs := [][]int64{{0}, {1}, {-7}}
	for _, in := range inputs {
		r, err := interp.Run(opt, interp.Options{Input: in})
		if err != nil {
			t.Fatal(err)
		}
		if r.CondExecs != 1 {
			t.Errorf("cond execs on %v = %d, want 1", in, r.CondExecs)
		}
	}
	checkEquivalent(t, p, opt, inputs)
}

func TestLoopVersioning(t *testing.T) {
	// The inner test is loop-invariant: restructuring creates two loop
	// versions, each with the inner conditional eliminated (the paper's
	// nested-loop improvement over Mueller–Whalley).
	p := build(t, `
		func main() {
			var x = input();
			var i = 0;
			var sum = 0;
			while (i < 10) {
				if (x == 0) { sum = sum + 1; } else { sum = sum + 2; }
				i = i + 1;
			}
			print(sum);
		}
	`)
	b := findBranch(t, p, "x", pred.Eq, 0)
	opt, _ := eliminateOne(t, p, b, inter())
	inputs := [][]int64{{0}, {1}, {42}}
	for _, in := range inputs {
		r1, _ := interp.Run(p, interp.Options{Input: in})
		r2, err := interp.Run(opt, interp.Options{Input: in})
		if err != nil {
			t.Fatalf("optimized failed: %v", err)
		}
		if r1.Output[0] != r2.Output[0] {
			t.Fatalf("output mismatch on %v", in)
		}
		// Original: 10 loop tests + 10 inner tests + final loop test = 21.
		// Optimized: the inner test runs at most once (first iteration
		// before the split paths separate — in fact zero times, since the
		// correlation source is before the loop).
		if r2.CondExecs > r1.CondExecs-9 {
			t.Errorf("inner conditional not removed from loop: %d vs %d conds", r2.CondExecs, r1.CondExecs)
		}
	}
}

func TestExitSplitting(t *testing.T) {
	p := build(t, `
		func get() {
			if (input() > 0) { return 0; }
			return 7;
		}
		func main() {
			var r = get();
			if (r == 0) { print(1); } else { print(2); }
		}
	`)
	b := findBranch(t, p, "r", pred.Eq, 0)
	opt, oc := eliminateOne(t, p, b, inter())
	if oc.BranchCopiesRemoved != 2 {
		t.Errorf("removed = %d, want 2 (full correlation)", oc.BranchCopiesRemoved)
	}
	get := opt.ProcByName("get")
	if len(get.Exits) < 2 {
		t.Errorf("exit splitting expected: get has %d exits\n%s", len(get.Exits), opt.Dump())
	}
	inputs := [][]int64{{5}, {0}, {-1}}
	for _, in := range inputs {
		r, err := interp.Run(opt, interp.Options{Input: in})
		if err != nil {
			t.Fatalf("optimized failed on %v: %v\n%s", in, err, opt.Dump())
		}
		// Only the conditional inside get remains.
		if r.CondExecs != 1 {
			t.Errorf("cond execs = %d, want 1", r.CondExecs)
		}
	}
	checkEquivalent(t, p, opt, inputs)
}

func TestEntrySplitting(t *testing.T) {
	p := build(t, `
		func check(flag) {
			if (flag == 0) { return 1; }
			return 2;
		}
		func main() {
			print(check(0));
			print(check(1));
		}
	`)
	b := findBranch(t, p, "flag", pred.Eq, 0)
	opt, oc := eliminateOne(t, p, b, inter())
	if oc.BranchCopiesRemoved != 2 {
		t.Errorf("removed = %d, want 2", oc.BranchCopiesRemoved)
	}
	check := opt.ProcByName("check")
	if len(check.Entries) < 2 {
		t.Errorf("entry splitting expected: check has %d entries\n%s", len(check.Entries), opt.Dump())
	}
	r, err := interp.Run(opt, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.CondExecs != 0 {
		t.Errorf("cond execs = %d, want 0", r.CondExecs)
	}
	checkEquivalent(t, p, opt, [][]int64{{}})
}

func TestFigure5Scenario(t *testing.T) {
	p := build(t, `
		var x;
		func f() {
			if (input() > 0) { x = input(); }
			return 0;
		}
		func main() {
			if (input() > 0) { x = input(); } else { x = 5; }
			f();
			if (x == 0) { print(1); } else { print(2); }
		}
	`)
	b := findBranch(t, p, "x", pred.Eq, 0)
	opt, oc := eliminateOne(t, p, b, inter())
	if oc.BranchCopiesRemoved < 1 {
		t.Error("no branch removed")
	}
	inputs := [][]int64{
		{1, 0, 0},    // x=0 via first input, f leaves it
		{1, 0, 1, 0}, // x=0, f overwrites with 0
		{1, 7, -1},   // x=7, f leaves it
		{-1, -1},     // x=5, f leaves it: correlated FALSE path
		{-1, 1, 3},   // x=5, f overwrites with 3
		{-1, 1, 0},   // x=5, f overwrites with 0
	}
	before, after := checkEquivalent(t, p, opt, inputs)
	if after >= before {
		t.Errorf("cond execs not reduced: %d -> %d", before, after)
	}
	// On the fully correlated path (x=5, f transparent) the final test
	// must not execute: 2 tests before, both input()>0 tests remain = 2.
	rOpt, _ := interp.Run(opt, interp.Options{Input: []int64{-1, -1}})
	rOrig, _ := interp.Run(p, interp.Options{Input: []int64{-1, -1}})
	if rOpt.CondExecs != rOrig.CondExecs-1 {
		t.Errorf("correlated path: %d conds, want %d", rOpt.CondExecs, rOrig.CondExecs-1)
	}
}

func TestFgetcFigure1(t *testing.T) {
	// The paper's running example: in the original loop each character
	// executes several conditionals; after ICBE only one remains on the
	// common path.
	src := `
		var cnt;
		func fillbuf() {
			var n = input();
			if (n <= 0) { return -1; }
			cnt = n;
			return 0;
		}
		func fgetc() {
			if (cnt <= 0) {
				var r = fillbuf();
				if (r == -1) { return -1; }
			}
			cnt = cnt - 1;
			var c = byte(input());
			return c;
		}
		func main() {
			var c = fgetc();
			while (c != -1) {
				print(c);
				c = fgetc();
			}
		}
	`
	p := build(t, src)
	b := findBranch(t, p, "c", pred.Ne, -1)
	opt, oc := eliminateOne(t, p, b, inter())
	if oc.BranchCopiesRemoved < 2 {
		t.Errorf("removed = %d, want >= 2 (full correlation)", oc.BranchCopiesRemoved)
	}
	// Input model: fillbuf reads a chunk size, then fgetc reads bytes.
	inputs := [][]int64{
		{3, 65, 66, 67, 0},
		{1, 120, 2, 121, 122, -5},
		{0},
		{5, 1, 2, 3, 4, 5, 0},
	}
	before, after := checkEquivalent(t, p, opt, inputs)
	if after >= before {
		t.Errorf("cond execs not reduced: %d -> %d", before, after)
	}
	t.Logf("fgetc example: %d -> %d executed conditionals", before, after)
}

func TestOptimizeDriverWholeProgram(t *testing.T) {
	src := `
		func get() {
			if (input() > 0) { return 0; }
			return 7;
		}
		func main() {
			var r = get();
			if (r == 0) { print(1); } else { print(2); }
			var x = 0;
			if (x == 0) { print(3); }
		}
	`
	p := build(t, src)
	dr := Optimize(p, DriverOptions{Analysis: inter()})
	if dr.Optimized < 2 {
		t.Errorf("optimized = %d conditionals, want >= 2", dr.Optimized)
	}
	if err := ir.Validate(dr.Program); err != nil {
		t.Fatalf("driver output invalid: %v", err)
	}
	inputs := [][]int64{{1}, {0}, {-9}}
	before, after := checkEquivalent(t, p, dr.Program, inputs)
	if after >= before {
		t.Errorf("cond execs not reduced: %d -> %d", before, after)
	}
	// Reports must cover every branch.
	if len(dr.Reports) == 0 || dr.PairsTotal == 0 {
		t.Error("driver reports empty")
	}
}

func TestDriverDuplicationLimit(t *testing.T) {
	src := `
		func main() {
			var x = 0;
			if (input() > 0) { x = input(); }
			print(input()); print(input()); print(input());
			print(input()); print(input()); print(input());
			if (x == 0) { print(1); } else { print(2); }
		}
	`
	p := build(t, src)
	// With a tiny duplication limit the second conditional (which needs
	// the whole print chain duplicated) must be skipped.
	dr := Optimize(p, DriverOptions{Analysis: inter(), MaxDuplication: 2})
	for _, rep := range dr.Reports {
		if rep.Applied && rep.DupEstimate > 2 {
			t.Errorf("applied restructuring with estimate %d over limit", rep.DupEstimate)
		}
	}
	// With no limit it gets optimized.
	dr2 := Optimize(p, DriverOptions{Analysis: inter()})
	if dr2.Optimized <= dr.Optimized {
		t.Errorf("unlimited driver should optimize more: %d vs %d", dr2.Optimized, dr.Optimized)
	}
	checkEquivalent(t, p, dr.Program, [][]int64{{1, 9, 1, 2, 3, 4, 5, 6}})
	checkEquivalent(t, p, dr2.Program, [][]int64{{1, 9, 1, 2, 3, 4, 5, 6}, {-1, 1, 2, 3, 4, 5, 6}})
}

func TestDriverIntraVsInter(t *testing.T) {
	src := `
		func get() {
			if (input() > 0) { return 0; }
			return 7;
		}
		func main() {
			var r = get();
			if (r == 0) { print(1); } else { print(2); }
		}
	`
	p := build(t, src)
	intra := Optimize(p, DriverOptions{Analysis: analysis.Options{ModSummaries: true}})
	interR := Optimize(p, DriverOptions{Analysis: inter()})
	if interR.Optimized <= intra.Optimized {
		t.Errorf("inter should optimize more: inter %d, intra %d", interR.Optimized, intra.Optimized)
	}
	checkEquivalent(t, p, intra.Program, [][]int64{{1}, {0}})
	checkEquivalent(t, p, interR.Program, [][]int64{{1}, {0}})
}

func TestRecursiveProgramSurvives(t *testing.T) {
	src := `
		func fib(n) {
			if (n < 2) { return n; }
			return fib(n - 1) + fib(n - 2);
		}
		func main() { print(fib(12)); }
	`
	p := build(t, src)
	dr := Optimize(p, DriverOptions{Analysis: inter()})
	if err := ir.Validate(dr.Program); err != nil {
		t.Fatalf("invalid after optimizing recursion: %v", err)
	}
	checkEquivalent(t, p, dr.Program, [][]int64{{}})
}

func TestHeapProgramSurvives(t *testing.T) {
	src := `
		func cons(v, next) {
			var c = alloc(2);
			c[0] = v;
			c[1] = next;
			return c;
		}
		func sum(list) {
			var s = 0;
			while (list != 0) {
				s = s + list[0];
				list = list[1];
			}
			return s;
		}
		func main() {
			var l = 0;
			var i = input();
			while (i != -1) {
				l = cons(i, l);
				i = input();
			}
			print(sum(l));
		}
	`
	p := build(t, src)
	dr := Optimize(p, DriverOptions{Analysis: inter()})
	if err := ir.Validate(dr.Program); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	checkEquivalent(t, p, dr.Program, [][]int64{{1, 2, 3}, {}, {10, 20, 30, 40, 5}})
}

func TestEliminateFailsGracefullyOnMissingCond(t *testing.T) {
	p := build(t, `func main() { var x = 0; if (x == 0) { print(1); } }`)
	b := findBranch(t, p, "x", pred.Eq, 0)
	work := ir.Clone(p)
	res := analysis.New(work, inter()).AnalyzeBranch(b.ID)
	work.DeleteNode(b.ID)
	if _, err := Eliminate(work, res); err == nil {
		t.Error("expected error for deleted conditional")
	}
	if _, err := Eliminate(work, nil); err == nil {
		t.Error("expected error for nil result")
	}
}
