package restructure

import (
	"context"
	"fmt"
	"time"

	"icbe/internal/check"
	"icbe/internal/fold"
	"icbe/internal/ir"
	"icbe/internal/pred"
)

// runFoldPass is the driver's second optimizer (DriverOptions.Fold): after
// the correlation rounds settle, the CCP oracle's fact table (internal/fold)
// names the residual conditionals it can decide, and each one is folded —
// whole when constant on every executable in-edge, per-edge by redirection
// for edge-split residuals — inside the same transactional harness the
// correlation applies use. Every attempt runs on a scratch clone and must
// survive pruning + ir.Validate, the invariant lint passes against the
// working program's baseline, differential shadow execution (always, even
// when DriverOptions.Verify is off — folds trust a different oracle than the
// correlation analysis, so they buy their own dynamic evidence), and a
// post-fold oracle re-check that vetoes any fold creating a residual that
// was not there before. A veto discards the clone and counts a FailFold;
// the working program is never replaced by a program that failed a gate.
func runFoldPass(ctx context.Context, work *ir.Program, opts DriverOptions, out *DriverResult) *ir.Program {
	t0 := time.Now()
	stats := &out.Stats
	defer func() { stats.FoldWall += time.Since(t0) }()

	base := check.AnalyzeInvariants(work)
	facts := fold.Compute(work, base.SCCP)
	stats.SCCPResidualBefore = facts.Residual
	inputs := verifyInputs(opts)

	// Entries that already have no predecessors when the pass starts were
	// uncalled on input (or intentionally left by the correlation rounds);
	// the fold pass's prune must not delete them, mirroring the
	// restructurer's initiallyDead contract.
	initiallyDead := make(map[ir.NodeID]bool)
	for _, pr := range work.Procs {
		if pr == nil {
			continue
		}
		for _, e := range pr.Entries {
			if n := work.Node(e); n != nil && len(n.Preds) == 0 {
				initiallyDead[e] = true
			}
		}
	}

	// Adopted folds are budgeted like the driver's work queue: redirections
	// move edges forward through the graph and on adversarial loop shapes
	// two branches can trade the same in-edge back and forth indefinitely,
	// each exchange a semantically sound adopt.
	budget := 8*len(facts.Branches) + 64

	for ctx.Err() == nil && budget > 0 {
		applied := false
		for i := range facts.Branches {
			bf := &facts.Branches[i]
			if !bf.Foldable() || ctx.Err() != nil {
				continue
			}
			if bf.Class == fold.ClassEdgeSplit && opts.MaxDuplication > 0 &&
				outcomeClasses(bf) > opts.MaxDuplication {
				// A Breitner-style duplication scheme would materialize one
				// copy of the conditional per deciding outcome class; the
				// degenerate redirection adds zero operations, but the
				// driver's duplication budget still gates the estimate.
				continue
			}
			scratch := ir.Clone(work)
			stats.Clones++
			redirected, changed, fail := foldOne(work, scratch, bf, base, initiallyDead, inputs, stats)
			if !changed {
				continue
			}
			stats.FoldAttempted++
			if fail != nil {
				stats.countFailure(fail.Kind)
				continue
			}
			work = scratch
			stats.FoldApplied++
			stats.FoldDuplicated += redirected
			applied = true
			budget--
			base = check.AnalyzeInvariants(work)
			facts = fold.Compute(work, base.SCCP)
			break
		}
		if !applied {
			break
		}
	}
	stats.SCCPResidualAfter = facts.Residual
	if stats.SCCPResidualBefore > 0 {
		stats.FoldReduction = float64(stats.SCCPResidualBefore-stats.SCCPResidualAfter) /
			float64(stats.SCCPResidualBefore)
	}
	return work
}

// foldOne performs one transactional fold attempt on the scratch clone,
// running the full gate sequence. Every non-nil failure means the caller
// discards the clone — that is the rollback. changed is false when the
// rewriter had nothing safe to do for this row (no attempt happened).
func foldOne(work, scratch *ir.Program, bf *fold.BranchFact, base *check.Report,
	initiallyDead map[ir.NodeID]bool, inputs [][]int64,
	stats *DriverStats) (redirected int, changed bool, fail *BranchFailure) {
	defer func() {
		if r := recover(); r != nil {
			// The scratch may be arbitrarily damaged; report the attempt and
			// let the caller discard it.
			redirected, changed = 0, true
			fail = panicFailure(bf.Branch, bf.Line, r)
		}
	}()
	redirected, changed = fold.Apply(scratch, bf)
	if !changed {
		return 0, false, nil
	}
	pruneProgram(scratch, initiallyDead, nil)
	if err := ir.Validate(scratch); err != nil {
		return redirected, true, &BranchFailure{Kind: FailFold, Cond: bf.Branch, Line: bf.Line,
			Msg: "folded program failed structural validation", Err: err}
	}
	rep := check.AnalyzeInvariants(scratch)
	// Registry order, not map order, so the reported pass is deterministic
	// when several regress at once.
	for _, p := range check.Passes() {
		pass := p.Name()
		n, ok := rep.PerPass[pass]
		if !ok || n <= base.PerPass[pass] {
			continue
		}
		f, _ := rep.FirstFinding(pass)
		return redirected, true, &BranchFailure{Kind: FailFold, Cond: bf.Branch, Line: bf.Line,
			Msg: "folded program raised " + pass + " finding: " + f.Msg}
	}
	if f := verifyShadow(work, scratch, inputs, stats); f != nil {
		return redirected, true, &BranchFailure{Kind: FailFold, Cond: bf.Branch, Line: bf.Line,
			Msg: "fold failed shadow verification (" + f.Kind.String() + "): " + f.Msg, Err: f.Err}
	}
	if id, bad := newResidual(work, scratch, base.SCCP, rep.SCCP); bad {
		return redirected, true, &BranchFailure{Kind: FailFold, Cond: bf.Branch, Line: bf.Line,
			Msg: fmt.Sprintf("fold created a new residual constant branch at node %d", id)}
	}
	return redirected, true, nil
}

// newResidual reports an analyzable branch the oracle decides on the folded
// program but did not decide before the fold — the post-fold re-check's
// veto condition. Edge redirections remove meet operands from the folded
// branch's successors and can legitimately increase the oracle's precision
// elsewhere, so the veto is conservative: it may reject a beneficial fold,
// never adopt one that moves the residual count the wrong way.
func newResidual(before, after *ir.Program, sBefore, sAfter *check.SCCP) (ir.NodeID, bool) {
	found := ir.NoNode
	after.LiveNodes(func(n *ir.Node) {
		if found != ir.NoNode || n.Kind != ir.NBranch || !n.Analyzable() {
			return
		}
		if sAfter.BranchOutcome(n.ID) == pred.Unknown {
			return
		}
		bn := before.Node(n.ID)
		if bn != nil && bn.Kind == ir.NBranch && bn.Analyzable() &&
			sBefore.BranchOutcome(n.ID) != pred.Unknown {
			return // was already residual before the fold
		}
		found = n.ID
	})
	return found, found != ir.NoNode
}

// outcomeClasses counts the distinct outcomes the live deciding in-edges of
// an edge-split row imply — the number of conditional copies a
// duplication-based scheme would create.
func outcomeClasses(bf *fold.BranchFact) int {
	var t, f bool
	for _, e := range bf.Edges {
		if !e.Live {
			continue
		}
		switch e.Outcome {
		case pred.True:
			t = true
		case pred.False:
			f = true
		}
	}
	n := 0
	if t {
		n++
	}
	if f {
		n++
	}
	return n
}
