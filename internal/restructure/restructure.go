// Package restructure implements the ICBE code restructuring algorithm
// (Bodík/Gupta/Soffa, PLDI'97, Figure 8). Given the rolled-back answer sets
// of the correlation analysis, it splits every node hosting multiple
// answers to a query so that each copy hosts a single answer, isolating the
// correlated paths; copies of the analyzed conditional whose answer is TRUE
// or FALSE become unconditional and are removed.
//
// Splitting procedure entry nodes (entry splitting) and procedure exit
// nodes (exit splitting) happens with no special machinery — they are nodes
// of the ICFG like any other — but requires a final normalization pass that
// restores call-site normal form: call-site-exit nodes are duplicated so
// each has exactly one call-site predecessor and one procedure-exit
// predecessor (the paper's "converted to call site normal form").
//
// The transformation is safe: it never adds operations to any path. Its
// correctness is additionally checked at runtime by the interpreter, which
// verifies every assert node it executes.
package restructure

import (
	"errors"
	"fmt"
	"sort"

	"icbe/internal/analysis"
	"icbe/internal/ir"
)

// ErrAmbiguousTransparency reports that a conditional cannot be safely
// eliminated because a summary query was symbolically transformed inside a
// callee on one path and left untouched on another: both reach the
// procedure entry and the single TRANS answer conflates the two path
// classes, whose continuations in the caller may decide the conditional
// differently. The four-answer lattice of the paper cannot separate such
// paths, so restructuring declines (the analysis answers themselves remain
// correct as sets).
var ErrAmbiguousTransparency = errors.New("restructure: transparent paths carry distinct continuation queries; cannot isolate correlated paths")

// Outcome reports what one Eliminate call did.
type Outcome struct {
	// BranchCopiesRemoved counts conditional copies converted to
	// unconditional flow (>= 1 when the optimization succeeded).
	BranchCopiesRemoved int
	// Splits counts node-splitting operations performed.
	Splits int
	// NodesCreated counts nodes created by splitting and normalization.
	NodesCreated int
	// BranchDescendants maps each original branch node that was split away
	// to its surviving branch copies, so a driver can keep considering
	// them for optimization.
	BranchDescendants map[ir.NodeID][]ir.NodeID
}

// Eliminate restructures the program to eliminate the analyzed conditional
// along its correlated paths. The program is mutated in place; on error it
// may be left inconsistent, so callers clone first and discard on failure.
func Eliminate(p *ir.Program, res *analysis.Result) (*Outcome, error) {
	if res == nil {
		return nil, fmt.Errorf("restructure: nil analysis result")
	}
	if p.Node(res.Cond) == nil {
		return nil, fmt.Errorf("restructure: conditional %d no longer exists", res.Cond)
	}
	r := &rest{
		p:      p,
		res:    res,
		orig:   make(map[ir.NodeID]ir.NodeID),
		ans:    make(map[ir.NodeID]map[int]analysis.AnswerSet),
		inWL:   make(map[ir.NodeID]bool),
		origTF: make(map[ir.NodeID][2]ir.NodeID),
	}
	r.init()
	if err := r.checkTransparencyUnambiguous(); err != nil {
		return nil, err
	}
	if err := r.mainLoop(); err != nil {
		return nil, err
	}
	// Remove subgraphs disconnected by edge fixing before the strict arm
	// and normal-form checks.
	r.prune()
	if p.Node(res.Cond) == nil && r.liveCondCopies() == 0 {
		return nil, fmt.Errorf("restructure: conditional %d vanished during splitting", res.Cond)
	}
	if err := r.reorderBranchArms(); err != nil {
		return nil, err
	}
	if err := r.normalize(); err != nil {
		return nil, err
	}
	r.eliminateConditional()
	r.prune()
	if err := ir.Validate(p); err != nil {
		return nil, fmt.Errorf("restructure: produced invalid graph: %w", err)
	}
	r.out.BranchDescendants = make(map[ir.NodeID][]ir.NodeID)
	p.LiveNodes(func(n *ir.Node) {
		if n.Kind == ir.NBranch {
			if o := r.origOf(n.ID); o != n.ID {
				r.out.BranchDescendants[o] = append(r.out.BranchDescendants[o], n.ID)
			}
		}
	})
	return &r.out, nil
}

type rest struct {
	p   *ir.Program
	res *analysis.Result

	// orig maps copies to the analysis-time node they descend from;
	// analysis-time nodes are absent (identity).
	orig map[ir.NodeID]ir.NodeID
	// ans holds the current answer sets per live node (indexed by query
	// ID); only nodes visited by the analysis appear.
	ans map[ir.NodeID]map[int]analysis.AnswerSet

	wl   []ir.NodeID
	inWL map[ir.NodeID]bool

	// origTF snapshots the original (true, false) arm IDs of every branch
	// in the visited region, so arm order can be restored after splitting.
	origTF map[ir.NodeID][2]ir.NodeID
	// initiallyDead records entries that already had no call sites in the
	// input (dead procedures are not this transformation's business);
	// pruning only removes entries that lost their call sites here.
	initiallyDead map[ir.NodeID]bool

	out   Outcome
	steps int
}

func (r *rest) origOf(id ir.NodeID) ir.NodeID {
	if o, ok := r.orig[id]; ok {
		return o
	}
	return id
}

func (r *rest) queriesAt(id ir.NodeID) []*analysis.Query {
	return canonicalQueries(r.res.QueriesAt(r.origOf(id)))
}

// canonicalQueries reorders a node's queries by content instead of raise
// order. Raise order is a propagation-schedule artifact: a run replaying
// memoized summaries interns a summary's pairs consecutively, while a fresh
// run interleaves them, so the two runs hand mainLoop the same query sets in
// different orders. mainLoop acts on the first splittable query it sees, and
// that choice decides the IDs of every node the split creates — iteration
// must therefore be a function of content for a seeded run to emit the same
// program as a cold one. The key is unique within a node: the analysis
// interns one query per (var, pred, owner) and one summary entry per
// (exit, var, pred), so no two queries at a node compare equal.
func canonicalQueries(qs []*analysis.Query) []*analysis.Query {
	if len(qs) < 2 {
		return qs
	}
	out := make([]*analysis.Query, len(qs))
	copy(out, qs)
	sort.Slice(out, func(i, j int) bool { return queryLess(out[i], out[j]) })
	return out
}

func queryLess(a, b *analysis.Query) bool {
	if a.Var != b.Var {
		return a.Var < b.Var
	}
	if a.P.Op != b.P.Op {
		return a.P.Op < b.P.Op
	}
	if a.P.C != b.P.C {
		return a.P.C < b.P.C
	}
	ao, bo := a.Owner, b.Owner
	if (ao == nil) != (bo == nil) {
		return ao == nil // conditional's own queries before summary queries
	}
	if ao == nil {
		return false
	}
	if ao.Exit != bo.Exit {
		return ao.Exit < bo.Exit
	}
	aq, bq := ao.Qsn, bo.Qsn
	if aq.Var != bq.Var {
		return aq.Var < bq.Var
	}
	if aq.P.Op != bq.P.Op {
		return aq.P.Op < bq.P.Op
	}
	return aq.P.C < bq.P.C
}

func (r *rest) resolvedAt(id ir.NodeID, q *analysis.Query) (analysis.AnswerSet, bool) {
	return r.res.ResolvedAt(r.origOf(id), q)
}

func (r *rest) suppliers(id ir.NodeID, q *analysis.Query) []analysis.EdgeSupplier {
	return r.res.SuppliersAt(r.origOf(id), q)
}

func (r *rest) enqueue(id ir.NodeID) {
	if r.inWL[id] {
		return
	}
	r.inWL[id] = true
	r.wl = append(r.wl, id)
}

func (r *rest) init() {
	// Copy the analysis answers into the mutable per-node answer state.
	r.res.ForEachPair(func(pn ir.NodeID, q *analysis.Query, a analysis.AnswerSet) {
		if r.p.Node(pn) == nil {
			return
		}
		m := r.ans[pn]
		if m == nil {
			m = make(map[int]analysis.AnswerSet)
			r.ans[pn] = m
		}
		m[q.ID] = a
	})
	// Snapshot branch arms in the visited region (and the conditional
	// itself) before any mutation.
	for id := range r.ans {
		n := r.p.Node(id)
		if n != nil && n.Kind == ir.NBranch {
			r.origTF[id] = [2]ir.NodeID{n.TrueSucc(), n.FalseSucc()}
		}
	}
	r.initiallyDead = make(map[ir.NodeID]bool)
	for _, pr := range r.p.Procs {
		for _, e := range pr.Entries {
			if n := r.p.Node(e); n != nil && len(n.Preds) == 0 {
				r.initiallyDead[e] = true
			}
		}
	}
	// Seed the worklist with every visited node hosting a multi-answer
	// query (the frontier nodes among them make progress first; the rest
	// re-check cheaply), in node order: the seeding order decides the split
	// order and with it the IDs of created nodes, so iterating the map
	// directly would make the restructured program differ run to run.
	var seeds []ir.NodeID
	for id, m := range r.ans {
		for _, a := range m {
			if a.Count() > 1 {
				seeds = append(seeds, id)
				break
			}
		}
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	for _, id := range seeds {
		r.enqueue(id)
	}
}

// checkTransparencyUnambiguous refuses to restructure when any visited
// call-site exit receives transparent-path answers through more than one
// distinct continuation query (see ErrAmbiguousTransparency). With a single
// continuation query per call site, the TRANS answer class corresponds to
// exactly one caller-side query and edge fixing is path-precise.
func (r *rest) checkTransparencyUnambiguous() error {
	// Sorted pair order so the reported call-site exit is stable.
	type pk struct {
		node ir.NodeID
		q    *analysis.Query
	}
	var pks []pk
	r.res.ForEachPair(func(pn ir.NodeID, q *analysis.Query, _ analysis.AnswerSet) {
		pks = append(pks, pk{pn, q})
	})
	sort.Slice(pks, func(i, j int) bool {
		if pks[i].node != pks[j].node {
			return pks[i].node < pks[j].node
		}
		return pks[i].q.ID < pks[j].q.ID
	})
	for _, k := range pks {
		node := r.p.Node(k.node)
		if node == nil || node.Kind != ir.NCallExit {
			continue
		}
		sups := r.res.SuppliersAt(k.node, k.q)
		if !hasExitSupplier(sups) {
			continue
		}
		// Count distinct continuation queries per call predecessor.
		distinct := make(map[int]bool)
		for _, s := range sups {
			if !s.FromExit {
				distinct[s.Query.ID] = true
			}
		}
		if len(distinct) > 1 {
			return fmt.Errorf("%w (call-site exit %d)", ErrAmbiguousTransparency, k.node)
		}
	}
	return nil
}

const (
	maxSteps = 2_000_000
	// maxCreated bounds the nodes one Eliminate call may create. The
	// worst-case growth of path duplication is exponential (paper §3.3);
	// the optimizer is expected to gate on the analysis' duplication
	// estimate, and this cap turns a pathological blow-up into a clean
	// error instead of exhausting memory.
	maxCreated = 100_000
)

// mainLoop is Figure 8 lines 2–10.
func (r *rest) mainLoop() error {
	for len(r.wl) > 0 {
		r.steps++
		if r.steps > maxSteps {
			return fmt.Errorf("restructure: did not converge after %d steps", maxSteps)
		}
		if r.out.NodesCreated > maxCreated {
			return fmt.Errorf("restructure: code growth exceeded %d nodes", maxCreated)
		}
		id := r.wl[0]
		r.wl = r.wl[1:]
		r.inWL[id] = false
		node := r.p.Node(id)
		if node == nil {
			continue
		}
		qs := r.queriesAt(id)
		if len(qs) == 0 {
			continue
		}
		removed, edgeRemoved, didSplit, deleted := false, false, false, false
		for _, q := range qs {
			a := r.ans[id][q.ID]
			if a == 0 {
				continue
			}
			// Line 5: drop answers no longer available at predecessors.
			if _, isResolved := r.resolvedAt(id, q); !isResolved {
				avail := r.availAnswers(id, q)
				if na := a & avail; na != a {
					r.ans[id][q.ID] = na
					removed = true
					a = na
				}
				if a == 0 {
					// No predecessor supplies any answer for this query:
					// the node is unreachable (an infeasible combination of
					// per-query answers created by splitting). Delete it so
					// dead copies cannot confuse later passes.
					for _, s := range r.p.Node(id).Succs {
						r.enqueue(s)
					}
					r.removeNode(id)
					deleted = true
					break
				}
			}
			// Line 6: fix-edges.
			if r.fixEdges(id, q) {
				edgeRemoved = true
			}
			// Line 7: split when multiple answers remain.
			if a.Count() > 1 {
				r.split(id, q)
				didSplit = true
				break // id is deleted; copies are on the worklist
			}
		}
		if didSplit || deleted {
			continue
		}
		if removed {
			for _, s := range r.p.Node(id).Succs {
				r.enqueue(s)
			}
		}
		if edgeRemoved {
			// In-edge removal can change the availability of other
			// queries at this node.
			r.enqueue(id)
			for _, s := range r.p.Node(id).Succs {
				r.enqueue(s)
			}
		}
	}
	// Convergence check: every visited live node must host single answers.
	for id, m := range r.ans {
		if r.p.Node(id) == nil {
			continue
		}
		for qid, a := range m {
			if a.Count() > 1 {
				return fmt.Errorf("restructure: node %d still hosts %v for query %d after convergence",
					id, a, qid)
			}
		}
	}
	return nil
}

// availAnswers computes which answers for (id, q) are still supplied by the
// current predecessors (Figure 8 line 5).
func (r *rest) availAnswers(id ir.NodeID, q *analysis.Query) analysis.AnswerSet {
	node := r.p.Node(id)
	sups := r.suppliers(id, q)
	if len(sups) == 0 {
		// No recorded suppliers (possible only after truncation): leave
		// the answers untouched.
		return analysis.MaskAll
	}
	if node.Kind == ir.NCallExit {
		return r.callExitAvail(node, q, sups)
	}
	var avail analysis.AnswerSet
	for _, m := range node.Preds {
		om := r.origOf(m)
		for _, s := range sups {
			if s.Pred != om {
				continue
			}
			if pa, ok := r.ans[m][s.Query.ID]; ok {
				avail |= pa & s.Mask
			} else {
				// Predecessor without recorded answers: unconstrained.
				avail = analysis.MaskAll
			}
		}
	}
	return avail
}

// callExitAvail computes the availability at a call-site-exit node: answers
// are produced jointly by a (call predecessor, exit predecessor) pair — the
// exit supplies the answers resolved inside the callee, and when the callee
// is transparent (TRANS), the call predecessor supplies the answers of the
// continued entry queries.
func (r *rest) callExitAvail(node *ir.Node, q *analysis.Query, sups []analysis.EdgeSupplier) analysis.AnswerSet {
	calls, exits := r.callExitPreds(node)
	var avail analysis.AnswerSet
	for _, c := range calls {
		for _, e := range exits {
			avail |= r.pairAnswer(c, e, sups)
		}
	}
	if len(exits) == 0 && !hasExitSupplier(sups) {
		// Skip-style suppliers (the query bypassed the callee): the exit
		// predecessors impose no constraint, and pairing is not needed.
		for _, c := range calls {
			avail |= r.pairAnswer(c, ir.NoNode, sups)
		}
	}
	return avail
}

func hasExitSupplier(sups []analysis.EdgeSupplier) bool {
	for _, s := range sups {
		if s.FromExit {
			return true
		}
	}
	return false
}

func (r *rest) callExitPreds(node *ir.Node) (calls, exits []ir.NodeID) {
	return callExitPredsOf(r.p, node)
}

func callExitPredsOf(p *ir.Program, node *ir.Node) (calls, exits []ir.NodeID) {
	for _, m := range node.Preds {
		mn := p.Node(m)
		if mn == nil {
			continue
		}
		switch mn.Kind {
		case ir.NCall:
			calls = append(calls, m)
		case ir.NExit:
			exits = append(exits, m)
		}
	}
	return calls, exits
}

// pairAnswer computes the answers one (call copy, exit copy) pair delivers
// to a call-site exit, per the supplier structure recorded by the analysis.
func (r *rest) pairAnswer(call, exit ir.NodeID, sups []analysis.EdgeSupplier) analysis.AnswerSet {
	var a analysis.AnswerSet
	trans := false
	sawExitSup := false
	for _, s := range sups {
		if s.FromExit {
			sawExitSup = true
			if exit == ir.NoNode {
				continue
			}
			ea := r.ans[exit][s.Query.ID]
			a |= ea & s.Mask
			if ea&analysis.AnsTrans != 0 {
				trans = true
			}
		}
	}
	if trans || !sawExitSup {
		// Transparent path (or skip suppliers): the call-side suppliers
		// contribute.
		for _, s := range sups {
			if s.FromExit {
				continue
			}
			if ca, ok := r.ans[call][s.Query.ID]; ok {
				a |= ca & s.Mask
			} else {
				a |= s.Mask
			}
		}
	}
	return a
}

// fixEdges removes predecessor edges that no longer host a common answer
// with the node for query q (Figure 8 fix-edges). Returns whether an edge
// was removed.
func (r *rest) fixEdges(id ir.NodeID, q *analysis.Query) bool {
	node := r.p.Node(id)
	a := r.ans[id][q.ID]
	if a == 0 {
		return false
	}
	sups := r.suppliers(id, q)
	if len(sups) == 0 {
		return false // resolved here (answers originate at this node)
	}
	if node.Kind == ir.NCallExit {
		return r.fixCallExitEdges(node, q, a, sups)
	}
	removed := false
	for _, m := range append([]ir.NodeID(nil), node.Preds...) {
		om := r.origOf(m)
		var supplied analysis.AnswerSet
		has := false
		unconstrained := false
		for _, s := range sups {
			if s.Pred != om {
				continue
			}
			has = true
			if pa, ok := r.ans[m][s.Query.ID]; ok {
				supplied |= pa & s.Mask
			} else {
				unconstrained = true
			}
		}
		if has && !unconstrained && supplied&a == 0 {
			r.p.RemoveEdge(m, id)
			removed = true
		}
	}
	return removed
}

// fixCallExitEdges applies pair-aware edge fixing at call-site exits: an
// edge stays if it participates in at least one (call, exit) pair whose
// joint answers intersect the node's answers.
func (r *rest) fixCallExitEdges(node *ir.Node, q *analysis.Query, a analysis.AnswerSet, sups []analysis.EdgeSupplier) bool {
	calls, exits := r.callExitPreds(node)
	if !hasExitSupplier(sups) {
		// Skip suppliers: only call edges are constrained.
		removed := false
		for _, c := range calls {
			if r.pairAnswer(c, ir.NoNode, sups)&a == 0 {
				r.p.RemoveEdge(c, node.ID)
				removed = true
			}
		}
		return removed
	}
	validC := make(map[ir.NodeID]bool)
	validE := make(map[ir.NodeID]bool)
	for _, c := range calls {
		for _, e := range exits {
			if r.pairAnswer(c, e, sups)&a != 0 {
				validC[c] = true
				validE[e] = true
			}
		}
	}
	removed := false
	for _, c := range calls {
		if !validC[c] {
			r.p.RemoveEdge(c, node.ID)
			removed = true
		}
	}
	for _, e := range exits {
		if !validE[e] {
			r.p.RemoveEdge(e, node.ID)
			removed = true
		}
	}
	return removed
}

// answerBits iterates the individual answers of a set in a fixed order.
var answerBits = [4]analysis.AnswerSet{analysis.AnsTrue, analysis.AnsFalse, analysis.AnsUndef, analysis.AnsTrans}

// split duplicates node id so each copy hosts exactly one of its answers
// for q (Figure 8 split). The original is removed.
func (r *rest) split(id ir.NodeID, q *analysis.Query) {
	node := r.p.Node(id)
	a := r.ans[id][q.ID]
	r.out.Splits++
	for _, bit := range answerBits {
		if a&bit == 0 {
			continue
		}
		c := r.cloneNode(node)
		r.ans[c.ID][q.ID] = bit
		r.fixEdges(c.ID, q)
		r.enqueue(c.ID)
		for _, s := range c.Succs {
			r.enqueue(s)
		}
	}
	r.removeNode(id)
}

// cloneNode duplicates a node including its incident edges and analysis
// bookkeeping (Q[n], A[n,*]).
func (r *rest) cloneNode(n *ir.Node) *ir.Node {
	c := r.p.NewNode(n.Kind, n.Proc)
	c.Dst = n.Dst
	c.RHS = n.RHS
	c.CondVar = n.CondVar
	c.CondOp = n.CondOp
	c.CondRHS = n.CondRHS
	c.AVar = n.AVar
	c.APred = n.APred
	c.Callee = n.Callee
	c.Args = append([]ir.VarID(nil), n.Args...)
	c.Ptr = n.Ptr
	c.Idx = n.Idx
	c.Val = n.Val
	c.Synthetic = n.Synthetic
	c.Line = n.Line
	r.out.NodesCreated++

	// Incident edges: successors first (preserves branch arm order on the
	// copy), then predecessors.
	for _, s := range n.Succs {
		r.p.AddEdge(c.ID, s)
	}
	for _, m := range n.Preds {
		r.p.AddEdge(m, c.ID)
	}

	r.orig[c.ID] = r.origOf(n.ID)
	am := make(map[int]analysis.AnswerSet, len(r.ans[n.ID]))
	for k, v := range r.ans[n.ID] {
		am[k] = v
	}
	r.ans[c.ID] = am

	pr := r.p.Procs[n.Proc]
	switch n.Kind {
	case ir.NEntry:
		pr.Entries = append(pr.Entries, c.ID)
	case ir.NExit:
		pr.Exits = append(pr.Exits, c.ID)
	case ir.NBranch:
		tf := r.origTF[r.origOf(n.ID)]
		r.origTF[c.ID] = tf
	}
	return c
}

// removeNode deletes a node and its bookkeeping, maintaining the procedure
// entry/exit lists.
func (r *rest) removeNode(id ir.NodeID) {
	n := r.p.Node(id)
	if n == nil {
		return
	}
	pr := r.p.Procs[n.Proc]
	switch n.Kind {
	case ir.NEntry:
		pr.Entries = removeID(pr.Entries, id)
	case ir.NExit:
		pr.Exits = removeID(pr.Exits, id)
	}
	r.p.DeleteNode(id)
	delete(r.ans, id)
}

func removeID(ids []ir.NodeID, x ir.NodeID) []ir.NodeID {
	out := ids[:0]
	for _, id := range ids {
		if id != x {
			out = append(out, id)
		}
	}
	return out
}

// reorderBranchArms restores the Succs[0] = true / Succs[1] = false
// convention for every branch in the restructured region, using the
// original-arm lineage snapshot.
func (r *rest) reorderBranchArms() error {
	var err error
	r.p.LiveNodes(func(n *ir.Node) {
		if err != nil || n.Kind != ir.NBranch {
			return
		}
		tf, tracked := r.origTF[n.ID]
		if !tracked {
			tf, tracked = r.origTF[r.origOf(n.ID)]
		}
		if !tracked {
			return // branch outside the restructured region
		}
		if len(n.Succs) != 2 {
			err = fmt.Errorf("restructure: branch %d has %d successors after convergence", n.ID, len(n.Succs))
			return
		}
		o0 := r.origOf(n.Succs[0])
		o1 := r.origOf(n.Succs[1])
		switch {
		case o0 == tf[0] && o1 == tf[1]:
			// Already ordered.
		case o0 == tf[1] && o1 == tf[0]:
			n.Succs[0], n.Succs[1] = n.Succs[1], n.Succs[0]
		default:
			err = fmt.Errorf("restructure: branch %d arms (%d,%d) do not descend from (%d,%d)",
				n.ID, n.Succs[0], n.Succs[1], tf[0], tf[1])
		}
	})
	return err
}

// liveCondCopies counts surviving copies of the analyzed conditional.
func (r *rest) liveCondCopies() int {
	n := 0
	r.p.LiveNodes(func(nd *ir.Node) {
		if nd.Kind == ir.NBranch && r.origOf(nd.ID) == r.res.Cond {
			n++
		}
	})
	return n
}

// eliminateConditional converts every copy of the analyzed conditional that
// hosts a single TRUE or FALSE answer into straight-line flow (Figure 8
// lines 15–16).
func (r *rest) eliminateConditional() {
	root := r.res.Root
	var victims []*ir.Node
	r.p.LiveNodes(func(n *ir.Node) {
		if n.Kind == ir.NBranch && r.origOf(n.ID) == r.res.Cond {
			victims = append(victims, n)
		}
	})
	for _, n := range victims {
		switch r.ans[n.ID][root.ID] {
		case analysis.AnsTrue:
			r.p.RemoveEdge(n.ID, n.FalseSucc())
		case analysis.AnsFalse:
			r.p.RemoveEdge(n.ID, n.TrueSucc())
		default:
			continue
		}
		n.Kind = ir.NNop
		n.Synthetic = true
		r.out.BranchCopiesRemoved++
	}
}
