package restructure

import (
	"time"

	"icbe/internal/analysis"
	"icbe/internal/check"
	"icbe/internal/ir"
)

// testHookCheckAnswers lets tests substitute the answer set the cross-check
// sees for one conditional, simulating a buggy backward analysis without
// having one (see SetFaultInjection). It must be nil outside tests.
var testHookCheckAnswers func(p *ir.Program, b ir.NodeID, ans analysis.AnswerSet) analysis.AnswerSet

// checkGate is the static verification layer of the driver
// (DriverOptions.Check): the forward SCCP oracle cross-checks every
// demand-driven answer before its restructuring is attempted, and the
// invariant lint passes re-run on each scratch clone, vetoing any apply that
// raises a finding the working program did not have. Like the shadow oracle
// it gates transactionally — a veto discards the scratch clone — but it is
// static: no inputs are run, so it also covers paths shadow vectors miss.
type checkGate struct {
	stats *DriverStats
	// prog/sccp cache the oracle for the current working program revision;
	// baseline holds its per-pass invariant finding counts, the reference a
	// scratch clone must not exceed.
	prog     *ir.Program
	sccp     *check.SCCP
	baseline map[string]int
	// pending holds the scratch clone's report between the gate check and
	// the driver's commit, so adoption reuses it instead of re-analyzing.
	pendingProg     *ir.Program
	pendingSCCP     *check.SCCP
	pendingBaseline map[string]int
}

// newCheckGate analyzes the input working program and records its invariant
// baseline.
func newCheckGate(work *ir.Program, stats *DriverStats) *checkGate {
	g := &checkGate{stats: stats}
	rep := g.analyze(work)
	g.prog, g.sccp, g.baseline = work, rep.SCCP, rep.PerPass
	stats.CheckFindingsPre = len(rep.Findings)
	return g
}

func (g *checkGate) analyze(p *ir.Program) *check.Report {
	t0 := time.Now()
	rep := check.AnalyzeInvariants(p)
	g.stats.CheckRuns++
	g.stats.CheckWall += time.Since(t0)
	return rep
}

// sccpFor returns the oracle for the given working-program revision,
// recomputing the cache when the program changed under the gate.
func (g *checkGate) sccpFor(p *ir.Program) *check.SCCP {
	if g.prog != p {
		rep := g.analyze(p)
		g.prog, g.sccp, g.baseline = p, rep.SCCP, rep.PerPass
	}
	return g.sccp
}

// crossCheck compares one analyzed conditional's root answer set against the
// oracle before any restructuring is attempted. A disagreement is a
// contained FailCheck: the conditional is refused, everything else proceeds.
func (g *checkGate) crossCheck(work *ir.Program, cr *condResult) *BranchFailure {
	ans := cr.rep.Answers
	if testHookCheckAnswers != nil {
		ans = testHookCheckAnswers(work, cr.b, ans)
	}
	verdict, cf := check.CrossCheck(work, g.sccpFor(work), cr.b, ans)
	switch verdict {
	case check.VerdictAgree:
		g.stats.SCCPAgreements++
		g.stats.SCCPDecided++
	case check.VerdictICBEOnly:
		// A decided claim the oracle could not grade: part of the recall
		// denominator but neither an agreement nor a veto.
		g.stats.SCCPDecided++
	case check.VerdictVacuous:
		g.stats.SCCPVacuous++
	case check.VerdictDisagree:
		g.stats.SCCPDisagreements++
		g.stats.SCCPDecided++
		return &BranchFailure{Kind: FailCheck, Cond: cr.b, Line: cr.rep.Line,
			Msg: "demand-driven answer contradicts the SCCP oracle", Err: cf}
	}
	return nil
}

// checkApply runs the invariant passes on the scratch clone and vetoes the
// apply when any pass reports more findings than the working program's
// baseline. On success the scratch report is stashed for adopt.
func (g *checkGate) checkApply(scratch *ir.Program, cr *condResult) *BranchFailure {
	rep := g.analyze(scratch)
	// Registry order, not map order, so the reported pass is deterministic
	// when several regress at once.
	for _, p := range check.Passes() {
		pass := p.Name()
		n, ok := rep.PerPass[pass]
		if !ok || n <= g.baseline[pass] {
			continue
		}
		f, _ := rep.FirstFinding(pass)
		return &BranchFailure{Kind: FailCheck, Cond: cr.b, Line: cr.rep.Line,
			Msg: "restructured program raised " + pass + " finding: " + f.Msg}
	}
	g.pendingProg, g.pendingSCCP, g.pendingBaseline = scratch, rep.SCCP, rep.PerPass
	return nil
}

// adopt promotes the stashed scratch report to the gate's baseline when the
// driver commits that clone as the new working program.
func (g *checkGate) adopt(work *ir.Program) {
	if g.pendingProg == work {
		g.prog, g.sccp, g.baseline = work, g.pendingSCCP, g.pendingBaseline
	}
	g.pendingProg, g.pendingSCCP, g.pendingBaseline = nil, nil, nil
}

// finish computes the end-of-run counters: the recall ratio (graded fraction
// of the decided, non-vacuous claims), the residual metric (analyzable
// branches of the final program the oracle still decides — branches ICBE
// could have eliminated), and the residual invariant finding count.
func (g *checkGate) finish(work *ir.Program) {
	s := g.sccpFor(work)
	if g.stats.SCCPDecided > 0 {
		g.stats.SCCPRecall = float64(g.stats.SCCPAgreements+g.stats.SCCPDisagreements) /
			float64(g.stats.SCCPDecided)
	}
	g.stats.SCCPResidual = check.RecallCount(work, s)
	total := 0
	for _, n := range g.baseline {
		total += n
	}
	g.stats.CheckFindingsPost = total
}
