package restructure

// Integration tests between the analysis and restructuring: analysis on
// already-restructured (multi-entry/exit) graphs, determinism, transitive
// summaries, and resolution corner cases that need the full pipeline.

import (
	"errors"
	"testing"

	"icbe/internal/analysis"
	"icbe/internal/ir"
	"icbe/internal/pred"
)

func analyzeB(t *testing.T, p *ir.Program, b *ir.Node, opts analysis.Options) *analysis.Result {
	t.Helper()
	res := analysis.New(p, opts).AnalyzeBranch(b.ID)
	if res == nil {
		t.Fatal("nil analysis result")
	}
	return res
}

// TestAnalysisOnRestructuredGraph verifies the analysis handles graphs
// with multiple procedure entries and exits — the paper: "the analysis is
// invoked on a restructured program in which procedures can have multiple
// entries".
func TestAnalysisOnRestructuredGraph(t *testing.T) {
	src := `
		func get() {
			if (input() > 0) { return 0; }
			return 7;
		}
		func main() {
			var r = get();
			if (r == 0) { print(1); } else { print(2); }
			var s = get();
			if (s == 7) { print(3); } else { print(4); }
		}
	`
	p := build(t, src)
	b1 := findBranch(t, p, "r", pred.Eq, 0)
	res1 := analyzeB(t, p, b1, inter())
	if _, err := Eliminate(p, res1); err != nil {
		t.Fatalf("first eliminate: %v", err)
	}
	if err := ir.Validate(p); err != nil {
		t.Fatal(err)
	}
	get := p.ProcByName("get")
	if len(get.Exits) < 2 {
		t.Fatalf("expected split exits, got %d", len(get.Exits))
	}
	// Analyze the second caller test on the multi-exit graph.
	b2 := findBranch(t, p, "s", pred.Eq, 7)
	res2 := analyzeB(t, p, b2, inter())
	if got := res2.RootAnswers(); got != analysis.AnsTrue|analysis.AnsFalse {
		t.Errorf("root answers = %v, want {T,F}", got)
	}
	if _, err := Eliminate(p, res2); err != nil {
		t.Fatalf("second eliminate: %v", err)
	}
	if err := ir.Validate(p); err != nil {
		t.Fatal(err)
	}
}

// TestAnalysisDeterministic verifies repeated runs produce identical
// answers and identical cost counters.
func TestAnalysisDeterministic(t *testing.T) {
	p := build(t, `
		var g;
		func f(a) {
			if (a > 0) { g = a; return 1; }
			return 0;
		}
		func main() {
			var r = f(input());
			if (r == 1) { print(g); }
			if (g > 0) { print(2); }
		}
	`)
	type obs struct {
		ans   analysis.AnswerSet
		pairs int
	}
	var first []obs
	for round := 0; round < 3; round++ {
		var got []obs
		an := analysis.New(p, inter())
		p.LiveNodes(func(n *ir.Node) {
			if n.Kind == ir.NBranch && n.Analyzable() {
				res := an.AnalyzeBranch(n.ID)
				got = append(got, obs{res.RootAnswers(), res.PairsProcessed})
			}
		})
		if round == 0 {
			first = got
			continue
		}
		if len(got) != len(first) {
			t.Fatal("nondeterministic result count")
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("round %d: result %d differs: %+v vs %+v", round, i, got[i], first[i])
			}
		}
	}
}

// TestCalleeChainTransitiveSummaries exercises summary queries that cross
// two call levels.
func TestCalleeChainTransitiveSummaries(t *testing.T) {
	p := build(t, `
		var g;
		func inner() {
			if (input() > 0) { g = input(); }
			return 0;
		}
		func outer() {
			inner();
			return 0;
		}
		func main() {
			g = 5;
			outer();
			if (g == 5) { print(1); } else { print(2); }
		}
	`)
	b := findBranch(t, p, "g", pred.Eq, 5)
	res := analyzeB(t, p, b, inter())
	if got := res.RootAnswers(); got != analysis.AnsTrue|analysis.AnsUndef {
		t.Errorf("root answers = %v, want {T,U}", got)
	}
	if len(res.SNEs()) < 2 {
		t.Errorf("expected summaries for both outer and inner, got %d", len(res.SNEs()))
	}
	// And the whole pipeline still works on it.
	opt, _ := eliminateOne(t, p, b, inter())
	checkEquivalent(t, p, opt, [][]int64{{1, 0, 5}, {-1}, {200, 5}, {1, 5}})
}

// TestGlobalDestinationAtCallExit covers a call result assigned to a
// global that the callee also modifies.
func TestGlobalDestinationAtCallExit(t *testing.T) {
	p := build(t, `
		var g;
		func make() {
			g = input();
			return 3;
		}
		func main() {
			g = make();
			if (g == 3) { print(1); } else { print(g); }
		}
	`)
	b := findBranch(t, p, "g", pred.Eq, 3)
	res := analyzeB(t, p, b, inter())
	// The call-site exit g := $ret overwrites whatever make stored; the
	// return value is the constant 3: fully TRUE.
	if got := res.RootAnswers(); got != analysis.AnsTrue {
		t.Errorf("root answers = %v, want {T}", got)
	}
	opt, oc := eliminateOne(t, p, b, inter())
	if oc.BranchCopiesRemoved != 1 {
		t.Errorf("removed = %d", oc.BranchCopiesRemoved)
	}
	checkEquivalent(t, p, opt, [][]int64{{9}, {}})
}

// TestSelfRecursiveSummary: summaries across direct recursion terminate,
// and restructuring declines the ambiguous-transparency case they create
// (the summary query is transformed by `g = n` on one path and untouched
// on the others, so a single TRANS class cannot separate the paths — see
// ErrAmbiguousTransparency).
func TestSelfRecursiveSummary(t *testing.T) {
	src := `
		var g;
		func dig(n) {
			if (n <= 0) { return 0; }
			if (input() > 100) { g = n; }
			return dig(n - 1);
		}
		func main() {
			g = 1;
			dig(input());
			if (g == 1) { print(1); } else { print(2); }
		}
	`
	p := build(t, src)
	b := findBranch(t, p, "g", pred.Eq, 1)
	res := analyzeB(t, p, b, inter())
	// The analysis answer set is correct: transparent recursion chains
	// (TRUE) and overwriting paths (UNDEF).
	if got := res.RootAnswers(); got != analysis.AnsTrue|analysis.AnsUndef {
		t.Errorf("root answers = %v, want {T,U}", got)
	}
	// Restructuring must refuse rather than miscompile.
	work := ir.Clone(p)
	resW := analysis.New(work, inter()).AnalyzeBranch(b.ID)
	_, err := Eliminate(work, resW)
	if !errors.Is(err, ErrAmbiguousTransparency) {
		t.Fatalf("Eliminate error = %v, want ErrAmbiguousTransparency", err)
	}
	// The driver skips it and the program stays correct.
	dr := Optimize(p, DriverOptions{Analysis: inter(), MaxDuplication: 200})
	checkEquivalent(t, p, dr.Program, [][]int64{
		{3, 1, 2, 3},
		{2, 500, 1},
		{0},
		{4, 101, 101, 101, 101},
	})
}

// TestOptimizeIdempotentSemantics: running the driver on its own output
// keeps semantics and never increases dynamic conditionals.
func TestOptimizeIdempotentSemantics(t *testing.T) {
	src := `
		func sign(v) {
			if (v < 0) { return -1; }
			if (v == 0) { return 0; }
			return 1;
		}
		func main() {
			var i = 0;
			while (i < 5) {
				var s = sign(input());
				if (s == 0) { print(100); }
				else if (s == -1) { print(200); }
				else { print(300); }
				i = i + 1;
			}
		}
	`
	p := build(t, src)
	opts := DriverOptions{Analysis: inter(), MaxDuplication: 200}
	once := Optimize(p, opts)
	twice := Optimize(once.Program, opts)
	if err := ir.Validate(twice.Program); err != nil {
		t.Fatal(err)
	}
	inputs := [][]int64{{1, -2, 0, 5, -9}, {0, 0, 0, 0, 0}, {}}
	checkEquivalent(t, p, once.Program, inputs)
	checkEquivalent(t, once.Program, twice.Program, inputs)
}

// TestFullOnlyDriver restricts optimization to fully correlated
// conditionals.
func TestFullOnlyDriver(t *testing.T) {
	src := `
		func main() {
			var x = 0;
			if (input() > 0) { x = input(); }
			if (x == 0) { print(1); }      // partial: {T,U}
			var y = 3;
			if (y == 3) { print(2); }      // full: {T}
		}
	`
	p := build(t, src)
	dr := Optimize(p, DriverOptions{Analysis: inter(), FullOnly: true})
	applied := 0
	for _, rep := range dr.Reports {
		if rep.Applied {
			applied++
			if !rep.Full {
				t.Errorf("FullOnly applied to partial conditional at line %d", rep.Line)
			}
		}
	}
	if applied == 0 {
		t.Error("FullOnly applied nothing")
	}
	checkEquivalent(t, p, dr.Program, [][]int64{{5, 0}, {-1}})
}

// TestBenefitGateDriver: the profile-guided gate skips low-benefit
// conditionals.
func TestBenefitGateDriver(t *testing.T) {
	src := `
		func main() {
			var cold = 0;
			if (input() > 50) { cold = input(); }
			if (cold == 0) { print(1); }
			var i = 0;
			var hot = 7;
			while (i < 100) {
				if (hot == 7) { print(2); }
				i = i + 1;
			}
		}
	`
	p := build(t, src)
	prof := map[ir.NodeID]int64{}
	p.LiveNodes(func(n *ir.Node) { prof[n.ID] = 1 }) // flat profile: everything cheap
	dr := Optimize(p, DriverOptions{
		Analysis: inter(), Profile: prof, MinBenefitPerNode: 1000,
	})
	if dr.Optimized != 0 {
		t.Errorf("high threshold should gate everything, optimized %d", dr.Optimized)
	}
	dr2 := Optimize(p, DriverOptions{
		Analysis: inter(), Profile: prof, MinBenefitPerNode: 0.001,
	})
	if dr2.Optimized == 0 {
		t.Error("tiny threshold should allow optimization")
	}
	for _, rep := range dr2.Reports {
		if rep.Applied && rep.Benefit == 0 {
			t.Errorf("applied with zero recorded benefit at line %d", rep.Line)
		}
	}
}
