package restructure

import (
	"errors"
	"fmt"
	"time"

	"icbe/internal/interp"
	"icbe/internal/ir"
)

// verifyMaxSteps bounds each shadow run of the pre-apply program so
// verification cannot stall the driver on a slow workload; inputs whose
// original run exhausts the budget are skipped, not failed (the step-limit
// error is typed, so "too slow" never masquerades as "wrong").
const verifyMaxSteps = 2_000_000

// verifyShadow differentially executes the pre- and post-apply programs
// over the given inputs and returns a typed failure when the restructuring
// violated the paper's guarantee: output must be identical and the
// optimized program must never execute more operations (§3.2). Fault
// behaviour must be preserved too — a run that faults must keep faulting,
// with the same output prefix.
func verifyShadow(pre, post *ir.Program, inputs [][]int64, stats *DriverStats) *BranchFailure {
	t0 := time.Now()
	defer func() { stats.VerifyWall += time.Since(t0) }()
	for _, in := range inputs {
		stats.VerifyRuns++
		preRes, preErr := interp.Run(pre, interp.Options{Input: in, MaxSteps: verifyMaxSteps})
		if errors.Is(preErr, interp.ErrStepLimit) {
			// The original program is too slow for the shadow budget on
			// this input; there is nothing sound to compare against.
			continue
		}
		// Steps count synthetic nodes too, which restructuring may add
		// even though operations never grow, so the post budget is the
		// original's step count with generous slack rather than an equal
		// bound.
		postRes, postErr := interp.Run(post, interp.Options{Input: in, MaxSteps: 2*preRes.Steps + 4096})
		if errors.Is(postErr, interp.ErrStepLimit) {
			return &BranchFailure{Kind: FailOpGrowth, Msg: fmt.Sprintf(
				"shadow run exceeded its step budget on input %v (original: %d steps)", in, preRes.Steps)}
		}
		if (preErr != nil) != (postErr != nil) {
			return &BranchFailure{Kind: FailDiffMismatch, Err: firstErr(preErr, postErr), Msg: fmt.Sprintf(
				"fault behaviour changed on input %v (original error: %v, optimized error: %v)", in, preErr, postErr)}
		}
		if !equalInt64s(preRes.Output, postRes.Output) {
			return &BranchFailure{Kind: FailDiffMismatch, Msg: fmt.Sprintf(
				"output changed on input %v: %v -> %v", in, preRes.Output, postRes.Output)}
		}
		if postRes.Operations > preRes.Operations {
			return &BranchFailure{Kind: FailOpGrowth, Msg: fmt.Sprintf(
				"executed operations grew on input %v: %d -> %d", in, preRes.Operations, postRes.Operations)}
		}
	}
	return nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func equalInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// verifyInputs builds the shadow-execution input set: the caller's
// workload vectors first, then the built-in vectors that cover the EOF
// model (empty stream), boundary values, and pseudo-random streams.
func verifyInputs(opts DriverOptions) [][]int64 {
	out := append([][]int64(nil), opts.VerifyInputs...)
	out = append(out,
		nil,
		[]int64{0},
		[]int64{1, 2, 3, 4, 5, 6, 7, 8},
		[]int64{-1, -2, -3, 0, 1, -128, 255, 256},
	)
	// Pseudo-random vectors from the same splitmix64 generator randprog
	// uses, so the fuzz harness and the driver probe comparable input
	// distributions. Fixed seeds keep driver results reproducible.
	for _, sv := range []struct {
		seed uint64
		n    int
	}{{3, 6}, {17, 11}, {99, 17}} {
		out = append(out, splitmixInputs(sv.seed, sv.n))
	}
	return out
}

func splitmixInputs(seed uint64, n int) []int64 {
	s := seed*2654435761 + 1
	v := make([]int64, n)
	for i := range v {
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		v[i] = int64(z%257) - 128
	}
	return v
}
