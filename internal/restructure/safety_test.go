package restructure

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"icbe/internal/interp"
	"icbe/internal/ir"
)

// safetySrc has three independently optimizable conditionals (each variable
// is constant-initialized, so every branch is fully correlated) plus a
// trailing print so shadow execution has output to compare.
const safetySrc = `
var g = 7;

func main() {
	var a = 0;
	var b = 1;
	var c = 2;
	if (a == 0) { print(10); }
	if (b == 1) { print(20); }
	if (c == 2) { print(30); }
	print(a + b + c + g);
}
`

func buildSafety(t *testing.T) *ir.Program {
	t.Helper()
	p, err := ir.Build(safetySrc)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

// setHooks installs the fault-injection hooks and restores them when the
// test ends. The hooks are package globals, so tests using them must not run
// in parallel (they don't: no t.Parallel in this file).
func setHooks(t *testing.T, analyze func(*ir.Program, ir.NodeID), afterApply func(*ir.Program, ir.NodeID) error) {
	t.Helper()
	testHookAnalyze = analyze
	testHookAfterApply = afterApply
	t.Cleanup(func() {
		testHookAnalyze = nil
		testHookAfterApply = nil
	})
}

// baselineOptimized is the number of conditionals the driver applies on
// safetySrc with no faults injected.
func baselineOptimized(t *testing.T) int {
	t.Helper()
	res := Optimize(buildSafety(t), DriverOptions{})
	if res.Optimized == 0 {
		t.Fatalf("baseline run optimized nothing; test program is broken")
	}
	return res.Optimized
}

func countKind(res *DriverResult, k FailureKind) int {
	n := 0
	for _, r := range res.Reports {
		if r.Failure != nil && r.Failure.Kind == k {
			n++
		}
	}
	if n != res.Stats.Failures[k] {
		return -1 // report/stats disagreement; caller fails with both values
	}
	return n
}

// TestInjectedValidateFailureRollsBackAll injects a validation failure into
// every apply attempt and checks the driver completes, categorizes each
// failure, and leaves the program byte-identical to the input.
func TestInjectedValidateFailureRollsBackAll(t *testing.T) {
	p := buildSafety(t)
	want := ir.Clone(p).Dump()
	injected := errors.New("injected gate failure")
	setHooks(t, nil, func(*ir.Program, ir.NodeID) error { return injected })

	res := Optimize(p, DriverOptions{})
	if res.Optimized != 0 {
		t.Fatalf("Optimized = %d, want 0 when every apply fails its gate", res.Optimized)
	}
	if got := res.Program.Dump(); got != want {
		t.Fatalf("program not rolled back to input:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	if n := countKind(res, FailValidate); n != 3 {
		t.Fatalf("validate failures = %d (stats %v), want 3", n, res.Stats.Failures)
	}
	for _, r := range res.Reports {
		if r.Failure == nil {
			continue
		}
		if r.Applied {
			t.Fatalf("conditional line %d both failed and applied", r.Line)
		}
		if !errors.Is(r.Err, injected) {
			t.Fatalf("report Err does not unwrap to the injected error: %v", r.Err)
		}
	}
}

// TestFailureIsolatedToOneBranch fails only the first apply attempt and
// checks the remaining conditionals still optimize.
func TestFailureIsolatedToOneBranch(t *testing.T) {
	base := baselineOptimized(t)
	calls := 0
	setHooks(t, nil, func(*ir.Program, ir.NodeID) error {
		calls++
		if calls == 1 {
			return errors.New("first apply rejected")
		}
		return nil
	})

	res := Optimize(buildSafety(t), DriverOptions{})
	if res.Optimized != base-1 {
		t.Fatalf("Optimized = %d, want %d (baseline %d minus the one failed branch)",
			res.Optimized, base-1, base)
	}
	if n := countKind(res, FailValidate); n != 1 {
		t.Fatalf("validate failures = %d (stats %v), want 1", n, res.Stats.Failures)
	}
	if err := ir.Validate(res.Program); err != nil {
		t.Fatalf("result program invalid: %v", err)
	}
}

// TestApplyPanicContained panics inside the apply path and checks the driver
// converts it into a FailPanic report with a stack, rolls the branch back,
// and still optimizes the others.
func TestApplyPanicContained(t *testing.T) {
	base := baselineOptimized(t)
	calls := 0
	setHooks(t, nil, func(*ir.Program, ir.NodeID) error {
		calls++
		if calls == 1 {
			panic("injected apply panic")
		}
		return nil
	})

	res := Optimize(buildSafety(t), DriverOptions{})
	if res.Optimized != base-1 {
		t.Fatalf("Optimized = %d, want %d", res.Optimized, base-1)
	}
	if n := countKind(res, FailPanic); n != 1 {
		t.Fatalf("panic failures = %d (stats %v), want 1", n, res.Stats.Failures)
	}
	for _, r := range res.Reports {
		if r.Failure == nil {
			continue
		}
		if r.Failure.Kind != FailPanic {
			t.Fatalf("failure kind = %v, want panic", r.Failure.Kind)
		}
		if !strings.Contains(r.Failure.Msg, "injected apply panic") {
			t.Fatalf("failure message lost the panic value: %q", r.Failure.Msg)
		}
		if r.Failure.Stack == "" {
			t.Fatalf("panic failure carries no stack")
		}
	}
	if err := ir.Validate(res.Program); err != nil {
		t.Fatalf("result program invalid after contained panic: %v", err)
	}
}

// TestAnalysisPanicContained panics inside one branch's analysis (on worker
// goroutines too) and checks the other branches are unaffected.
func TestAnalysisPanicContained(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := buildSafety(t)
		var target ir.NodeID = -1
		p.LiveNodes(func(n *ir.Node) {
			if n.Kind == ir.NBranch && target < 0 {
				target = n.ID
			}
		})
		if target < 0 {
			t.Fatal("no branch found")
		}
		setHooks(t, func(_ *ir.Program, b ir.NodeID) {
			if b == target {
				panic("injected analysis panic")
			}
		}, nil)

		res := Optimize(p, DriverOptions{Workers: workers})
		if n := countKind(res, FailPanic); n != 1 {
			t.Fatalf("workers=%d: panic failures = %d (stats %v), want 1",
				workers, n, res.Stats.Failures)
		}
		if res.Optimized != 2 {
			t.Fatalf("workers=%d: Optimized = %d, want 2 (branches not hit by the panic)",
				workers, res.Optimized)
		}
		testHookAnalyze = nil
	}
}

// TestStructuralCorruptionCaughtByValidate makes the hook corrupt the
// scratch graph (dangling successor edge) without returning an error; the
// ir.Validate gate must catch it and roll back.
func TestStructuralCorruptionCaughtByValidate(t *testing.T) {
	p := buildSafety(t)
	want := ir.Clone(p).Dump()
	calls := 0
	setHooks(t, nil, func(scratch *ir.Program, _ ir.NodeID) error {
		calls++
		if calls > 1 {
			return nil
		}
		// Break edge symmetry: retarget a successor without fixing preds.
		for _, n := range scratch.Nodes {
			if n != nil && n.Kind == ir.NAssign && len(n.Succs) == 1 {
				n.Succs[0] = n.ID // self-loop the assign; preds now dangle
				return nil
			}
		}
		return nil
	})

	res := Optimize(p, DriverOptions{})
	if n := countKind(res, FailValidate); n != 1 {
		t.Fatalf("validate failures = %d (stats %v), want 1", n, res.Stats.Failures)
	}
	if res.Optimized != 2 {
		t.Fatalf("Optimized = %d, want 2", res.Optimized)
	}
	// The failing branch's attempt must not have leaked into the result.
	if err := ir.Validate(res.Program); err != nil {
		t.Fatalf("corruption leaked into the adopted program: %v", err)
	}
	_ = want
}

// TestDiffMismatchRollsBack mutates program semantics (a printed constant)
// on a structurally valid scratch clone; only the differential shadow oracle
// can catch it.
func TestDiffMismatchRollsBack(t *testing.T) {
	calls := 0
	setHooks(t, nil, func(scratch *ir.Program, _ ir.NodeID) error {
		calls++
		if calls > 1 {
			return nil
		}
		for _, n := range scratch.Nodes {
			if n != nil && n.Kind == ir.NPrint && n.Val.IsConst {
				n.Val.Const += 1000 // wrong output, still a valid graph
				return nil
			}
		}
		return nil
	})

	res := Optimize(buildSafety(t), DriverOptions{Verify: true})
	if n := countKind(res, FailDiffMismatch); n != 1 {
		t.Fatalf("diff-mismatch failures = %d (stats %v), want 1", n, res.Stats.Failures)
	}
	if res.Optimized != 2 {
		t.Fatalf("Optimized = %d, want 2", res.Optimized)
	}
	if res.Stats.VerifyRuns == 0 {
		t.Fatalf("oracle reported a mismatch but VerifyRuns = 0")
	}
	// The semantic corruption was rolled back: the result still prints the
	// original values.
	got, err := interp.Run(res.Program, interp.Options{MaxSteps: 1 << 20})
	if err != nil {
		t.Fatalf("result program faults: %v", err)
	}
	orig, err := interp.Run(buildSafety(t), interp.Options{MaxSteps: 1 << 20})
	if err != nil {
		t.Fatalf("input program faults: %v", err)
	}
	if len(got.Output) != len(orig.Output) {
		t.Fatalf("output length changed: %v vs %v", got.Output, orig.Output)
	}
	for i := range got.Output {
		if got.Output[i] != orig.Output[i] {
			t.Fatalf("output changed at %d: %v vs %v", i, got.Output, orig.Output)
		}
	}
}

// TestOpGrowthRollsBack splices an extra operation node (g := g, output-
// neutral and structurally valid) into the scratch clone; the shadow oracle
// must reject it for violating the never-more-operations guarantee.
func TestOpGrowthRollsBack(t *testing.T) {
	p := buildSafety(t)
	var g ir.VarID = -1
	for _, v := range p.Vars {
		if v.Name == "g" && v.IsGlobal() {
			g = v.ID
		}
	}
	if g < 0 {
		t.Fatal("global g not found")
	}
	calls := 0
	setHooks(t, nil, func(scratch *ir.Program, _ ir.NodeID) error {
		calls++
		if calls > 1 {
			return nil
		}
		// Insert a chain of `g := g` nodes after main's entry: output
		// identical, several more executed operations on every path — more
		// than the one branch execution the elimination itself saves, so
		// net executed operations must grow.
		main := scratch.Procs[scratch.MainProc]
		entry := scratch.Node(main.Entries[0])
		succ := entry.Succs[0]
		prev := entry
		for i := 0; i < 4; i++ {
			n := scratch.NewNode(ir.NAssign, entry.Proc)
			n.Dst = g
			n.RHS = ir.RHS{Kind: ir.RCopy, Src: g}
			n.Line = entry.Line
			n.Preds = []ir.NodeID{prev.ID}
			prev.Succs[0] = n.ID
			n.Succs = []ir.NodeID{succ}
			prev = n
		}
		sn := scratch.Node(succ)
		for i, pr := range sn.Preds {
			if pr == entry.ID {
				sn.Preds[i] = prev.ID
				break
			}
		}
		return nil
	})

	res := Optimize(p, DriverOptions{Verify: true})
	if n := countKind(res, FailOpGrowth); n != 1 {
		t.Fatalf("op-growth failures = %d (stats %v), want 1", n, res.Stats.Failures)
	}
	if res.Optimized != 2 {
		t.Fatalf("Optimized = %d, want 2", res.Optimized)
	}
}

// TestDriverTimeoutSkipsQueue runs with an already-expired deadline: every
// conditional must be reported Skipped with a timeout failure and the
// program returned unchanged.
func TestDriverTimeoutSkipsQueue(t *testing.T) {
	p := buildSafety(t)
	want := ir.Clone(p).Dump()
	res := Optimize(p, DriverOptions{Timeout: time.Nanosecond})
	if res.Optimized != 0 {
		t.Fatalf("Optimized = %d under an expired deadline, want 0", res.Optimized)
	}
	if !res.Truncated {
		t.Fatalf("Truncated not set on deadline expiry")
	}
	if got := res.Program.Dump(); got != want {
		t.Fatalf("deadline-expired run mutated the program")
	}
	if len(res.Reports) != 3 {
		t.Fatalf("reports = %d, want 3", len(res.Reports))
	}
	for _, r := range res.Reports {
		if !r.Skipped {
			t.Fatalf("line %d not marked Skipped", r.Line)
		}
		if r.Failure == nil || r.Failure.Kind != FailTimeout {
			t.Fatalf("line %d missing timeout failure: %+v", r.Line, r.Failure)
		}
	}
	if n := res.Stats.Failures[FailTimeout]; n != 3 {
		t.Fatalf("timeout failures in stats = %d, want 3", n)
	}
}

// TestCanceledContextSkipsQueue checks an externally canceled Ctx behaves
// like an expired deadline.
func TestCanceledContextSkipsQueue(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := Optimize(buildSafety(t), DriverOptions{Ctx: ctx})
	if res.Optimized != 0 || !res.Truncated {
		t.Fatalf("canceled ctx: Optimized = %d, Truncated = %v; want 0, true",
			res.Optimized, res.Truncated)
	}
	if n := res.Stats.Failures[FailTimeout]; n != 3 {
		t.Fatalf("timeout failures = %d, want 3", n)
	}
}

// TestBranchTimeoutInterruptsAnalysis gives each conditional an already-
// expired per-branch analysis deadline: analysis is interrupted at its first
// poll, the conditional is reported with a timeout failure (not Skipped — it
// was dequeued), and nothing is applied.
func TestBranchTimeoutInterruptsAnalysis(t *testing.T) {
	p := buildSafety(t)
	want := ir.Clone(p).Dump()
	res := Optimize(p, DriverOptions{BranchTimeout: time.Nanosecond})
	if res.Optimized != 0 {
		t.Fatalf("Optimized = %d with expired branch deadlines, want 0", res.Optimized)
	}
	if got := res.Program.Dump(); got != want {
		t.Fatalf("branch-timeout run mutated the program")
	}
	if n := countKind(res, FailTimeout); n != 3 {
		t.Fatalf("timeout failures = %d (stats %v), want 3", n, res.Stats.Failures)
	}
	for _, r := range res.Reports {
		if r.Skipped {
			t.Fatalf("line %d marked Skipped; branch-deadline victims are analyzed, not skipped", r.Line)
		}
	}
}

// TestVerifyCleanRun checks the oracle passes legitimate restructurings
// through: with Verify on and no injected faults, the driver optimizes
// exactly what it optimizes without verification.
func TestVerifyCleanRun(t *testing.T) {
	base := baselineOptimized(t)
	res := Optimize(buildSafety(t), DriverOptions{
		Verify:       true,
		VerifyInputs: [][]int64{{5, 6, 7}},
	})
	if res.Optimized != base {
		t.Fatalf("Verify changed the outcome: Optimized = %d, want %d", res.Optimized, base)
	}
	if len(res.Stats.Failures) != 0 {
		t.Fatalf("clean run reported failures: %v", res.Stats.Failures)
	}
	if res.Stats.VerifyRuns == 0 {
		t.Fatalf("Verify on but no shadow runs recorded")
	}
	if res.Stats.VerifyWall <= 0 {
		t.Fatalf("VerifyWall not recorded")
	}
}

// TestFailureKindStrings pins the report vocabulary the CLI and the public
// API surface.
func TestFailureKindStrings(t *testing.T) {
	want := map[FailureKind]string{
		FailPanic:        "panic",
		FailValidate:     "validate",
		FailDiffMismatch: "diff-mismatch",
		FailOpGrowth:     "op-growth",
		FailTimeout:      "timeout",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("FailureKind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if got := FailureKind(99).String(); got != "FailureKind(99)" {
		t.Errorf("unknown kind stringifies as %q", got)
	}
}
