package restructure

import (
	"fmt"

	"icbe/internal/ir"
)

// normalize restores call-site normal form after splitting (the paper's
// final conversion step in Figure 7): every call-site-exit node is
// duplicated so that each copy has exactly one call-site predecessor and
// one procedure-exit predecessor. Only (call, exit) combinations that are
// possible — the exit is reachable from the entry the call invokes, and the
// pair's answers are consistent with the node's — are materialized.
func (r *rest) normalize() error {
	// Verify normal form (a): each call has one entry successor.
	var err error
	r.p.LiveNodes(func(n *ir.Node) {
		if err != nil || n.Kind != ir.NCall {
			return
		}
		entries := 0
		for _, s := range n.Succs {
			if sn := r.p.Node(s); sn != nil && sn.Kind == ir.NEntry {
				entries++
			}
		}
		if entries != 1 {
			err = fmt.Errorf("restructure: call %d has %d entry successors after splitting", n.ID, entries)
		}
	})
	if err != nil {
		return err
	}

	reach := newReachCache(r.p)
	var ces []*ir.Node
	r.p.LiveNodes(func(n *ir.Node) {
		if n.Kind == ir.NCallExit {
			ces = append(ces, n)
		}
	})
	for _, ce := range ces {
		calls, exits := r.callExitPreds(ce)
		if len(calls) == 1 && len(exits) == 1 {
			continue
		}
		if len(calls) == 0 || len(exits) == 0 {
			// Unreachable remnant; pruning removes it.
			continue
		}
		for _, c := range calls {
			entry := r.p.EntrySucc(r.p.Node(c))
			for _, e := range exits {
				if !reach.reaches(entry.ID, e) {
					continue
				}
				if !r.pairConsistent(ce, c, e) {
					continue
				}
				copyNode := r.cloneNode(ce)
				// The clone duplicated every incident edge; keep only this
				// pair's predecessors (successors stay).
				for _, m := range append([]ir.NodeID(nil), copyNode.Preds...) {
					mn := r.p.Node(m)
					if mn == nil {
						continue
					}
					if (mn.Kind == ir.NCall && m != c) || (mn.Kind == ir.NExit && m != e) {
						r.p.RemoveEdge(m, copyNode.ID)
					}
				}
			}
		}
		r.removeNode(ce.ID)
	}
	return nil
}

// pairConsistent reports whether a (call, exit) predecessor pair can
// deliver any of the node's answers for every query the analysis raised at
// it. Unvisited call-site exits (no queries) are unconstrained.
func (r *rest) pairConsistent(ce *ir.Node, call, exit ir.NodeID) bool {
	for _, q := range r.queriesAt(ce.ID) {
		a := r.ans[ce.ID][q.ID]
		if a == 0 {
			continue
		}
		sups := r.suppliers(ce.ID, q)
		if len(sups) == 0 {
			continue
		}
		if !hasExitSupplier(sups) {
			if r.pairAnswer(call, ir.NoNode, sups)&a == 0 {
				return false
			}
			continue
		}
		if r.pairAnswer(call, exit, sups)&a == 0 {
			return false
		}
	}
	return true
}

// reachCache answers intraprocedural reachability queries from procedure
// entries (treating call → call-site-exit as the local fallthrough).
type reachCache struct {
	p    *ir.Program
	from map[ir.NodeID]map[ir.NodeID]bool
}

func newReachCache(p *ir.Program) *reachCache {
	return &reachCache{p: p, from: make(map[ir.NodeID]map[ir.NodeID]bool)}
}

func (rc *reachCache) reaches(entry, target ir.NodeID) bool {
	seen, ok := rc.from[entry]
	if !ok {
		seen = make(map[ir.NodeID]bool)
		proc := rc.p.Node(entry).Proc
		stack := []ir.NodeID{entry}
		seen[entry] = true
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range rc.p.Node(id).Succs {
				sn := rc.p.Node(s)
				if sn == nil || sn.Proc != proc || seen[s] {
					continue
				}
				seen[s] = true
				stack = append(stack, s)
			}
		}
		rc.from[entry] = seen
	}
	return seen[target]
}

// prune removes entry copies that lost all their call sites and every node
// no longer reachable from its procedure's entries — this implements the
// paper's observation that statements reachable only from a bypassed
// original entry can be deleted. It also cascades the structural
// consequences of unreachability proven by the analysis: call-site exits
// whose exit (or call) predecessor died can never receive control; calls
// with no remaining return point never complete; non-exit nodes with no
// successors are dead ends; and a branch with exactly one surviving arm
// always takes it and becomes unconditional.
func (r *rest) prune() {
	pruneProgram(r.p, r.initiallyDead, func(id ir.NodeID) { delete(r.ans, id) })
}

// pruneProgram is the standalone form of the sweep, shared with the fold
// pass (which prunes scratch clones with no restructuring state around).
// initiallyDead protects entries that were already uncalled before the
// caller's transformation; onRemove, when non-nil, observes every deleted
// node so callers can drop their own per-node bookkeeping.
func pruneProgram(p *ir.Program, initiallyDead map[ir.NodeID]bool, onRemove func(ir.NodeID)) {
	remove := func(id ir.NodeID) {
		n := p.Node(id)
		if n == nil {
			return
		}
		if n.Proc >= 0 && n.Proc < len(p.Procs) && p.Procs[n.Proc] != nil {
			pr := p.Procs[n.Proc]
			switch n.Kind {
			case ir.NEntry:
				pr.Entries = removeID(pr.Entries, id)
			case ir.NExit:
				pr.Exits = removeID(pr.Exits, id)
			}
		}
		p.DeleteNode(id)
		if onRemove != nil {
			onRemove(id)
		}
	}
	// Generation-marked reachability scratch, shared across fixpoint
	// iterations: one O(nodes + edges) sweep over all procedures per
	// iteration, instead of a per-procedure scan of the whole node arena
	// (which made each iteration O(procs × nodes) — quadratic at the 100k-node
	// scale the stress benchmark runs).
	seen := make([]uint32, len(p.Nodes))
	gen := uint32(0)
	var stack []ir.NodeID
	for {
		gen++
		changed := false
		// Drop dead entries (never for main, which is invoked externally,
		// and never for procedures that were already uncalled on input).
		for _, pr := range p.Procs {
			if pr == nil || pr.Index == p.MainProc {
				continue
			}
			for _, e := range append([]ir.NodeID(nil), pr.Entries...) {
				n := p.Node(e)
				if n != nil && len(n.Preds) == 0 && !initiallyDead[e] {
					remove(e)
					changed = true
				}
			}
		}
		// Remove nodes unreachable from the remaining entries. Procedures
		// partition the node arena and the walk never crosses a procedure
		// boundary, so all entries seed one flood fill.
		stack = stack[:0]
		for _, pr := range p.Procs {
			if pr == nil {
				continue
			}
			for _, e := range pr.Entries {
				if p.Node(e) != nil && seen[e] != gen {
					seen[e] = gen
					stack = append(stack, e)
				}
			}
		}
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			n := p.Node(id)
			for _, s := range n.Succs {
				sn := p.Node(s)
				if sn == nil || sn.Proc != n.Proc || seen[s] == gen {
					continue
				}
				seen[s] = gen
				stack = append(stack, s)
			}
		}
		var unreachable []ir.NodeID
		p.LiveNodes(func(n *ir.Node) {
			if seen[n.ID] != gen {
				unreachable = append(unreachable, n.ID)
			}
		})
		for _, id := range unreachable {
			if p.Node(id) != nil {
				remove(id)
				changed = true
			}
		}
		// Structural cascades.
		var victims []ir.NodeID
		var unbranch []ir.NodeID
		p.LiveNodes(func(n *ir.Node) {
			switch n.Kind {
			case ir.NCallExit:
				calls, exits := callExitPredsOf(p, n)
				if len(calls) == 0 || len(exits) == 0 {
					victims = append(victims, n.ID)
				}
			case ir.NCall:
				if len(p.CallExitSuccs(n)) == 0 {
					victims = append(victims, n.ID)
				}
			case ir.NBranch:
				switch len(n.Succs) {
				case 0:
					victims = append(victims, n.ID)
				case 1:
					unbranch = append(unbranch, n.ID)
				}
			case ir.NExit:
			default:
				if len(n.Succs) == 0 {
					victims = append(victims, n.ID)
				}
			}
		})
		for _, id := range victims {
			if p.Node(id) != nil {
				remove(id)
				changed = true
			}
		}
		// A branch whose other arm was proven unreachable always takes the
		// surviving arm.
		for _, id := range unbranch {
			n := p.Node(id)
			if n == nil || len(n.Succs) != 1 {
				continue
			}
			n.Kind = ir.NNop
			n.Synthetic = true
			changed = true
		}
		if !changed {
			return
		}
	}
}
