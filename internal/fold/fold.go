// Package fold turns the CCP oracle's facts into a second optimizer pass:
// residual attribution (phase 1) classifies every conditional the
// correlation analysis left behind by which oracle fact decides it, and the
// rewriter (phase 2) folds branches constant on all executable in-edges and
// redirects the deciding in-edges of edge-split residuals straight to the
// implied arm — the degenerate form of Breitner-style conditional
// duplication for a single side-effect-free conditional (duplicating the
// branch per deciding in-edge class and folding each copy is exactly a
// redirection, with zero code growth).
//
// The package is a pure graph analysis plus an unguarded rewrite: the
// transactional harness around it (internal/restructure's fold pass) owns
// scratch clones, validation, invariant regression, shadow execution, and
// the post-fold re-check.
package fold

import (
	"fmt"

	"icbe/internal/check"
	"icbe/internal/ir"
	"icbe/internal/pred"
)

// Class is the residual attribution of one conditional.
type Class uint8

// Residual classes.
const (
	// ClassUndecidable: no executable in-edge decides the condition.
	ClassUndecidable Class = iota
	// ClassValue: the condition is constant on every executable in-edge,
	// decided by plain constant/interval values.
	ClassValue
	// ClassCopy: constant on every executable in-edge, and at least one
	// deciding edge owes its fact to the copy-propagation group.
	ClassCopy
	// ClassEdgeSplit: only some executable in-edges decide the condition —
	// eliminable per-edge by redirection, not as a whole.
	ClassEdgeSplit
)

func (c Class) String() string {
	switch c {
	case ClassUndecidable:
		return "undecidable"
	case ClassValue:
		return "value"
	case ClassCopy:
		return "copy"
	case ClassEdgeSplit:
		return "edge-split"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// BranchFact is the fact table row for one live conditional: its residual
// class, the whole-branch outcome when one exists, and the per-edge oracle
// verdicts with provenance.
type BranchFact struct {
	Branch     ir.NodeID
	Line       int
	Analyzable bool
	Class      Class
	// Outcome is the branch's constant outcome when the class is ClassValue
	// or ClassCopy (decided either by the entry state or by unanimous
	// agreement of the executable in-edges); pred.Unknown otherwise.
	Outcome pred.Outcome
	// Edges holds one fact per in-edge, in predecessor-list order.
	Edges        []check.EdgeFact
	LiveEdges    int
	DecidedEdges int
}

// Foldable reports whether the rewriter has anything to do for this row.
func (bf *BranchFact) Foldable() bool { return bf.Class != ClassUndecidable }

// Facts is the residual fact table of one settled program.
type Facts struct {
	// Branches holds one row per live conditional, in node order.
	Branches []BranchFact
	// Residual counts the conditionals the oracle proves constant on every
	// executable in-edge (ClassValue and ClassCopy rows) — the fold pass's
	// elimination target. It is a superset of the check gate's SCCPResidual
	// stat, which counts only analyzable branches decided by the entry
	// state: the per-edge replay also decides branches whose entry-state
	// meet lost the bound and branches outside ICBE's analyzable shape.
	Residual int
}

// ByClass counts the table's rows per class.
func (f *Facts) ByClass() map[Class]int {
	out := make(map[Class]int)
	for i := range f.Branches {
		out[f.Branches[i].Class]++
	}
	return out
}

// Analyze runs the oracle on the program and computes its fact table.
func Analyze(p *ir.Program) *Facts { return Compute(p, check.RunSCCP(p)) }

// Compute builds the residual fact table from an existing oracle run
// (which must have been produced from exactly this program).
func Compute(p *ir.Program, s *check.SCCP) *Facts {
	f := &Facts{}
	p.LiveNodes(func(n *ir.Node) {
		if n.Kind != ir.NBranch {
			return
		}
		bf := BranchFact{
			Branch:     n.ID,
			Line:       n.Line,
			Analyzable: n.Analyzable(),
			Outcome:    pred.Unknown,
			Edges:      s.EdgeFacts(n.ID),
		}
		whole := s.BranchOutcome(n.ID)
		agreed := pred.Unknown
		unanimous := true
		copyDecided := false
		for _, e := range bf.Edges {
			if !e.Live {
				continue
			}
			bf.LiveEdges++
			if e.Outcome == pred.Unknown {
				unanimous = false
				continue
			}
			bf.DecidedEdges++
			if e.Prov == check.ProvCopy {
				copyDecided = true
			}
			if agreed == pred.Unknown {
				agreed = e.Outcome
			} else if agreed != e.Outcome {
				unanimous = false
			}
		}
		switch {
		case whole != pred.Unknown:
			bf.Outcome = whole
		case bf.LiveEdges > 0 && bf.DecidedEdges == bf.LiveEdges && unanimous:
			// The entry state is the meet of the edge states, and the
			// containment-only meet can lose the deciding bound (e.g. two
			// different constants that both fail the comparison) — the
			// unanimous per-edge verdict is strictly stronger.
			bf.Outcome = agreed
		}
		switch {
		case bf.Outcome != pred.Unknown && copyDecided:
			bf.Class = ClassCopy
		case bf.Outcome != pred.Unknown:
			bf.Class = ClassValue
		case bf.DecidedEdges > 0:
			bf.Class = ClassEdgeSplit
		default:
			bf.Class = ClassUndecidable
		}
		if bf.Class == ClassValue || bf.Class == ClassCopy {
			f.Residual++
		}
		f.Branches = append(f.Branches, bf)
	})
	return f
}

// Apply rewrites the program in place according to one fact-table row.
// For ClassValue/ClassCopy the branch folds whole: the dead arm's edge is
// removed and the node becomes a synthetic nop (the caller's prune sweeps
// the arm). For ClassEdgeSplit each deciding executable in-edge is
// redirected straight to the arm its outcome selects. It returns the
// number of redirected in-edges (zero for a whole-branch fold) and whether
// the program changed at all.
//
// Apply skips rather than rewrites anything unsafe: predecessors with
// parallel edges into the branch (RedirectSucc rewires the first occurrence
// only), call and exit predecessors (their out-edges carry interprocedural
// linkage), and arms that loop back into the branch itself. It performs no
// verification — callers run it on a scratch clone under the transactional
// gates.
func Apply(p *ir.Program, bf *BranchFact) (redirected int, changed bool) {
	n := p.Node(bf.Branch)
	if n == nil || n.Kind != ir.NBranch || len(n.Succs) != 2 {
		return 0, false
	}
	switch bf.Class {
	case ClassValue, ClassCopy:
		var keep, drop ir.NodeID
		switch bf.Outcome {
		case pred.True:
			keep, drop = n.Succs[0], n.Succs[1]
		case pred.False:
			keep, drop = n.Succs[1], n.Succs[0]
		default:
			return 0, false
		}
		if keep == bf.Branch {
			// The surviving arm loops straight back: folding would leave a
			// self-looping nop. The branch is already an infinite loop at
			// runtime; leave it for the shadow oracle to reason about.
			return 0, false
		}
		p.RemoveEdge(n.ID, drop)
		n.Kind = ir.NNop
		n.Synthetic = true
		return 0, true
	case ClassEdgeSplit:
		// edgeCount guards against parallel in-edges: RedirectSucc rewires
		// the first occurrence, so a predecessor with two edges into the
		// branch cannot be rewired per-slot.
		edgeCount := make(map[ir.NodeID]int, len(bf.Edges))
		for _, e := range bf.Edges {
			edgeCount[e.From]++
		}
		for _, e := range bf.Edges {
			if !e.Live || e.Outcome == pred.Unknown || edgeCount[e.From] > 1 {
				continue
			}
			pn := p.Node(e.From)
			if pn == nil || pn.Kind == ir.NCall || pn.Kind == ir.NExit {
				continue
			}
			arm := n.Succs[0]
			if e.Outcome == pred.False {
				arm = n.Succs[1]
			}
			if arm == bf.Branch || e.Slot < 0 || e.Slot >= len(pn.Succs) || pn.Succs[e.Slot] != bf.Branch {
				continue
			}
			p.RedirectSucc(pn.ID, bf.Branch, arm)
			redirected++
		}
		return redirected, redirected > 0
	}
	return 0, false
}
