package pool

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"

	"icbe/internal/analysis"
)

// Config tunes the supervisor. The zero value is usable: every field has a
// production-shaped default.
type Config struct {
	// Workers is the number of worker processes kept alive.
	Workers int
	// WorkerBin is the worker executable; empty re-execs the current binary
	// (os.Executable) with WorkerEnv set, so any binary that calls
	// MaybeWorkerMain first thing in main can host workers.
	WorkerBin  string
	WorkerArgs []string
	// ExtraEnv is appended to the worker environment (chaos directives in
	// tests ride here).
	ExtraEnv []string
	// HeartbeatTimeout is how long a worker may go silent before the
	// supervisor declares it hung and kills it. Workers beat every
	// workerHeartbeatInterval; the timeout must exceed that comfortably.
	HeartbeatTimeout time.Duration
	// RestartBackoff/RestartBackoffCap shape the capped exponential backoff
	// between a worker slot's consecutive respawns; a worker that survives
	// HealthyAfter resets its slot's backoff.
	RestartBackoff    time.Duration
	RestartBackoffCap time.Duration
	HealthyAfter      time.Duration
	// BreakerRestarts restarts within BreakerWindow open the pool breaker
	// for BreakerCooldown: Healthy reports false and callers fall back to
	// the in-process path while the pool sorts itself out.
	BreakerWindow   time.Duration
	BreakerRestarts int
	BreakerCooldown time.Duration
	// HedgeFraction of the shard deadline without an answer triggers a
	// hedged re-dispatch to a second worker; the first answer wins.
	HedgeFraction float64
	// MaxShardAttempts caps dispatches per shard (primary + hedges +
	// crash re-dispatches) before the shard degrades to "no seed".
	MaxShardAttempts int
	// Logf receives supervisor events (restarts, breaker trips); nil
	// discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 2 * time.Second
	}
	if c.RestartBackoff <= 0 {
		c.RestartBackoff = 50 * time.Millisecond
	}
	if c.RestartBackoffCap <= 0 {
		c.RestartBackoffCap = 2 * time.Second
	}
	if c.HealthyAfter <= 0 {
		c.HealthyAfter = 3 * time.Second
	}
	if c.BreakerWindow <= 0 {
		c.BreakerWindow = 10 * time.Second
	}
	if c.BreakerRestarts <= 0 {
		c.BreakerRestarts = 8
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 3 * time.Second
	}
	if c.HedgeFraction <= 0 || c.HedgeFraction >= 1 {
		c.HedgeFraction = 0.5
	}
	if c.MaxShardAttempts <= 0 {
		c.MaxShardAttempts = 4
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Pool supervises the worker processes. Create with New, stop with Close.
type Pool struct {
	cfg Config
	bin string

	mu           sync.Mutex
	workers      []*workerProc // one slot per configured worker; nil while down
	slotBackoff  []time.Duration
	restartTimes []time.Time
	breakerUntil time.Time
	closed       bool

	nextJob atomic.Uint64
	nextGen atomic.Int64
	stop    chan struct{}
	wg      sync.WaitGroup

	restarts   atomic.Int64
	hedges     atomic.Int64
	seedRuns   atomic.Int64
	dispatched atomic.Int64
	completedN atomic.Int64
	degradedN  atomic.Int64
	records    atomic.Int64
}

// Snapshot is the pool's gauge block for /stats. The shard counters
// reconcile exactly: every dispatched shard ends completed or degraded.
type Snapshot struct {
	WorkersConfigured int    `json:"workers_configured"`
	WorkersLive       int    `json:"workers_live"`
	Breaker           string `json:"breaker"`
	Restarts          int64  `json:"restarts"`
	Hedges            int64  `json:"hedges"`
	SeedRuns          int64  `json:"seed_runs"`
	ShardsDispatched  int64  `json:"shards_dispatched"`
	ShardsCompleted   int64  `json:"shards_completed"`
	ShardsDegraded    int64  `json:"shards_degraded"`
	RecordsReturned   int64  `json:"records_returned"`
}

// New resolves the worker binary and starts the configured workers. Spawn
// failures are not fatal — the restart machinery keeps trying under backoff
// and the breaker reports the pool unhealthy in the meantime — so the only
// error is being unable to name a worker binary at all.
func New(cfg Config) (*Pool, error) {
	cfg = cfg.withDefaults()
	bin := cfg.WorkerBin
	if bin == "" {
		self, err := os.Executable()
		if err != nil {
			return nil, err
		}
		bin = self
	}
	p := &Pool{
		cfg:         cfg,
		bin:         bin,
		workers:     make([]*workerProc, cfg.Workers),
		slotBackoff: make([]time.Duration, cfg.Workers),
		stop:        make(chan struct{}),
	}
	for slot := 0; slot < cfg.Workers; slot++ {
		p.startWorker(slot)
	}
	p.wg.Add(1)
	go p.monitor()
	return p, nil
}

// Close kills every worker and waits for the supervisor goroutines to
// unwind. Idempotent; no worker process survives it.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	ws := append([]*workerProc(nil), p.workers...)
	p.mu.Unlock()
	close(p.stop)
	for _, w := range ws {
		if w != nil {
			w.kill()
		}
	}
	p.wg.Wait()
}

// Healthy reports whether the pool is worth dispatching to: the restart
// breaker is closed and at least one worker is live. Callers treat false as
// "seed in-process instead" — never as a request failure.
func (p *Pool) Healthy() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || time.Now().Before(p.breakerUntil) {
		return false
	}
	for _, w := range p.workers {
		if w != nil {
			return true
		}
	}
	return false
}

// Stats returns the current gauge snapshot.
func (p *Pool) Stats() Snapshot {
	p.mu.Lock()
	live := 0
	for _, w := range p.workers {
		if w != nil {
			live++
		}
	}
	breaker := "closed"
	if time.Now().Before(p.breakerUntil) {
		breaker = "open"
	}
	p.mu.Unlock()
	return Snapshot{
		WorkersConfigured: p.cfg.Workers,
		WorkersLive:       live,
		Breaker:           breaker,
		Restarts:          p.restarts.Load(),
		Hedges:            p.hedges.Load(),
		SeedRuns:          p.seedRuns.Load(),
		ShardsDispatched:  p.dispatched.Load(),
		ShardsCompleted:   p.completedN.Load(),
		ShardsDegraded:    p.degradedN.Load(),
		RecordsReturned:   p.records.Load(),
	}
}

// WorkerPIDs returns the live workers' process IDs — the chaos tests' kill
// list.
func (p *Pool) WorkerPIDs() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	var pids []int
	for _, w := range p.workers {
		if w != nil && w.cmd.Process != nil {
			pids = append(pids, w.cmd.Process.Pid)
		}
	}
	return pids
}

// Analyze shards progKey/progBytes across the pool and returns the merged
// portable records plus the number of shards that produced nothing
// (crashed out of attempts, or the deadline hit first). It never fails:
// worst case is (nil, len(shards)) and the caller runs cold. The records
// are untrusted until the caller Injects them — validation is the memo's
// job, deliberately not duplicated here.
func (p *Pool) Analyze(ctx context.Context, progKey string, progBytes []byte, shards []Shard, opts JobOptions) ([]analysis.PortableRecord, int) {
	if len(shards) == 0 {
		return nil, 0
	}
	p.seedRuns.Add(1)
	results := make([][]analysis.PortableRecord, len(shards))
	var wg sync.WaitGroup
	for i := range shards {
		p.dispatched.Add(1)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = p.runShard(ctx, progKey, progBytes, shards[i], opts)
		}(i)
	}
	wg.Wait()
	degraded := 0
	var merged []analysis.PortableRecord
	for _, recs := range results {
		if recs == nil {
			degraded++
			p.degradedN.Add(1)
			continue
		}
		p.completedN.Add(1)
		p.records.Add(int64(len(recs)))
		merged = append(merged, recs...)
	}
	return merged, degraded
}

// runShard drives one shard to completion or degradation: primary dispatch,
// hedged re-dispatch after HedgeFraction of the deadline, immediate
// re-dispatch when a worker dies under it, and a bounded wait for a restart
// when no worker is live. Returns nil records on degradation (a completed
// shard with zero records returns an empty non-nil slice).
func (p *Pool) runShard(ctx context.Context, progKey string, progBytes []byte, sh Shard, opts JobOptions) []analysis.PortableRecord {
	got := make(chan resultMsg, p.cfg.MaxShardAttempts)
	attempts, outstanding := 0, 0
	lastGen := int64(-1)

	dispatch := func() bool {
		if attempts >= p.cfg.MaxShardAttempts {
			return false
		}
		w := p.pickWorker(lastGen)
		if w == nil {
			return false
		}
		deadlineMS := int64(0)
		if dl, ok := ctx.Deadline(); ok {
			rem := time.Until(dl)
			if rem <= 0 {
				return false
			}
			deadlineMS = int64(rem/time.Millisecond) + 1
		}
		job := jobMsg{
			Type: msgJob, ID: p.nextJob.Add(1), ProgKey: progKey,
			Conds: sh.Conds, Opts: opts, DeadlineMS: deadlineMS,
		}
		ch, err := w.send(job, progBytes)
		if err != nil {
			return false
		}
		lastGen = w.gen
		attempts++
		outstanding++
		go func() { got <- <-ch }()
		return true
	}

	hedgeAfter := p.cfg.HeartbeatTimeout
	if dl, ok := ctx.Deadline(); ok {
		hedgeAfter = time.Duration(float64(time.Until(dl)) * p.cfg.HedgeFraction)
	}
	hedge := time.NewTimer(hedgeAfter)
	defer hedge.Stop()
	hedgeC := hedge.C

	// A restart-wait ticker drives re-dispatch while every worker is down
	// (mid-backoff after a crash): the shard waits for a respawn instead of
	// degrading the moment the pool blinks.
	retry := time.NewTicker(20 * time.Millisecond)
	defer retry.Stop()

	dispatch()
	for {
		if outstanding == 0 {
			if attempts >= p.cfg.MaxShardAttempts {
				return nil
			}
			select {
			case <-ctx.Done():
				return nil
			case <-retry.C:
				dispatch()
				continue
			}
		}
		select {
		case r := <-got:
			outstanding--
			if r.Err == "" {
				if r.Records == nil {
					r.Records = []analysis.PortableRecord{}
				}
				return r.Records
			}
			dispatch()
		case <-hedgeC:
			hedgeC = nil
			if dispatch() {
				p.hedges.Add(1)
			}
		case <-ctx.Done():
			return nil
		}
	}
}

// pickWorker chooses a live worker, preferring one that is not the given
// generation (hedges and retries should land elsewhere) and breaking ties
// toward the lightest load, then the lowest slot.
func (p *Pool) pickWorker(avoidGen int64) *workerProc {
	p.mu.Lock()
	defer p.mu.Unlock()
	var best *workerProc
	better := func(w, cur *workerProc) bool {
		if cur == nil {
			return true
		}
		wAvoid, curAvoid := w.gen == avoidGen, cur.gen == avoidGen
		if wAvoid != curAvoid {
			return curAvoid
		}
		return w.load.Load() < cur.load.Load()
	}
	for _, w := range p.workers {
		if w != nil && better(w, best) {
			best = w
		}
	}
	return best
}

// workerProc is one live worker incarnation.
type workerProc struct {
	p       *Pool
	slot    int
	gen     int64
	started time.Time
	cmd     *exec.Cmd
	stdin   io.WriteCloser

	wmu  sync.Mutex // serializes job-frame writes and the seen-programs set
	seen map[string]bool

	pmu     sync.Mutex
	dead    bool
	pending map[uint64]chan resultMsg

	lastBeat atomic.Int64
	load     atomic.Int64
}

// startWorker spawns the worker for a slot. Failures route through
// workerDown, which schedules the next attempt under backoff.
func (p *Pool) startWorker(slot int) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()

	cmd := exec.Command(p.bin, p.cfg.WorkerArgs...)
	cmd.Env = append(os.Environ(), WorkerEnv+"=1")
	cmd.Env = append(cmd.Env, p.cfg.ExtraEnv...)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		p.workerDown(slot, nil)
		return
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		p.workerDown(slot, nil)
		return
	}
	if err := cmd.Start(); err != nil {
		p.cfg.Logf("pool: worker slot %d failed to start: %v", slot, err)
		p.workerDown(slot, nil)
		return
	}
	w := &workerProc{
		p: p, slot: slot, gen: p.nextGen.Add(1), started: time.Now(),
		cmd: cmd, stdin: stdin,
		seen:    make(map[string]bool),
		pending: make(map[uint64]chan resultMsg),
	}
	w.lastBeat.Store(time.Now().UnixNano())

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return
	}
	p.workers[slot] = w
	p.mu.Unlock()

	p.wg.Add(2)
	go w.readLoop(stdout)
	go w.waitLoop()
}

// waitLoop reaps the worker process — the wait(2) half of liveness. Every
// exit, voluntary or killed, lands in workerDown exactly once.
func (w *workerProc) waitLoop() {
	defer w.p.wg.Done()
	_ = w.cmd.Wait()
	w.failPending()
	w.p.workerDown(w.slot, w)
}

// readLoop consumes the worker's result pipe: heartbeats refresh liveness,
// results resolve pending jobs. Any protocol violation — corrupt frame,
// oversized length, garbage JSON — kills the worker; the supervisor trusts
// the pipe no further than one valid frame.
func (w *workerProc) readLoop(stdout io.Reader) {
	defer w.p.wg.Done()
	br := bufio.NewReaderSize(stdout, 1<<16)
	for {
		payload, err := readFrame(br)
		if err != nil {
			w.kill()
			return
		}
		var m resultMsg
		if err := json.Unmarshal(payload, &m); err != nil {
			w.kill()
			return
		}
		w.lastBeat.Store(time.Now().UnixNano())
		if m.Type != msgResult {
			continue
		}
		w.pmu.Lock()
		ch := w.pending[m.ID]
		delete(w.pending, m.ID)
		w.pmu.Unlock()
		if ch != nil {
			w.load.Add(-1)
			ch <- m
		}
	}
}

// send dispatches one job, attaching the program bytes the first time this
// incarnation sees the key. The returned channel receives exactly one
// message: the result, or a synthetic error when the worker dies first.
func (w *workerProc) send(job jobMsg, progBytes []byte) (chan resultMsg, error) {
	ch := make(chan resultMsg, 1)
	w.pmu.Lock()
	if w.dead {
		w.pmu.Unlock()
		return nil, io.ErrClosedPipe
	}
	w.pending[job.ID] = ch
	w.pmu.Unlock()
	w.load.Add(1)

	w.wmu.Lock()
	if !w.seen[job.ProgKey] {
		job.Prog = progBytes
		w.seen[job.ProgKey] = true
	}
	err := writeFrame(w.stdin, &job)
	w.wmu.Unlock()
	if err != nil {
		w.pmu.Lock()
		delete(w.pending, job.ID)
		w.pmu.Unlock()
		w.load.Add(-1)
		w.kill()
		return nil, err
	}
	return ch, nil
}

// failPending resolves every outstanding job with a synthetic error so the
// shards re-dispatch immediately instead of waiting out their deadlines.
func (w *workerProc) failPending() {
	w.pmu.Lock()
	defer w.pmu.Unlock()
	w.dead = true
	for id, ch := range w.pending {
		delete(w.pending, id)
		w.load.Add(-1)
		ch <- resultMsg{Type: msgResult, ID: id, Err: "worker died"}
	}
}

func (w *workerProc) kill() {
	if w.cmd.Process != nil {
		_ = w.cmd.Process.Kill()
	}
}

// workerDown retires a dead worker's slot, advances the breaker window, and
// schedules the respawn under the slot's capped exponential backoff.
func (p *Pool) workerDown(slot int, w *workerProc) {
	p.mu.Lock()
	if w != nil && p.workers[slot] == w {
		p.workers[slot] = nil
	}
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.restarts.Add(1)
	now := time.Now()
	kept := p.restartTimes[:0]
	for _, t := range p.restartTimes {
		if now.Sub(t) <= p.cfg.BreakerWindow {
			kept = append(kept, t)
		}
	}
	p.restartTimes = append(kept, now)
	if len(p.restartTimes) >= p.cfg.BreakerRestarts && now.After(p.breakerUntil) {
		p.breakerUntil = now.Add(p.cfg.BreakerCooldown)
		p.cfg.Logf("pool: restart storm (%d in %v), breaker open for %v",
			len(p.restartTimes), p.cfg.BreakerWindow, p.cfg.BreakerCooldown)
	}
	backoff := p.slotBackoff[slot]
	if w != nil && now.Sub(w.started) >= p.cfg.HealthyAfter {
		backoff = 0 // the worker held steady for a while; forgive its slot
	}
	if backoff == 0 {
		backoff = p.cfg.RestartBackoff
	} else if backoff *= 2; backoff > p.cfg.RestartBackoffCap {
		backoff = p.cfg.RestartBackoffCap
	}
	p.slotBackoff[slot] = backoff
	p.mu.Unlock()

	p.cfg.Logf("pool: worker slot %d down, respawning in %v", slot, backoff)
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		t := time.NewTimer(backoff)
		defer t.Stop()
		select {
		case <-p.stop:
			return
		case <-t.C:
		}
		p.startWorker(slot)
	}()
}

// monitor is the hang detector: a worker whose last heartbeat is older than
// HeartbeatTimeout is killed, which routes it through waitLoop → workerDown
// like any other crash.
func (p *Pool) monitor() {
	defer p.wg.Done()
	interval := p.cfg.HeartbeatTimeout / 4
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
		}
		cutoff := time.Now().Add(-p.cfg.HeartbeatTimeout).UnixNano()
		p.mu.Lock()
		var hung []*workerProc
		for _, w := range p.workers {
			if w != nil && w.lastBeat.Load() < cutoff {
				hung = append(hung, w)
			}
		}
		p.mu.Unlock()
		for _, w := range hung {
			p.cfg.Logf("pool: worker slot %d heartbeat timeout, killing", w.slot)
			w.kill()
		}
	}
}
