// Package pool is the fault-isolated per-procedure worker pool: a supervisor
// that shards a program's analyzable conditionals across disposable worker
// processes and merges the portable summary records they return into a
// SummaryMemo seed for the in-process optimize run.
//
// The design is crash-only end to end. Workers are pure accelerators: every
// record a worker returns is revalidated by analysis.SummaryMemo.Inject
// (verify-on-read), and a replayed summary is pair-for-pair identical to a
// fresh propagation — so a crashed, hung, or garbage-emitting worker costs
// warmth, never correctness. kill -9 of any worker mid-request leaves the
// response bytes unchanged.
//
// Failure handling is layered:
//
//   - Liveness: every worker heartbeats on its result pipe; the supervisor
//     detects crashes via process exit (wait(2)) and hangs via heartbeat
//     timeout, and kills what it cannot hear.
//   - Restart: dead workers respawn under capped exponential backoff; a
//     worker that survives long enough resets its slot's backoff.
//   - Hedging: a shard still unanswered after a fraction of its deadline is
//     re-dispatched to a second worker; the first answer wins.
//   - Breaker: a restart storm opens the pool breaker, reporting the pool
//     unhealthy so callers skip straight to the in-process path until the
//     cooldown elapses and a worker holds steady.
//
// The wire protocol is length-prefixed JSON frames over the worker's
// stdin/stdout: 4-byte big-endian payload length, then the payload, with a
// hard frame cap on both sides (a corrupt length cannot allocate
// unboundedly). Program bytes (ir.EncodeProgram) ride along on the first job
// a worker incarnation sees for a program key and are content-verified by
// the worker before use; node and var IDs need no translation because the
// codec round-trips them exactly.
package pool

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"icbe/internal/analysis"
	"icbe/internal/ir"
)

// maxFrameBytes caps one protocol frame on both sides of the pipe. A frame
// carries at most one encoded program plus one shard's records; 64 MiB is an
// order of magnitude above the 100k-node stress program's encoding.
const maxFrameBytes = 64 << 20

// Message types. The supervisor sends only jobs; a worker sends a hello at
// startup, heartbeats while alive, and one result per job.
const (
	msgJob       = "job"
	msgHello     = "hello"
	msgHeartbeat = "heartbeat"
	msgResult    = "result"
)

// JobOptions is the analysis configuration a job carries across the process
// boundary: the subset of analysis.Options that shapes summary closures.
type JobOptions struct {
	Interprocedural  bool `json:"interprocedural"`
	TerminationLimit int  `json:"term,omitempty"`
	ArithSubst       bool `json:"arith_subst,omitempty"`
	ModSummaries     bool `json:"mod_summaries,omitempty"`
}

// jobMsg is one dispatched shard: analyze Conds against the program named by
// ProgKey and return the pristine summary records. Prog carries the
// ir.EncodeProgram bytes only on the first job a worker incarnation receives
// for the key; the worker caches the decoded program after verifying the
// key against the bytes' content hash.
type jobMsg struct {
	Type       string      `json:"type"`
	ID         uint64      `json:"id"`
	ProgKey    string      `json:"prog_key"`
	Prog       []byte      `json:"prog,omitempty"`
	Conds      []ir.NodeID `json:"conds"`
	Opts       JobOptions  `json:"opts"`
	DeadlineMS int64       `json:"deadline_ms,omitempty"`
}

// resultMsg is every worker→supervisor frame: hello, heartbeat, or a job's
// result (Records on success, Err on a refusal the worker survived).
type resultMsg struct {
	Type    string                    `json:"type"`
	ID      uint64                    `json:"id,omitempty"`
	Records []analysis.PortableRecord `json:"records,omitempty"`
	Err     string                    `json:"err,omitempty"`
}

// errFrameTooLarge distinguishes an oversized (or corrupt) length prefix
// from an I/O error; both are fatal for the connection that produced them.
var errFrameTooLarge = errors.New("pool: frame exceeds size cap")

// writeFrame marshals v and writes one length-prefixed frame. Callers
// serialize writes per pipe.
func writeFrame(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("pool: encoding frame: %w", err)
	}
	if len(payload) > maxFrameBytes {
		return fmt.Errorf("%w (%d bytes)", errFrameTooLarge, len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame. A zero-length or over-cap
// length prefix is rejected before any payload allocation, so hostile or
// corrupt pipe bytes cost at most 4 bytes of reading.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrameBytes {
		return nil, fmt.Errorf("%w (length prefix %d)", errFrameTooLarge, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
