package pool

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"icbe/internal/analysis"
	"icbe/internal/ir"
)

// WorkerEnv marks a process as a pool worker. The supervisor sets it when
// re-exec'ing its own binary (os.Executable), and MaybeWorkerMain checks it
// first thing in main — so icbe-serve, cmd/icbe-worker, and the test
// binaries can all serve as worker images without a separate build.
const WorkerEnv = "ICBE_POOL_WORKER"

// chaosEnv injects deterministic worker misbehavior for tests and the chaos
// harness. Directives:
//
//	crash-job:N   exit(3) on receiving job ID N (crash mid-job)
//	crash-after:N exit(3) after completing N jobs (crash between jobs)
//	hang-job:N    on job ID N: stop heartbeating and never answer (hang)
//	exit-now      exit(3) before the hello frame (permanent restart storm)
const chaosEnv = "ICBE_POOL_CHAOS"

// workerHeartbeatInterval is how often a live worker beats. The supervisor's
// hang timeout is configured independently and must exceed this comfortably.
const workerHeartbeatInterval = 50 * time.Millisecond

// workerProgCache bounds the decoded programs a worker keeps; eviction is
// FIFO (one server rarely interleaves more concurrent distinct programs than
// this, and a miss only re-sends bytes).
const workerProgCache = 8

// MaybeWorkerMain turns the current process into a pool worker when
// WorkerEnv is set, never returning. Call it at the top of main (and of
// TestMain in packages whose test binary the pool re-execs).
func MaybeWorkerMain() {
	if os.Getenv(WorkerEnv) == "" {
		return
	}
	if err := WorkerMain(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "icbe-worker: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// chaosPlan is the parsed chaosEnv directive.
type chaosPlan struct {
	crashJob   uint64
	crashAfter int // -1 = never
	hangJob    uint64
	exitNow    bool
}

func parseChaos(s string) chaosPlan {
	plan := chaosPlan{crashAfter: -1}
	for _, d := range strings.Split(s, ",") {
		d = strings.TrimSpace(d)
		name, arg, _ := strings.Cut(d, ":")
		n, _ := strconv.ParseUint(arg, 10, 64)
		switch name {
		case "crash-job":
			plan.crashJob = n
		case "crash-after":
			plan.crashAfter = int(n)
		case "hang-job":
			plan.hangJob = n
		case "exit-now":
			plan.exitNow = true
		}
	}
	return plan
}

// WorkerMain is the worker loop: read job frames from in, analyze each
// shard's conditionals with an auto-commit memo, and write the pristine
// records back as result frames, heartbeating all the while. It returns on
// EOF (supervisor closed stdin — a clean shutdown) and on any protocol
// violation (the supervisor treats the exit as a crash and restarts).
func WorkerMain(in io.Reader, out io.Writer) error {
	chaos := parseChaos(os.Getenv(chaosEnv))
	if chaos.exitNow {
		os.Exit(3)
	}

	w := &workerState{
		out:   out,
		progs: make(map[string]*ir.Program),
		hung:  make(chan struct{}),
	}
	if err := w.send(resultMsg{Type: msgHello}); err != nil {
		return err
	}
	go w.heartbeatLoop()

	br := bufio.NewReaderSize(in, 1<<16)
	completed := 0
	for {
		payload, err := readFrame(br)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		var job jobMsg
		if err := json.Unmarshal(payload, &job); err != nil {
			return fmt.Errorf("pool worker: malformed job frame: %w", err)
		}
		if job.Type != msgJob {
			return fmt.Errorf("pool worker: unexpected frame type %q", job.Type)
		}
		if chaos.crashJob != 0 && job.ID == chaos.crashJob {
			os.Exit(3)
		}
		if chaos.hangJob != 0 && job.ID == chaos.hangJob {
			// Simulate a wedged worker: alive as a process, silent on the
			// pipe. The supervisor's heartbeat timeout must reap us. A sleep
			// loop, not select{} — the runtime would flag that as a deadlock
			// and exit, turning the hang into a mere crash.
			close(w.hung)
			for {
				time.Sleep(time.Hour)
			}
		}
		res := w.runJob(&job)
		if err := w.send(res); err != nil {
			return err
		}
		if completed++; chaos.crashAfter >= 0 && completed >= chaos.crashAfter {
			os.Exit(3)
		}
	}
}

type workerState struct {
	mu    sync.Mutex // serializes frame writes (results vs heartbeats)
	out   io.Writer
	progs map[string]*ir.Program
	order []string      // FIFO eviction order for progs
	hung  chan struct{} // closed by hang chaos; stops the heartbeat
}

func (w *workerState) send(m resultMsg) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return writeFrame(w.out, m)
}

func (w *workerState) heartbeatLoop() {
	t := time.NewTicker(workerHeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-w.hung:
			return
		case <-t.C:
		}
		if w.send(resultMsg{Type: msgHeartbeat}) != nil {
			// Pipe gone: the supervisor died or dropped us. The read loop
			// will exit on its own error; nothing useful left to do here.
			return
		}
	}
}

// program returns the cached decoded program for a job, decoding and
// verifying the carried bytes on first sight. Fail-closed: bytes whose
// content hash does not match the claimed key are rejected, so a frame
// corrupted in flight can never be analyzed under another program's key.
func (w *workerState) program(job *jobMsg) (*ir.Program, error) {
	if p := w.progs[job.ProgKey]; p != nil {
		return p, nil
	}
	if len(job.Prog) == 0 {
		return nil, fmt.Errorf("unknown program key %s and no program bytes", job.ProgKey)
	}
	if got := hex.EncodeToString(sumBytes(job.Prog)); got != job.ProgKey {
		return nil, fmt.Errorf("program bytes hash %s, key claims %s", got, job.ProgKey)
	}
	p, err := ir.DecodeProgram(job.Prog)
	if err != nil {
		return nil, fmt.Errorf("decoding program: %w", err)
	}
	if len(w.progs) >= workerProgCache {
		oldest := w.order[0]
		w.order = w.order[1:]
		delete(w.progs, oldest)
	}
	w.progs[job.ProgKey] = p
	w.order = append(w.order, job.ProgKey)
	return p, nil
}

func sumBytes(b []byte) []byte {
	s := sha256.Sum256(b)
	return s[:]
}

// runJob analyzes one shard serially with an auto-commit memo, so later
// conditionals in the shard replay earlier ones' summaries, and exports
// everything recorded. Panics are contained per job: the worker survives to
// take the next shard, and the supervisor just gets fewer records.
func (w *workerState) runJob(job *jobMsg) (res resultMsg) {
	res = resultMsg{Type: msgResult, ID: job.ID}
	defer func() {
		if r := recover(); r != nil {
			res.Records, res.Err = nil, fmt.Sprintf("contained panic: %v", r)
		}
	}()
	prog, err := w.program(job)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	var deadline time.Time
	if job.DeadlineMS > 0 {
		deadline = time.Now().Add(time.Duration(job.DeadlineMS) * time.Millisecond)
	}
	interrupt := func() bool { return !deadline.IsZero() && time.Now().After(deadline) }

	memo := analysis.NewAutoCommitMemo()
	an := analysis.NewWithMemo(prog, analysis.Options{
		Interprocedural:  job.Opts.Interprocedural,
		TerminationLimit: job.Opts.TerminationLimit,
		ArithSubst:       job.Opts.ArithSubst,
		ModSummaries:     job.Opts.ModSummaries,
		MemoSummaries:    job.Opts.Interprocedural,
	}, memo)
	for _, b := range job.Conds {
		if interrupt() {
			// Out of budget: return what we have. A partial shard is still
			// a valid seed — records are independent facts.
			break
		}
		n := prog.Node(b)
		if n == nil || !n.Analyzable() {
			continue
		}
		an.AnalyzeBranchInterruptible(b, interrupt)
	}
	res.Records = memo.ExportPristine()
	return res
}
