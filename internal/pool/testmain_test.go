package pool

import (
	"os"
	"testing"
)

// TestMain lets the pool re-exec this test binary as its worker image: a
// spawned copy sees WorkerEnv and becomes a worker instead of running tests.
func TestMain(m *testing.M) {
	MaybeWorkerMain()
	os.Exit(m.Run())
}
