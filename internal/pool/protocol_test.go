package pool

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"icbe/internal/ir"
	"icbe/internal/randprog"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := jobMsg{Type: msgJob, ID: 42, ProgKey: "k", Conds: []ir.NodeID{1, 2, 3}}
	if err := writeFrame(&buf, &in); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	payload, err := readFrame(&buf)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	var out jobMsg
	if err := json.Unmarshal(payload, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out.ID != in.ID || out.ProgKey != in.ProgKey || len(out.Conds) != 3 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

// TestFrameHostileInput drives readFrame with the shapes a corrupted or
// malicious pipe produces; each must fail cleanly, never allocate the claimed
// size, and never hang.
func TestFrameHostileInput(t *testing.T) {
	header := func(n uint32) []byte {
		var h [4]byte
		binary.BigEndian.PutUint32(h[:], n)
		return h[:]
	}
	cases := map[string][]byte{
		"empty":          {},
		"short header":   {0, 1},
		"zero length":    header(0),
		"over cap":       header(maxFrameBytes + 1),
		"huge length":    header(0xFFFFFFFF),
		"truncated body": append(header(100), []byte("short")...),
	}
	for name, raw := range cases {
		if _, err := readFrame(bytes.NewReader(raw)); err == nil {
			t.Errorf("%s: readFrame accepted hostile input", name)
		}
	}
}

func TestWriteFrameRejectsOversized(t *testing.T) {
	big := jobMsg{Type: msgJob, Prog: make([]byte, maxFrameBytes)}
	if err := writeFrame(io.Discard, &big); err == nil {
		t.Fatalf("writeFrame accepted an over-cap frame")
	}
}

func TestParseChaos(t *testing.T) {
	plan := parseChaos("crash-job:7, hang-job:9,crash-after:2")
	if plan.crashJob != 7 || plan.hangJob != 9 || plan.crashAfter != 2 || plan.exitNow {
		t.Fatalf("parseChaos = %+v", plan)
	}
	if p := parseChaos(""); p.crashJob != 0 || p.crashAfter != -1 || p.exitNow {
		t.Fatalf("empty chaos = %+v", p)
	}
	if !parseChaos("exit-now").exitNow {
		t.Fatalf("exit-now not parsed")
	}
}

// TestShardProgramDeterministic pins the sharder's contract: equal inputs
// yield equal shards, every analyzable conditional appears exactly once, and
// a procedure's conditionals never split across shards.
func TestShardProgramDeterministic(t *testing.T) {
	src := randprog.Scale(1, randprog.ScaleConfig{
		Leaves: 6, LeafStmts: 12, Hubs: 4, Calls: 3, Conds: 3, ChainLeaves: 2,
	})
	g := compileGraph(t, src)

	a := ShardProgram(g, 4)
	b := ShardProgram(g, 4)
	if len(a) == 0 || len(a) > 4 {
		t.Fatalf("ShardProgram returned %d shards, want 1..4", len(a))
	}
	if !sameShards(a, b) {
		t.Fatalf("ShardProgram not deterministic:\n%v\n%v", a, b)
	}

	seen := make(map[ir.NodeID]int)
	proc := make(map[int]int) // proc index -> shard index
	for i, sh := range a {
		for _, c := range sh.Conds {
			seen[c]++
			n := g.Node(c)
			if n == nil {
				t.Fatalf("shard %d names unknown node %d", i, c)
			}
			if prev, ok := proc[n.Proc]; ok && prev != i {
				t.Errorf("procedure %d split across shards %d and %d", n.Proc, prev, i)
			}
			proc[n.Proc] = i
		}
	}
	want := 0
	g.LiveNodes(func(n *ir.Node) {
		if n.Analyzable() {
			want++
		}
	})
	if len(seen) != want {
		t.Fatalf("shards cover %d conds, program has %d", len(seen), want)
	}
	for c, k := range seen {
		if k != 1 {
			t.Fatalf("cond %d appears %d times", c, k)
		}
	}
}

func sameShards(a, b []Shard) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i].Conds) != len(b[i].Conds) || a[i].Weight != b[i].Weight {
			return false
		}
		for j := range a[i].Conds {
			if a[i].Conds[j] != b[i].Conds[j] {
				return false
			}
		}
	}
	return true
}

// TestWorkerMainProtocol runs the worker loop in-process over pipes: hello
// first, heartbeats while idle, a result with records for a real job, a clean
// error result for a bogus program key, and a clean return on EOF.
func TestWorkerMainProtocol(t *testing.T) {
	g, key, enc := encodeFor(t, shardedSrc)
	var conds []ir.NodeID
	g.LiveNodes(func(n *ir.Node) {
		if n.Analyzable() {
			conds = append(conds, n.ID)
		}
	})
	if len(conds) == 0 {
		t.Fatal("test program has no analyzable conditionals")
	}

	inR, inW := io.Pipe()
	outR, outW := io.Pipe()
	t.Cleanup(func() { inW.Close(); outR.Close() })
	done := make(chan error, 1)
	go func() { done <- WorkerMain(inR, outW) }()

	read := func() resultMsg {
		t.Helper()
		payload, err := readFrame(outR)
		if err != nil {
			t.Fatalf("readFrame: %v", err)
		}
		var m resultMsg
		if err := json.Unmarshal(payload, &m); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		return m
	}
	readResult := func() resultMsg {
		t.Helper()
		for {
			if m := read(); m.Type == msgResult {
				return m
			}
		}
	}

	if m := read(); m.Type != msgHello {
		t.Fatalf("first frame type = %q, want hello", m.Type)
	}

	job := jobMsg{Type: msgJob, ID: 1, ProgKey: key, Prog: enc, Conds: conds, Opts: testJobOptions()}
	if err := writeFrame(inW, &job); err != nil {
		t.Fatalf("write job: %v", err)
	}
	res := readResult()
	if res.ID != 1 || res.Err != "" {
		t.Fatalf("job result = %+v", res)
	}
	if len(res.Records) == 0 {
		t.Fatalf("job returned no records")
	}

	// Unknown key with no bytes: a clean per-job error, not a dead worker.
	bad := jobMsg{Type: msgJob, ID: 2, ProgKey: strings.Repeat("0", 64), Conds: conds}
	if err := writeFrame(inW, &bad); err != nil {
		t.Fatalf("write bad job: %v", err)
	}
	if res := readResult(); res.ID != 2 || res.Err == "" {
		t.Fatalf("bad-key result = %+v, want error", res)
	}

	// Bytes whose hash does not match the claimed key are rejected.
	forged := jobMsg{Type: msgJob, ID: 3, ProgKey: strings.Repeat("1", 64), Prog: enc, Conds: conds}
	if err := writeFrame(inW, &forged); err != nil {
		t.Fatalf("write forged job: %v", err)
	}
	if res := readResult(); res.ID != 3 || res.Err == "" {
		t.Fatalf("forged-key result = %+v, want error", res)
	}

	inW.Close()
	if err := <-done; err != nil {
		t.Fatalf("WorkerMain returned %v on EOF, want nil", err)
	}
}
