package pool

import (
	"sort"

	"icbe/internal/ir"
)

// Shard is one dispatchable unit of analysis work: the analyzable
// conditionals of one or more whole procedures. Procedure granularity is the
// natural cut — the SummaryMemo's records are per-procedure-exit closures,
// so conditionals of one procedure share warm summaries while shards stay
// independent.
type Shard struct {
	Conds []ir.NodeID
	// Weight is the shard's load estimate (the summed conditional counts of
	// its procedures), used by the balancer and exposed for tests.
	Weight int
}

// ShardProgram partitions the program's analyzable conditionals into at most
// maxShards shards along procedure boundaries, balancing by conditional
// count (longest-processing-time greedy). The result is deterministic:
// procedures are ordered by (weight desc, index asc), bins are chosen by
// (load asc, index asc), and each shard's conditionals are sorted by node
// ID. Procedures are never split across shards.
func ShardProgram(p *ir.Program, maxShards int) []Shard {
	if maxShards < 1 {
		maxShards = 1
	}
	conds := make(map[int][]ir.NodeID)
	p.LiveNodes(func(n *ir.Node) {
		if n.Analyzable() {
			conds[n.Proc] = append(conds[n.Proc], n.ID)
		}
	})
	if len(conds) == 0 {
		return nil
	}
	procs := make([]int, 0, len(conds))
	for proc := range conds {
		procs = append(procs, proc)
	}
	sort.Slice(procs, func(i, j int) bool {
		wi, wj := len(conds[procs[i]]), len(conds[procs[j]])
		if wi != wj {
			return wi > wj
		}
		return procs[i] < procs[j]
	})
	if maxShards > len(procs) {
		maxShards = len(procs)
	}
	shards := make([]Shard, maxShards)
	for _, proc := range procs {
		best := 0
		for i := 1; i < len(shards); i++ {
			if shards[i].Weight < shards[best].Weight {
				best = i
			}
		}
		shards[best].Conds = append(shards[best].Conds, conds[proc]...)
		shards[best].Weight += len(conds[proc])
	}
	out := shards[:0]
	for _, sh := range shards {
		if len(sh.Conds) == 0 {
			continue
		}
		sort.Slice(sh.Conds, func(i, j int) bool { return sh.Conds[i] < sh.Conds[j] })
		out = append(out, sh)
	}
	return out
}
