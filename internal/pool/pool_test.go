package pool

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"syscall"
	"testing"
	"time"

	"icbe"
	"icbe/internal/analysis"
	"icbe/internal/ir"
)

// shardedSrc has analyzable conditionals in several procedures, so the
// sharder produces real multi-shard work.
const shardedSrc = `
var g = 7;

func check(x) {
	if (x == 0) { return 1; }
	return 0;
}

func clamp(v) {
	if (v > 100) { return 100; }
	if (v < 0) { return 0; }
	return v;
}

func main() {
	var a = 0;
	var ok = check(a);
	if (ok == 1) { print(10); }
	if (a == 0) { print(20); }
	print(clamp(a + g));
	print(clamp(0 - 5));
}
`

func compileGraph(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := icbe.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p.Graph()
}

func encodeFor(t *testing.T, src string) (*ir.Program, string, []byte) {
	t.Helper()
	g := compileGraph(t, src)
	enc := ir.EncodeProgram(g)
	sum := sha256.Sum256(enc)
	return g, hex.EncodeToString(sum[:]), enc
}

func testJobOptions() JobOptions {
	o := icbe.DefaultOptions()
	return JobOptions{
		Interprocedural:  true,
		TerminationLimit: o.TerminationLimit,
		ArithSubst:       o.ArithSubst,
		ModSummaries:     o.ModSummaries,
	}
}

// fastCfg is a pool configuration with test-speed timeouts. The breaker
// threshold is high so restart-chaos tests don't trip it by accident; the
// breaker test lowers it explicitly.
func fastCfg(extraEnv ...string) Config {
	return Config{
		Workers:           2,
		ExtraEnv:          extraEnv,
		HeartbeatTimeout:  400 * time.Millisecond,
		RestartBackoff:    10 * time.Millisecond,
		RestartBackoffCap: 100 * time.Millisecond,
		HealthyAfter:      200 * time.Millisecond,
		BreakerWindow:     2 * time.Second,
		BreakerRestarts:   100,
		BreakerCooldown:   200 * time.Millisecond,
	}
}

func newTestPool(t *testing.T, cfg Config) *Pool {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatalf("pool.New: %v", err)
	}
	t.Cleanup(p.Close)
	return p
}

// waitFor polls until ok returns true or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if ok() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// analyzeOnce shards the program and runs one pool Analyze with a deadline.
func analyzeOnce(t *testing.T, p *Pool, timeout time.Duration) ([]analysis.PortableRecord, int, *ir.Program) {
	t.Helper()
	g, key, enc := encodeFor(t, shardedSrc)
	shards := ShardProgram(g, 4)
	if len(shards) < 2 {
		t.Fatalf("want >= 2 shards for a meaningful pool test, got %d", len(shards))
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	recs, degraded := p.Analyze(ctx, key, enc, shards, testJobOptions())
	return recs, degraded, g
}

// TestPoolAnalyzeSeeds is the happy path: live workers return records and a
// fresh memo accepts them under strict verify-on-read.
func TestPoolAnalyzeSeeds(t *testing.T) {
	p := newTestPool(t, fastCfg())
	waitFor(t, 5*time.Second, "pool healthy", p.Healthy)

	recs, degraded, g := analyzeOnce(t, p, 10*time.Second)
	if degraded != 0 {
		t.Fatalf("degraded shards = %d, want 0", degraded)
	}
	if len(recs) == 0 {
		t.Fatalf("pool returned no records")
	}
	memo := analysis.NewSummaryMemo()
	if accepted := memo.Inject(g, recs); accepted == 0 {
		t.Fatalf("Inject accepted 0 of %d pool records", len(recs))
	}

	snap := p.Stats()
	if snap.SeedRuns != 1 || snap.ShardsDispatched == 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.ShardsDispatched != snap.ShardsCompleted+snap.ShardsDegraded {
		t.Fatalf("shard counters do not reconcile: %+v", snap)
	}
}

// TestPoolSurvivesWorkerCrash crashes the worker that takes the first job
// mid-job; the shard must re-dispatch and the run must still complete fully.
func TestPoolSurvivesWorkerCrash(t *testing.T) {
	p := newTestPool(t, fastCfg("ICBE_POOL_CHAOS=crash-job:1"))
	waitFor(t, 5*time.Second, "pool healthy", p.Healthy)

	recs, degraded, _ := analyzeOnce(t, p, 10*time.Second)
	if degraded != 0 {
		t.Fatalf("degraded shards = %d, want 0 (crash should re-dispatch)", degraded)
	}
	if len(recs) == 0 {
		t.Fatalf("no records after crash recovery")
	}
	waitFor(t, 5*time.Second, "crashed worker restart", func() bool {
		return p.Stats().Restarts >= 1
	})
	waitFor(t, 5*time.Second, "pool back to full strength", func() bool {
		return p.Stats().WorkersLive == 2
	})
}

// TestPoolHedgesHungWorker hangs the worker holding the first job (silent,
// no heartbeat, never answers). The hedge must re-dispatch the shard to the
// other worker and complete; the hang detector must then reap the wedged
// process.
func TestPoolHedgesHungWorker(t *testing.T) {
	cfg := fastCfg("ICBE_POOL_CHAOS=hang-job:1")
	cfg.HedgeFraction = 0.1                // hedge at ~10% of the deadline...
	cfg.HeartbeatTimeout = 3 * time.Second // ...well before the hang detector reaps
	p := newTestPool(t, cfg)
	waitFor(t, 5*time.Second, "pool healthy", p.Healthy)

	g, key, enc := encodeFor(t, shardedSrc)
	shards := ShardProgram(g, 1) // one shard: job 1 is deterministically the hung one
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	recs, degraded := p.Analyze(ctx, key, enc, shards, testJobOptions())
	if degraded != 0 || len(recs) == 0 {
		t.Fatalf("degraded=%d records=%d, want hedged completion", degraded, len(recs))
	}
	if h := p.Stats().Hedges; h < 1 {
		t.Fatalf("hedges = %d, want >= 1", h)
	}
	waitFor(t, 5*time.Second, "hung worker reaped", func() bool {
		return p.Stats().Restarts >= 1
	})
}

// TestPoolBreakerOpensOnRestartStorm: workers that die before hello force a
// restart storm; the breaker must open, Healthy must report false, and an
// Analyze against the dead pool must degrade without hanging.
func TestPoolBreakerOpensOnRestartStorm(t *testing.T) {
	cfg := fastCfg("ICBE_POOL_CHAOS=exit-now")
	cfg.BreakerRestarts = 3
	cfg.BreakerCooldown = 30 * time.Second // stays open for the test's duration
	p := newTestPool(t, cfg)

	waitFor(t, 10*time.Second, "breaker open", func() bool {
		return p.Stats().Breaker == "open"
	})
	if p.Healthy() {
		t.Fatalf("Healthy() = true with breaker open")
	}

	recs, degraded, _ := analyzeOnce(t, p, 500*time.Millisecond)
	if len(recs) != 0 {
		t.Fatalf("dead pool returned %d records", len(recs))
	}
	if degraded == 0 {
		t.Fatalf("dead pool reported no degraded shards")
	}
	snap := p.Stats()
	if snap.ShardsDispatched != snap.ShardsCompleted+snap.ShardsDegraded {
		t.Fatalf("shard counters do not reconcile: %+v", snap)
	}
}

// TestPoolCloseLeavesNoOrphans: Close must kill every worker process.
func TestPoolCloseLeavesNoOrphans(t *testing.T) {
	p := newTestPool(t, fastCfg())
	waitFor(t, 5*time.Second, "workers live", func() bool {
		return p.Stats().WorkersLive == 2
	})
	pids := p.WorkerPIDs()
	if len(pids) == 0 {
		t.Fatalf("no worker PIDs before Close")
	}
	p.Close()
	for _, pid := range pids {
		waitFor(t, 5*time.Second, "worker process gone", func() bool {
			// Signal 0 probes existence. The worker is a direct child and
			// Close waits on it, so ESRCH — not a zombie — is the end state.
			return syscall.Kill(pid, 0) != nil
		})
	}
	// Idempotent.
	p.Close()
}

// TestPoolKillStorm is the in-package chaos soak: kill -9 random workers
// while Analyze runs back to back; every run must either complete or degrade
// cleanly (never hang, never error), the counters must reconcile, and the
// pool must return to full strength after the storm.
func TestPoolKillStorm(t *testing.T) {
	p := newTestPool(t, fastCfg())
	waitFor(t, 5*time.Second, "pool healthy", p.Healthy)

	stop := make(chan struct{})
	killed := make(chan int, 64)
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(30 * time.Millisecond):
			}
			pids := p.WorkerPIDs()
			if len(pids) == 0 {
				continue
			}
			pid := pids[i%len(pids)]
			if syscall.Kill(pid, syscall.SIGKILL) == nil {
				select {
				case killed <- pid:
				default:
				}
			}
		}
	}()

	deadline := time.Now().Add(3 * time.Second)
	runs := 0
	for time.Now().Before(deadline) {
		recs, degraded, g := analyzeOnce(t, p, 2*time.Second)
		runs++
		if len(recs) > 0 {
			memo := analysis.NewSummaryMemo()
			if accepted := memo.Inject(g, recs); accepted == 0 {
				t.Fatalf("run %d: Inject accepted 0 of %d records", runs, len(recs))
			}
		}
		_ = degraded // degradation under SIGKILL is allowed; hanging is not
	}
	close(stop)
	if len(killed) == 0 {
		t.Fatalf("kill storm never killed a worker")
	}

	snap := p.Stats()
	if snap.Restarts == 0 {
		t.Fatalf("kill storm caused no restarts: %+v", snap)
	}
	if snap.ShardsDispatched != snap.ShardsCompleted+snap.ShardsDegraded {
		t.Fatalf("shard counters do not reconcile: %+v", snap)
	}
	waitFor(t, 10*time.Second, "pool recovered to full strength", func() bool {
		return p.Stats().WorkersLive == 2 && p.Healthy()
	})

	// And after recovery, a run completes fully again.
	recs, degraded, _ := analyzeOnce(t, p, 10*time.Second)
	if degraded != 0 || len(recs) == 0 {
		t.Fatalf("post-storm run: degraded=%d records=%d", degraded, len(recs))
	}
}
