package interp

import (
	"strings"
	"testing"

	"icbe/internal/ir"
)

func TestGlobalInitializers(t *testing.T) {
	res := run(t, `
		var a = 7;
		var b = -3;
		var c;
		func main() { print(a); print(b); print(c); }
	`)
	wantOutput(t, res, 7, -3, 0)
}

func TestAllocZeroCells(t *testing.T) {
	res := run(t, `
		func main() {
			var p = alloc(0);
			var q = alloc(1);
			print(p);
			print(q);
			q[0] = 5;
			print(q[0]);
		}
	`)
	// Zero-size allocation still returns a distinct non-nil address.
	if res.Output[0] == 0 || res.Output[1] == 0 {
		t.Errorf("nil-looking allocations: %v", res.Output)
	}
	if res.Output[2] != 5 {
		t.Errorf("store/load roundtrip = %d", res.Output[2])
	}
}

func TestHeapAddressesDistinct(t *testing.T) {
	res := run(t, `
		func main() {
			var a = alloc(2);
			var b = alloc(2);
			a[0] = 1;
			b[0] = 2;
			print(a[0]);
			print(b[0]);
		}
	`)
	wantOutput(t, res, 1, 2)
}

func TestNegativeIndexWithinHeap(t *testing.T) {
	// ptr+idx addressing allows negative offsets as long as the address
	// stays within the heap; addressing before cell 1 traps.
	res := run(t, `
		func main() {
			var a = alloc(4);
			a[2] = 9;
			var p = a + 3;
			print(p[-1]);
		}
	`)
	wantOutput(t, res, 9)
	err := runErr(t, `
		func main() {
			var a = alloc(4);
			var neg = 0 - a - 5;
			print(a[neg]);
		}
	`)
	if !strings.Contains(err.Error(), "out of bounds") {
		t.Errorf("err = %v", err)
	}
}

func TestModuloNegativeOperands(t *testing.T) {
	res := run(t, `
		func main() {
			var a = -7;
			print(a % 3);
			print(7 % -3);
			print(a / 3);
		}
	`)
	wantOutput(t, res, -1, 1, -2) // Go (and C99) truncated semantics
}

func TestExecCountsCoverCallMachinery(t *testing.T) {
	p, err := ir.Build(`
		func f(a) { return a + 1; }
		func main() { print(f(f(1))); }
	`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, Options{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	f := p.ProcByName("f")
	if got := res.ExecCount[f.Entries[0]]; got != 2 {
		t.Errorf("entry executed %d times, want 2", got)
	}
	if got := res.ExecCount[f.Exits[0]]; got != 2 {
		t.Errorf("exit executed %d times, want 2", got)
	}
	var calls int64
	p.LiveNodes(func(n *ir.Node) {
		if n.Kind == ir.NCall {
			calls += res.ExecCount[n.ID]
		}
	})
	if calls != 2 {
		t.Errorf("calls executed %d, want 2", calls)
	}
}

func TestDeletedNodeControlError(t *testing.T) {
	p, err := ir.Build(`func main() { print(1); print(2); }`)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the graph: make the first print's successor a deleted node.
	var first *ir.Node
	p.LiveNodes(func(n *ir.Node) {
		if n.Kind == ir.NPrint && first == nil {
			first = n
		}
	})
	second := p.Node(first.Succs[0])
	p.Nodes[second.ID] = nil
	_, err = Run(p, Options{})
	if err == nil || !strings.Contains(err.Error(), "deleted node") {
		t.Errorf("err = %v, want deleted-node error", err)
	}
}

func TestMissingReturnPointError(t *testing.T) {
	p, err := ir.Build(`
		func f() { return 1; }
		func main() { print(f()); }
	`)
	if err != nil {
		t.Fatal(err)
	}
	// Remove the exit→callexit edge: the frame cannot return.
	var ce *ir.Node
	p.LiveNodes(func(n *ir.Node) {
		if n.Kind == ir.NCallExit {
			ce = n
		}
	})
	exit := p.ExitPred(ce)
	p.RemoveEdge(exit.ID, ce.ID)
	_, err = Run(p, Options{})
	if err == nil || !strings.Contains(err.Error(), "no return point") {
		t.Errorf("err = %v, want no-return-point error", err)
	}
}

func TestRuntimeErrorMessageFormat(t *testing.T) {
	err := runErr(t, `func main() { var x = 0; print(1 / x); }`)
	re, ok := err.(*RuntimeError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if re.Line == 0 || re.Node < 0 {
		t.Errorf("missing position info: %+v", re)
	}
	if !strings.Contains(re.Error(), "line") {
		t.Errorf("message = %q", re.Error())
	}
}

func TestByteOfNegativeValues(t *testing.T) {
	res := run(t, `
		func main() {
			var a = -256;
			print(byte(a));
			var b = -255;
			print(byte(b));
		}
	`)
	wantOutput(t, res, 0, 1)
}

func TestLargeIterationCountWithinBudget(t *testing.T) {
	res := run(t, `
		func main() {
			var i = 0;
			var s = 0;
			while (i < 100000) {
				s = s + i;
				i = i + 1;
			}
			print(s);
		}
	`)
	wantOutput(t, res, 4999950000)
}
