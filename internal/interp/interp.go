// Package interp executes ICFG programs directly. It serves two roles in
// the reproduction: it produces the dynamic profiles (per-node execution
// counts) that weight the paper's dynamic measurements, and it is the
// semantic oracle for the restructuring transformation — an optimized
// program must produce identical output and must not execute more
// operations than the original on any input.
package interp

import (
	"errors"
	"fmt"
	"math"

	"icbe/internal/ir"
)

// Options configures a program run.
type Options struct {
	// Input is the stream consumed by input(); when exhausted, input()
	// returns -1 (the EOF model of the paper's stdio example).
	Input []int64
	// MaxSteps bounds the number of executed nodes (0 means the default of
	// 50 million). Exceeding it is reported as an error.
	MaxSteps int64
	// Profile enables per-node execution counting.
	Profile bool
}

// DefaultMaxSteps bounds runaway executions.
const DefaultMaxSteps = 50_000_000

// ErrStepLimit categorizes a RuntimeError caused by exhausting
// Options.MaxSteps. It is exposed as a sentinel so callers can distinguish
// "the run was too slow for its budget" from genuine faults (nil
// dereference, division by zero) with errors.Is(err, interp.ErrStepLimit) —
// the restructuring driver's shadow-execution oracle skips budget-exhausted
// inputs instead of reporting them as miscompilations.
var ErrStepLimit = errors.New("step limit exceeded")

// Result summarizes an execution.
type Result struct {
	// Output collects the values printed by the program, in order.
	Output []int64
	// Steps counts every executed node, including synthetic ones.
	Steps int64
	// Operations counts executed operation nodes (the paper's unit for the
	// safety guarantee: restructuring never lengthens any path).
	Operations int64
	// CondExecs counts executed conditional branch nodes.
	CondExecs int64
	// ExecCount maps node IDs to execution counts (when Options.Profile).
	ExecCount map[ir.NodeID]int64
}

// RuntimeError is an execution failure (nil dereference, division by zero,
// step limit, missing return point).
type RuntimeError struct {
	Node ir.NodeID
	Line int
	Msg  string
	// Err, when non-nil, is a sentinel categorizing the failure (currently
	// only ErrStepLimit); it is returned by Unwrap so errors.Is works.
	Err error
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("runtime error at node %d (line %d): %s", e.Node, e.Line, e.Msg)
}

// Unwrap exposes the categorizing sentinel, if any.
func (e *RuntimeError) Unwrap() error { return e.Err }

type frame struct {
	proc     int
	callNode ir.NodeID // NCall node that created this frame; NoNode for main
	vars     map[ir.VarID]int64
}

type machine struct {
	prog    *ir.Program
	opts    Options
	globals []int64
	heap    []int64
	frames  []*frame
	inPos   int
	res     *Result
}

// Run executes the program from main's entry until main's exit. The
// returned Result is valid (partially filled) even when an error occurred.
func Run(p *ir.Program, opts Options) (*Result, error) {
	m := &machine{
		prog:    p,
		opts:    opts,
		globals: make([]int64, len(p.Vars)),
		heap:    make([]int64, 1), // heap[0] unused; 0 is the nil pointer
		res:     &Result{},
	}
	if opts.Profile {
		m.res.ExecCount = make(map[ir.NodeID]int64)
	}
	for _, v := range p.Vars {
		if v.IsGlobal() {
			m.globals[v.ID] = v.Init
		}
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}

	main := p.Procs[p.MainProc]
	m.frames = []*frame{{proc: p.MainProc, callNode: ir.NoNode, vars: make(map[ir.VarID]int64)}}
	cur := p.Node(main.Entries[0])
	var retVal int64 // value carried from an exit to its call-site exit

	for {
		if cur == nil {
			return m.res, &RuntimeError{Node: ir.NoNode, Line: 0, Msg: "control reached a deleted node"}
		}
		m.res.Steps++
		if m.res.Steps > maxSteps {
			return m.res, &RuntimeError{Node: cur.ID, Line: cur.Line, Msg: "step limit exceeded", Err: ErrStepLimit}
		}
		if m.res.ExecCount != nil {
			m.res.ExecCount[cur.ID]++
		}
		if cur.IsOperation() {
			m.res.Operations++
		}

		switch cur.Kind {
		case ir.NEntry, ir.NNop:
			cur = m.onlySucc(cur)

		case ir.NAssert:
			// Asserts are compiler-established facts; a violation means the
			// graph was miscompiled or incorrectly restructured.
			if !cur.APred.Eval(m.read(cur.AVar)) {
				return m.res, &RuntimeError{Node: cur.ID, Line: cur.Line,
					Msg: fmt.Sprintf("internal: assertion %s %s violated (value %d)",
						m.prog.VarName(cur.AVar), cur.APred, m.read(cur.AVar))}
			}
			cur = m.onlySucc(cur)

		case ir.NAssign:
			v, err := m.evalRHS(cur)
			if err != nil {
				return m.res, err
			}
			m.write(cur.Dst, v)
			cur = m.onlySucc(cur)

		case ir.NBranch:
			m.res.CondExecs++
			lhs := m.read(cur.CondVar)
			rhs := cur.CondRHS.Const
			if !cur.CondRHS.IsConst {
				rhs = m.read(cur.CondRHS.Var)
			}
			if cur.CondOp.Eval(lhs, rhs) {
				cur = m.prog.Node(cur.TrueSucc())
			} else {
				cur = m.prog.Node(cur.FalseSucc())
			}

		case ir.NPrint:
			m.res.Output = append(m.res.Output, m.operand(cur.Val))
			cur = m.onlySucc(cur)

		case ir.NStore:
			ptr := m.read(cur.Ptr)
			idx := m.operand(cur.Idx)
			if err := m.checkAddr(cur, ptr, idx); err != nil {
				return m.res, err
			}
			m.heap[ptr+idx] = m.operand(cur.Val)
			cur = m.onlySucc(cur)

		case ir.NCall:
			callee := m.prog.Procs[cur.Callee]
			nf := &frame{proc: cur.Callee, callNode: cur.ID, vars: make(map[ir.VarID]int64)}
			for i, formal := range callee.Formals {
				nf.vars[formal] = m.read(cur.Args[i])
			}
			m.frames = append(m.frames, nf)
			cur = m.prog.EntrySucc(cur)

		case ir.NExit:
			top := m.frames[len(m.frames)-1]
			retVal = m.read(m.prog.Procs[top.proc].RetVar)
			m.frames = m.frames[:len(m.frames)-1]
			if top.callNode == ir.NoNode {
				// main returned: program halts.
				return m.res, nil
			}
			var ret *ir.Node
			for _, s := range cur.Succs {
				ce := m.prog.Node(s)
				if ce == nil || ce.Kind != ir.NCallExit {
					continue
				}
				if cp := m.prog.CallPred(ce); cp != nil && cp.ID == top.callNode {
					ret = ce
					break
				}
			}
			if ret == nil {
				return m.res, &RuntimeError{Node: cur.ID, Line: cur.Line,
					Msg: fmt.Sprintf("internal: exit of %s has no return point for call node %d",
						m.prog.Procs[cur.Proc].Name, top.callNode)}
			}
			cur = ret

		case ir.NCallExit:
			if cur.Dst != ir.NoVar {
				m.write(cur.Dst, retVal)
			}
			cur = m.onlySucc(cur)

		default:
			return m.res, &RuntimeError{Node: cur.ID, Line: cur.Line,
				Msg: fmt.Sprintf("internal: unexecutable node kind %s", cur.Kind)}
		}
	}
}

func (m *machine) onlySucc(n *ir.Node) *ir.Node {
	if len(n.Succs) != 1 {
		return nil
	}
	return m.prog.Node(n.Succs[0])
}

func (m *machine) read(v ir.VarID) int64 {
	if m.prog.Vars[v].IsGlobal() {
		return m.globals[v]
	}
	return m.frames[len(m.frames)-1].vars[v]
}

func (m *machine) write(v ir.VarID, x int64) {
	if m.prog.Vars[v].IsGlobal() {
		m.globals[v] = x
		return
	}
	m.frames[len(m.frames)-1].vars[v] = x
}

func (m *machine) operand(o ir.Operand) int64 {
	if o.IsConst {
		return o.Const
	}
	return m.read(o.Var)
}

func (m *machine) checkAddr(n *ir.Node, ptr, idx int64) error {
	if ptr == 0 {
		return &RuntimeError{Node: n.ID, Line: n.Line, Msg: "nil pointer dereference"}
	}
	addr := ptr + idx
	if addr < 1 || addr >= int64(len(m.heap)) {
		return &RuntimeError{Node: n.ID, Line: n.Line,
			Msg: fmt.Sprintf("heap access out of bounds (addr %d, heap size %d)", addr, len(m.heap))}
	}
	return nil
}

func (m *machine) evalRHS(n *ir.Node) (int64, error) {
	r := n.RHS
	switch r.Kind {
	case ir.RConst:
		return r.Const, nil
	case ir.RCopy:
		return m.read(r.Src), nil
	case ir.RNeg:
		return -m.read(r.Src), nil
	case ir.RByte:
		return m.read(r.Src) & 0xFF, nil
	case ir.RBinop:
		a := m.operand(r.A)
		b := m.operand(r.B)
		switch r.Op {
		case ir.OpAdd:
			return a + b, nil
		case ir.OpSub:
			return a - b, nil
		case ir.OpMul:
			return a * b, nil
		case ir.OpDiv:
			if b == 0 {
				return 0, &RuntimeError{Node: n.ID, Line: n.Line, Msg: "division by zero"}
			}
			if a == math.MinInt64 && b == -1 {
				return math.MinInt64, nil // wraparound, matching hardware
			}
			return a / b, nil
		case ir.OpMod:
			if b == 0 {
				return 0, &RuntimeError{Node: n.ID, Line: n.Line, Msg: "modulo by zero"}
			}
			if a == math.MinInt64 && b == -1 {
				return 0, nil
			}
			return a % b, nil
		}
		return 0, &RuntimeError{Node: n.ID, Line: n.Line, Msg: "internal: unknown binop"}
	case ir.RLoad:
		ptr := m.read(r.Src)
		idx := m.operand(r.A)
		if err := m.checkAddr(n, ptr, idx); err != nil {
			return 0, err
		}
		return m.heap[ptr+idx], nil
	case ir.RAlloc:
		size := m.operand(r.A)
		if size < 0 || size > 1<<24 {
			return 0, &RuntimeError{Node: n.ID, Line: n.Line,
				Msg: fmt.Sprintf("invalid allocation size %d", size)}
		}
		base := int64(len(m.heap))
		m.heap = append(m.heap, make([]int64, size)...)
		return base, nil
	case ir.RInput:
		if m.inPos >= len(m.opts.Input) {
			return -1, nil
		}
		v := m.opts.Input[m.inPos]
		m.inPos++
		return v, nil
	}
	return 0, &RuntimeError{Node: n.ID, Line: n.Line, Msg: "internal: unknown rhs kind"}
}
