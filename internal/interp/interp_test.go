package interp

import (
	"strings"
	"testing"

	"icbe/internal/ir"
)

func run(t *testing.T, src string, input ...int64) *Result {
	t.Helper()
	p, err := ir.Build(src)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	res, err := Run(p, Options{Input: input, Profile: true})
	if err != nil {
		t.Fatalf("Run: %v\n%s", err, p.Dump())
	}
	return res
}

func runErr(t *testing.T, src string, input ...int64) error {
	t.Helper()
	p, err := ir.Build(src)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	_, err = Run(p, Options{Input: input})
	if err == nil {
		t.Fatalf("Run succeeded, expected runtime error")
	}
	return err
}

func wantOutput(t *testing.T, res *Result, want ...int64) {
	t.Helper()
	if len(res.Output) != len(want) {
		t.Fatalf("output = %v, want %v", res.Output, want)
	}
	for i := range want {
		if res.Output[i] != want[i] {
			t.Fatalf("output = %v, want %v", res.Output, want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	res := run(t, `
		func main() {
			print(2 + 3 * 4);
			print(10 / 3);
			print(10 % 3);
			print(-7);
			var x = 5;
			print(-x);
			print((2 + 3) * 4);
		}
	`)
	wantOutput(t, res, 14, 3, 1, -7, -5, 20)
}

func TestGlobalsAndLocals(t *testing.T) {
	res := run(t, `
		var g = 100;
		func bump() { g = g + 1; return g; }
		func main() {
			var a = bump();
			var b = bump();
			print(a);
			print(b);
			print(g);
		}
	`)
	wantOutput(t, res, 101, 102, 102)
}

func TestControlFlow(t *testing.T) {
	res := run(t, `
		func main() {
			var i = 0;
			var sum = 0;
			while (i < 5) {
				i = i + 1;
				if (i == 3) { continue; }
				if (i == 5) { break; }
				sum = sum + i;
			}
			print(sum); // 1 + 2 + 4 = 7
			print(i);
		}
	`)
	wantOutput(t, res, 7, 5)
}

func TestIfElseChain(t *testing.T) {
	src := `
		func classify(x) {
			if (x < 0) { return -1; }
			else if (x == 0) { return 0; }
			else { return 1; }
		}
		func main() {
			print(classify(-5));
			print(classify(0));
			print(classify(9));
		}
	`
	res := run(t, src)
	wantOutput(t, res, -1, 0, 1)
}

func TestCallsAndRecursion(t *testing.T) {
	res := run(t, `
		func fib(n) {
			if (n < 2) { return n; }
			return fib(n - 1) + fib(n - 2);
		}
		func main() { print(fib(10)); }
	`)
	wantOutput(t, res, 55)
}

func TestCallByValue(t *testing.T) {
	res := run(t, `
		func change(x) { x = 99; return x; }
		func main() {
			var a = 1;
			var r = change(a);
			print(a);
			print(r);
		}
	`)
	wantOutput(t, res, 1, 99)
}

func TestRecursionLocalIsolation(t *testing.T) {
	res := run(t, `
		func down(n) {
			var local = n * 10;
			if (n > 0) { down(n - 1); }
			print(local);
			return 0;
		}
		func main() { down(3); }
	`)
	wantOutput(t, res, 0, 10, 20, 30)
}

func TestHeapAndLists(t *testing.T) {
	res := run(t, `
		// Build list 3 -> 2 -> 1 and sum it.
		func cons(v, next) {
			var c = alloc(2);
			c[0] = v;
			c[1] = next;
			return c;
		}
		func sum(list) {
			var s = 0;
			while (list != 0) {
				s = s + list[0];
				list = list[1];
			}
			return s;
		}
		func main() {
			var l = cons(1, 0);
			l = cons(2, l);
			l = cons(3, l);
			print(sum(l));
		}
	`)
	wantOutput(t, res, 6)
}

func TestByteBuiltin(t *testing.T) {
	res := run(t, `
		func main() {
			var x = 300;
			print(byte(x));   // 300 & 255 = 44
			print(byte(-1));  // constant-folded: 255
			var y = -1;
			print(byte(y));   // 255
		}
	`)
	wantOutput(t, res, 44, 255, 255)
}

func TestInputAndEOF(t *testing.T) {
	res := run(t, `
		func main() {
			var c = input();
			while (c != -1) {
				print(c);
				c = input();
			}
			print(1000);
		}
	`, 10, 20, 30)
	wantOutput(t, res, 10, 20, 30, 1000)
}

func TestInputExhaustedReturnsMinusOne(t *testing.T) {
	res := run(t, `func main() { print(input()); print(input()); }`, 7)
	wantOutput(t, res, 7, -1)
}

func TestProfileCounts(t *testing.T) {
	p, err := ir.Build(`
		func main() {
			var i = 0;
			while (i < 4) { i = i + 1; }
			print(i);
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, Options{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	var br *ir.Node
	p.LiveNodes(func(n *ir.Node) {
		if n.Kind == ir.NBranch {
			br = n
		}
	})
	if res.ExecCount[br.ID] != 5 { // 4 true + 1 false evaluation
		t.Errorf("branch executed %d times, want 5", res.ExecCount[br.ID])
	}
	if res.CondExecs != 5 {
		t.Errorf("CondExecs = %d, want 5", res.CondExecs)
	}
	if res.Operations <= 0 || res.Steps < res.Operations {
		t.Errorf("steps %d < operations %d", res.Steps, res.Operations)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"div0", `func main() { var x = input(); print(1 / x); }`, "division by zero"},
		{"mod0", `func main() { var x = input(); print(1 % x); }`, "modulo by zero"},
		{"nilderef", `func main() { var p = 0; print(p[0]); }`, "nil pointer"},
		{"nilstore", `func main() { var p = 0; p[0] = 1; }`, "nil pointer"},
		{"oob", `func main() { var p = alloc(2); print(p[5]); }`, "out of bounds"},
		{"negalloc", `func main() { var n = -1; var p = alloc(n); print(p); }`, "invalid allocation"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := runErr(t, tc.src, 0)
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error = %q, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestStepLimit(t *testing.T) {
	p, err := ir.Build(`func main() { while (1) { var x = 1; print(x); } }`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(p, Options{MaxSteps: 100})
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Errorf("err = %v, want step limit", err)
	}
}

func TestWrapAroundDivision(t *testing.T) {
	res := run(t, `
		func main() {
			var min = -9223372036854775807 - 1;
			var m1 = -1;
			print(min / m1);
			print(min % m1);
		}
	`)
	wantOutput(t, res, -9223372036854775808, 0)
}

func TestVarVarBranch(t *testing.T) {
	res := run(t, `
		func max(a, b) {
			if (a > b) { return a; }
			return b;
		}
		func main() { print(max(3, 9)); print(max(9, 3)); }
	`)
	wantOutput(t, res, 9, 9)
}

func TestMultipleCallSitesSameCallee(t *testing.T) {
	res := run(t, `
		func twice(x) { return x * 2; }
		func main() {
			print(twice(1));
			print(twice(twice(2)));
		}
	`)
	wantOutput(t, res, 2, 8)
}

func TestDeepRecursionWithinLimit(t *testing.T) {
	res := run(t, `
		func count(n) {
			if (n == 0) { return 0; }
			return 1 + count(n - 1);
		}
		func main() { print(count(1000)); }
	`)
	wantOutput(t, res, 1000)
}

func TestBareConditionTruthiness(t *testing.T) {
	res := run(t, `
		func main() {
			var x = 5;
			if (x) { print(1); } else { print(0); }
			x = 0;
			if (x) { print(1); } else { print(0); }
		}
	`)
	wantOutput(t, res, 1, 0)
}
