package interp

import (
	"errors"
	"testing"

	"icbe/internal/ir"
)

// TestStepLimitTypedError checks that hitting Options.MaxSteps yields the
// ErrStepLimit sentinel, reachable through errors.Is and errors.As, so
// callers (the driver's shadow oracle among them) can tell "too slow" apart
// from a genuine runtime fault.
func TestStepLimitTypedError(t *testing.T) {
	p, err := ir.Build(`func main() { var i = 0; while (i >= 0) { i = i + 1; } }`)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	_, err = Run(p, Options{MaxSteps: 1000})
	if err == nil {
		t.Fatal("infinite loop under MaxSteps returned no error")
	}
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("errors.Is(err, ErrStepLimit) = false for %v", err)
	}
	var re *RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("errors.As(*RuntimeError) = false for %T", err)
	}
	if re.Unwrap() != ErrStepLimit {
		t.Fatalf("RuntimeError.Unwrap() = %v, want ErrStepLimit", re.Unwrap())
	}
}

// TestGenuineFaultIsNotStepLimit checks that real runtime faults do not
// satisfy errors.Is(err, ErrStepLimit).
func TestGenuineFaultIsNotStepLimit(t *testing.T) {
	srcs := map[string]string{
		"nil-store": `func main() { var p = 0; p[0] = 1; }`,
		"div-zero":  `func main() { var z = 0; print(1 / z); }`,
	}
	for name, src := range srcs {
		p, err := ir.Build(src)
		if err != nil {
			t.Fatalf("%s: build: %v", name, err)
		}
		_, err = Run(p, Options{MaxSteps: 1000})
		if err == nil {
			t.Fatalf("%s: expected a runtime fault", name)
		}
		if errors.Is(err, ErrStepLimit) {
			t.Fatalf("%s: genuine fault %v wrongly matches ErrStepLimit", name, err)
		}
		var re *RuntimeError
		if !errors.As(err, &re) {
			t.Fatalf("%s: fault is not a *RuntimeError: %T", name, err)
		}
	}
}
