// Package inline implements procedure integration on the ICFG. The paper
// (§5, "Procedure inlining") discusses inlining as the conventional
// alternative to interprocedural restructuring: most interprocedurally
// visible branch-elimination opportunities can be exploited by inlining
// the involved procedures and then applying a purely intraprocedural
// eliminator — at the cost of duplicating the whole callee per call site
// rather than only the correlated paths. This package provides the
// inliner, so the tradeoff can be measured (see BenchmarkInliningVsICBE).
package inline

import (
	"fmt"

	"icbe/internal/ir"
)

// Call inlines the callee invoked at the given call-site node into the
// caller: the callee's body is cloned, formals become assignments from the
// argument variables, and each procedure exit becomes an assignment of the
// return variable to the call's destination followed by a jump to the
// corresponding call-site-exit successor. The graph must be in call-site
// normal form; it remains so afterwards.
func Call(p *ir.Program, callID ir.NodeID) error {
	call := p.Node(callID)
	if call == nil || call.Kind != ir.NCall {
		return fmt.Errorf("inline: node %d is not a call site", callID)
	}
	callee := p.Procs[call.Callee]
	caller := call.Proc
	entry := p.EntrySucc(call)

	// Nodes of the callee reachable from the invoked entry (other entries'
	// exclusive regions are not part of this call).
	reach := make(map[ir.NodeID]bool)
	stack := []ir.NodeID{entry.ID}
	reach[entry.ID] = true
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range p.Node(id).Succs {
			sn := p.Node(s)
			if sn == nil || sn.Proc != callee.Index || reach[s] {
				continue
			}
			reach[s] = true
			stack = append(stack, s)
		}
	}

	// Fresh caller-local copies of every callee variable, so recursive or
	// repeated inlining cannot alias frames.
	varMap := make(map[ir.VarID]ir.VarID)
	mapVar := func(v ir.VarID) ir.VarID {
		if v == ir.NoVar {
			return v
		}
		vv := p.Vars[v]
		if vv.Proc != callee.Index {
			return v // globals and caller variables pass through
		}
		if nv, ok := varMap[v]; ok {
			return nv
		}
		nv := p.NewVar(fmt.Sprintf("%s.inl%d.%s", p.Procs[caller].Name, int(callID), vv.Name), ir.VarLocal, caller)
		varMap[v] = nv
		return nv
	}
	mapOperand := func(o ir.Operand) ir.Operand {
		if o.IsConst {
			return o
		}
		return ir.VarOp(mapVar(o.Var))
	}

	// Clone the body. Entry and exit nodes become nops; the wiring below
	// redirects through them.
	nodeMap := make(map[ir.NodeID]ir.NodeID)
	for id := range reach {
		n := p.Node(id)
		kind := n.Kind
		if kind == ir.NEntry || kind == ir.NExit {
			kind = ir.NNop
		}
		c := p.NewNode(kind, caller)
		c.Line = n.Line
		c.Synthetic = n.Synthetic || kind == ir.NNop
		switch n.Kind {
		case ir.NAssign:
			c.Dst = mapVar(n.Dst)
			c.RHS = n.RHS
			c.RHS.Src = mapVar(n.RHS.Src)
			c.RHS.A = mapOperand(n.RHS.A)
			c.RHS.B = mapOperand(n.RHS.B)
		case ir.NBranch:
			c.CondVar = mapVar(n.CondVar)
			c.CondOp = n.CondOp
			c.CondRHS = mapOperand(n.CondRHS)
		case ir.NAssert:
			c.AVar = mapVar(n.AVar)
			c.APred = n.APred
		case ir.NStore:
			c.Ptr = mapVar(n.Ptr)
			c.Idx = mapOperand(n.Idx)
			c.Val = mapOperand(n.Val)
		case ir.NPrint:
			c.Val = mapOperand(n.Val)
		case ir.NCall:
			c.Callee = n.Callee
			c.Args = make([]ir.VarID, len(n.Args))
			for i, a := range n.Args {
				c.Args[i] = mapVar(a)
			}
		case ir.NCallExit:
			c.Callee = n.Callee
			c.Dst = mapVar(n.Dst)
			c.Synthetic = n.Synthetic
		}
		nodeMap[id] = c.ID
	}

	// Clone intraprocedural edges; wire nested calls interprocedurally.
	// Exit → call-site-exit and call → entry edges are interprocedural
	// even when both ends lie in the callee (recursion): they are never
	// cloned — the return wiring and the nested-call wiring below handle
	// them.
	for id := range reach {
		n := p.Node(id)
		if n.Kind != ir.NExit {
			for _, s := range n.Succs {
				if !reach[s] {
					continue
				}
				if n.Kind == ir.NCall && p.Node(s).Kind == ir.NEntry {
					continue
				}
				p.AddEdge(nodeMap[id], nodeMap[s])
			}
		}
		if n.Kind == ir.NCall {
			nested := p.EntrySucc(n)
			p.AddEdge(nodeMap[id], nested.ID)
			for _, ce := range p.CallExitSuccs(n) {
				if !reach[ce.ID] {
					continue
				}
				exitPred := p.ExitPred(ce)
				if exitPred != nil {
					p.AddEdge(exitPred.ID, nodeMap[ce.ID])
				}
			}
		}
	}

	// Parameter passing: formal_i := arg_i before the body.
	head := nodeMap[entry.ID]
	var paramChainEnd ir.NodeID = head
	// Insert assignments after the entry nop, before its successors.
	entryClone := p.Node(head)
	succs := append([]ir.NodeID(nil), entryClone.Succs...)
	for _, s := range succs {
		p.RemoveEdge(head, s)
	}
	cur := head
	for i, formal := range callee.Formals {
		asg := p.NewNode(ir.NAssign, caller)
		asg.Dst = mapVar(formal)
		asg.RHS = ir.RHS{Kind: ir.RCopy, Src: call.Args[i]}
		asg.Line = call.Line
		p.AddEdge(cur, asg.ID)
		cur = asg.ID
	}
	for _, s := range succs {
		p.AddEdge(cur, s)
	}
	paramChainEnd = cur
	_ = paramChainEnd

	// Return wiring: each cloned exit assigns the mapped return variable
	// into the call-site exit's destination and jumps to that exit's
	// call-site-exit successor in the caller.
	for _, ce := range p.CallExitSuccs(call) {
		exitPred := p.ExitPred(ce)
		if exitPred == nil {
			return fmt.Errorf("inline: call %d has call-site exit %d without exit predecessor", callID, ce.ID)
		}
		if !reach[exitPred.ID] {
			// The paired exit is unreachable from this entry; the
			// call-site exit can never activate. Drop it below with the
			// call node.
			continue
		}
		exitClone := nodeMap[exitPred.ID]
		after := ce.Succs[0]
		if ce.Dst != ir.NoVar {
			asg := p.NewNode(ir.NAssign, caller)
			asg.Dst = ce.Dst
			asg.RHS = ir.RHS{Kind: ir.RCopy, Src: mapVar(callee.RetVar)}
			asg.Line = ce.Line
			p.AddEdge(exitClone, asg.ID)
			p.AddEdge(asg.ID, after)
		} else {
			p.AddEdge(exitClone, after)
		}
	}

	// Redirect the callers of the call node into the inlined head and
	// remove the call site.
	for _, m := range append([]ir.NodeID(nil), call.Preds...) {
		p.RedirectSucc(m, callID, head)
	}
	ces := p.CallExitSuccs(call)
	p.DeleteNode(callID)
	for _, ce := range ces {
		p.DeleteNode(ce.ID)
	}
	return nil
}

// Exhaustive inlines every non-recursive call in the program repeatedly
// until none remain or the budget of inline operations is exhausted. It
// reproduces the paper's "pre-pass inlining" strawman.
func Exhaustive(p *ir.Program, budget int) int {
	done := 0
	for done < budget {
		var target ir.NodeID = ir.NoNode
		p.LiveNodes(func(n *ir.Node) {
			if target != ir.NoNode || n.Kind != ir.NCall {
				return
			}
			if n.Callee == n.Proc {
				return // direct recursion cannot be fully inlined
			}
			if callsProc(p, n.Callee, n.Proc) {
				return // mutual recursion
			}
			target = n.ID
		})
		if target == ir.NoNode {
			return done
		}
		if err := Call(p, target); err != nil {
			return done
		}
		done++
	}
	return done
}

// callsProc reports whether procedure from can (transitively) call
// procedure to.
func callsProc(p *ir.Program, from, to int) bool {
	seen := make(map[int]bool)
	var walk func(int) bool
	walk = func(pr int) bool {
		if pr == to {
			return true
		}
		if seen[pr] {
			return false
		}
		seen[pr] = true
		found := false
		p.LiveNodes(func(n *ir.Node) {
			if !found && n.Kind == ir.NCall && n.Proc == pr {
				if walk(n.Callee) {
					found = true
				}
			}
		})
		return found
	}
	return walk(from)
}
