package inline

import (
	"testing"

	"icbe/internal/analysis"
	"icbe/internal/interp"
	"icbe/internal/ir"
	"icbe/internal/restructure"
)

func build(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := ir.Build(src)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func firstCall(p *ir.Program, callee string) ir.NodeID {
	target := ir.NoNode
	p.LiveNodes(func(n *ir.Node) {
		if target == ir.NoNode && n.Kind == ir.NCall && p.Procs[n.Callee].Name == callee {
			target = n.ID
		}
	})
	return target
}

func sameOutput(t *testing.T, a, b *ir.Program, inputs [][]int64) {
	t.Helper()
	for _, in := range inputs {
		r1, err := interp.Run(a, interp.Options{Input: in})
		if err != nil {
			t.Fatalf("original: %v", err)
		}
		r2, err := interp.Run(b, interp.Options{Input: in})
		if err != nil {
			t.Fatalf("inlined: %v\n%s", err, b.Dump())
		}
		if len(r1.Output) != len(r2.Output) {
			t.Fatalf("output mismatch on %v: %v vs %v", in, r1.Output, r2.Output)
		}
		for i := range r1.Output {
			if r1.Output[i] != r2.Output[i] {
				t.Fatalf("output mismatch on %v: %v vs %v", in, r1.Output, r2.Output)
			}
		}
	}
}

func TestInlineSimpleCall(t *testing.T) {
	src := `
		func add(a, b) { return a + b; }
		func main() {
			var s = add(3, 4);
			print(s);
			print(add(s, 10));
		}
	`
	p := build(t, src)
	q := ir.Clone(p)
	if err := Call(q, firstCall(q, "add")); err != nil {
		t.Fatal(err)
	}
	if err := ir.Validate(q); err != nil {
		t.Fatalf("invalid after inline: %v\n%s", err, q.Dump())
	}
	sameOutput(t, p, q, [][]int64{nil})
	// One call remains.
	calls := 0
	q.LiveNodes(func(n *ir.Node) {
		if n.Kind == ir.NCall {
			calls++
		}
	})
	if calls != 1 {
		t.Errorf("calls after inlining one site = %d, want 1", calls)
	}
}

func TestInlineCallWithBranches(t *testing.T) {
	src := `
		func classify(v) {
			if (v < 0) { return -1; }
			if (v == 0) { return 0; }
			return 1;
		}
		func main() {
			var v = input();
			print(classify(v));
			print(classify(0 - v));
		}
	`
	p := build(t, src)
	q := ir.Clone(p)
	if err := Call(q, firstCall(q, "classify")); err != nil {
		t.Fatal(err)
	}
	if err := ir.Validate(q); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	sameOutput(t, p, q, [][]int64{{5}, {0}, {-3}})
}

func TestInlineNestedCalls(t *testing.T) {
	src := `
		func inner(x) { return x * 2; }
		func outer(x) { return inner(x) + 1; }
		func main() { print(outer(input())); }
	`
	p := build(t, src)
	q := ir.Clone(p)
	if err := Call(q, firstCall(q, "outer")); err != nil {
		t.Fatal(err)
	}
	if err := ir.Validate(q); err != nil {
		t.Fatalf("invalid: %v\n%s", err, q.Dump())
	}
	sameOutput(t, p, q, [][]int64{{7}, {-2}})
	// The cloned nested call must still enter inner.
	if firstCall(q, "inner") == ir.NoNode {
		t.Error("nested call lost")
	}
}

func TestInlineGlobalsShared(t *testing.T) {
	src := `
		var g;
		func bump() { g = g + 1; return g; }
		func main() {
			print(bump());
			print(bump());
			print(g);
		}
	`
	p := build(t, src)
	q := ir.Clone(p)
	if err := Call(q, firstCall(q, "bump")); err != nil {
		t.Fatal(err)
	}
	sameOutput(t, p, q, [][]int64{nil})
}

func TestInlineRecursiveCalleeViaWrapper(t *testing.T) {
	// Inlining a call to a recursive procedure: the body's recursive call
	// stays a call.
	src := `
		func fact(n) {
			if (n <= 1) { return 1; }
			return n * fact(n - 1);
		}
		func main() { print(fact(6)); }
	`
	p := build(t, src)
	q := ir.Clone(p)
	if err := Call(q, firstCall(q, "fact")); err != nil {
		t.Fatal(err)
	}
	if err := ir.Validate(q); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	sameOutput(t, p, q, [][]int64{nil})
}

func TestInlineDiscardedResult(t *testing.T) {
	src := `
		var g;
		func touch(v) { g = v; return v; }
		func main() {
			touch(42);
			print(g);
		}
	`
	p := build(t, src)
	q := ir.Clone(p)
	if err := Call(q, firstCall(q, "touch")); err != nil {
		t.Fatal(err)
	}
	sameOutput(t, p, q, [][]int64{nil})
}

func TestExhaustiveInlining(t *testing.T) {
	src := `
		func a(x) { return x + 1; }
		func b(x) { return a(x) * 2; }
		func c(x) { return b(x) - a(x); }
		func main() { print(c(input())); }
	`
	p := build(t, src)
	q := ir.Clone(p)
	n := Exhaustive(q, 100)
	if n == 0 {
		t.Fatal("nothing inlined")
	}
	if err := ir.Validate(q); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if got := firstCall(q, "a"); got != ir.NoNode {
		t.Error("calls remain after exhaustive inlining")
	}
	sameOutput(t, p, q, [][]int64{{10}, {-4}})
}

func TestExhaustiveSkipsRecursion(t *testing.T) {
	src := `
		func even(n) { if (n == 0) { return 1; } return odd(n - 1); }
		func odd(n) { if (n == 0) { return 0; } return even(n - 1); }
		func main() { print(even(8)); print(odd(8)); }
	`
	p := build(t, src)
	q := ir.Clone(p)
	Exhaustive(q, 100)
	if err := ir.Validate(q); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	sameOutput(t, p, q, [][]int64{nil})
}

func TestInlineErrors(t *testing.T) {
	p := build(t, `func f() { return 1; } func main() { print(f()); }`)
	if err := Call(p, 99999); err == nil {
		t.Error("expected error for bad node id")
	}
	var printNode ir.NodeID
	p.LiveNodes(func(n *ir.Node) {
		if n.Kind == ir.NPrint {
			printNode = n.ID
		}
	})
	if err := Call(p, printNode); err == nil {
		t.Error("expected error for non-call node")
	}
}

// TestInlineThenIntraEliminate reproduces the paper's §5 scenario: after
// inlining the procedures involved in a correlation, a purely
// intraprocedural eliminator can remove the branch.
func TestInlineThenIntraEliminate(t *testing.T) {
	src := `
		func get() {
			if (input() > 0) { return 0; }
			return 7;
		}
		func main() {
			var r = get();
			if (r == 0) { print(1); } else { print(2); }
		}
	`
	p := build(t, src)

	// Intraprocedural elimination alone finds nothing.
	intra := restructure.DriverOptions{Analysis: analysis.Options{ModSummaries: true, TerminationLimit: 1000}, MaxDuplication: 200}
	before := restructure.Optimize(p, intra)
	if before.Optimized != 0 {
		t.Fatalf("intra alone optimized %d", before.Optimized)
	}

	// After inlining get() into main, it succeeds.
	q := ir.Clone(p)
	if err := Call(q, firstCall(q, "get")); err != nil {
		t.Fatal(err)
	}
	after := restructure.Optimize(q, intra)
	if after.Optimized == 0 {
		t.Fatalf("intra after inlining optimized nothing\n%s", q.Dump())
	}
	inputs := [][]int64{{3}, {0}, {-1}}
	sameOutput(t, p, after.Program, inputs)
	r1, _ := interp.Run(p, interp.Options{Input: inputs[0]})
	r2, _ := interp.Run(after.Program, interp.Options{Input: inputs[0]})
	if r2.CondExecs >= r1.CondExecs {
		t.Errorf("no reduction: %d vs %d", r2.CondExecs, r1.CondExecs)
	}
}
