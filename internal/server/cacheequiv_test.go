package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"icbe/internal/progs"
)

// maxTestDeadline gives cache tests enough budget that every workload
// reaches the full tier — degraded results are uncacheable by design, so a
// flaky timeout would turn a cache assertion into noise.
const maxTestDeadline = 60 * time.Second

// postHdr sends one /optimize request and returns status, raw body, and the
// response headers (the cache disposition travels in X-Icbe-Cache).
func postHdr(t *testing.T, url string, req OptimizeRequest) (int, []byte, http.Header) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	resp, err := http.Post(url+"/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /optimize: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp.StatusCode, raw, resp.Header
}

// TestCacheEquivalence is the cache's contract test: for every benchmark
// workload and several worker counts, a cached response is byte-identical
// to a fresh compute — and since the deterministic body scrubbing also makes
// bodies worker-count independent, all worker counts agree on the bytes too.
func TestCacheEquivalence(t *testing.T) {
	dir := t.TempDir()
	cached, cts := newTestService(t, Config{
		Workers: runtime.NumCPU(), CacheEntries: 256, StoreDir: dir,
		DefaultDeadline: maxTestDeadline, MaxDeadline: maxTestDeadline,
	})
	_, fts := newTestService(t, Config{
		Workers: runtime.NumCPU(), DefaultDeadline: maxTestDeadline, MaxDeadline: maxTestDeadline,
	})

	// The server clamps requested workers to its ceiling (NumCPU here), and
	// the cache fingerprint uses the effective value — so two requested
	// counts that clamp to the same number share a cache entry. Dedupe by
	// effective value to keep the miss/hit expectations honest.
	effective := func(requested int) int {
		if requested > 0 && requested < runtime.NumCPU() {
			return requested
		}
		return runtime.NumCPU()
	}
	var workerCounts []int
	seen := map[int]bool{}
	for _, requested := range []int{1, 4, runtime.NumCPU()} {
		if eff := effective(requested); !seen[eff] {
			seen[eff] = true
			workerCounts = append(workerCounts, requested)
		}
	}
	for _, w := range progs.All() {
		var acrossWorkers [][]byte
		for _, workers := range workerCounts {
			req := OptimizeRequest{
				Program: w.Source,
				Input:   w.Train,
				Options: &RequestOptions{Workers: workers},
			}
			status, cold, hdr := postHdr(t, cts.URL, req)
			if status != http.StatusOK {
				t.Fatalf("%s/w%d: status %d: %s", w.Name, workers, status, cold)
			}
			if got := hdr.Get("X-Icbe-Cache"); got != "miss" {
				t.Fatalf("%s/w%d: first request cache status %q, want miss", w.Name, workers, got)
			}
			var resp OptimizeResponse
			if err := json.Unmarshal(cold, &resp); err != nil {
				t.Fatal(err)
			}
			if resp.Tier != "full" {
				t.Fatalf("%s/w%d: tier %q — raise the deadline, cache tests need full tier", w.Name, workers, resp.Tier)
			}

			// Repeat: served from cache, byte-identical.
			status, warm, hdr := postHdr(t, cts.URL, req)
			if status != http.StatusOK {
				t.Fatalf("%s/w%d: repeat status %d", w.Name, workers, status)
			}
			if got := hdr.Get("X-Icbe-Cache"); got != "hit-memory" {
				t.Fatalf("%s/w%d: repeat cache status %q, want hit-memory", w.Name, workers, got)
			}
			if !bytes.Equal(cold, warm) {
				t.Errorf("%s/w%d: cached response differs from the compute that produced it", w.Name, workers)
			}

			// The same request against a cache-less server: identical bytes.
			status, fresh, hdr := postHdr(t, fts.URL, req)
			if status != http.StatusOK {
				t.Fatalf("%s/w%d: fresh status %d", w.Name, workers, status)
			}
			if got := hdr.Get("X-Icbe-Cache"); got != "bypass" {
				t.Fatalf("%s/w%d: cache-less server sent status %q", w.Name, workers, got)
			}
			if !bytes.Equal(cold, fresh) {
				t.Errorf("%s/w%d: cached body differs from a fresh compute", w.Name, workers)
			}
			acrossWorkers = append(acrossWorkers, cold)
		}
		for i := 1; i < len(acrossWorkers); i++ {
			if !bytes.Equal(acrossWorkers[0], acrossWorkers[i]) {
				t.Errorf("%s: body differs between workers=%d and workers=%d",
					w.Name, workerCounts[0], workerCounts[i])
			}
		}
	}

	snap := cached.Stats()
	if snap.Store == nil {
		t.Fatal("/stats missing store block")
	}
	if snap.Store.HitsMemory == 0 || snap.CacheServed == 0 {
		t.Fatalf("cache never hit: %+v", snap.Store)
	}
	if snap.Store.Quarantined != 0 {
		t.Fatalf("clean soak quarantined entries: %+v", snap.Store)
	}
}

// TestCacheSummaryWarmPath exercises the second-level warmth: a different
// request shape for the same program misses the result cache but replays the
// persisted procedure summaries, and still produces the exact body a fresh
// server would.
func TestCacheSummaryWarmPath(t *testing.T) {
	dir := t.TempDir()
	_, cts := newTestService(t, Config{
		CacheEntries: 64, StoreDir: dir,
		DefaultDeadline: maxTestDeadline, MaxDeadline: maxTestDeadline,
	})
	_, fts := newTestService(t, Config{DefaultDeadline: maxTestDeadline, MaxDeadline: maxTestDeadline})

	w := progs.ByName("lisp")
	// Populate: plain request.
	if status, body, _ := postHdr(t, cts.URL, OptimizeRequest{Program: w.Source}); status != http.StatusOK {
		t.Fatalf("populate: %d %s", status, body)
	}
	// Different shape (adds a run): result-cache miss, summary-store warm.
	req := OptimizeRequest{Program: w.Source, Input: w.Train}
	status, warm, hdr := postHdr(t, cts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("warm: %d", status)
	}
	if got := hdr.Get("X-Icbe-Cache"); got != "miss" {
		t.Fatalf("warm run cache status %q, want miss (different fingerprint)", got)
	}
	status, fresh, _ := postHdr(t, fts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("fresh: %d", status)
	}
	if !bytes.Equal(warm, fresh) {
		t.Error("summary-seeded compute produced different bytes than a cold compute")
	}
}

// TestCacheConcurrentMixedKeys hammers one cached server with concurrent
// repeats of every workload under -race: all responses for a key must be
// byte-identical regardless of which layer served them.
func TestCacheConcurrentMixedKeys(t *testing.T) {
	dir := t.TempDir()
	_, cts := newTestService(t, Config{
		Workers: 2, MaxInFlight: 8, CacheEntries: 64, StoreDir: dir,
		DefaultDeadline: maxTestDeadline, MaxDeadline: maxTestDeadline,
	})
	all := progs.All()
	const repeats = 3
	bodies := make([][][]byte, len(all))
	var wg sync.WaitGroup
	for i, w := range all {
		bodies[i] = make([][]byte, repeats)
		for j := 0; j < repeats; j++ {
			wg.Add(1)
			go func(i, j int, src string) {
				defer wg.Done()
				// No t.Fatal from goroutines: transport errors surface as a
				// nil body, flagged after the join.
				reqBody, err := json.Marshal(OptimizeRequest{Program: src, NoDump: true})
				if err != nil {
					return
				}
				resp, err := http.Post(cts.URL+"/optimize", "application/json", bytes.NewReader(reqBody))
				if err != nil {
					return
				}
				defer resp.Body.Close()
				raw, err := io.ReadAll(resp.Body)
				if err == nil && resp.StatusCode == http.StatusOK {
					bodies[i][j] = raw
				}
			}(i, j, w.Source)
		}
	}
	wg.Wait()
	for i, w := range all {
		var want []byte
		for _, b := range bodies[i] {
			if b == nil {
				continue // shed under load is acceptable; identical bytes are not optional
			}
			if want == nil {
				want = b
				continue
			}
			if !bytes.Equal(want, b) {
				t.Errorf("%s: concurrent responses disagree", w.Name)
			}
		}
		if want == nil {
			t.Errorf("%s: every request shed", w.Name)
		}
	}
}
