package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"icbe"
	"icbe/internal/analysis"
	"icbe/internal/ir"
	"icbe/internal/reportjson"
	"icbe/internal/store"
)

// Result caching.
//
// The server fronts the optimizer with the content-addressed store: a result
// is keyed by the canonical hash of the normalized input ICFG (so layout and
// naming changes share an entry's computation), the exact encoded input (so
// cached bodies — which embed names and line numbers — are only reused when
// they would be byte-identical to a fresh compute), and a fingerprint of
// everything else about the request that shapes the body. A source-text
// level key in front of that (L1) lets an exact repeat skip compilation and
// hashing entirely, which is what makes a warm hit an order of magnitude
// cheaper than the cheapest compute.
//
// Only full-tier, untruncated results enter the cache: a degraded or
// truncated body is shaped by the request's deadline, which is deliberately
// excluded from the key. For the same reason the singleflight leader
// publishes only cacheable bodies to its waiters.

// requestShape is the canonical encoding hashed into the request
// fingerprint: every request field besides the program that can change the
// response body. The deadline is deliberately absent.
type requestShape struct {
	Term     int     `json:"term"`
	Limit    int     `json:"limit"`
	Workers  int     `json:"workers"` // effective, post-clamp
	FullOnly bool    `json:"full_only"`
	Compact  bool    `json:"compact"`
	Fold     bool    `json:"fold"`
	Run      bool    `json:"run"`
	Input    []int64 `json:"input"`
	NoDump   bool    `json:"no_dump"`
}

// fingerprintRequest condenses the request shape under the server's
// effective option defaults.
func (s *Server) fingerprintRequest(req *OptimizeRequest) store.Fingerprint {
	o := s.baseOptions(req.Options)
	shape := requestShape{
		Term:     o.TerminationLimit,
		Limit:    o.MaxDuplication,
		Workers:  o.Workers,
		FullOnly: o.FullOnly,
		Compact:  o.Compact,
		Fold:     o.Fold,
		Run:      req.Run || len(req.Input) > 0,
		Input:    req.Input,
		NoDump:   req.NoDump,
	}
	enc, _ := json.Marshal(shape)
	return store.NewFingerprint(enc)
}

// scrubStats zeroes every DriverStats field that is not a pure function of
// (program, request shape): wall clocks, worker counts, and cache/memo
// telemetry that depends on what happened to be warm. The full values still
// reach /stats through the metrics aggregate — they are operational data,
// not part of the result.
func scrubStats(d *reportjson.DriverStats) {
	d.Workers = 0
	d.SNEMemoEntries = 0
	d.SNEMemoHits = 0
	d.CacheBytes = 0
	// Pool warmth is operational, not semantic: a request that ran while
	// the worker pool was degraded must serve the same bytes as one that
	// ran fully seeded.
	d.SeedsInjected = 0
	// The reuse counters depend on what the summary store happened to have
	// warm when the run started (a seeded run replays more than a cold
	// one), so they are telemetry, not result.
	d.QueriesReused = 0
	d.SubtreesInvalid = 0
	d.ReuseRate = 0
	d.VerifyWallNS = 0
	d.CheckWallNS = 0
	d.AnalysisWallNS = 0
	d.ApplyWallNS = 0
	d.FoldWallNS = 0
	// The fold counters (FoldAttempted/Applied/Duplicated, the residual
	// before/after pair, and the recomputed reduction ratio) are deliberately
	// kept: the fold pass adopts folds in deterministic fact-table order, so
	// they are pure functions of (program, request shape).
}

// buildBody renders the deterministic response body for a terminal ladder
// result. The bytes returned are exactly what is served — and, when the
// result is cacheable, exactly what the store holds and replays.
func buildBody(lr *ladderResult, req *OptimizeRequest) []byte {
	resp := OptimizeResponse{
		Tier:     lr.tier.bodyTier().String(),
		Degraded: lr.tier > TierFull,
		Attempts: lr.attempts,
		Report:   reportjson.FromReport(lr.report),
	}
	if resp.Report != nil {
		scrubStats(&resp.Report.Stats)
	}
	if !req.NoDump {
		resp.Dump = lr.prog.Dump()
	}
	if req.Run || len(req.Input) > 0 {
		if res, err := lr.prog.Run(req.Input); err != nil {
			resp.RunError = err.Error()
		} else {
			resp.Output = res.Output
		}
	}
	var buf bytes.Buffer
	_ = reportjson.Encode(&buf, resp)
	return buf.Bytes()
}

// cacheable reports whether a ladder result may enter the store and be
// published to singleflight waiters: full tier only (a degraded result is an
// artifact of this request's deadline) and untruncated. A pooled result is a
// full result — the body is byte-identical by construction — so it caches.
func cacheable(lr *ladderResult) bool {
	return lr.tier <= TierFull && lr.report != nil && !lr.report.Truncated
}

// writeRaw serves pre-rendered response bytes with the cache-status and
// elapsed-time headers (the only places timing appears; bodies are
// deterministic).
func writeRaw(w http.ResponseWriter, status int, body []byte, cacheStatus string, elapsed time.Duration) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Icbe-Cache", cacheStatus)
	w.Header().Set("X-Icbe-Elapsed-Ms", fmt.Sprintf("%.3f", float64(elapsed)/float64(time.Millisecond)))
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// cacheKeys computes the L2 result key for a compiled program.
func cacheKeys(prog *icbe.Program, fp store.Fingerprint) (store.ResultKey, *ir.ProgramHash) {
	g := prog.Graph()
	ph := ir.HashProgram(g)
	return store.KeyForProgram(ph.Sum, sha256.Sum256(ir.EncodeProgram(g)), fp), ph
}

// memoFactory builds the per-attempt summary-memo supplier for one request:
// a fresh memo each attempt, seeded from the durable store when one is
// attached. Fresh per attempt because a failed attempt's partial commits
// must not leak into the next rung.
func (s *Server) memoFactory(prog *icbe.Program, ph *ir.ProgramHash, base icbe.Options) func() *analysis.SummaryMemo {
	if s.store == nil {
		return nil
	}
	sfp := store.NewSummaryFingerprint(base.ArithSubst, base.ModSummaries)
	g := prog.Graph()
	return func() *analysis.SummaryMemo {
		m := analysis.NewSummaryMemo()
		if s.store.DiskEnabled() {
			s.store.LoadSummaries(g, ph, sfp, m)
		}
		return m
	}
}

// persistResult records a cacheable result in the store: the body, the
// optimized program for verify-on-read, the L1 mapping, and the winning
// attempt's pristine summary records.
func (s *Server) persistResult(prog *icbe.Program, ph *ir.ProgramHash, key store.ResultKey, base icbe.Options, lr *ladderResult, body []byte) *store.Entry {
	ent := &store.Entry{Body: body, Prog: ir.EncodeProgram(lr.prog.Graph())}
	s.store.PutResult(key, ent)
	if lr.memo != nil {
		sfp := store.NewSummaryFingerprint(base.ArithSubst, base.ModSummaries)
		if recs := lr.memo.ExportPristine(); len(recs) > 0 {
			s.store.SaveSummaries(prog.Graph(), ph, sfp, recs)
		}
	}
	return ent
}
