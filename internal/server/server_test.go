package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestOptimizeFullTier(t *testing.T) {
	_, ts := newTestService(t, Config{})
	resp := postOK(t, ts.URL, OptimizeRequest{Program: okSrc, Input: []int64{1}})
	if resp.Tier != "full" || resp.Degraded {
		t.Fatalf("tier = %q degraded=%v, want full/false", resp.Tier, resp.Degraded)
	}
	if resp.Report == nil || resp.Report.Optimized == 0 {
		t.Fatalf("report missing or optimized nothing: %+v", resp.Report)
	}
	if len(resp.Attempts) != 1 || resp.Attempts[0].Outcome != "ok" {
		t.Fatalf("attempts = %+v, want one ok attempt", resp.Attempts)
	}
	if resp.Dump == "" {
		t.Fatal("dump missing")
	}
	// 10, 20, a+b+g = 8: the optimized program still runs correctly.
	want := []int64{10, 20, 8}
	if len(resp.Output) != len(want) {
		t.Fatalf("output = %v, want %v", resp.Output, want)
	}
	for i := range want {
		if resp.Output[i] != want[i] {
			t.Fatalf("output = %v, want %v", resp.Output, want)
		}
	}
	// The full tier ran both oracles.
	if resp.Report.Stats.VerifyRuns == 0 || resp.Report.Stats.CheckRuns == 0 {
		t.Fatalf("full tier skipped an oracle: verify %d check %d",
			resp.Report.Stats.VerifyRuns, resp.Report.Stats.CheckRuns)
	}
}

func TestOptimizeBadRequests(t *testing.T) {
	_, ts := newTestService(t, Config{})
	if status, _ := post(t, ts.URL, OptimizeRequest{}); status != http.StatusBadRequest {
		t.Errorf("missing program: status %d, want 400", status)
	}
	if status, body := post(t, ts.URL, OptimizeRequest{Program: "func main( {"}); status != http.StatusUnprocessableEntity {
		t.Errorf("compile error: status %d, want 422; body %s", status, body)
	}
	resp, err := http.Get(ts.URL + "/optimize")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /optimize: status %d, want 405", resp.StatusCode)
	}
}

func TestOversizedRequestShed(t *testing.T) {
	_, ts := newTestService(t, Config{MaxRequestBytes: 2048})
	big := okSrc + "// " + strings.Repeat("x", 4096) + "\n"
	status, body := post(t, ts.URL, OptimizeRequest{Program: big})
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized: status %d, want 413; body %s", status, body)
	}
	snap := serverStats(t, ts.URL)
	if snap.Shed["oversized"] != 1 || snap.ShedTotal != 1 {
		t.Fatalf("shed counters = %v (total %d), want oversized=1", snap.Shed, snap.ShedTotal)
	}
}

func TestMemoryEstimateShed(t *testing.T) {
	// A cap below one request's fixed estimate sheds everything with 429 +
	// Retry-After.
	_, ts := newTestService(t, Config{MaxInFlightBytes: 1024})
	status, body := post(t, ts.URL, OptimizeRequest{Program: okSrc})
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body %s", status, body)
	}
	snap := serverStats(t, ts.URL)
	if snap.Shed["memory"] != 1 {
		t.Fatalf("shed counters = %v, want memory=1", snap.Shed)
	}
}

func TestHealthzReadyzStats(t *testing.T) {
	s, ts := newTestService(t, Config{})
	var health map[string]any
	if status := getJSON(t, ts.URL+"/healthz", &health); status != http.StatusOK {
		t.Fatalf("/healthz status %d", status)
	}
	if health["status"] != "ok" {
		t.Fatalf("healthz = %v", health)
	}
	if status := getJSON(t, ts.URL+"/readyz", nil); status != http.StatusOK {
		t.Fatalf("/readyz status %d", status)
	}

	postOK(t, ts.URL, OptimizeRequest{Program: okSrc, NoDump: true})
	snap := serverStats(t, ts.URL)
	if snap.Requests != 1 || snap.Admitted != 1 || snap.Completed != 1 {
		t.Fatalf("stats counters = %d/%d/%d, want 1/1/1", snap.Requests, snap.Admitted, snap.Completed)
	}
	if snap.Tiers["full"] != 1 || snap.Degraded != 0 {
		t.Fatalf("tier occupancy = %v degraded=%d, want full=1/0", snap.Tiers, snap.Degraded)
	}
	if snap.Driver.Analyses == 0 || snap.OptimizeRuns != 1 {
		t.Fatalf("driver aggregate empty: %+v runs=%d", snap.Driver, snap.OptimizeRuns)
	}
	if snap.LatencyMS.Count != 1 || snap.LatencyMS.P99 <= 0 {
		t.Fatalf("latency stats = %+v", snap.LatencyMS)
	}
	if snap.Ceiling != "full" {
		t.Fatalf("ceiling = %q, want full", snap.Ceiling)
	}
	if len(snap.Breakers) != 7 {
		t.Fatalf("breakers = %d entries, want one per failure kind", len(snap.Breakers))
	}
	if snap.QueueDepth != 0 || snap.InFlight != 0 || snap.InFlightBytes != 0 {
		t.Fatalf("gauges not drained: %d/%d/%d", snap.QueueDepth, snap.InFlight, snap.InFlightBytes)
	}
	_ = s
}

func TestClientOptionsRespected(t *testing.T) {
	// Response bodies are deterministic and carry no worker count; the
	// effective worker choice is observable through the /stats driver
	// aggregate instead (Workers aggregates as a maximum).
	s, ts := newTestService(t, Config{Workers: 4})
	resp := postOK(t, ts.URL, OptimizeRequest{
		Program: okSrc,
		NoDump:  true,
		Options: &RequestOptions{Term: 50, Workers: 1, Compact: true},
	})
	if resp.Report == nil {
		t.Fatal("report missing")
	}
	if got := resp.Report.Stats.Workers; got != 0 {
		t.Fatalf("body leaked a worker count: %d", got)
	}
	if got := s.Stats().Driver.Workers; got != 1 {
		t.Fatalf("driver workers = %d, want the client's 1", got)
	}
	// A client cannot raise workers above the server ceiling.
	postOK(t, ts.URL, OptimizeRequest{
		Program: okSrc,
		NoDump:  true,
		Options: &RequestOptions{Workers: 64},
	})
	if got := s.Stats().Driver.Workers; got > 4 {
		t.Fatalf("driver workers = %d, want clamped to 4", got)
	}
}

func TestHandlerPanicContained(t *testing.T) {
	s, _ := newTestService(t, Config{})
	// Force a handler bug through the recovery middleware.
	h := s.recoverWrap(func(http.ResponseWriter, *http.Request) { panic("handler bug") })
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if s.met.panics != 1 {
		t.Fatal("handler panic not counted")
	}
}
