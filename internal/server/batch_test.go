package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"icbe/internal/ir"
	"icbe/internal/restructure"
)

// postBatch sends one /optimize-batch request and returns the status code
// and raw body.
func postBatch(t *testing.T, url string, req BatchRequest) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal batch: %v", err)
	}
	resp, err := http.Post(url+"/optimize-batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /optimize-batch: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read batch response: %v", err)
	}
	return resp.StatusCode, raw
}

// TestBatchMixedConcurrent is the per-item isolation bar: one batch carrying
// a healthy item, an oversized item, and a hopeless-deadline item — sent
// while a slow request holds the only slot — must come back 200 with
// per-item statuses 200/413/429, the healthy body byte-identical to a
// standalone /optimize, and /stats reconciling every item exactly.
func TestBatchMixedConcurrent(t *testing.T) {
	// The analyze hook holds the admitted slot long enough that the
	// hopeless item's 1ms deadline expires while it is still queued.
	setFaults(t, restructure.FaultInjection{
		Analyze: func(*ir.Program, ir.NodeID) { time.Sleep(50 * time.Millisecond) },
	})
	s, ts := newTestService(t, Config{
		MaxInFlight:     1,
		MaxRequestBytes: 4096,
		DefaultDeadline: 15 * time.Second,
	})

	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		post(t, ts.URL, OptimizeRequest{Program: okSrc})
	}()
	waitUntil(t, 5*time.Second, "slow request admitted", func() bool {
		return s.Stats().InFlight == 1
	})

	status, raw := postBatch(t, ts.URL, BatchRequest{Items: []OptimizeRequest{
		{Program: okSrc},                     // healthy: queues, then completes
		{Program: strings.Repeat("x", 5000)}, // oversized: past MaxRequestBytes
		{Program: okSrc, DeadlineMS: 1},      // hopeless: expires while queued
	}})
	<-slowDone
	if status != http.StatusOK {
		t.Fatalf("batch status = %d, want 200; body: %s", status, raw)
	}
	var resp BatchResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatalf("decode batch response: %v\n%s", err, raw)
	}
	if len(resp.Items) != 3 {
		t.Fatalf("batch returned %d items, want 3", len(resp.Items))
	}

	if got := resp.Items[0].Status; got != http.StatusOK {
		t.Fatalf("healthy item status = %d, want 200; body: %s", got, resp.Items[0].Body)
	}
	var healthy OptimizeResponse
	if err := json.Unmarshal(resp.Items[0].Body, &healthy); err != nil {
		t.Fatalf("decode healthy item: %v", err)
	}
	if healthy.Tier != "full" || healthy.Degraded {
		t.Fatalf("healthy item tier=%q degraded=%v", healthy.Tier, healthy.Degraded)
	}

	if got := resp.Items[1].Status; got != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized item status = %d, want 413", got)
	}
	var shed errorResponse
	if err := json.Unmarshal(resp.Items[1].Body, &shed); err != nil || shed.Reason != "oversized" {
		t.Fatalf("oversized item body = %s (err %v)", resp.Items[1].Body, err)
	}

	if got := resp.Items[2].Status; got != http.StatusTooManyRequests {
		t.Fatalf("hopeless item status = %d, want 429; body: %s", got, resp.Items[2].Body)
	}
	if err := json.Unmarshal(resp.Items[2].Body, &shed); err != nil || shed.Reason != "queue-timeout" {
		t.Fatalf("hopeless item body = %s (err %v)", resp.Items[2].Body, err)
	}
	if resp.Items[2].RetryAfter < 1 {
		t.Fatalf("hopeless item retry_after = %d, want >= 1", resp.Items[2].RetryAfter)
	}

	// The healthy item's embedded body carries exactly what a standalone
	// /optimize serves for the same program. The outer batch encoder
	// re-indents the embedded document, so equality is over compact forms.
	_, control := newTestService(t, Config{DefaultDeadline: 15 * time.Second})
	st, want := post(t, control.URL, OptimizeRequest{Program: okSrc})
	if st != http.StatusOK {
		t.Fatalf("control status = %d", st)
	}
	var gotC, wantC bytes.Buffer
	if err := json.Compact(&gotC, resp.Items[0].Body); err != nil {
		t.Fatalf("compact batch item: %v", err)
	}
	if err := json.Compact(&wantC, want); err != nil {
		t.Fatalf("compact standalone: %v", err)
	}
	if !bytes.Equal(gotC.Bytes(), wantC.Bytes()) {
		t.Fatalf("batch item body differs from standalone response\nbatch:      %s\nstandalone: %s",
			resp.Items[0].Body, want)
	}

	// Exact reconciliation: 2 requests (slow single + the batch), 3 batch
	// items of which 1 admitted+completed alongside the slow request, and
	// one shed each for "oversized" and "queue-timeout".
	snap := serverStats(t, ts.URL)
	if snap.Requests != 2 {
		t.Fatalf("requests = %d, want 2", snap.Requests)
	}
	if snap.Batch.Requests != 1 || snap.Batch.Items != 3 {
		t.Fatalf("batch counters = %+v, want {1 3}", snap.Batch)
	}
	if snap.Admitted != 2 || snap.Completed != 2 {
		t.Fatalf("admitted=%d completed=%d, want 2/2", snap.Admitted, snap.Completed)
	}
	if snap.ShedTotal != 2 || snap.Shed["oversized"] != 1 || snap.Shed["queue-timeout"] != 1 {
		t.Fatalf("shed = %v (total %d), want oversized=1 queue-timeout=1", snap.Shed, snap.ShedTotal)
	}
	if snap.InFlight != 0 || snap.QueueDepth != 0 || snap.InFlightBytes != 0 {
		t.Fatalf("gauges not drained: %+v", snap)
	}
}

// TestBatchValidation covers the whole-batch refusals: wrong method, empty
// and over-limit item lists, an oversized batch body, and draining.
func TestBatchValidation(t *testing.T) {
	s, ts := newTestService(t, Config{MaxRequestBytes: 1024, MaxBatchItems: 2})

	resp, err := http.Get(ts.URL + "/optimize-batch")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d, want 405", resp.StatusCode)
	}

	if status, _ := postBatch(t, ts.URL, BatchRequest{}); status != http.StatusBadRequest {
		t.Fatalf("empty batch status = %d, want 400", status)
	}

	three := BatchRequest{Items: []OptimizeRequest{{Program: okSrc}, {Program: okSrc}, {Program: okSrc}}}
	status, raw := postBatch(t, ts.URL, three)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-limit batch status = %d, want 413; body: %s", status, raw)
	}

	// A batch body past MaxRequestBytes*MaxBatchItems is refused outright.
	huge := BatchRequest{Items: []OptimizeRequest{{Program: strings.Repeat("x", 4096)}}}
	if status, _ := postBatch(t, ts.URL, huge); status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch body status = %d, want 413", status)
	}

	s.draining.Store(true)
	body, _ := json.Marshal(BatchRequest{Items: []OptimizeRequest{{Program: okSrc}}})
	dresp, err := http.Post(ts.URL+"/optimize-batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST while draining: %v", err)
	}
	defer dresp.Body.Close()
	if dresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining batch status = %d, want 503", dresp.StatusCode)
	}
	if dresp.Header.Get("Retry-After") == "" {
		t.Fatalf("draining batch carries no Retry-After")
	}
}
