package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"icbe/internal/ir"
	"icbe/internal/restructure"
)

// TestDrainFinishesInFlightWork starts a request, blocks it mid-analysis,
// initiates a drain, and checks that (a) readiness flips and new work is
// shed while the drain waits, (b) the in-flight request completes normally,
// and (c) its result is byte-identical to the same request on a fresh,
// undisturbed server.
func TestDrainFinishesInFlightWork(t *testing.T) {
	gate := make(chan struct{})
	var blocked atomic.Bool
	var once atomic.Bool
	setFaults(t, restructure.FaultInjection{
		Analyze: func(*ir.Program, ir.NodeID) {
			if once.CompareAndSwap(false, true) {
				blocked.Store(true)
				<-gate
			}
		},
	})
	s, ts := newTestService(t, Config{DefaultDeadline: time.Minute, MaxDeadline: time.Minute})

	inFlight := make(chan OptimizeResponse, 1)
	go func() {
		inFlight <- postOK(t, ts.URL, OptimizeRequest{Program: okSrc})
	}()
	waitFor(t, func() bool { return blocked.Load() })

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	waitFor(t, func() bool { return s.draining.Load() })

	// While draining: not ready, and new optimization work is refused with
	// a labeled shed rather than queued behind the drain.
	if status := getJSON(t, ts.URL+"/readyz", nil); status != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: status %d, want 503", status)
	}
	if status, _ := post(t, ts.URL, OptimizeRequest{Program: okSrc}); status != http.StatusServiceUnavailable {
		t.Fatalf("new request while draining: status %d, want 503", status)
	}
	snap := serverStats(t, ts.URL)
	if !snap.Draining || snap.Shed["draining"] != 1 {
		t.Fatalf("stats while draining = draining=%v shed=%v", snap.Draining, snap.Shed)
	}
	select {
	case err := <-drained:
		t.Fatalf("drain returned before in-flight work finished: %v", err)
	default:
	}

	// Release the blocked analysis: the in-flight request completes at full
	// fidelity and the drain observes completion.
	close(gate)
	got := <-inFlight
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got.Tier != "full" || got.Degraded {
		t.Fatalf("drained request tier = %q degraded=%v, want full/false", got.Tier, got.Degraded)
	}

	// The same request on a fresh server, with no drain and no gate,
	// produces the identical optimized program and output.
	restructure.SetFaultInjection(restructure.FaultInjection{})
	_, ts2 := newTestService(t, Config{})
	want := postOK(t, ts2.URL, OptimizeRequest{Program: okSrc})
	if got.Dump != want.Dump {
		t.Fatalf("drained dump differs from fresh run:\n--- drained ---\n%s\n--- fresh ---\n%s", got.Dump, want.Dump)
	}
	if len(got.Output) != len(want.Output) {
		t.Fatalf("output = %v, want %v", got.Output, want.Output)
	}
	for i := range want.Output {
		if got.Output[i] != want.Output[i] {
			t.Fatalf("output = %v, want %v", got.Output, want.Output)
		}
	}
	if got.Report.Optimized != want.Report.Optimized {
		t.Fatalf("optimized = %d, want %d", got.Report.Optimized, want.Report.Optimized)
	}
}

// TestDrainCancelExpiredContext checks that a drain whose own deadline
// expires cancels outstanding request work (rather than letting it run its
// full budget) while still waiting for the terminal responses to be written.
func TestDrainCancelExpiredContext(t *testing.T) {
	gate := make(chan struct{})
	var once atomic.Bool
	setFaults(t, restructure.FaultInjection{
		Analyze: func(*ir.Program, ir.NodeID) {
			if once.CompareAndSwap(false, true) {
				<-gate
			}
		},
	})
	s, ts := newTestService(t, Config{DefaultDeadline: time.Minute, MaxDeadline: time.Minute})

	done := make(chan int, 1)
	go func() {
		status, _ := post(t, ts.URL, OptimizeRequest{Program: okSrc})
		done <- status
	}()
	waitFor(t, func() bool { return once.Load() })

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	drained := make(chan error, 1)
	go func() { drained <- s.Drain(ctx) }()

	// The drain's deadline expires and it cancels all outstanding request
	// budgets; the simulated stall notices and unblocks, as a cooperative
	// driver pass would.
	select {
	case <-s.baseCtx.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("expired drain did not cancel outstanding work")
	}
	close(gate)
	if err := <-drained; err != context.DeadlineExceeded {
		t.Fatalf("drain error = %v, want deadline exceeded", err)
	}
	select {
	case status := <-done:
		if status != http.StatusOK {
			t.Fatalf("cancelled request status = %d, want 200 (degraded terminal response)", status)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("request hung after drain cancellation")
	}
}

// TestDrainShedCarriesRetryAfter pins the contract that every retryable
// shed — the drain path included — tells the client when to come back: a
// rolling restart must read as "retry in a moment", not a hard failure.
func TestDrainShedCarriesRetryAfter(t *testing.T) {
	s, ts := newTestService(t, Config{})
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	body, err := json.Marshal(OptimizeRequest{Program: okSrc})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Reason != "draining" {
		t.Fatalf("shed reason = %q, want draining", e.Reason)
	}
}

// TestDrainLeavesNoRequestGoroutines bounds goroutine growth across a burst
// of requests plus a drain — the no-leak check CI's smoke test mirrors via
// /stats.
func TestDrainLeavesNoRequestGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	s, ts := newTestService(t, Config{})
	for i := 0; i < 8; i++ {
		postOK(t, ts.URL, OptimizeRequest{Program: okSrc, NoDump: true})
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines: %d before, %d after drain\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
