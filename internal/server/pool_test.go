package server

import (
	"bytes"
	"context"
	"net/http"
	"syscall"
	"testing"
	"time"

	"icbe/internal/pool"
	"icbe/internal/progs"
	"icbe/internal/randprog"
)

// poolTestCfg is a worker-pool configuration with test-speed timeouts.
func poolTestCfg(extraEnv ...string) *pool.Config {
	return &pool.Config{
		Workers:           2,
		ExtraEnv:          extraEnv,
		HeartbeatTimeout:  500 * time.Millisecond,
		RestartBackoff:    10 * time.Millisecond,
		RestartBackoffCap: 100 * time.Millisecond,
		HealthyAfter:      200 * time.Millisecond,
		BreakerRestarts:   200, // chaos tests must not trip the breaker by accident
	}
}

// pooledPair builds a control server (no pool) and a pooled server sharing
// one configuration, so their responses are comparable byte for byte.
func pooledPair(t *testing.T, pc *pool.Config) (control, pooled *Server, controlURL, pooledURL string) {
	t.Helper()
	base := Config{DefaultDeadline: 20 * time.Second}
	control, controlTS := newTestService(t, base)
	cfg := base
	cfg.PoolWorkers = pc.Workers
	cfg.PoolMinConds = 1 // every program with conditionals goes through the pool
	cfg.poolCfg = pc
	pooled, pooledTS := newTestService(t, cfg)
	return control, pooled, controlTS.URL, pooledTS.URL
}

// equivalenceRequests is the byte-identity corpus: all seven paper workloads
// (run on their train inputs) plus random, adversarial-scale, and recursive
// generator seeds.
func equivalenceRequests() map[string]OptimizeRequest {
	reqs := make(map[string]OptimizeRequest)
	for _, w := range progs.All() {
		reqs[w.Name] = OptimizeRequest{Program: w.Source, Input: w.Train}
	}
	reqs["randprog-42"] = OptimizeRequest{Program: randprog.Generate(42, randprog.Config{})}
	reqs["scale-7"] = OptimizeRequest{Program: randprog.Scale(7, randprog.ScaleConfig{
		Leaves: 6, LeafStmts: 12, Hubs: 4, Calls: 3, Conds: 3, ChainLeaves: 2,
	})}
	reqs["recursion-11"] = OptimizeRequest{Program: randprog.Recursion(11, randprog.RecConfig{})}
	return reqs
}

func waitUntil(t *testing.T, d time.Duration, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if ok() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestPooledResponsesByteIdentical is the core correctness bar: for every
// corpus program, a pool-seeded response is byte-for-byte the response the
// in-process path serves — same body, same "full" tier label, no degraded
// marker — while /stats shows the pool really ran.
func TestPooledResponsesByteIdentical(t *testing.T) {
	_, pooled, controlURL, pooledURL := pooledPair(t, poolTestCfg())
	waitUntil(t, 5*time.Second, "pool healthy", func() bool {
		s := pooled.Stats()
		return s.Pool != nil && s.Pool.WorkersLive == s.Pool.WorkersConfigured
	})

	for name, req := range equivalenceRequests() {
		cs, cb := post(t, controlURL, req)
		ps, pb := post(t, pooledURL, req)
		if cs != http.StatusOK || ps != http.StatusOK {
			t.Fatalf("%s: control=%d pooled=%d, want 200/200", name, cs, ps)
		}
		if !bytes.Equal(cb, pb) {
			t.Fatalf("%s: pooled response differs from control\ncontrol: %s\npooled:  %s", name, cb, pb)
		}
	}

	snap := pooled.Stats()
	if snap.Pool == nil || snap.Pool.SeedRuns == 0 {
		t.Fatalf("pooled server never used the pool: %+v", snap.Pool)
	}
	if snap.Pool.RecordsReturned == 0 {
		t.Fatalf("pool returned no records across the corpus: %+v", snap.Pool)
	}
	if snap.Driver.SeedsInjected == 0 {
		t.Fatalf("driver accepted no pool seeds: %+v", snap.Driver)
	}
	if snap.Degraded != 0 {
		t.Fatalf("pooled runs counted as degraded: %+v", snap)
	}
	if snap.Tiers["pooled"] == 0 {
		t.Fatalf("no requests served at the pooled tier: %v", snap.Tiers)
	}
}

// TestPooledKillStorm kills workers with SIGKILL throughout a request sweep;
// every pooled response must stay byte-identical to the control, the shard
// counters must reconcile exactly, and the pool must return to full strength
// within the backoff window once the storm stops.
func TestPooledKillStorm(t *testing.T) {
	_, pooled, controlURL, pooledURL := pooledPair(t, poolTestCfg())
	waitUntil(t, 5*time.Second, "pool healthy", func() bool {
		s := pooled.Stats()
		return s.Pool != nil && s.Pool.WorkersLive == s.Pool.WorkersConfigured
	})

	stop := make(chan struct{})
	stormDone := make(chan int)
	go func() {
		kills := 0
		for i := 0; ; i++ {
			select {
			case <-stop:
				stormDone <- kills
				return
			case <-time.After(25 * time.Millisecond):
			}
			if pids := pooled.pool.WorkerPIDs(); len(pids) > 0 {
				if syscall.Kill(pids[i%len(pids)], syscall.SIGKILL) == nil {
					kills++
				}
			}
		}
	}()

	reqs := equivalenceRequests()
	for round := 0; round < 2; round++ {
		for name, req := range reqs {
			cs, cb := post(t, controlURL, req)
			ps, pb := post(t, pooledURL, req)
			if cs != http.StatusOK || ps != http.StatusOK {
				t.Fatalf("round %d %s: control=%d pooled=%d", round, name, cs, ps)
			}
			if !bytes.Equal(cb, pb) {
				t.Fatalf("round %d %s: response bytes changed under kill storm", round, name)
			}
		}
	}
	close(stop)
	if kills := <-stormDone; kills == 0 {
		t.Fatalf("storm never killed a worker")
	}

	snap := pooled.Stats()
	p := snap.Pool
	if p == nil {
		t.Fatalf("no pool block in /stats")
	}
	if p.Restarts == 0 {
		t.Fatalf("kill storm caused no restarts: %+v", p)
	}
	if p.ShardsDispatched != p.ShardsCompleted+p.ShardsDegraded {
		t.Fatalf("shard counters do not reconcile: %+v", p)
	}
	if snap.Degraded != 0 {
		t.Fatalf("worker kills degraded request responses: %+v", snap)
	}
	waitUntil(t, 10*time.Second, "pool recovered", func() bool {
		s := pooled.Stats().Pool
		return s.WorkersLive == s.WorkersConfigured && pooled.pool.Healthy()
	})
}

// TestPooledDegradesWhenWorkersNeverStart: with an unlaunchable worker
// binary the pool never becomes healthy, and the server quietly serves the
// plain in-process path — same bytes, no errors, no pooled-tier counts.
func TestPooledDegradesWhenWorkersNeverStart(t *testing.T) {
	pc := poolTestCfg()
	pc.WorkerBin = "/nonexistent/icbe-worker-binary"
	_, pooled, controlURL, pooledURL := pooledPair(t, pc)

	req := OptimizeRequest{Program: okSrc, Run: true}
	cs, cb := post(t, controlURL, req)
	ps, pb := post(t, pooledURL, req)
	if cs != http.StatusOK || ps != http.StatusOK {
		t.Fatalf("control=%d pooled=%d, want 200/200", cs, ps)
	}
	if !bytes.Equal(cb, pb) {
		t.Fatalf("pool-less fallback served different bytes\ncontrol: %s\npooled:  %s", cb, pb)
	}
	snap := pooled.Stats()
	if snap.Pool == nil {
		t.Fatalf("pool block missing from /stats")
	}
	if snap.Pool.WorkersLive != 0 {
		t.Fatalf("workers_live = %d with an unlaunchable binary", snap.Pool.WorkersLive)
	}
	if snap.Tiers["pooled"] != 0 {
		t.Fatalf("requests counted at the pooled tier with no pool: %v", snap.Tiers)
	}
}

// TestPoolSkipsSmallPrograms: below PoolMinConds the pool round-trip is
// skipped even when the pool is healthy.
func TestPoolSkipsSmallPrograms(t *testing.T) {
	base := Config{PoolWorkers: 2, PoolMinConds: 50, poolCfg: poolTestCfg()}
	s, ts := newTestService(t, base)
	waitUntil(t, 5*time.Second, "pool healthy", func() bool {
		snap := s.Stats()
		return snap.Pool != nil && snap.Pool.WorkersLive == 2
	})
	out := postOK(t, ts.URL, OptimizeRequest{Program: okSrc})
	if out.Tier != "full" || out.Degraded {
		t.Fatalf("tier=%q degraded=%v", out.Tier, out.Degraded)
	}
	if runs := s.Stats().Pool.SeedRuns; runs != 0 {
		t.Fatalf("small program dispatched %d pool runs, want 0", runs)
	}
}

// TestDrainClosesPool: after Drain the worker processes are gone.
func TestDrainClosesPool(t *testing.T) {
	s, _ := newTestService(t, Config{PoolWorkers: 2, PoolMinConds: 1, poolCfg: poolTestCfg()})
	waitUntil(t, 5*time.Second, "pool healthy", func() bool {
		snap := s.Stats()
		return snap.Pool != nil && snap.Pool.WorkersLive == 2
	})
	pids := s.pool.WorkerPIDs()
	if len(pids) == 0 {
		t.Fatalf("no worker PIDs before drain")
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, pid := range pids {
		waitUntil(t, 5*time.Second, "worker gone after drain", func() bool {
			return syscall.Kill(pid, 0) != nil
		})
	}
}
