package server

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"icbe/internal/progs"
	"icbe/internal/store"
)

// chaosFS implements store.FS over the real filesystem with switchable
// failure modes, mirroring the store package's internal fault FS so the
// server-level chaos test can drive the same crash windows end to end.
type chaosFS struct {
	mu         sync.Mutex
	failReads  bool
	failWrites bool
	killRename bool
}

func (f *chaosFS) set(mut func(*chaosFS)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	mut(f)
}

func (f *chaosFS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}

func (f *chaosFS) CreateTemp(dir, pattern string) (store.File, error) {
	f.mu.Lock()
	fail := f.failWrites
	f.mu.Unlock()
	if fail {
		return nil, os.ErrPermission
	}
	return os.CreateTemp(dir, pattern)
}

func (f *chaosFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	kill := f.killRename
	f.mu.Unlock()
	if kill {
		// A crash between the temp write and the rename: the temp file
		// stays, the destination never appears.
		return nil
	}
	return os.Rename(oldpath, newpath)
}

func (f *chaosFS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	fail := f.failReads
	f.mu.Unlock()
	if fail {
		return nil, os.ErrPermission
	}
	return os.ReadFile(name)
}

func (f *chaosFS) Remove(name string) error { return os.Remove(name) }

func (f *chaosFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (f *chaosFS) Stat(name string) (os.FileInfo, error) {
	f.mu.Lock()
	fail := f.failReads
	f.mu.Unlock()
	if fail {
		return nil, os.ErrPermission
	}
	return os.Stat(name)
}

func resultFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "res-") && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

// TestServerStoreChaos is the end-to-end corruption storm: populate the
// durable store through the HTTP surface, bit-flip more than a quarter of
// the stored results, kill one write mid-rename, and assert that every
// subsequent response is byte-identical to a fresh compute, that the
// quarantine counters in /stats reconcile exactly with the damage, and that
// an I/O outage trips the store breaker to compute-only serving and recovers
// half-open.
func TestServerStoreChaos(t *testing.T) {
	dir := t.TempDir()
	ffs := &chaosFS{}
	clk := newFakeClock()
	storeCfg := store.Config{
		Dir:           dir, // memory layer off: every repeat must survive the disk
		FS:            ffs,
		FailThreshold: 3,
		Cooldown:      time.Second,
		CooldownCap:   8 * time.Second,
	}
	storeCfg.SetClock(clk.Now, func(time.Duration) {})
	s, ts := newTestService(t, Config{
		DefaultDeadline: maxTestDeadline, MaxDeadline: maxTestDeadline,
		storeCfg: &storeCfg,
	})
	_, fts := newTestService(t, Config{DefaultDeadline: maxTestDeadline, MaxDeadline: maxTestDeadline})

	all := progs.All()
	cold := make([][]byte, len(all))
	fresh := make([][]byte, len(all))
	req := func(i int) OptimizeRequest {
		return OptimizeRequest{Program: all[i].Source, Input: all[i].Train}
	}

	// Populate. The first workload's entry is kept intact so the recovery
	// phase below has a known-good file to probe; the last workload's write
	// is killed between temp file and rename (the crash window).
	if _, body, hdr := postHdr(t, ts.URL, req(0)); hdr.Get("X-Icbe-Cache") != "miss" {
		t.Fatalf("populate %s: cache status %q, want miss", all[0].Name, hdr.Get("X-Icbe-Cache"))
	} else {
		cold[0] = body
	}
	protected := resultFiles(t, dir)
	if len(protected) != 1 {
		t.Fatalf("after one populate: %d result files, want 1", len(protected))
	}
	for i := 1; i < len(all); i++ {
		if i == len(all)-1 {
			ffs.set(func(f *chaosFS) { f.killRename = true })
		}
		status, body, hdr := postHdr(t, ts.URL, req(i))
		if status != http.StatusOK || hdr.Get("X-Icbe-Cache") != "miss" {
			t.Fatalf("populate %s: status %d cache %q", all[i].Name, status, hdr.Get("X-Icbe-Cache"))
		}
		cold[i] = body
	}
	ffs.set(func(f *chaosFS) { f.killRename = false })

	files := resultFiles(t, dir)
	if want := len(all) - 1; len(files) != want {
		t.Fatalf("stored %d result files, want %d (one write was killed mid-rename)", len(files), want)
	}

	// Corruption storm: flip one bit in over a quarter of the surviving
	// entries, never touching the protected first file.
	damaged := 0
	wantDamaged := len(files)/3 + 1
	for _, name := range files {
		if name == protected[0] || damaged == wantDamaged {
			continue
		}
		path := filepath.Join(dir, name)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0x10
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		damaged++
	}
	if damaged != wantDamaged {
		t.Fatalf("damaged %d entries, want %d", damaged, wantDamaged)
	}

	// Every workload again: damaged and killed entries must quarantine or
	// miss and recompute, intact entries must serve from disk — and every
	// single body must be byte-identical to both the original compute and a
	// cache-less server's answer.
	hits, misses := 0, 0
	for i := range all {
		status, body, hdr := postHdr(t, ts.URL, req(i))
		if status != http.StatusOK {
			t.Fatalf("storm %s: status %d", all[i].Name, status)
		}
		switch cache := hdr.Get("X-Icbe-Cache"); cache {
		case "hit-disk":
			hits++
		case "miss":
			misses++
		default:
			t.Fatalf("storm %s: cache status %q", all[i].Name, cache)
		}
		if !bytes.Equal(body, cold[i]) {
			t.Errorf("storm %s: response differs from the original compute", all[i].Name)
		}
		if status, fb, _ := postHdr(t, fts.URL, req(i)); status == http.StatusOK {
			fresh[i] = fb
			if !bytes.Equal(body, fb) {
				t.Errorf("storm %s: response differs from a fresh compute", all[i].Name)
			}
		} else {
			t.Fatalf("fresh %s: status %d", all[i].Name, status)
		}
	}
	// damaged bit-flipped entries recompute, plus the killed write's key.
	if wantMiss := damaged + 1; misses != wantMiss || hits != len(all)-wantMiss {
		t.Fatalf("storm served %d hits / %d misses, want %d / %d", hits, misses, len(all)-damaged-1, damaged+1)
	}

	// Counters reconcile exactly: one quarantine per bit-flipped file, the
	// quarantine directory holds exactly those files, and honest I/O failures
	// stayed at zero — corruption must not count against the breaker.
	snap := serverStats(t, ts.URL)
	if snap.Store == nil {
		t.Fatal("/stats missing store block")
	}
	if snap.Store.Quarantined != int64(damaged) {
		t.Fatalf("quarantined = %d, want exactly %d", snap.Store.Quarantined, damaged)
	}
	qents, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil {
		t.Fatal(err)
	}
	if len(qents) != damaged {
		t.Fatalf("quarantine dir holds %d files, want %d", len(qents), damaged)
	}
	if snap.Store.IOErrors != 0 || snap.Store.State != "ok" {
		t.Fatalf("corruption moved the breaker: io_errors=%d state=%q", snap.Store.IOErrors, snap.Store.State)
	}

	// I/O outage: reads fail outright (EACCES-style, not corruption). The
	// breaker trips to store-degraded and the service keeps answering with
	// byte-identical computes.
	ffs.set(func(f *chaosFS) { f.failReads = true })
	status, body, hdr := postHdr(t, ts.URL, req(0))
	if status != http.StatusOK || hdr.Get("X-Icbe-Cache") != "miss" {
		t.Fatalf("outage: status %d cache %q, want 200 miss", status, hdr.Get("X-Icbe-Cache"))
	}
	if !bytes.Equal(body, cold[0]) {
		t.Error("outage: response differs from the original compute")
	}
	snap = serverStats(t, ts.URL)
	if snap.Store.State != "degraded" || snap.Store.DegradedTransitions == 0 {
		t.Fatalf("outage did not trip the breaker: state=%q transitions=%d",
			snap.Store.State, snap.Store.DegradedTransitions)
	}
	// While degraded the store is not consulted at all: compute-only, no new
	// I/O attempts, still byte-identical.
	errsBefore := snap.Store.IOErrors
	if status, body, hdr := postHdr(t, ts.URL, req(0)); status != http.StatusOK ||
		hdr.Get("X-Icbe-Cache") != "miss" || !bytes.Equal(body, cold[0]) {
		t.Fatalf("degraded serving broke: status %d cache %q", status, hdr.Get("X-Icbe-Cache"))
	}
	if snap = serverStats(t, ts.URL); snap.Store.IOErrors != errsBefore {
		t.Fatalf("degraded store still attempted I/O: %d -> %d errors", errsBefore, snap.Store.IOErrors)
	}

	// Heal the disk and pass the cooldown: the half-open probe succeeds and
	// the store returns to full service on its intact entry.
	ffs.set(func(f *chaosFS) { f.failReads = false })
	clk.Advance(2 * time.Second)
	status, body, hdr = postHdr(t, ts.URL, req(0))
	if status != http.StatusOK || hdr.Get("X-Icbe-Cache") != "hit-disk" {
		t.Fatalf("recovery: status %d cache %q, want 200 hit-disk", status, hdr.Get("X-Icbe-Cache"))
	}
	if !bytes.Equal(body, cold[0]) {
		t.Error("recovery: disk entry differs from the original compute")
	}
	snap = serverStats(t, ts.URL)
	if snap.Store.State != "ok" {
		t.Fatalf("breaker state after recovery = %q, want ok", snap.Store.State)
	}
	_ = s
}
