package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"icbe/internal/analysis"
	"icbe/internal/ir"
	"icbe/internal/restructure"
)

// Marker constants let the process-global fault hooks target only the
// requests that opted in: a branch comparing against the marker triggers the
// fault, every other program is untouched.
const (
	panicMarker = 31337
	checkMarker = 41414
)

const panicSrc = `
func main() {
	var x = 31337;
	if (x == 31337) { print(1); }
	print(2);
}
`

const checkSrc = `
func main() {
	var y = 41414;
	if (y == 41414) { print(3); }
	print(4);
}
`

// TestChaosMixedLoad is the acceptance scenario: 200 concurrent requests
// mixing healthy programs, injected panics, injected check refusals,
// oversized bodies, and hopeless deadlines. The process must survive, every
// request must get a terminal response, degraded responses must be labeled
// with the producing tier, and /stats must reconcile with the injected
// faults.
func TestChaosMixedLoad(t *testing.T) {
	setFaults(t, restructure.FaultInjection{
		Analyze: func(snapshot *ir.Program, b ir.NodeID) {
			if snapshot.Node(b).CondRHS.Const == panicMarker {
				panic("chaos: injected analysis panic")
			}
		},
		CheckAnswers: func(p *ir.Program, b ir.NodeID, ans analysis.AnswerSet) analysis.AnswerSet {
			if p.Node(b).CondRHS.Const != checkMarker {
				return ans
			}
			if ans == analysis.AnsTrue {
				return analysis.AnsFalse
			}
			return analysis.AnsTrue
		},
	})
	_, ts := newTestService(t, Config{
		MaxInFlight:     8,
		MaxQueue:        256,
		MaxRequestBytes: 8192,
		DefaultDeadline: 30 * time.Second,
		MaxDeadline:     30 * time.Second,
		// Reconciliation needs a stable tier per request class: keep every
		// breaker closed regardless of how many faults we inject.
		Breaker: BreakerConfig{TripThreshold: 1 << 30},
	})

	oversized := okSrc + "// " + strings.Repeat("x", 16<<10) + "\n"
	kinds := []struct {
		name string
		req  OptimizeRequest
		n    int
	}{
		{"ok", OptimizeRequest{Program: okSrc, NoDump: true}, 80},
		{"panic", OptimizeRequest{Program: panicSrc, NoDump: true}, 40},
		{"check", OptimizeRequest{Program: checkSrc, NoDump: true}, 40},
		{"oversized", OptimizeRequest{Program: oversized, NoDump: true}, 20},
		{"deadline", OptimizeRequest{Program: okSrc, NoDump: true, DeadlineMS: 1}, 20},
	}

	type result struct {
		kind   string
		status int
		resp   OptimizeResponse
	}
	var wg sync.WaitGroup
	results := make(chan result, 200)
	for _, k := range kinds {
		for i := 0; i < k.n; i++ {
			wg.Add(1)
			go func(kind string, req OptimizeRequest) {
				defer wg.Done()
				status, raw := post(t, ts.URL, req)
				r := result{kind: kind, status: status}
				if status == http.StatusOK {
					if err := json.Unmarshal(raw, &r.resp); err != nil {
						t.Errorf("%s: bad response body: %v\n%s", kind, err, raw)
					}
				}
				results <- r
			}(k.name, k.req)
		}
	}
	wg.Wait()
	close(results)

	counts := map[string]map[int]int{}
	var completed, checkOK, panicOK int64
	for r := range results {
		if counts[r.kind] == nil {
			counts[r.kind] = map[int]int{}
		}
		counts[r.kind][r.status]++
		switch r.status {
		case http.StatusOK:
		case http.StatusRequestEntityTooLarge, http.StatusTooManyRequests:
			continue // shed is a terminal response too
		default:
			t.Fatalf("%s request: non-terminal status %d", r.kind, r.status)
		}
		completed++

		// Every accepted response is labeled with the tier that produced
		// it, and anything below full fidelity says so.
		if r.resp.Tier == "" {
			t.Fatalf("%s request: missing tier label", r.kind)
		}
		if (r.resp.Tier != "full") != r.resp.Degraded {
			t.Fatalf("%s request: tier %q but degraded=%v", r.kind, r.resp.Tier, r.resp.Degraded)
		}
		switch r.kind {
		case "ok":
			if r.resp.Tier != "full" {
				t.Fatalf("healthy request degraded to %q", r.resp.Tier)
			}
		case "panic":
			// The panic is contained per branch: full tier, with the kind
			// visible in the attempt.
			panicOK++
			if r.resp.Tier != "full" || r.resp.Attempts[0].Failures["panic"] != 1 {
				t.Fatalf("panic request: tier %q attempts %+v", r.resp.Tier, r.resp.Attempts)
			}
		case "check":
			// Both oracle tiers refuse; the no-oracles rung answers.
			checkOK++
			if r.resp.Tier != "no-oracles" {
				t.Fatalf("check request: tier %q, want no-oracles", r.resp.Tier)
			}
		case "oversized":
			t.Fatalf("oversized request was accepted (status 200)")
		case "deadline":
			if r.resp.Tier != "passthrough" {
				t.Fatalf("1ms-deadline request: tier %q, want passthrough", r.resp.Tier)
			}
		}
	}
	if counts["oversized"][http.StatusRequestEntityTooLarge] != 20 {
		t.Fatalf("oversized statuses = %v, want all 413", counts["oversized"])
	}
	for _, kind := range []string{"ok", "panic", "check"} {
		if n := counts[kind][http.StatusOK]; n == 0 {
			t.Fatalf("no %s request completed: %v", kind, counts[kind])
		}
	}

	snap := serverStats(t, ts.URL)
	if snap.Requests != 200 {
		t.Fatalf("requests = %d, want 200", snap.Requests)
	}
	if snap.Completed != completed {
		t.Fatalf("completed = %d, want %d", snap.Completed, completed)
	}
	// Failure counts reconcile with the injected faults: one contained
	// panic per completed panic request, two check refusals (full +
	// check-only attempts) per completed check request.
	if snap.Failures["panic"] != panicOK {
		t.Fatalf("failures[panic] = %d, want %d", snap.Failures["panic"], panicOK)
	}
	if snap.Failures["check"] != 2*checkOK {
		t.Fatalf("failures[check] = %d, want %d", snap.Failures["check"], 2*checkOK)
	}
	if snap.Shed["oversized"] != 20 {
		t.Fatalf("shed = %v, want oversized=20", snap.Shed)
	}
	var shedTotal int64
	for _, n := range snap.Shed {
		shedTotal += n
	}
	if shedTotal != snap.ShedTotal || shedTotal+completed != 200 {
		t.Fatalf("shed %d + completed %d != 200 (shed map %v)", shedTotal, completed, snap.Shed)
	}
	var tierTotal int64
	for _, n := range snap.Tiers {
		tierTotal += n
	}
	if tierTotal != completed {
		t.Fatalf("tier occupancy %v sums to %d, want %d", snap.Tiers, tierTotal, completed)
	}
	if snap.QueueDepth != 0 || snap.InFlight != 0 || snap.InFlightBytes != 0 {
		t.Fatalf("gauges not drained: %d/%d/%d", snap.QueueDepth, snap.InFlight, snap.InFlightBytes)
	}
	if snap.Ceiling != "full" {
		t.Fatalf("ceiling = %q, want full (breakers disabled)", snap.Ceiling)
	}
}
