package server

import (
	"testing"
	"time"

	"icbe/internal/restructure"
)

func testBreakerSet(clock *fakeClock) *breakerSet {
	return newBreakerSet(BreakerConfig{
		Window:        10 * time.Second,
		TripThreshold: 3,
		Cooldown:      2 * time.Second,
		MaxCooldown:   8 * time.Second,
	}, clock.Now)
}

func TestBreakerCoversEveryFailureKind(t *testing.T) {
	s := testBreakerSet(newFakeClock())
	for _, k := range restructure.AllFailureKinds() {
		if s.m[k.String()] == nil {
			t.Errorf("no breaker for failure kind %q", k)
		}
	}
}

func TestBreakerTripsWithinWindowAndPins(t *testing.T) {
	clock := newFakeClock()
	s := testBreakerSet(clock)

	if tier, probes := s.admitTier(); tier != TierFull || len(probes) != 0 {
		t.Fatalf("healthy admitTier = %v/%v, want full/none", tier, probes)
	}
	// Two failures, then the window slides them out: no trip.
	s.record(map[string]int{"timeout": 2}, nil)
	clock.Advance(11 * time.Second)
	s.record(map[string]int{"timeout": 1}, nil)
	if tier, _ := s.admitTier(); tier != TierFull {
		t.Fatalf("breaker tripped on stale window: tier %v", tier)
	}
	// Three failures inside one window trip it; the ceiling pins at the
	// kind's tier.
	s.record(map[string]int{"timeout": 2}, nil)
	if tier, _ := s.admitTier(); tier != TierIntraOnly {
		t.Fatalf("tier after timeout trip = %v, want intra-only", tier)
	}
	// A harsher kind tripping too deepens the ceiling.
	s.record(map[string]int{"panic": 3}, nil)
	if tier, _ := s.admitTier(); tier != TierPassthrough {
		t.Fatalf("tier after panic trip = %v, want passthrough", tier)
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	clock := newFakeClock()
	s := testBreakerSet(clock)
	s.record(map[string]int{"check": 3}, nil)
	if tier, probes := s.admitTier(); tier != TierNoOracles || len(probes) != 0 {
		t.Fatalf("after trip: %v/%v, want no-oracles with no probes during cooldown", tier, probes)
	}

	// Cooldown elapses: exactly one request probes above the pin while
	// others stay pinned.
	clock.Advance(3 * time.Second)
	tier, probes := s.admitTier()
	if tier != TierFull || len(probes) != 1 || probes[0] != "check" {
		t.Fatalf("probe admit = %v/%v, want full with a check probe", tier, probes)
	}
	if tier2, probes2 := s.admitTier(); tier2 != TierNoOracles || len(probes2) != 0 {
		t.Fatalf("second admit during probe = %v/%v, want still pinned", tier2, probes2)
	}

	// The probe fails: the breaker re-opens with a doubled cooldown.
	s.record(map[string]int{"check": 1}, probes)
	if tier3, _ := s.admitTier(); tier3 != TierNoOracles {
		t.Fatalf("after failed probe: %v, want pinned", tier3)
	}
	clock.Advance(3 * time.Second) // less than the doubled 4s cooldown
	if _, probes4 := s.admitTier(); len(probes4) != 0 {
		t.Fatalf("probe allowed before doubled cooldown elapsed")
	}
	clock.Advance(2 * time.Second)
	_, probes5 := s.admitTier()
	if len(probes5) != 1 {
		t.Fatalf("no probe after doubled cooldown")
	}

	// A clean probe closes the breaker and resets the cooldown.
	s.record(nil, probes5)
	if tier6, probes6 := s.admitTier(); tier6 != TierFull || len(probes6) != 0 {
		t.Fatalf("after clean probe: %v/%v, want closed", tier6, probes6)
	}
	if b := s.m["check"]; b.state != bClosed || b.cooldown != 2*time.Second {
		t.Fatalf("breaker after recovery: state %v cooldown %v, want closed/2s", b.state, b.cooldown)
	}
}

func TestBreakerCooldownCapsUnderRepeatedFailedProbes(t *testing.T) {
	clock := newFakeClock()
	s := testBreakerSet(clock)
	s.record(map[string]int{"validate": 3}, nil)
	for i := 0; i < 5; i++ {
		clock.Advance(time.Minute)
		_, probes := s.admitTier()
		if len(probes) != 1 {
			t.Fatalf("round %d: no probe offered", i)
		}
		s.record(map[string]int{"validate": 1}, probes)
	}
	if b := s.m["validate"]; b.cooldown != 8*time.Second {
		t.Fatalf("cooldown = %v, want capped at 8s", b.cooldown)
	}
}

func TestBreakerAbortProbeLeavesHalfOpen(t *testing.T) {
	clock := newFakeClock()
	s := testBreakerSet(clock)
	s.record(map[string]int{"panic": 3}, nil)
	clock.Advance(3 * time.Second)
	_, probes := s.admitTier()
	if len(probes) != 1 {
		t.Fatal("no probe offered after cooldown")
	}
	// The probing request exits early (e.g. compile error): the slot is
	// returned and the next request probes instead.
	s.abortProbe(probes)
	_, probes2 := s.admitTier()
	if len(probes2) != 1 || probes2[0] != "panic" {
		t.Fatalf("probe slot not returned after abort: %v", probes2)
	}
}
