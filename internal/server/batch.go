package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
)

// Batch serving.
//
// POST /optimize-batch takes a list of ordinary optimize requests and serves
// each through the same serveOne path as /optimize, concurrently, with full
// per-item isolation: every item admits itself (so a batch contends for
// slots and memory like the same requests sent individually), sheds itself
// (an oversized or hopeless-deadline item gets its own 413/429 without
// touching its neighbors), and contains its own panics. The batch response
// is always 200 once decoded; failure lives per item, never all-or-nothing.

// BatchRequest is the /optimize-batch request body.
type BatchRequest struct {
	Items []OptimizeRequest `json:"items"`
}

// BatchItemResult is one item's outcome: the HTTP status the item would have
// received standalone, the retry hint for shed items, and the response body
// /optimize would have served, embedded as a raw JSON document (identical to
// the standalone body up to the outer encoder's re-indentation — the compact
// forms are byte-equal).
type BatchItemResult struct {
	Status     int             `json:"status"`
	RetryAfter int             `json:"retry_after,omitempty"`
	Body       json.RawMessage `json:"body"`
}

// BatchResponse is the /optimize-batch response body; Items is parallel to
// the request's.
type BatchResponse struct {
	Items []BatchItemResult `json:"items"`
}

func (s *Server) handleOptimizeBatch(w http.ResponseWriter, r *http.Request) {
	s.wg.Add(1)
	defer s.wg.Done()
	s.met.request()
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	if s.draining.Load() {
		s.met.shedOne("draining")
		w.Header().Set("Retry-After", fmt.Sprint(s.adm.retryAfterSeconds()))
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is draining", Reason: "draining"})
		return
	}
	// The whole-body cap scales with the item budget; per-item program size
	// is enforced again inside serveOne.
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes*int64(s.cfg.MaxBatchItems))
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.met.shedOne("oversized")
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorResponse{Error: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit), Reason: "oversized"})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request: " + err.Error()})
		return
	}
	if len(req.Items) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: `missing "items"`})
		return
	}
	if len(req.Items) > s.cfg.MaxBatchItems {
		s.met.shedOne("oversized")
		writeJSON(w, http.StatusRequestEntityTooLarge,
			errorResponse{Error: fmt.Sprintf("batch has %d items, limit %d", len(req.Items), s.cfg.MaxBatchItems), Reason: "oversized"})
		return
	}
	s.met.batch(len(req.Items))

	resp := BatchResponse{Items: make([]BatchItemResult, len(req.Items))}
	var wg sync.WaitGroup
	for i := range req.Items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp.Items[i] = s.serveItem(r, &req.Items[i])
		}(i)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, resp)
}

// serveItem runs one batch item with its own crash-only boundary: a panic in
// one item becomes that item's 500, and the rest of the batch is untouched.
func (s *Server) serveItem(r *http.Request, item *OptimizeRequest) (res BatchItemResult) {
	defer func() {
		if rec := recover(); rec != nil {
			s.met.panicContained()
			res = BatchItemResult{
				Status: http.StatusInternalServerError,
				Body:   encodeJSON(errorResponse{Error: fmt.Sprintf("internal error: %v", rec)}),
			}
		}
	}()
	out := s.serveOne(r.Context(), item)
	return BatchItemResult{Status: out.status, RetryAfter: out.retryAfter, Body: out.body}
}
