package server

import (
	"context"
	"fmt"
	"sync/atomic"
)

// shedError is a terminal load-shedding refusal: the request never reaches
// the optimizer and the client is told how to retry.
type shedError struct {
	status     int    // HTTP status (429 for pressure, 413 for oversized)
	reason     string // shed-counter key: "queue", "memory", "queue-timeout", "draining", "oversized"
	retryAfter int    // Retry-After seconds (0 = omit)
	msg        string
}

func (e *shedError) Error() string { return e.msg }

// admission is the bounded front door: at most maxInFlight requests optimize
// concurrently, at most maxQueue more wait for a slot, and the estimated
// memory footprint of everything admitted stays under maxBytes. Anything
// beyond is shed immediately — the queue can never grow without bound and a
// burst degrades into fast 429s instead of memory pressure.
type admission struct {
	sem      chan struct{}
	queued   atomic.Int64
	bytes    atomic.Int64
	maxQueue int64
	maxBytes int64
}

func newAdmission(maxInFlight, maxQueue int, maxBytes int64) *admission {
	return &admission{
		sem:      make(chan struct{}, maxInFlight),
		maxQueue: int64(maxQueue),
		maxBytes: maxBytes,
	}
}

// estimateBytes is the admission-time memory estimate for one request: the
// driver clones the program repeatedly and the analysis keeps pooled run
// state, both roughly proportional to source size.
func estimateBytes(srcLen int) int64 {
	return int64(srcLen)*32 + 64<<10
}

// admit blocks until a worker slot is free (bounded by the queue limits) and
// returns a release function, or returns a shedError. The context bounds the
// queue wait: a request whose deadline expires while queued is shed rather
// than started late.
func (a *admission) admit(ctx context.Context, est int64) (func(), *shedError) {
	if b := a.bytes.Add(est); b > a.maxBytes {
		a.bytes.Add(-est)
		return nil, &shedError{status: 429, reason: "memory", retryAfter: 1,
			msg: fmt.Sprintf("in-flight memory estimate %d + %d exceeds %d bytes", b-est, est, a.maxBytes)}
	}
	if q := a.queued.Add(1); q > a.maxQueue {
		a.queued.Add(-1)
		a.bytes.Add(-est)
		return nil, &shedError{status: 429, reason: "queue", retryAfter: a.retryAfterSeconds(),
			msg: fmt.Sprintf("admission queue full (%d waiting)", q-1)}
	}
	select {
	case a.sem <- struct{}{}:
		a.queued.Add(-1)
		return func() {
			<-a.sem
			a.bytes.Add(-est)
		}, nil
	case <-ctx.Done():
		a.queued.Add(-1)
		a.bytes.Add(-est)
		return nil, &shedError{status: 429, reason: "queue-timeout", retryAfter: a.retryAfterSeconds(),
			msg: "request deadline expired while queued"}
	}
}

// retryAfterSeconds scales the Retry-After hint with the backlog: one second
// per full queue's worth of waiting work, at least one.
func (a *admission) retryAfterSeconds() int {
	depth := a.queued.Load()
	slots := int64(cap(a.sem))
	if slots <= 0 {
		return 1
	}
	s := int(depth/slots) + 1
	if s > 30 {
		s = 30
	}
	return s
}

// gauges reports the current queue depth, in-flight count, and admitted
// memory estimate.
func (a *admission) gauges() (queued int64, inFlight int, bytes int64) {
	return a.queued.Load(), len(a.sem), a.bytes.Load()
}
