package server

import (
	"sync"
	"time"

	"icbe/internal/restructure"
)

// BreakerConfig tunes the per-FailureKind circuit breakers.
type BreakerConfig struct {
	// Window is the sliding window over which failures are counted; a
	// breaker trips when TripThreshold failures of its kind land within it.
	Window        time.Duration
	TripThreshold int
	// Cooldown is the initial open duration; each failed probe doubles it
	// up to MaxCooldown.
	Cooldown    time.Duration
	MaxCooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.TripThreshold <= 0 {
		c.TripThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.MaxCooldown <= 0 {
		c.MaxCooldown = 30 * time.Second
	}
	return c
}

type breakerState int

const (
	bClosed breakerState = iota
	bOpen
	bHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case bClosed:
		return "closed"
	case bOpen:
		return "open"
	case bHalfOpen:
		return "half-open"
	}
	return "?"
}

// pinFor maps a failure kind to the tier that no longer exhibits it: the
// ceiling an open breaker imposes on new requests. Verify-only kinds pin
// just below the shadow oracle, fold vetoes just below the full tier (the
// only rung that folds), check refusals below the static layer, timeouts at
// the cheap intraprocedural analysis, and restructuring faults (panic,
// validate) at the only rung that does not restructure at all.
func pinFor(kind string) Tier {
	switch kind {
	case restructure.FailDiffMismatch.String(), restructure.FailOpGrowth.String(), restructure.FailFold.String():
		return TierCheckOnly
	case restructure.FailCheck.String():
		return TierNoOracles
	case restructure.FailTimeout.String():
		return TierIntraOnly
	default: // panic, validate
		return TierPassthrough
	}
}

// breaker is one failure kind's circuit: closed (counting), open (pinning
// the service ceiling at its tier until the cooldown elapses), or half-open
// (one probe request runs above the pin; its outcome closes the breaker or
// re-opens it with a doubled cooldown — the service probes its way back up).
type breaker struct {
	kind     string
	pin      Tier
	state    breakerState
	recent   []time.Time // failure timestamps within the window (closed state only)
	cooldown time.Duration
	reopenAt time.Time
	probing  bool
	trips    int64
}

// breakerSet owns one breaker per restructure.FailureKind. All methods are
// safe for concurrent use.
type breakerSet struct {
	mu    sync.Mutex
	cfg   BreakerConfig
	now   func() time.Time
	order []string
	m     map[string]*breaker
}

func newBreakerSet(cfg BreakerConfig, now func() time.Time) *breakerSet {
	s := &breakerSet{cfg: cfg.withDefaults(), now: now, m: make(map[string]*breaker)}
	for _, k := range restructure.AllFailureKinds() {
		kind := k.String()
		s.order = append(s.order, kind)
		s.m[kind] = &breaker{kind: kind, pin: pinFor(kind), cooldown: s.cfg.Cooldown}
	}
	return s
}

// admitTier returns the tier a new request starts at — the most degraded pin
// among open breakers — and the kinds this request probes: breakers whose
// cooldown elapsed move to half-open and let exactly one request through
// above their pin to test the waters. While a probe is in flight its breaker
// keeps pinning everyone else.
func (s *breakerSet) admitTier() (Tier, []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.now()
	ceiling := TierFull
	var probes []string
	for _, kind := range s.order {
		b := s.m[kind]
		if b.state == bOpen && !t.Before(b.reopenAt) {
			b.state = bHalfOpen
		}
		switch b.state {
		case bOpen:
			if b.pin > ceiling {
				ceiling = b.pin
			}
		case bHalfOpen:
			if !b.probing {
				b.probing = true
				probes = append(probes, kind)
			} else if b.pin > ceiling {
				ceiling = b.pin
			}
		}
	}
	return ceiling, probes
}

// record feeds one finished request's observed failure-kind counts back into
// the breakers. probes are the kinds this request was probing: a probe that
// saw its kind re-opens the breaker with a doubled cooldown, a clean probe
// closes it.
func (s *breakerSet) record(kinds map[string]int, probes []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.now()
	probed := make(map[string]bool, len(probes))
	for _, k := range probes {
		probed[k] = true
	}
	for _, kind := range s.order {
		b := s.m[kind]
		n := kinds[kind]
		if probed[kind] {
			b.probing = false
			if n > 0 {
				b.cooldown *= 2
				if b.cooldown > s.cfg.MaxCooldown {
					b.cooldown = s.cfg.MaxCooldown
				}
				s.open(b, t)
			} else {
				b.state, b.recent, b.cooldown = bClosed, nil, s.cfg.Cooldown
			}
			continue
		}
		if n == 0 || b.state != bClosed {
			continue
		}
		// Count this request once per observed failure (capped so one
		// pathological request cannot flood the window bookkeeping).
		if n > 16 {
			n = 16
		}
		for i := 0; i < n; i++ {
			b.recent = append(b.recent, t)
		}
		cut := t.Add(-s.cfg.Window)
		for len(b.recent) > 0 && b.recent[0].Before(cut) {
			b.recent = b.recent[1:]
		}
		if len(b.recent) >= s.cfg.TripThreshold {
			b.cooldown = s.cfg.Cooldown
			s.open(b, t)
		}
	}
}

func (s *breakerSet) open(b *breaker, t time.Time) {
	b.state = bOpen
	b.recent = nil
	b.reopenAt = t.Add(b.cooldown)
	b.trips++
}

// abortProbe returns probe slots without evidence (the request exited before
// running any optimization, e.g. on a compile error); the breakers stay
// half-open for the next request to probe.
func (s *breakerSet) abortProbe(probes []string) {
	if len(probes) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, kind := range probes {
		if b := s.m[kind]; b != nil {
			b.probing = false
		}
	}
}

// BreakerStatus is one breaker's /stats view.
type BreakerStatus struct {
	State      string `json:"state"`
	Pin        string `json:"pin"`
	Recent     int    `json:"recent"`
	Trips      int64  `json:"trips"`
	CooldownMS int64  `json:"cooldown_ms"`
	Probing    bool   `json:"probing,omitempty"`
}

// snapshot reports every breaker's state and the resulting service ceiling.
func (s *breakerSet) snapshot() (map[string]BreakerStatus, Tier) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]BreakerStatus, len(s.order))
	ceiling := TierFull
	for _, kind := range s.order {
		b := s.m[kind]
		out[kind] = BreakerStatus{
			State:      b.state.String(),
			Pin:        b.pin.String(),
			Recent:     len(b.recent),
			Trips:      b.trips,
			CooldownMS: b.cooldown.Milliseconds(),
			Probing:    b.probing,
		}
		if b.state != bClosed && b.pin > ceiling {
			ceiling = b.pin
		}
	}
	return out, ceiling
}
