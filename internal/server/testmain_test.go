package server

import (
	"os"
	"testing"

	"icbe/internal/pool"
)

// TestMain lets pooled-server tests re-exec this test binary as the worker
// image: a spawned copy sees the pool's env marker and becomes a worker.
func TestMain(m *testing.M) {
	pool.MaybeWorkerMain()
	os.Exit(m.Run())
}
