package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"

	"icbe"
	"icbe/internal/analysis"
	"icbe/internal/ir"
	"icbe/internal/pool"
)

// Worker-pool integration.
//
// With PoolWorkers > 0 the server keeps a pool of worker processes
// (internal/pool) and upgrades eligible requests from TierFull to
// TierPooled: before the optimize attempt, the program's analyzable
// conditionals are sharded per-procedure across the workers, and the
// portable summary records they return seed the attempt's memo through the
// driver (Options.SeedRecords → SummaryMemo.Inject). Replay is exact, so
// the response bytes are identical to the in-process path no matter what
// the pool does — crash, hang, or return garbage — which is what makes the
// pool safe to bolt onto a byte-deterministic service.

// poolStart decides the starting rung for one admitted request: TierPooled
// when the breakers allow full, the pool is healthy, the request runs the
// interprocedural analysis (the only one with summaries), and the program
// has enough analyzable conditionals to be worth the dispatch round-trip.
func (s *Server) poolStart(tier Tier, prog *icbe.Program, base icbe.Options) Tier {
	if tier != TierFull || s.pool == nil || !base.Interprocedural || !s.pool.Healthy() {
		return tier
	}
	conds := 0
	prog.Graph().LiveNodes(func(n *ir.Node) {
		if n.Analyzable() {
			conds++
		}
	})
	if conds < s.cfg.PoolMinConds {
		return tier
	}
	return TierPooled
}

// poolSeed runs the pool pre-analysis for one pooled attempt and returns
// whatever records came back in time. Every failure mode — no live workers,
// open breaker, crashed shards, expired context — shows up only as fewer
// records; the caller's attempt proceeds regardless.
func (s *Server) poolSeed(ctx context.Context, prog *icbe.Program, base icbe.Options) []analysis.PortableRecord {
	if s.pool == nil {
		return nil
	}
	g := prog.Graph()
	// A couple of shards per worker keeps the balance forgiving and gives
	// hedges somewhere useful to land.
	shards := pool.ShardProgram(g, s.cfg.PoolWorkers*2)
	if len(shards) == 0 {
		return nil
	}
	enc := ir.EncodeProgram(g)
	sum := sha256.Sum256(enc)
	recs, _ := s.pool.Analyze(ctx, hex.EncodeToString(sum[:]), enc, shards, pool.JobOptions{
		Interprocedural:  base.Interprocedural,
		TerminationLimit: base.TerminationLimit,
		ArithSubst:       base.ArithSubst,
		ModSummaries:     base.ModSummaries,
	})
	return recs
}

// closePool shuts the worker pool down (idempotent, nil-safe). Drain calls
// it after in-flight work has settled so late pooled attempts never dispatch
// into a dying pool.
func (s *Server) closePool() {
	if s.pool != nil {
		s.pool.Close()
	}
}
