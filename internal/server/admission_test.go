package server

import (
	"context"
	"testing"
	"time"
)

func TestAdmissionBoundsInFlightAndQueue(t *testing.T) {
	a := newAdmission(1, 1, 1<<30)
	rel1, shed := a.admit(context.Background(), 100)
	if shed != nil {
		t.Fatalf("first admit shed: %v", shed)
	}

	// Second request queues; it gets the slot once the first releases.
	admitted := make(chan func(), 1)
	go func() {
		rel2, shed2 := a.admit(context.Background(), 100)
		if shed2 != nil {
			t.Errorf("queued admit shed: %v", shed2)
		}
		admitted <- rel2
	}()
	waitFor(t, func() bool { q, _, _ := a.gauges(); return q == 1 })

	// Third request exceeds the queue bound and is shed immediately.
	if _, shed3 := a.admit(context.Background(), 100); shed3 == nil {
		t.Fatal("third admit not shed with queue full")
	} else if shed3.reason != "queue" || shed3.status != 429 {
		t.Fatalf("shed = %q/%d, want queue/429", shed3.reason, shed3.status)
	}

	rel1()
	rel2 := <-admitted
	rel2()
	if q, inFlight, bytes := a.gauges(); q != 0 || inFlight != 0 || bytes != 0 {
		t.Fatalf("gauges after release = %d/%d/%d, want 0/0/0", q, inFlight, bytes)
	}
}

func TestAdmissionShedsOnMemoryEstimate(t *testing.T) {
	a := newAdmission(4, 4, 1000)
	rel, shed := a.admit(context.Background(), 900)
	if shed != nil {
		t.Fatalf("first admit shed: %v", shed)
	}
	defer rel()
	if _, shed2 := a.admit(context.Background(), 200); shed2 == nil {
		t.Fatal("admit over the byte cap not shed")
	} else if shed2.reason != "memory" {
		t.Fatalf("shed reason = %q, want memory", shed2.reason)
	}
	// The rejected estimate was returned to the pool.
	if _, _, bytes := a.gauges(); bytes != 900 {
		t.Fatalf("bytes after memory shed = %d, want 900", bytes)
	}
}

func TestAdmissionShedsOnDeadlineWhileQueued(t *testing.T) {
	a := newAdmission(1, 4, 1<<30)
	rel, shed := a.admit(context.Background(), 1)
	if shed != nil {
		t.Fatalf("first admit shed: %v", shed)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, shed2 := a.admit(ctx, 1)
	if shed2 == nil {
		t.Fatal("queued admit not shed when its deadline expired")
	}
	if shed2.reason != "queue-timeout" {
		t.Fatalf("shed reason = %q, want queue-timeout", shed2.reason)
	}
	if q, _, bytes := a.gauges(); q != 0 || bytes != 1 {
		t.Fatalf("gauges after queue-timeout = queued %d bytes %d, want 0/1", q, bytes)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
