package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"icbe/internal/restructure"
)

// okSrc is a small program with two fully correlated conditionals plus
// output, so every tier of the ladder has real work and the shadow oracle
// has output to compare.
const okSrc = `
var g = 7;

func main() {
	var a = 0;
	var b = 1;
	if (a == 0) { print(10); }
	if (b == 1) { print(20); }
	print(a + b + g);
}
`

// fakeClock drives the breaker timing deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestService(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// setFaults installs driver fault-injection hooks for the test's duration.
// Hooks are process globals: tests using them must not run in parallel.
func setFaults(t *testing.T, fi restructure.FaultInjection) {
	t.Helper()
	restructure.SetFaultInjection(fi)
	t.Cleanup(func() { restructure.SetFaultInjection(restructure.FaultInjection{}) })
}

// post sends one /optimize request and returns the status code and raw body.
func post(t *testing.T, url string, req OptimizeRequest) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	resp, err := http.Post(url+"/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /optimize: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp.StatusCode, raw
}

// postOK sends one /optimize request that must succeed (200) and decodes it.
func postOK(t *testing.T, url string, req OptimizeRequest) OptimizeResponse {
	t.Helper()
	status, raw := post(t, url, req)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200; body: %s", status, raw)
	}
	var out OptimizeResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("decode response: %v\n%s", err, raw)
	}
	return out
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decode %s: %v\n%s", url, err, raw)
		}
	}
	return resp.StatusCode
}

func serverStats(t *testing.T, url string) StatsSnapshot {
	t.Helper()
	var snap StatsSnapshot
	if status := getJSON(t, url+"/stats", &snap); status != http.StatusOK {
		t.Fatalf("/stats status = %d", status)
	}
	return snap
}
