package server

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"icbe/internal/pool"
	"icbe/internal/reportjson"
	"icbe/internal/store"
)

// latencyWindow bounds the sample ring used for the latency percentiles.
const latencyWindow = 4096

// metrics aggregates request outcomes across the server's lifetime. The
// /stats endpoint serializes a snapshot; the driver-counter aggregate reuses
// the reportjson encoding so the service and `icbe -json` can never drift.
type metrics struct {
	mu          sync.Mutex
	start       time.Time
	requests    int64
	admitted    int64
	completed   int64
	degraded    int64
	retries     int64
	panics      int64 // handler panics contained by the recovery middleware
	shed        map[string]int64
	tiers       map[string]int64
	failures    map[string]int64
	driver      reportjson.DriverStats
	runs        int64
	cacheServed int64 // responses served from the store, no driver run
	batchReqs   int64
	batchItems  int64

	lat  []float64 // rolling latency samples, milliseconds
	next int
	n    int64
}

func newMetrics(now time.Time) *metrics {
	return &metrics{
		start:    now,
		shed:     make(map[string]int64),
		tiers:    make(map[string]int64),
		failures: make(map[string]int64),
		lat:      make([]float64, 0, latencyWindow),
	}
}

func (m *metrics) request() {
	m.mu.Lock()
	m.requests++
	m.mu.Unlock()
}

func (m *metrics) shedOne(reason string) {
	m.mu.Lock()
	m.shed[reason]++
	m.mu.Unlock()
}

func (m *metrics) admit() {
	m.mu.Lock()
	m.admitted++
	m.mu.Unlock()
}

func (m *metrics) panicContained() {
	m.mu.Lock()
	m.panics++
	m.mu.Unlock()
}

// batch counts one accepted /optimize-batch request and its item fan-out.
// Items then count themselves through the ordinary per-request aggregates
// (admitted, completed, shed, tiers) exactly as standalone requests would.
func (m *metrics) batch(items int) {
	m.mu.Lock()
	m.batchReqs++
	m.batchItems += int64(items)
	m.mu.Unlock()
}

// cacheServe folds a store-served response into the aggregates. Cached
// bodies are always full-tier (nothing else enters the store), count toward
// completion and latency, but add no driver counters — no driver ran.
func (m *metrics) cacheServe(latency time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.completed++
	m.cacheServed++
	m.tiers[TierFull.String()]++
	m.observeLatency(latency)
}

// complete folds one terminal response into the aggregates.
func (m *metrics) complete(lr *ladderResult, latency time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.completed++
	m.tiers[lr.tier.String()]++
	if lr.tier > TierFull {
		m.degraded++
	}
	m.retries += int64(lr.retries)
	for k, n := range lr.kinds {
		m.failures[k] += int64(n)
	}
	if lr.report != nil {
		m.driver.Add(reportjson.FromDriverStats(lr.report.Stats))
		m.runs++
	}
	m.observeLatency(latency)
}

// observeLatency records one sample into the rolling window; callers hold
// m.mu.
func (m *metrics) observeLatency(latency time.Duration) {
	ms := float64(latency) / float64(time.Millisecond)
	if len(m.lat) < latencyWindow {
		m.lat = append(m.lat, ms)
	} else {
		m.lat[m.next] = ms
		m.next = (m.next + 1) % latencyWindow
	}
	m.n++
}

// LatencyStats is the /stats latency block (milliseconds, over the rolling
// sample window).
type LatencyStats struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// StatsSnapshot is the /stats payload.
type StatsSnapshot struct {
	UptimeMS      int64                    `json:"uptime_ms"`
	Draining      bool                     `json:"draining"`
	Requests      int64                    `json:"requests"`
	Admitted      int64                    `json:"admitted"`
	Completed     int64                    `json:"completed"`
	Degraded      int64                    `json:"degraded"`
	Retries       int64                    `json:"retries"`
	HandlerPanics int64                    `json:"handler_panics"`
	Shed          map[string]int64         `json:"shed,omitempty"`
	ShedTotal     int64                    `json:"shed_total"`
	QueueDepth    int64                    `json:"queue_depth"`
	InFlight      int                      `json:"in_flight"`
	InFlightBytes int64                    `json:"in_flight_bytes"`
	Tiers         map[string]int64         `json:"tiers,omitempty"`
	Failures      map[string]int64         `json:"failures,omitempty"`
	Driver        reportjson.DriverStats   `json:"driver"`
	OptimizeRuns  int64                    `json:"optimize_runs"`
	CacheServed   int64                    `json:"cache_served"`
	Store         *store.Snapshot          `json:"store,omitempty"`
	Pool          *pool.Snapshot           `json:"pool,omitempty"`
	Batch         BatchStats               `json:"batch"`
	Breakers      map[string]BreakerStatus `json:"breakers"`
	Ceiling       string                   `json:"ceiling"`
	LatencyMS     LatencyStats             `json:"latency_ms"`
	Goroutines    int                      `json:"goroutines"`
}

// BatchStats is the /stats batch block: accepted batch requests and the items
// they fanned out (items also appear in the per-request aggregates).
type BatchStats struct {
	Requests int64 `json:"requests"`
	Items    int64 `json:"items"`
}

func (m *metrics) snapshot(now time.Time) StatsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := StatsSnapshot{
		UptimeMS:      now.Sub(m.start).Milliseconds(),
		Requests:      m.requests,
		Admitted:      m.admitted,
		Completed:     m.completed,
		Degraded:      m.degraded,
		Retries:       m.retries,
		HandlerPanics: m.panics,
		Shed:          copyInt64s(m.shed),
		Tiers:         copyInt64s(m.tiers),
		Failures:      copyInt64s(m.failures),
		Driver:        m.driver,
		OptimizeRuns:  m.runs,
		CacheServed:   m.cacheServed,
		Batch:         BatchStats{Requests: m.batchReqs, Items: m.batchItems},
		Goroutines:    runtime.NumGoroutine(),
	}
	s.Driver.Failures = copyInts(m.driver.Failures)
	for _, n := range m.shed {
		s.ShedTotal += n
	}
	s.LatencyMS = percentiles(m.lat)
	return s
}

func percentiles(samples []float64) LatencyStats {
	ls := LatencyStats{Count: int64(len(samples))}
	if len(samples) == 0 {
		return ls
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	at := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	ls.P50, ls.P95, ls.P99 = at(0.50), at(0.95), at(0.99)
	return ls
}

func copyInt64s(m map[string]int64) map[string]int64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copyInts(m map[string]int) map[string]int {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
