// Package server is the resilient optimization service behind cmd/icbe-serve:
// a long-running HTTP/JSON front end over icbe.Optimize built so that no
// request — hostile, oversized, or slow — can take the process down or starve
// its neighbors.
//
// Robustness is layered:
//
//   - Admission control: a bounded queue with load shedding. At most
//     MaxInFlight requests optimize concurrently, at most MaxQueue more wait,
//     and the admitted memory estimate stays under MaxInFlightBytes; anything
//     beyond is shed with 429 + Retry-After (413 for oversized bodies).
//   - Deadlines: every request carries a deadline (defaulted and clamped)
//     propagated into the driver's cooperative cancellation, so a slow
//     analysis ends on time with partial work rather than being killed.
//   - Crash-only request isolation: panics and fatal check refusals are
//     contained per request and classified; the process never exits.
//   - A degradation ladder (see Tier) retries failed or timed-out requests at
//     progressively cheaper configurations down to a parse-and-echo
//     passthrough, with capped exponential backoff between rungs. Every
//     admitted request reaches a terminal, tier-labeled response.
//   - Per-FailureKind circuit breakers (see breakerSet) pin the service at a
//     degraded tier while a failure kind's rate is elevated and probe their
//     way back up through half-open trial requests.
//   - Graceful drain: Drain stops admission (readyz turns 503), lets
//     in-flight work finish by its deadlines, and only then cancels
//     cooperatively.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"icbe"
	"icbe/internal/ir"
	"icbe/internal/pool"
	"icbe/internal/reportjson"
	"icbe/internal/store"
)

// Config tunes the service. The zero value is usable: every field has a
// production-shaped default.
type Config struct {
	// MaxInFlight bounds concurrent optimizations; MaxQueue bounds requests
	// waiting for a slot beyond them.
	MaxInFlight int
	MaxQueue    int
	// MaxRequestBytes caps the request body; larger requests are shed 413.
	MaxRequestBytes int64
	// MaxInFlightBytes caps the summed admission-time memory estimate of
	// everything admitted; excess is shed 429.
	MaxInFlightBytes int64
	// DefaultDeadline applies when a request names none; MaxDeadline clamps
	// what a request may ask for.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// Workers is the per-request driver worker ceiling.
	Workers int
	// BackoffBase/BackoffCap shape the ladder's capped exponential backoff
	// between degradation retries.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Breaker tunes the per-FailureKind circuit breakers.
	Breaker BreakerConfig

	// CacheEntries bounds the in-memory result cache; StoreDir roots the
	// durable store. With both zero (the default) the server computes every
	// request fresh — caching is strictly opt-in, because a cache entry is
	// a served response and operators must choose to persist those.
	CacheEntries int
	StoreDir     string
	// StoreFS overrides the store's filesystem (nil = the real one); the
	// fault-injection seam for chaos tests.
	StoreFS store.FS

	// PoolWorkers > 0 starts that many worker processes (internal/pool) and
	// upgrades eligible full-tier requests to the pooled rung: per-procedure
	// sharded pre-analysis whose records seed the optimize run. Zero keeps
	// everything in-process.
	PoolWorkers int
	// WorkerBin is the worker executable; empty re-execs this binary.
	WorkerBin string
	// PoolMinConds is the minimum analyzable-conditional count before a
	// program is worth sharding; smaller programs skip the pool round-trip.
	PoolMinConds int
	// MaxBatchItems caps the items of one /optimize-batch request.
	MaxBatchItems int

	// now and sleep are test seams (nil = real clock / timer sleep).
	now   func() time.Time
	sleep func(ctx context.Context, d time.Duration)
	// storeCfg fully overrides the derived store configuration (test seam).
	storeCfg *store.Config
	// poolCfg overrides the derived pool configuration (test seam for fast
	// heartbeats/backoffs and chaos env injection); Workers/WorkerBin are
	// still taken from the fields above when unset in it.
	poolCfg *pool.Config
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 1 << 20
	}
	if c.MaxInFlightBytes <= 0 {
		c.MaxInFlightBytes = 256 << 20
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 5 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 30 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 5 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 100 * time.Millisecond
	}
	if c.PoolMinConds <= 0 {
		c.PoolMinConds = 8
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 16
	}
	c.Breaker = c.Breaker.withDefaults()
	return c
}

func (c Config) clock() func() time.Time {
	if c.now != nil {
		return c.now
	}
	return time.Now
}

// Server is one service instance. Create with New, mount Handler, stop with
// Drain.
type Server struct {
	cfg       Config
	adm       *admission
	brk       *breakerSet
	met       *metrics
	store     *store.Store // nil = caching disabled
	pool      *pool.Pool   // nil = in-process analysis only
	draining  atomic.Bool
	wg        sync.WaitGroup
	baseCtx   context.Context
	cancelAll context.CancelFunc
}

// New builds a Server from the config (zero value = defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	baseCtx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		adm:       newAdmission(cfg.MaxInFlight, cfg.MaxQueue, cfg.MaxInFlightBytes),
		brk:       newBreakerSet(cfg.Breaker, cfg.clock()),
		met:       newMetrics(cfg.clock()()),
		baseCtx:   baseCtx,
		cancelAll: cancel,
	}
	if cfg.storeCfg != nil {
		s.store, _ = store.Open(*cfg.storeCfg)
	} else if cfg.CacheEntries > 0 || cfg.StoreDir != "" {
		// A store that cannot open its directory still serves memory-only;
		// the error is not fatal by design (store-degraded, not down).
		s.store, _ = store.Open(store.Config{
			CacheEntries: cfg.CacheEntries,
			Dir:          cfg.StoreDir,
			FS:           cfg.StoreFS,
		})
	}
	if cfg.poolCfg != nil || cfg.PoolWorkers > 0 {
		pc := pool.Config{}
		if cfg.poolCfg != nil {
			pc = *cfg.poolCfg
		}
		if pc.Workers <= 0 {
			pc.Workers = cfg.PoolWorkers
		}
		if pc.WorkerBin == "" {
			pc.WorkerBin = cfg.WorkerBin
		}
		// A pool that cannot even name its worker binary degrades to the
		// in-process path; like the store, pool trouble is never fatal.
		s.pool, _ = pool.New(pc)
	}
	return s
}

// Handler returns the service's HTTP mux: POST /optimize, GET /healthz,
// GET /readyz, GET /stats. Every route is wrapped in panic recovery so a
// handler bug yields a 500, never a dead process.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/optimize", s.recoverWrap(s.handleOptimize))
	mux.HandleFunc("/optimize-batch", s.recoverWrap(s.handleOptimizeBatch))
	mux.HandleFunc("/healthz", s.recoverWrap(s.handleHealthz))
	mux.HandleFunc("/readyz", s.recoverWrap(s.handleReadyz))
	mux.HandleFunc("/stats", s.recoverWrap(s.handleStats))
	return mux
}

// Drain stops admission and waits for in-flight requests to finish. If the
// context expires first, in-flight work is cancelled cooperatively (each
// request degrades to passthrough and still answers) and Drain waits for the
// handlers to unwind, returning the context's error to signal the forced
// path. Drain is idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.closePool()
		return nil
	case <-ctx.Done():
		s.cancelAll()
		<-done
		s.closePool()
		return ctx.Err()
	}
}

// Stats returns the current aggregate snapshot (the /stats payload).
func (s *Server) Stats() StatsSnapshot {
	snap := s.met.snapshot(s.cfg.clock()())
	snap.Draining = s.draining.Load()
	snap.QueueDepth, snap.InFlight, snap.InFlightBytes = s.adm.gauges()
	breakers, ceiling := s.brk.snapshot()
	snap.Breakers = breakers
	snap.Ceiling = ceiling.String()
	if s.store != nil {
		st := s.store.Stats()
		snap.Store = &st
	}
	if s.pool != nil {
		ps := s.pool.Stats()
		snap.Pool = &ps
	}
	return snap
}

// OptimizeRequest is the /optimize request body.
type OptimizeRequest struct {
	// Program is MiniC source text.
	Program string `json:"program"`
	// DeadlineMS is the request's optimization budget in milliseconds
	// (defaulted and clamped by the server config).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Input, when non-empty (or Run set), executes the optimized program on
	// this stream and returns its output.
	Input []int64 `json:"input,omitempty"`
	Run   bool    `json:"run,omitempty"`
	// NoDump omits the optimized ICFG listing from the response.
	NoDump bool `json:"no_dump,omitempty"`
	// Options carries the analysis knobs a client may tune.
	Options *RequestOptions `json:"options,omitempty"`
}

// RequestOptions is the client-tunable subset of icbe.Options. Oracle and
// analysis-mode selection belong to the degradation ladder, not the client.
type RequestOptions struct {
	// Term is the analysis termination limit (node-query pairs).
	Term int `json:"term,omitempty"`
	// Limit is the per-conditional duplication limit N.
	Limit int `json:"limit,omitempty"`
	// Workers requests driver workers (clamped to the server's ceiling).
	Workers int `json:"workers,omitempty"`
	// FullOnly restricts optimization to fully correlated conditionals.
	FullOnly bool `json:"full_only,omitempty"`
	// Compact contracts synthetic no-op nodes after optimization.
	Compact bool `json:"compact,omitempty"`
	// Fold enables the residual constant-branch fold pass after the
	// correlation rounds. It only runs at the full tier: the fold pass
	// insists on its own shadow and re-check gates, so the degradation
	// ladder drops it together with the other oracles.
	Fold bool `json:"fold,omitempty"`
}

// OptimizeResponse is the /optimize response body. Tier labels the rung that
// produced the result; Degraded is set whenever that is not the full
// configuration, and Attempts traces the descent.
//
// The body is deterministic: every field is a pure function of the program
// and the request shape, never of timing, worker scheduling, or cache
// warmth — which is what lets the store replay a body byte-identically.
// Elapsed time is reported in the X-Icbe-Elapsed-Ms header, and the cache
// disposition (hit-memory, hit-disk, coalesced, miss, bypass) in
// X-Icbe-Cache.
type OptimizeResponse struct {
	Tier     string             `json:"tier"`
	Degraded bool               `json:"degraded"`
	Attempts []Attempt          `json:"attempts"`
	Report   *reportjson.Report `json:"report,omitempty"`
	Dump     string             `json:"dump,omitempty"`
	Output   []int64            `json:"output,omitempty"`
	RunError string             `json:"run_error,omitempty"`
}

type errorResponse struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	// Every request holds the drain group for its whole lifetime, including
	// queue waits, so Drain cannot return while a handler is running.
	s.wg.Add(1)
	defer s.wg.Done()
	s.met.request()
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	if s.draining.Load() {
		s.met.shedOne("draining")
		// A draining instance is a retryable condition like any other shed:
		// the replacement instance (or this one, if the drain is a rolling
		// restart) will take the request shortly. The hint scales with the
		// backlog the replacement will inherit, same as every other shed.
		w.Header().Set("Retry-After", fmt.Sprint(s.adm.retryAfterSeconds()))
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is draining", Reason: "draining"})
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	var req OptimizeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.met.shedOne("oversized")
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorResponse{Error: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit), Reason: "oversized"})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request: " + err.Error()})
		return
	}
	s.writeOutcome(w, s.serveOne(r.Context(), &req))
}

// serveOutcome is the terminal result of serving one optimize item — shared
// by /optimize and each /optimize-batch item so the two paths can never
// diverge in behavior or bytes.
type serveOutcome struct {
	status int
	body   []byte
	// cacheStatus is the X-Icbe-Cache disposition; empty means an error
	// payload with no cache headers.
	cacheStatus string
	retryAfter  int // Retry-After seconds (0 = omit)
	elapsed     time.Duration
}

func errOutcome(status int, e errorResponse) serveOutcome {
	return serveOutcome{status: status, body: encodeJSON(e)}
}

// writeOutcome renders a serveOutcome onto one HTTP response.
func (s *Server) writeOutcome(w http.ResponseWriter, out serveOutcome) {
	if out.retryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprint(out.retryAfter))
	}
	if out.cacheStatus != "" {
		writeRaw(w, out.status, out.body, out.cacheStatus, out.elapsed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(out.status)
	_, _ = w.Write(out.body)
}

// serveOne runs one optimize request end to end — validation, admission,
// cache, singleflight, ladder — and returns the response it would serve. It
// holds its own admission slot, so concurrent batch items contend with
// single requests on equal terms.
func (s *Server) serveOne(parent context.Context, req *OptimizeRequest) serveOutcome {
	if req.Program == "" {
		return errOutcome(http.StatusBadRequest, errorResponse{Error: `missing "program"`})
	}
	if int64(len(req.Program)) > s.cfg.MaxRequestBytes {
		// Batch items dodge the whole-body MaxBytesReader, so the per-item
		// program cap is enforced here with the same status and reason.
		s.met.shedOne("oversized")
		return errOutcome(http.StatusRequestEntityTooLarge,
			errorResponse{Error: fmt.Sprintf("program exceeds %d bytes", s.cfg.MaxRequestBytes), Reason: "oversized"})
	}

	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	ctx, cancel := context.WithTimeout(parent, deadline)
	defer cancel()
	// A drain past its grace period cancels in-flight requests through the
	// server's base context.
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()

	release, shed := s.adm.admit(ctx, estimateBytes(len(req.Program)))
	if shed != nil {
		s.met.shedOne(shed.reason)
		out := errOutcome(shed.status, errorResponse{Error: shed.msg, Reason: shed.reason})
		out.retryAfter = shed.retryAfter
		return out
	}
	defer release()
	s.met.admit()

	t0 := time.Now()

	// L1: an exact repeat (same source text, same request shape) serves
	// straight from the store — no compile, no hash, no optimizer.
	var fp store.Fingerprint
	var l1 store.ResultKey
	if s.store != nil {
		fp = s.fingerprintRequest(req)
		l1 = store.KeyForSource(req.Program, fp)
		if l2, ok := s.store.SourceKey(l1); ok {
			if ent, src := s.store.GetResult(l2); ent != nil {
				s.met.cacheServe(time.Since(t0))
				return serveOutcome{status: http.StatusOK, body: ent.Body, cacheStatus: "hit-" + src, elapsed: time.Since(t0)}
			}
		}
	}

	prog, err := icbe.Compile(req.Program)
	if err != nil {
		return errOutcome(http.StatusUnprocessableEntity, errorResponse{Error: err.Error(), Reason: "compile"})
	}

	// L2: the content-addressed key — canonically equal programs submitted
	// as different source layouts coalesce here. On a miss, join the
	// singleflight so a stampede on one key computes once.
	var l2 store.ResultKey
	var ph *ir.ProgramHash
	var flight *store.Flight
	leader := false
	if s.store != nil {
		l2, ph = cacheKeys(prog, fp)
		s.store.MapSource(l1, l2)
		if ent, src := s.store.GetResult(l2); ent != nil {
			s.met.cacheServe(time.Since(t0))
			return serveOutcome{status: http.StatusOK, body: ent.Body, cacheStatus: "hit-" + src, elapsed: time.Since(t0)}
		}
		flight, leader = s.store.BeginFlight(l2)
		if !leader {
			if ent := s.store.WaitFlight(ctx, flight); ent != nil {
				s.met.cacheServe(time.Since(t0))
				return serveOutcome{status: http.StatusOK, body: ent.Body, cacheStatus: "coalesced", elapsed: time.Since(t0)}
			}
			// The leader published nothing (degraded result) or our own
			// deadline fired first: compute for ourselves, publish nothing.
			flight = nil
		}
	}
	var published *store.Entry
	if leader {
		// Whatever happens below — including a contained panic — the
		// flight must resolve, or waiters would idle out their deadlines.
		defer func() { s.store.FinishFlight(l2, flight, published) }()
	}

	tier, probes := s.brk.admitTier()
	recorded := false
	defer func() {
		if !recorded {
			s.brk.abortProbe(probes)
		}
	}()
	base := s.baseOptions(req.Options)
	tier = s.poolStart(tier, prog, base)
	lr := s.runLadder(ctx, prog, base, tier, s.memoFactory(prog, ph, base))
	s.brk.record(lr.kinds, probes)
	recorded = true

	body := buildBody(lr, req)
	cacheStatus := "bypass"
	if s.store != nil && cacheable(lr) {
		published = s.persistResult(prog, ph, l2, base, lr, body)
		cacheStatus = "miss"
	}
	elapsed := time.Since(t0)
	s.met.complete(lr, elapsed)
	return serveOutcome{status: http.StatusOK, body: body, cacheStatus: cacheStatus, elapsed: elapsed}
}

// baseOptions builds the pre-tier option set for one request.
func (s *Server) baseOptions(ro *RequestOptions) icbe.Options {
	o := icbe.DefaultOptions()
	o.Workers = s.cfg.Workers
	if ro == nil {
		return o
	}
	if ro.Term > 0 {
		o.TerminationLimit = ro.Term
	}
	if ro.Limit > 0 {
		o.MaxDuplication = ro.Limit
	}
	if ro.Workers > 0 && ro.Workers < o.Workers {
		o.Workers = ro.Workers
	}
	o.FullOnly = ro.FullOnly
	o.Compact = ro.Compact
	o.Fold = ro.Fold
	return o
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	// Liveness: the process is up and serving; draining does not make it
	// unhealthy (readiness does that).
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"uptime_ms": s.cfg.clock()().Sub(s.met.start).Milliseconds(),
	})
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// recoverWrap is the crash-only boundary for handler bugs: a panic becomes a
// 500 and a counter, never a dead process.
func (s *Server) recoverWrap(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.met.panicContained()
				writeJSON(w, http.StatusInternalServerError,
					errorResponse{Error: fmt.Sprintf("internal error: %v", rec)})
			}
		}()
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// The shared reportjson encoder renders every payload that leaves the
	// service, exactly as `icbe -json` renders the CLI's.
	_ = reportjson.Encode(w, v)
}

// encodeJSON renders a payload to bytes with the same encoder writeJSON
// streams with, so buffered outcomes (batch items) match direct responses
// byte for byte.
func encodeJSON(v any) []byte {
	var buf bytes.Buffer
	_ = reportjson.Encode(&buf, v)
	return buf.Bytes()
}
